// bench_util.hpp — helpers shared by the perf-tracking benches
// (bench_gemm, bench_posit): best-of timing, OpenMP thread control, and the
// minimal JSON readback used by --check-regression. The scanners only parse
// the flat one-object-per-line results arrays these benches themselves
// write; a structural change to that format must update every bench through
// this single header.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace pdnn::benchutil {

template <typename Fn>
double time_best(Fn&& fn, int reps) {
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

inline int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

inline void set_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// Scan `"key": <number>` inside one serialized result object.
inline bool scan_number(const std::string& obj, const std::string& key, double* out) {
  const auto pos = obj.find("\"" + key + "\":");
  if (pos == std::string::npos) return false;
  *out = std::strtod(obj.c_str() + pos + key.size() + 3, nullptr);
  return true;
}

/// Scan `"key": "<value>"` inside one serialized result object.
inline std::string scan_string(const std::string& obj, const std::string& key) {
  const auto pos = obj.find("\"" + key + "\": \"");
  if (pos == std::string::npos) return "";
  const auto start = pos + key.size() + 5;
  const auto end = obj.find('"', start);
  return end == std::string::npos ? "" : obj.substr(start, end - start);
}

}  // namespace pdnn::benchutil
