// fig2_distributions — reproduces Fig. 2: histograms and distribution
// evolution of a CONV weight and a BN weight across training.
//
// The paper's observation (motivating warm-up training): CONV weight
// distributions are basically stable across training, while BN weight
// distributions move sharply during the first epochs.
#include <cmath>

#include "quant/stats_collector.hpp"
#include "train_common.hpp"

int main() {
  using namespace bench;

  TaskConfig task = synth_cifar_task(/*epochs=*/10);
  task.train.warmup_epochs = 0;  // observe the raw FP32 dynamics like Fig. 2

  const std::string conv_name = "conv1.weight";
  const std::string bn_name = "stage3.block0.bn1.weight";
  quant::WeightStatsCollector collector({conv_name, bn_name});

  std::printf("Fig. 2 reproduction: weight distributions across FP32 training\n\n");
  run_training(task, nullptr, /*seed=*/7, /*verbose=*/false,
               [&](std::size_t epoch, nn::Sequential& net) { collector.collect(epoch, net); });

  for (const std::string& name : {conv_name, bn_name}) {
    const auto& series = collector.series(name);
    std::printf("=== %s ===\n", name.c_str());
    std::printf("%-6s %-10s %-10s %-10s %-10s %s\n", "epoch", "mean", "stddev", "min", "max",
                "log2-center (Eq.2)");
    for (const auto& snap : series) {
      std::printf("%-6zu %-10.4f %-10.4f %-10.4f %-10.4f %.2f\n", snap.epoch, snap.moments.mean,
                  snap.moments.stddev, snap.moments.min, snap.moments.max, snap.log2_center);
    }
    // Panel (a)/(c): histogram at the final epoch.
    std::printf("\nfinal-epoch histogram of %s:\n%s\n", name.c_str(),
                tensor::render_histogram(series.back().hist, 48).c_str());
  }

  // The quantitative form of the paper's observation: relative drift of the
  // distribution width over the first epochs, BN vs CONV.
  const auto drift = [&](const std::string& name) {
    const auto& s = collector.series(name);
    const double first = s.front().moments.stddev;
    const double last = s.back().moments.stddev;
    return std::fabs(last - first) / (first + 1e-12);
  };
  std::printf("relative stddev drift over training: conv1 %.2f%%, bn %.2f%%\n",
              100.0 * drift(conv_name), 100.0 * drift(bn_name));
  std::printf("(paper Fig. 2: BN distributions change steeply early on; CONV stays stable)\n");
  return 0;
}
