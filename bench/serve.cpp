// serve — serving-layer perf tracking. Drives serve::Engine (dynamic batching
// over cloned exec backends) with closed-loop clients (each waits for its
// answer before sending the next request) and an open-loop arrival process
// (requests paced at an offered QPS regardless of completions), recording
// p50/p99/p999 latency, achieved QPS, and the dispatched batch-size histogram
// per row, then writes BENCH_serve.json.
//
// Every closed-loop float row also bit-checks each batched answer against the
// solo single-sample reference — the Engine's core correctness claim.
//
// Usage:
//   bench_serve [out.json]
//   bench_serve --check-regression <baseline.json> [out.json]
//     also compares closed-loop achieved QPS against the committed baseline.
//
// Exit codes: 0 ok; 1 correctness mismatch (batched answer diverged from the
// solo run — always a real failure); 2 usage / unreadable baseline /
// unwritable output; 3 only a perf regression (>20% below baseline — CI
// treats this one as non-blocking).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "exec/float_backend.hpp"
#include "nn/resnet.hpp"
#include "quant/posit_session.hpp"
#include "serve/engine.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace {

using pdnn::exec::Backend;
using pdnn::serve::Engine;
using pdnn::serve::EngineConfig;
using pdnn::serve::EngineStats;
using pdnn::tensor::Rng;
using pdnn::tensor::Tensor;
using clock_type = std::chrono::steady_clock;

using pdnn::benchutil::scan_number;
using pdnn::benchutil::scan_string;

struct LatencyStats {
  double p50_us = 0.0, p99_us = 0.0, p999_us = 0.0;
};

LatencyStats percentiles(std::vector<double>& lat_us) {
  LatencyStats s;
  if (lat_us.empty()) return s;
  std::sort(lat_us.begin(), lat_us.end());
  const auto at = [&](double q) {
    const std::size_t i = static_cast<std::size_t>(q * static_cast<double>(lat_us.size()));
    return lat_us[std::min(i, lat_us.size() - 1)];
  };
  s.p50_us = at(0.50);
  s.p99_us = at(0.99);
  s.p999_us = at(0.999);
  return s;
}

struct Row {
  std::string scenario;  // "closed" | "open"
  std::string backend;   // "float" | "posit"
  std::size_t workers = 1;
  std::size_t clients = 0;      // closed loop only
  double offered_qps = 0.0;     // open loop only
  std::size_t requests = 0;
  double achieved_qps = 0.0;
  LatencyStats lat;
  std::uint64_t batches = 0;
  double mean_batch = 0.0;
  std::string hist;  // "s:count|s:count|..." over dispatched batch sizes
  bool bit_identical = true;
};

std::string render_hist(const EngineStats& stats) {
  std::string h;
  for (std::size_t s = 1; s < stats.batch_hist.size(); ++s) {
    if (stats.batch_hist[s] == 0) continue;
    if (!h.empty()) h += '|';
    h += std::to_string(s) + ":" + std::to_string(stats.batch_hist[s]);
  }
  return h.empty() ? "0" : h;
}

/// Solo reference: the sample alone, a batch of one, through `backend`.
Tensor solo_run(Backend& backend, const Tensor& sample) {
  const Tensor* one = &sample;
  Tensor batch;
  pdnn::tensor::stack_samples(&one, 1, batch);
  Tensor row;
  pdnn::tensor::extract_sample(backend.run(batch), 0, row);
  return row;
}

/// Closed loop: `clients` threads each send `per_client` requests
/// back-to-back, waiting for each answer before the next send. When `want` is
/// non-empty, every answer is bit-checked against want[sample index].
Row closed_loop(const std::string& backend_name, Backend& proto, const EngineConfig& cfg,
                const std::vector<Tensor>& samples, const std::vector<Tensor>& want,
                std::size_t clients, std::size_t per_client) {
  Engine engine(proto, cfg);
  std::vector<std::vector<double>> lat(clients);
  std::atomic<bool> identical{true};

  const auto t0 = clock_type::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      lat[c].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        const std::size_t s = (c + i) % samples.size();
        const auto sent = clock_type::now();
        Tensor y = engine.submit(samples[s]).get();
        lat[c].push_back(
            std::chrono::duration<double, std::micro>(clock_type::now() - sent).count());
        if (!want.empty() &&
            (y.shape() != want[s].shape() ||
             std::memcmp(y.data(), want[s].data(), y.numel() * sizeof(float)) != 0)) {
          identical = false;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall = std::chrono::duration<double>(clock_type::now() - t0).count();
  engine.shutdown();

  Row row;
  row.scenario = "closed";
  row.backend = backend_name;
  row.workers = cfg.workers;
  row.clients = clients;
  row.requests = clients * per_client;
  row.achieved_qps = static_cast<double>(row.requests) / wall;
  std::vector<double> all;
  for (auto& l : lat) all.insert(all.end(), l.begin(), l.end());
  row.lat = percentiles(all);
  const EngineStats stats = engine.stats();
  row.batches = stats.batches;
  row.mean_batch =
      stats.batches == 0 ? 0.0
                         : static_cast<double>(stats.completed) / static_cast<double>(stats.batches);
  row.hist = render_hist(stats);
  row.bit_identical = identical.load();
  return row;
}

/// Open loop: one pacer submits at `offered_qps` on a fixed schedule (no
/// back-pressure from completions); latency is completion minus the
/// *intended* send time, so pacing slip counts against the engine
/// (coordinated-omission corrected). Futures are harvested in submission
/// order — FIFO batching keeps completions nearly ordered, so the harvest
/// skew is bounded by one in-flight batch per worker.
Row open_loop(const std::string& backend_name, Backend& proto, const EngineConfig& cfg,
              const std::vector<Tensor>& samples, double offered_qps, std::size_t requests) {
  Engine engine(proto, cfg);
  const auto period =
      std::chrono::duration_cast<clock_type::duration>(std::chrono::duration<double>(1.0 / offered_qps));

  std::vector<std::future<Tensor>> futures;
  std::vector<clock_type::time_point> intended(requests);
  std::vector<double> lat_us(requests);
  futures.reserve(requests);  // no reallocation: harvester holds references
  std::atomic<std::size_t> published{0};

  const auto t0 = clock_type::now();
  std::thread harvester([&] {
    for (std::size_t i = 0; i < requests; ++i) {
      while (published.load(std::memory_order_acquire) <= i) std::this_thread::yield();
      futures[i].get();
      lat_us[i] =
          std::chrono::duration<double, std::micro>(clock_type::now() - intended[i]).count();
    }
  });
  for (std::size_t i = 0; i < requests; ++i) {
    intended[i] = t0 + period * static_cast<std::int64_t>(i);
    std::this_thread::sleep_until(intended[i]);
    futures.push_back(engine.submit(samples[i % samples.size()]));
    published.store(i + 1, std::memory_order_release);
  }
  harvester.join();
  const double wall = std::chrono::duration<double>(clock_type::now() - t0).count();
  engine.shutdown();

  Row row;
  row.scenario = "open";
  row.backend = backend_name;
  row.workers = cfg.workers;
  row.offered_qps = offered_qps;
  row.requests = requests;
  row.achieved_qps = static_cast<double>(requests) / wall;
  row.lat = percentiles(lat_us);
  const EngineStats stats = engine.stats();
  row.batches = stats.batches;
  row.mean_batch =
      stats.batches == 0 ? 0.0
                         : static_cast<double>(stats.completed) / static_cast<double>(stats.batches);
  row.hist = render_hist(stats);
  return row;
}

struct BaselineEntry {
  std::string scenario, backend;
  std::size_t workers = 0, clients = 0;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
};

std::vector<BaselineEntry> parse_baseline(const std::string& path) {
  std::ifstream in(path);
  std::vector<BaselineEntry> entries;
  if (!in.good()) return entries;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  auto pos = text.find("\"results\"");
  if (pos == std::string::npos) return entries;
  while ((pos = text.find('{', pos)) != std::string::npos) {
    const auto end = text.find('}', pos);
    if (end == std::string::npos) break;
    const std::string obj = text.substr(pos, end - pos + 1);
    double workers = 0, clients = 0, offered = 0, achieved = 0;
    const std::string scenario = scan_string(obj, "scenario");
    if (!scenario.empty() && scan_number(obj, "workers", &workers) &&
        scan_number(obj, "achieved_qps", &achieved)) {
      scan_number(obj, "clients", &clients);
      scan_number(obj, "offered_qps", &offered);
      entries.push_back({scenario, scan_string(obj, "backend"),
                         static_cast<std::size_t>(workers), static_cast<std::size_t>(clients),
                         offered, achieved});
    }
    pos = end + 1;
  }
  return entries;
}

double baseline_closed_qps(const std::vector<BaselineEntry>& entries, const Row& r) {
  for (const auto& e : entries) {
    if (e.scenario == "closed" && e.backend == r.backend && e.workers == r.workers &&
        e.clients == r.clients) {
      return e.achieved_qps;
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serve.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check-regression") {
      if (i + 1 >= argc) {
        std::cerr << "FAIL: --check-regression needs a baseline path\n";
        return 2;
      }
      baseline_path = argv[++i];
    } else {
      out_path = arg;
    }
  }
  std::vector<BaselineEntry> baseline;
  if (!baseline_path.empty()) {
    baseline = parse_baseline(baseline_path);
    if (baseline.empty()) {
      std::cerr << "FAIL: no parsable results in baseline " << baseline_path << "\n";
      return 2;
    }
  }

  // A small MLP keeps per-batch work in the tens of microseconds, so the
  // numbers measure the serving layer (queueing, coalescing, scatter), not
  // the GEMM.
  Rng rng(97);
  auto net = pdnn::nn::mlp(16, 32, 4, 1, rng);
  pdnn::exec::FloatBackend fproto = pdnn::exec::FloatBackend::compile(*net);
  pdnn::quant::SessionConfig scfg;
  scfg.spec = {8, 1};
  scfg.mode = pdnn::quant::AccumMode::kSerial;
  auto pproto = pdnn::quant::PositSession::compile_backend(*net, scfg);

  std::vector<Tensor> samples;
  for (int i = 0; i < 16; ++i) samples.push_back(Tensor::randn({16}, rng));
  std::vector<Tensor> fwant, pwant;
  for (const Tensor& s : samples) {
    fwant.push_back(solo_run(fproto, s));
    pwant.push_back(solo_run(*pproto, s));
  }

  EngineConfig cfg;
  cfg.max_batch = 8;
  cfg.batch_timeout = std::chrono::microseconds(100);

  std::vector<Row> rows;
  // Closed loop: worker sweep at a fixed client count (structural scaling on
  // a 1-core container: workers overlap batch assembly with execution), then
  // a client sweep at the worker count CI regresses on.
  for (const std::size_t workers : {1u, 2u, 4u}) {
    cfg.workers = workers;
    rows.push_back(closed_loop("float", fproto, cfg, samples, fwant, /*clients=*/4,
                               /*per_client=*/400));
  }
  cfg.workers = 2;
  for (const std::size_t clients : {1u, 2u, 8u}) {
    rows.push_back(closed_loop("float", fproto, cfg, samples, fwant, clients, 400));
  }
  rows.push_back(closed_loop("posit", *pproto, cfg, samples, pwant, /*clients=*/4,
                             /*per_client=*/100));

  // Open loop: offered-QPS sweep through saturation; the top rate is far past
  // what one core sustains, so the tail shows queueing, not a hang.
  for (const double qps : {2000.0, 8000.0, 20000.0}) {
    cfg.workers = 2;
    rows.push_back(open_loop("float", fproto, cfg, samples, qps,
                             static_cast<std::size_t>(qps * 0.25)));
  }

  for (const Row& r : rows) {
    if (r.scenario == "closed") {
      std::printf("closed %-5s w%zu c%zu  %8.0f req/s  p50 %7.1fus  p99 %7.1fus  p999 %7.1fus  "
                  "mean batch %.2f  %s\n",
                  r.backend.c_str(), r.workers, r.clients, r.achieved_qps, r.lat.p50_us,
                  r.lat.p99_us, r.lat.p999_us, r.mean_batch,
                  r.bit_identical ? "bit-identical" : "MISMATCH");
    } else {
      std::printf("open   %-5s w%zu offered %7.0f  achieved %7.0f req/s  p50 %7.1fus  "
                  "p99 %8.1fus  p999 %8.1fus  mean batch %.2f\n",
                  r.backend.c_str(), r.workers, r.offered_qps, r.achieved_qps, r.lat.p50_us,
                  r.lat.p99_us, r.lat.p999_us, r.mean_batch);
    }
  }

  std::ofstream out(out_path);
  if (!out.good()) {
    std::cerr << "FAIL: cannot open " << out_path << " for writing\n";
    return 2;
  }
  out << "{\n  \"bench\": \"serve\",\n  \"net\": \"mlp16x32x4\",\n  \"max_batch\": "
      << cfg.max_batch << ",\n  \"batch_timeout_us\": 100,\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"scenario\": \"" << r.scenario << "\", \"backend\": \"" << r.backend
        << "\", \"workers\": " << r.workers << ", \"clients\": " << r.clients
        << ", \"offered_qps\": " << r.offered_qps << ", \"requests\": " << r.requests
        << ", \"achieved_qps\": " << r.achieved_qps << ", \"p50_us\": " << r.lat.p50_us
        << ", \"p99_us\": " << r.lat.p99_us << ", \"p999_us\": " << r.lat.p999_us
        << ", \"batches\": " << r.batches << ", \"mean_batch\": " << r.mean_batch
        << ", \"hist\": \"" << r.hist << "\", \"bit_identical\": "
        << (r.bit_identical ? "true" : "false") << "}" << (i + 1 < rows.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  bool mismatch = false;
  for (const Row& r : rows) {
    if (!r.bit_identical) {
      std::cerr << "FAIL: " << r.backend << " batched answer (workers=" << r.workers
                << ") diverged from the solo reference\n";
      mismatch = true;
    }
  }

  bool regressed = false;
  if (!baseline_path.empty()) {
    for (const Row& r : rows) {
      if (r.scenario != "closed") continue;
      const double base = baseline_closed_qps(baseline, r);
      if (base <= 0.0) continue;  // row not in baseline; nothing to compare
      const double ratio = r.achieved_qps / base;
      std::printf("regression check closed %-5s w%zu c%zu: %8.0f req/s vs baseline %8.0f (x%.2f)%s\n",
                  r.backend.c_str(), r.workers, r.clients, r.achieved_qps, base, ratio,
                  ratio < 0.8 ? "  REGRESSION" : "");
      if (ratio < 0.8) regressed = true;
    }
    if (regressed)
      std::cerr << "FAIL: closed-loop achieved QPS dropped >20% vs " << baseline_path << "\n";
  }
  if (mismatch) return 1;
  return regressed ? 3 : 0;
}
