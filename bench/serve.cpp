// serve — serving-layer perf tracking. Drives serve::Engine (dynamic batching
// over cloned exec backends) with closed-loop clients (each waits for its
// answer before sending the next request) and an open-loop arrival process
// (requests paced at an offered QPS regardless of completions), recording
// p50/p99/p999 latency, achieved QPS, and the dispatched batch-size histogram
// per row, then writes BENCH_serve.json.
//
// Every closed-loop float row also bit-checks each batched answer against the
// solo single-sample reference — the Engine's core correctness claim.
//
// Usage:
//   bench_serve [out.json]
//   bench_serve --check-regression <baseline.json> [out.json]
//     also compares closed-loop achieved QPS against the committed baseline.
//   bench_serve --chaos [out.json]
//     chaos-only rows: closed-loop clients against a pool where every worker
//     trips on a poison trigger value and one worker additionally throws on a
//     seeded schedule and dawdles (exec::FaultInjectingBackend). Checks the
//     overload/fault layer end-to-end: every future resolves, exceptions land
//     only on poison requests, healthy answers stay bit-identical to solo,
//     and the retry counters move. Defaults to BENCH_serve_chaos.json.
//
// Exit codes: 0 ok; 1 correctness mismatch (batched answer diverged from the
// solo run, a healthy request faulted, or a poison request slipped through —
// always a real failure); 2 usage / unreadable baseline / unwritable output;
// 3 only a perf regression (>20% below baseline — CI treats this one as
// non-blocking).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "exec/fault_injection.hpp"
#include "exec/float_backend.hpp"
#include "nn/resnet.hpp"
#include "quant/posit_session.hpp"
#include "serve/engine.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace {

using pdnn::exec::Backend;
using pdnn::serve::Engine;
using pdnn::serve::EngineConfig;
using pdnn::serve::EngineStats;
using pdnn::tensor::Rng;
using pdnn::tensor::Tensor;
using clock_type = std::chrono::steady_clock;

using pdnn::benchutil::scan_number;
using pdnn::benchutil::scan_string;

struct LatencyStats {
  double p50_us = 0.0, p99_us = 0.0, p999_us = 0.0;
};

LatencyStats percentiles(std::vector<double>& lat_us) {
  LatencyStats s;
  if (lat_us.empty()) return s;
  std::sort(lat_us.begin(), lat_us.end());
  const auto at = [&](double q) {
    const std::size_t i = static_cast<std::size_t>(q * static_cast<double>(lat_us.size()));
    return lat_us[std::min(i, lat_us.size() - 1)];
  };
  s.p50_us = at(0.50);
  s.p99_us = at(0.99);
  s.p999_us = at(0.999);
  return s;
}

struct Row {
  std::string scenario;  // "closed" | "open" | "chaos"
  std::string backend;   // "float" | "posit"
  std::size_t workers = 1;
  std::size_t clients = 0;      // closed loop only
  double offered_qps = 0.0;     // open loop only
  std::size_t requests = 0;
  double achieved_qps = 0.0;
  LatencyStats lat;
  std::uint64_t batches = 0;
  double mean_batch = 0.0;
  std::string hist;  // "s:count|s:count|..." over dispatched batch sizes
  bool bit_identical = true;
  // Overload/fault-layer counters (EngineStats), plus the futures that
  // resolved with an exception on the client side.
  std::uint64_t rejected = 0, shed = 0, deadline_expired = 0;
  std::uint64_t retries = 0, quarantines = 0, rebuilds = 0;
  std::uint64_t errors = 0;
};

void fill_fault_stats(Row& row, const EngineStats& stats) {
  row.rejected = stats.rejected;
  row.shed = stats.shed;
  row.deadline_expired = stats.deadline_expired;
  row.retries = stats.retries;
  row.quarantines = stats.quarantines;
  row.rebuilds = stats.rebuilds;
}

std::string render_hist(const EngineStats& stats) {
  std::string h;
  for (std::size_t s = 1; s < stats.batch_hist.size(); ++s) {
    if (stats.batch_hist[s] == 0) continue;
    if (!h.empty()) h += '|';
    h += std::to_string(s) + ":" + std::to_string(stats.batch_hist[s]);
  }
  return h.empty() ? "0" : h;
}

/// Solo reference: the sample alone, a batch of one, through `backend`.
Tensor solo_run(Backend& backend, const Tensor& sample) {
  const Tensor* one = &sample;
  Tensor batch;
  pdnn::tensor::stack_samples(&one, 1, batch);
  Tensor row;
  pdnn::tensor::extract_sample(backend.run(batch), 0, row);
  return row;
}

/// Closed loop: `clients` threads each send `per_client` requests
/// back-to-back, waiting for each answer before the next send. When `want` is
/// non-empty, every answer is bit-checked against want[sample index].
Row closed_loop(const std::string& backend_name, Backend& proto, const EngineConfig& cfg,
                const std::vector<Tensor>& samples, const std::vector<Tensor>& want,
                std::size_t clients, std::size_t per_client) {
  Engine engine(proto, cfg);
  std::vector<std::vector<double>> lat(clients);
  std::atomic<bool> identical{true};
  std::atomic<std::uint64_t> errors{0};

  const auto t0 = clock_type::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      lat[c].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        const std::size_t s = (c + i) % samples.size();
        const auto sent = clock_type::now();
        try {
          Tensor y = engine.submit(samples[s]).get();
          if (!want.empty() &&
              (y.shape() != want[s].shape() ||
               std::memcmp(y.data(), want[s].data(), y.numel() * sizeof(float)) != 0)) {
            identical = false;
          }
        } catch (const std::exception&) {
          // A faultless row must not see exceptions; counted and surfaced.
          ++errors;
        }
        lat[c].push_back(
            std::chrono::duration<double, std::micro>(clock_type::now() - sent).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall = std::chrono::duration<double>(clock_type::now() - t0).count();
  engine.shutdown();

  Row row;
  row.scenario = "closed";
  row.backend = backend_name;
  row.workers = cfg.workers;
  row.clients = clients;
  row.requests = clients * per_client;
  row.achieved_qps = static_cast<double>(row.requests) / wall;
  std::vector<double> all;
  for (auto& l : lat) all.insert(all.end(), l.begin(), l.end());
  row.lat = percentiles(all);
  const EngineStats stats = engine.stats();
  row.batches = stats.batches;
  row.mean_batch =
      stats.batches == 0 ? 0.0
                         : static_cast<double>(stats.completed) / static_cast<double>(stats.batches);
  row.hist = render_hist(stats);
  row.bit_identical = identical.load() && errors.load() == 0;
  row.errors = errors.load();
  fill_fault_stats(row, stats);
  return row;
}

/// Open loop: one pacer submits at `offered_qps` on a fixed schedule (no
/// back-pressure from completions); latency is completion minus the
/// *intended* send time, so pacing slip counts against the engine
/// (coordinated-omission corrected). Futures are harvested in submission
/// order — FIFO batching keeps completions nearly ordered, so the harvest
/// skew is bounded by one in-flight batch per worker.
Row open_loop(const std::string& backend_name, Backend& proto, const EngineConfig& cfg,
              const std::vector<Tensor>& samples, double offered_qps, std::size_t requests) {
  Engine engine(proto, cfg);
  const auto period =
      std::chrono::duration_cast<clock_type::duration>(std::chrono::duration<double>(1.0 / offered_qps));

  std::vector<std::future<Tensor>> futures;
  std::vector<clock_type::time_point> intended(requests);
  std::vector<double> lat_us(requests);
  futures.reserve(requests);  // no reallocation: harvester holds references
  std::atomic<std::size_t> published{0};
  std::atomic<std::uint64_t> errors{0};

  const auto t0 = clock_type::now();
  std::thread harvester([&] {
    for (std::size_t i = 0; i < requests; ++i) {
      while (published.load(std::memory_order_acquire) <= i) std::this_thread::yield();
      try {
        futures[i].get();
      } catch (const std::exception&) {
        ++errors;
      }
      lat_us[i] =
          std::chrono::duration<double, std::micro>(clock_type::now() - intended[i]).count();
    }
  });
  for (std::size_t i = 0; i < requests; ++i) {
    intended[i] = t0 + period * static_cast<std::int64_t>(i);
    std::this_thread::sleep_until(intended[i]);
    futures.push_back(engine.submit(samples[i % samples.size()]));
    published.store(i + 1, std::memory_order_release);
  }
  harvester.join();
  const double wall = std::chrono::duration<double>(clock_type::now() - t0).count();
  engine.shutdown();

  Row row;
  row.scenario = "open";
  row.backend = backend_name;
  row.workers = cfg.workers;
  row.offered_qps = offered_qps;
  row.requests = requests;
  row.achieved_qps = static_cast<double>(requests) / wall;
  row.lat = percentiles(lat_us);
  const EngineStats stats = engine.stats();
  row.batches = stats.batches;
  row.mean_batch =
      stats.batches == 0 ? 0.0
                         : static_cast<double>(stats.completed) / static_cast<double>(stats.batches);
  row.hist = render_hist(stats);
  row.bit_identical = errors.load() == 0;  // faultless open loop: any error is real
  row.errors = errors.load();
  fill_fault_stats(row, stats);
  return row;
}

/// Chaos loop: closed-loop clients against a factory-built pool where every
/// worker throws on the poison trigger value and worker `flaky_ordinal`
/// additionally throws every `throw_every`-th run (seeded) and sleeps per
/// run. Each client sends poison at fixed positions. The acceptance bar:
/// every future resolves; poison requests (and only they) fail, with
/// exec::InjectedFault; healthy answers are bit-identical to solo.
Row chaos_loop(const std::string& backend_name, Backend& proto, const EngineConfig& cfg,
               const std::vector<Tensor>& samples, const std::vector<Tensor>& want,
               std::size_t clients, std::size_t per_client) {
  constexpr float kPoison = 1.0e30f;
  auto calls = std::make_shared<std::atomic<int>>(0);
  Engine::BackendFactory factory = [&proto, calls] {
    const int ordinal = ++*calls;
    pdnn::exec::FaultConfig fcfg;
    fcfg.has_trigger = true;
    fcfg.trigger = kPoison;
    fcfg.seed = 9000 + static_cast<std::uint64_t>(ordinal);
    if (ordinal == 2) {  // one flaky worker in the pool
      fcfg.throw_every = 7;
      fcfg.latency = std::chrono::microseconds(200);
    }
    return std::make_unique<pdnn::exec::FaultInjectingBackend>(proto.clone(), fcfg);
  };
  Engine engine(factory, cfg);
  const Tensor poison = Tensor::full({samples[0].shape()[0]}, kPoison);

  std::vector<std::vector<double>> lat(clients);
  std::atomic<bool> ok{true};
  std::atomic<std::uint64_t> errors{0};

  const auto t0 = clock_type::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      lat[c].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        const bool is_poison = i % 10 == 7;
        const std::size_t s = (c + i) % samples.size();
        const auto sent = clock_type::now();
        try {
          Tensor y = engine.submit(is_poison ? poison : samples[s]).get();
          if (is_poison ||  // a poison request must not produce an answer
              y.shape() != want[s].shape() ||
              std::memcmp(y.data(), want[s].data(), y.numel() * sizeof(float)) != 0) {
            ok = false;
          }
        } catch (const pdnn::exec::InjectedFault&) {
          ++errors;
          if (!is_poison) ok = false;  // a healthy request must never fault
        } catch (const std::exception&) {
          ++errors;
          ok = false;  // only InjectedFault is in the chaos plan
        }
        lat[c].push_back(
            std::chrono::duration<double, std::micro>(clock_type::now() - sent).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall = std::chrono::duration<double>(clock_type::now() - t0).count();
  engine.shutdown();

  Row row;
  row.scenario = "chaos";
  row.backend = backend_name;
  row.workers = cfg.workers;
  row.clients = clients;
  row.requests = clients * per_client;
  row.achieved_qps = static_cast<double>(row.requests) / wall;
  std::vector<double> all;
  for (auto& l : lat) all.insert(all.end(), l.begin(), l.end());
  row.lat = percentiles(all);
  const EngineStats stats = engine.stats();
  row.batches = stats.batches;
  row.mean_batch =
      stats.batches == 0 ? 0.0
                         : static_cast<double>(stats.completed) / static_cast<double>(stats.batches);
  row.hist = render_hist(stats);
  row.errors = errors.load();
  fill_fault_stats(row, stats);
  // Every admitted request must have resolved, and exactly the poison
  // requests must have faulted.
  const std::uint64_t poison_sent = row.requests / 10;  // i % 10 == 7 per client
  row.bit_identical = ok.load() && stats.completed == stats.submitted &&
                      row.errors == poison_sent;
  return row;
}

struct BaselineEntry {
  std::string scenario, backend;
  std::size_t workers = 0, clients = 0;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
};

std::vector<BaselineEntry> parse_baseline(const std::string& path) {
  std::ifstream in(path);
  std::vector<BaselineEntry> entries;
  if (!in.good()) return entries;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  auto pos = text.find("\"results\"");
  if (pos == std::string::npos) return entries;
  while ((pos = text.find('{', pos)) != std::string::npos) {
    const auto end = text.find('}', pos);
    if (end == std::string::npos) break;
    const std::string obj = text.substr(pos, end - pos + 1);
    double workers = 0, clients = 0, offered = 0, achieved = 0;
    const std::string scenario = scan_string(obj, "scenario");
    if (!scenario.empty() && scan_number(obj, "workers", &workers) &&
        scan_number(obj, "achieved_qps", &achieved)) {
      scan_number(obj, "clients", &clients);
      scan_number(obj, "offered_qps", &offered);
      entries.push_back({scenario, scan_string(obj, "backend"),
                         static_cast<std::size_t>(workers), static_cast<std::size_t>(clients),
                         offered, achieved});
    }
    pos = end + 1;
  }
  return entries;
}

double baseline_closed_qps(const std::vector<BaselineEntry>& entries, const Row& r) {
  for (const auto& e : entries) {
    if (e.scenario == "closed" && e.backend == r.backend && e.workers == r.workers &&
        e.clients == r.clients) {
      return e.achieved_qps;
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string baseline_path;
  bool chaos = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check-regression") {
      if (i + 1 >= argc) {
        std::cerr << "FAIL: --check-regression needs a baseline path\n";
        return 2;
      }
      baseline_path = argv[++i];
    } else if (arg == "--chaos") {
      chaos = true;
    } else {
      out_path = arg;
    }
  }
  if (out_path.empty()) out_path = chaos ? "BENCH_serve_chaos.json" : "BENCH_serve.json";
  std::vector<BaselineEntry> baseline;
  if (!baseline_path.empty()) {
    baseline = parse_baseline(baseline_path);
    if (baseline.empty()) {
      std::cerr << "FAIL: no parsable results in baseline " << baseline_path << "\n";
      return 2;
    }
  }

  // A small MLP keeps per-batch work in the tens of microseconds, so the
  // numbers measure the serving layer (queueing, coalescing, scatter), not
  // the GEMM.
  Rng rng(97);
  auto net = pdnn::nn::mlp(16, 32, 4, 1, rng);
  pdnn::exec::FloatBackend fproto = pdnn::exec::FloatBackend::compile(*net);
  pdnn::quant::SessionConfig scfg;
  scfg.spec = {8, 1};
  scfg.mode = pdnn::quant::AccumMode::kSerial;
  auto pproto = pdnn::quant::PositSession::compile_backend(*net, scfg);

  std::vector<Tensor> samples;
  for (int i = 0; i < 16; ++i) samples.push_back(Tensor::randn({16}, rng));
  std::vector<Tensor> fwant, pwant;
  for (const Tensor& s : samples) {
    fwant.push_back(solo_run(fproto, s));
    pwant.push_back(solo_run(*pproto, s));
  }

  EngineConfig cfg;
  cfg.max_batch = 8;
  cfg.batch_timeout = std::chrono::microseconds(100);

  std::vector<Row> rows;
  if (chaos) {
    // Chaos-only rows: a 4-worker pool with one flaky worker (seeded
    // scheduled throws + injected latency) and a poison trigger armed on
    // every worker; clients mix poison requests into the traffic. The
    // quarantine knobs are tightened so the flaky worker's counters move.
    EngineConfig ccfg = cfg;
    ccfg.workers = 4;
    ccfg.max_batch = 4;
    ccfg.quarantine_threshold = 3;
    ccfg.rebuild_backoff = std::chrono::milliseconds(1);
    rows.push_back(chaos_loop("float", fproto, ccfg, samples, fwant, /*clients=*/4,
                              /*per_client=*/100));
    ccfg.workers = 1;  // every batch lands on the flaky trigger-armed worker
    rows.push_back(chaos_loop("float", fproto, ccfg, samples, fwant, /*clients=*/2,
                              /*per_client=*/100));
  } else {
  // Closed loop: worker sweep at a fixed client count (structural scaling on
  // a 1-core container: workers overlap batch assembly with execution), then
  // a client sweep at the worker count CI regresses on.
  for (const std::size_t workers : {1u, 2u, 4u}) {
    cfg.workers = workers;
    rows.push_back(closed_loop("float", fproto, cfg, samples, fwant, /*clients=*/4,
                               /*per_client=*/400));
  }
  cfg.workers = 2;
  for (const std::size_t clients : {1u, 2u, 8u}) {
    rows.push_back(closed_loop("float", fproto, cfg, samples, fwant, clients, 400));
  }
  rows.push_back(closed_loop("posit", *pproto, cfg, samples, pwant, /*clients=*/4,
                             /*per_client=*/100));

  // Open loop: offered-QPS sweep through saturation; the top rate is far past
  // what one core sustains, so the tail shows queueing, not a hang.
  for (const double qps : {2000.0, 8000.0, 20000.0}) {
    cfg.workers = 2;
    rows.push_back(open_loop("float", fproto, cfg, samples, qps,
                             static_cast<std::size_t>(qps * 0.25)));
  }
  }

  for (const Row& r : rows) {
    if (r.scenario == "chaos") {
      std::printf("chaos  %-5s w%zu c%zu  %8.0f req/s  p50 %7.1fus  p99 %7.1fus  "
                  "faults %llu  retries %llu  quarantines %llu  rebuilds %llu  %s\n",
                  r.backend.c_str(), r.workers, r.clients, r.achieved_qps, r.lat.p50_us,
                  r.lat.p99_us, static_cast<unsigned long long>(r.errors),
                  static_cast<unsigned long long>(r.retries),
                  static_cast<unsigned long long>(r.quarantines),
                  static_cast<unsigned long long>(r.rebuilds),
                  r.bit_identical ? "contained" : "MISMATCH");
    } else if (r.scenario == "closed") {
      std::printf("closed %-5s w%zu c%zu  %8.0f req/s  p50 %7.1fus  p99 %7.1fus  p999 %7.1fus  "
                  "mean batch %.2f  %s\n",
                  r.backend.c_str(), r.workers, r.clients, r.achieved_qps, r.lat.p50_us,
                  r.lat.p99_us, r.lat.p999_us, r.mean_batch,
                  r.bit_identical ? "bit-identical" : "MISMATCH");
    } else {
      std::printf("open   %-5s w%zu offered %7.0f  achieved %7.0f req/s  p50 %7.1fus  "
                  "p99 %8.1fus  p999 %8.1fus  mean batch %.2f\n",
                  r.backend.c_str(), r.workers, r.offered_qps, r.achieved_qps, r.lat.p50_us,
                  r.lat.p99_us, r.lat.p999_us, r.mean_batch);
    }
  }

  std::ofstream out(out_path);
  if (!out.good()) {
    std::cerr << "FAIL: cannot open " << out_path << " for writing\n";
    return 2;
  }
  out << "{\n  \"bench\": \"serve\",\n  \"net\": \"mlp16x32x4\",\n  \"max_batch\": "
      << cfg.max_batch << ",\n  \"batch_timeout_us\": 100,\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"scenario\": \"" << r.scenario << "\", \"backend\": \"" << r.backend
        << "\", \"workers\": " << r.workers << ", \"clients\": " << r.clients
        << ", \"offered_qps\": " << r.offered_qps << ", \"requests\": " << r.requests
        << ", \"achieved_qps\": " << r.achieved_qps << ", \"p50_us\": " << r.lat.p50_us
        << ", \"p99_us\": " << r.lat.p99_us << ", \"p999_us\": " << r.lat.p999_us
        << ", \"batches\": " << r.batches << ", \"mean_batch\": " << r.mean_batch
        << ", \"hist\": \"" << r.hist << "\", \"rejected\": " << r.rejected
        << ", \"shed\": " << r.shed << ", \"deadline_expired\": " << r.deadline_expired
        << ", \"retries\": " << r.retries << ", \"quarantines\": " << r.quarantines
        << ", \"rebuilds\": " << r.rebuilds << ", \"errors\": " << r.errors
        << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  bool mismatch = false;
  for (const Row& r : rows) {
    if (!r.bit_identical) {
      if (r.scenario == "chaos") {
        std::cerr << "FAIL: chaos (workers=" << r.workers << ") broke containment — a healthy "
                  << "request faulted, a poison request slipped through, diverged from solo, "
                  << "or a future never resolved\n";
      } else {
        std::cerr << "FAIL: " << r.backend << " batched answer (workers=" << r.workers
                  << ") diverged from the solo reference\n";
      }
      mismatch = true;
    }
  }

  bool regressed = false;
  if (!baseline_path.empty()) {
    for (const Row& r : rows) {
      if (r.scenario != "closed") continue;
      const double base = baseline_closed_qps(baseline, r);
      if (base <= 0.0) continue;  // row not in baseline; nothing to compare
      const double ratio = r.achieved_qps / base;
      std::printf("regression check closed %-5s w%zu c%zu: %8.0f req/s vs baseline %8.0f (x%.2f)%s\n",
                  r.backend.c_str(), r.workers, r.clients, r.achieved_qps, base, ratio,
                  ratio < 0.8 ? "  REGRESSION" : "");
      if (ratio < 0.8) regressed = true;
    }
    if (regressed)
      std::cerr << "FAIL: closed-loop achieved QPS dropped >20% vs " << baseline_path << "\n";
  }
  if (mismatch) return 1;
  return regressed ? 3 : 0;
}
