// train — training-path perf tracking. Times one optimizer step (forward +
// backward + SGD update) through the eager Module::backward path and through
// train::Trainer's compiled ExecPlan path, on the bench MLP and a ResNet-8
// CNN, recording steps/s, samples/s, and the training arena footprint per
// row, then writes BENCH_train.json.
//
// Before any timing, each net's determinism contract is bit-checked:
// a single-shard Trainer step must leave parameters bit-identical to the
// manual eager loop, and 1/2/4-worker Trainers at a fixed micro-batch must
// train bit-identical parameters. A violation is always a real failure.
//
// Usage:
//   bench_train [out.json]
//   bench_train --check-regression <baseline.json> [out.json]
//     also compares plan-path steps/s against the committed baseline.
//
// Exit codes: 0 ok; 1 correctness mismatch (plan diverged from eager, or
// worker counts disagree — always a real failure); 2 usage / unreadable
// baseline / unwritable output; 3 only a perf regression (>20% below
// baseline — CI treats this one as non-blocking).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "nn/optimizer.hpp"
#include "nn/resnet.hpp"
#include "tensor/ops.hpp"
#include "train/trainer.hpp"

namespace {

using pdnn::tensor::Rng;
using pdnn::tensor::Tensor;
using pdnn::benchutil::scan_number;
using pdnn::benchutil::scan_string;
using pdnn::benchutil::time_best;

struct Workload {
  std::string name;                                          // "mlp" | "resnet8"
  std::function<std::unique_ptr<pdnn::nn::Sequential>()> make;  // same seed each call
  Tensor bx;
  std::vector<int> by;
  int reps = 10;  // best-of repetitions per timed row
};

struct Row {
  std::string net;
  std::string path;  // "eager" | "plan"
  std::size_t workers = 1;
  std::size_t micro_batch = 0;
  std::size_t batch = 0;
  double steps_per_s = 0.0;
  double samples_per_s = 0.0;
  std::size_t arena_bytes = 0;
  bool bit_identical = true;
};

bool params_bit_identical(pdnn::nn::Module& a, pdnn::nn::Module& b) {
  const auto pa = a.params();
  const auto pb = b.params();
  if (pa.size() != pb.size()) return false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const auto& va = pa[i]->value;
    const auto& vb = pb[i]->value;
    if (va.shape() != vb.shape() ||
        std::memcmp(va.data(), vb.data(), va.numel() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

/// One eager optimizer step: the reference numerics the plan path must hit.
float eager_step(pdnn::nn::Sequential& net, pdnn::nn::SgdMomentum& opt, const Tensor& bx,
                 const std::vector<int>& by) {
  opt.zero_grad();
  const Tensor logits = net.forward(bx, /*training=*/true);
  Tensor dlogits;
  const float loss = pdnn::tensor::cross_entropy(logits, by, &dlogits);
  net.backward(dlogits);
  opt.step();
  return loss;
}

/// Determinism contract for one workload: single-shard plan step bit-matches
/// the eager loop, and worker count never changes the trained bits.
bool check_bit_identity(const Workload& w, const pdnn::nn::SgdConfig& sgd) {
  auto eager_net = w.make();
  auto plan_net = w.make();
  pdnn::nn::SgdMomentum opt(eager_net->params(), sgd);

  pdnn::train::TrainerConfig cfg;
  cfg.batch_size = w.bx.shape()[0];
  cfg.workers = 1;
  cfg.sgd = sgd;
  pdnn::train::Trainer trainer(*plan_net, cfg);
  for (int s = 0; s < 2; ++s) {
    eager_step(*eager_net, opt, w.bx, w.by);
    trainer.step(w.bx, w.by);
    if (!params_bit_identical(*eager_net, *plan_net)) {
      std::cerr << "FAIL: " << w.name << " single-shard plan step " << s
                << " diverged from the eager loop\n";
      return false;
    }
  }

  auto n1 = w.make();
  auto n2 = w.make();
  auto n4 = w.make();
  const auto train_with = [&](pdnn::nn::Sequential& net, std::size_t workers) {
    pdnn::train::TrainerConfig mcfg;
    mcfg.batch_size = w.bx.shape()[0];
    mcfg.micro_batch = std::max<std::size_t>(1, w.bx.shape()[0] / 4);
    mcfg.workers = workers;
    mcfg.sgd = sgd;
    pdnn::train::Trainer t(net, mcfg);
    for (int s = 0; s < 2; ++s) t.step(w.bx, w.by);
  };
  train_with(*n1, 1);
  train_with(*n2, 2);
  train_with(*n4, 4);
  if (!params_bit_identical(*n1, *n2) || !params_bit_identical(*n1, *n4)) {
    std::cerr << "FAIL: " << w.name << " trained bits differ across 1/2/4 workers\n";
    return false;
  }
  return true;
}

Row time_eager(const Workload& w, const pdnn::nn::SgdConfig& sgd) {
  auto net = w.make();
  pdnn::nn::SgdMomentum opt(net->params(), sgd);
  eager_step(*net, opt, w.bx, w.by);  // warm caches and scratch
  const double best = time_best([&] { eager_step(*net, opt, w.bx, w.by); }, w.reps);
  Row r;
  r.net = w.name;
  r.path = "eager";
  r.batch = w.bx.shape()[0];
  r.steps_per_s = 1.0 / best;
  r.samples_per_s = static_cast<double>(r.batch) / best;
  return r;
}

Row time_plan(const Workload& w, const pdnn::nn::SgdConfig& sgd, std::size_t workers,
              std::size_t micro_batch) {
  auto net = w.make();
  pdnn::train::TrainerConfig cfg;
  cfg.batch_size = w.bx.shape()[0];
  cfg.micro_batch = micro_batch;
  cfg.workers = workers;
  cfg.sgd = sgd;
  pdnn::train::Trainer trainer(*net, cfg);
  trainer.step(w.bx, w.by);  // warm: bind panels, settle pack scratch
  const double best = time_best([&] { trainer.step(w.bx, w.by); }, w.reps);
  Row r;
  r.net = w.name;
  r.path = "plan";
  r.workers = workers;
  r.micro_batch = micro_batch == 0 ? static_cast<std::size_t>(w.bx.shape()[0]) : micro_batch;
  r.batch = w.bx.shape()[0];
  r.steps_per_s = 1.0 / best;
  r.samples_per_s = static_cast<double>(r.batch) / best;
  r.arena_bytes = trainer.arena_bytes();
  return r;
}

struct BaselineEntry {
  std::string net, path;
  std::size_t workers = 0;
  double steps_per_s = 0.0;
};

std::vector<BaselineEntry> parse_baseline(const std::string& path) {
  std::ifstream in(path);
  std::vector<BaselineEntry> entries;
  if (!in.good()) return entries;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  auto pos = text.find("\"results\"");
  if (pos == std::string::npos) return entries;
  while ((pos = text.find('{', pos)) != std::string::npos) {
    const auto end = text.find('}', pos);
    if (end == std::string::npos) break;
    const std::string obj = text.substr(pos, end - pos + 1);
    double workers = 0, steps = 0;
    const std::string net = scan_string(obj, "net");
    if (!net.empty() && scan_number(obj, "workers", &workers) &&
        scan_number(obj, "steps_per_s", &steps)) {
      entries.push_back(
          {net, scan_string(obj, "path"), static_cast<std::size_t>(workers), steps});
    }
    pos = end + 1;
  }
  return entries;
}

double baseline_steps(const std::vector<BaselineEntry>& entries, const Row& r) {
  for (const auto& e : entries) {
    if (e.net == r.net && e.path == r.path && e.workers == r.workers) return e.steps_per_s;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check-regression") {
      if (i + 1 >= argc) {
        std::cerr << "FAIL: --check-regression needs a baseline path\n";
        return 2;
      }
      baseline_path = argv[++i];
    } else {
      out_path = arg;
    }
  }
  if (out_path.empty()) out_path = "BENCH_train.json";
  std::vector<BaselineEntry> baseline;
  if (!baseline_path.empty()) {
    baseline = parse_baseline(baseline_path);
    if (baseline.empty()) {
      std::cerr << "FAIL: no parsable results in baseline " << baseline_path << "\n";
      return 2;
    }
  }

  // Two workloads: the serving-bench MLP scaled up to training shape, and a
  // ResNet-8 matching the synth-Cifar task (16x16, base 8). Batches are one
  // optimizer step each; reps are best-of to shrug off scheduler noise.
  Rng rng(1234);
  std::vector<Workload> workloads;
  {
    Workload w;
    w.name = "mlp64x128x10";
    w.make = [] {
      Rng r(41);
      return pdnn::nn::mlp(64, 128, 10, 2, r);
    };
    w.bx = Tensor::randn({64, 64}, rng);
    for (std::size_t i = 0; i < 64; ++i) w.by.push_back(static_cast<int>(i % 10));
    w.reps = 30;
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "resnet8c8";
    w.make = [] {
      Rng r(42);
      pdnn::nn::ResNetConfig rc;
      rc.blocks_per_stage = 1;
      rc.base_channels = 8;
      rc.classes = 10;
      return pdnn::nn::cifar_resnet(rc, r);
    };
    w.bx = Tensor::randn({16, 3, 16, 16}, rng);
    for (std::size_t i = 0; i < 16; ++i) w.by.push_back(static_cast<int>(i % 10));
    w.reps = 10;
    workloads.push_back(std::move(w));
  }

  pdnn::nn::SgdConfig sgd;
  sgd.lr = 0.05f;
  sgd.weight_decay = 1e-4f;

  bool mismatch = false;
  std::vector<Row> rows;
  for (const Workload& w : workloads) {
    const bool ok = check_bit_identity(w, sgd);
    if (!ok) mismatch = true;

    Row eager = time_eager(w, sgd);
    eager.bit_identical = ok;
    rows.push_back(eager);
    // Plan path: the apples-to-apples single-shard row first, then the
    // worker sweep at a fixed micro-batch (structural scaling on a 1-core
    // container: shards overlap only via OS scheduling, but the bits match).
    Row single = time_plan(w, sgd, /*workers=*/1, /*micro_batch=*/0);
    single.bit_identical = ok;
    rows.push_back(single);
    const std::size_t micro = std::max<std::size_t>(1, w.bx.shape()[0] / 4);
    for (const std::size_t workers : {2u, 4u}) {
      Row r = time_plan(w, sgd, workers, micro);
      r.bit_identical = ok;
      rows.push_back(r);
    }
  }

  for (const Row& r : rows) {
    std::printf("%-12s %-5s w%zu micro %2zu batch %2zu  %8.1f steps/s  %9.0f samples/s"
                "  arena %8zu B  %s\n",
                r.net.c_str(), r.path.c_str(), r.workers, r.micro_batch, r.batch, r.steps_per_s,
                r.samples_per_s, r.arena_bytes, r.bit_identical ? "bit-identical" : "MISMATCH");
  }

  std::ofstream out(out_path);
  if (!out.good()) {
    std::cerr << "FAIL: cannot open " << out_path << " for writing\n";
    return 2;
  }
  out << "{\n  \"bench\": \"train\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"net\": \"" << r.net << "\", \"path\": \"" << r.path
        << "\", \"workers\": " << r.workers << ", \"micro_batch\": " << r.micro_batch
        << ", \"batch\": " << r.batch << ", \"steps_per_s\": " << r.steps_per_s
        << ", \"samples_per_s\": " << r.samples_per_s << ", \"arena_bytes\": " << r.arena_bytes
        << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  bool regressed = false;
  if (!baseline_path.empty()) {
    for (const Row& r : rows) {
      if (r.path != "plan") continue;
      const double base = baseline_steps(baseline, r);
      if (base <= 0.0) continue;  // row not in baseline; nothing to compare
      const double ratio = r.steps_per_s / base;
      std::printf("regression check %-12s w%zu: %8.1f steps/s vs baseline %8.1f (x%.2f)%s\n",
                  r.net.c_str(), r.workers, r.steps_per_s, base, ratio,
                  ratio < 0.8 ? "  REGRESSION" : "");
      if (ratio < 0.8) regressed = true;
    }
    if (regressed)
      std::cerr << "FAIL: plan-path steps/s dropped >20% vs " << baseline_path << "\n";
  }
  if (mismatch) return 1;
  return regressed ? 3 : 0;
}
