// micro_posit_ops — google-benchmark microbenchmarks of the software posit
// kernels used throughout training (supporting data, not a paper table).
#include <benchmark/benchmark.h>

#include "posit/arith.hpp"
#include "posit/quire.hpp"
#include "posit/simd.hpp"
#include "posit/unpacked.hpp"
#include "quant/posit_transform.hpp"
#include "tensor/random.hpp"

namespace {

using namespace pdnn;

std::vector<std::uint32_t> random_codes(const posit::PositSpec& spec, std::size_t count) {
  tensor::Rng rng(99);
  std::vector<std::uint32_t> codes(count);
  for (auto& c : codes) {
    do {
      c = static_cast<std::uint32_t>(rng.next_u64()) & spec.mask();
    } while (c == spec.nar_code());
  }
  return codes;
}

void BM_PositAdd(benchmark::State& state) {
  const posit::PositSpec spec{static_cast<int>(state.range(0)), static_cast<int>(state.range(1))};
  const auto codes = random_codes(spec, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(posit::add(codes[i & 1023], codes[(i + 1) & 1023], spec));
    ++i;
  }
}
BENCHMARK(BM_PositAdd)->Args({8, 1})->Args({16, 1})->Args({32, 3});

void BM_PositMul(benchmark::State& state) {
  const posit::PositSpec spec{static_cast<int>(state.range(0)), static_cast<int>(state.range(1))};
  const auto codes = random_codes(spec, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(posit::mul(codes[i & 1023], codes[(i + 1) & 1023], spec));
    ++i;
  }
}
BENCHMARK(BM_PositMul)->Args({8, 1})->Args({16, 1})->Args({32, 3});

void BM_QuireDotProduct(benchmark::State& state) {
  const posit::PositSpec spec{static_cast<int>(state.range(0)), static_cast<int>(state.range(1))};
  const auto codes = random_codes(spec, 1024);
  for (auto _ : state) {
    posit::Quire q(spec);
    for (std::size_t i = 0; i < 256; ++i) q.add_product(codes[i], codes[i + 256]);
    benchmark::DoNotOptimize(q.to_posit());
  }
}
BENCHMARK(BM_QuireDotProduct)->Args({8, 1})->Args({16, 1});

void BM_TransformAlgorithm1(benchmark::State& state) {
  const posit::PositSpec spec{static_cast<int>(state.range(0)), static_cast<int>(state.range(1))};
  tensor::Rng rng(3);
  tensor::Tensor t = tensor::Tensor::randn({4096}, rng, 0.05f);
  for (auto _ : state) {
    tensor::Tensor copy = t;
    quant::transform_inplace(copy, spec);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_TransformAlgorithm1)->Args({8, 1})->Args({8, 2})->Args({16, 1})->Args({16, 2});

void BM_TransformScaled(benchmark::State& state) {
  const posit::PositSpec spec{static_cast<int>(state.range(0)), static_cast<int>(state.range(1))};
  tensor::Rng rng(3);
  tensor::Tensor t = tensor::Tensor::randn({4096}, rng, 0.05f);
  for (auto _ : state) {
    tensor::Tensor copy = t;
    quant::transform_scaled_inplace(copy, spec, -4);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_TransformScaled)->Args({8, 1})->Args({16, 2});

/// Span decode through the dispatcher: AVX2 batch-of-8 when available
/// (/simd=1), forced scalar otherwise (/simd=0) — same codes, same output,
/// the bit-identity pair bench_posit asserts on.
void BM_DecodeSpan(benchmark::State& state) {
  const posit::PositSpec spec{static_cast<int>(state.range(0)), static_cast<int>(state.range(1))};
  const bool want_simd = state.range(2) != 0;
  if (want_simd && !posit::simd::available()) {
    state.SkipWithError("AVX2 unavailable");
    return;
  }
  posit::simd::force_disable(!want_simd);
  const auto codes = random_codes(spec, 4096);
  std::vector<posit::Unpacked> ops(codes.size());
  for (auto _ : state) {
    posit::decode_unpacked(codes.data(), codes.size(), spec, ops.data());
    benchmark::DoNotOptimize(ops.data());
  }
  posit::simd::force_disable(false);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(codes.size()));
}
BENCHMARK(BM_DecodeSpan)
    ->Args({8, 1, 0})
    ->Args({8, 1, 1})
    ->Args({16, 1, 0})
    ->Args({16, 1, 1})
    ->Args({32, 2, 0})
    ->Args({32, 2, 1});

/// Quire::accumulate_dot over pre-decoded lanes: the vectorized carry-save
/// limb deposit (/simd=1) vs the scalar chunk loop (/simd=0).
void BM_QuireAccumulateDot(benchmark::State& state) {
  const posit::PositSpec spec{static_cast<int>(state.range(0)), static_cast<int>(state.range(1))};
  const bool want_simd = state.range(2) != 0;
  if (want_simd && !posit::simd::available()) {
    state.SkipWithError("AVX2 unavailable");
    return;
  }
  posit::simd::force_disable(!want_simd);
  const auto a_codes = random_codes(spec, 1024);
  const auto b_codes = random_codes(spec, 1024);
  std::vector<posit::Unpacked> a(1024), b(1024);
  posit::decode_unpacked(a_codes.data(), 1024, spec, a.data());
  posit::decode_unpacked(b_codes.data(), 1024, spec, b.data());
  posit::Quire q(spec);
  for (auto _ : state) {
    q.clear();
    q.accumulate_dot(a.data(), b.data(), 1024);
    benchmark::DoNotOptimize(q.to_posit());
  }
  posit::simd::force_disable(false);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_QuireAccumulateDot)
    ->Args({8, 1, 0})
    ->Args({8, 1, 1})
    ->Args({16, 1, 0})
    ->Args({16, 1, 1})
    ->Args({32, 2, 0})
    ->Args({32, 2, 1});

void BM_FromDoubleNearest(benchmark::State& state) {
  const posit::PositSpec spec{16, 1};
  tensor::Rng rng(5);
  std::vector<double> xs(1024);
  for (auto& x : xs) x = rng.normal();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(posit::from_double(xs[i & 1023], spec));
    ++i;
  }
}
BENCHMARK(BM_FromDoubleNearest);

}  // namespace

BENCHMARK_MAIN();
