// accel_projection — reproduces the Section V projection: applying posit in a
// DNN training accelerator saves 2-4x on data communication (8/16-bit tensors
// vs FP32) and cuts energy per training step (per-MAC energies from Table V's
// gate-level model).
#include <cstdio>

#include "hw/accel_model.hpp"
#include "hw/analysis.hpp"
#include "hw/posit_mac.hpp"

int main() {
  using namespace pdnn::hw;
  const auto net = cifar_resnet18_geometry();
  const double freq = 750.0;

  const auto mac_energy = [&](const Netlist& nl) {
    // pJ per MAC operation = dynamic+leak power / op rate.
    const CircuitReport r = characterize(nl, "mac", freq, 800);
    return r.power_mw / freq * 1e3;  // mW / MHz -> pJ/op (one op per cycle)
  };

  struct Mode {
    const char* name;
    double bits;
    double mac_pj;
  };
  const double fp32_pj = mac_energy(make_fp_mac_netlist(FpFormat{10, 23}));
  const Mode modes[] = {
      {"FP32", 32.0, fp32_pj},
      {"posit16 (ImageNet cfg)", 16.0, mac_energy(make_posit_mac_netlist(PositHwSpec{16, 1}, true))},
      {"posit8  (Cifar cfg)", 8.0, mac_energy(make_posit_mac_netlist(PositHwSpec{8, 1}, true))},
  };

  std::printf("Section V projection: Cifar-ResNet-18 training step (one image)\n\n");
  std::printf("%-24s %14s %14s %10s %10s %10s %12s\n", "format", "traffic(Mbit)", "comm vs FP32",
              "comp(uJ)", "mem(uJ)", "total(uJ)", "E vs FP32");

  double fp32_traffic = 0.0, fp32_energy = 0.0;
  for (const Mode& m : modes) {
    EnergyParams p;
    p.bits_per_value = m.bits;
    p.mac_energy_pj = m.mac_pj;
    const TrainingStepCost c = training_step_cost(net, p);
    if (m.bits == 32.0) {
      fp32_traffic = c.traffic_bits;
      fp32_energy = c.total_energy_uj();
    }
    std::printf("%-24s %14.2f %13.1fx %10.2f %10.2f %10.2f %11.1fx\n", m.name, c.traffic_bits / 1e6,
                fp32_traffic / c.traffic_bits, c.compute_energy_uj,
                c.dram_energy_uj + c.sram_energy_uj, c.total_energy_uj(),
                fp32_energy / c.total_energy_uj());
  }
  std::printf("\npaper claim: communication overhead saved by 2-4x (16-bit: 2x, 8-bit: 4x)\n");
  return 0;
}
