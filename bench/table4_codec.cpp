// table4_codec — reproduces Table IV: "Delay comparison of encoder and
// decoder with [6]" plus our power/area rows, at posit(8,0), (16,1), (32,3).
//
// "[6]" rows are the original Zhang et al. structures (Figs. 5a/6a, with the
// "+1" incrementer on the critical path); "Ours" rows are the paper's
// optimized structures (Figs. 5b/6b). Absolute ns/mW/um^2 come from the
// calibrated 28nm-like cell model (DESIGN.md §2); the claim under test is the
// relative speedup: encoder 25-35%, decoder 15-30% in the paper.
#include <cstdio>

#include "hw/analysis.hpp"
#include "hw/posit_codec_hw.hpp"

int main() {
  using namespace pdnn::hw;
  const PositHwSpec specs[] = {{8, 0}, {16, 1}, {32, 3}};

  std::printf("Table IV reproduction (750 MHz power; 28nm-like cell model)\n\n");
  std::printf("%-22s %12s %12s %12s\n", "", "posit(8,0)", "posit(16,1)", "posit(32,3)");

  CircuitReport enc_orig[3], dec_orig[3], enc_opt[3], dec_opt[3];
  for (int i = 0; i < 3; ++i) {
    enc_orig[i] = characterize(make_encoder_netlist(specs[i], false), "enc_orig");
    dec_orig[i] = characterize(make_decoder_netlist(specs[i], false), "dec_orig");
    enc_opt[i] = characterize(make_encoder_netlist(specs[i], true), "enc_opt");
    dec_opt[i] = characterize(make_decoder_netlist(specs[i], true), "dec_opt");
  }

  const auto row = [](const char* label, const CircuitReport* r, double CircuitReport::*field,
                      const char* fmt) {
    std::printf("%-22s", label);
    for (int i = 0; i < 3; ++i) std::printf(fmt, r[i].*field);
    std::printf("\n");
  };
  row("[6] delay(ns) encoder", enc_orig, &CircuitReport::delay_ns, " %12.3f");
  row("[6] delay(ns) decoder", dec_orig, &CircuitReport::delay_ns, " %12.3f");
  row("Ours delay(ns) encoder", enc_opt, &CircuitReport::delay_ns, " %12.3f");
  row("Ours delay(ns) decoder", dec_opt, &CircuitReport::delay_ns, " %12.3f");
  row("Ours power(mW) encoder", enc_opt, &CircuitReport::power_mw, " %12.3f");
  row("Ours power(mW) decoder", dec_opt, &CircuitReport::power_mw, " %12.3f");
  row("Ours area(um2) encoder", enc_opt, &CircuitReport::area_um2, " %12.0f");
  row("Ours area(um2) decoder", dec_opt, &CircuitReport::area_um2, " %12.0f");

  std::printf("\nspeedups (1 - opt/orig):\n");
  std::printf("%-22s", "encoder");
  for (int i = 0; i < 3; ++i)
    std::printf(" %11.1f%%", 100.0 * (1.0 - enc_opt[i].delay_ns / enc_orig[i].delay_ns));
  std::printf("   [paper: 25-35%%]\n");
  std::printf("%-22s", "decoder");
  for (int i = 0; i < 3; ++i)
    std::printf(" %11.1f%%", 100.0 * (1.0 - dec_opt[i].delay_ns / dec_orig[i].delay_ns));
  std::printf("   [paper: 15-30%%]\n");

  std::printf("\npaper Table IV reference delays (TSMC 28nm, Design Compiler):\n");
  std::printf("  [6]  encoder 0.20 / 0.29 / 0.35 ns, decoder 0.20 / 0.28 / 0.34 ns\n");
  std::printf("  Ours encoder 0.13 / 0.18 / 0.23 ns, decoder 0.14 / 0.21 / 0.29 ns\n");
  std::printf("  Ours power (enc/dec): 0.21/0.27, 0.44/0.45, 0.59/0.66 mW\n");
  std::printf("  Ours area  (enc/dec): 137/201, 295/504, 540/960 um2\n");
  return 0;
}
