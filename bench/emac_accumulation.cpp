// emac_accumulation — accuracy of TRUE posit inference under the three
// accumulation strategies, on a model trained with the paper's methodology.
//
// Context (Section II-B): Deep Positron uses exact multiply-and-accumulate
// (EMAC, i.e. a quire); the paper's own MAC (Fig. 4) converts to FP and
// accumulates with rounding. This bench quantifies what that choice costs at
// inference time, and validates that FP32-simulated quantized training
// faithfully predicts true posit execution.
#include <cstdio>

#include "data/synthetic.hpp"
#include "nn/resnet.hpp"
#include "nn/trainer.hpp"
#include "quant/posit_inference.hpp"

int main() {
  using namespace pdnn;
  using quant::AccumMode;

  // Train an MLP on spirals with the posit-16 recipe.
  tensor::Rng rng(21);
  auto net = nn::mlp(2, 32, 3, 2, rng);
  const auto data = data::make_spirals(3, 250, 0.08f, 9);

  quant::QuantConfig cfg = quant::QuantConfig::imagenet16();
  quant::QuantPolicy policy(cfg);
  nn::TrainConfig tc;
  tc.epochs = 50;
  tc.batch_size = 32;
  tc.sgd = {.lr = 0.1f, .momentum = 0.9f, .weight_decay = 0.0f};
  tc.schedule = {.base_lr = 0.1f, .drop_epochs = {40}, .factor = 10.0f};
  tc.warmup_epochs = 2;
  tc.on_warmup_end = [&policy](nn::Sequential& n) {
    policy.calibrate(n);
    policy.activate();
  };
  nn::Trainer trainer(*net, &policy, tc);
  trainer.fit(data.train.images, data.train.labels, data.test.images, data.test.labels);

  const float sim_acc = trainer.evaluate(data.test.images, data.test.labels);
  std::printf("3-arm spirals, MLP trained with posit-16 recipe\n\n");
  std::printf("%-46s %s\n", "inference arithmetic", "test accuracy");
  std::printf("%-46s %.2f%%\n", "FP32-simulated quantization (training view)", 100.0 * sim_acc);

  policy.deactivate();  // posit_forward reads raw (already on-grid) weights
  const auto eval_mode = [&](const char* name, AccumMode mode, const quant::QuantConfig& c) {
    const tensor::Tensor logits = quant::posit_forward(*net, data.test.images, c, mode);
    const std::size_t correct = tensor::count_correct(logits, data.test.labels);
    std::printf("%-46s %.2f%%\n", name,
                100.0 * static_cast<double>(correct) / static_cast<double>(data.test.size()));
  };
  eval_mode("posit16, quire accumulation (Deep Positron EMAC)", AccumMode::kQuire, cfg);
  eval_mode("posit16, FMA chain (paper's Fig. 4 MAC)", AccumMode::kFma, cfg);
  eval_mode("posit16, serial rounded adds", AccumMode::kSerial, cfg);

  // Drop the deployed precision to 8 bits (weights were trained at 16).
  quant::QuantConfig cfg8 = quant::QuantConfig::cifar8();
  eval_mode("posit8,  quire accumulation", AccumMode::kQuire, cfg8);
  eval_mode("posit8,  FMA chain", AccumMode::kFma, cfg8);
  eval_mode("posit8,  serial rounded adds", AccumMode::kSerial, cfg8);

  std::printf("\nexpected shape: simulated == true posit-16 (emulation fidelity); quire and fma\n");
  std::printf("agree; serial rounded accumulation trails slightly at 8 bits.\n");
  return 0;
}
