// table3_accuracy — reproduces Table III: "Training configurations and
// validate accuracies results".
//
// Paper rows (absolute numbers are theirs; ours come from the synthetic
// stand-in tasks — DESIGN.md §2):
//   Cifar-10  / Cifar-ResNet-18 : FP32 93.40 vs posit 92.87
//     posit (8,1) CONV forward+update, (8,2) CONV backward,
//     (16,1) BN forward+update, (16,2) BN backward
//   ImageNet  / ResNet-18       : FP32 71.02 vs posit 71.09
//     posit (16,1) forward+update, (16,2) backward
// The claim under test is RELATIVE: posit training reaches the FP32 baseline
// of the same model/dataset.
#include "train_common.hpp"

int main() {
  using namespace bench;

  std::printf("Table III reproduction: FP32 baseline vs posit training\n");
  std::printf("(synthetic stand-in tasks; the paper's claim is the FP32-vs-posit delta)\n\n");

  // --- Cifar-10 analogue --------------------------------------------------
  {
    const TaskConfig task = synth_cifar_task();
    std::printf("[synth-Cifar-10] ResNet-8, %zux%zu, %zu classes, %zu epochs, batch %zu,\n"
                "  SGD momentum 0.9, warm-up %zu epoch(s)\n",
                task.data.height, task.data.width, task.data.classes, task.train.epochs,
                task.train.batch_size, task.train.warmup_epochs);

    const RunResult fp32 = run_training(task, nullptr);
    const quant::QuantConfig cfg = quant::QuantConfig::cifar8();
    const RunResult posit = run_training(task, &cfg);

    std::printf("  FP32 baseline : final %.2f%%  best %.2f%%\n", 100.0 * fp32.final_test_acc,
                100.0 * fp32.best_test_acc);
    std::printf("  posit (8,1)/(8,2) CONV + (16,1)/(16,2) BN : final %.2f%%  best %.2f%%\n",
                100.0 * posit.final_test_acc, 100.0 * posit.best_test_acc);
    std::printf("  delta (posit - FP32, best): %+.2f points   [paper: 92.87 - 93.40 = -0.53]\n\n",
                100.0 * (posit.best_test_acc - fp32.best_test_acc));
  }

  // --- ImageNet analogue ----------------------------------------------------
  {
    const TaskConfig task = synth_imagenet_proxy_task();
    std::printf("[synth-ImageNet-proxy] ResNet-8, %zu classes, %zu epochs, warm-up %zu epochs\n",
                task.data.classes, task.train.epochs, task.train.warmup_epochs);

    const RunResult fp32 = run_training(task, nullptr);
    const quant::QuantConfig cfg = quant::QuantConfig::imagenet16();
    const RunResult posit = run_training(task, &cfg);

    std::printf("  FP32 baseline : final %.2f%%  best %.2f%%\n", 100.0 * fp32.final_test_acc,
                100.0 * fp32.best_test_acc);
    std::printf("  posit (16,1) fwd/update + (16,2) bwd : final %.2f%%  best %.2f%%\n",
                100.0 * posit.final_test_acc, 100.0 * posit.best_test_acc);
    std::printf("  delta (posit - FP32, best): %+.2f points   [paper: 71.09 - 71.02 = +0.07]\n",
                100.0 * (posit.best_test_acc - fp32.best_test_acc));
  }
  return 0;
}
