// train_common.hpp — shared setup for the training benches (Table III,
// Fig. 2, ablations): a laptop-scale stand-in for the paper's Cifar-10 /
// ImageNet experiments (see DESIGN.md §2 for the substitution rationale).
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "data/synthetic.hpp"
#include "nn/resnet.hpp"
#include "nn/trainer.hpp"
#include "quant/policy.hpp"

namespace bench {

using namespace pdnn;

struct TaskConfig {
  data::SynthCifarConfig data;
  nn::ResNetConfig net;
  nn::TrainConfig train;
};

/// The synth-Cifar-10 task: 10 classes, 16x16, ResNet-8 (paper: Cifar-10,
/// 32x32, Cifar-ResNet-18; scaled for a single CPU core).
inline TaskConfig synth_cifar_task(std::size_t epochs = 14) {
  TaskConfig t;
  t.data.classes = 10;
  t.data.train_per_class = 90;
  t.data.test_per_class = 50;
  t.data.height = t.data.width = 16;
  t.data.noise = 0.75f;  // hard enough that FP32 stays below ceiling
  t.data.seed = 2024;

  t.net.blocks_per_stage = 1;  // ResNet-8
  t.net.base_channels = 8;
  t.net.classes = 10;
  t.net.bn_momentum = 0.3f;  // few steps/epoch at this scale: track faster

  t.train.epochs = epochs;
  t.train.batch_size = 50;
  // Paper (Cifar-10): SGD momentum 0.9, lr 0.1, /10 at fixed epochs.
  t.train.sgd = {.lr = 0.1f, .momentum = 0.9f, .weight_decay = 1e-4f};
  t.train.schedule = {.base_lr = 0.1f,
                      .drop_epochs = {epochs * 3 / 5, epochs * 4 / 5},
                      .factor = 10.0f};
  t.train.warmup_epochs = 1;  // paper: 1 epoch for Cifar-10
  return t;
}

/// A harder 20-class task standing in for the paper's ImageNet run (posit-16
/// everywhere). Paper: ResNet-18 / ImageNet / 5 warm-up epochs.
inline TaskConfig synth_imagenet_proxy_task(std::size_t epochs = 12) {
  TaskConfig t;
  t.data.classes = 20;
  t.data.train_per_class = 60;
  t.data.test_per_class = 25;
  t.data.height = t.data.width = 16;
  t.data.noise = 0.85f;
  t.data.seed = 777;

  t.net.blocks_per_stage = 1;
  t.net.base_channels = 8;
  t.net.classes = 20;
  t.net.bn_momentum = 0.3f;

  t.train.epochs = epochs;
  t.train.batch_size = 50;
  t.train.sgd = {.lr = 0.1f, .momentum = 0.9f, .weight_decay = 1e-4f};
  t.train.schedule = {.base_lr = 0.1f, .drop_epochs = {epochs * 2 / 3}, .factor = 10.0f};
  t.train.warmup_epochs = 2;  // scaled-down analogue of the paper's 5
  return t;
}

struct RunResult {
  float best_test_acc = 0.0f;
  float final_test_acc = 0.0f;
  std::vector<nn::EpochResult> history;
};

/// Trains one network on the task. If `quant_cfg` is non-null, runs the
/// paper's flow: FP32 warm-up, then posit quantization at every Fig. 3 hook.
inline RunResult run_training(const TaskConfig& task, const quant::QuantConfig* quant_cfg,
                              std::uint64_t seed = 7, bool verbose = false,
                              const std::function<void(std::size_t, nn::Sequential&)>& epoch_hook = {}) {
  tensor::Rng rng(seed);
  auto net = nn::cifar_resnet(task.net, rng);
  const auto data = data::make_synth_cifar(task.data);

  std::unique_ptr<quant::QuantPolicy> policy;
  nn::TrainConfig tc = task.train;
  tc.shuffle_seed = seed;
  tc.verbose = verbose;
  tc.on_epoch_end = epoch_hook;
  if (quant_cfg != nullptr) {
    policy = std::make_unique<quant::QuantPolicy>(*quant_cfg);
    quant::QuantPolicy* raw = policy.get();
    tc.on_warmup_end = [raw](nn::Sequential& n) {
      raw->calibrate(n);
      raw->activate();
    };
  } else {
    tc.warmup_epochs = 0;  // pure FP32 baseline
  }

  nn::Trainer trainer(*net, policy.get(), tc);
  RunResult r;
  r.history = trainer.fit(data.train.images, data.train.labels, data.test.images, data.test.labels);
  for (const auto& e : r.history) r.best_test_acc = std::max(r.best_test_acc, e.test_acc);
  r.final_test_acc = r.history.back().test_acc;
  return r;
}

/// Variant taking an arbitrary PrecisionPolicy (e.g. quant::FpPolicy for the
/// FP16/FP8 baselines). `on_warmup` should activate/calibrate the policy.
inline RunResult run_training_policy(const TaskConfig& task, nn::PrecisionPolicy* policy,
                                     const std::function<void(nn::Sequential&)>& on_warmup,
                                     std::uint64_t seed = 7) {
  tensor::Rng rng(seed);
  auto net = nn::cifar_resnet(task.net, rng);
  const auto data = data::make_synth_cifar(task.data);

  nn::TrainConfig tc = task.train;
  tc.shuffle_seed = seed;
  tc.on_warmup_end = on_warmup;
  nn::Trainer trainer(*net, policy, tc);
  RunResult r;
  r.history = trainer.fit(data.train.images, data.train.labels, data.test.images, data.test.labels);
  for (const auto& e : r.history) r.best_test_acc = std::max(r.best_test_acc, e.test_acc);
  r.final_test_acc = r.history.back().test_acc;
  return r;
}

}  // namespace bench
