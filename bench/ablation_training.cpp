// ablation_training — ablates the three techniques of Section III-B on the
// synth-Cifar task, validating the paper's design choices:
//   1. warm-up training (FP32 for the first epoch(s)),
//   2. distribution-based shifting (Eq. 2/3, including the sigma constant),
//   3. per-dataflow es (es=1 forward, es=2 backward),
// plus a rounding-mode comparison (the paper picks round-toward-zero for
// hardware cost, accepting its slightly worse numerics).
#include "quant/float_policy.hpp"
#include "train_common.hpp"

int main() {
  using namespace bench;
  const TaskConfig base_task = synth_cifar_task(/*epochs=*/12);

  struct Entry {
    std::string name;
    float best = 0.0f, final = 0.0f;
  };
  std::vector<Entry> results;
  const auto run = [&](const std::string& name, const TaskConfig& task, const quant::QuantConfig* cfg) {
    const RunResult r = run_training(task, cfg, /*seed=*/7);
    results.push_back({name, r.best_test_acc, r.final_test_acc});
    std::printf("  %-44s best %.2f%%  final %.2f%%\n", name.c_str(), 100.0 * r.best_test_acc,
                100.0 * r.final_test_acc);
    std::fflush(stdout);
  };

  std::printf("Ablations of the paper's training techniques (synth-Cifar, ResNet-8)\n\n");

  run("FP32 baseline", base_task, nullptr);

  quant::QuantConfig paper = quant::QuantConfig::cifar8();
  run("posit, full paper recipe", base_task, &paper);

  {
    TaskConfig no_warmup = base_task;
    no_warmup.train.warmup_epochs = 0;
    run("posit, NO warm-up", no_warmup, &paper);
  }
  {
    quant::QuantConfig cfg = paper;
    cfg.scale_mode = quant::ScaleMode::kNone;
    run("posit, NO distribution shifting", base_task, &cfg);
  }
  {
    quant::QuantConfig cfg = paper;
    cfg.scale_mode = quant::ScaleMode::kCalibrated;
    run("posit, calibrated (frozen) weight shifts", base_task, &cfg);
  }
  for (const int sigma : {0, 1, 3}) {
    quant::QuantConfig cfg = paper;
    cfg.sigma = sigma;
    run("posit, sigma = " + std::to_string(sigma) + " (paper: 2)", base_task, &cfg);
  }
  {
    // es = 1 for the backward dataflow too (ablating "Adjust Dynamic Range").
    quant::QuantConfig cfg = paper;
    cfg.conv.backward = pdnn::posit::PositSpec{8, 1};
    cfg.bn.backward = pdnn::posit::PositSpec{16, 1};
    cfg.linear.backward = pdnn::posit::PositSpec{8, 1};
    run("posit, es=1 for gradients/errors (no es split)", base_task, &cfg);
  }
  {
    quant::QuantConfig cfg = paper;
    cfg.round_mode = pdnn::posit::RoundMode::kNearestEven;
    run("posit, round-to-nearest-even", base_task, &cfg);
  }
  {
    quant::QuantConfig cfg = paper;
    cfg.round_mode = pdnn::posit::RoundMode::kStochastic;
    run("posit, stochastic rounding", base_task, &cfg);
  }

  // --- reduced-precision FLOAT baselines (Section II-A related work) -------
  const auto run_fp = [&](const std::string& name, quant::FpPolicyConfig cfg) {
    quant::FpPolicy policy(cfg);
    const RunResult r = run_training_policy(base_task, &policy,
                                            [&policy](nn::Sequential&) { policy.activate(); });
    results.push_back({name, r.best_test_acc, r.final_test_acc});
    std::printf("  %-44s best %.2f%%  final %.2f%%\n", name.c_str(), 100.0 * r.best_test_acc,
                100.0 * r.final_test_acc);
    std::fflush(stdout);
  };
  run_fp("FP16 mixed (Micikevicius-style, FP32 master)", quant::FpPolicyConfig::fp16_mixed());
  {
    quant::FpPolicyConfig cfg;  // plain fp16 everywhere, quantized updates
    cfg.scale_mode = quant::ScaleMode::kDynamic;
    run_fp("FP16 everywhere (quantized updates)", cfg);
  }
  run_fp("FP8 1-5-2 (Wang-style, FP16 updates)", quant::FpPolicyConfig::fp8_training());

  std::printf("\nexpected shape: the full recipe tracks FP32; dropping warm-up or shifting hurts;\n");
  std::printf("sigma near 2 and the es split should be at or near the best posit rows;\n");
  std::printf("posit-8 should be competitive with FP8 at the same bit budget.\n");
  return 0;
}
