// table1_posit5_1 — regenerates Table I of the paper:
// "The detail structures of positive values of (5,1) posit number".
#include <cstdio>

#include "posit/tables.hpp"

int main() {
  using namespace pdnn::posit;
  const PositSpec spec{5, 1};

  std::printf("Table I: detail structures of positive values of (5,1) posit\n");
  std::printf("%-12s %-8s %-10s %-10s %s\n", "Binary Code", "Regime", "Exponent", "Mantissa", "Real Value");
  for (const CodeDescription& row : enumerate(0u, 0b01111u, spec)) {
    if (row.is_zero) {
      std::printf("%-12s %-8s %-10s %-10s %s\n", row.binary.c_str(), "x", "x", "x", "0");
      continue;
    }
    std::printf("%-12s %-8d %-10d %-10s %s\n", row.binary.c_str(), row.regime, row.exponent,
                row.mantissa_str.c_str(), row.value_str.c_str());
  }

  std::printf("\nmaxpos = useed^(n-2) = %g, minpos = useed^(2-n) = %g\n", maxpos_value(spec),
              minpos_value(spec));
  return 0;
}
