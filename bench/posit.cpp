// posit — posit inference engine perf tracking. Times the retained scalar
// reference path (coded operands, decode per MAC, weights re-encoded per
// call) against the decode-once engine for representative layer shapes, per
// spec and accumulation mode, serial and threaded, checks the engine is
// bit-identical to the reference (and threaded to serial), and writes
// BENCH_posit.json (codes/s and effective GF/s) so later PRs can diff.
//
// Usage:
//   bench_posit [--session] [out.json]
//   bench_posit [--session] --check-regression <baseline.json> [out.json]
//     also compares engine serial MAC/s against the committed baseline.
//
// --session additionally benches the compiled PositSession: steady-state
// run() throughput on each shape (path "session") plus a batch-size sweep on
// the linear shape (labels "linear_sweep_b*"), all recorded in the JSON.
//
// Besides throughput rows, the JSON carries a "footprints" array — per
// (shape, spec) packed panel bytes next to what the old unpacked layout
// (4-byte code + 8-byte Unpacked per value) would cost — and per-spec
// "decode_bandwidth" rows timing the block decoder (unpack + SIMD batch
// decode; macs_per_s holds codes/s for these).
//
// Exit codes: 0 ok; 1 correctness mismatch or packed-footprint growth vs
// the baseline (both blocking — bit-identity and model size are contracts);
// 2 usage / unreadable baseline / unwritable output; 3 only a perf
// regression (>20% below baseline — CI treats this one as non-blocking).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "nn/layers.hpp"
#include "posit/mul_lut.hpp"
#include "quant/posit_inference.hpp"
#include "quant/posit_session.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace {

using pdnn::posit::PositSpec;
using pdnn::quant::AccumMode;
using pdnn::quant::EncodedTensor;
using pdnn::quant::PositSession;
using pdnn::quant::SessionConfig;
using pdnn::tensor::Conv2dGeom;
using pdnn::tensor::Rng;
using pdnn::tensor::Tensor;

const char* mode_name(AccumMode m) {
  switch (m) {
    case AccumMode::kQuire: return "quire";
    case AccumMode::kSerial: return "serial";
    case AccumMode::kFma: return "fma";
  }
  return "?";
}

struct Case {
  std::string label;     // stable key for cross-PR comparison
  bool is_conv = false;
  // linear: x [m, k] * w [n, k]^T
  std::size_t m = 0, k = 0, n = 0;
  Conv2dGeom geom;
  std::size_t batch = 0;
  double macs = 0.0;
};

struct Result {
  std::string label;
  PositSpec spec{8, 1};
  AccumMode mode = AccumMode::kQuire;
  std::string path;  // "reference" | "engine" | "engine_cached"
  int threads = 1;
  double seconds = 0.0;
  double macs_per_s = 0.0;
  bool lut = false;
  bool bit_identical = true;
  double speedup = 0.0;  // vs reference at the same (label, spec, mode); 0 when n/a
};

using pdnn::benchutil::max_threads;
using pdnn::benchutil::scan_number;
using pdnn::benchutil::scan_string;
using pdnn::benchutil::set_threads;
using pdnn::benchutil::time_best;

bool same_bits(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

/// Packed panel bytes for one (shape, spec) next to the retired unpacked
/// layout's cost (4-byte code + 8-byte Unpacked per value) — the paper's
/// model-size story, gated against growth by --check-regression.
struct Footprint {
  std::string label;
  PositSpec spec{8, 1};
  std::size_t packed_bytes = 0;
  std::size_t unpacked_bytes = 0;
  std::size_t values = 0;
};

struct BaselineEntry {
  std::string label, mode, path;
  int n = 0, es = 0, threads = 0;
  double macs_per_s = 0.0;
};

std::vector<BaselineEntry> parse_baseline(const std::string& path) {
  std::ifstream in(path);
  std::vector<BaselineEntry> entries;
  if (!in.good()) return entries;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  auto pos = text.find("\"results\"");
  if (pos == std::string::npos) return entries;
  while ((pos = text.find('{', pos)) != std::string::npos) {
    const auto end = text.find('}', pos);
    if (end == std::string::npos) break;
    const std::string obj = text.substr(pos, end - pos + 1);
    double n = 0, es = 0, threads = 0, macs_per_s = 0;
    if (scan_number(obj, "spec_n", &n) && scan_number(obj, "spec_es", &es) &&
        scan_number(obj, "threads", &threads) && scan_number(obj, "macs_per_s", &macs_per_s)) {
      BaselineEntry e;
      e.label = scan_string(obj, "label");
      e.mode = scan_string(obj, "mode");
      e.path = scan_string(obj, "path");
      e.n = static_cast<int>(n);
      e.es = static_cast<int>(es);
      e.threads = static_cast<int>(threads);
      e.macs_per_s = macs_per_s;
      entries.push_back(e);
    }
    pos = end + 1;
  }
  return entries;
}

/// Footprint objects in a baseline JSON (keyed off panel_bytes_packed, which
/// throughput rows never carry). Older baselines simply yield none.
std::vector<Footprint> parse_baseline_footprints(const std::string& path) {
  std::ifstream in(path);
  std::vector<Footprint> entries;
  if (!in.good()) return entries;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::string::size_type pos = 0;
  while ((pos = text.find('{', pos)) != std::string::npos) {
    const auto end = text.find('}', pos);
    if (end == std::string::npos) break;
    const std::string obj = text.substr(pos, end - pos + 1);
    double n = 0, es = 0, packed = 0, unpacked = 0;
    if (scan_number(obj, "spec_n", &n) && scan_number(obj, "spec_es", &es) &&
        scan_number(obj, "panel_bytes_packed", &packed) &&
        scan_number(obj, "panel_bytes_unpacked", &unpacked)) {
      Footprint f;
      f.label = scan_string(obj, "label");
      f.spec = PositSpec{static_cast<int>(n), static_cast<int>(es)};
      f.packed_bytes = static_cast<std::size_t>(packed);
      f.unpacked_bytes = static_cast<std::size_t>(unpacked);
      entries.push_back(f);
    }
    pos = end + 1;
  }
  return entries;
}

std::size_t baseline_packed_bytes(const std::vector<Footprint>& entries, const Footprint& f) {
  for (const auto& e : entries) {
    if (e.label == f.label && e.spec.n == f.spec.n && e.spec.es == f.spec.es)
      return e.packed_bytes;
  }
  return 0;
}

double baseline_engine_macs(const std::vector<BaselineEntry>& entries, const Result& r) {
  for (const auto& e : entries) {
    if (e.label == r.label && e.mode == mode_name(r.mode) && e.path == r.path &&
        e.n == r.spec.n && e.es == r.spec.es && e.threads == 1) {
      return e.macs_per_s;
    }
  }
  return 0.0;
}

/// One-layer network holding exactly the bench case's weights, so the
/// session path measures the same arithmetic the engine paths do.
std::unique_ptr<pdnn::nn::Sequential> case_net(const Case& c, const Tensor& w, const Tensor& bias) {
  // Local Rng: the ctor init is overwritten below, and consuming the bench's
  // stream here would shift every later case's data.
  Rng rng(999);
  auto net = std::make_unique<pdnn::nn::Sequential>("bench");
  if (c.is_conv) {
    auto conv = std::make_unique<pdnn::nn::Conv2d>("layer", c.geom.in_c, c.geom.out_c,
                                                   c.geom.kh(), c.geom.stride, c.geom.pad, rng,
                                                   /*with_bias=*/true, c.geom.kernel_w);
    conv->weight().value = w;
    conv->weight().mark_updated();
    conv->bias().value = bias;
    conv->bias().mark_updated();
    net->add(std::move(conv));
  } else {
    auto fc = std::make_unique<pdnn::nn::Linear>("layer", c.k, c.n, rng);
    fc->weight().value = w;
    fc->weight().mark_updated();
    fc->bias().value = bias;
    fc->bias().mark_updated();
    net->add(std::move(fc));
  }
  return net;
}

SessionConfig session_config(const PositSpec& spec, AccumMode mode) {
  SessionConfig cfg;
  cfg.spec = spec;
  cfg.mode = mode;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_posit.json";
  std::string baseline_path;
  bool run_session = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check-regression") {
      if (i + 1 >= argc) {
        std::cerr << "FAIL: --check-regression needs a baseline path\n";
        return 2;
      }
      baseline_path = argv[++i];
    } else if (arg == "--session") {
      run_session = true;
    } else {
      out_path = arg;
    }
  }

  std::vector<BaselineEntry> baseline;
  if (!baseline_path.empty()) {
    baseline = parse_baseline(baseline_path);
    if (baseline.empty()) {
      std::cerr << "FAIL: no parsable results in baseline " << baseline_path << "\n";
      return 2;
    }
  }

  // The acceptance shape (linear 64x512x512) plus a conv-lowered panel; the
  // spec set covers the LUT dispatch (n=8), the ImageNet format (16,1), and
  // a wide format exercising the full unpacked range.
  std::vector<Case> cases;
  {
    Case lin;
    lin.label = "linear_64x512x512";
    lin.m = 64;
    lin.k = 512;
    lin.n = 512;
    lin.macs = 64.0 * 512 * 512;
    cases.push_back(lin);
    Case conv;
    conv.label = "conv_8c16x16_o16k3";
    conv.is_conv = true;
    conv.geom = Conv2dGeom{8, 16, 16, 16, 3, 1, 1};
    conv.batch = 4;
    conv.macs = static_cast<double>(conv.batch) * conv.geom.out_c * conv.geom.out_h() *
                conv.geom.out_w() * conv.geom.patch();
    cases.push_back(conv);
  }
  const std::vector<PositSpec> specs = {{8, 1}, {16, 1}, {32, 2}};
  const std::vector<AccumMode> modes = {AccumMode::kQuire, AccumMode::kSerial, AccumMode::kFma};

  const int hw_threads = max_threads();
  Rng rng(7);
  std::vector<Result> results;
  std::vector<Footprint> footprints;
  bool mismatch = false;

  for (const Case& c : cases) {
    const Tensor x = c.is_conv ? Tensor::randn({c.batch, c.geom.in_c, c.geom.in_h, c.geom.in_w}, rng)
                               : Tensor::randn({c.m, c.k}, rng);
    const Tensor w = c.is_conv
                         ? Tensor::randn({c.geom.out_c, c.geom.in_c, c.geom.kh(), c.geom.kw()}, rng, 0.3f)
                         : Tensor::randn({c.n, c.k}, rng, 0.3f);
    const Tensor bias = c.is_conv ? Tensor::randn({c.geom.out_c}, rng, 0.1f)
                                  : Tensor::randn({c.n}, rng, 0.1f);

    for (const PositSpec& spec : specs) {
      {
        // Model footprint at this format: packed payload vs what the retired
        // unpacked layout (uint32 code + 8-byte Unpacked per value) held.
        const EncodedTensor fw = pdnn::quant::encode_pack(w, spec);
        const EncodedTensor fb = pdnn::quant::encode_pack(bias, spec);
        Footprint f;
        f.label = c.label;
        f.spec = spec;
        f.values = fw.numel() + fb.numel();
        f.packed_bytes = fw.payload_bytes() + fb.payload_bytes();
        f.unpacked_bytes = f.values * (sizeof(std::uint32_t) + sizeof(pdnn::posit::Unpacked));
        footprints.push_back(f);
        std::printf("%-20s %-11s panel %zu B packed vs %zu B unpacked (x%.2f smaller)\n",
                    c.label.c_str(), spec.to_string().c_str(), f.packed_bytes, f.unpacked_bytes,
                    static_cast<double>(f.unpacked_bytes) / static_cast<double>(f.packed_bytes));
      }
      for (const AccumMode mode : modes) {
        const bool lut =
            mode == AccumMode::kSerial &&
            pdnn::posit::mul_lut_supported(spec, pdnn::posit::RoundMode::kNearestEven);
        // Small shapes are noisy on shared runners; more reps tighten the
        // best-of (mirrors bench_gemm).
        const bool small = c.macs < 8.0e6;
        const int ref_reps = small ? 3 : 1;
        const int eng_reps = small ? 10 : 3;
        set_threads(1);

        Tensor ref_out, eng_out;
        const auto run_ref = [&] {
          ref_out = c.is_conv
                        ? pdnn::quant::posit_conv2d_reference(x, w, bias, c.geom, spec, mode)
                        : pdnn::quant::posit_linear_reference(x, w, bias, spec, mode);
        };
        const auto run_eng = [&] {
          eng_out = c.is_conv ? pdnn::quant::posit_conv2d(x, w, bias, c.geom, spec, mode)
                              : pdnn::quant::posit_linear(x, w, bias, spec, mode);
        };

        const double t_ref = time_best(run_ref, ref_reps);
        const double t_eng = time_best(run_eng, eng_reps);
        const bool eng_match = same_bits(eng_out, ref_out);

        // Steady-state serving: weights already encoded + unpacked (what
        // a compiled session holds in its panels).
        const EncodedTensor we = pdnn::quant::encode_pack(w, spec);
        const EncodedTensor be = pdnn::quant::encode_pack(bias, spec);
        Tensor cached_out;
        const auto run_cached = [&] {
          cached_out = c.is_conv ? pdnn::quant::posit_conv2d(x, we, be, c.geom, mode)
                                 : pdnn::quant::posit_linear(x, we, be, mode);
        };
        const double t_cached = time_best(run_cached, eng_reps);
        const bool cached_match = same_bits(cached_out, ref_out);

        set_threads(hw_threads);
        Tensor thr_out;
        const auto run_thr = [&] {
          thr_out = c.is_conv ? pdnn::quant::posit_conv2d(x, we, be, c.geom, mode)
                              : pdnn::quant::posit_linear(x, we, be, mode);
        };
        const double t_thr = time_best(run_thr, eng_reps);
        const bool thr_match = same_bits(thr_out, ref_out);
        set_threads(1);

        results.push_back({c.label, spec, mode, "reference", 1, t_ref, c.macs / t_ref, lut, true, 1.0});
        results.push_back(
            {c.label, spec, mode, "engine", 1, t_eng, c.macs / t_eng, lut, eng_match, t_ref / t_eng});
        results.push_back({c.label, spec, mode, "engine_cached", 1, t_cached, c.macs / t_cached, lut,
                           cached_match, t_ref / t_cached});
        results.push_back({c.label, spec, mode, "engine_cached", hw_threads, t_thr, c.macs / t_thr,
                           lut, thr_match, t_ref / t_thr});
        mismatch = mismatch || !eng_match || !cached_match || !thr_match;

        std::printf("%-20s %-11s %-6s ref %8.3f MMAC/s  engine %8.3f MMAC/s (x%5.1f)  cached %8.3f "
                    "MMAC/s (x%5.1f)  %d-thr %8.3f  %s%s\n",
                    c.label.c_str(), spec.to_string().c_str(), mode_name(mode), c.macs / t_ref * 1e-6,
                    c.macs / t_eng * 1e-6, t_ref / t_eng, c.macs / t_cached * 1e-6, t_ref / t_cached,
                    hw_threads, c.macs / t_thr * 1e-6,
                    eng_match && cached_match && thr_match ? "bit-identical" : "MISMATCH",
                    lut ? " [lut]" : "");

        if (run_session) {
          // Compiled steady state: weights pre-encoded into session panels,
          // quire arenas planned, scratch reused across run() calls.
          auto net = case_net(c, w, bias);
          PositSession session = PositSession::compile(*net, session_config(spec, mode));
          const Tensor* sess_out = nullptr;
          const auto run_sess = [&] { sess_out = &session.run(x); };
          run_sess();  // settle buffer shapes before timing
          const double t_sess = time_best(run_sess, eng_reps);
          const bool sess_match = same_bits(*sess_out, ref_out);
          set_threads(hw_threads);
          const double t_sess_thr = time_best(run_sess, eng_reps);
          const bool sess_thr_match = same_bits(*sess_out, ref_out);
          set_threads(1);
          results.push_back({c.label, spec, mode, "session", 1, t_sess, c.macs / t_sess, lut,
                             sess_match, t_ref / t_sess});
          results.push_back({c.label, spec, mode, "session", hw_threads, t_sess_thr,
                             c.macs / t_sess_thr, lut, sess_thr_match, t_ref / t_sess_thr});
          mismatch = mismatch || !sess_match || !sess_thr_match;
          std::printf("%-20s %-11s %-6s session %8.3f MMAC/s (x%5.1f vs ref, x%4.2f vs cached)  "
                      "%d-thr %8.3f  %s\n",
                      c.label.c_str(), spec.to_string().c_str(), mode_name(mode),
                      c.macs / t_sess * 1e-6, t_ref / t_sess, t_cached / t_sess, hw_threads,
                      c.macs / t_sess_thr * 1e-6,
                      sess_match && sess_thr_match ? "bit-identical" : "MISMATCH");
        }
      }
    }
  }

  if (run_session) {
    // Batch-size sweep: serving throughput as the per-run batch grows, on the
    // acceptance shape's format (posit(16,1), quire accumulation).
    const PositSpec spec{16, 1};
    const AccumMode mode = AccumMode::kQuire;
    const Case& lin = cases[0];
    const Tensor w = Tensor::randn({lin.n, lin.k}, rng, 0.3f);
    const Tensor bias = Tensor::randn({lin.n}, rng, 0.1f);
    auto net = case_net(lin, w, bias);
    PositSession session = PositSession::compile(*net, session_config(spec, mode));
    const EncodedTensor we = pdnn::quant::encode_pack(w, spec);
    const EncodedTensor be = pdnn::quant::encode_pack(bias, spec);
    for (const std::size_t batch : {std::size_t{1}, std::size_t{8}, std::size_t{64},
                                    std::size_t{256}}) {
      const Tensor x = Tensor::randn({batch, lin.k}, rng);
      const double macs = static_cast<double>(batch) * lin.k * lin.n;
      const Tensor* out = nullptr;
      const auto run_sess = [&] { out = &session.run(x); };
      run_sess();
      const double t = time_best(run_sess, batch >= 64 ? 3 : 10);
      const bool match = same_bits(*out, pdnn::quant::posit_linear(x, we, be, mode));
      const std::string label = "linear_sweep_b" + std::to_string(batch);
      results.push_back({label, spec, mode, "session", 1, t, macs / t, false, match, 0.0});
      mismatch = mismatch || !match;
      std::printf("%-20s %-11s %-6s session %8.3f MMAC/s  %s\n", label.c_str(),
                  spec.to_string().c_str(), mode_name(mode), macs / t * 1e-6,
                  match ? "bit-identical" : "MISMATCH");
    }
  }

  {
    // Block-decoder bandwidth: unpack a packed panel and group-decode it into
    // Unpacked lanes — the exact work engine_gemm does per activation tile /
    // weight row. macs_per_s carries codes/s for these rows.
    const std::size_t n_codes = std::size_t{1} << 20;
    std::vector<float> src(n_codes);
    Rng drng(31);
    for (float& v : src) v = static_cast<float>((drng.uniform() - 0.5) * 4.0);
    std::vector<std::uint32_t> codes(n_codes);
    std::vector<pdnn::posit::Unpacked> ops(n_codes);
    for (const PositSpec& spec : specs) {
      EncodedTensor panel;
      pdnn::quant::encode_pack_into(src.data(), n_codes, spec, panel);
      const auto run_decode = [&] {
        pdnn::posit::unpack_codes(panel.packed.data(), 0, n_codes, spec, codes.data());
        pdnn::posit::decode_unpacked(codes.data(), n_codes, spec, ops.data());
      };
      const double t = time_best(run_decode, 5);
      const double codes_per_s = static_cast<double>(n_codes) / t;
      results.push_back({"decode_bandwidth", spec, AccumMode::kQuire, "decode", 1, t, codes_per_s,
                         false, true, 0.0});
      std::printf("%-20s %-11s %8.1f Mcodes/s (unpack + simd decode, %zu codes)\n",
                  "decode_bandwidth", spec.to_string().c_str(), codes_per_s * 1e-6, n_codes);
    }
  }

  std::ofstream out(out_path);
  if (!out.good()) {
    std::cerr << "FAIL: cannot open " << out_path << " for writing\n";
    return 2;
  }
  out << "{\n  \"bench\": \"posit\",\n  \"threads_available\": " << hw_threads
      << ",\n  \"act_tile\": " << pdnn::quant::kActTile << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"label\": \"" << r.label << "\", \"spec_n\": " << r.spec.n
        << ", \"spec_es\": " << r.spec.es << ", \"mode\": \"" << mode_name(r.mode)
        << "\", \"path\": \"" << r.path << "\", \"threads\": " << r.threads
        << ", \"seconds\": " << r.seconds << ", \"macs_per_s\": " << r.macs_per_s
        << ", \"gflops\": " << 2.0 * r.macs_per_s * 1e-9 << ", \"lut\": " << (r.lut ? "true" : "false")
        << ", \"speedup_vs_reference\": " << r.speedup
        << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false") << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"footprints\": [\n";
  for (std::size_t i = 0; i < footprints.size(); ++i) {
    const auto& f = footprints[i];
    out << "    {\"label\": \"" << f.label << "\", \"spec_n\": " << f.spec.n
        << ", \"spec_es\": " << f.spec.es << ", \"values\": " << f.values
        << ", \"panel_bytes_packed\": " << f.packed_bytes
        << ", \"panel_bytes_unpacked\": " << f.unpacked_bytes << ", \"compression\": "
        << static_cast<double>(f.unpacked_bytes) / static_cast<double>(f.packed_bytes) << "}"
        << (i + 1 < footprints.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  if (mismatch) {
    std::cerr << "FAIL: engine diverged from the scalar reference\n";
  }

  bool regressed = false;
  bool footprint_grew = false;
  if (!baseline_path.empty()) {
    for (const auto& r : results) {
      if ((r.path != "engine" && r.path != "engine_cached" && r.path != "session" &&
           r.path != "decode") ||
          r.threads != 1) {
        continue;
      }
      const double base = baseline_engine_macs(baseline, r);
      if (base <= 0.0) continue;  // entry not in baseline; nothing to compare
      const double ratio = r.macs_per_s / base;
      std::printf("regression check %-20s %-13s %-11s %-6s: %8.3f MMAC/s vs baseline %8.3f (x%.2f)%s\n",
                  r.label.c_str(), r.path.c_str(), r.spec.to_string().c_str(), mode_name(r.mode),
                  r.macs_per_s * 1e-6, base * 1e-6, ratio, ratio < 0.8 ? "  REGRESSION" : "");
      if (ratio < 0.8) regressed = true;
    }
    if (regressed)
      std::cerr << "FAIL: engine serial MAC/s dropped >20% vs " << baseline_path << "\n";

    // Packed footprint is a model-size contract, not a perf number: panels
    // are deterministic bytes, so any growth over the baseline is a real
    // layout change and blocks like a correctness failure.
    const std::vector<Footprint> base_fp = parse_baseline_footprints(baseline_path);
    for (const auto& f : footprints) {
      const std::size_t base = baseline_packed_bytes(base_fp, f);
      if (base == 0) continue;  // entry not in baseline; nothing to compare
      std::printf("footprint check  %-20s %-11s: %zu packed B vs baseline %zu%s\n", f.label.c_str(),
                  f.spec.to_string().c_str(), f.packed_bytes, base,
                  f.packed_bytes > base ? "  GREW" : "");
      if (f.packed_bytes > base) footprint_grew = true;
    }
    if (footprint_grew)
      std::cerr << "FAIL: packed panel footprint grew vs " << baseline_path << "\n";
  }
  if (mismatch || footprint_grew) return 1;
  return regressed ? 3 : 0;
}
