// gemm — dense-kernel perf baseline. Times matmul over a shape sweep at one
// thread and at the full thread count, checks the threaded result is
// bit-identical to the serial one, and writes BENCH_gemm.json so later PRs
// can diff GFLOP/s against this PR's numbers.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace {

using pdnn::tensor::Rng;
using pdnn::tensor::Tensor;

struct GemmShape {
  std::size_t m, k, n;
};

struct Result {
  GemmShape shape;
  int threads = 1;
  double seconds = 0.0;
  double gflops = 0.0;
  bool bit_identical = true;
};

double time_matmul(const Tensor& a, const Tensor& b, Tensor& c, int reps) {
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    c.fill(0.0f);
    const auto t0 = clock::now();
    pdnn::tensor::matmul_acc(a, b, c);
    const auto t1 = clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_gemm.json";
  const std::vector<GemmShape> shapes = {
      {128, 128, 128}, {256, 256, 256}, {512, 512, 512}, {1024, 1024, 1024},
      {64, 576, 1024},  // conv-lowered GEMM shape (3x3, 64-channel, 32x32 image)
  };
  const int hw_threads = max_threads();
  Rng rng(7);

  std::vector<Result> results;
  for (const auto& s : shapes) {
    const Tensor a = Tensor::randn({s.m, s.k}, rng);
    const Tensor b = Tensor::randn({s.k, s.n}, rng);
    Tensor c({s.m, s.n});
    const double flops = 2.0 * static_cast<double>(s.m) * s.k * s.n;
    const int reps = s.m * s.k * s.n >= (1u << 27) ? 3 : 7;

    set_threads(1);
    const double t_serial = time_matmul(a, b, c, reps);
    Tensor c_serial = c;
    results.push_back({s, 1, t_serial, flops / t_serial * 1e-9, true});

    set_threads(hw_threads);
    const double t_par = time_matmul(a, b, c, reps);
    const bool identical =
        std::memcmp(c.data(), c_serial.data(), c.numel() * sizeof(float)) == 0;
    results.push_back({s, hw_threads, t_par, flops / t_par * 1e-9, identical});

    std::printf("%4zu x %4zu x %4zu  serial %8.2f GF/s  %2d-thread %8.2f GF/s  x%.2f  %s\n",
                s.m, s.k, s.n, flops / t_serial * 1e-9, hw_threads, flops / t_par * 1e-9,
                t_serial / t_par, identical ? "bit-identical" : "MISMATCH");
  }

  std::ofstream out(out_path);
  if (!out.good()) {
    std::cerr << "FAIL: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n  \"bench\": \"gemm\",\n  \"threads_available\": " << hw_threads
      << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"m\": " << r.shape.m << ", \"k\": " << r.shape.k << ", \"n\": " << r.shape.n
        << ", \"threads\": " << r.threads << ", \"seconds\": " << r.seconds
        << ", \"gflops\": " << r.gflops
        << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false") << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  for (const auto& r : results) {
    if (!r.bit_identical) {
      std::cerr << "FAIL: threaded matmul diverged from serial result\n";
      return 1;
    }
  }
  return 0;
}
