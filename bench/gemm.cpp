// gemm — dense-kernel perf tracking. Times the naive i-k-j loop against the
// cache-blocked micro-kernel GEMM (what matmul_acc now runs) over a shape
// sweep, serial and threaded, checks blocked results are bit-identical to the
// naive oracle and threaded to serial, and writes BENCH_gemm.json including
// the blocking parameters so later PRs can diff GFLOP/s.
//
// Also tracks the float *forward* path: eager nn::Module::forward (fresh
// temporaries every call) against the compiled exec::FloatBackend
// (compile-once/run-many over the ExecPlan arena) on an MLP and a CNN,
// recording steady-state samples/s and arena bytes.
//
// Usage:
//   bench_gemm [out.json]
//   bench_gemm --check-regression <baseline.json> [out.json]
//     also compares blocked serial GFLOP/s (and compiled-forward serial
//     samples/s) against the committed baseline.
//
// Exit codes: 0 ok; 1 correctness mismatch (bit-identity broken — always a
// real failure); 2 usage / unreadable baseline / unwritable output; 3 only a
// perf regression (>20% below baseline — CI treats this one as non-blocking).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/float_backend.hpp"
#include "nn/resnet.hpp"
#include "tensor/gemm_kernel.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace {

using pdnn::tensor::GemmBlocking;
using pdnn::tensor::Rng;
using pdnn::tensor::Tensor;

struct GemmShape {
  std::size_t m, k, n;
};

struct Result {
  GemmShape shape;
  std::string kind;  // "naive" or "blocked"
  int threads = 1;
  double seconds = 0.0;
  double gflops = 0.0;
  bool bit_identical = true;
};

/// The PR-1 i-k-j saxpy loop, kept as the in-bench oracle and comparator.
void matmul_naive(const Tensor& a, const Tensor& b, Tensor& c) {
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      const float* brow = pb + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

using pdnn::benchutil::max_threads;
using pdnn::benchutil::scan_number;
using pdnn::benchutil::scan_string;
using pdnn::benchutil::set_threads;

/// Like benchutil::time_best, but re-zeroes the accumulation target between
/// reps (matmul_acc adds into C).
template <typename Fn>
double time_best(Fn&& fn, Tensor& c, int reps) {
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    c.fill(0.0f);
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// One forward-path measurement: eager module walk vs compiled plan.
struct ForwardResult {
  std::string net;   // "mlp" | "cnn"
  std::string kind;  // "forward_eager" | "forward_plan"
  int threads = 1;
  std::size_t batch = 0;
  double seconds = 0.0;        // per forward pass
  double samples_per_s = 0.0;
  std::size_t arena_bytes = 0;  // 0 for the eager path
  bool bit_identical = true;    // plan vs eager on identical inputs
};

struct BaselineEntry {
  GemmShape shape;
  std::string kind;
  int threads = 0;
  double gflops = 0.0;
};

struct ForwardBaselineEntry {
  std::string net;
  std::string kind;
  int threads = 0;
  double samples_per_s = 0.0;
};

std::vector<BaselineEntry> parse_baseline(const std::string& path) {
  std::ifstream in(path);
  std::vector<BaselineEntry> entries;
  if (!in.good()) return entries;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  auto pos = text.find("\"results\"");
  if (pos == std::string::npos) return entries;
  while ((pos = text.find('{', pos)) != std::string::npos) {
    const auto end = text.find('}', pos);
    if (end == std::string::npos) break;
    const std::string obj = text.substr(pos, end - pos + 1);
    double m = 0, k = 0, n = 0, threads = 0, gflops = 0;
    if (scan_number(obj, "m", &m) && scan_number(obj, "k", &k) && scan_number(obj, "n", &n) &&
        scan_number(obj, "threads", &threads) && scan_number(obj, "gflops", &gflops)) {
      BaselineEntry e;
      e.shape = {static_cast<std::size_t>(m), static_cast<std::size_t>(k),
                 static_cast<std::size_t>(n)};
      e.kind = scan_string(obj, "kind");
      e.threads = static_cast<int>(threads);
      e.gflops = gflops;
      entries.push_back(e);
    }
    pos = end + 1;
  }
  return entries;
}

/// Serial reference GFLOP/s for a shape in the baseline: the best "blocked"
/// 1-thread entry, falling back to any 1-thread entry (pre-blocking files had
/// no "kind" field).
double baseline_serial_gflops(const std::vector<BaselineEntry>& entries, const GemmShape& s) {
  double best = 0.0;
  for (const auto& e : entries) {
    if (e.shape.m != s.m || e.shape.k != s.k || e.shape.n != s.n || e.threads != 1) continue;
    if (!e.kind.empty() && e.kind != "blocked") continue;
    best = std::max(best, e.gflops);
  }
  return best;
}

std::vector<ForwardBaselineEntry> parse_forward_baseline(const std::string& path) {
  std::ifstream in(path);
  std::vector<ForwardBaselineEntry> entries;
  if (!in.good()) return entries;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  auto pos = text.find("\"results\"");
  if (pos == std::string::npos) return entries;
  while ((pos = text.find('{', pos)) != std::string::npos) {
    const auto end = text.find('}', pos);
    if (end == std::string::npos) break;
    const std::string obj = text.substr(pos, end - pos + 1);
    double threads = 0, sps = 0;
    const std::string net = scan_string(obj, "net");
    if (!net.empty() && scan_number(obj, "threads", &threads) &&
        scan_number(obj, "samples_per_s", &sps)) {
      entries.push_back({net, scan_string(obj, "kind"), static_cast<int>(threads), sps});
    }
    pos = end + 1;
  }
  return entries;
}

double baseline_forward_sps(const std::vector<ForwardBaselineEntry>& entries,
                            const std::string& net) {
  double best = 0.0;
  for (const auto& e : entries) {
    if (e.net == net && e.kind == "forward_plan" && e.threads == 1) {
      best = std::max(best, e.samples_per_s);
    }
  }
  return best;
}

/// Steady-state forward throughput: eager module walk vs compiled plan (the
/// default fusion passes, bit-checked against eager) vs the plan with the
/// rounding-changing BN fold on top (epsilon-checked — fold rows are excluded
/// from the bit-identity gate by contract).
void bench_forward(const std::string& net_name, pdnn::nn::Sequential& net, const Tensor& x,
                   int hw_threads, std::vector<ForwardResult>& out) {
  namespace exec = pdnn::exec;
  const std::size_t batch = x.shape()[0];
  const int reps = 20;
  pdnn::exec::FloatBackend backend = exec::FloatBackend::compile(net);
  backend.run(x);  // settle arena + scratch before timing
  const Tensor want = net.forward(x, false);
  const bool match =
      want.shape() == backend.run(x).shape() &&
      std::memcmp(want.data(), backend.run(x).data(), want.numel() * sizeof(float)) == 0;

  exec::PlanOptions fold_opts = exec::PlanOptions::defaults();
  fold_opts.fold_bn = true;
  exec::FloatBackend folded = exec::FloatBackend::compile(net, nullptr, fold_opts);
  const Tensor& fold_out = folded.run(x);
  bool fold_ok = want.shape() == fold_out.shape();
  for (std::size_t i = 0; fold_ok && i < want.numel(); ++i) {
    const float d = fold_out[i] - want[i];
    const float tol = 1e-4f + 1e-3f * std::fabs(want[i]);
    if (!(d <= tol && d >= -tol)) fold_ok = false;
  }

  for (const int threads : {1, hw_threads}) {
    set_threads(threads);
    const double t_eager =
        pdnn::benchutil::time_best([&] { net.forward(x, false); }, reps);
    const double t_plan = pdnn::benchutil::time_best([&] { backend.run(x); }, reps);
    const double t_fold = pdnn::benchutil::time_best([&] { folded.run(x); }, reps);
    out.push_back({net_name, "forward_eager", threads, batch, t_eager,
                   static_cast<double>(batch) / t_eager, 0, match});
    out.push_back({net_name, "forward_plan", threads, batch, t_plan,
                   static_cast<double>(batch) / t_plan, backend.arena_bytes(), match});
    out.push_back({net_name, "forward_plan_fold", threads, batch, t_fold,
                   static_cast<double>(batch) / t_fold, folded.arena_bytes(), fold_ok});
    if (threads == 1) {
      std::printf("%-3s forward b%-3zu  eager %8.1f samples/s  plan %8.1f samples/s (x%.2f)  "
                  "fold %8.1f samples/s  arena %zu B  %s%s\n",
                  net_name.c_str(), batch, batch / t_eager, batch / t_plan, t_eager / t_plan,
                  batch / t_fold, backend.arena_bytes(), match ? "bit-identical" : "MISMATCH",
                  fold_ok ? "" : " FOLD-EPSILON-FAIL");
    }
    if (hw_threads == 1) break;
  }
  set_threads(hw_threads);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_gemm.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check-regression") {
      if (i + 1 >= argc) {
        std::cerr << "FAIL: --check-regression needs a baseline path\n";
        return 2;
      }
      baseline_path = argv[++i];
    } else {
      out_path = arg;
    }
  }

  // Read the baseline up front: out_path may legally be the same file (the
  // README's `--check-regression BENCH_gemm.json` refreshes the baseline in
  // place), and a missing baseline should fail before minutes of timing.
  std::vector<BaselineEntry> baseline;
  if (!baseline_path.empty()) {
    baseline = parse_baseline(baseline_path);
    if (baseline.empty()) {
      std::cerr << "FAIL: no parsable results in baseline " << baseline_path << "\n";
      return 2;
    }
  }

  const std::vector<GemmShape> shapes = {
      {128, 128, 128}, {256, 256, 256}, {512, 512, 512}, {1024, 1024, 1024},
      {64, 576, 1024},  // conv-lowered GEMM shape (3x3, 64-channel, 32x32 image)
  };
  const int hw_threads = max_threads();
  Rng rng(7);

  std::vector<Result> results;
  for (const auto& s : shapes) {
    const Tensor a = Tensor::randn({s.m, s.k}, rng);
    const Tensor b = Tensor::randn({s.k, s.n}, rng);
    Tensor c({s.m, s.n});
    const double flops = 2.0 * static_cast<double>(s.m) * s.k * s.n;
    // Small shapes are noisy on shared runners; more reps tighten the best-of.
    const int reps = s.m * s.k * s.n >= (1u << 27) ? 3 : 15;

    const double t_naive = time_best([&] { matmul_naive(a, b, c); }, c, reps);
    Tensor c_naive = c;
    results.push_back({s, "naive", 1, t_naive, flops / t_naive * 1e-9, true});

    set_threads(1);
    const double t_serial =
        time_best([&] { pdnn::tensor::matmul_acc(a, b, c); }, c, reps);
    Tensor c_serial = c;
    const bool oracle_match =
        std::memcmp(c_serial.data(), c_naive.data(), c.numel() * sizeof(float)) == 0;
    results.push_back({s, "blocked", 1, t_serial, flops / t_serial * 1e-9, oracle_match});

    set_threads(hw_threads);
    const double t_par = time_best([&] { pdnn::tensor::matmul_acc(a, b, c); }, c, reps);
    const bool thread_match =
        std::memcmp(c.data(), c_serial.data(), c.numel() * sizeof(float)) == 0;
    results.push_back({s, "blocked", hw_threads, t_par, flops / t_par * 1e-9, thread_match});

    std::printf(
        "%4zu x %4zu x %4zu  naive %7.2f GF/s  blocked %7.2f GF/s (x%.2f)  %2d-thread %7.2f GF/s "
        "(x%.2f)  %s\n",
        s.m, s.k, s.n, flops / t_naive * 1e-9, flops / t_serial * 1e-9, t_naive / t_serial,
        hw_threads, flops / t_par * 1e-9, t_serial / t_par,
        oracle_match && thread_match ? "bit-identical" : "MISMATCH");
  }

  // Calling thread's packing-scratch footprint at the sweep's peak (the
  // 1024-wide shapes hold bp at its KC*NC cap) — the observable for the
  // bounded thread_local pack buffers.
  const std::size_t pack_bytes = pdnn::tensor::gemm_pack_bytes();
  std::printf("pack scratch after sweep: %zu B\n", pack_bytes);

  // ---- compiled float forward: eager module walk vs ExecPlan backend ------
  std::vector<ForwardResult> fwd;
  {
    pdnn::tensor::Rng frng(23);
    auto mlp = pdnn::nn::mlp(256, 512, 10, 2, frng);
    const Tensor mx = Tensor::randn({64, 256}, frng);
    bench_forward("mlp", *mlp, mx, hw_threads, fwd);

    auto cnn = pdnn::nn::plain_cnn(8, 10, frng);
    const Tensor cx = Tensor::randn({8, 3, 16, 16}, frng);
    cnn->forward(cx, /*training=*/true);  // settle BN running stats
    bench_forward("cnn", *cnn, cx, hw_threads, fwd);
  }

  std::ofstream out(out_path);
  if (!out.good()) {
    std::cerr << "FAIL: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n  \"bench\": \"gemm\",\n  \"threads_available\": " << hw_threads
      << ",\n  \"kernel_vectorized\": "
      << (pdnn::tensor::gemm_kernel_vectorized() ? "true" : "false")
      << ",\n  \"blocking\": {\"MR\": " << GemmBlocking::MR << ", \"NR\": " << GemmBlocking::NR
      << ", \"MC\": " << GemmBlocking::MC << ", \"KC\": " << GemmBlocking::KC
      << ", \"NC\": " << GemmBlocking::NC << "},\n  \"pack_scratch_bytes\": " << pack_bytes
      << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"m\": " << r.shape.m << ", \"k\": " << r.shape.k << ", \"n\": " << r.shape.n
        << ", \"kind\": \"" << r.kind << "\", \"threads\": " << r.threads
        << ", \"seconds\": " << r.seconds << ", \"gflops\": " << r.gflops
        << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false") << "}"
        << (i + 1 < results.size() || !fwd.empty() ? "," : "") << "\n";
  }
  for (std::size_t i = 0; i < fwd.size(); ++i) {
    const auto& r = fwd[i];
    out << "    {\"net\": \"" << r.net << "\", \"kind\": \"" << r.kind
        << "\", \"threads\": " << r.threads << ", \"batch\": " << r.batch
        << ", \"seconds\": " << r.seconds << ", \"samples_per_s\": " << r.samples_per_s
        << ", \"arena_bytes\": " << r.arena_bytes
        << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false") << "}"
        << (i + 1 < fwd.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  bool mismatch = false;
  for (const auto& r : results) {
    if (!r.bit_identical) {
      std::cerr << "FAIL: " << r.kind << " matmul (" << r.threads
                << " threads) diverged from its reference\n";
      mismatch = true;
    }
  }
  for (const auto& r : fwd) {
    if (!r.bit_identical) {
      std::cerr << "FAIL: compiled " << r.net
                << " forward diverged from eager nn::Module::forward\n";
      mismatch = true;
    }
  }

  bool regressed = false;
  if (!baseline_path.empty()) {
    for (const auto& s : shapes) {
      const Result* serial = nullptr;
      for (const auto& r : results) {
        if (r.kind == "blocked" && r.threads == 1 && r.shape.m == s.m && r.shape.k == s.k &&
            r.shape.n == s.n) {
          serial = &r;
          break;
        }
      }
      if (serial == nullptr) continue;
      const double base = baseline_serial_gflops(baseline, s);
      if (base <= 0.0) continue;  // shape not in baseline; nothing to compare
      const double ratio = serial->gflops / base;
      std::printf("regression check %4zu x %4zu x %4zu: %7.2f GF/s vs baseline %7.2f (x%.2f)%s\n",
                  s.m, s.k, s.n, serial->gflops, base, ratio,
                  ratio < 0.8 ? "  REGRESSION" : "");
      if (ratio < 0.8) regressed = true;
    }
    const std::vector<ForwardBaselineEntry> fwd_baseline = parse_forward_baseline(baseline_path);
    for (const auto& r : fwd) {
      if (r.kind != "forward_plan" || r.threads != 1) continue;
      const double base = baseline_forward_sps(fwd_baseline, r.net);
      if (base <= 0.0) continue;  // net not in baseline; nothing to compare
      const double ratio = r.samples_per_s / base;
      std::printf("regression check %-3s forward plan: %8.1f samples/s vs baseline %8.1f (x%.2f)%s\n",
                  r.net.c_str(), r.samples_per_s, base, ratio, ratio < 0.8 ? "  REGRESSION" : "");
      if (ratio < 0.8) regressed = true;
    }
    if (regressed)
      std::cerr << "FAIL: serial GFLOP/s (or compiled-forward samples/s) dropped >20% vs "
                << baseline_path << "\n";
  }
  if (mismatch) return 1;
  return regressed ? 3 : 0;
}
