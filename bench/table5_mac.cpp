// table5_mac — reproduces Table V: "Comparison of posit MAC with FP32"
// (power and area at a 750 MHz timing target), plus the Section IV claim
// that the original [6] encoder+decoder account for ~40% of MAC delay.
#include <cstdio>

#include "hw/analysis.hpp"
#include "hw/posit_mac.hpp"

int main() {
  using namespace pdnn::hw;

  std::printf("Table V reproduction: posit MAC vs FP32 MAC @ 750 MHz\n");
  std::printf("(gate-level model; paper numbers from Design Compiler/TSMC 28nm in brackets)\n\n");

  const Netlist fp32 = make_fp_mac_netlist(FpFormat{10, 23});
  const CircuitReport fp32_r = characterize(fp32, "FP32 MAC", 750.0, 1500);
  std::printf("%-14s %12s %12s %10s %10s\n", "unit", "power(mW)", "area(um2)", "P/FP32", "A/FP32");
  std::printf("%-14s %12.2f %12.0f %10s %10s   [paper: 2.52 mW, 4322 um2]\n", "FP32", fp32_r.power_mw,
              fp32_r.area_um2, "1.00", "1.00");

  struct Row {
    int n, es;
    double paper_mw, paper_um2;
  };
  const Row rows[] = {{8, 1, 0.45, 1208}, {8, 2, 0.35, 1032}, {16, 1, 1.77, 4079}, {16, 2, 1.60, 3897}};
  for (const Row& r : rows) {
    const Netlist mac = make_posit_mac_netlist(PositHwSpec{r.n, r.es}, /*optimized=*/true);
    const CircuitReport rep = characterize(mac, "posit MAC", 750.0, 1500);
    std::printf("posit(%2d,%d)    %12.2f %12.0f %10.2f %10.2f   [paper: %.2f mW, %.0f um2]\n", r.n, r.es,
                rep.power_mw, rep.area_um2, rep.power_mw / fp32_r.power_mw, rep.area_um2 / fp32_r.area_um2,
                r.paper_mw, r.paper_um2);
  }

  std::printf("\npaper claim: posit MAC reduces power by 22-83%% and area by 6-76%% vs FP32\n");

  // Pipelining at the 750 MHz constraint (the paper's synthesis target).
  std::printf("\npipeline stages to close 750 MHz timing:\n");
  std::printf("  FP32 MAC: %d stages (%.2f ns combinational)\n",
              pipeline_stages(fp32_r.delay_ns, 750.0), fp32_r.delay_ns);
  for (const Row& r : rows) {
    const Netlist mac = make_posit_mac_netlist(PositHwSpec{r.n, r.es}, true);
    const double d = analyze_timing(mac).critical_delay_ns;
    std::printf("  posit(%2d,%d) MAC: %d stages (%.2f ns combinational)\n", r.n, r.es,
                pipeline_stages(d, 750.0), d);
  }

  // Section IV: codec fraction of the original [6] MAC delay (~40% claimed).
  std::printf("\nMAC delay breakdown, posit(16,1):\n");
  for (const bool optimized : {false, true}) {
    const MacDelayBreakdown b = posit_mac_delay_breakdown(PositHwSpec{16, 1}, optimized);
    std::printf("  %s codec: decoder %.3f + encoder %.3f ns of %.3f ns total -> %.0f%% %s\n",
                optimized ? "optimized" : "original ", b.decoder_ns, b.encoder_ns, b.total_ns,
                100.0 * (b.decoder_ns + b.encoder_ns) / b.total_ns,
                optimized ? "" : "[paper: ~40% for the original codec]");
  }
  return 0;
}
