// trainer.hpp — deterministic data-parallel training on the compiled ExecPlan.
//
// train::Trainer drives exec::FloatBackend's training mode
// (compile_training / train_forward / run_backward) instead of the eager
// Module::forward/backward chain, and shards each batch across worker
// threads. The determinism contract:
//
//   * The NUMERICS ARE DEFINED BY THE MICRO-BATCH, NOT THE WORKER COUNT.
//     A batch of N samples is cut into fixed contiguous shards of
//     `micro_batch` samples ([0,m), [m,2m), ...); shard s is processed by
//     worker s % workers on that worker's private backend (own arena, own
//     gradient accumulators), so shard results are bitwise independent of
//     which worker ran them or when.
//   * Per-shard logit gradients are scaled by n_s / N, making the summed
//     shard gradients the same mean-over-batch loss the eager loop
//     differentiates.
//   * After the join, shard gradients merge by a serial fixed-order tree
//     reduce (G[i] += G[i + stride] for stride = 1, 2, 4, ...) and BN batch
//     statistics fold into the modules' running estimates in shard order —
//     both independent of the worker assignment.
//
//   => Trained parameters are BIT-IDENTICAL for any `workers` value at
//      fixed micro_batch. And with micro_batch == batch_size (one shard,
//      scale n_s/N == 1), the whole step is bit-identical to the eager
//      nn::Trainer loop on the same batches.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/float_backend.hpp"
#include "nn/module.hpp"
#include "nn/optimizer.hpp"

namespace pdnn::train {

struct TrainerConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 64;
  /// Shard size defining the numerics; 0 means batch_size (single shard,
  /// bit-identical to the eager loop).
  std::size_t micro_batch = 0;
  /// Worker threads sharing the shard queue round-robin. Any value yields
  /// the same trained bits; more workers only changes wall-clock.
  std::size_t workers = 1;
  nn::SgdConfig sgd;
  nn::StepSchedule schedule;
  std::uint64_t shuffle_seed = 1;
  bool verbose = false;
};

/// Aggregates of one optimizer step, weighted like the eager loop's epoch
/// accumulation (loss_sum is loss * samples).
struct StepStats {
  double loss_sum = 0.0;
  std::size_t correct = 0;
  std::size_t count = 0;
};

struct EpochResult {
  std::size_t epoch = 0;
  float lr = 0.0f;
  float train_loss = 0.0f;
  float train_acc = 0.0f;
  float test_acc = 0.0f;
};

class Trainer {
 public:
  /// Compiles one training backend per worker over `net` (which must outlive
  /// the trainer). The module graph is shared read-only during a step; all
  /// mutation (gradient merge, BN running stats, SGD update) happens serially
  /// on the calling thread after the workers join.
  Trainer(nn::Module& net, TrainerConfig cfg);

  /// One optimizer step on batch (bx, by): shard, forward/backward on the
  /// workers, merge, SGD update. Throws std::invalid_argument on an empty
  /// batch or a label count mismatch.
  StepStats step(const tensor::Tensor& bx, const std::vector<int>& by);

  /// Full training run, mirroring nn::Trainer::fit: Fisher-Yates shuffle per
  /// epoch from shuffle_seed, lr from the step schedule, one EpochResult per
  /// epoch.
  std::vector<EpochResult> fit(const tensor::Tensor& train_x, const std::vector<int>& train_y,
                               const tensor::Tensor& test_x, const std::vector<int>& test_y);

  /// Accuracy in eval mode (compiled forward, running BN stats).
  float evaluate(const tensor::Tensor& x, const std::vector<int>& y, std::size_t batch = 128);

  std::size_t workers() const { return backends_.size(); }
  /// Arena bytes across all worker backends (bench reporting).
  std::size_t arena_bytes() const;

 private:
  void run_worker(std::size_t w, std::size_t n_shards, const tensor::Tensor& bx,
                  const std::vector<int>& by);
  tensor::Tensor gather(const tensor::Tensor& x, const std::vector<std::size_t>& idx,
                        std::size_t lo, std::size_t hi) const;

  nn::Module& net_;
  TrainerConfig cfg_;
  std::vector<exec::FloatBackend> backends_;  // one per worker
  std::vector<nn::Param*> params_;            // net.params() order
  nn::SgdMomentum opt_;

  // Per-worker scratch (indexed by worker id).
  std::vector<tensor::Tensor> worker_x_;
  std::vector<std::vector<int>> worker_y_;
  std::vector<tensor::Tensor> worker_dlogits_;

  // Per-shard results (indexed by shard id — worker-assignment independent).
  std::vector<std::vector<tensor::Tensor>> shard_grads_;
  struct ShardBnStats {
    std::vector<float> mean, var;
  };
  std::vector<std::vector<ShardBnStats>> shard_bn_;
  std::vector<double> shard_loss_;
  std::vector<std::size_t> shard_correct_;
  std::vector<std::size_t> shard_count_;
};

}  // namespace pdnn::train
