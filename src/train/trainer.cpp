#include "train/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace pdnn::train {

using tensor::Shape;
using tensor::Tensor;

Trainer::Trainer(nn::Module& net, TrainerConfig cfg)
    : net_(net), cfg_(std::move(cfg)), params_(net.params()), opt_(params_, cfg_.sgd) {
  if (cfg_.batch_size == 0) throw std::invalid_argument("train::Trainer: batch_size must be > 0");
  if (cfg_.micro_batch == 0) cfg_.micro_batch = cfg_.batch_size;
  if (cfg_.workers == 0) cfg_.workers = 1;
  backends_.reserve(cfg_.workers);
  for (std::size_t w = 0; w < cfg_.workers; ++w) {
    backends_.push_back(exec::FloatBackend::compile_training(net_));
  }
  worker_x_.resize(cfg_.workers);
  worker_y_.resize(cfg_.workers);
  worker_dlogits_.resize(cfg_.workers);

  const std::size_t max_shards = (cfg_.batch_size + cfg_.micro_batch - 1) / cfg_.micro_batch;
  shard_grads_.resize(max_shards);
  for (auto& g : shard_grads_) {
    g.reserve(params_.size());
    for (const nn::Param* p : params_) g.emplace_back(p->value.shape());
  }
  shard_bn_.resize(max_shards);
  const std::size_t n_bn = backends_[0].bn_batch_stats().size();
  for (auto& s : shard_bn_) s.resize(n_bn);
  shard_loss_.resize(max_shards);
  shard_correct_.resize(max_shards);
  shard_count_.resize(max_shards);
}

std::size_t Trainer::arena_bytes() const {
  std::size_t total = 0;
  for (const auto& b : backends_) total += b.arena_bytes();
  return total;
}

void Trainer::run_worker(std::size_t w, std::size_t n_shards, const Tensor& bx,
                         const std::vector<int>& by) {
  exec::FloatBackend& backend = backends_[w];
  const std::size_t n = bx.shape()[0];
  for (std::size_t s = w; s < n_shards; s += backends_.size()) {
    const std::size_t lo = s * cfg_.micro_batch;
    const std::size_t hi = std::min(n, lo + cfg_.micro_batch);
    const std::size_t cnt = hi - lo;
    tensor::extract_span(bx, lo, cnt, worker_x_[w]);
    worker_y_[w].assign(by.begin() + static_cast<long>(lo), by.begin() + static_cast<long>(hi));

    backend.zero_grad();
    const Tensor& logits = backend.train_forward(worker_x_[w]);
    const float loss = tensor::cross_entropy(logits, worker_y_[w], &worker_dlogits_[w]);
    shard_correct_[s] = tensor::count_correct(logits, worker_y_[w]);
    // Scale d(mean loss over shard) to d(mean loss over batch): n_s / N.
    // With one shard the factor is exactly 1.0f, leaving the eager bits.
    worker_dlogits_[w] *= static_cast<float>(cnt) / static_cast<float>(n);
    backend.run_backward(worker_dlogits_[w]);

    std::vector<Tensor>& g = shard_grads_[s];
    const std::vector<Tensor>& src = backend.param_grads();
    for (std::size_t i = 0; i < src.size(); ++i) g[i] = src[i];
    const auto& stats = backend.bn_batch_stats();
    for (std::size_t j = 0; j < stats.size(); ++j) {
      shard_bn_[s][j].mean = stats[j].mean;
      shard_bn_[s][j].var = stats[j].var;
    }
    shard_loss_[s] = static_cast<double>(loss) * static_cast<double>(cnt);
    shard_count_[s] = cnt;
  }
}

StepStats Trainer::step(const Tensor& bx, const std::vector<int>& by) {
  const std::size_t n = bx.shape().rank() != 0 ? bx.shape()[0] : 0;
  if (n == 0) throw std::invalid_argument("train::Trainer::step: empty batch");
  if (by.size() != n) {
    throw std::invalid_argument("train::Trainer::step: " + std::to_string(by.size()) +
                                " labels for " + std::to_string(n) + " samples");
  }
  const std::size_t n_shards = (n + cfg_.micro_batch - 1) / cfg_.micro_batch;
  if (n_shards > shard_grads_.size()) {
    throw std::invalid_argument("train::Trainer::step: batch of " + std::to_string(n) +
                                " exceeds configured batch_size " +
                                std::to_string(cfg_.batch_size));
  }

  const std::size_t active = std::min(backends_.size(), n_shards);
  if (active <= 1) {
    run_worker(0, n_shards, bx, by);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(active - 1);
    for (std::size_t w = 1; w < active; ++w) {
      pool.emplace_back([this, w, n_shards, &bx, &by] { run_worker(w, n_shards, bx, by); });
    }
    run_worker(0, n_shards, bx, by);
    for (auto& t : pool) t.join();
  }

  // BN running stats fold in shard order — the serial order a single worker
  // would have produced. bn pointers come from worker 0's backend; every
  // backend lowered the same module graph, so step order agrees.
  const auto& bn_entries = backends_[0].bn_batch_stats();
  for (std::size_t s = 0; s < n_shards; ++s) {
    for (std::size_t j = 0; j < bn_entries.size(); ++j) {
      bn_entries[j].bn->update_running_stats(shard_bn_[s][j].mean.data(),
                                             shard_bn_[s][j].var.data());
    }
  }

  // Serial fixed-order tree reduce over shard ids: G[i] += G[i + stride].
  for (std::size_t stride = 1; stride < n_shards; stride *= 2) {
    for (std::size_t i = 0; i + stride < n_shards; i += 2 * stride) {
      std::vector<Tensor>& dst = shard_grads_[i];
      const std::vector<Tensor>& add = shard_grads_[i + stride];
      for (std::size_t p = 0; p < dst.size(); ++p) {
        float* d = dst[p].data();
        const float* a = add[p].data();
        for (std::size_t e = 0; e < dst[p].numel(); ++e) d[e] += a[e];
      }
    }
  }

  opt_.zero_grad();
  for (std::size_t p = 0; p < params_.size(); ++p) {
    std::memcpy(params_[p]->grad.data(), shard_grads_[0][p].data(),
                params_[p]->grad.numel() * sizeof(float));
  }
  opt_.step();

  StepStats st;
  st.count = n;
  for (std::size_t s = 0; s < n_shards; ++s) {
    st.loss_sum += shard_loss_[s];
    st.correct += shard_correct_[s];
  }
  return st;
}

Tensor Trainer::gather(const Tensor& x, const std::vector<std::size_t>& idx, std::size_t lo,
                       std::size_t hi) const {
  const std::size_t count = hi - lo;
  const std::size_t row = x.numel() / x.shape()[0];
  Shape s;
  if (x.shape().rank() == 4) {
    s = Shape{count, x.shape()[1], x.shape()[2], x.shape()[3]};
  } else {
    s = Shape{count, x.shape()[1]};
  }
  Tensor out(s);
  for (std::size_t i = 0; i < count; ++i) {
    std::memcpy(out.data() + i * row, x.data() + idx[lo + i] * row, row * sizeof(float));
  }
  return out;
}

std::vector<EpochResult> Trainer::fit(const Tensor& train_x, const std::vector<int>& train_y,
                                      const Tensor& test_x, const std::vector<int>& test_y) {
  const std::size_t n = train_x.shape()[0];
  tensor::Rng shuffle_rng(cfg_.shuffle_seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  std::vector<EpochResult> history;
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    const float lr = cfg_.schedule.lr_at(epoch);
    opt_.set_lr(lr);

    // Fisher-Yates, same stream as nn::Trainer::fit.
    for (std::size_t i = n - 1; i > 0; --i) {
      std::swap(order[i], order[shuffle_rng.uniform_int(i + 1)]);
    }

    double loss_sum = 0.0;
    std::size_t correct = 0, seen = 0;
    for (std::size_t lo = 0; lo < n; lo += cfg_.batch_size) {
      const std::size_t hi = std::min(n, lo + cfg_.batch_size);
      const Tensor bx = gather(train_x, order, lo, hi);
      std::vector<int> by(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) by[i - lo] = train_y[order[i]];

      const StepStats st = step(bx, by);
      loss_sum += st.loss_sum;
      correct += st.correct;
      seen += st.count;
    }

    EpochResult r;
    r.epoch = epoch;
    r.lr = lr;
    r.train_loss = static_cast<float>(loss_sum / static_cast<double>(seen));
    r.train_acc = static_cast<float>(correct) / static_cast<float>(seen);
    r.test_acc = evaluate(test_x, test_y);
    history.push_back(r);

    if (cfg_.verbose) {
      std::printf("epoch %3zu  lr %.4f  loss %.4f  train %.4f  test %.4f\n", epoch, lr,
                  r.train_loss, r.train_acc, r.test_acc);
      std::fflush(stdout);
    }
  }
  return history;
}

float Trainer::evaluate(const Tensor& x, const std::vector<int>& y, std::size_t batch) {
  const std::size_t n = x.shape()[0];
  Tensor bx;
  std::size_t correct = 0;
  for (std::size_t lo = 0; lo < n; lo += batch) {
    const std::size_t hi = std::min(n, lo + batch);
    tensor::extract_span(x, lo, hi - lo, bx);
    std::vector<int> by(y.begin() + static_cast<long>(lo), y.begin() + static_cast<long>(hi));
    correct += tensor::count_correct(backends_[0].run(bx), by);
  }
  return static_cast<float>(correct) / static_cast<float>(n);
}

}  // namespace pdnn::train
