// synthetic.hpp — procedurally generated datasets.
//
// Substitution (see DESIGN.md §2): the paper trains on Cifar-10 and ImageNet,
// which are unavailable offline. SynthCifar generates a 10-class (or N-class)
// image-classification task whose classes are distinguished by oriented
// frequency patterns, blob layouts and color statistics, corrupted by noise
// and random shifts — enough structure that a small ResNet separates classes
// well above chance but only after genuinely learning convolutional features.
// Because the paper's Table III claim is the RELATIVE accuracy of posit vs
// FP32 training on the same task, any sufficiently rich task preserves the
// phenomenon being tested.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace pdnn::data {

struct Dataset {
  tensor::Tensor images;        ///< [N,C,H,W] (or [N,D] for vector datasets)
  std::vector<int> labels;      ///< class indices
  std::size_t classes = 0;

  std::size_t size() const { return labels.size(); }
};

struct SynthCifarConfig {
  std::size_t classes = 10;
  std::size_t train_per_class = 120;
  std::size_t test_per_class = 40;
  std::size_t height = 16;
  std::size_t width = 16;
  float noise = 0.35f;        ///< additive Gaussian noise stddev
  std::uint64_t seed = 2024;
  bool augment_shift = true;  ///< random +/-2px translations
};

struct TrainTest {
  Dataset train;
  Dataset test;
};

/// Build the synthetic Cifar-like dataset (3-channel images, standardized to
/// roughly zero mean / unit variance like normalized Cifar-10).
TrainTest make_synth_cifar(const SynthCifarConfig& cfg);

/// Two interleaved half-moons in 2-d (binary classification, MLP example).
TrainTest make_two_moons(std::size_t per_class, float noise, std::uint64_t seed);

/// K-arm spiral in 2-d (multi-class, MLP example).
TrainTest make_spirals(std::size_t arms, std::size_t per_arm, float noise, std::uint64_t seed);

}  // namespace pdnn::data
