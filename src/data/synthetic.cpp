#include "data/synthetic.hpp"

#include <cmath>

#include "tensor/stats.hpp"

namespace pdnn::data {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Paint one image of class `cls` at a random phase/offset. Classes combine
/// an orientation-frequency grating, a blob layout and a color cast, so no
/// single channel statistic solves the task.
void paint_class_image(float* img, std::size_t h, std::size_t w, int cls, Rng& rng, float noise,
                       bool augment_shift) {
  const std::size_t plane = h * w;
  // Class-dependent generative parameters (deterministic per class).
  const double angle = (cls % 5) * (kPi / 5.0);
  const double freq = 2.0 + (cls % 3) * 1.5;
  const double color[3] = {0.3 + 0.5 * ((cls * 37) % 7) / 6.0, 0.3 + 0.5 * ((cls * 53) % 7) / 6.0,
                           0.3 + 0.5 * ((cls * 71) % 7) / 6.0};
  const int blob_grid = 2 + (cls % 2);  // 2x2 or 3x3 blob layout
  const bool blobs_on_diag = (cls / 5) % 2 == 0;

  const double phase = rng.uniform(0.0, 2.0 * kPi);
  const int dx = augment_shift ? static_cast<int>(rng.uniform_int(5)) - 2 : 0;
  const int dy = augment_shift ? static_cast<int>(rng.uniform_int(5)) - 2 : 0;
  const double ca = std::cos(angle), sa = std::sin(angle);

  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        const double u = (static_cast<double>(static_cast<int>(x) + dx)) / static_cast<double>(w);
        const double v = (static_cast<double>(static_cast<int>(y) + dy)) / static_cast<double>(h);
        // Oriented grating.
        const double t = (u * ca + v * sa) * freq * 2.0 * kPi + phase;
        double val = 0.6 * std::sin(t) * color[c];
        // Blob layout: bright spots on a class-dependent sub-grid.
        const double gu = u * blob_grid, gv = v * blob_grid;
        const double fu = gu - std::floor(gu) - 0.5, fv = gv - std::floor(gv) - 0.5;
        const bool on_diag = (static_cast<int>(std::floor(gu)) + static_cast<int>(std::floor(gv))) % 2 == 0;
        if (on_diag == blobs_on_diag) {
          val += 0.8 * std::exp(-12.0 * (fu * fu + fv * fv)) * (c == static_cast<std::size_t>(cls % 3) ? 1.2 : 0.5);
        }
        img[c * plane + y * w + x] = static_cast<float>(val + noise * rng.normal());
      }
    }
  }
}

Dataset make_split(const SynthCifarConfig& cfg, std::size_t per_class, Rng& rng) {
  const std::size_t n = per_class * cfg.classes;
  Dataset d;
  d.classes = cfg.classes;
  d.images = Tensor({n, 3, cfg.height, cfg.width});
  d.labels.resize(n);
  const std::size_t img_size = 3 * cfg.height * cfg.width;
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % cfg.classes);
    d.labels[i] = cls;
    paint_class_image(d.images.data() + i * img_size, cfg.height, cfg.width, cls, rng, cfg.noise,
                      cfg.augment_shift);
  }
  return d;
}

void standardize(Tensor& images) {
  const auto m = tensor::moments(images);
  const float mean = static_cast<float>(m.mean);
  const float inv_std = static_cast<float>(1.0 / (m.stddev + 1e-8));
  images.apply([mean, inv_std](float v) { return (v - mean) * inv_std; });
}

}  // namespace

TrainTest make_synth_cifar(const SynthCifarConfig& cfg) {
  Rng rng(cfg.seed);
  TrainTest tt;
  tt.train = make_split(cfg, cfg.train_per_class, rng);
  tt.test = make_split(cfg, cfg.test_per_class, rng);
  standardize(tt.train.images);
  standardize(tt.test.images);
  return tt;
}

TrainTest make_two_moons(std::size_t per_class, float noise, std::uint64_t seed) {
  Rng rng(seed);
  const auto build = [&](std::size_t count) {
    Dataset d;
    d.classes = 2;
    d.images = Tensor({count * 2, 2});
    d.labels.resize(count * 2);
    for (std::size_t i = 0; i < count * 2; ++i) {
      const int cls = static_cast<int>(i % 2);
      const double t = rng.uniform(0.0, kPi);
      double x, y;
      if (cls == 0) {
        x = std::cos(t);
        y = std::sin(t);
      } else {
        x = 1.0 - std::cos(t);
        y = 0.5 - std::sin(t);
      }
      d.images.at(i, 0) = static_cast<float>(x + noise * rng.normal());
      d.images.at(i, 1) = static_cast<float>(y + noise * rng.normal());
      d.labels[i] = cls;
    }
    return d;
  };
  TrainTest tt;
  tt.train = build(per_class);
  tt.test = build(per_class / 4 + 1);
  return tt;
}

TrainTest make_spirals(std::size_t arms, std::size_t per_arm, float noise, std::uint64_t seed) {
  Rng rng(seed);
  const auto build = [&](std::size_t count) {
    Dataset d;
    d.classes = arms;
    d.images = Tensor({count * arms, 2});
    d.labels.resize(count * arms);
    for (std::size_t i = 0; i < count * arms; ++i) {
      const auto cls = i % arms;
      const double t = rng.uniform(0.25, 1.0);
      const double theta = t * 3.0 * kPi + 2.0 * kPi * static_cast<double>(cls) / static_cast<double>(arms);
      d.images.at(i, 0) = static_cast<float>(t * std::cos(theta) + noise * rng.normal());
      d.images.at(i, 1) = static_cast<float>(t * std::sin(theta) + noise * rng.normal());
      d.labels[i] = static_cast<int>(cls);
    }
    return d;
  };
  TrainTest tt;
  tt.train = build(per_arm);
  tt.test = build(per_arm / 4 + 1);
  return tt;
}

}  // namespace pdnn::data
