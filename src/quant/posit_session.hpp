// posit_session.hpp — compiled whole-network posit inference.
//
// Production serving separates *compile* from *run* (cf. marian-dev's
// compiled expression graphs): walk the model once, bind every weight, plan
// every buffer — then make the hot loop do nothing but arithmetic.
// PositSession is the true-posit Backend over the shared exec layer:
//
//   * compile() lowers the module graph through exec::GraphBuilder into the
//     backend-neutral ExecPlan (Sequential nesting and ResidualBlock
//     skip-connections included — the residual join accumulates both
//     branches through the session's quire path), lets exec::ArenaPlanner
//     fold every intermediate tensor onto lifetime-shared arena buffers,
//     then resolves each step's (PositSpec, AccumMode) from SessionConfig,
//     pre-encodes every weight/bias/BN constant into session-owned
//     EncodedTensor panels, resolves the n <= 8 LUT kernels, and plans
//     per-thread quire arenas plus per-step scratch (im2col columns,
//     activation panels).
//   * run() executes the compiled plan. In steady state (shapes repeat, no
//     weight mutation) it performs no allocation and takes no lock: panels,
//     arenas, and scratch are reused; Param::version mismatches — an
//     optimizer step or checkpoint load that called Param::mark_updated() —
//     re-encode exactly the stale panels first.
//
// exec::FloatBackend executes the identical plan in FP32 — the session is
// one of two pluggable backends over one lowering, not a parallel stack.
//
// Outputs are bit-identical to chaining the per-layer engine entry points
// (and hence to the scalar reference) at every spec, accumulation mode, and
// thread count. posit_forward() in posit_inference.hpp is the thin
// compile-and-run compatibility wrapper over this API.
//
// BN constants re-encode whenever gamma/beta versions or the BN's
// stats_version change — a training forward that only moves the running
// statistics is caught automatically. invalidate() remains for mutations
// that bypass every version (e.g. writing a tensor's storage directly).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "exec/backend.hpp"
#include "exec/plan.hpp"
#include "nn/layers.hpp"
#include "quant/posit_inference.hpp"

namespace pdnn::quant {

/// Per-layer override of the session defaults. Unset fields inherit.
struct LayerOverride {
  std::optional<posit::PositSpec> spec;
  std::optional<AccumMode> mode;
};

/// Format/accumulation plan for a session: one default (spec, mode) pair
/// plus overrides keyed by layer class or by exact layer name (name wins
/// over class, class over default) — genuine per-layer mixed precision.
/// Pooling layers resolve with LayerClass::kConv, matching the pre-session
/// posit_forward.
struct SessionConfig {
  posit::PositSpec spec{16, 1};
  AccumMode mode = AccumMode::kQuire;
  std::map<nn::LayerClass, LayerOverride> by_class;
  std::map<std::string, LayerOverride> by_name;

  /// The session equivalent of QuantConfig's per-class forward formats
  /// (conv/bn/linear), under one accumulation mode: what posit_forward uses.
  static SessionConfig from_quant(const QuantConfig& cfg, AccumMode mode);

  posit::PositSpec spec_for(const std::string& name, nn::LayerClass cls) const;
  AccumMode mode_for(const std::string& name, nn::LayerClass cls) const;
};

class PositSession {
 public:
  /// Compile `net` (any Module: a Sequential, a ResidualBlock, or a single
  /// layer) against `cfg`. Throws std::invalid_argument on module types the
  /// engine cannot execute.
  ///
  /// The session binds (but does not own) the network's parameters: `net`
  /// must outlive every run() — the Param::version checks read through into
  /// the live module graph.
  static PositSession compile(nn::Module& net, const SessionConfig& cfg);

  /// Compile as an owning exec::Backend — the polymorphic form a
  /// serve::Engine worker pool consumes (each worker clone()s an
  /// independent set of panels, quire arenas, and scratch over the same
  /// module graph). Same contract as compile().
  static std::unique_ptr<exec::Backend> compile_backend(nn::Module& net,
                                                        const SessionConfig& cfg);

  PositSession(PositSession&&) noexcept;
  PositSession& operator=(PositSession&&) noexcept;
  ~PositSession();

  /// Eval-mode forward pass in true posit arithmetic. Returns a reference to
  /// the session-owned output buffer, valid until the next run() or the
  /// session's destruction; copy it to keep it. Batch size (and conv H/W)
  /// may vary between calls; steady state means repeated shapes.
  const tensor::Tensor& run(const tensor::Tensor& x);

  /// Force every panel and BN constant to re-encode on the next run()
  /// (needed only for mutations that bypass every version counter, e.g.
  /// writing a parameter's storage without Param::mark_updated()).
  void invalidate();

  const SessionConfig& config() const;
  /// The backend-neutral lowering this session executes (step table, slot
  /// wiring, arena buffers) — ExecPlan::dump() pretty-prints it.
  const exec::ExecPlan& plan() const;
  /// Bytes held by the slot arena (peak run shapes seen so far).
  std::size_t arena_bytes() const;
  /// Top-level compiled steps (a ResidualBlock is one step).
  std::size_t steps() const;
  /// Parameter tensors bound to session-owned panels.
  std::size_t bound_params() const;
  /// Panel/constant encode passes performed, compile included — the
  /// observable for compile-once/run-many and invalidation tests.
  std::uint64_t encode_count() const;
  /// Resident model footprint: packed weight/bias code payloads plus the
  /// encoded BN constant vectors — the bytes that scale with clone count and
  /// decide how many worker backends stay cache-resident. Per-step
  /// activation/decode scratch is deliberately excluded (it used to be
  /// charged here, double-counting run-time scratch as model size); see
  /// panel_scratch_bytes().
  std::size_t panel_bytes() const;
  /// Steady-state run scratch the session owns: per-step packed activation
  /// panels and im2col column buffers (grow-only, sized by the largest batch
  /// seen). The engine's per-thread decode scratch is reported separately by
  /// detail::engine_scratch_bytes().
  std::size_t panel_scratch_bytes() const;

 private:
  PositSession();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pdnn::quant
