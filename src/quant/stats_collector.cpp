#include "quant/stats_collector.hpp"

#include <algorithm>
#include <cmath>

namespace pdnn::quant {

const std::vector<WeightSnapshot> WeightStatsCollector::kEmpty{};

void WeightStatsCollector::collect(std::size_t epoch, nn::Sequential& net) {
  for (nn::Param* p : net.params()) {
    if (std::find(patterns_.begin(), patterns_.end(), p->name) == patterns_.end()) continue;
    WeightSnapshot snap;
    snap.epoch = epoch;
    snap.moments = tensor::moments(p->value);
    snap.log2_center = tensor::log2_mean(p->value);
    // Symmetric range padded 10% beyond the extremes (like a Fig. 2 panel).
    const double extent = std::max(std::fabs(snap.moments.min), std::fabs(snap.moments.max)) * 1.1 + 1e-9;
    snap.hist = tensor::histogram(p->value, -extent, extent, bins_);
    series_[p->name].push_back(std::move(snap));
  }
}

const std::vector<WeightSnapshot>& WeightStatsCollector::series(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? kEmpty : it->second;
}

std::vector<std::string> WeightStatsCollector::tracked() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, _] : series_) names.push_back(name);
  return names;
}

}  // namespace pdnn::quant
