// policy.hpp — the paper's posit training policy, wired into the Fig. 3 hooks.
//
// Format assignment follows Section III-B "Adjust Dynamic Range" and the
// Table III footnotes:
//   * weights & activations (forward, update): es = 1
//   * errors & weight gradients (backward):    es = 2
//   * CONV/Linear layers: n = 8 (Cifar-10 config) or 16 (ImageNet config)
//   * BN layers:          n = 16 in both configs
// Scaling follows Eq. (2)/(3); the shift is recomputed from each tensor at
// transform time (kDynamic) or frozen from the warm-up model's weights
// (kCalibrated, weights only — activation/gradient shifts stay dynamic since
// they do not exist at calibration time). kNone disables shifting (ablation).
#pragma once

#include <map>
#include <optional>

#include "nn/layers.hpp"
#include "nn/precision.hpp"
#include "quant/posit_transform.hpp"
#include "quant/scale.hpp"

namespace pdnn::quant {

enum class ScaleMode {
  kNone,        ///< raw P(x), no distribution shifting (ablation)
  kDynamic,     ///< Eq. (2) recomputed from every tensor instance
  kCalibrated,  ///< weight shifts frozen at warm-up end; others dynamic
};

/// Formats for one layer family.
struct FormatPair {
  PositSpec forward{8, 1};   ///< weights & activations
  PositSpec backward{8, 2};  ///< errors & weight gradients
};

struct QuantConfig {
  FormatPair conv{{8, 1}, {8, 2}};      ///< Table III Cifar-10 CONV config
  FormatPair bn{{16, 1}, {16, 2}};      ///< Table III Cifar-10 BN config
  FormatPair linear{{8, 1}, {8, 2}};    ///< FC treated like CONV
  int sigma = kPaperSigma;
  ScaleMode scale_mode = ScaleMode::kDynamic;
  posit::RoundMode round_mode = posit::RoundMode::kTowardZero;
  std::uint64_t stochastic_seed = 0x5EED;

  /// The paper's ImageNet config: posit 16 everywhere.
  static QuantConfig imagenet16() {
    QuantConfig c;
    c.conv = {{16, 1}, {16, 2}};
    c.bn = {{16, 1}, {16, 2}};
    c.linear = {{16, 1}, {16, 2}};
    return c;
  }
  /// The paper's Cifar-10 config: posit 8 for CONV, posit 16 for BN.
  static QuantConfig cifar8() { return QuantConfig{}; }
};

class QuantPolicy final : public nn::PrecisionPolicy {
 public:
  explicit QuantPolicy(QuantConfig cfg = {}) : cfg_(cfg), rng_(cfg.stochastic_seed) {}

  bool active() const override { return active_; }
  /// Flip quantization on (wired to Trainer's on_warmup_end).
  void activate() { active_ = true; }
  void deactivate() { active_ = false; }

  /// Freeze per-layer weight shifts from the (warm-up trained) network.
  /// Only meaningful in ScaleMode::kCalibrated.
  void calibrate(nn::Sequential& net);

  tensor::Tensor quantize_weight(const tensor::Tensor& w, const std::string& layer,
                                 nn::LayerClass cls) override;
  void quantize_activation(tensor::Tensor& a, const std::string& layer, nn::LayerClass cls) override;
  void quantize_error(tensor::Tensor& e, const std::string& layer, nn::LayerClass cls) override;
  void quantize_gradient(tensor::Tensor& g, const std::string& layer, nn::LayerClass cls) override;
  void quantize_updated_weight(tensor::Tensor& w, const std::string& layer, nn::LayerClass cls) override;

  const QuantConfig& config() const { return cfg_; }
  /// Number of element transforms performed since construction (diagnostics).
  std::size_t transforms_performed() const { return transforms_; }
  /// Calibrated shift for a layer's weight, if frozen.
  std::optional<int> calibrated_shift(const std::string& layer) const;

 private:
  const PositSpec& format_of(nn::LayerClass cls, nn::TensorRole role) const;
  int shift_of(const tensor::Tensor& t, const std::string& layer, nn::TensorRole role);
  void transform(tensor::Tensor& t, const PositSpec& spec, int shift);

  QuantConfig cfg_;
  bool active_ = false;
  std::map<std::string, int> weight_shifts_;  // layer -> frozen shift
  posit::RoundingRng rng_;
  std::size_t transforms_ = 0;
};

}  // namespace pdnn::quant
