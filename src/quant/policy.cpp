#include "quant/policy.hpp"

namespace pdnn::quant {

using nn::LayerClass;
using nn::TensorRole;
using tensor::Tensor;

const PositSpec& QuantPolicy::format_of(LayerClass cls, TensorRole role) const {
  const FormatPair& pair = cls == LayerClass::kBn     ? cfg_.bn
                           : cls == LayerClass::kConv ? cfg_.conv
                                                      : cfg_.linear;
  // Section III-B: es = 1 formats for the forward dataflow (W, A), es = 2
  // formats for the backward dataflow (E, dW).
  const bool forward = role == TensorRole::kWeight || role == TensorRole::kActivation;
  return forward ? pair.forward : pair.backward;
}

int QuantPolicy::shift_of(const Tensor& t, const std::string& layer, TensorRole role) {
  switch (cfg_.scale_mode) {
    case ScaleMode::kNone:
      return 0;
    case ScaleMode::kDynamic:
      return scale_shift(t, cfg_.sigma);
    case ScaleMode::kCalibrated: {
      if (role == TensorRole::kWeight) {
        const auto it = weight_shifts_.find(layer);
        if (it != weight_shifts_.end()) return it->second;
      }
      return scale_shift(t, cfg_.sigma);  // non-weight tensors stay dynamic
    }
  }
  return 0;
}

void QuantPolicy::transform(Tensor& t, const PositSpec& spec, int shift) {
  transforms_ += t.numel();
  if (cfg_.round_mode == posit::RoundMode::kTowardZero) {
    transform_scaled_inplace(t, spec, shift);
  } else {
    transform_inplace_rounded(t, spec, cfg_.round_mode, &rng_, shift);
  }
}

void QuantPolicy::calibrate(nn::Sequential& net) {
  weight_shifts_.clear();
  for (nn::Param* p : net.params()) {
    weight_shifts_[p->name] = scale_shift(p->value, cfg_.sigma);
  }
}

std::optional<int> QuantPolicy::calibrated_shift(const std::string& layer) const {
  const auto it = weight_shifts_.find(layer);
  if (it == weight_shifts_.end()) return std::nullopt;
  return it->second;
}

Tensor QuantPolicy::quantize_weight(const Tensor& w, const std::string& layer, LayerClass cls) {
  Tensor q = w;
  // The hook passes the module name; calibrated shifts are stored per
  // parameter name ("<layer>.weight").
  const std::string pname = layer + ".weight";
  transform(q, format_of(cls, TensorRole::kWeight), shift_of(w, pname, TensorRole::kWeight));
  return q;
}

void QuantPolicy::quantize_activation(Tensor& a, const std::string& layer, LayerClass cls) {
  transform(a, format_of(cls, TensorRole::kActivation), shift_of(a, layer, TensorRole::kActivation));
}

void QuantPolicy::quantize_error(Tensor& e, const std::string& layer, LayerClass cls) {
  transform(e, format_of(cls, TensorRole::kError), shift_of(e, layer, TensorRole::kError));
}

void QuantPolicy::quantize_gradient(Tensor& g, const std::string& layer, LayerClass cls) {
  transform(g, format_of(cls, TensorRole::kGradient), shift_of(g, layer, TensorRole::kGradient));
}

void QuantPolicy::quantize_updated_weight(Tensor& w, const std::string& layer, LayerClass cls) {
  const std::string pname = layer;  // optimizer passes the parameter name already
  transform(w, format_of(cls, TensorRole::kWeight), shift_of(w, pname, TensorRole::kWeight));
}

}  // namespace pdnn::quant
