// posit_transform.hpp — the paper's Algorithm 1: P_{n,es}(x).
//
// Transforms an FP32 real into the value of its (n, es) posit representation
// under round-toward-zero, with two paper-specific semantics that differ from
// standard posit rounding:
//   * |x| < minpos flushes to ZERO (Algorithm 1 lines 3-4), whereas standard
//     posit rounding never underflows;
//   * magnitudes are clipped into [minpos, maxpos] before encoding (line 7).
// Known paper typo: line 17 reads fb = min{n-1-rb-eb, 0}; a width cannot be
// negative, and Table I confirms the intent is max{., 0}. We implement max.
//
// Two implementations are provided: a literal transcription of Algorithm 1
// (reference, double-mediated) and a fast float-bit path used in training
// loops. They are bit-identical (see tests/quant/transform_test.cpp), and both
// agree with posit::from_double(kTowardZero) + to_double modulo the underflow
// rule above.
#pragma once

#include "posit/codec.hpp"
#include "tensor/tensor.hpp"

namespace pdnn::quant {

using posit::PositSpec;

/// Literal Algorithm 1: returns the real value of the posit px.
double posit_transform_reference(double x, const PositSpec& spec);

/// Fast path for training loops (identical results on float inputs).
float posit_transform(float x, const PositSpec& spec);

/// Element-wise in-place transform of a tensor: A_p = P(A).
void transform_inplace(tensor::Tensor& t, const PositSpec& spec);

/// Eq. (3): px = P(x / Sf) * Sf with Sf = 2^shift (exact power-of-two scaling).
float posit_transform_scaled(float x, const PositSpec& spec, int shift);

/// Element-wise in-place Eq. (3) over a tensor.
void transform_scaled_inplace(tensor::Tensor& t, const PositSpec& spec, int shift);

/// Variants with selectable rounding (ablation benches); the paper's choice is
/// round-toward-zero because it is the cheapest in hardware (Section III-A).
void transform_inplace_rounded(tensor::Tensor& t, const PositSpec& spec, posit::RoundMode mode,
                               posit::RoundingRng* rng, int shift);

}  // namespace pdnn::quant
