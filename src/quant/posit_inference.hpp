// posit_inference.hpp — TRUE posit-arithmetic inference.
//
// The training stack simulates posit numerics in FP32 (as the paper's PyTorch
// implementation does): tensors are snapped onto the posit grid but the
// multiply-accumulates still run in FP32. This module closes the loop by
// executing the forward pass with genuine posit arithmetic — every operand is
// an (n, es) code and every sum is accumulated either
//   * kQuire  — exactly, in a quire, one rounding per dot product
//               (Deep Positron's EMAC, referenced by the paper), or
//   * kSerial — with a rounded posit add per term (a plain posit ALU), or
//   * kFma    — with a fused multiply-add chain (one rounding per term,
//               the behavior of the paper's Fig. 4 MAC pipeline).
// Comparing these against the FP32-simulated quantized forward measures the
// emulation fidelity of the training methodology.
#pragma once

#include "nn/layers.hpp"
#include "posit/quire.hpp"
#include "quant/policy.hpp"

namespace pdnn::quant {

enum class AccumMode {
  kQuire,   ///< exact accumulation, single final rounding
  kSerial,  ///< round after every add
  kFma,     ///< fused multiply-add chain: round(a*b + acc) per term
};

/// Dense posit matrix-vector building block: y = x W^T + b, all posit.
/// x is [N, in], w is [out, in], bias optional ([out] or empty).
tensor::Tensor posit_linear(const tensor::Tensor& x, const tensor::Tensor& w, const tensor::Tensor& bias,
                            const posit::PositSpec& spec, AccumMode mode);

/// Posit convolution: input [N,C,H,W], weight [O,I,K,K].
tensor::Tensor posit_conv2d(const tensor::Tensor& x, const tensor::Tensor& w,
                            const tensor::Conv2dGeom& geom, const posit::PositSpec& spec, AccumMode mode);

/// Run a full eval-mode forward pass of a Sequential built from the layer
/// types in this library (Conv2d, BatchNorm2d, ReLU, pooling, Linear,
/// ResidualBlock are NOT yet supported — see limitations) using true posit
/// arithmetic with the per-layer-class formats of `cfg`.
///
/// Supported topologies: mlp() (Linear/ReLU chains) and plain_cnn()
/// (Conv2d/BatchNorm2d/ReLU/MaxPool/GlobalAvgPool/Linear). Throws
/// std::invalid_argument on unsupported children.
tensor::Tensor posit_forward(nn::Sequential& net, const tensor::Tensor& x, const QuantConfig& cfg,
                             AccumMode mode);

}  // namespace pdnn::quant
