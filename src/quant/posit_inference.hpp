// posit_inference.hpp — TRUE posit-arithmetic inference engine.
//
// The training stack simulates posit numerics in FP32 (as the paper's PyTorch
// implementation does): tensors are snapped onto the posit grid but the
// multiply-accumulates still run in FP32. This module closes the loop by
// executing the forward pass with genuine posit arithmetic — every operand is
// an (n, es) code and every sum is accumulated either
//   * kQuire  — exactly, in a quire, one rounding per dot product
//               (Deep Positron's EMAC, referenced by the paper), or
//   * kSerial — with a rounded posit add per term (a plain posit ALU), or
//   * kFma    — with a fused multiply-add chain (one rounding per term,
//               the behavior of the paper's Fig. 4 MAC pipeline).
//
// Execution is decode-once: every operand is unpacked exactly once into
// posit::Unpacked fields (weights once per *network* via WeightCodeCache,
// activations once per layer call), the hot loops run on the unpacked panels
// with per-thread quires OpenMP-distributed over output rows/pixels, and
// n <= 8 serial-mode multiplies dispatch onto the tabulated MulLut at
// runtime. Results are bit-identical to the retained scalar reference path
// (posit_linear_reference / posit_conv2d_reference) at every spec and
// accumulation mode, and to single-threaded runs at any thread count.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/layers.hpp"
#include "posit/quire.hpp"
#include "posit/unpacked.hpp"
#include "quant/policy.hpp"

namespace pdnn::quant {

enum class AccumMode {
  kQuire,   ///< exact accumulation, single final rounding
  kSerial,  ///< round after every add
  kFma,     ///< fused multiply-add chain: round(a*b + acc) per term
};

/// The single rounding mode used for every float -> posit encode on the
/// inference path (weights, activations, im2col panels, BN constants).
constexpr posit::RoundMode kEncodeRound = posit::RoundMode::kNearestEven;

/// Activation rows (or output pixels) per OpenMP work item in the engine
/// GEMM: the unpacked activation tile stays cache-resident while each weight
/// row streams through it once per tile.
constexpr std::size_t kActTile = 16;

/// Decode-once operand panel: a tensor's n-bit codes plus their unpacked
/// fields. Codes feed the LUT and serial paths, unpacked fields the
/// quire/fma hot loops.
struct EncodedTensor {
  posit::PositSpec spec{8, 1};
  tensor::Shape shape;
  std::vector<std::uint32_t> codes;
  std::vector<posit::Unpacked> ops;

  std::size_t numel() const { return codes.size(); }
  bool empty() const { return codes.empty(); }
};

/// Encode (under kEncodeRound) and unpack a whole tensor in one pass.
EncodedTensor encode_unpack(const tensor::Tensor& t, const posit::PositSpec& spec);

/// Process-wide weight-code cache: parameter tensors encode once per network,
/// not once per forward. Entries are keyed on (tensor storage, spec) and
/// carry the Param::version they were built from; any mutation that calls
/// Param::mark_updated() (optimizer step, checkpoint load) refreshes the
/// codes on next use. Versions are process-unique, so a recycled allocation
/// can never alias a stale entry. Entries whose Param was destroyed (or whose
/// value tensor was reassigned to new storage) cannot be detected
/// individually, so the cache self-flushes when it exceeds kMaxEntries —
/// live panels re-encode once and the map stays bounded in long-lived
/// processes.
class WeightCodeCache {
 public:
  static WeightCodeCache& instance();

  /// The encoded panel for p.value under spec (cached or freshly built).
  std::shared_ptr<const EncodedTensor> get(const nn::Param& p, const posit::PositSpec& spec);

  void clear();
  std::size_t entries() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

  /// Flush threshold: generous for any realistic network (params x specs),
  /// small enough that leaked entries cannot grow without bound.
  static constexpr std::size_t kMaxEntries = 1024;

 private:
  struct Entry {
    std::uint64_t version = 0;
    std::shared_ptr<const EncodedTensor> panel;
  };

  mutable std::mutex mu_;
  std::map<std::pair<const void*, std::pair<int, int>>, Entry> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Dense posit matrix-vector building block: y = x W^T + b, all posit.
/// x is [N, in], w is [out, in], bias optional ([out] or empty). Encodes the
/// weights per call; prefer the EncodedTensor overload (or posit_forward,
/// which caches) when the weights are reused.
tensor::Tensor posit_linear(const tensor::Tensor& x, const tensor::Tensor& w, const tensor::Tensor& bias,
                            const posit::PositSpec& spec, AccumMode mode);

/// Engine form: weights (and optional bias) already encoded+unpacked.
tensor::Tensor posit_linear(const tensor::Tensor& x, const EncodedTensor& w, const EncodedTensor& bias,
                            AccumMode mode);

/// Posit convolution: input [N,C,H,W], weight [O,I,KH,KW] (rectangular
/// windows via geom.kernel_w), optional per-output-channel bias ([O] or
/// empty).
tensor::Tensor posit_conv2d(const tensor::Tensor& x, const tensor::Tensor& w, const tensor::Tensor& bias,
                            const tensor::Conv2dGeom& geom, const posit::PositSpec& spec, AccumMode mode);

/// Engine form: weights/bias already encoded+unpacked.
tensor::Tensor posit_conv2d(const tensor::Tensor& x, const EncodedTensor& w, const EncodedTensor& bias,
                            const tensor::Conv2dGeom& geom, AccumMode mode);

/// Run a full eval-mode forward pass of a Sequential built from the layer
/// types in this library (Conv2d, BatchNorm2d, ReLU, pooling, Linear;
/// ResidualBlock is NOT yet supported) using true posit arithmetic with the
/// per-layer-class formats of `cfg`. Weight codes come from WeightCodeCache.
/// Throws std::invalid_argument on unsupported children.
tensor::Tensor posit_forward(nn::Sequential& net, const tensor::Tensor& x, const QuantConfig& cfg,
                             AccumMode mode);

// ---------------------------------------------------------------------------
// Retained scalar reference path (the pre-engine implementation): coded
// operands, full decode per multiply-accumulate, weights re-encoded on every
// call, serial triple loop. This is the bit-exactness oracle for
// quant.posit_engine and the baseline bench_posit measures speedups against.
// ---------------------------------------------------------------------------

tensor::Tensor posit_linear_reference(const tensor::Tensor& x, const tensor::Tensor& w,
                                      const tensor::Tensor& bias, const posit::PositSpec& spec,
                                      AccumMode mode);

tensor::Tensor posit_conv2d_reference(const tensor::Tensor& x, const tensor::Tensor& w,
                                      const tensor::Tensor& bias, const tensor::Conv2dGeom& geom,
                                      const posit::PositSpec& spec, AccumMode mode);

}  // namespace pdnn::quant
