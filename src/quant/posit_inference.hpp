// posit_inference.hpp — TRUE posit-arithmetic inference engine.
//
// The training stack simulates posit numerics in FP32 (as the paper's PyTorch
// implementation does): tensors are snapped onto the posit grid but the
// multiply-accumulates still run in FP32. This module closes the loop by
// executing the forward pass with genuine posit arithmetic — every operand is
// an (n, es) code and every sum is accumulated either
//   * kQuire  — exactly, in a quire, one rounding per dot product
//               (Deep Positron's EMAC, referenced by the paper), or
//   * kSerial — with a rounded posit add per term (a plain posit ALU), or
//   * kFma    — with a fused multiply-add chain (one rounding per term,
//               the behavior of the paper's Fig. 4 MAC pipeline).
//
// Panels are stored bit-packed at format width (EncodedTensor) and decoded
// blockwise, each packed value exactly once per GEMM: the activation panel
// into per-call scratch up front, each weight row into O(k) per-thread
// scratch as the column loop streams it — all through the SIMD batch-of-8
// decoder (posit/simd.hpp). The hot loops then run on posit::Unpacked lanes
// with per-thread quires OpenMP-distributed over output columns; n <= 8
// formats dispatch at runtime onto tabulated kernels (MulLut/AddLut for the
// serial chain and every bias add, the pair-classed FmaLut for the fma
// chain). Results are bit-identical to the retained scalar reference path
// (posit_linear_reference / posit_conv2d_reference) at every spec and
// accumulation mode, to single-threaded runs at any thread count, and to
// the scalar decode path (PDNN_NO_AVX2=1).
//
// The free functions below encode their weights per call. Whole-network
// inference lives in quant::PositSession (posit_session.hpp), which compiles
// a module graph once — session-owned weight panels, per-thread quire
// arenas, per-layer precision overrides — and runs allocation-free in steady
// state; posit_forward() is the thin compile-and-run compatibility wrapper.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layers.hpp"
#include "posit/packed.hpp"
#include "posit/quire.hpp"
#include "posit/unpacked.hpp"
#include "quant/policy.hpp"

namespace pdnn::quant {

enum class AccumMode {
  kQuire,   ///< exact accumulation, single final rounding
  kSerial,  ///< round after every add
  kFma,     ///< fused multiply-add chain: round(a*b + acc) per term
};

/// The single rounding mode used for every float -> posit encode on the
/// inference path (weights, activations, im2col panels, BN constants).
constexpr posit::RoundMode kEncodeRound = posit::RoundMode::kNearestEven;

/// Activation rows (or output pixels) per work item of the engine GEMM's
/// block-decode phase: the packed activation panel is unpacked and decoded
/// in slices of this many rows, team-parallel, before the column loop runs.
constexpr std::size_t kActTile = 16;

/// Compressed operand panel: a tensor's n-bit posit codes bit-packed at
/// format width (posit/packed.hpp block codec) — ⌈n/8⌉ bytes per value, the
/// paper's model-size story as the engine's resident layout. The GEMM inner
/// loops never touch this form directly: engine_gemm decodes each packed
/// value exactly once per call into transient scratch (SIMD batch-of-8
/// group decode, ragged tail scalar), so steady-state panel memory is the
/// packed payload alone.
struct EncodedTensor {
  posit::PositSpec spec{8, 1};
  tensor::Shape shape;
  std::vector<std::uint8_t> packed;  ///< posit::packed_capacity(count, spec) bytes
  std::size_t count = 0;

  std::size_t numel() const { return count; }
  bool empty() const { return count == 0; }
  /// Payload bytes of the packed codes (the footprint number; slack excluded).
  std::size_t payload_bytes() const { return posit::packed_bytes(count, spec); }
};

/// Encode (under kEncodeRound) and bit-pack a whole tensor in one pass.
EncodedTensor encode_pack(const tensor::Tensor& t, const posit::PositSpec& spec);

/// Encode `count` floats into an existing panel, reusing its storage — the
/// session's steady-state activation path (no allocation once shapes
/// settle). Sets out.spec/out.count; the caller owns out.shape.
void encode_pack_into(const float* src, std::size_t count, const posit::PositSpec& spec,
                      EncodedTensor& out);

/// Dense posit matrix-vector building block: y = x W^T + b, all posit.
/// x is [N, in] (N = 0 yields an empty [0, out] result), w is [out, in],
/// bias optional ([out] or empty). Encodes the weights per call; prefer the
/// EncodedTensor overload (or a PositSession, which owns the panels) when
/// the weights are reused.
tensor::Tensor posit_linear(const tensor::Tensor& x, const tensor::Tensor& w, const tensor::Tensor& bias,
                            const posit::PositSpec& spec, AccumMode mode);

/// Engine form: weights (and optional bias) already encoded+unpacked.
tensor::Tensor posit_linear(const tensor::Tensor& x, const EncodedTensor& w, const EncodedTensor& bias,
                            AccumMode mode);

/// Posit convolution: input [N,C,H,W] (N = 0 yields an empty result), weight
/// [O,I,KH,KW] (rectangular windows via geom.kernel_w), optional
/// per-output-channel bias ([O] or empty). Throws std::invalid_argument on
/// degenerate geometry (see tensor::Conv2dGeom::validate).
tensor::Tensor posit_conv2d(const tensor::Tensor& x, const tensor::Tensor& w, const tensor::Tensor& bias,
                            const tensor::Conv2dGeom& geom, const posit::PositSpec& spec, AccumMode mode);

/// Engine form: weights/bias already encoded+unpacked.
tensor::Tensor posit_conv2d(const tensor::Tensor& x, const EncodedTensor& w, const EncodedTensor& bias,
                            const tensor::Conv2dGeom& geom, AccumMode mode);

/// Compatibility wrapper: compile `net` into a PositSession with the
/// per-layer-class formats of `cfg` (SessionConfig::from_quant) and run one
/// batch. Bit-identical to the pre-session per-layer engine path; weights
/// re-encode on every call, so repeated inference should hold a compiled
/// session instead. Throws std::invalid_argument on unsupported children.
tensor::Tensor posit_forward(nn::Sequential& net, const tensor::Tensor& x, const QuantConfig& cfg,
                             AccumMode mode);

// ---------------------------------------------------------------------------
// Retained scalar reference path (the pre-engine implementation): coded
// operands, full decode per multiply-accumulate, weights re-encoded on every
// call, serial triple loop. This is the bit-exactness oracle for
// quant.posit_engine and the baseline bench_posit measures speedups against.
// ---------------------------------------------------------------------------

tensor::Tensor posit_linear_reference(const tensor::Tensor& x, const tensor::Tensor& w,
                                      const tensor::Tensor& bias, const posit::PositSpec& spec,
                                      AccumMode mode);

tensor::Tensor posit_conv2d_reference(const tensor::Tensor& x, const tensor::Tensor& w,
                                      const tensor::Tensor& bias, const tensor::Conv2dGeom& geom,
                                      const posit::PositSpec& spec, AccumMode mode);

}  // namespace pdnn::quant
