// posit_inference.hpp — TRUE posit-arithmetic inference engine.
//
// The training stack simulates posit numerics in FP32 (as the paper's PyTorch
// implementation does): tensors are snapped onto the posit grid but the
// multiply-accumulates still run in FP32. This module closes the loop by
// executing the forward pass with genuine posit arithmetic — every operand is
// an (n, es) code and every sum is accumulated either
//   * kQuire  — exactly, in a quire, one rounding per dot product
//               (Deep Positron's EMAC, referenced by the paper), or
//   * kSerial — with a rounded posit add per term (a plain posit ALU), or
//   * kFma    — with a fused multiply-add chain (one rounding per term,
//               the behavior of the paper's Fig. 4 MAC pipeline).
//
// Execution is decode-once: every operand is unpacked exactly once into
// posit::Unpacked fields, the hot loops run on the unpacked panels with
// per-thread quires OpenMP-distributed over output rows/pixels, and n <= 8
// formats dispatch at runtime onto tabulated kernels (MulLut/AddLut for the
// serial chain and every bias add, the pair-classed FmaLut for the fma
// chain). Results are bit-identical to the retained scalar reference path
// (posit_linear_reference / posit_conv2d_reference) at every spec and
// accumulation mode, and to single-threaded runs at any thread count.
//
// The free functions below encode their weights per call. Whole-network
// inference lives in quant::PositSession (posit_session.hpp), which compiles
// a module graph once — session-owned weight panels, per-thread quire
// arenas, per-layer precision overrides — and runs allocation-free in steady
// state; posit_forward() is the thin compile-and-run compatibility wrapper.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layers.hpp"
#include "posit/quire.hpp"
#include "posit/unpacked.hpp"
#include "quant/policy.hpp"

namespace pdnn::quant {

enum class AccumMode {
  kQuire,   ///< exact accumulation, single final rounding
  kSerial,  ///< round after every add
  kFma,     ///< fused multiply-add chain: round(a*b + acc) per term
};

/// The single rounding mode used for every float -> posit encode on the
/// inference path (weights, activations, im2col panels, BN constants).
constexpr posit::RoundMode kEncodeRound = posit::RoundMode::kNearestEven;

/// Activation rows (or output pixels) per OpenMP work item in the engine
/// GEMM: the unpacked activation tile stays cache-resident while each weight
/// row streams through it once per tile.
constexpr std::size_t kActTile = 16;

/// Decode-once operand panel: a tensor's n-bit codes plus their unpacked
/// fields. Codes feed the LUT and serial paths, unpacked fields the
/// quire/fma hot loops.
struct EncodedTensor {
  posit::PositSpec spec{8, 1};
  tensor::Shape shape;
  std::vector<std::uint32_t> codes;
  std::vector<posit::Unpacked> ops;

  std::size_t numel() const { return codes.size(); }
  bool empty() const { return codes.empty(); }
};

/// Encode (under kEncodeRound) and unpack a whole tensor in one pass.
EncodedTensor encode_unpack(const tensor::Tensor& t, const posit::PositSpec& spec);

/// Encode `count` floats into an existing panel, reusing its storage — the
/// session's steady-state activation path (no allocation once shapes
/// settle). Sets out.spec; the caller owns out.shape.
void encode_unpack_into(const float* src, std::size_t count, const posit::PositSpec& spec,
                        EncodedTensor& out);

/// Dense posit matrix-vector building block: y = x W^T + b, all posit.
/// x is [N, in] (N = 0 yields an empty [0, out] result), w is [out, in],
/// bias optional ([out] or empty). Encodes the weights per call; prefer the
/// EncodedTensor overload (or a PositSession, which owns the panels) when
/// the weights are reused.
tensor::Tensor posit_linear(const tensor::Tensor& x, const tensor::Tensor& w, const tensor::Tensor& bias,
                            const posit::PositSpec& spec, AccumMode mode);

/// Engine form: weights (and optional bias) already encoded+unpacked.
tensor::Tensor posit_linear(const tensor::Tensor& x, const EncodedTensor& w, const EncodedTensor& bias,
                            AccumMode mode);

/// Posit convolution: input [N,C,H,W] (N = 0 yields an empty result), weight
/// [O,I,KH,KW] (rectangular windows via geom.kernel_w), optional
/// per-output-channel bias ([O] or empty). Throws std::invalid_argument on
/// degenerate geometry (see tensor::Conv2dGeom::validate).
tensor::Tensor posit_conv2d(const tensor::Tensor& x, const tensor::Tensor& w, const tensor::Tensor& bias,
                            const tensor::Conv2dGeom& geom, const posit::PositSpec& spec, AccumMode mode);

/// Engine form: weights/bias already encoded+unpacked.
tensor::Tensor posit_conv2d(const tensor::Tensor& x, const EncodedTensor& w, const EncodedTensor& bias,
                            const tensor::Conv2dGeom& geom, AccumMode mode);

/// Compatibility wrapper: compile `net` into a PositSession with the
/// per-layer-class formats of `cfg` (SessionConfig::from_quant) and run one
/// batch. Bit-identical to the pre-session per-layer engine path; weights
/// re-encode on every call, so repeated inference should hold a compiled
/// session instead. Throws std::invalid_argument on unsupported children.
tensor::Tensor posit_forward(nn::Sequential& net, const tensor::Tensor& x, const QuantConfig& cfg,
                             AccumMode mode);

// ---------------------------------------------------------------------------
// Retained scalar reference path (the pre-engine implementation): coded
// operands, full decode per multiply-accumulate, weights re-encoded on every
// call, serial triple loop. This is the bit-exactness oracle for
// quant.posit_engine and the baseline bench_posit measures speedups against.
// ---------------------------------------------------------------------------

tensor::Tensor posit_linear_reference(const tensor::Tensor& x, const tensor::Tensor& w,
                                      const tensor::Tensor& bias, const posit::PositSpec& spec,
                                      AccumMode mode);

tensor::Tensor posit_conv2d_reference(const tensor::Tensor& x, const tensor::Tensor& w,
                                      const tensor::Tensor& bias, const tensor::Conv2dGeom& geom,
                                      const posit::PositSpec& spec, AccumMode mode);

}  // namespace pdnn::quant
