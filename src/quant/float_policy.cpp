#include "quant/float_policy.hpp"

#include <cmath>

namespace pdnn::quant {

using tensor::Tensor;

void FpPolicy::transform(Tensor& t, const FpSpec& spec) {
  int shift = 0;
  if (cfg_.scale_mode != ScaleMode::kNone) shift = scale_shift(t, cfg_.sigma);
  float* p = t.data();
  const std::size_t n = t.numel();
  if (shift == 0) {
    for (std::size_t i = 0; i < n; ++i) p[i] = fp_quantize(p[i], spec, cfg_.round_mode, &rng_);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const float scaled = std::ldexp(p[i], -shift);
      p[i] = std::ldexp(fp_quantize(scaled, spec, cfg_.round_mode, &rng_), shift);
    }
  }
}

Tensor FpPolicy::quantize_weight(const Tensor& w, const std::string& layer, nn::LayerClass cls) {
  (void)layer;
  (void)cls;
  Tensor q = w;
  transform(q, cfg_.forward);
  return q;
}

void FpPolicy::quantize_activation(Tensor& a, const std::string& layer, nn::LayerClass cls) {
  (void)layer;
  (void)cls;
  transform(a, cfg_.forward);
}

void FpPolicy::quantize_error(Tensor& e, const std::string& layer, nn::LayerClass cls) {
  (void)layer;
  (void)cls;
  transform(e, cfg_.backward);
}

void FpPolicy::quantize_gradient(Tensor& g, const std::string& layer, nn::LayerClass cls) {
  (void)layer;
  (void)cls;
  transform(g, cfg_.backward);
}

void FpPolicy::quantize_updated_weight(Tensor& w, const std::string& layer, nn::LayerClass cls) {
  (void)layer;
  (void)cls;
  if (!cfg_.quantize_weight_update) return;  // FP32 master weights
  transform(w, cfg_.update);
}

}  // namespace pdnn::quant
