#include "quant/posit_inference.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <typeinfo>

#include "nn/activations.hpp"
#include "posit/mul_lut.hpp"
#include "tensor/ops.hpp"

namespace pdnn::quant {

using posit::MulLut;
using posit::PositSpec;
using posit::Unpacked;
using tensor::Tensor;

namespace {

/// The decode-once GEMM at the heart of the engine. `a` holds `rows`
/// contiguous unpacked operand rows of length k (activation panel), `w` holds
/// `cols` rows of length k (cached weight panel); the rounded dot of every
/// pair — plus optional per-column bias — lands at
/// out[r * row_stride + o * col_stride].
///
/// Threading is over activation tiles with one quire per thread. Each output
/// is accumulated start-to-finish by a single thread in ascending-k order —
/// exactly the reference order — so results are bit-identical to the scalar
/// reference and to any other thread count, for every AccumMode. Serial-mode
/// multiplies dispatch onto the tabulated MulLut when the format allows
/// (n <= 8), the runtime-dispatch analogue of the GEMM's AVX2 micro-kernel.
void engine_gemm(const EncodedTensor& a, const EncodedTensor& w, const EncodedTensor& bias,
                 std::size_t rows, std::size_t k, std::size_t cols, AccumMode mode, float* out,
                 std::size_t row_stride, std::size_t col_stride) {
  const PositSpec spec = w.spec;
  // The LUT tabulates the *arithmetic* rounding of the serial path
  // (posit::mul's nearest-even default), which is independent of the
  // kEncodeRound float->posit encode constant.
  const MulLut* lut =
      mode == AccumMode::kSerial && posit::mul_lut_supported(spec, posit::RoundMode::kNearestEven)
          ? &posit::mul_lut(spec, posit::RoundMode::kNearestEven)
          : nullptr;
  const std::size_t tiles = (rows + kActTile - 1) / kActTile;
#pragma omp parallel
  {
    posit::Quire quire(spec);
#pragma omp for schedule(static)
    for (std::size_t tile = 0; tile < tiles; ++tile) {
      const std::size_t r0 = tile * kActTile;
      const std::size_t r1 = std::min(rows, r0 + kActTile);
      for (std::size_t o = 0; o < cols; ++o) {
        const Unpacked* wrow = w.ops.data() + o * k;
        const std::uint32_t* wcodes = w.codes.data() + o * k;
        for (std::size_t r = r0; r < r1; ++r) {
          const Unpacked* arow = a.ops.data() + r * k;
          std::uint32_t acc = 0;
          switch (mode) {
            case AccumMode::kQuire:
              quire.clear();
              quire.accumulate_dot(arow, wrow, k);
              acc = quire.to_posit();
              break;
            case AccumMode::kSerial:
              if (lut != nullptr) {
                const std::uint32_t* acodes = a.codes.data() + r * k;
                for (std::size_t i = 0; i < k; ++i) {
                  acc = posit::add(acc, lut->at(acodes[i], wcodes[i]), spec);
                }
              } else {
                for (std::size_t i = 0; i < k; ++i) {
                  acc = posit::add(acc, posit::mul(arow[i], wrow[i], spec), spec);
                }
              }
              break;
            case AccumMode::kFma:
              for (std::size_t i = 0; i < k; ++i) acc = posit::fma(arow[i], wrow[i], acc, spec);
              break;
          }
          if (!bias.empty()) acc = posit::add(acc, bias.codes[o], spec);
          out[r * row_stride + o * col_stride] = static_cast<float>(posit::to_double(acc, spec));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Retained scalar reference path (pre-engine implementation, verbatim
// semantics): coded operands, a full decode per multiply-accumulate, weights
// re-encoded from float on every call.
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> encode_tensor(const Tensor& t, const PositSpec& spec) {
  std::vector<std::uint32_t> codes(t.numel());
  for (std::size_t i = 0; i < t.numel(); ++i) {
    codes[i] = posit::from_double(t[i], spec, kEncodeRound);
  }
  return codes;
}

/// Dot product of two code vectors under the selected accumulation mode.
std::uint32_t dot(const std::uint32_t* a, const std::uint32_t* b, std::size_t count,
                  const PositSpec& spec, AccumMode mode, posit::Quire* quire) {
  switch (mode) {
    case AccumMode::kQuire: {
      quire->clear();
      for (std::size_t i = 0; i < count; ++i) quire->add_product(a[i], b[i]);
      return quire->to_posit();
    }
    case AccumMode::kSerial: {
      std::uint32_t acc = 0;
      for (std::size_t i = 0; i < count; ++i) {
        acc = posit::add(acc, posit::mul(a[i], b[i], spec), spec);
      }
      return acc;
    }
    case AccumMode::kFma: {
      std::uint32_t acc = 0;
      for (std::size_t i = 0; i < count; ++i) acc = posit::fma(a[i], b[i], acc, spec);
      return acc;
    }
  }
  return 0;
}

}  // namespace

EncodedTensor encode_unpack(const Tensor& t, const PositSpec& spec) {
  EncodedTensor e;
  e.spec = spec;
  e.shape = t.shape();
  e.codes.resize(t.numel());
  e.ops.resize(t.numel());
  const float* src = t.data();
  const std::size_t count = t.numel();
#pragma omp parallel for schedule(static) if (count > 4096)
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t code = posit::from_double(src[i], spec, kEncodeRound);
    e.codes[i] = code;
    e.ops[i] = posit::decode_unpacked(code, spec);
  }
  return e;
}

WeightCodeCache& WeightCodeCache::instance() {
  static WeightCodeCache cache;
  return cache;
}

std::shared_ptr<const EncodedTensor> WeightCodeCache::get(const nn::Param& p, const PositSpec& spec) {
  const std::pair<const void*, std::pair<int, int>> key{p.value.data(), {spec.n, spec.es}};
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end() && it->second.version == p.version) {
      ++hits_;
      return it->second.panel;
    }
  }
  // Encode outside the lock: panels can be large and encode_unpack is
  // threaded. A concurrent get() for the same param at worst encodes twice.
  auto panel = std::make_shared<const EncodedTensor>(encode_unpack(p.value, spec));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
    if (map_.size() >= kMaxEntries) map_.clear();  // drop unreachable stale panels
    map_[key] = Entry{p.version, panel};
  }
  return panel;
}

void WeightCodeCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

std::size_t WeightCodeCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::uint64_t WeightCodeCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t WeightCodeCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

Tensor posit_linear(const Tensor& x, const EncodedTensor& w, const EncodedTensor& bias,
                    AccumMode mode) {
  if (x.shape().rank() != 2 || w.shape.rank() != 2) {
    throw std::invalid_argument("posit_linear: rank mismatch");
  }
  const std::size_t n = x.shape()[0], in = x.shape()[1], out = w.shape[0];
  if (w.shape[1] != in) throw std::invalid_argument("posit_linear: shape mismatch");
  if (!bias.empty() && bias.numel() != out) {
    throw std::invalid_argument("posit_linear: bias shape mismatch");
  }
  if (!bias.empty() && !(bias.spec == w.spec)) {
    throw std::invalid_argument("posit_linear: bias/weight spec mismatch");
  }
  const EncodedTensor xe = encode_unpack(x, w.spec);
  Tensor y({n, out});
  engine_gemm(xe, w, bias, n, in, out, mode, y.data(), out, 1);
  return y;
}

Tensor posit_linear(const Tensor& x, const Tensor& w, const Tensor& bias, const PositSpec& spec,
                    AccumMode mode) {
  const EncodedTensor we = encode_unpack(w, spec);
  EncodedTensor be;
  be.spec = spec;
  if (bias.numel() > 0) be = encode_unpack(bias, spec);
  return posit_linear(x, we, be, mode);
}

Tensor posit_conv2d(const Tensor& x, const EncodedTensor& w, const EncodedTensor& bias,
                    const tensor::Conv2dGeom& geom, AccumMode mode) {
  const PositSpec spec = w.spec;
  const std::size_t batch = x.shape()[0];
  const std::size_t oh = geom.out_h(), ow = geom.out_w();
  const std::size_t pixels = oh * ow;
  const std::size_t patch = geom.patch();
  if (w.numel() != geom.out_c * patch) throw std::invalid_argument("posit_conv2d: weight mismatch");
  if (!bias.empty() && bias.numel() != geom.out_c) {
    throw std::invalid_argument("posit_conv2d: bias shape mismatch");
  }
  if (!bias.empty() && !(bias.spec == spec)) {
    throw std::invalid_argument("posit_conv2d: bias/weight spec mismatch");
  }

  Tensor out({batch, geom.out_c, oh, ow});
  Tensor cols({patch, pixels});
  EncodedTensor panel;
  panel.spec = spec;
  panel.shape = {pixels, patch};
  panel.codes.resize(pixels * patch);
  panel.ops.resize(pixels * patch);
  for (std::size_t nidx = 0; nidx < batch; ++nidx) {
    tensor::im2col(x.data() + nidx * geom.in_c * geom.in_h * geom.in_w, geom, cols.data());
    // Encode the unfolded image once, transposed so each output pixel's patch
    // is contiguous (the decode-once activation panel).
#pragma omp parallel for schedule(static) if (pixels > 8)
    for (std::size_t t = 0; t < pixels; ++t) {
      for (std::size_t p = 0; p < patch; ++p) {
        const std::uint32_t code = posit::from_double(cols[p * pixels + t], spec, kEncodeRound);
        panel.codes[t * patch + p] = code;
        panel.ops[t * patch + p] = posit::decode_unpacked(code, spec);
      }
    }
    // Output plane for this image is [out_c, pixels]: column stride `pixels`.
    engine_gemm(panel, w, bias, pixels, patch, geom.out_c, mode,
                out.data() + nidx * geom.out_c * pixels, 1, pixels);
  }
  return out;
}

Tensor posit_conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
                    const tensor::Conv2dGeom& geom, const PositSpec& spec, AccumMode mode) {
  const EncodedTensor we = encode_unpack(w, spec);
  EncodedTensor be;
  be.spec = spec;
  if (bias.numel() > 0) be = encode_unpack(bias, spec);
  return posit_conv2d(x, we, be, geom, mode);
}

Tensor posit_forward(nn::Sequential& net, const Tensor& x, const QuantConfig& cfg, AccumMode mode) {
  WeightCodeCache& cache = WeightCodeCache::instance();
  Tensor h = x;
  for (std::size_t i = 0; i < net.size(); ++i) {
    nn::Module& m = net.child(i);
    if (auto* fc = dynamic_cast<nn::Linear*>(&m)) {
      const PositSpec& spec = cfg.linear.forward;
      const auto wc = cache.get(fc->weight(), spec);
      const auto bc = cache.get(fc->bias(), spec);
      h = posit_linear(h, *wc, *bc, mode);
    } else if (auto* conv = dynamic_cast<nn::Conv2d*>(&m)) {
      const PositSpec& spec = cfg.conv.forward;
      const tensor::Conv2dGeom geom{conv->in_channels(), h.shape()[2],     h.shape()[3],
                                    conv->out_channels(), conv->kernel(),  conv->stride(),
                                    conv->pad(),          conv->kernel_w()};
      const auto wc = cache.get(conv->weight(), spec);
      if (conv->has_bias()) {
        const auto bc = cache.get(conv->bias(), spec);
        h = posit_conv2d(h, *wc, *bc, geom, mode);
      } else {
        EncodedTensor no_bias;
        no_bias.spec = spec;
        h = posit_conv2d(h, *wc, no_bias, geom, mode);
      }
    } else if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) {
      // Eval-mode BN as posit arithmetic: y = g * (x - mean) * rsqrt(var+eps) + b.
      const PositSpec& spec = cfg.bn.forward;
      const std::size_t n = h.shape()[0], c = h.shape()[1];
      const std::size_t plane = h.shape()[2] * h.shape()[3];
      // Channel slices are independent (same parallel shape as the FP32 BN).
#pragma omp parallel for schedule(static) if (c > 1 && n * plane > 4096)
      for (std::size_t ci = 0; ci < c; ++ci) {
        const double inv_std = 1.0 / std::sqrt(static_cast<double>(bn->running_var()[ci]) + bn->eps());
        const std::uint32_t g = posit::from_double(bn->gamma().value[ci], spec, kEncodeRound);
        const std::uint32_t scale =
            posit::mul(g, posit::from_double(inv_std, spec, kEncodeRound), spec);
        const std::uint32_t mean = posit::from_double(bn->running_mean()[ci], spec, kEncodeRound);
        const std::uint32_t beta = posit::from_double(bn->beta().value[ci], spec, kEncodeRound);
        for (std::size_t ni = 0; ni < n; ++ni) {
          float* row = h.data() + (ni * c + ci) * plane;
          for (std::size_t p = 0; p < plane; ++p) {
            const std::uint32_t xv = posit::from_double(row[p], spec, kEncodeRound);
            const std::uint32_t centered = posit::sub(xv, mean, spec);
            const std::uint32_t scaled = posit::fma(centered, scale, beta, spec);
            row[p] = static_cast<float>(posit::to_double(scaled, spec));
          }
        }
      }
    } else if (dynamic_cast<nn::ReLU*>(&m) != nullptr) {
      h.apply([](float v) { return v > 0.0f ? v : 0.0f; });  // exact on posit values
    } else if (dynamic_cast<nn::MaxPool2x2*>(&m) != nullptr) {
      std::vector<std::size_t> argmax;
      h = tensor::maxpool2x2_forward(h, argmax);  // comparisons only: exact
    } else if (dynamic_cast<nn::GlobalAvgPool*>(&m) != nullptr) {
      // Average = quire sum then posit division by the (exact) plane count.
      const PositSpec& spec = cfg.conv.forward;
      const std::size_t n = h.shape()[0], c = h.shape()[1];
      const std::size_t plane = h.shape()[2] * h.shape()[3];
      Tensor pooled({n, c});
      const std::uint32_t divisor = posit::from_double(static_cast<double>(plane), spec, kEncodeRound);
      // Each (image, channel) cell owns its reduction; per-thread quires.
#pragma omp parallel
      {
        posit::Quire quire(spec);
#pragma omp for schedule(static) collapse(2)
        for (std::size_t ni = 0; ni < n; ++ni) {
          for (std::size_t ci = 0; ci < c; ++ci) {
            quire.clear();
            const float* src = h.data() + (ni * c + ci) * plane;
            for (std::size_t p = 0; p < plane; ++p) {
              quire.add_posit(posit::from_double(src[p], spec, kEncodeRound));
            }
            const std::uint32_t sum = quire.to_posit();
            pooled.at(ni, ci) = static_cast<float>(posit::to_double(posit::div(sum, divisor, spec), spec));
          }
        }
      }
      h = pooled;
    } else {
      throw std::invalid_argument("posit_forward: unsupported layer '" + m.name() + "' (" +
                                  typeid(m).name() + ")");
    }
  }
  return h;
}

// ---------------------------------------------------------------------------
// Reference path
// ---------------------------------------------------------------------------

Tensor posit_linear_reference(const Tensor& x, const Tensor& w, const Tensor& bias,
                              const PositSpec& spec, AccumMode mode) {
  const std::size_t n = x.shape()[0], in = x.shape()[1], out = w.shape()[0];
  if (w.shape()[1] != in) throw std::invalid_argument("posit_linear: shape mismatch");
  const auto xc = encode_tensor(x, spec);
  const auto wc = encode_tensor(w, spec);
  const auto bc = bias.numel() > 0 ? encode_tensor(bias, spec) : std::vector<std::uint32_t>();
  posit::Quire quire(spec);

  Tensor y({n, out});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t o = 0; o < out; ++o) {
      std::uint32_t acc = dot(xc.data() + i * in, wc.data() + o * in, in, spec, mode, &quire);
      if (!bc.empty()) acc = posit::add(acc, bc[o], spec);
      y.at(i, o) = static_cast<float>(posit::to_double(acc, spec));
    }
  }
  return y;
}

Tensor posit_conv2d_reference(const Tensor& x, const Tensor& w, const Tensor& bias,
                              const tensor::Conv2dGeom& geom, const PositSpec& spec, AccumMode mode) {
  const std::size_t batch = x.shape()[0];
  const std::size_t oh = geom.out_h(), ow = geom.out_w();
  const std::size_t patch = geom.patch();
  const auto wc = encode_tensor(w, spec);
  const auto bc = bias.numel() > 0 ? encode_tensor(bias, spec) : std::vector<std::uint32_t>();
  posit::Quire quire(spec);

  Tensor out({batch, geom.out_c, oh, ow});
  Tensor cols({patch, oh * ow});
  for (std::size_t nidx = 0; nidx < batch; ++nidx) {
    tensor::im2col(x.data() + nidx * geom.in_c * geom.in_h * geom.in_w, geom, cols.data());
    // Encode the unfolded image, transposed so each output pixel's patch is
    // contiguous.
    std::vector<std::uint32_t> cc(patch * oh * ow);
    for (std::size_t p = 0; p < patch; ++p) {
      for (std::size_t t = 0; t < oh * ow; ++t) {
        cc[t * patch + p] = posit::from_double(cols[p * (oh * ow) + t], spec, kEncodeRound);
      }
    }
    for (std::size_t o = 0; o < geom.out_c; ++o) {
      for (std::size_t t = 0; t < oh * ow; ++t) {
        std::uint32_t acc = dot(cc.data() + t * patch, wc.data() + o * patch, patch, spec, mode, &quire);
        if (!bc.empty()) acc = posit::add(acc, bc[o], spec);
        out[((nidx * geom.out_c + o) * oh * ow) + t] = static_cast<float>(posit::to_double(acc, spec));
      }
    }
  }
  return out;
}

}  // namespace pdnn::quant
