#include "quant/posit_inference.hpp"

#include <cmath>
#include <stdexcept>
#include <typeinfo>

#include "nn/activations.hpp"
#include "tensor/ops.hpp"

namespace pdnn::quant {

using posit::PositSpec;
using tensor::Tensor;

namespace {

std::vector<std::uint32_t> encode_tensor(const Tensor& t, const PositSpec& spec) {
  std::vector<std::uint32_t> codes(t.numel());
  for (std::size_t i = 0; i < t.numel(); ++i) {
    codes[i] = posit::from_double(t[i], spec, posit::RoundMode::kNearestEven);
  }
  return codes;
}

/// Dot product of two code vectors under the selected accumulation mode.
std::uint32_t dot(const std::uint32_t* a, const std::uint32_t* b, std::size_t count,
                  const PositSpec& spec, AccumMode mode, posit::Quire* quire) {
  switch (mode) {
    case AccumMode::kQuire: {
      quire->clear();
      for (std::size_t i = 0; i < count; ++i) quire->add_product(a[i], b[i]);
      return quire->to_posit();
    }
    case AccumMode::kSerial: {
      std::uint32_t acc = 0;
      for (std::size_t i = 0; i < count; ++i) {
        acc = posit::add(acc, posit::mul(a[i], b[i], spec), spec);
      }
      return acc;
    }
    case AccumMode::kFma: {
      std::uint32_t acc = 0;
      for (std::size_t i = 0; i < count; ++i) acc = posit::fma(a[i], b[i], acc, spec);
      return acc;
    }
  }
  return 0;
}

}  // namespace

Tensor posit_linear(const Tensor& x, const Tensor& w, const Tensor& bias, const PositSpec& spec,
                    AccumMode mode) {
  const std::size_t n = x.shape()[0], in = x.shape()[1], out = w.shape()[0];
  if (w.shape()[1] != in) throw std::invalid_argument("posit_linear: shape mismatch");
  const auto xc = encode_tensor(x, spec);
  const auto wc = encode_tensor(w, spec);
  const auto bc = bias.numel() > 0 ? encode_tensor(bias, spec) : std::vector<std::uint32_t>();
  posit::Quire quire(spec);

  Tensor y({n, out});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t o = 0; o < out; ++o) {
      std::uint32_t acc = dot(xc.data() + i * in, wc.data() + o * in, in, spec, mode, &quire);
      if (!bc.empty()) acc = posit::add(acc, bc[o], spec);
      y.at(i, o) = static_cast<float>(posit::to_double(acc, spec));
    }
  }
  return y;
}

Tensor posit_conv2d(const Tensor& x, const Tensor& w, const tensor::Conv2dGeom& geom,
                    const PositSpec& spec, AccumMode mode) {
  const std::size_t batch = x.shape()[0];
  const std::size_t oh = geom.out_h(), ow = geom.out_w();
  const std::size_t patch = geom.patch();
  const auto wc = encode_tensor(w, spec);
  posit::Quire quire(spec);

  Tensor out({batch, geom.out_c, oh, ow});
  Tensor cols({patch, oh * ow});
  for (std::size_t nidx = 0; nidx < batch; ++nidx) {
    tensor::im2col(x.data() + nidx * geom.in_c * geom.in_h * geom.in_w, geom, cols.data());
    // Encode the unfolded image, transposed so each output pixel's patch is
    // contiguous.
    std::vector<std::uint32_t> cc(patch * oh * ow);
    for (std::size_t p = 0; p < patch; ++p) {
      for (std::size_t t = 0; t < oh * ow; ++t) {
        cc[t * patch + p] = posit::from_double(cols[p * (oh * ow) + t], spec);
      }
    }
    for (std::size_t o = 0; o < geom.out_c; ++o) {
      for (std::size_t t = 0; t < oh * ow; ++t) {
        const std::uint32_t acc = dot(cc.data() + t * patch, wc.data() + o * patch, patch, spec, mode, &quire);
        out[((nidx * geom.out_c + o) * oh * ow) + t] = static_cast<float>(posit::to_double(acc, spec));
      }
    }
  }
  return out;
}

Tensor posit_forward(nn::Sequential& net, const Tensor& x, const QuantConfig& cfg, AccumMode mode) {
  Tensor h = x;
  for (std::size_t i = 0; i < net.size(); ++i) {
    nn::Module& m = net.child(i);
    if (auto* fc = dynamic_cast<nn::Linear*>(&m)) {
      const PositSpec& spec = cfg.linear.forward;
      h = posit_linear(h, fc->weight().value, fc->bias().value, spec, mode);
    } else if (auto* conv = dynamic_cast<nn::Conv2d*>(&m)) {
      const PositSpec& spec = cfg.conv.forward;
      tensor::Conv2dGeom geom{conv->in_channels(), h.shape()[2], h.shape()[3], conv->out_channels(),
                              conv->kernel(), conv->stride(), conv->pad()};
      h = posit_conv2d(h, conv->weight().value, geom, spec, mode);
    } else if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) {
      // Eval-mode BN as posit arithmetic: y = g * (x - mean) * rsqrt(var+eps) + b.
      const PositSpec& spec = cfg.bn.forward;
      const std::size_t n = h.shape()[0], c = h.shape()[1];
      const std::size_t plane = h.shape()[2] * h.shape()[3];
      for (std::size_t ci = 0; ci < c; ++ci) {
        const double inv_std = 1.0 / std::sqrt(static_cast<double>(bn->running_var()[ci]) + bn->eps());
        const std::uint32_t g = posit::from_double(bn->gamma().value[ci], spec);
        const std::uint32_t scale = posit::mul(g, posit::from_double(inv_std, spec), spec);
        const std::uint32_t mean = posit::from_double(bn->running_mean()[ci], spec);
        const std::uint32_t beta = posit::from_double(bn->beta().value[ci], spec);
        for (std::size_t ni = 0; ni < n; ++ni) {
          float* row = h.data() + (ni * c + ci) * plane;
          for (std::size_t p = 0; p < plane; ++p) {
            const std::uint32_t xv = posit::from_double(row[p], spec);
            const std::uint32_t centered = posit::sub(xv, mean, spec);
            const std::uint32_t scaled = posit::fma(centered, scale, beta, spec);
            row[p] = static_cast<float>(posit::to_double(scaled, spec));
          }
        }
      }
    } else if (dynamic_cast<nn::ReLU*>(&m) != nullptr) {
      h.apply([](float v) { return v > 0.0f ? v : 0.0f; });  // exact on posit values
    } else if (dynamic_cast<nn::MaxPool2x2*>(&m) != nullptr) {
      std::vector<std::size_t> argmax;
      h = tensor::maxpool2x2_forward(h, argmax);  // comparisons only: exact
    } else if (dynamic_cast<nn::GlobalAvgPool*>(&m) != nullptr) {
      // Average = quire sum then posit division by the (exact) plane count.
      const PositSpec& spec = cfg.conv.forward;
      const std::size_t n = h.shape()[0], c = h.shape()[1];
      const std::size_t plane = h.shape()[2] * h.shape()[3];
      posit::Quire quire(spec);
      Tensor pooled({n, c});
      const std::uint32_t divisor = posit::from_double(static_cast<double>(plane), spec);
      for (std::size_t ni = 0; ni < n; ++ni) {
        for (std::size_t ci = 0; ci < c; ++ci) {
          quire.clear();
          const float* src = h.data() + (ni * c + ci) * plane;
          for (std::size_t p = 0; p < plane; ++p) quire.add_posit(posit::from_double(src[p], spec));
          const std::uint32_t sum = quire.to_posit();
          pooled.at(ni, ci) = static_cast<float>(posit::to_double(posit::div(sum, divisor, spec), spec));
        }
      }
      h = pooled;
    } else {
      throw std::invalid_argument("posit_forward: unsupported layer '" + m.name() + "' (" +
                                  typeid(m).name() + ")");
    }
  }
  return h;
}

}  // namespace pdnn::quant
