#include "quant/posit_inference.hpp"

#include <algorithm>
#include <stdexcept>

#include "quant/engine_gemm.hpp"
#include "quant/posit_session.hpp"
#include "tensor/ops.hpp"

namespace pdnn::quant {

using posit::PositSpec;
using posit::Unpacked;
using tensor::Tensor;

namespace detail {

namespace {

/// Per-thread block-decode scratch for the packed panels. The calling
/// thread's instance holds the whole activation panel for the duration of
/// one GEMM (codes plus, when the mode consumes them, unpacked lanes —
/// transient per-call working set, rebuilt from the packed panel each call);
/// each team thread's instance holds the single weight row it is currently
/// streaming. Grow-only and thread-local, so the steady-state cost is
/// bounded by the largest shapes this thread has seen — scratch, not model
/// footprint (engine_scratch_bytes() reports it).
struct DecodeScratch {
  std::vector<std::uint32_t> a_codes;
  std::vector<std::uint32_t> w_codes;
  std::vector<Unpacked> a_ops;
  std::vector<Unpacked> w_ops;
};
thread_local DecodeScratch tl_scratch;

/// Caller-thread scratch for the encode paths: codes are produced in
/// parallel here, then bit-packed serially (the 64-bit RMW pack windows of
/// adjacent ranges overlap, so packing itself must not be split across
/// threads).
thread_local std::vector<std::uint32_t> tl_encode_codes;

}  // namespace

std::size_t engine_scratch_bytes() {
  const DecodeScratch& s = tl_scratch;
  return (s.a_codes.capacity() + s.w_codes.capacity() + tl_encode_codes.capacity()) *
             sizeof(std::uint32_t) +
         (s.a_ops.capacity() + s.w_ops.capacity()) * sizeof(Unpacked);
}

EngineLuts resolve_luts(const PositSpec& spec, AccumMode mode) {
  // The tables tabulate the *arithmetic* rounding of the engine
  // (nearest-even, the default of posit::add/mul/fma), which is independent
  // of the kEncodeRound float->posit encode constant.
  constexpr posit::RoundMode kArith = posit::RoundMode::kNearestEven;
  EngineLuts luts;
  if (posit::add_lut_supported(spec, kArith)) luts.add = &posit::add_lut(spec, kArith);
  if (mode == AccumMode::kSerial && posit::mul_lut_supported(spec, kArith)) {
    luts.mul = &posit::mul_lut(spec, kArith);
  }
  if (mode == AccumMode::kFma && posit::fma_lut_supported(spec, kArith)) {
    luts.fma = &posit::fma_lut(spec, kArith);
  }
  return luts;
}

void engine_gemm(const EncodedTensor& a, const EncodedTensor& w, const EncodedTensor& bias,
                 std::size_t rows, std::size_t k, std::size_t cols, AccumMode mode, float* out,
                 std::size_t row_stride, std::size_t col_stride, const EngineLuts& luts,
                 posit::Quire* quire_pool) {
  const PositSpec spec = w.spec;
  const std::size_t tiles = (rows + kActTile - 1) / kActTile;
  // Which operand forms this (mode, luts) pairing actually reads: the LUT
  // serial/fma chains index raw codes, everything else consumes Unpacked
  // lanes. Codes are always unpacked from the packed panels (they are the
  // decode intermediate); the lane decode is skipped when nothing reads it.
  const bool lut_serial = mode == AccumMode::kSerial && luts.mul != nullptr && luts.add != nullptr;
  const bool lut_fma = mode == AccumMode::kFma && luts.fma != nullptr;
  const bool need_ops = !(lut_serial || lut_fma);
  // Phase split keeps every panel value's decode to exactly once per call:
  // the activation panel is block-decoded (kActTile-row slices, in parallel)
  // into the calling thread's scratch, then the GEMM parallelizes over
  // output columns so each packed weight row is unpacked once and streamed
  // against every activation row. Sized buffers are grabbed before the team
  // starts — the region below only reads them through raw pointers.
  DecodeScratch& host = tl_scratch;
  host.a_codes.resize(rows * k);
  if (need_ops) host.a_ops.resize(rows * k);
  std::uint32_t* const a_codes_buf = host.a_codes.data();
  Unpacked* const a_ops_buf = need_ops ? host.a_ops.data() : nullptr;
#pragma omp parallel
  {
#ifdef _OPENMP
    const int tid = omp_get_thread_num();
#else
    const int tid = 0;
#endif
    posit::Quire* quire = mode == AccumMode::kQuire ? &quire_pool[tid] : nullptr;
#pragma omp for schedule(static)
    for (std::size_t tile = 0; tile < tiles; ++tile) {
      const std::size_t r0 = tile * kActTile;
      const std::size_t r1 = std::min(rows, r0 + kActTile);
      posit::unpack_codes(a.packed.data(), r0 * k, (r1 - r0) * k, a.spec, a_codes_buf + r0 * k);
      if (need_ops) {
        posit::decode_unpacked(a_codes_buf + r0 * k, (r1 - r0) * k, a.spec, a_ops_buf + r0 * k);
      }
    }  // implicit barrier: the whole panel is decoded before any dot reads it
    DecodeScratch& scratch = tl_scratch;
    scratch.w_codes.resize(k);
    if (need_ops) scratch.w_ops.resize(k);
#pragma omp for schedule(static)
    for (std::size_t o = 0; o < cols; ++o) {
      posit::unpack_codes(w.packed.data(), o * k, k, spec, scratch.w_codes.data());
      const std::uint32_t* wcodes = scratch.w_codes.data();
      const Unpacked* wrow = scratch.w_ops.data();
      if (need_ops) posit::decode_unpacked(wcodes, k, spec, scratch.w_ops.data());
      const std::uint32_t bcode =
          !bias.empty() ? posit::unpack_one(bias.packed.data(), o, bias.spec) : 0u;
      for (std::size_t r = 0; r < rows; ++r) {
        const Unpacked* arow = a_ops_buf + r * k;
        const std::uint32_t* acodes = a_codes_buf + r * k;
        std::uint32_t acc = 0;
        switch (mode) {
          case AccumMode::kQuire:
            quire->clear();
            quire->accumulate_dot(arow, wrow, k);
            acc = quire->to_posit();
            break;
          case AccumMode::kSerial:
            if (lut_serial) {
              // Two table reads per term: the multiply and the accumulator
              // add both come out of L2-resident LUTs.
              for (std::size_t i = 0; i < k; ++i) {
                acc = luts.add->at(acc, luts.mul->at(acodes[i], wcodes[i]));
              }
            } else {
              for (std::size_t i = 0; i < k; ++i) {
                acc = posit::add(acc, posit::mul(arow[i], wrow[i], spec), spec);
              }
            }
            break;
          case AccumMode::kFma:
            if (lut_fma) {
              for (std::size_t i = 0; i < k; ++i) acc = luts.fma->at(acodes[i], wcodes[i], acc);
            } else {
              for (std::size_t i = 0; i < k; ++i) acc = posit::fma(arow[i], wrow[i], acc, spec);
            }
            break;
        }
        if (!bias.empty()) {
          acc = luts.add != nullptr ? luts.add->at(acc, bcode) : posit::add(acc, bcode, spec);
        }
        out[r * row_stride + o * col_stride] = static_cast<float>(posit::to_double(acc, spec));
      }
    }
  }
}

void encode_conv_panel(const float* cols, std::size_t patch, std::size_t pixels,
                       const PositSpec& spec, EncodedTensor& panel) {
  panel.spec = spec;
  panel.shape = {pixels, patch};
  panel.count = pixels * patch;
  // Encode transposed (each output pixel's patch contiguous) in parallel
  // into the code scratch, then bit-pack serially: pack_codes RMWs 64-bit
  // windows that straddle neighbor ranges, so the pack must not be split.
  std::vector<std::uint32_t>& codes = tl_encode_codes;
  codes.resize(panel.count);
#pragma omp parallel for schedule(static) if (pixels > 8)
  for (std::size_t t = 0; t < pixels; ++t) {
    for (std::size_t p = 0; p < patch; ++p) {
      codes[t * patch + p] = posit::from_double(cols[p * pixels + t], spec, kEncodeRound);
    }
  }
  panel.packed.assign(posit::packed_capacity(panel.count, spec), 0u);
  posit::pack_codes(codes.data(), 0, panel.count, spec, panel.packed.data());
}

}  // namespace detail

namespace {

/// Transient per-thread quire pool for the free-function entry points (the
/// session plans its arenas once at compile instead).
std::vector<posit::Quire> make_quire_pool(const PositSpec& spec, AccumMode mode) {
  std::vector<posit::Quire> pool;
  if (mode == AccumMode::kQuire) {
    const int threads = detail::engine_threads();
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(spec);
  }
  return pool;
}

// ---------------------------------------------------------------------------
// Retained scalar reference path (pre-engine implementation, verbatim
// semantics): coded operands, a full decode per multiply-accumulate, weights
// re-encoded from float on every call.
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> encode_tensor(const Tensor& t, const PositSpec& spec) {
  std::vector<std::uint32_t> codes(t.numel());
  for (std::size_t i = 0; i < t.numel(); ++i) {
    codes[i] = posit::from_double(t[i], spec, kEncodeRound);
  }
  return codes;
}

/// Dot product of two code vectors under the selected accumulation mode.
std::uint32_t dot(const std::uint32_t* a, const std::uint32_t* b, std::size_t count,
                  const PositSpec& spec, AccumMode mode, posit::Quire* quire) {
  switch (mode) {
    case AccumMode::kQuire: {
      quire->clear();
      for (std::size_t i = 0; i < count; ++i) quire->add_product(a[i], b[i]);
      return quire->to_posit();
    }
    case AccumMode::kSerial: {
      std::uint32_t acc = 0;
      for (std::size_t i = 0; i < count; ++i) {
        acc = posit::add(acc, posit::mul(a[i], b[i], spec), spec);
      }
      return acc;
    }
    case AccumMode::kFma: {
      std::uint32_t acc = 0;
      for (std::size_t i = 0; i < count; ++i) acc = posit::fma(a[i], b[i], acc, spec);
      return acc;
    }
  }
  return 0;
}

}  // namespace

EncodedTensor encode_pack(const Tensor& t, const PositSpec& spec) {
  EncodedTensor e;
  e.shape = t.shape();
  encode_pack_into(t.data(), t.numel(), spec, e);
  return e;
}

void encode_pack_into(const float* src, std::size_t count, const PositSpec& spec,
                      EncodedTensor& out) {
  out.spec = spec;
  out.count = count;
  // Parallel encode into the code scratch, serial bit-pack (see
  // encode_conv_panel for why the pack cannot be split across threads).
  std::vector<std::uint32_t>& codes = detail::tl_encode_codes;
  codes.resize(count);
#pragma omp parallel for schedule(static) if (count > 4096)
  for (std::size_t i = 0; i < count; ++i) {
    codes[i] = posit::from_double(src[i], spec, kEncodeRound);
  }
  out.packed.assign(posit::packed_capacity(count, spec), 0u);
  posit::pack_codes(codes.data(), 0, count, spec, out.packed.data());
}

Tensor posit_linear(const Tensor& x, const EncodedTensor& w, const EncodedTensor& bias,
                    AccumMode mode) {
  if (x.shape().rank() != 2 || w.shape.rank() != 2) {
    throw std::invalid_argument("posit_linear: rank mismatch");
  }
  const std::size_t n = x.shape()[0], in = x.shape()[1], out = w.shape[0];
  if (w.shape[1] != in) throw std::invalid_argument("posit_linear: shape mismatch");
  if (!bias.empty() && bias.numel() != out) {
    throw std::invalid_argument("posit_linear: bias shape mismatch");
  }
  if (!bias.empty() && !(bias.spec == w.spec)) {
    throw std::invalid_argument("posit_linear: bias/weight spec mismatch");
  }
  const EncodedTensor xe = encode_pack(x, w.spec);
  const detail::EngineLuts luts = detail::resolve_luts(w.spec, mode);
  std::vector<posit::Quire> pool = make_quire_pool(w.spec, mode);
  Tensor y({n, out});
  detail::engine_gemm(xe, w, bias, n, in, out, mode, y.data(), out, 1, luts, pool.data());
  return y;
}

Tensor posit_linear(const Tensor& x, const Tensor& w, const Tensor& bias, const PositSpec& spec,
                    AccumMode mode) {
  const EncodedTensor we = encode_pack(w, spec);
  EncodedTensor be;
  be.spec = spec;
  if (bias.numel() > 0) be = encode_pack(bias, spec);
  return posit_linear(x, we, be, mode);
}

Tensor posit_conv2d(const Tensor& x, const EncodedTensor& w, const EncodedTensor& bias,
                    const tensor::Conv2dGeom& geom, AccumMode mode) {
  geom.validate();
  const PositSpec spec = w.spec;
  const std::size_t batch = x.shape()[0];
  const std::size_t oh = geom.out_h(), ow = geom.out_w();
  const std::size_t pixels = oh * ow;
  const std::size_t patch = geom.patch();
  if (w.numel() != geom.out_c * patch) throw std::invalid_argument("posit_conv2d: weight mismatch");
  if (!bias.empty() && bias.numel() != geom.out_c) {
    throw std::invalid_argument("posit_conv2d: bias shape mismatch");
  }
  if (!bias.empty() && !(bias.spec == spec)) {
    throw std::invalid_argument("posit_conv2d: bias/weight spec mismatch");
  }

  const detail::EngineLuts luts = detail::resolve_luts(spec, mode);
  std::vector<posit::Quire> pool = make_quire_pool(spec, mode);
  Tensor out({batch, geom.out_c, oh, ow});
  Tensor cols({patch, pixels});
  EncodedTensor panel;
  for (std::size_t nidx = 0; nidx < batch; ++nidx) {
    tensor::im2col(x.data() + nidx * geom.in_c * geom.in_h * geom.in_w, geom, cols.data());
    // Encode the unfolded image once, transposed so each output pixel's patch
    // is contiguous (the decode-once activation panel).
    detail::encode_conv_panel(cols.data(), patch, pixels, spec, panel);
    // Output plane for this image is [out_c, pixels]: column stride `pixels`.
    detail::engine_gemm(panel, w, bias, pixels, patch, geom.out_c, mode,
                        out.data() + nidx * geom.out_c * pixels, 1, pixels, luts, pool.data());
  }
  return out;
}

Tensor posit_conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
                    const tensor::Conv2dGeom& geom, const PositSpec& spec, AccumMode mode) {
  const EncodedTensor we = encode_pack(w, spec);
  EncodedTensor be;
  be.spec = spec;
  if (bias.numel() > 0) be = encode_pack(bias, spec);
  return posit_conv2d(x, we, be, geom, mode);
}

Tensor posit_forward(nn::Sequential& net, const Tensor& x, const QuantConfig& cfg, AccumMode mode) {
  PositSession session = PositSession::compile(net, SessionConfig::from_quant(cfg, mode));
  return session.run(x);
}

// ---------------------------------------------------------------------------
// Reference path
// ---------------------------------------------------------------------------

Tensor posit_linear_reference(const Tensor& x, const Tensor& w, const Tensor& bias,
                              const PositSpec& spec, AccumMode mode) {
  const std::size_t n = x.shape()[0], in = x.shape()[1], out = w.shape()[0];
  if (w.shape()[1] != in) throw std::invalid_argument("posit_linear: shape mismatch");
  const auto xc = encode_tensor(x, spec);
  const auto wc = encode_tensor(w, spec);
  const auto bc = bias.numel() > 0 ? encode_tensor(bias, spec) : std::vector<std::uint32_t>();
  posit::Quire quire(spec);

  Tensor y({n, out});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t o = 0; o < out; ++o) {
      std::uint32_t acc = dot(xc.data() + i * in, wc.data() + o * in, in, spec, mode, &quire);
      if (!bc.empty()) acc = posit::add(acc, bc[o], spec);
      y.at(i, o) = static_cast<float>(posit::to_double(acc, spec));
    }
  }
  return y;
}

Tensor posit_conv2d_reference(const Tensor& x, const Tensor& w, const Tensor& bias,
                              const tensor::Conv2dGeom& geom, const PositSpec& spec, AccumMode mode) {
  geom.validate();
  const std::size_t batch = x.shape()[0];
  const std::size_t oh = geom.out_h(), ow = geom.out_w();
  const std::size_t patch = geom.patch();
  const auto wc = encode_tensor(w, spec);
  const auto bc = bias.numel() > 0 ? encode_tensor(bias, spec) : std::vector<std::uint32_t>();
  posit::Quire quire(spec);

  Tensor out({batch, geom.out_c, oh, ow});
  Tensor cols({patch, oh * ow});
  for (std::size_t nidx = 0; nidx < batch; ++nidx) {
    tensor::im2col(x.data() + nidx * geom.in_c * geom.in_h * geom.in_w, geom, cols.data());
    // Encode the unfolded image, transposed so each output pixel's patch is
    // contiguous.
    std::vector<std::uint32_t> cc(patch * oh * ow);
    for (std::size_t p = 0; p < patch; ++p) {
      for (std::size_t t = 0; t < oh * ow; ++t) {
        cc[t * patch + p] = posit::from_double(cols[p * (oh * ow) + t], spec, kEncodeRound);
      }
    }
    for (std::size_t o = 0; o < geom.out_c; ++o) {
      for (std::size_t t = 0; t < oh * ow; ++t) {
        std::uint32_t acc = dot(cc.data() + t * patch, wc.data() + o * patch, patch, spec, mode, &quire);
        if (!bc.empty()) acc = posit::add(acc, bc[o], spec);
        out[((nidx * geom.out_c + o) * oh * ow) + t] = static_cast<float>(posit::to_double(acc, spec));
      }
    }
  }
  return out;
}

}  // namespace pdnn::quant
