#include "quant/posit_session.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "exec/backend.hpp"
#include "exec/graph_builder.hpp"
#include "exec/kernels.hpp"
#include "quant/engine_gemm.hpp"
#include "tensor/arena.hpp"
#include "tensor/ops.hpp"

namespace pdnn::quant {

using posit::PositSpec;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// SessionConfig
// ---------------------------------------------------------------------------

SessionConfig SessionConfig::from_quant(const QuantConfig& cfg, AccumMode mode) {
  SessionConfig c;
  c.spec = cfg.conv.forward;
  c.mode = mode;
  c.by_class[nn::LayerClass::kConv] = {cfg.conv.forward, {}};
  c.by_class[nn::LayerClass::kBn] = {cfg.bn.forward, {}};
  c.by_class[nn::LayerClass::kLinear] = {cfg.linear.forward, {}};
  return c;
}

PositSpec SessionConfig::spec_for(const std::string& name, nn::LayerClass cls) const {
  const auto by_n = by_name.find(name);
  if (by_n != by_name.end() && by_n->second.spec.has_value()) return *by_n->second.spec;
  const auto by_c = by_class.find(cls);
  if (by_c != by_class.end() && by_c->second.spec.has_value()) return *by_c->second.spec;
  return spec;
}

AccumMode SessionConfig::mode_for(const std::string& name, nn::LayerClass cls) const {
  const auto by_n = by_name.find(name);
  if (by_n != by_name.end() && by_n->second.mode.has_value()) return *by_n->second.mode;
  const auto by_c = by_class.find(cls);
  if (by_c != by_class.end() && by_c->second.mode.has_value()) return *by_c->second.mode;
  return mode;
}

// ---------------------------------------------------------------------------
// Per-step backend state over the shared ExecPlan
// ---------------------------------------------------------------------------

namespace {

/// A parameter tensor bound to a session-owned encoded panel. `version`
/// mirrors Param::version at encode time; a mismatch at run() re-encodes.
struct Binding {
  nn::Param* param = nullptr;
  std::uint64_t version = 0;
  EncodedTensor panel;
};

/// The posit-side state attached to one plan step: resolved format and
/// accumulation mode, LUT kernels, quire-arena index, encoded weight panels,
/// BN constants, and the per-step scratch the hot loop reuses.
struct StepState {
  PositSpec spec{16, 1};
  AccumMode mode = AccumMode::kQuire;
  detail::EngineLuts luts;
  int arena = -1;  ///< per-thread quire pool index (kQuire GEMMs, GAP, joins)

  Binding weight, bias;  // bias.param == nullptr -> no bias (panel stays empty)

  // bn: constants derived from (gamma, beta, running stats) at encode time
  std::uint64_t gamma_version = 0, beta_version = 0, stats_version = 0;
  std::vector<std::uint32_t> bn_scale, bn_mean, bn_shift;

  // steady-state scratch (grow-only)
  Tensor cols;        // conv im2col columns
  EncodedTensor act;  // encoded activation panel
};

}  // namespace

struct PositSession::Impl final : exec::Backend {
  SessionConfig cfg;
  nn::Module* net = nullptr;  // not owned; clone() recompiles from it
  exec::ExecPlan eplan;
  std::vector<StepState> state;  // parallel to eplan.steps
  tensor::TensorArena slots;

  struct Arena {
    PositSpec spec{16, 1};
    std::vector<posit::Quire> quires;  // one per OpenMP thread
  };
  std::vector<Arena> arenas;

  std::uint64_t encodes = 0;
  std::size_t bound = 0;
  bool force_refresh = false;

  const exec::ExecPlan& plan() const override { return eplan; }
  std::size_t arena_bytes() const override { return slots.bytes(); }
  std::unique_ptr<exec::Backend> clone() const override {
    return PositSession::compile_backend(*net, cfg);
  }

  int arena_for(const PositSpec& spec) {
    for (std::size_t i = 0; i < arenas.size(); ++i) {
      if (arenas[i].spec == spec) return static_cast<int>(i);
    }
    arenas.push_back({spec, {}});
    return static_cast<int>(arenas.size() - 1);
  }

  void ensure_arena_threads() {
    const std::size_t threads = static_cast<std::size_t>(detail::engine_threads());
    for (Arena& a : arenas) {
      while (a.quires.size() < threads) a.quires.emplace_back(a.spec);
    }
  }

  posit::Quire* pool(const StepState& s) {
    return s.arena >= 0 ? arenas[static_cast<std::size_t>(s.arena)].quires.data() : nullptr;
  }

  void bind(Binding& b, nn::Param& p, const PositSpec& spec) {
    b.param = &p;
    b.version = p.version;
    b.panel = encode_pack(p.value, spec);
    ++encodes;
    ++bound;
  }

  /// (Re)derive the per-channel BN constants exactly as the per-layer engine
  /// does: scale = round(gamma) * round(1/sqrt(var+eps)), rounded once.
  void encode_bn(const exec::Step& step, StepState& s) {
    nn::BatchNorm2d& bn = *step.bn;
    const std::size_t c = bn.running_mean().size();
    s.bn_scale.resize(c);
    s.bn_mean.resize(c);
    s.bn_shift.resize(c);
    for (std::size_t ci = 0; ci < c; ++ci) {
      const double inv_std = 1.0 / std::sqrt(static_cast<double>(bn.running_var()[ci]) + bn.eps());
      const std::uint32_t g = posit::from_double(bn.gamma().value[ci], s.spec, kEncodeRound);
      s.bn_scale[ci] = posit::mul(g, posit::from_double(inv_std, s.spec, kEncodeRound), s.spec);
      s.bn_mean[ci] = posit::from_double(bn.running_mean()[ci], s.spec, kEncodeRound);
      s.bn_shift[ci] = posit::from_double(bn.beta().value[ci], s.spec, kEncodeRound);
    }
    s.gamma_version = bn.gamma().version;
    s.beta_version = bn.beta().version;
    s.stats_version = bn.stats_version();
    ++encodes;
  }

  void compile_step(const exec::Step& step, StepState& s);
  void refresh(bool force);

  const Tensor& slot_tensor(int slot, const Tensor& x) const {
    if (slot == eplan.input_slot) return x;
    return slots.at(
        static_cast<std::size_t>(eplan.slots[static_cast<std::size_t>(slot)].buffer));
  }

  const Tensor& run_impl(const Tensor& x) override;

  void exec_linear(const exec::Step& step, StepState& s, const Tensor& in, Tensor& out);
  void exec_conv(const exec::Step& step, StepState& s, const Tensor& in, Tensor& out);
  void exec_bn(const exec::Step& step, StepState& s, const Tensor& in, Tensor& out);
  void exec_gap(StepState& s, const Tensor& in, Tensor& out);
  void exec_join(StepState& s, const Tensor& main, const Tensor& skip, Tensor& out);
};

// ---------------------------------------------------------------------------
// compile
// ---------------------------------------------------------------------------

void PositSession::Impl::compile_step(const exec::Step& step, StepState& s) {
  switch (step.op) {
    case exec::OpKind::kLinear:
      s.spec = cfg.spec_for(step.name, step.cls);
      s.mode = cfg.mode_for(step.name, step.cls);
      s.luts = detail::resolve_luts(s.spec, s.mode);
      if (s.mode == AccumMode::kQuire) s.arena = arena_for(s.spec);
      bind(s.weight, step.linear->weight(), s.spec);
      bind(s.bias, step.linear->bias(), s.spec);
      break;
    case exec::OpKind::kConv2d:
      if (step.folded_bn != nullptr) {
        // The session declines fold_bn by construction (compile() forces it
        // off); this guards against a hand-built plan ever reaching us.
        throw std::invalid_argument("PositSession: step '" + step.name +
                                    "' carries a folded BatchNorm; the posit backend declines "
                                    "fold_bn (pre-scaled weights break its encoded-BN numerics)");
      }
      s.spec = cfg.spec_for(step.name, step.cls);
      s.mode = cfg.mode_for(step.name, step.cls);
      s.luts = detail::resolve_luts(s.spec, s.mode);
      if (s.mode == AccumMode::kQuire) s.arena = arena_for(s.spec);
      bind(s.weight, step.conv->weight(), s.spec);
      if (step.conv->has_bias()) {
        bind(s.bias, step.conv->bias(), s.spec);
      } else {
        s.bias.panel.spec = s.spec;
      }
      break;
    case exec::OpKind::kBatchNorm:
      s.spec = cfg.spec_for(step.name, step.cls);
      s.mode = cfg.mode_for(step.name, step.cls);
      // The per-element transform is one fma: dispatch its table when the BN
      // format is small enough, whatever the accumulation mode.
      if (posit::fma_lut_supported(s.spec, posit::RoundMode::kNearestEven)) {
        s.luts.fma = &posit::fma_lut(s.spec, posit::RoundMode::kNearestEven);
      }
      encode_bn(step, s);
      break;
    case exec::OpKind::kGlobalAvgPool:
      s.spec = cfg.spec_for(step.name, step.cls);  // pooling: conv family (see lowering)
      s.arena = arena_for(s.spec);  // the plane sum always runs through a quire
      break;
    case exec::OpKind::kResidualJoin:
      // step.cls is the conv family (the post-add activation is a conv-class
      // tensor in training too; see the lowering).
      s.spec = cfg.spec_for(step.name, step.cls);
      s.mode = cfg.mode_for(step.name, step.cls);
      s.luts = detail::resolve_luts(s.spec, s.mode);
      if (s.mode == AccumMode::kQuire) s.arena = arena_for(s.spec);
      break;
    case exec::OpKind::kRelu:
    case exec::OpKind::kMaxPool2x2:
      break;
  }
}

// ---------------------------------------------------------------------------
// refresh (Param::version-driven re-encode)
// ---------------------------------------------------------------------------

void PositSession::Impl::refresh(bool force) {
  for (std::size_t i = 0; i < eplan.steps.size(); ++i) {
    const exec::Step& step = eplan.steps[i];
    StepState& s = state[i];
    if (s.weight.param != nullptr && (force || s.weight.param->version != s.weight.version)) {
      s.weight.version = s.weight.param->version;
      s.weight.panel = encode_pack(s.weight.param->value, s.spec);
      ++encodes;
    }
    if (s.bias.param != nullptr && (force || s.bias.param->version != s.bias.version)) {
      s.bias.version = s.bias.param->version;
      s.bias.panel = encode_pack(s.bias.param->value, s.spec);
      ++encodes;
    }
    if (step.bn != nullptr && (force || step.bn->gamma().version != s.gamma_version ||
                               step.bn->beta().version != s.beta_version ||
                               step.bn->stats_version() != s.stats_version)) {
      encode_bn(step, s);
    }
  }
}

// ---------------------------------------------------------------------------
// run
// ---------------------------------------------------------------------------

const Tensor& PositSession::Impl::run_impl(const Tensor& x) {
  ensure_arena_threads();  // the caller may have grown the OpenMP team
  refresh(force_refresh);
  force_refresh = false;
  for (std::size_t i = 0; i < eplan.steps.size(); ++i) {
    const exec::Step& step = eplan.steps[i];
    StepState& s = state[i];
    const Tensor& in = slot_tensor(step.in0, x);
    const Tensor* skip = step.in1 >= 0 ? &slot_tensor(step.in1, x) : nullptr;
    const tensor::Shape skip_shape = skip != nullptr ? skip->shape() : tensor::Shape{};
    const tensor::Shape out_shape = exec::infer_out_shape(
        step, in.shape(), skip != nullptr ? &skip_shape : nullptr, "PositSession");
    Tensor& out = slots.bind(
        static_cast<std::size_t>(eplan.slots[static_cast<std::size_t>(step.out)].buffer),
        out_shape);
    switch (step.op) {
      case exec::OpKind::kLinear: exec_linear(step, s, in, out); break;
      case exec::OpKind::kConv2d: exec_conv(step, s, in, out); break;
      case exec::OpKind::kBatchNorm: exec_bn(step, s, in, out); break;
      case exec::OpKind::kRelu: exec::relu_kernel(in, out); break;
      case exec::OpKind::kMaxPool2x2: exec::maxpool2x2_kernel(in, out); break;
      case exec::OpKind::kGlobalAvgPool: exec_gap(s, in, out); break;
      case exec::OpKind::kResidualJoin: exec_join(s, in, *skip, out); break;
    }
    if (step.epilogue.relu) {
      // The fusion pass swallowed a trailing nn::ReLU. The session's GEMM and
      // BN kernels store decoded floats, so clamping them here is bit-for-bit
      // what the separate kRelu step over the same buffer produced.
      exec::relu_kernel(out, out);
    }
  }
  return slots.at(static_cast<std::size_t>(
      eplan.slots[static_cast<std::size_t>(eplan.output_slot)].buffer));
}

void PositSession::Impl::exec_linear(const exec::Step& step, StepState& s, const Tensor& in,
                                     Tensor& out) {
  const std::size_t n = in.shape()[0];
  s.act.shape = {n, step.in_c};
  encode_pack_into(in.data(), in.numel(), s.spec, s.act);
  detail::engine_gemm(s.act, s.weight.panel, s.bias.panel, n, step.in_c, step.out_c, s.mode,
                      out.data(), step.out_c, 1, s.luts, pool(s));
}

void PositSession::Impl::exec_conv(const exec::Step& step, StepState& s, const Tensor& in,
                                   Tensor& out) {
  const tensor::Conv2dGeom geom{step.in_c,   in.shape()[2], in.shape()[3], step.out_c,
                                step.kernel, step.stride,   step.pad,      step.kernel_w};
  const std::size_t batch = in.shape()[0];
  const std::size_t pixels = geom.out_h() * geom.out_w();
  const std::size_t patch = geom.patch();
  if (!step.elide_im2col) s.cols.resize({patch, pixels});
  for (std::size_t nidx = 0; nidx < batch; ++nidx) {
    const float* slice = in.data() + nidx * step.in_c * geom.in_h * geom.in_w;
    const float* bmat;
    if (step.elide_im2col) {
      // 1x1/s1/p0: the input slice [C, H*W] IS the patch matrix — encode it
      // straight into the activation panel, no gather.
      bmat = slice;
    } else {
      tensor::im2col(slice, geom, s.cols.data());
      bmat = s.cols.data();
    }
    detail::encode_conv_panel(bmat, patch, pixels, s.spec, s.act);
    detail::engine_gemm(s.act, s.weight.panel, s.bias.panel, pixels, patch, step.out_c, s.mode,
                        out.data() + nidx * step.out_c * pixels, 1, pixels, s.luts, pool(s));
  }
}

void PositSession::Impl::exec_bn(const exec::Step& step, StepState& s, const Tensor& in,
                                 Tensor& out) {
  // Eval-mode BN as posit arithmetic: y = scale * (x - mean) + shift with
  // scale/mean/shift pre-encoded per channel.
  (void)step;
  const std::size_t n = in.shape()[0], c = in.shape()[1];
  const std::size_t plane = in.shape()[2] * in.shape()[3];
  // Channel slices are independent (same parallel shape as the FP32 BN);
  // out may alias in (in-place step): reads and writes share the index.
#pragma omp parallel for schedule(static) if (c > 1 && n * plane > 4096)
  for (std::size_t ci = 0; ci < c; ++ci) {
    const std::uint32_t scale = s.bn_scale[ci];
    const std::uint32_t mean = s.bn_mean[ci];
    const std::uint32_t shift = s.bn_shift[ci];
    for (std::size_t ni = 0; ni < n; ++ni) {
      const float* src = in.data() + (ni * c + ci) * plane;
      float* dst = out.data() + (ni * c + ci) * plane;
      for (std::size_t p = 0; p < plane; ++p) {
        const std::uint32_t xv = posit::from_double(src[p], s.spec, kEncodeRound);
        const std::uint32_t centered = posit::sub(xv, mean, s.spec);
        const std::uint32_t scaled = s.luts.fma != nullptr
                                         ? s.luts.fma->at(centered, scale, shift)
                                         : posit::fma(centered, scale, shift, s.spec);
        dst[p] = static_cast<float>(posit::to_double(scaled, s.spec));
      }
    }
  }
}

void PositSession::Impl::exec_gap(StepState& s, const Tensor& in, Tensor& out) {
  // Average = quire sum then posit division by the (exact) plane count.
  const std::size_t n = in.shape()[0], c = in.shape()[1];
  const std::size_t plane = in.shape()[2] * in.shape()[3];
  const std::uint32_t divisor =
      posit::from_double(static_cast<double>(plane), s.spec, kEncodeRound);
  posit::Quire* quires = pool(s);
  // Each (image, channel) cell owns its reduction; per-thread quires.
#pragma omp parallel
  {
#ifdef _OPENMP
    posit::Quire& quire = quires[omp_get_thread_num()];
#else
    posit::Quire& quire = quires[0];
#endif
#pragma omp for schedule(static) collapse(2)
    for (std::size_t ni = 0; ni < n; ++ni) {
      for (std::size_t ci = 0; ci < c; ++ci) {
        quire.clear();
        const float* src = in.data() + (ni * c + ci) * plane;
        for (std::size_t p = 0; p < plane; ++p) {
          quire.add_posit(posit::from_double(src[p], s.spec, kEncodeRound));
        }
        const std::uint32_t sum = quire.to_posit();
        out.at(ni, ci) =
            static_cast<float>(posit::to_double(posit::div(sum, divisor, s.spec), s.spec));
      }
    }
  }
}

void PositSession::Impl::exec_join(StepState& s, const Tensor& main, const Tensor& skip,
                                   Tensor& out) {
  const std::size_t numel = out.numel();
  const float* ma = main.data();
  const float* sk = skip.data();
  float* dst = out.data();
  posit::Quire* quires = pool(s);
  // Join then ReLU, all in the block's format. In kQuire mode both branch
  // terms accumulate through the session's quire arena (one rounding — the
  // same value posit::add produces, by the quire's exactness); serial/fma
  // modes use the rounded add, via its table when available.
#pragma omp parallel if (numel > 16384)
  {
#ifdef _OPENMP
    const int tid = omp_get_thread_num();
#else
    const int tid = 0;
#endif
    posit::Quire* quire = quires != nullptr ? &quires[tid] : nullptr;
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < numel; ++i) {
      const std::uint32_t a = posit::from_double(ma[i], s.spec, kEncodeRound);
      const std::uint32_t b = posit::from_double(sk[i], s.spec, kEncodeRound);
      std::uint32_t joined;
      if (quire != nullptr) {
        quire->clear();
        quire->add_posit(a);
        quire->add_posit(b);
        joined = quire->to_posit();
      } else {
        joined = s.luts.add != nullptr ? s.luts.add->at(a, b) : posit::add(a, b, s.spec);
      }
      const float v = static_cast<float>(posit::to_double(joined, s.spec));
      dst[i] = v > 0.0f ? v : 0.0f;
    }
  }
}

// ---------------------------------------------------------------------------
// PositSession
// ---------------------------------------------------------------------------

PositSession::PositSession() : impl_(std::make_unique<Impl>()) {}
PositSession::PositSession(PositSession&&) noexcept = default;
PositSession& PositSession::operator=(PositSession&&) noexcept = default;
PositSession::~PositSession() = default;

PositSession PositSession::compile(nn::Module& net, const SessionConfig& cfg) {
  PositSession session;
  Impl& I = *session.impl_;
  I.cfg = cfg;
  I.net = &net;
  // The session consumes the bit-identical passes (fused ReLU clamps the
  // decoded floats it stores anyway; 1x1 elision moves no arithmetic) but
  // declines fold_bn: its BN runs in encoded posit arithmetic, and a
  // pre-scaled float weight panel would change which values get encoded.
  exec::PlanOptions opts = exec::PlanOptions::defaults();
  opts.fold_bn = false;
  I.eplan = exec::GraphBuilder::lower(net, opts);
  I.slots.configure(I.eplan.num_buffers);
  I.state.resize(I.eplan.steps.size());
  for (std::size_t i = 0; i < I.eplan.steps.size(); ++i) {
    I.compile_step(I.eplan.steps[i], I.state[i]);
  }
  I.ensure_arena_threads();
  return session;
}

std::unique_ptr<exec::Backend> PositSession::compile_backend(nn::Module& net,
                                                            const SessionConfig& cfg) {
  PositSession session = compile(net, cfg);
  return std::move(session.impl_);
}

const Tensor& PositSession::run(const Tensor& x) { return impl_->run(x); }

void PositSession::invalidate() { impl_->force_refresh = true; }

const SessionConfig& PositSession::config() const { return impl_->cfg; }
const exec::ExecPlan& PositSession::plan() const { return impl_->eplan; }
std::size_t PositSession::arena_bytes() const { return impl_->arena_bytes(); }
std::size_t PositSession::steps() const { return impl_->eplan.top_level_steps; }
std::size_t PositSession::bound_params() const { return impl_->bound; }
std::uint64_t PositSession::encode_count() const { return impl_->encodes; }

std::size_t PositSession::panel_bytes() const {
  std::size_t bytes = 0;
  for (const StepState& s : impl_->state) {
    for (const Binding* b : {&s.weight, &s.bias}) bytes += b->panel.payload_bytes();
    bytes += (s.bn_scale.size() + s.bn_mean.size() + s.bn_shift.size()) * sizeof(std::uint32_t);
  }
  return bytes;
}

std::size_t PositSession::panel_scratch_bytes() const {
  std::size_t bytes = 0;
  for (const StepState& s : impl_->state) {
    bytes += s.act.packed.capacity() * sizeof(std::uint8_t) + s.cols.numel() * sizeof(float);
  }
  return bytes;
}

}  // namespace pdnn::quant
