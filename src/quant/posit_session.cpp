#include "quant/posit_session.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <typeinfo>
#include <utility>
#include <vector>

#include "quant/engine_gemm.hpp"
#include "tensor/ops.hpp"

namespace pdnn::quant {

using posit::PositSpec;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// SessionConfig
// ---------------------------------------------------------------------------

SessionConfig SessionConfig::from_quant(const QuantConfig& cfg, AccumMode mode) {
  SessionConfig c;
  c.spec = cfg.conv.forward;
  c.mode = mode;
  c.by_class[nn::LayerClass::kConv] = {cfg.conv.forward, {}};
  c.by_class[nn::LayerClass::kBn] = {cfg.bn.forward, {}};
  c.by_class[nn::LayerClass::kLinear] = {cfg.linear.forward, {}};
  return c;
}

PositSpec SessionConfig::spec_for(const std::string& name, nn::LayerClass cls) const {
  const auto by_n = by_name.find(name);
  if (by_n != by_name.end() && by_n->second.spec.has_value()) return *by_n->second.spec;
  const auto by_c = by_class.find(cls);
  if (by_c != by_class.end() && by_c->second.spec.has_value()) return *by_c->second.spec;
  return spec;
}

AccumMode SessionConfig::mode_for(const std::string& name, nn::LayerClass cls) const {
  const auto by_n = by_name.find(name);
  if (by_n != by_name.end() && by_n->second.mode.has_value()) return *by_n->second.mode;
  const auto by_c = by_class.find(cls);
  if (by_c != by_class.end() && by_c->second.mode.has_value()) return *by_c->second.mode;
  return mode;
}

// ---------------------------------------------------------------------------
// Compiled plan
// ---------------------------------------------------------------------------

namespace {

/// A parameter tensor bound to a session-owned encoded panel. `version`
/// mirrors Param::version at encode time; a mismatch at run() re-encodes.
struct Binding {
  nn::Param* param = nullptr;
  std::uint64_t version = 0;
  EncodedTensor panel;
};

/// Reshape an owned buffer only when the target shape actually changed —
/// the steady-state no-allocation path.
void ensure_shape(Tensor& t, const tensor::Shape& s) {
  if (t.shape() != s) t = Tensor(s);
}

struct Step {
  enum class Kind { kLinear, kConv, kBn, kRelu, kMaxPool, kGap, kResidual };

  Kind kind = Kind::kRelu;
  std::string name;
  PositSpec spec{16, 1};
  AccumMode mode = AccumMode::kQuire;
  detail::EngineLuts luts;
  int arena = -1;  ///< per-thread quire pool index (kQuire GEMMs, GAP, joins)

  // linear / conv
  Binding weight, bias;  // bias.param == nullptr -> no bias (panel stays empty)
  std::size_t in_c = 0, out_c = 0, kernel = 0, stride = 1, pad = 0, kernel_w = 0;

  // bn: constants derived from (gamma, beta, running stats) at encode time
  nn::BatchNorm2d* bn = nullptr;
  std::uint64_t gamma_version = 0, beta_version = 0;
  std::vector<std::uint32_t> bn_scale, bn_mean, bn_shift;

  // residual branches (skip empty -> identity)
  std::vector<Step> main_branch, skip_branch;

  // session-owned run-time buffers
  Tensor out;
  Tensor cols;       // conv im2col scratch
  EncodedTensor act; // encoded activation panel
};

}  // namespace

struct PositSession::Impl {
  SessionConfig cfg;
  std::vector<Step> steps;

  struct Arena {
    PositSpec spec{16, 1};
    std::vector<posit::Quire> quires;  // one per OpenMP thread
  };
  std::vector<Arena> arenas;

  Tensor passthrough;  // output buffer for an empty module graph
  std::uint64_t encode_count = 0;
  std::size_t bound_params = 0;
  bool force_refresh = false;

  int arena_for(const PositSpec& spec) {
    for (std::size_t i = 0; i < arenas.size(); ++i) {
      if (arenas[i].spec == spec) return static_cast<int>(i);
    }
    arenas.push_back({spec, {}});
    return static_cast<int>(arenas.size() - 1);
  }

  void ensure_arena_threads() {
    const std::size_t threads = static_cast<std::size_t>(detail::engine_threads());
    for (Arena& a : arenas) {
      while (a.quires.size() < threads) a.quires.emplace_back(a.spec);
    }
  }

  posit::Quire* pool(const Step& s) {
    return s.arena >= 0 ? arenas[static_cast<std::size_t>(s.arena)].quires.data() : nullptr;
  }

  void bind(Binding& b, nn::Param& p, const PositSpec& spec) {
    b.param = &p;
    b.version = p.version;
    b.panel = encode_unpack(p.value, spec);
    ++encode_count;
    ++bound_params;
  }

  /// (Re)derive the per-channel BN constants exactly as the per-layer engine
  /// does: scale = round(gamma) * round(1/sqrt(var+eps)), rounded once.
  void encode_bn(Step& s) {
    nn::BatchNorm2d& bn = *s.bn;
    const std::size_t c = bn.running_mean().size();
    s.bn_scale.resize(c);
    s.bn_mean.resize(c);
    s.bn_shift.resize(c);
    for (std::size_t ci = 0; ci < c; ++ci) {
      const double inv_std = 1.0 / std::sqrt(static_cast<double>(bn.running_var()[ci]) + bn.eps());
      const std::uint32_t g = posit::from_double(bn.gamma().value[ci], s.spec, kEncodeRound);
      s.bn_scale[ci] = posit::mul(g, posit::from_double(inv_std, s.spec, kEncodeRound), s.spec);
      s.bn_mean[ci] = posit::from_double(bn.running_mean()[ci], s.spec, kEncodeRound);
      s.bn_shift[ci] = posit::from_double(bn.beta().value[ci], s.spec, kEncodeRound);
    }
    s.gamma_version = bn.gamma().version;
    s.beta_version = bn.beta().version;
    ++encode_count;
  }

  void compile_into(nn::Module& m, std::vector<Step>& steps);
  Step compile_leaf(nn::Module& m);

  void refresh(std::vector<Step>& steps, bool force);
  const Tensor& exec(Step& s, const Tensor& h);

  void exec_linear(Step& s, const Tensor& h);
  void exec_conv(Step& s, const Tensor& h);
  void exec_bn(Step& s, const Tensor& h);
  void exec_relu(Step& s, const Tensor& h);
  void exec_maxpool(Step& s, const Tensor& h);
  void exec_gap(Step& s, const Tensor& h);
  void exec_residual(Step& s, const Tensor& h);

  static void collect_bytes(const std::vector<Step>& steps, std::size_t& bytes);
};

// ---------------------------------------------------------------------------
// compile
// ---------------------------------------------------------------------------

void PositSession::Impl::compile_into(nn::Module& m, std::vector<Step>& steps) {
  if (auto* seq = dynamic_cast<nn::Sequential*>(&m)) {
    for (nn::Module* child : seq->children()) compile_into(*child, steps);
    return;
  }
  if (auto* rb = dynamic_cast<nn::ResidualBlock*>(&m)) {
    Step s;
    s.kind = Step::Kind::kResidual;
    s.name = rb->name();
    // The block-level join adopts the conv family format (the post-add
    // activation is a conv-class tensor in training too).
    s.spec = cfg.spec_for(s.name, nn::LayerClass::kConv);
    s.mode = cfg.mode_for(s.name, nn::LayerClass::kConv);
    s.luts = detail::resolve_luts(s.spec, s.mode);
    if (s.mode == AccumMode::kQuire) s.arena = arena_for(s.spec);
    compile_into(rb->conv1(), s.main_branch);
    compile_into(rb->bn1(), s.main_branch);
    compile_into(rb->relu1(), s.main_branch);
    compile_into(rb->conv2(), s.main_branch);
    compile_into(rb->bn2(), s.main_branch);
    if (rb->has_downsample()) {
      compile_into(*rb->down_conv(), s.skip_branch);
      compile_into(*rb->down_bn(), s.skip_branch);
    }
    steps.push_back(std::move(s));
    return;
  }
  steps.push_back(compile_leaf(m));
}

Step PositSession::Impl::compile_leaf(nn::Module& m) {
  Step s;
  s.name = m.name();
  if (auto* fc = dynamic_cast<nn::Linear*>(&m)) {
    s.kind = Step::Kind::kLinear;
    s.spec = cfg.spec_for(s.name, nn::LayerClass::kLinear);
    s.mode = cfg.mode_for(s.name, nn::LayerClass::kLinear);
    s.luts = detail::resolve_luts(s.spec, s.mode);
    if (s.mode == AccumMode::kQuire) s.arena = arena_for(s.spec);
    bind(s.weight, fc->weight(), s.spec);
    bind(s.bias, fc->bias(), s.spec);
    s.in_c = fc->in_features();
    s.out_c = fc->out_features();
    return s;
  }
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&m)) {
    s.kind = Step::Kind::kConv;
    s.spec = cfg.spec_for(s.name, nn::LayerClass::kConv);
    s.mode = cfg.mode_for(s.name, nn::LayerClass::kConv);
    s.luts = detail::resolve_luts(s.spec, s.mode);
    if (s.mode == AccumMode::kQuire) s.arena = arena_for(s.spec);
    bind(s.weight, conv->weight(), s.spec);
    if (conv->has_bias()) {
      bind(s.bias, conv->bias(), s.spec);
    } else {
      s.bias.panel.spec = s.spec;
    }
    s.in_c = conv->in_channels();
    s.out_c = conv->out_channels();
    s.kernel = conv->kernel();
    s.kernel_w = conv->kernel_w();
    s.stride = conv->stride();
    s.pad = conv->pad();
    return s;
  }
  if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) {
    s.kind = Step::Kind::kBn;
    s.spec = cfg.spec_for(s.name, nn::LayerClass::kBn);
    s.mode = cfg.mode_for(s.name, nn::LayerClass::kBn);
    s.bn = bn;
    // The per-element transform is one fma: dispatch its table when the BN
    // format is small enough, whatever the accumulation mode.
    if (posit::fma_lut_supported(s.spec, posit::RoundMode::kNearestEven)) {
      s.luts.fma = &posit::fma_lut(s.spec, posit::RoundMode::kNearestEven);
    }
    encode_bn(s);
    return s;
  }
  if (dynamic_cast<nn::ReLU*>(&m) != nullptr) {
    s.kind = Step::Kind::kRelu;
    return s;
  }
  if (dynamic_cast<nn::MaxPool2x2*>(&m) != nullptr) {
    s.kind = Step::Kind::kMaxPool;
    return s;
  }
  if (dynamic_cast<nn::GlobalAvgPool*>(&m) != nullptr) {
    s.kind = Step::Kind::kGap;
    s.spec = cfg.spec_for(s.name, nn::LayerClass::kConv);
    s.arena = arena_for(s.spec);  // the plane sum always runs through a quire
    return s;
  }
  throw std::invalid_argument("PositSession: unsupported layer '" + m.name() + "' (" +
                              typeid(m).name() + ")");
}

// ---------------------------------------------------------------------------
// refresh (Param::version-driven re-encode)
// ---------------------------------------------------------------------------

void PositSession::Impl::refresh(std::vector<Step>& steps, bool force) {
  for (Step& s : steps) {
    if (s.weight.param != nullptr && (force || s.weight.param->version != s.weight.version)) {
      s.weight.version = s.weight.param->version;
      s.weight.panel = encode_unpack(s.weight.param->value, s.spec);
      ++encode_count;
    }
    if (s.bias.param != nullptr && (force || s.bias.param->version != s.bias.version)) {
      s.bias.version = s.bias.param->version;
      s.bias.panel = encode_unpack(s.bias.param->value, s.spec);
      ++encode_count;
    }
    if (s.bn != nullptr &&
        (force || s.bn->gamma().version != s.gamma_version || s.bn->beta().version != s.beta_version)) {
      encode_bn(s);
    }
    refresh(s.main_branch, force);
    refresh(s.skip_branch, force);
  }
}

// ---------------------------------------------------------------------------
// run
// ---------------------------------------------------------------------------

const Tensor& PositSession::Impl::exec(Step& s, const Tensor& h) {
  switch (s.kind) {
    case Step::Kind::kLinear: exec_linear(s, h); break;
    case Step::Kind::kConv: exec_conv(s, h); break;
    case Step::Kind::kBn: exec_bn(s, h); break;
    case Step::Kind::kRelu: exec_relu(s, h); break;
    case Step::Kind::kMaxPool: exec_maxpool(s, h); break;
    case Step::Kind::kGap: exec_gap(s, h); break;
    case Step::Kind::kResidual: exec_residual(s, h); break;
  }
  return s.out;
}

void PositSession::Impl::exec_linear(Step& s, const Tensor& h) {
  if (h.shape().rank() != 2 || h.shape()[1] != s.in_c) {
    throw std::invalid_argument("PositSession: '" + s.name + "' expects [N, " +
                                std::to_string(s.in_c) + "], got " + h.shape().to_string());
  }
  const std::size_t n = h.shape()[0];
  s.act.shape = {n, s.in_c};
  encode_unpack_into(h.data(), h.numel(), s.spec, s.act);
  ensure_shape(s.out, {n, s.out_c});
  detail::engine_gemm(s.act, s.weight.panel, s.bias.panel, n, s.in_c, s.out_c, s.mode, s.out.data(),
                      s.out_c, 1, s.luts, pool(s));
}

void PositSession::Impl::exec_conv(Step& s, const Tensor& h) {
  if (h.shape().rank() != 4 || h.shape()[1] != s.in_c) {
    throw std::invalid_argument("PositSession: '" + s.name + "' expects [N, " +
                                std::to_string(s.in_c) + ", H, W], got " + h.shape().to_string());
  }
  const tensor::Conv2dGeom geom{s.in_c, h.shape()[2], h.shape()[3], s.out_c,
                                s.kernel, s.stride,   s.pad,        s.kernel_w};
  geom.validate();
  const std::size_t batch = h.shape()[0];
  const std::size_t oh = geom.out_h(), ow = geom.out_w();
  const std::size_t pixels = oh * ow;
  const std::size_t patch = geom.patch();
  ensure_shape(s.cols, {patch, pixels});
  ensure_shape(s.out, {batch, s.out_c, oh, ow});
  for (std::size_t nidx = 0; nidx < batch; ++nidx) {
    tensor::im2col(h.data() + nidx * s.in_c * geom.in_h * geom.in_w, geom, s.cols.data());
    detail::encode_conv_panel(s.cols.data(), patch, pixels, s.spec, s.act);
    detail::engine_gemm(s.act, s.weight.panel, s.bias.panel, pixels, patch, s.out_c, s.mode,
                        s.out.data() + nidx * s.out_c * pixels, 1, pixels, s.luts, pool(s));
  }
}

void PositSession::Impl::exec_bn(Step& s, const Tensor& h) {
  // Eval-mode BN as posit arithmetic: y = scale * (x - mean) + shift with
  // scale/mean/shift pre-encoded per channel.
  if (h.shape().rank() != 4 || h.shape()[1] != s.bn_scale.size()) {
    throw std::invalid_argument("PositSession: '" + s.name + "' expects [N, " +
                                std::to_string(s.bn_scale.size()) + ", H, W], got " +
                                h.shape().to_string());
  }
  const std::size_t n = h.shape()[0], c = h.shape()[1];
  const std::size_t plane = h.shape()[2] * h.shape()[3];
  ensure_shape(s.out, h.shape());
  // Channel slices are independent (same parallel shape as the FP32 BN).
#pragma omp parallel for schedule(static) if (c > 1 && n * plane > 4096)
  for (std::size_t ci = 0; ci < c; ++ci) {
    const std::uint32_t scale = s.bn_scale[ci];
    const std::uint32_t mean = s.bn_mean[ci];
    const std::uint32_t shift = s.bn_shift[ci];
    for (std::size_t ni = 0; ni < n; ++ni) {
      const float* src = h.data() + (ni * c + ci) * plane;
      float* dst = s.out.data() + (ni * c + ci) * plane;
      for (std::size_t p = 0; p < plane; ++p) {
        const std::uint32_t xv = posit::from_double(src[p], s.spec, kEncodeRound);
        const std::uint32_t centered = posit::sub(xv, mean, s.spec);
        const std::uint32_t scaled = s.luts.fma != nullptr
                                         ? s.luts.fma->at(centered, scale, shift)
                                         : posit::fma(centered, scale, shift, s.spec);
        dst[p] = static_cast<float>(posit::to_double(scaled, s.spec));
      }
    }
  }
}

void PositSession::Impl::exec_relu(Step& s, const Tensor& h) {
  ensure_shape(s.out, h.shape());
  const std::size_t numel = h.numel();
  const float* src = h.data();
  float* dst = s.out.data();
#pragma omp parallel for schedule(static) if (numel > 16384)
  for (std::size_t i = 0; i < numel; ++i) dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
}

void PositSession::Impl::exec_maxpool(Step& s, const Tensor& h) {
  // 2x2/stride-2 max pooling, comparisons only (exact on posit values);
  // the same visit order as tensor::maxpool2x2_forward, without its
  // per-call argmax/output allocations.
  if (h.shape().rank() != 4) {
    throw std::invalid_argument("PositSession: '" + s.name + "' expects rank-4 input");
  }
  const std::size_t n = h.shape()[0], c = h.shape()[1], ih = h.shape()[2], iw = h.shape()[3];
  const std::size_t oh = ih / 2, ow = iw / 2;
  ensure_shape(s.out, {n, c, oh, ow});
  const float* src = h.data();
  float* dst = s.out.data();
#pragma omp parallel for schedule(static) if (n * c > 1 && n * c * oh * ow > 16384)
  for (std::size_t plane = 0; plane < n * c; ++plane) {
    const float* in = src + plane * ih * iw;
    float* out = dst + plane * oh * ow;
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        // Same comparison semantics as the reference kernel, NaN included:
        // `v > best` from -inf skips NaN entries (NaR decodes to NaN).
        float best = -std::numeric_limits<float>::infinity();
        for (std::size_t dy = 0; dy < 2; ++dy) {
          for (std::size_t dx = 0; dx < 2; ++dx) {
            const float v = in[(2 * y + dy) * iw + 2 * x + dx];
            if (v > best) best = v;
          }
        }
        out[y * ow + x] = best;
      }
    }
  }
}

void PositSession::Impl::exec_gap(Step& s, const Tensor& h) {
  // Average = quire sum then posit division by the (exact) plane count.
  if (h.shape().rank() != 4) {
    throw std::invalid_argument("PositSession: '" + s.name + "' expects rank-4 input");
  }
  const std::size_t n = h.shape()[0], c = h.shape()[1];
  const std::size_t plane = h.shape()[2] * h.shape()[3];
  ensure_shape(s.out, {n, c});
  const std::uint32_t divisor =
      posit::from_double(static_cast<double>(plane), s.spec, kEncodeRound);
  posit::Quire* quires = pool(s);
  // Each (image, channel) cell owns its reduction; per-thread quires.
#pragma omp parallel
  {
#ifdef _OPENMP
    posit::Quire& quire = quires[omp_get_thread_num()];
#else
    posit::Quire& quire = quires[0];
#endif
#pragma omp for schedule(static) collapse(2)
    for (std::size_t ni = 0; ni < n; ++ni) {
      for (std::size_t ci = 0; ci < c; ++ci) {
        quire.clear();
        const float* src = h.data() + (ni * c + ci) * plane;
        for (std::size_t p = 0; p < plane; ++p) {
          quire.add_posit(posit::from_double(src[p], s.spec, kEncodeRound));
        }
        const std::uint32_t sum = quire.to_posit();
        s.out.at(ni, ci) =
            static_cast<float>(posit::to_double(posit::div(sum, divisor, s.spec), s.spec));
      }
    }
  }
}

void PositSession::Impl::exec_residual(Step& s, const Tensor& h) {
  const Tensor* main = &h;
  for (Step& sub : s.main_branch) main = &exec(sub, *main);
  const Tensor* skip = &h;
  for (Step& sub : s.skip_branch) skip = &exec(sub, *skip);
  if (main->shape() != skip->shape()) {
    throw std::invalid_argument("PositSession: '" + s.name + "' branch shape mismatch " +
                                main->shape().to_string() + " vs " + skip->shape().to_string());
  }
  ensure_shape(s.out, main->shape());
  const std::size_t numel = s.out.numel();
  const float* ma = main->data();
  const float* sk = skip->data();
  float* dst = s.out.data();
  posit::Quire* quires = pool(s);
  // Join then ReLU, all in the block's format. In kQuire mode both branch
  // terms accumulate through the session's quire arena (one rounding — the
  // same value posit::add produces, by the quire's exactness); serial/fma
  // modes use the rounded add, via its table when available.
#pragma omp parallel if (numel > 16384)
  {
#ifdef _OPENMP
    const int tid = omp_get_thread_num();
#else
    const int tid = 0;
#endif
    posit::Quire* quire = quires != nullptr ? &quires[tid] : nullptr;
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < numel; ++i) {
      const std::uint32_t a = posit::from_double(ma[i], s.spec, kEncodeRound);
      const std::uint32_t b = posit::from_double(sk[i], s.spec, kEncodeRound);
      std::uint32_t joined;
      if (quire != nullptr) {
        quire->clear();
        quire->add_posit(a);
        quire->add_posit(b);
        joined = quire->to_posit();
      } else {
        joined = s.luts.add != nullptr ? s.luts.add->at(a, b) : posit::add(a, b, s.spec);
      }
      const float v = static_cast<float>(posit::to_double(joined, s.spec));
      dst[i] = v > 0.0f ? v : 0.0f;
    }
  }
}

void PositSession::Impl::collect_bytes(const std::vector<Step>& steps, std::size_t& bytes) {
  for (const Step& s : steps) {
    for (const Binding* b : {&s.weight, &s.bias}) {
      bytes += b->panel.codes.size() * sizeof(std::uint32_t) +
               b->panel.ops.size() * sizeof(posit::Unpacked);
    }
    bytes += (s.bn_scale.size() + s.bn_mean.size() + s.bn_shift.size()) * sizeof(std::uint32_t);
    collect_bytes(s.main_branch, bytes);
    collect_bytes(s.skip_branch, bytes);
  }
}

// ---------------------------------------------------------------------------
// PositSession
// ---------------------------------------------------------------------------

PositSession::PositSession() : impl_(std::make_unique<Impl>()) {}
PositSession::PositSession(PositSession&&) noexcept = default;
PositSession& PositSession::operator=(PositSession&&) noexcept = default;
PositSession::~PositSession() = default;

PositSession PositSession::compile(nn::Module& net, const SessionConfig& cfg) {
  PositSession session;
  session.impl_->cfg = cfg;
  session.impl_->compile_into(net, session.impl_->steps);
  session.impl_->ensure_arena_threads();
  return session;
}

const Tensor& PositSession::run(const Tensor& x) {
  Impl& I = *impl_;
  I.ensure_arena_threads();  // the caller may have grown the OpenMP team
  I.refresh(I.steps, I.force_refresh);
  I.force_refresh = false;
  const Tensor* h = &x;
  for (Step& s : I.steps) h = &I.exec(s, *h);
  if (h == &x) {
    I.passthrough = x;  // empty graph: identity
    return I.passthrough;
  }
  return *h;
}

void PositSession::invalidate() { impl_->force_refresh = true; }

const SessionConfig& PositSession::config() const { return impl_->cfg; }
std::size_t PositSession::steps() const { return impl_->steps.size(); }
std::size_t PositSession::bound_params() const { return impl_->bound_params; }
std::uint64_t PositSession::encode_count() const { return impl_->encode_count; }

std::size_t PositSession::panel_bytes() const {
  std::size_t bytes = 0;
  Impl::collect_bytes(impl_->steps, bytes);
  return bytes;
}

}  // namespace pdnn::quant
