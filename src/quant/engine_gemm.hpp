// engine_gemm.hpp — internal decode-once GEMM shared by the free-function
// engine entry points (posit_linear / posit_conv2d) and the compiled
// PositSession. Not part of the public API.
#pragma once

#include <cstddef>

#include "posit/add_lut.hpp"
#include "posit/mul_lut.hpp"
#include "posit/quire.hpp"
#include "quant/posit_inference.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace pdnn::quant::detail {

/// Upper bound on the OpenMP team size the engine regions can start.
inline int engine_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// The tabulated kernels a (spec, mode) pair can dispatch onto (n <= 8
/// formats; all pointers null otherwise). `mul`+`add` drive serial
/// accumulation, `fma` the fma chain, and `add` alone every bias add in any
/// mode. Results are bit-identical to the arithmetic routines by
/// construction.
struct EngineLuts {
  const posit::MulLut* mul = nullptr;
  const posit::AddLut* add = nullptr;
  const posit::FmaLut* fma = nullptr;
};

/// Resolve the tables once per call/compile (takes the process-wide LUT
/// cache lock; never call on the per-row hot path).
EngineLuts resolve_luts(const posit::PositSpec& spec, AccumMode mode);

/// The block-decode GEMM at the heart of the engine. `a` holds `rows`
/// contiguous bit-packed operand rows of length k (activation panel), `w`
/// holds `cols` packed rows of length k (weight panel); the rounded dot of
/// every pair — plus optional per-column bias — lands at
/// out[r * row_stride + o * col_stride]. Panels stay packed at format width
/// and every packed value is decoded exactly once per call (SIMD group
/// decode, posit/simd.hpp): the activation panel into the calling thread's
/// scratch first (kActTile-row slices, team-parallel), then each weight row
/// into its streaming thread's O(k) scratch as the column loop reaches it.
/// Resident panel memory is the packed payload; the decoded activation panel
/// is per-call working scratch.
///
/// Threading is over output columns with one quire per thread. Each output
/// is accumulated start-to-finish by a single thread in ascending-k order —
/// exactly the reference order — so results are bit-identical to the scalar
/// reference and to any other thread count, for every AccumMode.
///
/// `quire_pool` must hold at least engine_threads() quires of `w.spec` when
/// mode == kQuire (the session's pre-planned per-thread arenas; the free
/// functions build a transient pool). Ignored for the other modes.
void engine_gemm(const EncodedTensor& a, const EncodedTensor& w, const EncodedTensor& bias,
                 std::size_t rows, std::size_t k, std::size_t cols, AccumMode mode, float* out,
                 std::size_t row_stride, std::size_t col_stride, const EngineLuts& luts,
                 posit::Quire* quire_pool);

/// Encode the im2col panel `cols` ([patch, pixels]) transposed into `panel`
/// so each output pixel's patch is contiguous, reusing the panel's storage.
void encode_conv_panel(const float* cols, std::size_t patch, std::size_t pixels,
                       const posit::PositSpec& spec, EncodedTensor& panel);

/// Bytes of the calling thread's block-decode + encode scratch (capacity,
/// grow-only). Scratch, not model footprint: PositSession::panel_bytes()
/// deliberately excludes it.
std::size_t engine_scratch_bytes();

}  // namespace pdnn::quant::detail
