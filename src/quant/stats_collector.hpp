// stats_collector.hpp — Fig. 2 support: per-epoch weight-distribution records.
//
// The paper's Fig. 2 plots (a,c) histograms and (b,d) the evolution of the
// distribution of conv1.weight and a BN weight across training, motivating the
// warm-up phase (BN distributions move sharply in the first epochs). The
// collector snapshots moments, log2-domain center and histograms of selected
// parameters each epoch; the fig2 bench renders them.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nn/layers.hpp"
#include "tensor/stats.hpp"

namespace pdnn::quant {

struct WeightSnapshot {
  std::size_t epoch = 0;
  tensor::Moments moments;
  double log2_center = 0.0;  ///< unrounded Eq. (2) center
  tensor::Histogram hist;    ///< linear-domain histogram
};

class WeightStatsCollector {
 public:
  /// `patterns`: parameter names to track (exact match), e.g. "conv1.weight".
  explicit WeightStatsCollector(std::vector<std::string> patterns, std::size_t bins = 40)
      : patterns_(std::move(patterns)), bins_(bins) {}

  /// Snapshot all tracked parameters of `net` (call from on_epoch_end).
  void collect(std::size_t epoch, nn::Sequential& net);

  const std::vector<WeightSnapshot>& series(const std::string& name) const;
  std::vector<std::string> tracked() const;

 private:
  std::vector<std::string> patterns_;
  std::size_t bins_;
  std::map<std::string, std::vector<WeightSnapshot>> series_;
  static const std::vector<WeightSnapshot> kEmpty;
};

}  // namespace pdnn::quant
