// scale.hpp — the paper's distribution-based shifting (Eq. 2 / Eq. 3).
//
//   center = round(mean(log2|x|)) over the tensor's non-zero elements
//   Sf     = 2^(center + sigma),  sigma = 2 in the paper
//   px     = P(x / Sf) * Sf
//
// Dividing by Sf moves the bulk of the distribution to magnitude 2^-sigma,
// just below 1, where the posit fraction field is widest; the +sigma bias
// deliberately favors the LARGE values of the tensor (Han et al.: large
// weights matter more), placing them at magnitude ~1.
#pragma once

#include "tensor/stats.hpp"

namespace pdnn::quant {

inline constexpr int kPaperSigma = 2;  ///< "set as 2 in our experiments"

/// Eq. (2) exponent: center + sigma, so that Sf = 2^shift.
inline int scale_shift(const tensor::Tensor& x, int sigma = kPaperSigma) {
  return tensor::log2_center(x) + sigma;
}

}  // namespace pdnn::quant
