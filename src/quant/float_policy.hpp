// float_policy.hpp — reduced-precision FLOAT training policy (the baseline).
//
// Mirrors QuantPolicy's use of the Fig. 3 hook points but quantizes to small
// IEEE-like floats instead of posits, reproducing the training schemes the
// paper compares against in Section II-A:
//   * Micikevicius et al. FP16: half precision compute, FP32 master weights
//     (quantize_weight_update = false), dynamic per-tensor scaling standing in
//     for their loss-scaling;
//   * Wang et al. FP8 (1-5-2): 8-bit compute with FP16-ish updates.
#pragma once

#include "nn/precision.hpp"
#include "quant/float_transform.hpp"
#include "quant/policy.hpp"
#include "quant/scale.hpp"

namespace pdnn::quant {

struct FpPolicyConfig {
  FpSpec forward = FpSpec::fp16();   ///< weights & activations
  FpSpec backward = FpSpec::fp16();  ///< errors & weight gradients
  FpSpec update = FpSpec::fp16();    ///< stored weights after the SGD step
  bool quantize_weight_update = true;  ///< false = keep FP32 master weights
  ScaleMode scale_mode = ScaleMode::kNone;  ///< dynamic shift (loss-scaling analogue)
  int sigma = kPaperSigma;
  posit::RoundMode round_mode = posit::RoundMode::kNearestEven;

  /// Micikevicius et al.: FP16 compute, FP32 master weights, scaling.
  static FpPolicyConfig fp16_mixed() {
    FpPolicyConfig c;
    c.quantize_weight_update = false;
    c.scale_mode = ScaleMode::kDynamic;
    return c;
  }
  /// Wang et al.: FP8 (1-5-2) compute, FP16 weight update.
  static FpPolicyConfig fp8_training() {
    FpPolicyConfig c;
    c.forward = FpSpec::fp8_152();
    c.backward = FpSpec::fp8_152();
    c.update = FpSpec::fp16();
    c.scale_mode = ScaleMode::kDynamic;
    return c;
  }
};

class FpPolicy final : public nn::PrecisionPolicy {
 public:
  explicit FpPolicy(FpPolicyConfig cfg = {}) : cfg_(cfg), rng_(0xF10A7) {}

  bool active() const override { return active_; }
  void activate() { active_ = true; }
  void deactivate() { active_ = false; }

  tensor::Tensor quantize_weight(const tensor::Tensor& w, const std::string& layer,
                                 nn::LayerClass cls) override;
  void quantize_activation(tensor::Tensor& a, const std::string& layer, nn::LayerClass cls) override;
  void quantize_error(tensor::Tensor& e, const std::string& layer, nn::LayerClass cls) override;
  void quantize_gradient(tensor::Tensor& g, const std::string& layer, nn::LayerClass cls) override;
  void quantize_updated_weight(tensor::Tensor& w, const std::string& layer, nn::LayerClass cls) override;

  const FpPolicyConfig& config() const { return cfg_; }

 private:
  void transform(tensor::Tensor& t, const FpSpec& spec);

  FpPolicyConfig cfg_;
  bool active_ = false;
  posit::RoundingRng rng_;
};

}  // namespace pdnn::quant
