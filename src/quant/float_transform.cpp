#include "quant/float_transform.hpp"

#include <cmath>

namespace pdnn::quant {

double FpSpec::max_value() const {
  // (2 - 2^-man_bits) * 2^max_exp
  return (2.0 - std::ldexp(1.0, -man_bits)) * std::ldexp(1.0, max_exp());
}

double FpSpec::min_subnormal() const { return std::ldexp(1.0, min_exp() - man_bits); }

float fp_quantize(float x, const FpSpec& spec, posit::RoundMode mode, posit::RoundingRng* rng) {
  if (x == 0.0f || std::isnan(x)) return x == x ? 0.0f : 0.0f;
  if (std::isinf(x)) return std::copysign(static_cast<float>(spec.max_value()), x);

  const double mag = std::fabs(static_cast<double>(x));
  int e = 0;
  const double m = std::frexp(mag, &e);  // m in [0.5,1)
  const int exp = e - 1;

  // Position of the unit-in-last-place: man_bits below the leading one for
  // normals, pinned at min_exp - man_bits in the subnormal range.
  const int ulp_exp = std::max(exp, spec.min_exp()) - spec.man_bits;
  const double scaled = std::ldexp(mag, -ulp_exp);  // value in ulp units
  double units = std::floor(scaled);
  const double frac = scaled - units;

  bool round_up = false;
  switch (mode) {
    case posit::RoundMode::kNearestEven:
      if (frac > 0.5) {
        round_up = true;
      } else if (frac == 0.5) {
        round_up = std::fmod(units, 2.0) != 0.0;
      }
      break;
    case posit::RoundMode::kTowardZero:
      break;
    case posit::RoundMode::kStochastic: {
      const double u = rng != nullptr
                           ? static_cast<double>(rng->next() >> 11) * 0x1.0p-53
                           : 0.5;
      round_up = u < frac;
      break;
    }
  }
  if (round_up) units += 1.0;

  double result = std::ldexp(units, ulp_exp);
  (void)m;
  if (result > spec.max_value()) result = spec.max_value();  // saturate
  return std::copysign(static_cast<float>(result), x);
}

void fp_quantize_inplace(tensor::Tensor& t, const FpSpec& spec, posit::RoundMode mode,
                         posit::RoundingRng* rng) {
  float* p = t.data();
  const std::size_t n = t.numel();
  for (std::size_t i = 0; i < n; ++i) p[i] = fp_quantize(p[i], spec, mode, rng);
}

}  // namespace pdnn::quant
