// float_transform.hpp — reduced-precision IEEE-style float quantizers.
//
// The baselines the paper positions against (Section II-A): FP16 training
// (Micikevicius et al.) and FP8 training (Wang et al., 1-5-2 format). These
// simulate casting an FP32 value to a small float and back, with proper
// subnormals and saturation, so the ablation bench can compare posit and
// float formats at matched bit widths.
#pragma once

#include "posit/rounding.hpp"
#include "tensor/tensor.hpp"

namespace pdnn::quant {

/// An IEEE-like binary float format: 1 sign bit, `exp_bits` biased exponent
/// bits (all-ones reserved for inf/NaN), `man_bits` mantissa bits, gradual
/// underflow (subnormals), overflow saturates to the largest finite value.
struct FpSpec {
  int exp_bits;
  int man_bits;

  int total_bits() const { return 1 + exp_bits + man_bits; }
  int bias() const { return (1 << (exp_bits - 1)) - 1; }
  int max_exp() const { return (1 << exp_bits) - 2 - bias(); }  ///< largest finite exponent
  int min_exp() const { return 1 - bias(); }                    ///< smallest normal exponent
  /// Largest finite value.
  double max_value() const;
  /// Smallest positive subnormal.
  double min_subnormal() const;

  static constexpr FpSpec fp16() { return {5, 10}; }   ///< IEEE half
  static constexpr FpSpec bf16() { return {8, 7}; }    ///< bfloat16
  static constexpr FpSpec fp8_152() { return {5, 2}; } ///< Wang et al. FP8
  static constexpr FpSpec fp8_143() { return {4, 3}; } ///< common alternative
};

/// Quantize x to the nearest `spec` value (mode selects the rounding).
float fp_quantize(float x, const FpSpec& spec, posit::RoundMode mode = posit::RoundMode::kNearestEven,
                  posit::RoundingRng* rng = nullptr);

/// Element-wise in-place quantization.
void fp_quantize_inplace(tensor::Tensor& t, const FpSpec& spec,
                         posit::RoundMode mode = posit::RoundMode::kNearestEven,
                         posit::RoundingRng* rng = nullptr);

}  // namespace pdnn::quant
