#include "quant/posit_transform.hpp"

#include <cmath>
#include <cstring>

namespace pdnn::quant {

double posit_transform_reference(double x, const PositSpec& spec) {
  // Algorithm 1, line by line.
  const int useed_log2 = 1 << spec.es;                       // line 1 (log domain)
  const double maxpos = posit::maxpos_value(spec);           // line 2
  const double minpos = posit::minpos_value(spec);
  if (std::fabs(x) < minpos) return 0.0;                     // lines 3-4
  const double s = x < 0 ? -1.0 : 1.0;                       // line 6
  const double xc = std::min(std::max(std::fabs(x), minpos), maxpos);  // line 7
  const int exp = static_cast<int>(std::floor(std::log2(xc)));         // line 8
  const int k = (exp >= 0 ? exp : exp - useed_log2 + 1) / useed_log2;  // line 9 (floor div)
  const int e = exp - k * useed_log2;                        // line 10
  const double f = xc / std::ldexp(1.0, exp) - 1.0;          // line 11
  const int rb = k >= 0 ? k + 2 : -k + 1;                    // lines 12-15
  const int eb = std::max(std::min(spec.n - 1 - rb, spec.es), 0);      // line 16
  const int fb = std::max(spec.n - 1 - rb - eb, 0);          // line 17 (paper typo: min -> max)
  const int pe = static_cast<int>(std::floor(e * std::ldexp(1.0, eb - spec.es))) *
                 (1 << (spec.es - eb));                      // line 18
  const double pf = std::floor(f * std::ldexp(1.0, fb)) * std::ldexp(1.0, -fb);  // line 19
  return s * std::ldexp(1.0, k * useed_log2 + pe) * (1.0 + pf);  // line 20, useed^k = 2^(k*2^es)
}

namespace {

/// Pure integer implementation for the common case: normal float input and a
/// format whose dynamic range stays inside normal floats (all n <= 16
/// configs). Truncates mantissa/exponent bits directly in the float encoding.
inline bool transform_bits_fast(float x, const PositSpec& spec, int shift, float* out) {
  std::uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  const std::uint32_t biased = (bits >> 23) & 0xFFu;
  if (biased == 0u || biased == 0xFFu) return false;  // zero/subnormal/inf/nan: slow path
  // Result exponents must stay in the normal float range.
  if (spec.min_scale() + shift < -126 || spec.max_scale() + shift > 127) return false;
  const int exp = static_cast<int>(biased) - 127;
  const int exp_eff = exp - shift;  // exponent of x / Sf
  if (exp_eff < spec.min_scale()) {
    *out = 0.0f;  // Algorithm 1 lines 3-4
    return true;
  }
  if (exp_eff >= spec.max_scale()) {  // clip to maxpos * Sf
    const std::uint32_t maxbits =
        (bits & 0x80000000u) | (static_cast<std::uint32_t>(spec.max_scale() + shift + 127) << 23);
    std::memcpy(out, &maxbits, sizeof(*out));
    return true;
  }
  const int k = exp_eff >> spec.es;
  // k * 2^es, not k << es: the regime can be negative and a negative left
  // shift is UB (same fix as the codec/unpacked paths).
  const int k_scaled = k * (1 << spec.es);
  const int e = exp_eff - k_scaled;
  const int rb = k >= 0 ? k + 2 : -k + 1;
  const int eb = std::max(std::min(spec.n - 1 - rb, spec.es), 0);
  const int fb = std::max(spec.n - 1 - rb - eb, 0);
  const int pe = (e >> (spec.es - eb)) << (spec.es - eb);
  const std::uint32_t frac_mask = fb >= 23 ? 0x007FFFFFu : (0x007FFFFFu & ~((1u << (23 - fb)) - 1u));
  const std::uint32_t out_bits = (bits & 0x80000000u) |
                                 (static_cast<std::uint32_t>(k_scaled + pe + shift + 127) << 23) |
                                 (bits & frac_mask);
  std::memcpy(out, &out_bits, sizeof(*out));
  return true;
}

/// Direct float-bit implementation of Algorithm 1 (no double round trips).
inline float transform_bits(float x, const PositSpec& spec) {
  float fast = 0.0f;
  if (transform_bits_fast(x, spec, 0, &fast)) return fast;
  if (x == 0.0f) return 0.0f;
  if (std::isnan(x)) return 0.0f;
  if (std::isinf(x)) return std::copysign(std::ldexp(1.0f, spec.max_scale()), x);  // clip
  int exp = 0;
  const float mag = std::fabs(x);
  // frexp handles subnormals; m in [0.5, 1) so the true exponent is exp-1.
  const float m = std::frexp(mag, &exp);
  exp -= 1;

  if (exp < spec.min_scale()) {
    return 0.0f;  // Algorithm 1 lines 3-4: |x| < minpos flushes to zero
  }
  if (exp >= spec.max_scale()) {
    // Clip to maxpos (maxpos itself has exp == max_scale, f == 0).
    return std::copysign(std::ldexp(1.0f, spec.max_scale()), x);
  }

  const int k = exp >> spec.es;  // floor division by 2^es
  const int e = exp - k * (1 << spec.es);  // k can be negative: no left shift

  const int rb = k >= 0 ? k + 2 : -k + 1;
  const int eb = std::max(std::min(spec.n - 1 - rb, spec.es), 0);
  const int fb = std::max(spec.n - 1 - rb - eb, 0);

  // Truncate the exponent's low (es - eb) bits toward zero (line 18).
  const int pe = (e >> (spec.es - eb)) << (spec.es - eb);

  // Truncate the mantissa to fb bits (line 19). m in [0.5,1): mantissa
  // f = 2m - 1 carries 23 explicit bits in a float; keep the top fb of them.
  float pf;
  if (fb >= 24) {
    pf = 2.0f * m - 1.0f;  // the float mantissa fits entirely
  } else {
    const float scaled = std::ldexp(2.0f * m - 1.0f, fb);
    pf = std::ldexp(std::floor(scaled), -fb);
  }
  return std::copysign(std::ldexp(1.0f + pf, k * (1 << spec.es) + pe), x);
}

}  // namespace

float posit_transform(float x, const PositSpec& spec) { return transform_bits(x, spec); }

void transform_inplace(tensor::Tensor& t, const PositSpec& spec) {
  float* p = t.data();
  const std::size_t n = t.numel();
  for (std::size_t i = 0; i < n; ++i) p[i] = transform_bits(p[i], spec);
}

float posit_transform_scaled(float x, const PositSpec& spec, int shift) {
  float fast = 0.0f;
  if (transform_bits_fast(x, spec, shift, &fast)) return fast;
  const float scaled = std::ldexp(x, -shift);              // x / Sf, exact
  return std::ldexp(transform_bits(scaled, spec), shift);  // P(x/Sf) * Sf, exact
}

void transform_scaled_inplace(tensor::Tensor& t, const PositSpec& spec, int shift) {
  if (shift == 0) {
    transform_inplace(t, spec);
    return;
  }
  float* p = t.data();
  const std::size_t n = t.numel();
  for (std::size_t i = 0; i < n; ++i) p[i] = posit_transform_scaled(p[i], spec, shift);
}

void transform_inplace_rounded(tensor::Tensor& t, const PositSpec& spec, posit::RoundMode mode,
                               posit::RoundingRng* rng, int shift) {
  if (mode == posit::RoundMode::kTowardZero) {
    transform_scaled_inplace(t, spec, shift);
    return;
  }
  const double minpos = posit::minpos_value(spec);
  float* p = t.data();
  const std::size_t n = t.numel();
  for (std::size_t i = 0; i < n; ++i) {
    const double scaled = std::ldexp(static_cast<double>(p[i]), -shift);
    double q;
    if (std::fabs(scaled) < minpos) {
      // Keep Algorithm 1's flush-to-zero semantics for a fair rounding-mode
      // comparison; only the rounding of in-range values changes.
      q = 0.0;
    } else {
      q = posit::to_double(posit::from_double(scaled, spec, mode, rng), spec);
    }
    p[i] = static_cast<float>(std::ldexp(q, shift));
  }
}

}  // namespace pdnn::quant
