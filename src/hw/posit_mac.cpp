#include "hw/posit_mac.hpp"

#include "hw/analysis.hpp"

namespace pdnn::hw {

PositMacPorts build_posit_mac(Netlist& nl, const PositHwSpec& spec, bool optimized) {
  PositMacPorts ports;
  ports.a = nl.input_bus("a", spec.n);
  ports.b = nl.input_bus("b", spec.n);
  ports.c = nl.input_bus("c", spec.n);

  const DecoderPorts da = build_decoder(nl, spec, ports.a, optimized);
  const DecoderPorts db = build_decoder(nl, spec, ports.b, optimized);
  const DecoderPorts dc = build_decoder(nl, spec, ports.c, optimized);

  const FpFormat fmt{spec.exp_width(), spec.frac_width()};
  const auto to_fp = [&](const DecoderPorts& d) {
    FpOperand op;
    op.sign = d.sign;
    op.is_zero = d.is_zero;
    op.exp = d.eff_exp;
    op.frac = d.mantissa;
    return op;
  };
  const FpResult z = build_fp_mac(nl, fmt, to_fp(da), to_fp(db), to_fp(dc));

  // NaR poisoning (any NaR input -> NaR output).
  const NetId any_nar = nl.lor(nl.lor(da.is_nar, db.is_nar), dc.is_nar);

  // The FP MAC widened the exponent by 2 bits; the encoder clamps magnitudes
  // into posit range internally, so pass the wide exponent through a resize
  // with saturation awareness: the encoder's regime clamp handles |k| >= n.
  Bus enc_exp = z.exp;  // width exp_width + 2
  // Encoder expects exp_width bits; saturate wide values toward the clamp.
  const int ew = spec.exp_width();
  Bus exp_in(enc_exp.begin(), enc_exp.begin() + ew);
  // If the dropped high bits disagree with the sign, the value is out of
  // range: force the largest same-sign exponent.
  const NetId sign_bit = enc_exp.back();
  NetId out_of_range = nl.constant(false);
  for (std::size_t i = static_cast<std::size_t>(ew - 1); i < enc_exp.size(); ++i) {
    out_of_range = nl.lor(out_of_range, nl.lxor(enc_exp[i], sign_bit));
  }
  Bus sat(static_cast<std::size_t>(ew));
  for (int i = 0; i < ew - 1; ++i) sat[static_cast<std::size_t>(i)] = nl.lnot(sign_bit);
  sat[static_cast<std::size_t>(ew - 1)] = sign_bit;
  exp_in = nl.bus_mux(out_of_range, exp_in, sat);

  const EncoderPorts enc =
      build_encoder(nl, spec, z.sign, z.is_zero, any_nar, exp_in, z.frac, optimized);
  ports.z = enc.code_out;
  return ports;
}

Netlist make_posit_mac_netlist(const PositHwSpec& spec, bool optimized) {
  Netlist nl;
  const PositMacPorts ports = build_posit_mac(nl, spec, optimized);
  nl.mark_output_bus(ports.z, "z");
  return nl.pruned();
}

MacDelayBreakdown posit_mac_delay_breakdown(const PositHwSpec& spec, bool optimized) {
  MacDelayBreakdown b;
  b.decoder_ns = analyze_timing(make_decoder_netlist(spec, optimized)).critical_delay_ns;
  b.encoder_ns = analyze_timing(make_encoder_netlist(spec, optimized)).critical_delay_ns;
  const Netlist fp = make_fp_mac_netlist(FpFormat{spec.exp_width(), spec.frac_width()});
  b.fp_mac_ns = analyze_timing(fp).critical_delay_ns;
  b.total_ns = analyze_timing(make_posit_mac_netlist(spec, optimized)).critical_delay_ns;
  return b;
}

}  // namespace pdnn::hw
