// components.hpp — parameterized RTL building blocks (generate-block style).
//
// All buses are little-endian (bus[0] = LSB). Signed buses are two's
// complement. These are the pieces the posit decoder/encoder (Figs. 5-6) and
// the FP MAC (Fig. 4) are assembled from.
#pragma once

#include "hw/netlist.hpp"

namespace pdnn::hw {

struct SumCarry {
  Bus sum;
  NetId carry_out;
};

/// Ripple-carry adder: sum = a + b + cin. Widths must match.
SumCarry ripple_adder(Netlist& nl, const Bus& a, const Bus& b, NetId cin);

/// Kogge-Stone parallel-prefix adder: same function, log depth. This is what
/// synthesis emits for wide timing-critical adds (used in the FP MAC).
SumCarry kogge_stone_adder(Netlist& nl, const Bus& a, const Bus& b, NetId cin);

/// a + 1 when inc is high, else a — RIPPLE half-adder chain, linear depth.
/// This is the "+1" structure of the original [6] codec that the paper's
/// optimization removes from the critical path; keep using it only there.
Bus incrementer(Netlist& nl, const Bus& a, NetId inc);

/// a + 1 when inc is high — log-depth Kogge-Stone prefix-AND carries, the
/// structure synthesis produces for fast increments. Used by the negation
/// blocks shared by both codec variants.
Bus prefix_incrementer(Netlist& nl, const Bus& a, NetId inc);

/// Inclusive prefix AND: out[i] = a[0] & ... & a[i], log depth.
Bus prefix_and_scan(Netlist& nl, const Bus& a);

/// Two's complement negate: ~a + 1 (log depth).
Bus negate(Netlist& nl, const Bus& a);

/// Conditional negate: neg ? -a : a (XOR with sign + conditional +1,
/// log depth).
Bus conditional_negate(Netlist& nl, const Bus& a, NetId neg);

/// a - b as two's complement (same width).
Bus subtract(Netlist& nl, const Bus& a, const Bus& b);

/// Logical left shifter: out = in << amount, zero fill. Result keeps width.
Bus left_shifter(Netlist& nl, const Bus& in, const Bus& amount);

/// Logical right shifter with selectable fill bit (0, 1, or the sign).
Bus right_shifter(Netlist& nl, const Bus& in, const Bus& amount, NetId fill);

/// Leading-zero detector over MSB-first interpretation of `in`:
/// count of consecutive 0s starting at in[width-1]. count width =
/// ceil(log2(width+1)); `all_zero` flags an all-zero input (count == width).
struct LzdResult {
  Bus count;
  NetId all_zero;
};
LzdResult leading_zero_detector(Netlist& nl, const Bus& in);

/// Leading-one detector (LOD): LZD of the complemented input.
LzdResult leading_one_detector(Netlist& nl, const Bus& in);

/// Unsigned array multiplier (linear-depth ripple accumulation).
Bus array_multiplier(Netlist& nl, const Bus& a, const Bus& b);

/// Unsigned Wallace-tree multiplier: 3:2 carry-save reduction layers plus a
/// final Kogge-Stone add — log depth, the structure synthesis produces for
/// timing-critical multipliers. out width = |a| + |b|.
Bus wallace_multiplier(Netlist& nl, const Bus& a, const Bus& b);

/// Equality / comparison helpers.
NetId equals_zero(Netlist& nl, const Bus& a);
/// a < b, unsigned.
NetId less_than(Netlist& nl, const Bus& a, const Bus& b);

/// Sign-extend (or zero-pad) a bus to `width`.
Bus extend(Netlist& nl, const Bus& a, int width, bool sign_extend);

/// Take bits [lo, lo+count) of a bus.
Bus slice(const Bus& a, int lo, int count);

}  // namespace pdnn::hw
