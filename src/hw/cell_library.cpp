#include "hw/cell_library.hpp"

namespace pdnn::hw {

namespace {

// Delay ~ FO4-scaled; area from typical 28nm HD cell footprints; energy and
// leakage chosen so the FP32 MAC reference lands near the paper's Table V.
constexpr CellParams kParams[] = {
    /* kInv   */ {0.010, 0.49, 0.6, 1.0},
    /* kBuf   */ {0.016, 0.65, 0.8, 1.2},
    /* kAnd2  */ {0.022, 0.81, 1.1, 1.6},
    /* kOr2   */ {0.023, 0.81, 1.1, 1.6},
    /* kNand2 */ {0.014, 0.65, 0.9, 1.4},
    /* kNor2  */ {0.016, 0.65, 0.9, 1.4},
    /* kXor2  */ {0.032, 1.30, 1.8, 2.6},
    /* kXnor2 */ {0.032, 1.30, 1.8, 2.6},
    /* kMux2  */ {0.030, 1.46, 1.7, 2.8},
    /* kConst */ {0.000, 0.00, 0.0, 0.0},
    /* kInput */ {0.000, 0.00, 0.0, 0.0},
};

constexpr const char* kNames[] = {"INV", "BUF", "AND2", "OR2",   "NAND2", "NOR2",
                                  "XOR2", "XNOR2", "MUX2", "CONST", "INPUT"};

}  // namespace

const CellParams& cell_params(CellKind kind) { return kParams[static_cast<int>(kind)]; }

const char* cell_name(CellKind kind) { return kNames[static_cast<int>(kind)]; }

int cell_arity(CellKind kind) {
  switch (kind) {
    case CellKind::kInv:
    case CellKind::kBuf:
      return 1;
    case CellKind::kMux2:
      return 3;
    case CellKind::kConst:
    case CellKind::kInput:
      return 0;
    default:
      return 2;
  }
}

}  // namespace pdnn::hw
