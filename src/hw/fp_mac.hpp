// fp_mac.hpp — combinational floating-point multiply-accumulate netlist.
//
// z = a*b + c over a simple sign/exponent/fraction format with hidden-one
// significands, truncation rounding (consistent with the paper's
// round-toward-zero choice) and no subnormals — the internal datapath of the
// paper's posit MAC (Fig. 4) and, at (e=8, m=23), the FP32 MAC baseline of
// Table V.
#pragma once

#include "hw/components.hpp"

namespace pdnn::hw {

struct FpFormat {
  int exp_width;   ///< signed (two's complement) exponent width
  int frac_width;  ///< explicit fraction bits (hidden 1 above)
};

struct FpOperand {
  NetId sign;
  NetId is_zero;
  Bus exp;   ///< exp_width bits, signed
  Bus frac;  ///< frac_width bits
};

struct FpResult {
  NetId sign;
  NetId is_zero;
  Bus exp;   ///< exp_width + 2 bits (growth from product and normalize)
  Bus frac;  ///< frac_width bits
};

/// Build z = a*b + c into `nl`.
FpResult build_fp_mac(Netlist& nl, const FpFormat& fmt, const FpOperand& a, const FpOperand& b,
                      const FpOperand& c);

/// Standalone characterization netlist (all ports marked), e.g. FP32 MAC.
Netlist make_fp_mac_netlist(const FpFormat& fmt);

}  // namespace pdnn::hw
