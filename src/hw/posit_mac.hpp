// posit_mac.hpp — the full posit MAC of Fig. 4: three decoders feeding an FP
// MAC, re-encoded to posit at the output. z = a*b + c, all posit(n, es).
#pragma once

#include "hw/fp_mac.hpp"
#include "hw/posit_codec_hw.hpp"

namespace pdnn::hw {

struct PositMacPorts {
  Bus a, b, c;     ///< n-bit posit inputs
  Bus z;           ///< n-bit posit output
};

/// Build the MAC into `nl`. `optimized` selects the paper's encoder/decoder
/// (Fig. 5b/6b) vs the original [6] structures (Fig. 5a/6a).
PositMacPorts build_posit_mac(Netlist& nl, const PositHwSpec& spec, bool optimized);

/// Standalone characterization netlist (ports marked) for Table V.
Netlist make_posit_mac_netlist(const PositHwSpec& spec, bool optimized);

/// Delay breakdown used for the Section IV claim that the codec contributes
/// ~40% of the original MAC's delay.
struct MacDelayBreakdown {
  double decoder_ns = 0.0;
  double fp_mac_ns = 0.0;
  double encoder_ns = 0.0;
  double total_ns = 0.0;  ///< full MAC critical path (not simply the sum)
};
MacDelayBreakdown posit_mac_delay_breakdown(const PositHwSpec& spec, bool optimized);

}  // namespace pdnn::hw
