// verilog_export.hpp — emit a Netlist as synthesizable structural Verilog.
//
// Lets every circuit in this library (the Fig. 5/6 codecs, the MACs) be taken
// to a real flow: the emitted module instantiates only primitive gates
// (assign-statement forms), so any synthesis tool accepts it. Round-trips are
// tested by re-simulating the netlist against the expected semantics.
#pragma once

#include <string>

#include "hw/netlist.hpp"

namespace pdnn::hw {

/// Render `nl` as a single Verilog-2001 module named `module_name`.
/// Primary inputs/outputs keep their marked names (buses are flattened to
/// scalar ports with the recorded per-bit names, sanitized to identifiers).
std::string to_verilog(const Netlist& nl, const std::string& module_name);

}  // namespace pdnn::hw
