// posit_codec_hw.hpp — posit <-> FP conversion circuits (paper Figs. 5 & 6).
//
// Both decoder variants compute identical functions; they differ structurally:
//   * Original [6] (Fig. 5a / 6a): one barrel shifter whose shift amount goes
//     through a LOD/LZD-count mux followed by a "+1" incrementer — the
//     incrementer sits on the critical path.
//   * Optimized (Fig. 5b / 6b): the adder is removed; the shifter is
//     duplicated (one per regime polarity) with the "+1" realized as a free
//     constant one-bit shift in the wiring, and the mux moves after the
//     shifters. Two shifters work in parallel; the path loses the adder and
//     the pre-shift mux, gaining one output bus-mux.
//
// Interface convention (little-endian buses):
//   decoder out: sign, is_zero, is_nar, eff_exp (signed, exp_width bits),
//                mantissa (frac_width bits, left-aligned fraction, hidden 1
//                implied above the MSB).
//   encoder in:  the same signals; out: the n-bit posit code (round toward
//                zero, i.e. truncation — the paper's hardware choice).
#pragma once

#include "hw/components.hpp"

namespace pdnn::hw {

struct PositHwSpec {
  int n;
  int es;

  /// Fraction width of the decoded mantissa bus: n-1 body bits minus the es
  /// exponent bits, left-aligned (actual fractions are shorter; low bits 0).
  int frac_width() const { return n - 1 - es; }
  /// Signed effective-exponent width: k in [-(n-1), n-2] times 2^es plus e.
  int exp_width() const {
    int k_bits = 1;
    while ((1 << k_bits) < n) ++k_bits;  // magnitude of k fits k_bits
    return k_bits + 1 + es;              // sign + k + e
  }
};

struct DecoderPorts {
  Bus code_in;    ///< n bits
  NetId sign;
  NetId is_zero;
  NetId is_nar;
  Bus eff_exp;    ///< exp_width bits, signed
  Bus mantissa;   ///< frac_width bits
};

struct EncoderPorts {
  NetId sign;
  NetId is_zero;
  NetId is_nar;
  Bus eff_exp;
  Bus mantissa;
  Bus code_out;   ///< n bits
};

/// Build a decoder into `nl` reading from `code` (width n). Marks no outputs.
DecoderPorts build_decoder(Netlist& nl, const PositHwSpec& spec, const Bus& code, bool optimized);

/// Build an encoder into `nl` from the given field buses (widths must match
/// spec.exp_width()/frac_width()).
EncoderPorts build_encoder(Netlist& nl, const PositHwSpec& spec, NetId sign, NetId is_zero, NetId is_nar,
                           const Bus& eff_exp, const Bus& mantissa, bool optimized);

/// Standalone characterization netlists (inputs/outputs marked) for Table IV.
Netlist make_decoder_netlist(const PositHwSpec& spec, bool optimized);
Netlist make_encoder_netlist(const PositHwSpec& spec, bool optimized);

}  // namespace pdnn::hw
