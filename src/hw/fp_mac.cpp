#include "hw/fp_mac.hpp"

#include <stdexcept>

namespace pdnn::hw {

namespace {

int count_width_for(int bits) {
  int w = 1;
  while ((1 << w) < bits + 1) ++w;
  return w;
}

}  // namespace

FpResult build_fp_mac(Netlist& nl, const FpFormat& fmt, const FpOperand& a, const FpOperand& b,
                      const FpOperand& c) {
  const int m = fmt.frac_width;
  const int ew = fmt.exp_width;
  const int ew2 = ew + 2;  // internal exponent width

  // ---- multiply ----------------------------------------------------------
  const NetId sp = nl.lxor(a.sign, b.sign);
  Bus ma = a.frac;
  ma.push_back(nl.constant(true));  // hidden one -> width m+1
  Bus mb = b.frac;
  mb.push_back(nl.constant(true));
  const Bus product = wallace_multiplier(nl, ma, mb);  // width 2m+2, value in [2^2m, 2^(2m+2))
  const Bus ep = kogge_stone_adder(nl, extend(nl, a.exp, ew2, true), extend(nl, b.exp, ew2, true),
                                   nl.constant(false))
                     .sum;
  const NetId p_zero = nl.lor(a.is_zero, b.is_zero);

  // ---- align addend ------------------------------------------------------
  // Common fixed point: W-bit magnitudes with 2m fraction bits + 2 headroom.
  const int w = 2 * m + 4;
  Bus pmag = extend(nl, product, w, false);
  Bus cmag(static_cast<std::size_t>(w), nl.constant(false));
  for (int i = 0; i <= m; ++i) {  // (1.fc) scaled to 2m fraction bits
    cmag[static_cast<std::size_t>(m + i)] = i == m ? nl.constant(true) : c.frac[static_cast<std::size_t>(i)];
  }

  // diff = ep - ec (signed).
  const Bus ec = extend(nl, c.exp, ew2, true);
  const Bus diff = subtract(nl, ep, ec);
  const NetId c_bigger = diff.back();  // ep < ec
  const Bus abs_diff = conditional_negate(nl, diff, c_bigger);

  // Clamp the shift to the register width (larger shifts flush to zero).
  const int sw = count_width_for(w);
  Bus shift_amt = extend(nl, abs_diff, sw, false);
  Bus dropped;
  for (std::size_t i = static_cast<std::size_t>(sw); i < abs_diff.size(); ++i) dropped.push_back(abs_diff[i]);
  if (!dropped.empty()) {
    const NetId overflow = nl.reduce_or(dropped);
    for (auto& bit : shift_amt) bit = nl.lor(bit, overflow);
  }

  // Shift the smaller operand right (truncation; no sticky, round-to-zero).
  const Bus p_shifted = right_shifter(nl, pmag, shift_amt, nl.constant(false));
  const Bus c_shifted = right_shifter(nl, cmag, shift_amt, nl.constant(false));
  Bus big = nl.bus_mux(c_bigger, pmag, cmag);
  Bus small = nl.bus_mux(c_bigger, c_shifted, p_shifted);
  const Bus base_exp = nl.bus_mux(c_bigger, ep, ec);
  const NetId big_sign = nl.mux(c_bigger, sp, c.sign);
  const NetId small_sign = nl.mux(c_bigger, c.sign, sp);

  // Zero operands: replace with 0 magnitude (flags beat the datapath).
  const NetId big_is_zero = nl.mux(c_bigger, p_zero, c.is_zero);
  const NetId small_is_zero = nl.mux(c_bigger, c.is_zero, p_zero);
  for (auto& bit : big) bit = nl.land(bit, nl.lnot(big_is_zero));
  for (auto& bit : small) bit = nl.land(bit, nl.lnot(small_is_zero));

  // ---- add / subtract ----------------------------------------------------
  const NetId effective_sub = nl.lxor(big_sign, small_sign);
  // big +/- small; with magnitude order NOT guaranteed at equal exponents,
  // compute |big - small| via conditional recomplement.
  const Bus small_xor(nl.bus_xor(small, Bus(small.size(), effective_sub)));
  const SumCarry sum_sc = kogge_stone_adder(nl, big, small_xor, effective_sub);
  Bus sum = sum_sc.sum;
  // On subtraction, carry_out == 0 means small > big: recomplement.
  const NetId negative_result = nl.land(effective_sub, nl.lnot(sum_sc.carry_out));
  sum = conditional_negate(nl, sum, negative_result);
  const NetId sign_z = nl.lxor(big_sign, negative_result);
  // Addition may carry one bit beyond w.
  const NetId add_carry = nl.land(nl.lnot(effective_sub), sum_sc.carry_out);
  sum.push_back(add_carry);  // width w+1

  // ---- normalize ---------------------------------------------------------
  const LzdResult lz = leading_zero_detector(nl, sum);
  const NetId sum_zero = lz.all_zero;
  const Bus norm = left_shifter(nl, sum, lz.count);  // hidden one at bit w
  Bus frac_z;
  for (int i = 0; i < m; ++i) frac_z.push_back(norm[static_cast<std::size_t>(w - m + i)]);

  // exp_z = base_exp + (w - 2m) - lzcount  (hidden lands at bit w after the
  // shift; bit 2m carries weight 2^0 relative to base_exp).
  const Bus lz_ext = extend(nl, lz.count, ew2, false);
  const Bus offset = nl.constant_bus(static_cast<std::uint64_t>(w - 2 * m), ew2);
  const Bus exp_plus = kogge_stone_adder(nl, base_exp, offset, nl.constant(false)).sum;
  const Bus exp_z = subtract(nl, exp_plus, lz_ext);

  FpResult r;
  r.sign = nl.land(sign_z, nl.lnot(sum_zero));
  r.is_zero = sum_zero;
  r.exp = exp_z;
  r.frac = frac_z;
  return r;
}

Netlist make_fp_mac_netlist(const FpFormat& fmt) {
  Netlist nl;
  const auto operand = [&](const std::string& name) {
    FpOperand op;
    op.sign = nl.input(name + ".sign");
    op.is_zero = nl.input(name + ".is_zero");
    op.exp = nl.input_bus(name + ".exp", fmt.exp_width);
    op.frac = nl.input_bus(name + ".frac", fmt.frac_width);
    return op;
  };
  const FpOperand a = operand("a");
  const FpOperand b = operand("b");
  const FpOperand c = operand("c");
  const FpResult z = build_fp_mac(nl, fmt, a, b, c);
  nl.mark_output(z.sign, "z.sign");
  nl.mark_output(z.is_zero, "z.is_zero");
  nl.mark_output_bus(z.exp, "z.exp");
  nl.mark_output_bus(z.frac, "z.frac");
  return nl.pruned();
}

}  // namespace pdnn::hw
