#include "hw/components.hpp"

#include <stdexcept>

namespace pdnn::hw {

SumCarry ripple_adder(Netlist& nl, const Bus& a, const Bus& b, NetId cin) {
  if (a.size() != b.size()) throw std::invalid_argument("ripple_adder: width mismatch");
  SumCarry out;
  out.sum.resize(a.size());
  NetId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NetId axb = nl.lxor(a[i], b[i]);
    out.sum[i] = nl.lxor(axb, carry);
    // carry = a&b | carry&(a^b)
    carry = nl.lor(nl.land(a[i], b[i]), nl.land(carry, axb));
  }
  out.carry_out = carry;
  return out;
}

SumCarry kogge_stone_adder(Netlist& nl, const Bus& a, const Bus& b, NetId cin) {
  if (a.size() != b.size()) throw std::invalid_argument("kogge_stone_adder: width mismatch");
  const auto n = static_cast<int>(a.size());
  // Generate/propagate per bit; fold cin into bit 0's generate.
  Bus g(a.size()), p(a.size());
  for (int i = 0; i < n; ++i) {
    g[static_cast<std::size_t>(i)] = nl.land(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]);
    p[static_cast<std::size_t>(i)] = nl.lxor(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]);
  }
  Bus gg = g, pp = p;
  gg[0] = nl.lor(g[0], nl.land(p[0], cin));
  for (int step = 1; step < n; step <<= 1) {
    Bus g2 = gg, p2 = pp;
    for (int i = step; i < n; ++i) {
      g2[static_cast<std::size_t>(i)] =
          nl.lor(gg[static_cast<std::size_t>(i)],
                 nl.land(pp[static_cast<std::size_t>(i)], gg[static_cast<std::size_t>(i - step)]));
      p2[static_cast<std::size_t>(i)] =
          nl.land(pp[static_cast<std::size_t>(i)], pp[static_cast<std::size_t>(i - step)]);
    }
    gg = std::move(g2);
    pp = std::move(p2);
  }
  SumCarry out;
  out.sum.resize(a.size());
  out.sum[0] = nl.lxor(p[0], cin);
  for (int i = 1; i < n; ++i) {
    out.sum[static_cast<std::size_t>(i)] =
        nl.lxor(p[static_cast<std::size_t>(i)], gg[static_cast<std::size_t>(i - 1)]);
  }
  out.carry_out = gg[static_cast<std::size_t>(n - 1)];
  return out;
}

Bus incrementer(Netlist& nl, const Bus& a, NetId inc) {
  Bus sum(a.size());
  NetId carry = inc;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum[i] = nl.lxor(a[i], carry);
    carry = nl.land(a[i], carry);
  }
  return sum;
}

Bus prefix_and_scan(Netlist& nl, const Bus& a) {
  Bus p = a;
  const auto n = static_cast<int>(a.size());
  for (int step = 1; step < n; step <<= 1) {
    Bus next = p;
    for (int i = step; i < n; ++i) {
      next[static_cast<std::size_t>(i)] =
          nl.land(p[static_cast<std::size_t>(i)], p[static_cast<std::size_t>(i - step)]);
    }
    p = std::move(next);
  }
  return p;
}

Bus prefix_incrementer(Netlist& nl, const Bus& a, NetId inc) {
  // carry into bit i = inc & (a[0] & ... & a[i-1]).
  const Bus prefix = prefix_and_scan(nl, a);
  Bus sum(a.size());
  NetId carry = inc;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum[i] = nl.lxor(a[i], carry);
    if (i + 1 < a.size()) carry = nl.land(inc, prefix[i]);
  }
  return sum;
}

Bus negate(Netlist& nl, const Bus& a) { return prefix_incrementer(nl, nl.bus_not(a), nl.constant(true)); }

Bus conditional_negate(Netlist& nl, const Bus& a, NetId neg) {
  Bus flipped(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) flipped[i] = nl.lxor(a[i], neg);
  return prefix_incrementer(nl, flipped, neg);
}

Bus subtract(Netlist& nl, const Bus& a, const Bus& b) {
  return kogge_stone_adder(nl, a, nl.bus_not(b), nl.constant(true)).sum;
}

Bus left_shifter(Netlist& nl, const Bus& in, const Bus& amount) {
  // Stages consume the amount MSB-first: the slowest-arriving high bits of a
  // computed shift amount gate the first stage, as in a conventional
  // coarse-to-fine barrel shifter. (This is what makes the "+1" adder of the
  // original [6] codec sit fully on the critical path.)
  Bus cur = in;
  const auto width = static_cast<int>(in.size());
  for (std::size_t s = amount.size(); s-- > 0;) {
    const std::size_t stage = s;
    const int step = 1 << stage;
    if (step >= width) {
      // Shifting by >= width zeroes everything when this amount bit is set.
      Bus zeros(cur.size(), nl.constant(false));
      cur = nl.bus_mux(amount[stage], cur, zeros);
      continue;
    }
    Bus shifted(cur.size());
    for (int i = 0; i < width; ++i) {
      shifted[static_cast<std::size_t>(i)] =
          i >= step ? cur[static_cast<std::size_t>(i - step)] : nl.constant(false);
    }
    cur = nl.bus_mux(amount[stage], cur, shifted);
  }
  return cur;
}

Bus right_shifter(Netlist& nl, const Bus& in, const Bus& amount, NetId fill) {
  Bus cur = in;
  const auto width = static_cast<int>(in.size());
  for (std::size_t s = amount.size(); s-- > 0;) {
    const std::size_t stage = s;
    const int step = 1 << stage;
    if (step >= width) {
      Bus fills(cur.size(), fill);
      cur = nl.bus_mux(amount[stage], cur, fills);
      continue;
    }
    Bus shifted(cur.size());
    for (int i = 0; i < width; ++i) {
      shifted[static_cast<std::size_t>(i)] =
          i + step < width ? cur[static_cast<std::size_t>(i + step)] : fill;
    }
    cur = nl.bus_mux(amount[stage], cur, shifted);
  }
  return cur;
}

namespace {

/// Recursive LZD over an MSB-first view. `bits` is little-endian; we inspect
/// from the top. Width must be a power of two at each recursion level; the
/// public wrapper pads the LSB side with ones (a padding 1 can only be
/// "found" after every real bit was zero, making count == real width).
LzdResult lzd_pow2(Netlist& nl, const Bus& bits) {
  LzdResult r;
  if (bits.size() == 1) {
    r.all_zero = nl.lnot(bits[0]);
    return r;  // zero-width count
  }
  const std::size_t half = bits.size() / 2;
  const Bus low(bits.begin(), bits.begin() + static_cast<long>(half));
  const Bus high(bits.begin() + static_cast<long>(half), bits.end());
  const LzdResult rh = lzd_pow2(nl, high);
  const LzdResult rl = lzd_pow2(nl, low);
  r.all_zero = nl.land(rh.all_zero, rl.all_zero);
  r.count.resize(rh.count.size() + 1);
  // MSB of count: high half exhausted.
  r.count[rh.count.size()] = rh.all_zero;
  for (std::size_t i = 0; i < rh.count.size(); ++i) {
    r.count[i] = nl.mux(rh.all_zero, rh.count[i], rl.count[i]);
  }
  return r;
}

}  // namespace

LzdResult leading_zero_detector(Netlist& nl, const Bus& in) {
  // Pad (at the LSB side) to the next power of two with constant ones. Always
  // pad at least one bit so the count can represent in.size() (all-zero input)
  // exactly.
  std::size_t p2 = 1;
  while (p2 < in.size() + 1) p2 <<= 1;
  Bus padded;
  padded.reserve(p2);
  for (std::size_t i = 0; i < p2 - in.size(); ++i) padded.push_back(nl.constant(true));
  padded.insert(padded.end(), in.begin(), in.end());
  LzdResult r = lzd_pow2(nl, padded);
  // count can reach in.size() (all real bits zero hits the first pad one);
  // all_zero from the padded run is never true, so derive it from the count.
  r.all_zero = equals_zero(nl, nl.bus_xor(r.count, nl.constant_bus(in.size(), static_cast<int>(r.count.size()))));
  return r;
}

LzdResult leading_one_detector(Netlist& nl, const Bus& in) {
  return leading_zero_detector(nl, nl.bus_not(in));
}

Bus array_multiplier(Netlist& nl, const Bus& a, const Bus& b) {
  const std::size_t wa = a.size(), wb = b.size();
  Bus acc = nl.constant_bus(0, static_cast<int>(wa + wb));
  for (std::size_t j = 0; j < wb; ++j) {
    // Partial product a * b[j] aligned at position j, added into acc[j..].
    Bus partial(wa);
    for (std::size_t i = 0; i < wa; ++i) partial[i] = nl.land(a[i], b[j]);
    // Add into the accumulator slice [j, j+wa] with ripple carry.
    NetId carry = nl.constant(false);
    for (std::size_t i = 0; i < wa; ++i) {
      const NetId x = acc[j + i];
      const NetId axb = nl.lxor(x, partial[i]);
      acc[j + i] = nl.lxor(axb, carry);
      carry = nl.lor(nl.land(x, partial[i]), nl.land(carry, axb));
    }
    // Propagate the carry upward.
    for (std::size_t i = j + wa; i < wa + wb && carry != nl.constant(false); ++i) {
      const NetId x = acc[i];
      acc[i] = nl.lxor(x, carry);
      carry = nl.land(x, carry);
    }
  }
  return acc;
}

Bus wallace_multiplier(Netlist& nl, const Bus& a, const Bus& b) {
  const std::size_t wa = a.size(), wb = b.size();
  const std::size_t w = wa + wb;
  // Column-wise lists of partial-product bits.
  std::vector<std::vector<NetId>> cols(w);
  for (std::size_t j = 0; j < wb; ++j) {
    for (std::size_t i = 0; i < wa; ++i) {
      cols[i + j].push_back(nl.land(a[i], b[j]));
    }
  }
  // 3:2 (full adder) and 2:2 (half adder) reduction until every column has
  // at most two bits.
  bool busy = true;
  while (busy) {
    busy = false;
    std::vector<std::vector<NetId>> next(w);
    for (std::size_t c = 0; c < w; ++c) {
      auto& col = cols[c];
      std::size_t i = 0;
      while (col.size() - i >= 3) {
        const NetId x = col[i], y = col[i + 1], z = col[i + 2];
        i += 3;
        const NetId xy = nl.lxor(x, y);
        next[c].push_back(nl.lxor(xy, z));  // sum
        if (c + 1 < w) next[c + 1].push_back(nl.lor(nl.land(x, y), nl.land(xy, z)));  // carry
        busy = true;
      }
      if (col.size() - i == 2 && cols[c].size() > 2) {
        const NetId x = col[i], y = col[i + 1];
        i += 2;
        next[c].push_back(nl.lxor(x, y));
        if (c + 1 < w) next[c + 1].push_back(nl.land(x, y));
        busy = true;
      }
      for (; i < col.size(); ++i) next[c].push_back(col[i]);
    }
    cols = std::move(next);
    // Check whether any column still exceeds two bits.
    if (!busy) break;
    busy = false;
    for (const auto& col : cols) {
      if (col.size() > 2) {
        busy = true;
        break;
      }
    }
  }
  // Final carry-propagate add of the two remaining rows.
  Bus row0(w), row1(w);
  for (std::size_t c = 0; c < w; ++c) {
    row0[c] = cols[c].size() > 0 ? cols[c][0] : nl.constant(false);
    row1[c] = cols[c].size() > 1 ? cols[c][1] : nl.constant(false);
  }
  return kogge_stone_adder(nl, row0, row1, nl.constant(false)).sum;
}

NetId equals_zero(Netlist& nl, const Bus& a) { return nl.lnot(nl.reduce_or(a)); }

NetId less_than(Netlist& nl, const Bus& a, const Bus& b) {
  // a < b  <=>  borrow out of a - b.
  if (a.size() != b.size()) throw std::invalid_argument("less_than: width mismatch");
  const SumCarry diff = ripple_adder(nl, a, nl.bus_not(b), nl.constant(true));
  return nl.lnot(diff.carry_out);
}

Bus extend(Netlist& nl, const Bus& a, int width, bool sign_extend) {
  Bus out = a;
  const NetId pad = sign_extend ? a.back() : nl.constant(false);
  while (static_cast<int>(out.size()) < width) out.push_back(pad);
  if (static_cast<int>(out.size()) > width) out.resize(static_cast<std::size_t>(width));
  return out;
}

Bus slice(const Bus& a, int lo, int count) {
  return Bus(a.begin() + lo, a.begin() + lo + count);
}

}  // namespace pdnn::hw
