#include "hw/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/random.hpp"

namespace pdnn::hw {

TimingReport analyze_timing(const Netlist& nl) {
  std::vector<double> arrival(nl.net_count(), 0.0);
  std::vector<NetId> arrival_from(nl.net_count(), -1);

  for (const auto& g : nl.gates()) {
    if (g.kind == CellKind::kConst || g.kind == CellKind::kInput) {
      arrival[static_cast<std::size_t>(g.out)] = 0.0;
      continue;
    }
    double worst = 0.0;
    NetId worst_in = -1;
    for (int i = 0; i < cell_arity(g.kind); ++i) {
      // Mux select is stored in in[2] for arity-3 cells.
      const NetId in = g.in[static_cast<std::size_t>(i == 2 ? 2 : i)];
      if (in < 0) continue;
      if (arrival[static_cast<std::size_t>(in)] >= worst) {
        worst = arrival[static_cast<std::size_t>(in)];
        worst_in = in;
      }
    }
    arrival[static_cast<std::size_t>(g.out)] = worst + cell_params(g.kind).delay_ns;
    arrival_from[static_cast<std::size_t>(g.out)] = worst_in;
  }

  TimingReport report;
  NetId worst_out = -1;
  for (const NetId out : nl.outputs()) {
    if (arrival[static_cast<std::size_t>(out)] > report.critical_delay_ns) {
      report.critical_delay_ns = arrival[static_cast<std::size_t>(out)];
      worst_out = out;
    }
  }
  for (NetId n = worst_out; n >= 0; n = arrival_from[static_cast<std::size_t>(n)]) {
    report.critical_path.push_back(n);
  }
  std::reverse(report.critical_path.begin(), report.critical_path.end());
  return report;
}

PowerReport analyze_power(const Netlist& nl, double freq_mhz, int vectors, std::uint64_t seed) {
  tensor::Rng rng(seed);
  const std::size_t in_count = nl.inputs().size();
  std::vector<std::uint8_t> inputs(in_count, 0);
  for (auto& v : inputs) v = static_cast<std::uint8_t>(rng.next_u64() & 1u);
  std::vector<std::uint8_t> prev = nl.evaluate(inputs);

  std::vector<std::uint64_t> toggles(nl.net_count(), 0);
  for (int vec = 0; vec < vectors; ++vec) {
    for (auto& v : inputs) v = static_cast<std::uint8_t>(rng.next_u64() & 1u);
    const auto cur = nl.evaluate(inputs);
    for (std::size_t n = 0; n < cur.size(); ++n) {
      if (cur[n] != prev[n]) ++toggles[n];
    }
    prev = cur;
  }

  PowerReport report;
  double energy_per_cycle_fj = 0.0;
  double leakage_nw = 0.0;
  double total_toggles = 0.0;
  for (const auto& g : nl.gates()) {
    const CellParams& p = cell_params(g.kind);
    leakage_nw += p.leakage_nw;
    const double activity = static_cast<double>(toggles[static_cast<std::size_t>(g.out)]) / vectors;
    energy_per_cycle_fj += activity * p.energy_fj;
    total_toggles += activity;
  }
  // mW = fJ/cycle * cycles/s = fJ * MHz * 1e6 * 1e-15 * 1e3.
  report.dynamic_mw = energy_per_cycle_fj * freq_mhz * 1e-6;
  report.leakage_mw = leakage_nw * 1e-6;
  report.toggles_per_cycle = total_toggles;
  return report;
}

int pipeline_stages(double delay_ns, double freq_mhz) {
  const double cycle_ns = 1000.0 / freq_mhz;
  const int stages = static_cast<int>(std::ceil(delay_ns / cycle_ns - 1e-9));
  return stages < 1 ? 1 : stages;
}

CircuitReport characterize(const Netlist& nl, const std::string& name, double freq_mhz, int vectors) {
  CircuitReport r;
  r.name = name;
  r.gates = nl.gate_count();
  r.area_um2 = nl.total_area_um2();
  r.delay_ns = analyze_timing(nl).critical_delay_ns;
  r.power_mw = analyze_power(nl, freq_mhz, vectors).total_mw();
  return r;
}

}  // namespace pdnn::hw
