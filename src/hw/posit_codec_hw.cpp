#include "hw/posit_codec_hw.hpp"

#include <stdexcept>

namespace pdnn::hw {

namespace {

/// Width of the count buses produced by the LZD/LOD over the n-1 bit body.
int count_width_for(int body_bits) {
  int w = 1;
  while ((1 << w) < body_bits + 1) ++w;
  return w;
}

struct DecoderCoreOut {
  Bus eff_exp;
  Bus mantissa;
};

/// The Fig. 5 datapath: magnitude body (in[n-2:0]) -> effective exponent and
/// left-aligned mantissa. Sign handling and special codes live outside, as in
/// the paper's figure.
DecoderCoreOut decoder_core(Netlist& nl, const PositHwSpec& spec, const Bus& body, bool optimized) {
  const int n = spec.n;

  // Regime polarity and run lengths.
  const NetId r0 = body[static_cast<std::size_t>(n - 2)];  // first regime bit
  const LzdResult lzd = leading_zero_detector(nl, body);   // run of 0s (r0 == 0)
  const LzdResult lod = leading_one_detector(nl, body);    // run of 1s (r0 == 1)
  const int cw = count_width_for(n - 1);

  // body << (count + 1): drop the regime run and its terminator, leaving
  // [exponent | fraction] left-aligned at bit n-2.
  Bus shifted;
  if (!optimized) {
    // Fig. 5a: count mux -> "+1" incrementer -> single shifter. The amount
    // bus is widened one bit so count+1 == n-1+1 does not wrap.
    const Bus count = nl.bus_mux(r0, lzd.count, lod.count);
    const Bus amount = incrementer(nl, extend(nl, count, cw + 1, false), nl.constant(true));
    shifted = left_shifter(nl, body, amount);
  } else {
    // Fig. 5b: two shifters in parallel; the "+1" becomes a free one-bit
    // rewire (pre-shift the positive path's input; post-shift the negative
    // path's output); a bus mux selects at the end.
    Bus body_pre(body.size());  // body << 1 by wiring
    for (std::size_t i = 0; i < body.size(); ++i) {
      body_pre[i] = i == 0 ? nl.constant(false) : body[i - 1];
    }
    const Bus s_pos = left_shifter(nl, body_pre, lod.count);
    const Bus s_neg_raw = left_shifter(nl, body, lzd.count);
    Bus s_neg(s_neg_raw.size());  // << 1 by wiring after Left Shifter2
    for (std::size_t i = 0; i < s_neg_raw.size(); ++i) {
      s_neg[i] = i == 0 ? nl.constant(false) : s_neg_raw[i - 1];
    }
    shifted = nl.bus_mux(r0, s_neg, s_pos);
  }

  // Exponent field: top es bits of the shifted body; fraction: the rest.
  Bus e_bits;
  for (int i = 0; i < spec.es; ++i) {
    e_bits.push_back(shifted[static_cast<std::size_t>(n - 2 - spec.es + 1 + i)]);
  }
  DecoderCoreOut out;
  out.mantissa = slice(shifted, 0, spec.frac_width());

  // Regime value k: count-1 for positive runs, -count for negative runs.
  // Narrow arithmetic in parallel with the wide shifter (both variants).
  const int kw = cw + 1;  // signed k
  const Bus lod_ext = extend(nl, lod.count, kw, false);
  const Bus lzd_ext = extend(nl, lzd.count, kw, false);
  const Bus k_pos = subtract(nl, lod_ext, nl.constant_bus(1, kw));
  const Bus k_neg = negate(nl, lzd_ext);
  const Bus k = nl.bus_mux(r0, k_neg, k_pos);

  // effective_exp = k * 2^es + e: pure wiring concatenation {k, e}.
  out.eff_exp = e_bits;
  for (const NetId bit : k) out.eff_exp.push_back(bit);
  out.eff_exp = extend(nl, out.eff_exp, spec.exp_width(), true);
  return out;
}

/// The Fig. 6 datapath: (effective exponent, mantissa) -> magnitude body,
/// truncation rounding. `underflow_clamp` adds a minpos floor for callers
/// whose exponents can fall below posit range (the MAC); exponents produced
/// by a decoder are always in range, and Fig. 6 itself has no such clamp.
Bus encoder_core(Netlist& nl, const PositHwSpec& spec, const Bus& eff_exp, const Bus& mantissa,
                 bool optimized, bool underflow_clamp) {
  const int n = spec.n;

  // k = eff_exp >> es (arithmetic; wiring only), e = eff_exp[es-1:0].
  const int kw = spec.exp_width() - spec.es;
  Bus e_bits = slice(eff_exp, 0, spec.es);
  Bus k = slice(eff_exp, spec.es, kw);
  const NetId neg_regime = k.back();

  // Absolute regime value (conditional negate; in both variants, Fig. 6).
  const Bus r = conditional_negate(nl, k, neg_regime);

  // REM register, 2n bits (paper: "a 2n-bit variable REM is constructed"):
  // left-aligned pattern {marker, e, f, zeros}, then shifted right by the
  // regime width. Positive regimes shift by r+1 with ONE fill; negative
  // regimes shift by r with ZERO fill.
  const int w = 2 * n;
  Bus rem(static_cast<std::size_t>(w), nl.constant(false));
  for (int i = 0; i < spec.frac_width(); ++i) {
    rem[static_cast<std::size_t>(w - 2 - spec.es - spec.frac_width() + 1 + i)] =
        mantissa[static_cast<std::size_t>(i)];
  }
  for (int i = 0; i < spec.es; ++i) {
    rem[static_cast<std::size_t>(w - 2 + 1 - spec.es + i)] = e_bits[static_cast<std::size_t>(i)];
  }
  Bus rem_neg = rem;
  rem_neg[static_cast<std::size_t>(w - 1)] = nl.constant(true);   // terminator for "0..01 e f"
  Bus rem_pos = rem;
  rem_pos[static_cast<std::size_t>(w - 1)] = nl.constant(false);  // terminator for "1..10 e f"

  // Clamp the shift amount into the shifter's range (r can exceed n for
  // out-of-range exponents coming from the FP MAC).
  const int sw = count_width_for(w);
  Bus r_sh = extend(nl, r, sw, false);
  Bus high_bits;
  for (std::size_t i = static_cast<std::size_t>(sw); i < r.size(); ++i) high_bits.push_back(r[i]);
  if (!high_bits.empty()) {
    const NetId overflow = nl.reduce_or(high_bits);
    for (auto& bit : r_sh) bit = nl.lor(bit, overflow);
  }

  Bus shifted;
  if (!optimized) {
    // Fig. 6a: pattern mux; the shift amount is r or r+1, selected by a mux
    // AFTER the "+1" incrementer — both sit on the shifter's amount path.
    // The amount bus is widened one bit so the +1 cannot wrap at saturation.
    const Bus pattern = nl.bus_mux(neg_regime, rem_pos, rem_neg);
    const NetId fill = nl.lnot(neg_regime);
    const Bus r_ext = extend(nl, r_sh, sw + 1, false);
    const Bus r_plus_1 = incrementer(nl, r_ext, nl.constant(true));
    const Bus amount = nl.bus_mux(neg_regime, r_plus_1, r_ext);
    shifted = right_shifter(nl, pattern, amount, fill);
  } else {
    // Fig. 6b: two shifters in parallel; ">>1" after the positive one is a
    // free rewire with a constant 1 filled at the top.
    const Bus s_neg = right_shifter(nl, rem_neg, r_sh, nl.constant(false));
    const Bus s_pos_raw = right_shifter(nl, rem_pos, r_sh, nl.constant(true));
    Bus s_pos(s_pos_raw.size());
    for (std::size_t i = 0; i < s_pos_raw.size(); ++i) {
      s_pos[i] = i + 1 < s_pos_raw.size() ? s_pos_raw[i + 1] : nl.constant(true);
    }
    shifted = nl.bus_mux(neg_regime, s_pos, s_neg);
  }

  // Truncate: body = top n-1 bits (round toward zero).
  Bus body;
  for (int i = 0; i < n - 1; ++i) body.push_back(shifted[static_cast<std::size_t>(w - (n - 1) + i)]);

  if (underflow_clamp) {
    // A non-zero value must not encode as 0 (minpos floor); the zero flag
    // (handled outside the core) overrides the whole code anyway.
    const NetId body_zero = equals_zero(nl, body);
    body[0] = nl.lor(body[0], body_zero);
  }
  return body;
}

}  // namespace

DecoderPorts build_decoder(Netlist& nl, const PositHwSpec& spec, const Bus& code, bool optimized) {
  const int n = spec.n;
  if (static_cast<int>(code.size()) != n) throw std::invalid_argument("decoder: code width mismatch");

  DecoderPorts p;
  p.code_in = code;
  p.sign = code[static_cast<std::size_t>(n - 1)];

  // Special codes: 000..0 and 100..0.
  const Bus low_bits = slice(code, 0, n - 1);
  const NetId low_zero = equals_zero(nl, low_bits);
  p.is_zero = nl.land(low_zero, nl.lnot(p.sign));
  p.is_nar = nl.land(low_zero, p.sign);

  // Two's complement for negative codes, then the Fig. 5 magnitude datapath.
  const Bus mag = conditional_negate(nl, code, p.sign);
  const Bus body = slice(mag, 0, n - 1);  // bits [n-2:0]
  const DecoderCoreOut core = decoder_core(nl, spec, body, optimized);
  p.eff_exp = core.eff_exp;
  p.mantissa = core.mantissa;
  return p;
}

EncoderPorts build_encoder(Netlist& nl, const PositHwSpec& spec, NetId sign, NetId is_zero, NetId is_nar,
                           const Bus& eff_exp, const Bus& mantissa, bool optimized) {
  const int n = spec.n;
  if (static_cast<int>(eff_exp.size()) != spec.exp_width() ||
      static_cast<int>(mantissa.size()) != spec.frac_width()) {
    throw std::invalid_argument("encoder: field width mismatch");
  }
  EncoderPorts p;
  p.sign = sign;
  p.is_zero = is_zero;
  p.is_nar = is_nar;
  p.eff_exp = eff_exp;
  p.mantissa = mantissa;

  const Bus body = encoder_core(nl, spec, eff_exp, mantissa, optimized, /*underflow_clamp=*/true);

  // Sign application: two's complement of {0, body}; then the special codes.
  Bus full(body);
  full.push_back(nl.constant(false));  // sign bit position
  Bus signed_code = conditional_negate(nl, full, sign);

  // zero -> 00...0 ; NaR -> 10...0.
  Bus final_code(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    NetId bit = signed_code[static_cast<std::size_t>(i)];
    bit = nl.land(bit, nl.lnot(is_zero));
    bit = nl.land(bit, nl.lnot(is_nar));
    if (i == n - 1) bit = nl.lor(bit, is_nar);
    final_code[static_cast<std::size_t>(i)] = bit;
  }
  p.code_out = final_code;
  return p;
}

Netlist make_decoder_netlist(const PositHwSpec& spec, bool optimized) {
  // The standalone Table IV decoder is the Fig. 5 datapath: it consumes the
  // magnitude body in[n-2:0] (sign/special handling is outside the figure).
  Netlist nl;
  const Bus body = nl.input_bus("body", spec.n - 1);
  const DecoderCoreOut core = decoder_core(nl, spec, body, optimized);
  nl.mark_output_bus(core.eff_exp, "eff_exp");
  nl.mark_output_bus(core.mantissa, "mantissa");
  return nl.pruned();
}

Netlist make_encoder_netlist(const PositHwSpec& spec, bool optimized) {
  // The standalone Table IV encoder is the Fig. 6 datapath.
  Netlist nl;
  const Bus eff_exp = nl.input_bus("eff_exp", spec.exp_width());
  const Bus mantissa = nl.input_bus("mantissa", spec.frac_width());
  const Bus body = encoder_core(nl, spec, eff_exp, mantissa, optimized, /*underflow_clamp=*/false);
  nl.mark_output_bus(body, "body");
  return nl.pruned();
}

}  // namespace pdnn::hw
