// analysis.hpp — static timing analysis and activity-based power estimation.
#pragma once

#include <string>
#include <vector>

#include "hw/netlist.hpp"

namespace pdnn::hw {

struct TimingReport {
  double critical_delay_ns = 0.0;
  std::vector<NetId> critical_path;  ///< nets along the slowest path, input to output
};

/// Longest path through the DAG, summing cell delays (zero wire delay).
TimingReport analyze_timing(const Netlist& nl);

struct PowerReport {
  double dynamic_mw = 0.0;   ///< activity * energy * frequency
  double leakage_mw = 0.0;
  double total_mw() const { return dynamic_mw + leakage_mw; }
  double toggles_per_cycle = 0.0;  ///< average net toggles per input vector
};

/// Simulates `vectors` random input transitions, counts output toggles per
/// gate, and converts to power at `freq_mhz`. Deterministic given `seed`.
PowerReport analyze_power(const Netlist& nl, double freq_mhz, int vectors = 2000,
                          std::uint64_t seed = 0xACDC);

struct CircuitReport {
  std::string name;
  std::size_t gates = 0;
  double area_um2 = 0.0;
  double delay_ns = 0.0;
  double power_mw = 0.0;
};

/// Full characterization at `freq_mhz` (the paper uses 750 MHz for Table V).
CircuitReport characterize(const Netlist& nl, const std::string& name, double freq_mhz = 750.0,
                           int vectors = 2000);

/// Pipeline stages needed to meet a clock target (the paper's units are
/// synthesized "with a timing constraint of 750MHz", i.e. pipelined): the
/// combinational critical path divided into cycle-sized chunks.
int pipeline_stages(double delay_ns, double freq_mhz);

}  // namespace pdnn::hw
