// accel_model.hpp — first-order DNN training accelerator cost model.
//
// The paper's conclusion argues: "If the posit is applied in DNN accelerators,
// the overhead caused by data communications can be saved by 2-4x" — 16-bit
// posit halves and 8-bit posit quarters every tensor transfer relative to
// FP32, and the MAC energy shrinks per Table V. This model combines
//   * per-layer tensor traffic (weights, activations, errors, gradients,
//     following the three dataflows of Fig. 3), and
//   * MAC operation counts,
// with per-bit transfer energies and the gate-level per-MAC energies from
// src/hw to estimate energy per training step — the Section V projection.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pdnn::hw {

/// One convolutional (or FC, with h=w=1, k=1) layer's geometry.
struct LayerGeom {
  std::string name;
  std::size_t in_c = 0, out_c = 0;
  std::size_t in_h = 1, in_w = 1;
  std::size_t kernel = 1;
  std::size_t stride = 1;
  std::size_t out_h() const { return (in_h + stride - 1) / stride; }
  std::size_t out_w() const { return (in_w + stride - 1) / stride; }

  std::size_t weight_count() const { return out_c * in_c * kernel * kernel; }
  std::size_t activation_count() const { return out_c * out_h() * out_w(); }
  std::size_t input_count() const { return in_c * in_h * in_w; }
  /// MACs of one forward pass (backward costs ~2x this: dX and dW).
  std::size_t forward_macs() const { return out_c * out_h() * out_w() * in_c * kernel * kernel; }
};

/// The Cifar-ResNet-18-ish stack the paper trains (batch-of-1 granularity).
std::vector<LayerGeom> cifar_resnet18_geometry();

struct EnergyParams {
  double bits_per_value = 32.0;     ///< numeric format width
  double mac_energy_pj = 0.0;       ///< per-MAC energy (from the gate model)
  double dram_pj_per_bit = 5.0;     ///< off-chip transfer energy
  double sram_pj_per_bit = 0.15;    ///< on-chip buffer energy
};

struct TrainingStepCost {
  double mac_count = 0.0;           ///< forward + backward + weight-update MACs
  double traffic_bits = 0.0;        ///< W + A + E + dW movement (Fig. 3 flows)
  double compute_energy_uj = 0.0;
  double dram_energy_uj = 0.0;
  double sram_energy_uj = 0.0;
  double total_energy_uj() const { return compute_energy_uj + dram_energy_uj + sram_energy_uj; }
};

/// Energy of one training step (one image) over the layer stack.
TrainingStepCost training_step_cost(const std::vector<LayerGeom>& net, const EnergyParams& params);

}  // namespace pdnn::hw
