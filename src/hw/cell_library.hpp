// cell_library.hpp — a calibrated 28nm-like standard-cell library.
//
// Substitution (DESIGN.md §2): the paper synthesizes Verilog with Design
// Compiler on TSMC 28nm. We model circuits as netlists of these primitive
// cells; STA sums cell delays along paths, area sums cell footprints, and
// dynamic power combines measured toggle activity with per-cell switching
// energy. The absolute numbers are calibrated to the same order of magnitude
// as the paper's tables (e.g. a ~5k-gate FP32 MAC lands near 4322 um^2 /
// 2.5 mW @ 750 MHz); the claims under test are the RELATIVE costs.
#pragma once

#include <cstdint>

namespace pdnn::hw {

enum class CellKind : std::uint8_t {
  kInv,
  kBuf,
  kAnd2,
  kOr2,
  kNand2,
  kNor2,
  kXor2,
  kXnor2,
  kMux2,   ///< out = sel ? b : a   (inputs: a, b, sel)
  kConst,  ///< constant driver (no delay, no power)
  kInput,  ///< primary input marker
};

struct CellParams {
  double delay_ns;      ///< pin-to-pin delay, nominal load
  double area_um2;      ///< placed cell area
  double energy_fj;     ///< switching energy per output toggle
  double leakage_nw;    ///< static leakage power
};

/// Cell characteristics, 28nm-like. Indexed by CellKind.
const CellParams& cell_params(CellKind kind);

const char* cell_name(CellKind kind);

/// Number of data inputs a cell consumes.
int cell_arity(CellKind kind);

}  // namespace pdnn::hw
