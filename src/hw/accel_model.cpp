#include "hw/accel_model.hpp"

namespace pdnn::hw {

std::vector<LayerGeom> cifar_resnet18_geometry() {
  // Cifar-ResNet-18: conv1 + 8 basic blocks (2 per stage x 4 "paired" stages
  // in the 18-layer Cifar variant the paper trains: 16-16-32-64 channels at
  // 32x32 -> 8x8) + FC. Downsample 1x1 convs included where the stride drops.
  std::vector<LayerGeom> net;
  const auto conv = [&](const std::string& name, std::size_t ic, std::size_t oc, std::size_t hw,
                        std::size_t k, std::size_t s) {
    net.push_back(LayerGeom{name, ic, oc, hw, hw, k, s});
  };
  conv("conv1", 3, 16, 32, 3, 1);
  // stage 1: 2 blocks, 16ch @ 32x32
  for (int b = 0; b < 2; ++b) {
    conv("s1b" + std::to_string(b) + ".conv1", 16, 16, 32, 3, 1);
    conv("s1b" + std::to_string(b) + ".conv2", 16, 16, 32, 3, 1);
  }
  // stage 2: 2 blocks, 16->32ch, 32x32 -> 16x16
  conv("s2b0.conv1", 16, 32, 32, 3, 2);
  conv("s2b0.conv2", 32, 32, 16, 3, 1);
  conv("s2b0.down", 16, 32, 32, 1, 2);
  conv("s2b1.conv1", 32, 32, 16, 3, 1);
  conv("s2b1.conv2", 32, 32, 16, 3, 1);
  // stage 3: 2 blocks, 32->64ch, 16x16 -> 8x8
  conv("s3b0.conv1", 32, 64, 16, 3, 2);
  conv("s3b0.conv2", 64, 64, 8, 3, 1);
  conv("s3b0.down", 32, 64, 16, 1, 2);
  conv("s3b1.conv1", 64, 64, 8, 3, 1);
  conv("s3b1.conv2", 64, 64, 8, 3, 1);
  // classifier
  conv("fc", 64, 10, 1, 1, 1);
  return net;
}

TrainingStepCost training_step_cost(const std::vector<LayerGeom>& net, const EnergyParams& params) {
  TrainingStepCost cost;
  for (const LayerGeom& layer : net) {
    const double fwd = static_cast<double>(layer.forward_macs());
    // Fig. 3: forward conv, backward dX conv (same volume), backward dW conv
    // (same volume), plus the elementwise weight update.
    const double macs = 3.0 * fwd + static_cast<double>(layer.weight_count());
    cost.mac_count += macs;

    // Traffic per Fig. 3's tensors: W read twice (fwd, bwd) + written once
    // (update); A written fwd + read bwd; E read + written; dW written + read.
    const double w_traffic = 3.0 * static_cast<double>(layer.weight_count());
    const double a_traffic = 2.0 * static_cast<double>(layer.activation_count()) +
                             static_cast<double>(layer.input_count());
    const double e_traffic = 2.0 * static_cast<double>(layer.activation_count());
    const double g_traffic = 2.0 * static_cast<double>(layer.weight_count());
    const double values = w_traffic + a_traffic + e_traffic + g_traffic;
    const double bits = values * params.bits_per_value;
    cost.traffic_bits += bits;

    cost.compute_energy_uj += macs * params.mac_energy_pj * 1e-6;
    // Weights/gradients stream from DRAM; activations/errors mostly hit SRAM.
    const double dram_bits = (w_traffic + g_traffic) * params.bits_per_value;
    const double sram_bits = bits - dram_bits;
    cost.dram_energy_uj += dram_bits * params.dram_pj_per_bit * 1e-6;
    cost.sram_energy_uj += sram_bits * params.sram_pj_per_bit * 1e-6;
  }
  return cost;
}

}  // namespace pdnn::hw
