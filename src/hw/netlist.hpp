// netlist.hpp — structural combinational netlists.
//
// A Netlist is a DAG of standard cells built programmatically (the C++
// equivalent of parameterized Verilog generate blocks). Nets are integer ids;
// a Bus is a little-endian vector of nets (bus[0] = LSB). Gates must be
// created after their fan-ins, so gate order is already topological — the
// evaluator and timing analysis exploit that.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "hw/cell_library.hpp"

namespace pdnn::hw {

using NetId = std::int32_t;
using Bus = std::vector<NetId>;

struct Gate {
  CellKind kind;
  std::array<NetId, 3> in{-1, -1, -1};
  NetId out = -1;
};

class Netlist {
 public:
  Netlist();

  // --- construction ------------------------------------------------------
  NetId input(const std::string& name);
  Bus input_bus(const std::string& name, int width);
  NetId constant(bool value) { return value ? const1_ : const0_; }
  Bus constant_bus(std::uint64_t value, int width);

  /// out = sel ? b : a.
  NetId mux(NetId sel, NetId a, NetId b);
  NetId land(NetId a, NetId b);
  NetId lor(NetId a, NetId b);
  NetId lnand(NetId a, NetId b);
  NetId lnor(NetId a, NetId b);
  NetId lxor(NetId a, NetId b);
  NetId lxnor(NetId a, NetId b);
  NetId lnot(NetId a);
  NetId lbuf(NetId a);

  /// Reduction over a bus (balanced tree).
  NetId reduce_or(const Bus& b);
  NetId reduce_and(const Bus& b);
  /// Bitwise ops over equal-width buses.
  Bus bus_xor(const Bus& a, const Bus& b);
  Bus bus_and(const Bus& a, const Bus& b);
  Bus bus_not(const Bus& a);
  /// Per-bit 2:1 mux of two equal-width buses.
  Bus bus_mux(NetId sel, const Bus& a, const Bus& b);

  void mark_output(NetId net, const std::string& name);
  void mark_output_bus(const Bus& bus, const std::string& name);

  /// Dead-logic elimination: returns an equivalent netlist containing only
  /// gates in the transitive fan-in of the marked outputs (what synthesis
  /// does automatically). Primary inputs are all preserved, in order, so the
  /// evaluate() interface is unchanged.
  Netlist pruned() const;

  // --- introspection ------------------------------------------------------
  std::size_t gate_count() const;       ///< logic cells (excl. const/input)
  std::size_t net_count() const { return next_net_; }
  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<NetId>& inputs() const { return input_nets_; }
  const std::vector<NetId>& outputs() const { return output_nets_; }
  const std::string& output_name(std::size_t i) const { return output_names_[i]; }

  double total_area_um2() const;

  // --- functional simulation ----------------------------------------------
  /// Evaluate with the given primary-input values; returns values for every
  /// net (indexable by NetId).
  std::vector<std::uint8_t> evaluate(const std::vector<std::uint8_t>& input_values) const;

  /// Convenience: pack output nets into a uint64 (outputs[0] = LSB of result
  /// if marked via mark_output_bus in LSB-first order).
  std::uint64_t outputs_as_u64(const std::vector<std::uint8_t>& net_values) const;

 private:
  NetId new_net() { return next_net_++; }
  NetId emit(CellKind kind, NetId a, NetId b = -1, NetId c = -1);

  std::vector<Gate> gates_;
  NetId next_net_ = 0;
  NetId const0_ = -1, const1_ = -1;
  std::vector<NetId> input_nets_;
  std::vector<std::string> input_names_;
  std::vector<NetId> output_nets_;
  std::vector<std::string> output_names_;
};

/// Helper views over buses.
std::uint64_t bus_value(const Bus& bus, const std::vector<std::uint8_t>& net_values);
void set_bus_inputs(const Bus& bus, std::uint64_t value, std::vector<std::uint8_t>& input_values,
                    const Netlist& nl);

}  // namespace pdnn::hw
