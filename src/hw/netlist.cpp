#include "hw/netlist.hpp"

#include <stdexcept>
#include <unordered_map>

namespace pdnn::hw {

Netlist::Netlist() {
  const0_ = emit(CellKind::kConst, -1);
  const1_ = emit(CellKind::kConst, -1);
}

NetId Netlist::emit(CellKind kind, NetId a, NetId b, NetId c) {
  Gate g;
  g.kind = kind;
  g.in = {a, b, c};
  g.out = new_net();
  gates_.push_back(g);
  return g.out;
}

NetId Netlist::input(const std::string& name) {
  const NetId net = emit(CellKind::kInput, -1);
  input_nets_.push_back(net);
  input_names_.push_back(name);
  return net;
}

Bus Netlist::input_bus(const std::string& name, int width) {
  Bus bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) bus.push_back(input(name + "[" + std::to_string(i) + "]"));
  return bus;
}

Bus Netlist::constant_bus(std::uint64_t value, int width) {
  Bus bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) bus.push_back(constant(((value >> i) & 1u) != 0));
  return bus;
}

NetId Netlist::mux(NetId sel, NetId a, NetId b) {
  if (a == b) return a;
  if (sel == const0_) return a;
  if (sel == const1_) return b;
  return emit(CellKind::kMux2, a, b, sel);
}

NetId Netlist::land(NetId a, NetId b) {
  if (a == const0_ || b == const0_) return const0_;
  if (a == const1_) return b;
  if (b == const1_) return a;
  if (a == b) return a;
  return emit(CellKind::kAnd2, a, b);
}

NetId Netlist::lor(NetId a, NetId b) {
  if (a == const1_ || b == const1_) return const1_;
  if (a == const0_) return b;
  if (b == const0_) return a;
  if (a == b) return a;
  return emit(CellKind::kOr2, a, b);
}

NetId Netlist::lnand(NetId a, NetId b) {
  if (a == const0_ || b == const0_) return const1_;
  if (a == const1_) return lnot(b);
  if (b == const1_) return lnot(a);
  return emit(CellKind::kNand2, a, b);
}

NetId Netlist::lnor(NetId a, NetId b) {
  if (a == const1_ || b == const1_) return const0_;
  if (a == const0_) return lnot(b);
  if (b == const0_) return lnot(a);
  return emit(CellKind::kNor2, a, b);
}

NetId Netlist::lxor(NetId a, NetId b) {
  if (a == const0_) return b;
  if (b == const0_) return a;
  if (a == const1_) return lnot(b);
  if (b == const1_) return lnot(a);
  if (a == b) return const0_;
  return emit(CellKind::kXor2, a, b);
}

NetId Netlist::lxnor(NetId a, NetId b) {
  if (a == const0_) return lnot(b);
  if (b == const0_) return lnot(a);
  if (a == const1_) return b;
  if (b == const1_) return a;
  if (a == b) return const1_;
  return emit(CellKind::kXnor2, a, b);
}

NetId Netlist::lnot(NetId a) {
  if (a == const0_) return const1_;
  if (a == const1_) return const0_;
  return emit(CellKind::kInv, a);
}

NetId Netlist::lbuf(NetId a) { return emit(CellKind::kBuf, a); }

NetId Netlist::reduce_or(const Bus& b) {
  if (b.empty()) return const0_;
  std::vector<NetId> level = b;
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) next.push_back(lor(level[i], level[i + 1]));
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

NetId Netlist::reduce_and(const Bus& b) {
  if (b.empty()) return const1_;
  std::vector<NetId> level = b;
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) next.push_back(land(level[i], level[i + 1]));
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

Bus Netlist::bus_xor(const Bus& a, const Bus& b) {
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = lxor(a[i], b[i]);
  return out;
}

Bus Netlist::bus_and(const Bus& a, const Bus& b) {
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = land(a[i], b[i]);
  return out;
}

Bus Netlist::bus_not(const Bus& a) {
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = lnot(a[i]);
  return out;
}

Bus Netlist::bus_mux(NetId sel, const Bus& a, const Bus& b) {
  if (a.size() != b.size()) throw std::invalid_argument("bus_mux: width mismatch");
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = mux(sel, a[i], b[i]);
  return out;
}

void Netlist::mark_output(NetId net, const std::string& name) {
  output_nets_.push_back(net);
  output_names_.push_back(name);
}

void Netlist::mark_output_bus(const Bus& bus, const std::string& name) {
  for (std::size_t i = 0; i < bus.size(); ++i) mark_output(bus[i], name + "[" + std::to_string(i) + "]");
}

std::size_t Netlist::gate_count() const {
  std::size_t n = 0;
  for (const auto& g : gates_) {
    if (g.kind != CellKind::kConst && g.kind != CellKind::kInput) ++n;
  }
  return n;
}

double Netlist::total_area_um2() const {
  double area = 0.0;
  for (const auto& g : gates_) area += cell_params(g.kind).area_um2;
  return area;
}

Netlist Netlist::pruned() const {
  // Mark live nets backward from the outputs.
  std::vector<bool> live(static_cast<std::size_t>(next_net_), false);
  for (const NetId out : output_nets_) live[static_cast<std::size_t>(out)] = true;
  for (std::size_t gi = gates_.size(); gi-- > 0;) {
    const Gate& g = gates_[gi];
    if (!live[static_cast<std::size_t>(g.out)]) continue;
    for (const NetId in : g.in) {
      if (in >= 0) live[static_cast<std::size_t>(in)] = true;
    }
  }

  Netlist out;
  std::vector<NetId> remap(static_cast<std::size_t>(next_net_), -1);
  remap[static_cast<std::size_t>(const0_)] = out.const0_;
  remap[static_cast<std::size_t>(const1_)] = out.const1_;
  std::size_t input_idx = 0;
  for (const Gate& g : gates_) {
    if (g.kind == CellKind::kConst) continue;  // already present in `out`
    if (g.kind == CellKind::kInput) {
      // Keep every primary input to preserve the evaluate() interface.
      remap[static_cast<std::size_t>(g.out)] = out.input(input_names_[input_idx++]);
      continue;
    }
    if (!live[static_cast<std::size_t>(g.out)]) continue;
    Gate ng = g;
    for (auto& in : ng.in) {
      if (in >= 0) in = remap[static_cast<std::size_t>(in)];
    }
    ng.out = out.new_net();
    remap[static_cast<std::size_t>(g.out)] = ng.out;
    out.gates_.push_back(ng);
  }
  for (std::size_t i = 0; i < output_nets_.size(); ++i) {
    out.mark_output(remap[static_cast<std::size_t>(output_nets_[i])], output_names_[i]);
  }
  return out;
}

std::vector<std::uint8_t> Netlist::evaluate(const std::vector<std::uint8_t>& input_values) const {
  if (input_values.size() != input_nets_.size()) {
    throw std::invalid_argument("evaluate: expected " + std::to_string(input_nets_.size()) + " inputs, got " +
                                std::to_string(input_values.size()));
  }
  std::vector<std::uint8_t> values(static_cast<std::size_t>(next_net_), 0);
  std::size_t input_idx = 0;
  for (const auto& g : gates_) {
    std::uint8_t v = 0;
    switch (g.kind) {
      case CellKind::kConst:
        v = g.out == const1_ ? 1 : 0;
        break;
      case CellKind::kInput:
        v = input_values[input_idx++] & 1u;
        break;
      case CellKind::kInv:
        v = !values[static_cast<std::size_t>(g.in[0])];
        break;
      case CellKind::kBuf:
        v = values[static_cast<std::size_t>(g.in[0])];
        break;
      case CellKind::kAnd2:
        v = values[static_cast<std::size_t>(g.in[0])] & values[static_cast<std::size_t>(g.in[1])];
        break;
      case CellKind::kOr2:
        v = values[static_cast<std::size_t>(g.in[0])] | values[static_cast<std::size_t>(g.in[1])];
        break;
      case CellKind::kNand2:
        v = !(values[static_cast<std::size_t>(g.in[0])] & values[static_cast<std::size_t>(g.in[1])]);
        break;
      case CellKind::kNor2:
        v = !(values[static_cast<std::size_t>(g.in[0])] | values[static_cast<std::size_t>(g.in[1])]);
        break;
      case CellKind::kXor2:
        v = values[static_cast<std::size_t>(g.in[0])] ^ values[static_cast<std::size_t>(g.in[1])];
        break;
      case CellKind::kXnor2:
        v = !(values[static_cast<std::size_t>(g.in[0])] ^ values[static_cast<std::size_t>(g.in[1])]);
        break;
      case CellKind::kMux2:
        v = values[static_cast<std::size_t>(g.in[2])] ? values[static_cast<std::size_t>(g.in[1])]
                                                      : values[static_cast<std::size_t>(g.in[0])];
        break;
    }
    values[static_cast<std::size_t>(g.out)] = v;
  }
  return values;
}

std::uint64_t Netlist::outputs_as_u64(const std::vector<std::uint8_t>& net_values) const {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < output_nets_.size() && i < 64; ++i) {
    out |= static_cast<std::uint64_t>(net_values[static_cast<std::size_t>(output_nets_[i])] & 1u) << i;
  }
  return out;
}

std::uint64_t bus_value(const Bus& bus, const std::vector<std::uint8_t>& net_values) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    out |= static_cast<std::uint64_t>(net_values[static_cast<std::size_t>(bus[i])] & 1u) << i;
  }
  return out;
}

void set_bus_inputs(const Bus& bus, std::uint64_t value, std::vector<std::uint8_t>& input_values,
                    const Netlist& nl) {
  // Map net id -> input slot (inputs are few; linear scan is fine at setup).
  for (std::size_t b = 0; b < bus.size(); ++b) {
    bool found = false;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      if (nl.inputs()[i] == bus[b]) {
        input_values[i] = static_cast<std::uint8_t>((value >> b) & 1u);
        found = true;
        break;
      }
    }
    if (!found) throw std::invalid_argument("set_bus_inputs: net is not a primary input");
  }
}

}  // namespace pdnn::hw
