#include "serve/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "tensor/ops.hpp"

namespace pdnn::serve {

using tensor::Tensor;

Engine::Engine(const BackendFactory& factory, const EngineConfig& cfg)
    : cfg_(cfg), factory_(factory) {
  if (!factory_) throw std::invalid_argument("serve::Engine: BackendFactory is empty");
  if (cfg_.workers == 0) throw std::invalid_argument("serve::Engine: workers must be >= 1");
  if (cfg_.max_batch == 0) throw std::invalid_argument("serve::Engine: max_batch must be >= 1");
  stats_.batch_hist.assign(cfg_.max_batch + 1, 0);
  backends_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i) {
    backends_.push_back(factory_());
    if (!backends_.back()) {
      throw std::invalid_argument("serve::Engine: BackendFactory returned null");
    }
  }
  threads_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Engine::Engine(const exec::Backend& prototype, const EngineConfig& cfg)
    : Engine(BackendFactory([spare = std::shared_ptr<exec::Backend>(prototype.clone())] {
               return spare->clone();
             }),
             cfg) {}

Engine::~Engine() { shutdown(); }

std::future<Tensor> Engine::submit(Tensor sample) {
  return submit_impl(std::move(sample), Clock::time_point::max());
}

std::future<Tensor> Engine::submit(Tensor sample, Clock::time_point deadline) {
  return submit_impl(std::move(sample), deadline);
}

std::future<Tensor> Engine::submit(Tensor sample, std::chrono::microseconds budget) {
  return submit_impl(std::move(sample), Clock::now() + budget);
}

std::future<Tensor> Engine::submit_impl(Tensor sample, Clock::time_point deadline) {
  const std::size_t rank = sample.shape().rank();
  if (rank == 0 || rank > 3 || sample.numel() == 0) {
    throw std::invalid_argument("serve::Engine::submit: sample must be rank 1..3 and non-empty, "
                                "got " + sample.shape().to_string());
  }
  Request req;
  req.sample = std::move(sample);
  req.arrival = Clock::now();
  req.deadline = deadline;
  std::future<Tensor> future = req.promise.get_future();

  bool have_victim = false;
  Request victim;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!accepting_) throw ShutdownError("serve::Engine::submit: engine is shut down");
    if (cfg_.max_queue != 0 && queue_.size() >= cfg_.max_queue) {
      switch (cfg_.overload) {
        case OverloadPolicy::kReject:
          ++stats_.rejected;
          throw QueueFullError("serve::Engine::submit: queue full (max_queue = " +
                               std::to_string(cfg_.max_queue) + ", policy kReject)");
        case OverloadPolicy::kBlock:
          // Backpressure: wait for a worker to drain space. shutdown() wakes
          // every blocked submitter (accepting_ flips under mu_ before the
          // notify, so the wakeup cannot be lost) and they fail typed.
          cv_.wait(lock, [this] { return !accepting_ || queue_.size() < cfg_.max_queue; });
          if (!accepting_) {
            throw ShutdownError(
                "serve::Engine::submit: engine shut down while blocked on queue space");
          }
          break;
        case OverloadPolicy::kShedOldest:
          victim = std::move(queue_.front());
          queue_.pop_front();
          have_victim = true;
          ++stats_.shed;
          ++stats_.completed;  // its future resolves (with ShedError) below
          break;
      }
    }
    queue_.push_back(std::move(req));
    ++stats_.submitted;
  }
  cv_.notify_all();
  if (have_victim) {
    victim.promise.set_exception(std::make_exception_ptr(ShedError(
        "serve::Engine: request shed to admit a newer arrival (kShedOldest overload)")));
  }
  return future;
}

std::size_t Engine::batchable_prefix() const {
  const tensor::Shape& shape = queue_.front().sample.shape();
  std::size_t count = 0;
  for (const Request& r : queue_) {
    if (r.sample.shape() != shape) break;
    if (++count == cfg_.max_batch) break;
  }
  return count;
}

bool Engine::scan_full_batch(std::vector<std::size_t>& picks) const {
  // Only called when the head's own prefix hasn't filled a batch, so this is
  // the mixed-shape slow path; the common uniform-traffic case never scans.
  // The first shape to reach max_batch wins — tallying in arrival order
  // keeps relief batches FIFO-fair among themselves.
  std::vector<std::pair<const tensor::Shape*, std::vector<std::size_t>>> groups;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const tensor::Shape& shape = queue_[i].sample.shape();
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return *g.first == shape; });
    if (it == groups.end()) {
      groups.emplace_back(&shape, std::vector<std::size_t>{});
      it = std::prev(groups.end());
    }
    it->second.push_back(i);
    if (it->second.size() == cfg_.max_batch) {
      picks = it->second;
      return true;
    }
  }
  return false;
}

void Engine::reap_expired(Clock::time_point now, std::vector<Request>& expired) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deadline <= now) {
      expired.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

Engine::Clock::time_point Engine::earliest_deadline() const {
  auto earliest = Clock::time_point::max();
  for (const Request& r : queue_) earliest = std::min(earliest, r.deadline);
  return earliest;
}

bool Engine::try_run(exec::Backend& backend, std::vector<Request>& reqs, std::size_t lo,
                     std::size_t hi, Tensor& batch, std::vector<const Tensor*>& gather,
                     std::exception_ptr& err) {
  gather.clear();
  for (std::size_t i = lo; i < hi; ++i) gather.push_back(&reqs[i].sample);
  try {
    tensor::stack_samples(gather.data(), gather.size(), batch);
    const Tensor& out = backend.run(batch);
    // Copy each row out of the backend-owned buffer before this worker's
    // next run() (the Backend output contract).
    for (std::size_t i = lo; i < hi; ++i) {
      Tensor row;
      tensor::extract_sample(out, i - lo, row);
      try {
        reqs[i].promise.set_value(std::move(row));
      } catch (const std::future_error&) {
        // Already satisfied by an earlier partial scatter of a retried span.
      }
    }
    return true;
  } catch (...) {
    err = std::current_exception();
    return false;
  }
}

void Engine::run_span(exec::Backend& backend, std::vector<Request>& reqs, std::size_t lo,
                      std::size_t hi, Tensor& batch, std::vector<const Tensor*>& gather,
                      std::uint64_t& retries, std::size_t& consecutive) {
  std::exception_ptr err;
  if (try_run(backend, reqs, lo, hi, batch, gather, err)) {
    consecutive = 0;
    return;
  }
  ++consecutive;
  if (hi - lo <= 1) {
    // One more chance absorbs a transient worker fault; a deterministic
    // failure (poison sample, plan-shape mismatch) fails again and the
    // exception goes to exactly this future.
    ++retries;
    if (try_run(backend, reqs, lo, hi, batch, gather, err)) {
      consecutive = 0;
      return;
    }
    ++consecutive;
    try {
      reqs[lo].promise.set_exception(err);
    } catch (const std::future_error&) {
      // set_value already succeeded for this request; nothing to fail.
    }
    return;
  }
  // Bisect: healthy halves complete normally, the poison half keeps
  // splitting until the culprit stands alone.
  const std::size_t mid = lo + (hi - lo) / 2;
  retries += 2;
  run_span(backend, reqs, lo, mid, batch, gather, retries, consecutive);
  run_span(backend, reqs, mid, hi, batch, gather, retries, consecutive);
}

void Engine::quarantine_and_rebuild(std::size_t worker, std::size_t& worker_rebuilds) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.quarantines;
  }
  // Exponential backoff per rebuild of this worker, interruptible so
  // shutdown() never waits behind a quarantine sleep.
  const auto backoff =
      cfg_.rebuild_backoff * (1ULL << std::min<std::size_t>(worker_rebuilds, 10));
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, backoff, [this] { return stopping_; });
  }
  try {
    std::unique_ptr<exec::Backend> fresh;
    {
      std::lock_guard<std::mutex> rebuild_lock(rebuild_mu_);
      fresh = factory_();
    }
    if (!fresh) throw std::runtime_error("serve::Engine: BackendFactory returned null");
    backends_[worker] = std::move(fresh);  // only this worker touches its slot
    ++worker_rebuilds;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rebuilds;
  } catch (...) {
    // Keep the old backend: it may yet recover, and the drain path must keep
    // resolving futures (with exceptions if need be) rather than wedge.
  }
}

void Engine::worker_loop(std::size_t worker) {
  // Steady-state serving reuses these across batches (grow-only storage).
  Tensor batch;
  std::vector<Request> taken;
  std::vector<Request> expired;
  std::vector<const Tensor*> gather;
  taken.reserve(cfg_.max_batch);
  gather.reserve(cfg_.max_batch);

  std::vector<std::size_t> picks;
  std::size_t consecutive = 0;     // backend throws since the last clean run
  std::size_t worker_rebuilds = 0; // backoff exponent for this worker
  for (;;) {
    taken.clear();
    expired.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        // Deadline reaping first: an expired request is failed before any
        // assembly decision, so it can neither join a fresh batch nor hold
        // the head slot. Delivery happens outside the lock, then this
        // worker comes straight back for a batch.
        reap_expired(Clock::now(), expired);
        if (!expired.empty()) {
          stats_.deadline_expired += expired.size();
          break;
        }
        if (queue_.empty()) {
          if (stopping_) return;
          cv_.wait(lock);
          continue;
        }
        // The head request anchors this batch: its shape selects the
        // batchable prefix, its arrival time the dispatch deadline. Another
        // worker may steal the head while we wait, so every wake recomputes
        // from scratch. A saturated bounded queue releases the time
        // watermark — under admission pressure there is nothing to gain by
        // coalescing longer.
        const std::size_t n = batchable_prefix();
        const auto batch_deadline = queue_.front().arrival + cfg_.batch_timeout;
        const bool saturated = cfg_.max_queue != 0 && queue_.size() >= cfg_.max_queue;
        if (n >= cfg_.max_batch || stopping_ || saturated ||
            Clock::now() >= batch_deadline) {
          for (std::size_t i = 0; i < n; ++i) {
            taken.push_back(std::move(queue_.front()));
            queue_.pop_front();
          }
          break;  // size watermark, drain, saturation, or time watermark
        }
        // Head-of-line relief: the head's shape can't fill a batch yet, but
        // a full batch of a later shape may be ready behind it. Take it out
        // of the middle — the rest of the queue keeps its relative order,
        // and the head keeps its deadline.
        if (queue_.size() > n && scan_full_batch(picks)) {
          for (const std::size_t idx : picks) taken.push_back(std::move(queue_[idx]));
          for (auto it = picks.rbegin(); it != picks.rend(); ++it) {
            queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(*it));
          }
          break;
        }
        // Sleep to the nearest of the batch watermark and the earliest
        // per-request deadline, so expiry is delivered on time even when
        // batch_timeout is far away.
        cv_.wait_until(lock, std::min(batch_deadline, earliest_deadline()));
      }
      if (!taken.empty()) {
        ++stats_.batches;
        ++stats_.batch_hist[taken.size()];
      }
    }
    // Queue shrank (batch taken or requests reaped): wake blocked kBlock
    // submitters and any worker waiting on the old head.
    cv_.notify_all();

    if (!expired.empty()) {
      const auto err = std::make_exception_ptr(DeadlineExceededError(
          "serve::Engine: request deadline expired while queued (never reached a backend)"));
      for (Request& r : expired) r.promise.set_exception(err);
      std::lock_guard<std::mutex> lock(mu_);
      stats_.completed += expired.size();
      continue;
    }

    std::uint64_t retries = 0;
    run_span(*backends_[worker], taken, 0, taken.size(), batch, gather, retries, consecutive);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.completed += taken.size();
      stats_.retries += retries;
    }
    if (cfg_.quarantine_threshold != 0 && consecutive >= cfg_.quarantine_threshold) {
      consecutive = 0;
      quarantine_and_rebuild(worker, worker_rebuilds);
    }
  }
}

void Engine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    stopping_ = true;
  }
  // The flags flipped under mu_, so every cv_ waiter — draining workers,
  // quarantine sleeps, and kBlock-blocked submitters — re-checks them after
  // this notify: no lost wakeup, no future left hanging.
  cv_.notify_all();
  // Serialize the join loop: shutdown() may race itself (explicit call vs
  // destructor, or two owners), and std::thread::join is not.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace pdnn::serve
