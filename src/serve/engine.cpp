#include "serve/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "tensor/ops.hpp"

namespace pdnn::serve {

using tensor::Tensor;

Engine::Engine(const BackendFactory& factory, const EngineConfig& cfg) : cfg_(cfg) {
  if (cfg_.workers == 0) throw std::invalid_argument("serve::Engine: workers must be >= 1");
  if (cfg_.max_batch == 0) throw std::invalid_argument("serve::Engine: max_batch must be >= 1");
  stats_.batch_hist.assign(cfg_.max_batch + 1, 0);
  backends_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i) backends_.push_back(factory());
  threads_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Engine::Engine(const exec::Backend& prototype, const EngineConfig& cfg)
    : Engine([&prototype] { return prototype.clone(); }, cfg) {}

Engine::~Engine() { shutdown(); }

std::future<Tensor> Engine::submit(Tensor sample) {
  const std::size_t rank = sample.shape().rank();
  if (rank == 0 || rank > 3 || sample.numel() == 0) {
    throw std::invalid_argument("serve::Engine::submit: sample must be rank 1..3 and non-empty, "
                                "got " + sample.shape().to_string());
  }
  Request req;
  req.sample = std::move(sample);
  req.arrival = std::chrono::steady_clock::now();
  std::future<Tensor> future = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_) throw std::runtime_error("serve::Engine::submit: engine is shut down");
    queue_.push_back(std::move(req));
    ++stats_.submitted;
  }
  cv_.notify_all();
  return future;
}

std::size_t Engine::batchable_prefix() const {
  const tensor::Shape& shape = queue_.front().sample.shape();
  std::size_t count = 0;
  for (const Request& r : queue_) {
    if (r.sample.shape() != shape) break;
    if (++count == cfg_.max_batch) break;
  }
  return count;
}

bool Engine::scan_full_batch(std::vector<std::size_t>& picks) const {
  // Only called when the head's own prefix hasn't filled a batch, so this is
  // the mixed-shape slow path; the common uniform-traffic case never scans.
  // The first shape to reach max_batch wins — tallying in arrival order
  // keeps relief batches FIFO-fair among themselves.
  std::vector<std::pair<const tensor::Shape*, std::vector<std::size_t>>> groups;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const tensor::Shape& shape = queue_[i].sample.shape();
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return *g.first == shape; });
    if (it == groups.end()) {
      groups.emplace_back(&shape, std::vector<std::size_t>{});
      it = std::prev(groups.end());
    }
    it->second.push_back(i);
    if (it->second.size() == cfg_.max_batch) {
      picks = it->second;
      return true;
    }
  }
  return false;
}

void Engine::worker_loop(std::size_t worker) {
  exec::Backend& backend = *backends_[worker];
  // Steady-state serving reuses these across batches (grow-only storage).
  Tensor batch;
  std::vector<Request> taken;
  std::vector<const Tensor*> gather;
  taken.reserve(cfg_.max_batch);
  gather.reserve(cfg_.max_batch);

  std::vector<std::size_t> picks;
  for (;;) {
    taken.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (queue_.empty()) {
          if (stopping_) return;
          cv_.wait(lock);
          continue;
        }
        // The head request anchors this batch: its shape selects the
        // batchable prefix, its arrival time the dispatch deadline. Another
        // worker may steal the head while we wait, so every wake recomputes
        // from scratch.
        const std::size_t n = batchable_prefix();
        const auto deadline = queue_.front().arrival + cfg_.batch_timeout;
        if (n >= cfg_.max_batch || stopping_ ||
            std::chrono::steady_clock::now() >= deadline) {
          for (std::size_t i = 0; i < n; ++i) {
            taken.push_back(std::move(queue_.front()));
            queue_.pop_front();
          }
          break;  // size watermark, drain, or time watermark: take the batch
        }
        // Head-of-line relief: the head's shape can't fill a batch yet, but
        // a full batch of a later shape may be ready behind it. Take it out
        // of the middle — the rest of the queue keeps its relative order,
        // and the head keeps its deadline.
        if (queue_.size() > n && scan_full_batch(picks)) {
          for (const std::size_t idx : picks) taken.push_back(std::move(queue_[idx]));
          for (auto it = picks.rbegin(); it != picks.rend(); ++it) {
            queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(*it));
          }
          break;
        }
        cv_.wait_until(lock, deadline);
      }
      ++stats_.batches;
      ++stats_.batch_hist[taken.size()];
    }
    cv_.notify_all();  // more queued work (or drain progress) may be waiting

    gather.clear();
    for (const Request& r : taken) gather.push_back(&r.sample);
    try {
      tensor::stack_samples(gather.data(), gather.size(), batch);
      const Tensor& out = backend.run(batch);
      // Copy each row out of the backend-owned buffer before this worker's
      // next run() (the Backend output contract).
      for (std::size_t i = 0; i < taken.size(); ++i) {
        Tensor row;
        tensor::extract_sample(out, i, row);
        taken[i].promise.set_value(std::move(row));
      }
    } catch (...) {
      // A failed batch fails all of its requests; the engine keeps serving.
      const std::exception_ptr err = std::current_exception();
      for (Request& r : taken) {
        try {
          r.promise.set_exception(err);
        } catch (const std::future_error&) {
          // set_value already succeeded for this request; nothing to fail.
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.completed += taken.size();
    }
  }
}

void Engine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace pdnn::serve
