// engine.hpp — the async serving front-end: many callers, one compiled plan.
//
// serve::Engine turns the single-caller exec::Backend contract into a
// many-caller service (cf. marian's background batch assembly and pisa's
// phased async queues). It owns a pool of worker threads, each with its own
// clone() of a prototype backend — independent weight panels, arenas, and
// scratch over the same read-only module graph — and a shared FIFO of
// single-sample requests:
//
//   * submit(sample) enqueues one sample (the plan's input shape without the
//     batch axis) and returns a std::future for its output row;
//     submit(sample, deadline) additionally bounds how long the request may
//     wait in the queue;
//   * workers coalesce requests into batches under two watermarks — dispatch
//     as soon as `max_batch` same-shape requests are queued, or when the
//     oldest pending request has waited `batch_timeout`, whichever first;
//   * a batch is gathered with tensor::stack_samples, run through the
//     worker's own backend, and scattered back with tensor::extract_sample —
//     each row is COPIED into its future before the worker's next run(), per
//     the Backend output contract;
//   * shutdown() (and the destructor) stops accepting, drains every pending
//     request to completion, and joins the workers — no lost futures.
//
// Correctness bar: because both backends compute every output row in a
// per-sample deterministic order (GEMM rows, conv per-image loops, and
// elementwise ops never mix batch rows), a batched answer is bit-identical
// to running the same sample alone through the same backend — whatever
// batch its neighbors landed in. serve.engine locks this in.
//
// Batching only coalesces requests whose sample shapes match. The head of
// the FIFO anchors dispatch: its shape selects the contiguous same-shape
// prefix and its arrival time the deadline, so no request ever waits past
// its own batch_timeout. One relief valve avoids head-of-line blocking: when
// the head's shape has NOT yet filled a batch but a full max_batch of some
// later shape is already queued behind it, that full batch dispatches
// immediately (first shape to fill wins, tallied in arrival order; the
// remaining queue keeps its relative order). An odd-shaped head therefore
// delays only itself — never a ready batch of the majority shape — and
// still cannot starve, because its time watermark is untouched.
//
// ## Overload and failure containment (the degrade-gracefully layer)
//
//   * Bounded admission: with max_queue > 0, a full queue triggers the
//     configured OverloadPolicy — kReject fails submit() fast with
//     QueueFullError; kBlock applies backpressure (the submitter waits for
//     space, or for shutdown, which throws ShutdownError); kShedOldest
//     drops the oldest pending request (its future fails with ShedError)
//     to admit the new one. A saturated queue also releases the time
//     watermark: workers dispatch without waiting for batch_timeout.
//   * Deadlines: an expired request is failed with DeadlineExceededError at
//     batch-assembly time, before any backend work is spent on it, and is
//     never gathered into a batch — one stale request cannot poison a
//     fresh batch, and an expired odd-shape head stops blocking instantly.
//   * Fault isolation: a batch whose backend run throws is retried by
//     bisection — sub-batches that pass complete their futures normally,
//     and only the isolated poison sample(s) receive the exception. A
//     failed single-sample run is retried once more to absorb transient
//     faults before its future is failed. A worker whose backend throws
//     quarantine_threshold times consecutively (with no intervening
//     successful run) is quarantined: the worker backs off exponentially
//     (rebuild_backoff doubling per rebuild) and its backend is rebuilt
//     from the stored BackendFactory — a poisoned clone cannot degrade the
//     pool forever. All of it is counted in EngineStats and exercised by
//     exec::FaultInjectingBackend in tests/serve/fault_test.cpp and
//     bench_serve --chaos.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/backend.hpp"
#include "serve/errors.hpp"
#include "tensor/tensor.hpp"

namespace pdnn::serve {

/// What submit() does when the queue already holds max_queue requests.
enum class OverloadPolicy {
  kReject,     ///< fail fast: submit() throws QueueFullError
  kBlock,      ///< backpressure: submit() waits for space (or ShutdownError)
  kShedOldest  ///< drop the oldest pending request (its future: ShedError)
};

struct EngineConfig {
  /// Worker threads == backend clones. Each worker runs whole batches, so
  /// workers scale throughput across cores; on a single core they overlap
  /// batch assembly with execution.
  std::size_t workers = 1;
  /// Size watermark: dispatch immediately once this many same-shape requests
  /// are pending (also the gather buffer's steady-state capacity).
  std::size_t max_batch = 8;
  /// Time watermark: dispatch a partial batch once its oldest request has
  /// waited this long. 0 disables coalescing delay (greedy dispatch).
  std::chrono::microseconds batch_timeout{200};
  /// Admission bound: maximum requests waiting in the queue (in-flight
  /// batches excluded). 0 = unbounded (the pre-overload behavior).
  std::size_t max_queue = 0;
  /// Applied when max_queue > 0 and the queue is full.
  OverloadPolicy overload = OverloadPolicy::kReject;
  /// Consecutive backend throws (no intervening successful run) before a
  /// worker is quarantined and its backend rebuilt. 0 disables quarantine.
  std::size_t quarantine_threshold = 3;
  /// Base backoff slept before a quarantined worker's backend is rebuilt;
  /// doubles per rebuild of that worker (capped at 2^10 x base). The sleep
  /// is interruptible by shutdown().
  std::chrono::milliseconds rebuild_backoff{1};
};

/// Counters for observability and the bench's batch-size histogram. A
/// consistent snapshot under the engine lock.
struct EngineStats {
  std::uint64_t submitted = 0;  ///< requests admitted to the queue
  std::uint64_t completed = 0;  ///< futures fulfilled (exceptions included)
  std::uint64_t batches = 0;
  std::uint64_t rejected = 0;          ///< submit() failed fast (kReject)
  std::uint64_t shed = 0;              ///< oldest-pending drops (kShedOldest)
  std::uint64_t deadline_expired = 0;  ///< failed at assembly, never ran
  std::uint64_t retries = 0;           ///< backend re-runs after a failed run
  std::uint64_t quarantines = 0;       ///< workers taken out for rebuild
  std::uint64_t rebuilds = 0;          ///< backends rebuilt from the factory
  /// batch_hist[s] = batches dispatched with exactly s samples
  /// (index 0 unused; size max_batch + 1).
  std::vector<std::uint64_t> batch_hist;
};

class Engine {
 public:
  using BackendFactory = std::function<std::unique_ptr<exec::Backend>()>;
  using Clock = std::chrono::steady_clock;

  /// Pool built by calling `factory` once per worker. The factory is stored:
  /// quarantine rebuilds call it again, so it must stay valid (and safe to
  /// call from a worker thread, serialized by the engine) for the engine's
  /// lifetime.
  Engine(const BackendFactory& factory, const EngineConfig& cfg);
  /// Pool built by clone()ing `prototype` once per worker. The engine keeps
  /// its own pristine clone as the rebuild source, so the prototype itself
  /// may go out of scope after construction.
  Engine(const exec::Backend& prototype, const EngineConfig& cfg);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Drains pending requests (shutdown()) before destruction.
  ~Engine();

  /// Enqueue one sample — the plan input without its batch axis (rank 1..3,
  /// non-empty) — and return the future for its output row. Thread-safe.
  /// Throws std::invalid_argument on a degenerate sample, ShutdownError
  /// after shutdown(), and QueueFullError when the queue is full under
  /// OverloadPolicy::kReject. The future resolves to the output copied out
  /// of the worker backend, or to the exception the backend threw for this
  /// sample (its healthy batch neighbors are unaffected — see the
  /// bisection-retry notes above), or to ShedError / DeadlineExceededError
  /// when the engine dropped the request before it ran.
  std::future<tensor::Tensor> submit(tensor::Tensor sample);
  /// As submit(sample), with a queue-residency bound: if `deadline` passes
  /// while the request is still waiting, its future fails with
  /// DeadlineExceededError and no backend work is spent on it.
  std::future<tensor::Tensor> submit(tensor::Tensor sample, Clock::time_point deadline);
  /// Convenience: deadline = now + budget.
  std::future<tensor::Tensor> submit(tensor::Tensor sample, std::chrono::microseconds budget);

  /// Stop accepting, wake any blocked submitters (they throw ShutdownError),
  /// drain every pending request to completion, join the workers.
  /// Idempotent and safe to call concurrently; called by the destructor.
  void shutdown();

  EngineStats stats() const;
  std::size_t workers() const { return backends_.size(); }
  const EngineConfig& config() const { return cfg_; }

 private:
  struct Request {
    tensor::Tensor sample;
    std::promise<tensor::Tensor> promise;
    Clock::time_point arrival;
    Clock::time_point deadline;  ///< time_point::max() = none
  };

  std::future<tensor::Tensor> submit_impl(tensor::Tensor sample, Clock::time_point deadline);
  void worker_loop(std::size_t worker);
  /// Length of the contiguous same-shape prefix of the queue, capped at
  /// max_batch. Caller holds mu_.
  std::size_t batchable_prefix() const;
  /// Head-of-line relief: scan the whole queue tallying shapes in arrival
  /// order; if some shape has max_batch requests pending, fill `picks` with
  /// the queue indices of its first max_batch requests and return true.
  /// Caller holds mu_.
  bool scan_full_batch(std::vector<std::size_t>& picks) const;
  /// Move every request whose deadline has passed into `expired` (queue
  /// order preserved). Caller holds mu_.
  void reap_expired(Clock::time_point now, std::vector<Request>& expired);
  /// Earliest request deadline in the queue (time_point::max() if none).
  /// Caller holds mu_.
  Clock::time_point earliest_deadline() const;

  /// Run reqs[lo,hi) through `backend` and fulfil their promises. Returns
  /// true on success; on failure stores the exception in `err`. Never
  /// throws.
  bool try_run(exec::Backend& backend, std::vector<Request>& reqs, std::size_t lo,
               std::size_t hi, tensor::Tensor& batch, std::vector<const tensor::Tensor*>& gather,
               std::exception_ptr& err);
  /// Bisection fault isolation: run reqs[lo,hi); on failure split and retry
  /// each half (a singleton is retried once, then failed with the backend's
  /// exception). `retries` counts backend re-runs; `consecutive` tracks
  /// throws since the worker's last successful run (reset to 0 on success).
  void run_span(exec::Backend& backend, std::vector<Request>& reqs, std::size_t lo,
                std::size_t hi, tensor::Tensor& batch,
                std::vector<const tensor::Tensor*>& gather, std::uint64_t& retries,
                std::size_t& consecutive);
  /// Back off (exponential in this worker's rebuild count, interruptible by
  /// shutdown) and rebuild backends_[worker] from the stored factory. A
  /// factory failure keeps the old backend so the queue still drains.
  void quarantine_and_rebuild(std::size_t worker, std::size_t& worker_rebuilds);

  EngineConfig cfg_;
  BackendFactory factory_;  ///< stored for quarantine rebuilds
  std::vector<std::unique_ptr<exec::Backend>> backends_;
  std::vector<std::thread> threads_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool accepting_ = true;
  bool stopping_ = false;
  EngineStats stats_;

  /// Serializes quarantine rebuild factory calls (a prototype-clone factory
  /// shares one pristine backend; clone() on it must not race itself).
  std::mutex rebuild_mu_;
  /// Serializes the join loop: shutdown() is safe to call concurrently
  /// (destructor racing an explicit shutdown), and std::thread::join from
  /// two threads at once is not.
  std::mutex join_mu_;
};

}  // namespace pdnn::serve
