// engine.hpp — the async serving front-end: many callers, one compiled plan.
//
// serve::Engine turns the single-caller exec::Backend contract into a
// many-caller service (cf. marian's background batch assembly and pisa's
// phased async queues). It owns a pool of worker threads, each with its own
// clone() of a prototype backend — independent weight panels, arenas, and
// scratch over the same read-only module graph — and a shared FIFO of
// single-sample requests:
//
//   * submit(sample) enqueues one sample (the plan's input shape without the
//     batch axis) and returns a std::future for its output row;
//   * workers coalesce requests into batches under two watermarks — dispatch
//     as soon as `max_batch` same-shape requests are queued, or when the
//     oldest pending request has waited `batch_timeout`, whichever first;
//   * a batch is gathered with tensor::stack_samples, run through the
//     worker's own backend, and scattered back with tensor::extract_sample —
//     each row is COPIED into its future before the worker's next run(), per
//     the Backend output contract;
//   * shutdown() (and the destructor) stops accepting, drains every pending
//     request to completion, and joins the workers — no lost futures.
//
// Correctness bar: because both backends compute every output row in a
// per-sample deterministic order (GEMM rows, conv per-image loops, and
// elementwise ops never mix batch rows), a batched answer is bit-identical
// to running the same sample alone through the same backend — whatever
// batch its neighbors landed in. serve.engine locks this in.
//
// Batching only coalesces requests whose sample shapes match. The head of
// the FIFO anchors dispatch: its shape selects the contiguous same-shape
// prefix and its arrival time the deadline, so no request ever waits past
// its own batch_timeout. One relief valve avoids head-of-line blocking: when
// the head's shape has NOT yet filled a batch but a full max_batch of some
// later shape is already queued behind it, that full batch dispatches
// immediately (first shape to fill wins, tallied in arrival order; the
// remaining queue keeps its relative order). An odd-shaped head therefore
// delays only itself — never a ready batch of the majority shape — and
// still cannot starve, because its time watermark is untouched.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/backend.hpp"
#include "tensor/tensor.hpp"

namespace pdnn::serve {

struct EngineConfig {
  /// Worker threads == backend clones. Each worker runs whole batches, so
  /// workers scale throughput across cores; on a single core they overlap
  /// batch assembly with execution.
  std::size_t workers = 1;
  /// Size watermark: dispatch immediately once this many same-shape requests
  /// are pending (also the gather buffer's steady-state capacity).
  std::size_t max_batch = 8;
  /// Time watermark: dispatch a partial batch once its oldest request has
  /// waited this long. 0 disables coalescing delay (greedy dispatch).
  std::chrono::microseconds batch_timeout{200};
};

/// Counters for observability and the bench's batch-size histogram. A
/// consistent snapshot under the engine lock.
struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< futures fulfilled (exceptions included)
  std::uint64_t batches = 0;
  /// batch_hist[s] = batches dispatched with exactly s samples
  /// (index 0 unused; size max_batch + 1).
  std::vector<std::uint64_t> batch_hist;
};

class Engine {
 public:
  using BackendFactory = std::function<std::unique_ptr<exec::Backend>()>;

  /// Pool built by calling `factory` once per worker.
  Engine(const BackendFactory& factory, const EngineConfig& cfg);
  /// Pool built by clone()ing `prototype` once per worker.
  Engine(const exec::Backend& prototype, const EngineConfig& cfg);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Drains pending requests (shutdown()) before destruction.
  ~Engine();

  /// Enqueue one sample — the plan input without its batch axis (rank 1..3,
  /// non-empty) — and return the future for its output row. Thread-safe.
  /// Throws std::invalid_argument on a degenerate sample and
  /// std::runtime_error after shutdown(). The future resolves to the output
  /// copied out of the worker backend, or to the exception the backend threw
  /// for its batch (e.g. a shape mismatch with the plan).
  std::future<tensor::Tensor> submit(tensor::Tensor sample);

  /// Stop accepting, drain every pending request to completion, join the
  /// workers. Idempotent; called by the destructor.
  void shutdown();

  EngineStats stats() const;
  std::size_t workers() const { return backends_.size(); }
  const EngineConfig& config() const { return cfg_; }

 private:
  struct Request {
    tensor::Tensor sample;
    std::promise<tensor::Tensor> promise;
    std::chrono::steady_clock::time_point arrival;
  };

  void worker_loop(std::size_t worker);
  /// Length of the contiguous same-shape prefix of the queue, capped at
  /// max_batch. Caller holds mu_.
  std::size_t batchable_prefix() const;
  /// Head-of-line relief: scan the whole queue tallying shapes in arrival
  /// order; if some shape has max_batch requests pending, fill `picks` with
  /// the queue indices of its first max_batch requests and return true.
  /// Caller holds mu_.
  bool scan_full_batch(std::vector<std::size_t>& picks) const;

  EngineConfig cfg_;
  std::vector<std::unique_ptr<exec::Backend>> backends_;
  std::vector<std::thread> threads_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool accepting_ = true;
  bool stopping_ = false;
  EngineStats stats_;
};

}  // namespace pdnn::serve
