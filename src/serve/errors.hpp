// errors.hpp — the serving layer's typed failure vocabulary.
//
// Every way serve::Engine can refuse or abandon a request has its own type,
// all rooted at serve::Error, which itself derives from std::runtime_error so
// pre-existing catch(std::runtime_error) sites keep working:
//
//   Error
//    ├── QueueFullError        submit() under OverloadPolicy::kReject with a
//    │                         full queue — the request was never admitted
//    ├── ShedError             the request was admitted but later dropped to
//    │                         make room under OverloadPolicy::kShedOldest
//    ├── DeadlineExceededError the request's deadline passed while it was
//    │                         still queued; it never reached a backend
//    └── ShutdownError         submit() after shutdown(), or a submitter
//                              blocked for queue space when shutdown() fired
//
// Faults injected by exec::FaultInjectingBackend surface as
// exec::InjectedFault (they are backend failures, not admission decisions),
// and plan-shape mismatches keep their std::invalid_argument type — a future
// from submit() can therefore resolve to any of: a value, one of the types
// above, or whatever the backend threw for that sample.
#pragma once

#include <stdexcept>
#include <string>

namespace pdnn::serve {

/// Root of the serving-layer error hierarchy. Derives from
/// std::runtime_error so callers written against the pre-typed engine
/// (catching std::runtime_error from submit()) still compile and still catch.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// OverloadPolicy::kReject and the queue is at max_queue: the submit() call
/// itself throws this — the request was never enqueued and has no future.
class QueueFullError : public Error {
 public:
  explicit QueueFullError(const std::string& what) : Error(what) {}
};

/// OverloadPolicy::kShedOldest dropped this (oldest pending) request to admit
/// a newer one: its future resolves to this exception.
class ShedError : public Error {
 public:
  explicit ShedError(const std::string& what) : Error(what) {}
};

/// The request's deadline expired while it was still waiting in the queue.
/// Failed at batch-assembly time, before any backend work was spent on it.
class DeadlineExceededError : public Error {
 public:
  explicit DeadlineExceededError(const std::string& what) : Error(what) {}
};

/// submit() was called after shutdown(), or a submitter blocked on queue
/// space (OverloadPolicy::kBlock) when shutdown() arrived.
class ShutdownError : public Error {
 public:
  explicit ShutdownError(const std::string& what) : Error(what) {}
};

}  // namespace pdnn::serve
