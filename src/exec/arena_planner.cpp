#include "exec/arena_planner.hpp"

#include <vector>

namespace pdnn::exec {

void ArenaPlanner::plan(ExecPlan& p) {
  const int n = static_cast<int>(p.steps.size());
  const int m = static_cast<int>(p.grad_steps.size());
  // Unified timeline: forward step i runs at time i, grad step k at time n+k.
  const int T = n + m;

  // --- lifetimes: last_use = last timeline point reading each slot ---------
  for (Slot& s : p.slots) s.last_use = s.def_step;  // unread slots die at birth
  for (int i = 0; i < n; ++i) {
    const Step& s = p.steps[static_cast<std::size_t>(i)];
    if (s.in0 >= 0) p.slots[static_cast<std::size_t>(s.in0)].last_use = i;
    if (s.in1 >= 0) p.slots[static_cast<std::size_t>(s.in1)].last_use = i;
  }
  // The caller reads the plan output after the run: it outlives every step.
  // In a training plan it must also survive the backward sweep (the caller
  // computes the loss gradient from it before and metrics after).
  p.slots[static_cast<std::size_t>(p.output_slot)].last_use = m > 0 ? T : n;
  for (int k = 0; k < m; ++k) {
    const int t = n + k;
    const GradStep& g = p.grad_steps[static_cast<std::size_t>(k)];
    const Step& fwd = p.steps[static_cast<std::size_t>(g.fwd_step)];
    p.slots[static_cast<std::size_t>(g.gin)].last_use = t;
    // Saved-for-backward activations pin their forward slot across the
    // forward/backward boundary: the GEMM inputs of linear/conv (dW reads
    // them) and BatchNorm's x-hat save slot.
    if (fwd.op == OpKind::kLinear || fwd.op == OpKind::kConv2d) {
      p.slots[static_cast<std::size_t>(fwd.in0)].last_use = t;
    }
    if (fwd.save >= 0) p.slots[static_cast<std::size_t>(fwd.save)].last_use = t;
    // Accumulating writes read the slot's prior contents.
    if (g.acc0) p.slots[static_cast<std::size_t>(g.gout0)].last_use = t;
    if (g.gout1 >= 0 && g.acc1) p.slots[static_cast<std::size_t>(g.gout1)].last_use = t;
  }
  // The caller reads the gradient of the plan input after the backward sweep.
  if (p.grad_input_slot >= 0) p.slots[static_cast<std::size_t>(p.grad_input_slot)].last_use = T;

  // --- in-place marking ----------------------------------------------------
  // ReLU and eval-mode BN read and write the same element index, so they may
  // execute into their input's buffer — but only when that input dies here
  // (no later reader) and is not the caller-owned plan input. Pinned GEMM
  // inputs fail the dies-here test automatically.
  for (int i = 0; i < n; ++i) {
    Step& s = p.steps[static_cast<std::size_t>(i)];
    if (s.op != OpKind::kRelu && s.op != OpKind::kBatchNorm) continue;
    if (s.in0 == p.input_slot) continue;
    if (p.slots[static_cast<std::size_t>(s.in0)].last_use != i) continue;
    s.in_place = true;
  }
  // The same-index property holds for the ReLU and BatchNorm backward sweeps
  // (BN backward finishes its per-channel reductions over gin/x-hat before
  // writing any element of that channel), so their grad output may overwrite
  // gin when gin dies here, is arena-owned (not the caller's grad_out), and
  // the write initializes rather than accumulates.
  for (int k = 0; k < m; ++k) {
    GradStep& g = p.grad_steps[static_cast<std::size_t>(k)];
    const Step& fwd = p.steps[static_cast<std::size_t>(g.fwd_step)];
    if (fwd.op != OpKind::kRelu && fwd.op != OpKind::kBatchNorm) continue;
    if (g.gin == p.grad_output_slot) continue;
    if (g.acc0) continue;
    if (p.slots[static_cast<std::size_t>(g.gin)].last_use != n + k) continue;
    g.in_place = true;
  }

  // --- linear-scan buffer assignment ---------------------------------------
  // expire[b] = last_use of the slot currently occupying buffer b. A buffer
  // frees once its occupant's last reader has run; a step's own inputs have
  // expire >= t and therefore never collide with its outputs.
  std::vector<int> expire;
  std::vector<int> free_list;
  auto assign = [&](int slot_id, int share_with) {
    Slot& out = p.slots[static_cast<std::size_t>(slot_id)];
    int b;
    if (share_with >= 0) {
      b = p.slots[static_cast<std::size_t>(share_with)].buffer;
    } else if (!free_list.empty()) {
      b = free_list.back();
      free_list.pop_back();
    } else {
      b = static_cast<int>(expire.size());
      expire.push_back(0);
    }
    out.buffer = b;
    expire[static_cast<std::size_t>(b)] = out.last_use;
  };
  for (int t = 0; t < T; ++t) {
    for (int b = 0; b < static_cast<int>(expire.size()); ++b) {
      if (expire[static_cast<std::size_t>(b)] < t) {
        expire[static_cast<std::size_t>(b)] = T + 1;  // parked until reassigned
        free_list.push_back(b);
      }
    }
    if (t < n) {
      const Step& s = p.steps[static_cast<std::size_t>(t)];
      assign(s.out, s.in_place ? s.in0 : -1);
      if (s.save >= 0) assign(s.save, -1);
    } else {
      const GradStep& g = p.grad_steps[static_cast<std::size_t>(t - n)];
      // A grad slot is assigned by its first writer; accumulating writers
      // reuse the existing buffer.
      if (p.slots[static_cast<std::size_t>(g.gout0)].def_step == t) {
        assign(g.gout0, g.in_place ? g.gin : -1);
      }
      if (g.gout1 >= 0 && p.slots[static_cast<std::size_t>(g.gout1)].def_step == t) {
        assign(g.gout1, -1);
      }
    }
  }
  p.num_buffers = expire.size();
}

}  // namespace pdnn::exec
