#include "exec/arena_planner.hpp"

#include <vector>

namespace pdnn::exec {

void ArenaPlanner::plan(ExecPlan& p) {
  const int n = static_cast<int>(p.steps.size());

  // --- lifetimes: last_use = index of the last step reading each slot ------
  for (Slot& s : p.slots) s.last_use = s.def_step;  // unread slots die at birth
  for (int i = 0; i < n; ++i) {
    const Step& s = p.steps[static_cast<std::size_t>(i)];
    if (s.in0 >= 0) p.slots[static_cast<std::size_t>(s.in0)].last_use = i;
    if (s.in1 >= 0) p.slots[static_cast<std::size_t>(s.in1)].last_use = i;
  }
  // The caller reads the plan output after the run: it outlives every step.
  p.slots[static_cast<std::size_t>(p.output_slot)].last_use = n;

  // --- in-place marking ----------------------------------------------------
  // ReLU and eval-mode BN read and write the same element index, so they may
  // execute into their input's buffer — but only when that input dies here
  // (no later reader) and is not the caller-owned plan input.
  for (int i = 0; i < n; ++i) {
    Step& s = p.steps[static_cast<std::size_t>(i)];
    if (s.op != OpKind::kRelu && s.op != OpKind::kBatchNorm) continue;
    if (s.in0 == p.input_slot) continue;
    if (p.slots[static_cast<std::size_t>(s.in0)].last_use != i) continue;
    s.in_place = true;
  }

  // --- linear-scan buffer assignment ---------------------------------------
  // expire[b] = last_use of the slot currently occupying buffer b. A buffer
  // frees once its occupant's last reader has run; a step's own inputs have
  // expire >= i and therefore never collide with its output.
  std::vector<int> expire;
  std::vector<int> free_list;
  for (int i = 0; i < n; ++i) {
    for (int b = 0; b < static_cast<int>(expire.size()); ++b) {
      if (expire[static_cast<std::size_t>(b)] < i) {
        expire[static_cast<std::size_t>(b)] = n + 1;  // parked until reassigned
        free_list.push_back(b);
      }
    }
    Step& s = p.steps[static_cast<std::size_t>(i)];
    Slot& out = p.slots[static_cast<std::size_t>(s.out)];
    int b;
    if (s.in_place) {
      b = p.slots[static_cast<std::size_t>(s.in0)].buffer;
    } else if (!free_list.empty()) {
      b = free_list.back();
      free_list.pop_back();
    } else {
      b = static_cast<int>(expire.size());
      expire.push_back(0);
    }
    out.buffer = b;
    expire[static_cast<std::size_t>(b)] = out.last_use;
  }
  p.num_buffers = expire.size();
}

}  // namespace pdnn::exec
