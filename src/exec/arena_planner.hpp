// arena_planner.hpp — buffer-lifetime planning over an ExecPlan.
//
// Computes every slot's lifetime (first-def step / last-use step), marks
// elementwise steps (ReLU, eval-mode BatchNorm) in-place when their input
// dies at that step, and folds the slots onto a minimal set of arena buffers
// by linear scan: a buffer is reused as soon as its occupant's last reader
// has run. Backends then execute the whole plan against
// tensor::TensorArena with no per-run allocation once shapes settle.
#pragma once

#include "exec/plan.hpp"

namespace pdnn::exec {

class ArenaPlanner {
 public:
  /// Fill slot lifetimes and buffer assignments on `plan` in place. Called by
  /// GraphBuilder::lower(); exposed separately for tests and custom lowerings.
  static void plan(ExecPlan& plan);
};

}  // namespace pdnn::exec
