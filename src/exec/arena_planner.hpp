// arena_planner.hpp — buffer-lifetime planning over an ExecPlan.
//
// Computes every slot's lifetime (first-def step / last-use step), marks
// elementwise steps (ReLU, eval-mode BatchNorm) in-place when their input
// dies at that step, and folds the slots onto a minimal set of arena buffers
// by linear scan: a buffer is reused as soon as its occupant's last reader
// has run. Backends then execute the whole plan against
// tensor::TensorArena with no per-run allocation once shapes settle.
//
// Training plans run the same scan over the unified forward+backward
// timeline: saved-for-backward activations (GEMM inputs, BN x-hat save
// slots) are pinned until their grad step reads them, gradient slots are
// assigned at their first writing grad step, and elementwise backward sweeps
// (ReLU/BN) may run in place over the incoming gradient.
#pragma once

#include "exec/plan.hpp"

namespace pdnn::exec {

class ArenaPlanner {
 public:
  /// Fill slot lifetimes and buffer assignments on `plan` in place. Called by
  /// GraphBuilder::lower(); exposed separately for tests and custom lowerings.
  static void plan(ExecPlan& plan);
};

}  // namespace pdnn::exec
