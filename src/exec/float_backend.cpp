#include "exec/float_backend.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "exec/graph_builder.hpp"
#include "exec/kernels.hpp"
#include "tensor/gemm_kernel.hpp"
#include "tensor/ops.hpp"

namespace pdnn::exec {

using tensor::Shape;
using tensor::Tensor;

// Bit-exactness contract: every kernel below evaluates the same floating-
// point expressions in the same per-element order as the corresponding
// nn::Module::forward(x, /*training=*/false) — the GEMMs are the same
// gemm_blocked calls matmul/matmul_acc make, the bias adds and BN/ReLU
// expressions are copied verbatim. Parallel axes are independent output
// slices, so thread count never changes a bit (same policy as src/nn).

FloatBackend FloatBackend::compile(nn::Module& net, nn::PrecisionPolicy* policy,
                                   PlanOptions opts) {
  if (policy != nullptr) {
    // The eager forward this path mirrors bit-for-bit fires the A_p = P(A)
    // hook between a layer and its trailing ReLU, and quantizes W before BN
    // applies — both orderings die under fusion/folding, so a policy pins
    // the faithful per-layer lowering. im2col elision moves no arithmetic
    // and stays on.
    opts.fuse_epilogues = false;
    opts.fold_bn = false;
  }
  FloatBackend b;
  b.opts_ = opts;
  b.plan_ = GraphBuilder::lower(net, opts);
  b.net_ = &net;
  b.policy_ = policy;
  b.state_.resize(b.plan_.steps.size());
  b.arena_.configure(b.plan_.num_buffers);
  b.refresh();
  return b;
}

std::unique_ptr<Backend> FloatBackend::clone() const {
  return std::make_unique<FloatBackend>(compile(*net_, policy_, opts_));
}

void FloatBackend::refresh() {
  const bool quant = quantizing();
  // An activate()/deactivate() flip between runs — or an explicit
  // invalidate() — rebuilds every cached panel regardless of versions.
  const bool force = quant != panels_quantized_ || force_refresh_;
  panels_quantized_ = quant;
  force_refresh_ = false;
  for (std::size_t i = 0; i < plan_.steps.size(); ++i) {
    const Step& s = plan_.steps[i];
    StepState& st = state_[i];
    switch (s.op) {
      case OpKind::kLinear: {
        nn::Param& w = s.linear->weight();
        if (force || !st.bound || w.version != st.version) {
          const Tensor qw =
              quant ? policy_->quantize_weight(w.value, s.name, nn::LayerClass::kLinear) : w.value;
          st.panel = tensor::transpose(qw);
          st.version = w.version;
          st.bound = true;
        }
        break;
      }
      case OpKind::kConv2d: {
        nn::Param& w = s.conv->weight();
        if (s.folded_bn != nullptr) {
          // fold_bn panels: every input that reaches the folded arithmetic
          // participates in the staleness key, running stats included.
          nn::BatchNorm2d& bn = *s.folded_bn;
          const std::uint64_t bias_v = s.conv->has_bias() ? s.conv->bias().version : 0;
          if (force || !st.bound || w.version != st.version || bias_v != st.bias_version ||
              bn.gamma().version != st.gamma_version || bn.beta().version != st.beta_version ||
              bn.stats_version() != st.stats_version) {
            fold_conv_bn(s, st);
            st.version = w.version;
            st.bias_version = bias_v;
            st.gamma_version = bn.gamma().version;
            st.beta_version = bn.beta().version;
            st.stats_version = bn.stats_version();
            st.bound = true;
          }
        } else if (quant) {
          if (force || !st.bound || w.version != st.version) {
            st.panel = policy_->quantize_weight(w.value, s.name, nn::LayerClass::kConv);
            st.version = w.version;
            st.bound = true;
          }
        } else if (force || !st.bound) {
          st.panel = Tensor();  // read the live weight directly
          st.version = w.version;
          st.bound = true;
        }
        break;
      }
      case OpKind::kBatchNorm: {
        nn::Param& g = s.bn->gamma();
        if (quant) {
          if (force || !st.bound || g.version != st.gamma_version) {
            st.qgamma = policy_->quantize_weight(g.value, s.name, nn::LayerClass::kBn);
            st.gamma_version = g.version;
            st.bound = true;
          }
        } else if (force || !st.bound) {
          st.qgamma = Tensor();
          st.gamma_version = g.version;
          st.bound = true;
        }
        break;
      }
      default: break;
    }
  }
}

void FloatBackend::fold_conv_bn(const Step& s, StepState& st) {
  // Eval-mode BN is a per-channel affine y = scale*(x - mean) + beta with
  // scale = gamma / sqrt(var + eps), so it folds into the conv:
  //   fw[c,:] = W[c,:] * scale[c]
  //   fb[c]   = (b[c] - mean[c]) * scale[c] + beta[c]   (b = 0 without bias)
  // This pre-rounds W*scale once per refresh — epsilon-close to, not
  // bit-identical with, the unfolded conv→bn chain.
  nn::BatchNorm2d& bn = *s.folded_bn;
  const Tensor& w = s.conv->weight().value;
  const std::size_t patch = w.numel() / s.out_c;
  st.fw.resize({s.out_c, patch});
  st.fb.resize({s.out_c});
  const float* src = w.data();
  float* fw = st.fw.data();
#pragma omp parallel for schedule(static) if (s.out_c > 1 && s.out_c * patch > 16384)
  for (std::size_t ci = 0; ci < s.out_c; ++ci) {
    const float inv_std = 1.0f / std::sqrt(bn.running_var()[ci] + bn.eps());
    const float scale = bn.gamma().value[ci] * inv_std;
    for (std::size_t e = 0; e < patch; ++e) fw[ci * patch + e] = src[ci * patch + e] * scale;
    const float b0 = s.conv->has_bias() ? s.conv->bias().value[ci] : 0.0f;
    st.fb[ci] = (b0 - bn.running_mean()[ci]) * scale + bn.beta().value[ci];
  }
}

const Tensor& FloatBackend::slot_tensor(int slot, const Tensor& x) const {
  if (slot == plan_.input_slot) return x;
  return arena_.at(static_cast<std::size_t>(plan_.slots[static_cast<std::size_t>(slot)].buffer));
}

const Tensor& FloatBackend::run_impl(const Tensor& x) {
  refresh();
  const bool quant = quantizing();
  for (std::size_t i = 0; i < plan_.steps.size(); ++i) {
    const Step& s = plan_.steps[i];
    StepState& st = state_[i];
    const Tensor& in = slot_tensor(s.in0, x);
    const Tensor* skip = s.in1 >= 0 ? &slot_tensor(s.in1, x) : nullptr;
    const Shape skip_shape = skip != nullptr ? skip->shape() : Shape{};
    const Shape out_shape =
        infer_out_shape(s, in.shape(), skip != nullptr ? &skip_shape : nullptr, "FloatBackend");
    Tensor& out = arena_.bind(
        static_cast<std::size_t>(plan_.slots[static_cast<std::size_t>(s.out)].buffer), out_shape);
    switch (s.op) {
      case OpKind::kLinear: exec_linear(s, st, in, out); break;
      case OpKind::kConv2d: exec_conv(s, st, in, out); break;
      case OpKind::kBatchNorm: exec_bn(s, st, in, out); break;
      case OpKind::kRelu: relu_kernel(in, out); break;
      case OpKind::kMaxPool2x2: maxpool2x2_kernel(in, out); break;
      case OpKind::kGlobalAvgPool: exec_gap(in, out); break;
      case OpKind::kResidualJoin: exec_join(in, *skip, out); break;
    }
    if (quant) {
      // The eager forward's A_p = P(A) hook sites: conv/linear/bn outputs and
      // the post-join activation; ReLU and pooling apply no hook.
      switch (s.op) {
        case OpKind::kLinear: policy_->quantize_activation(out, s.name, nn::LayerClass::kLinear); break;
        case OpKind::kConv2d: policy_->quantize_activation(out, s.name, nn::LayerClass::kConv); break;
        case OpKind::kBatchNorm: policy_->quantize_activation(out, s.name, nn::LayerClass::kBn); break;
        case OpKind::kResidualJoin:
          policy_->quantize_activation(out, s.name, nn::LayerClass::kConv);
          break;
        default: break;
      }
    }
  }
  return arena_.at(static_cast<std::size_t>(
      plan_.slots[static_cast<std::size_t>(plan_.output_slot)].buffer));
}

void FloatBackend::exec_linear(const Step& s, StepState& st, const Tensor& in, Tensor& out) {
  // Same computation as nn::Linear::forward: out = x W^T (blocked GEMM on a
  // zeroed target) then the bias add — W^T is the panel cached at refresh()
  // instead of a per-call transpose, and the bias (plus any fused ReLU)
  // rides the GEMM epilogue: per element the same add-then-clamp expression
  // order as the separate sweeps, so the output bits don't change.
  const std::size_t n = in.shape()[0];
  out.fill(0.0f);
  tensor::GemmEpilogue ep;
  ep.col_bias = s.epilogue.bias ? s.linear->bias().value.data() : nullptr;
  ep.relu = s.epilogue.relu;
  tensor::gemm_blocked(n, s.out_c, s.in_c, in.data(), s.in_c, st.panel.data(), s.out_c, out.data(),
                       s.out_c, ep);
}

void FloatBackend::exec_conv(const Step& s, StepState& st, const Tensor& in, Tensor& out) {
  // Same computation as tensor::conv2d_forward: per-sample im2col + blocked
  // GEMM — but into persistent cols scratch and straight into the output
  // slice (conv2d_forward computes the identical GEMM into a temporary and
  // memcpys it out). Bias / fused ReLU / folded BN affine ride the GEMM
  // epilogue; a 1x1/s1/p0 conv skips im2col entirely — the input slice
  // [C, H*W] already IS the patch matrix.
  const tensor::Conv2dGeom geom{s.in_c,   in.shape()[2], in.shape()[3], s.out_c,
                                s.kernel, s.stride,      s.pad,         s.kernel_w};
  const std::size_t batch = in.shape()[0];
  const std::size_t pixels = geom.out_h() * geom.out_w();
  const std::size_t patch = geom.patch();
  const bool folded = s.folded_bn != nullptr;
  const float* w2d = folded             ? st.fw.data()
                     : quantizing()     ? st.panel.data()
                                        : s.conv->weight().value.data();
  tensor::GemmEpilogue ep;
  ep.row_bias = folded             ? st.fb.data()
                : s.epilogue.bias  ? s.conv->bias().value.data()
                                   : nullptr;
  ep.relu = s.epilogue.relu;
  if (!s.elide_im2col) st.cols.resize({patch, pixels});
  const std::size_t in_stride = s.in_c * geom.in_h * geom.in_w;
  const std::size_t out_stride = s.out_c * pixels;
  for (std::size_t nidx = 0; nidx < batch; ++nidx) {
    const float* bmat;
    if (s.elide_im2col) {
      bmat = in.data() + nidx * in_stride;
    } else {
      tensor::im2col(in.data() + nidx * in_stride, geom, st.cols.data());
      bmat = st.cols.data();
    }
    float* oslice = out.data() + nidx * out_stride;
    std::memset(oslice, 0, out_stride * sizeof(float));
    tensor::gemm_blocked(s.out_c, pixels, patch, w2d, patch, bmat, pixels, oslice, pixels, ep);
  }
}

void FloatBackend::exec_bn(const Step& s, const StepState& st, const Tensor& in, Tensor& out) {
  // nn::BatchNorm2d::forward with training=false, expression for expression;
  // running statistics and beta are read live from the module. A fused ReLU
  // clamps the exact value the separate sweep would read — bit-identical.
  nn::BatchNorm2d& bn = *s.bn;
  const std::size_t n = in.shape()[0], c = in.shape()[1];
  const std::size_t plane = in.shape()[2] * in.shape()[3];
  const float* gamma = quantizing() ? st.qgamma.data() : bn.gamma().value.data();
  const bool relu = s.epilogue.relu;
#pragma omp parallel for schedule(static) if (c > 1 && n * plane > 4096)
  for (std::size_t ci = 0; ci < c; ++ci) {
    const float mean = bn.running_mean()[ci];
    const float var = bn.running_var()[ci];
    const float inv_std = 1.0f / std::sqrt(var + bn.eps());
    const float g = gamma[ci], b = bn.beta().value[ci];
    for (std::size_t ni = 0; ni < n; ++ni) {
      const float* src = in.data() + (ni * c + ci) * plane;
      float* dst = out.data() + (ni * c + ci) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        const float xhat = (src[i] - mean) * inv_std;
        const float y = g * xhat + b;
        dst[i] = relu ? (y > 0.0f ? y : 0.0f) : y;
      }
    }
  }
}

void FloatBackend::exec_gap(const Tensor& in, Tensor& out) {
  // tensor::global_avgpool_forward's serial per-cell reduction.
  const std::size_t n = in.shape()[0], c = in.shape()[1];
  const std::size_t plane = in.shape()[2] * in.shape()[3];
#pragma omp parallel for schedule(static) if (n * c > 1 && n * c * plane > 16384)
  for (std::size_t cell = 0; cell < n * c; ++cell) {
    const float* src = in.data() + cell * plane;
    float acc = 0.0f;
    for (std::size_t i = 0; i < plane; ++i) acc += src[i];
    out[cell] = acc / static_cast<float>(plane);
  }
}

void FloatBackend::exec_join(const Tensor& main, const Tensor& skip, Tensor& out) {
  // ResidualBlock's h += skip then ReLU, fused: t = m + s; max(t, 0).
  const std::size_t numel = out.numel();
  const float* ma = main.data();
  const float* sk = skip.data();
  float* dst = out.data();
#pragma omp parallel for schedule(static) if (numel > 16384)
  for (std::size_t i = 0; i < numel; ++i) {
    const float t = ma[i] + sk[i];
    dst[i] = t > 0.0f ? t : 0.0f;
  }
}

}  // namespace pdnn::exec
