#include "exec/float_backend.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "exec/graph_builder.hpp"
#include "exec/kernels.hpp"
#include "tensor/gemm_kernel.hpp"
#include "tensor/ops.hpp"

namespace pdnn::exec {

using tensor::Shape;
using tensor::Tensor;

// Bit-exactness contract: every kernel below evaluates the same floating-
// point expressions in the same per-element order as the corresponding
// nn::Module::forward(x, /*training=*/false) — the GEMMs are the same
// gemm_blocked calls matmul/matmul_acc make, the bias adds and BN/ReLU
// expressions are copied verbatim. Parallel axes are independent output
// slices, so thread count never changes a bit (same policy as src/nn).

FloatBackend FloatBackend::compile(nn::Module& net, nn::PrecisionPolicy* policy) {
  FloatBackend b;
  b.plan_ = GraphBuilder::lower(net);
  b.net_ = &net;
  b.policy_ = policy;
  b.state_.resize(b.plan_.steps.size());
  b.arena_.configure(b.plan_.num_buffers);
  b.refresh();
  return b;
}

std::unique_ptr<Backend> FloatBackend::clone() const {
  return std::make_unique<FloatBackend>(compile(*net_, policy_));
}

void FloatBackend::refresh() {
  const bool quant = quantizing();
  // An activate()/deactivate() flip between runs invalidates every cached
  // panel regardless of Param::version.
  const bool flip = quant != panels_quantized_;
  panels_quantized_ = quant;
  for (std::size_t i = 0; i < plan_.steps.size(); ++i) {
    const Step& s = plan_.steps[i];
    StepState& st = state_[i];
    switch (s.op) {
      case OpKind::kLinear: {
        nn::Param& w = s.linear->weight();
        if (flip || !st.bound || w.version != st.version) {
          const Tensor qw =
              quant ? policy_->quantize_weight(w.value, s.name, nn::LayerClass::kLinear) : w.value;
          st.panel = tensor::transpose(qw);
          st.version = w.version;
          st.bound = true;
        }
        break;
      }
      case OpKind::kConv2d: {
        nn::Param& w = s.conv->weight();
        if (quant) {
          if (flip || !st.bound || w.version != st.version) {
            st.panel = policy_->quantize_weight(w.value, s.name, nn::LayerClass::kConv);
            st.version = w.version;
            st.bound = true;
          }
        } else if (flip || !st.bound) {
          st.panel = Tensor();  // read the live weight directly
          st.version = w.version;
          st.bound = true;
        }
        break;
      }
      case OpKind::kBatchNorm: {
        nn::Param& g = s.bn->gamma();
        if (quant) {
          if (flip || !st.bound || g.version != st.gamma_version) {
            st.qgamma = policy_->quantize_weight(g.value, s.name, nn::LayerClass::kBn);
            st.gamma_version = g.version;
            st.bound = true;
          }
        } else if (flip || !st.bound) {
          st.qgamma = Tensor();
          st.gamma_version = g.version;
          st.bound = true;
        }
        break;
      }
      default: break;
    }
  }
}

const Tensor& FloatBackend::slot_tensor(int slot, const Tensor& x) const {
  if (slot == plan_.input_slot) return x;
  return arena_.at(static_cast<std::size_t>(plan_.slots[static_cast<std::size_t>(slot)].buffer));
}

const Tensor& FloatBackend::run_impl(const Tensor& x) {
  refresh();
  if (plan_.steps.empty()) {
    passthrough_ = x;  // empty graph: identity
    return passthrough_;
  }
  const bool quant = quantizing();
  for (std::size_t i = 0; i < plan_.steps.size(); ++i) {
    const Step& s = plan_.steps[i];
    StepState& st = state_[i];
    const Tensor& in = slot_tensor(s.in0, x);
    const Tensor* skip = s.in1 >= 0 ? &slot_tensor(s.in1, x) : nullptr;
    const Shape skip_shape = skip != nullptr ? skip->shape() : Shape{};
    const Shape out_shape =
        infer_out_shape(s, in.shape(), skip != nullptr ? &skip_shape : nullptr, "FloatBackend");
    Tensor& out = arena_.bind(
        static_cast<std::size_t>(plan_.slots[static_cast<std::size_t>(s.out)].buffer), out_shape);
    switch (s.op) {
      case OpKind::kLinear: exec_linear(s, st, in, out); break;
      case OpKind::kConv2d: exec_conv(s, st, in, out); break;
      case OpKind::kBatchNorm: exec_bn(s, st, in, out); break;
      case OpKind::kRelu: relu_kernel(in, out); break;
      case OpKind::kMaxPool2x2: maxpool2x2_kernel(in, out); break;
      case OpKind::kGlobalAvgPool: exec_gap(in, out); break;
      case OpKind::kResidualJoin: exec_join(in, *skip, out); break;
    }
    if (quant) {
      // The eager forward's A_p = P(A) hook sites: conv/linear/bn outputs and
      // the post-join activation; ReLU and pooling apply no hook.
      switch (s.op) {
        case OpKind::kLinear: policy_->quantize_activation(out, s.name, nn::LayerClass::kLinear); break;
        case OpKind::kConv2d: policy_->quantize_activation(out, s.name, nn::LayerClass::kConv); break;
        case OpKind::kBatchNorm: policy_->quantize_activation(out, s.name, nn::LayerClass::kBn); break;
        case OpKind::kResidualJoin:
          policy_->quantize_activation(out, s.name, nn::LayerClass::kConv);
          break;
        default: break;
      }
    }
  }
  return arena_.at(static_cast<std::size_t>(
      plan_.slots[static_cast<std::size_t>(plan_.output_slot)].buffer));
}

void FloatBackend::exec_linear(const Step& s, StepState& st, const Tensor& in, Tensor& out) {
  // Same computation as nn::Linear::forward: out = x W^T (blocked GEMM on a
  // zeroed target) then the row-parallel bias add — W^T is the panel cached
  // at refresh() instead of a per-call transpose.
  const std::size_t n = in.shape()[0];
  out.fill(0.0f);
  tensor::gemm_blocked(n, s.out_c, s.in_c, in.data(), s.in_c, st.panel.data(), s.out_c, out.data(),
                       s.out_c);
  const Tensor& bias = s.linear->bias().value;
#pragma omp parallel for schedule(static) if (n > 1 && n * s.out_c > 16384)
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < s.out_c; ++j) out.at(i, j) += bias[j];
}

void FloatBackend::exec_conv(const Step& s, StepState& st, const Tensor& in, Tensor& out) {
  // Same computation as tensor::conv2d_forward: per-sample im2col + blocked
  // GEMM — but into persistent cols scratch and straight into the output
  // slice (conv2d_forward computes the identical GEMM into a temporary and
  // memcpys it out).
  const tensor::Conv2dGeom geom{s.in_c,   in.shape()[2], in.shape()[3], s.out_c,
                                s.kernel, s.stride,      s.pad,         s.kernel_w};
  const std::size_t batch = in.shape()[0];
  const std::size_t pixels = geom.out_h() * geom.out_w();
  const std::size_t patch = geom.patch();
  st.cols.resize({patch, pixels});
  const float* w2d = quantizing() ? st.panel.data() : s.conv->weight().value.data();
  const std::size_t in_stride = s.in_c * geom.in_h * geom.in_w;
  const std::size_t out_stride = s.out_c * pixels;
  for (std::size_t nidx = 0; nidx < batch; ++nidx) {
    tensor::im2col(in.data() + nidx * in_stride, geom, st.cols.data());
    float* oslice = out.data() + nidx * out_stride;
    std::memset(oslice, 0, out_stride * sizeof(float));
    tensor::gemm_blocked(s.out_c, pixels, patch, w2d, patch, st.cols.data(), pixels, oslice,
                         pixels);
  }
  if (s.conv->has_bias()) {
    const Tensor& bias = s.conv->bias().value;
#pragma omp parallel for schedule(static) if (s.out_c > 1 && batch* s.out_c* pixels > 16384)
    for (std::size_t ci = 0; ci < s.out_c; ++ci) {
      const float b = bias[ci];
      for (std::size_t ni = 0; ni < batch; ++ni) {
        float* dst = out.data() + (ni * s.out_c + ci) * pixels;
        for (std::size_t i = 0; i < pixels; ++i) dst[i] += b;
      }
    }
  }
}

void FloatBackend::exec_bn(const Step& s, const StepState& st, const Tensor& in, Tensor& out) {
  // nn::BatchNorm2d::forward with training=false, expression for expression;
  // running statistics and beta are read live from the module.
  nn::BatchNorm2d& bn = *s.bn;
  const std::size_t n = in.shape()[0], c = in.shape()[1];
  const std::size_t plane = in.shape()[2] * in.shape()[3];
  const float* gamma = quantizing() ? st.qgamma.data() : bn.gamma().value.data();
#pragma omp parallel for schedule(static) if (c > 1 && n * plane > 4096)
  for (std::size_t ci = 0; ci < c; ++ci) {
    const float mean = bn.running_mean()[ci];
    const float var = bn.running_var()[ci];
    const float inv_std = 1.0f / std::sqrt(var + bn.eps());
    const float g = gamma[ci], b = bn.beta().value[ci];
    for (std::size_t ni = 0; ni < n; ++ni) {
      const float* src = in.data() + (ni * c + ci) * plane;
      float* dst = out.data() + (ni * c + ci) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        const float xhat = (src[i] - mean) * inv_std;
        dst[i] = g * xhat + b;
      }
    }
  }
}

void FloatBackend::exec_gap(const Tensor& in, Tensor& out) {
  // tensor::global_avgpool_forward's serial per-cell reduction.
  const std::size_t n = in.shape()[0], c = in.shape()[1];
  const std::size_t plane = in.shape()[2] * in.shape()[3];
#pragma omp parallel for schedule(static) if (n * c > 1 && n * c * plane > 16384)
  for (std::size_t cell = 0; cell < n * c; ++cell) {
    const float* src = in.data() + cell * plane;
    float acc = 0.0f;
    for (std::size_t i = 0; i < plane; ++i) acc += src[i];
    out[cell] = acc / static_cast<float>(plane);
  }
}

void FloatBackend::exec_join(const Tensor& main, const Tensor& skip, Tensor& out) {
  // ResidualBlock's h += skip then ReLU, fused: t = m + s; max(t, 0).
  const std::size_t numel = out.numel();
  const float* ma = main.data();
  const float* sk = skip.data();
  float* dst = out.data();
#pragma omp parallel for schedule(static) if (numel > 16384)
  for (std::size_t i = 0; i < numel; ++i) {
    const float t = ma[i] + sk[i];
    dst[i] = t > 0.0f ? t : 0.0f;
  }
}

}  // namespace pdnn::exec
