#include "exec/float_backend.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "exec/graph_builder.hpp"
#include "exec/kernels.hpp"
#include "tensor/gemm_kernel.hpp"
#include "tensor/ops.hpp"

namespace pdnn::exec {

using tensor::Shape;
using tensor::Tensor;

// Bit-exactness contract: every kernel below evaluates the same floating-
// point expressions in the same per-element order as the corresponding
// nn::Module::forward(x, /*training=*/false) — the GEMMs are the same
// gemm_blocked calls matmul/matmul_acc make, the bias adds and BN/ReLU
// expressions are copied verbatim. Parallel axes are independent output
// slices, so thread count never changes a bit (same policy as src/nn).

FloatBackend FloatBackend::compile(nn::Module& net, nn::PrecisionPolicy* policy,
                                   PlanOptions opts) {
  if (policy != nullptr) {
    // The eager forward this path mirrors bit-for-bit fires the A_p = P(A)
    // hook between a layer and its trailing ReLU, and quantizes W before BN
    // applies — both orderings die under fusion/folding, so a policy pins
    // the faithful per-layer lowering. im2col elision moves no arithmetic
    // and stays on.
    opts.fuse_epilogues = false;
    opts.fold_bn = false;
  }
  FloatBackend b;
  b.opts_ = opts;
  b.plan_ = GraphBuilder::lower(net, opts);
  b.net_ = &net;
  b.policy_ = policy;
  b.state_.resize(b.plan_.steps.size());
  b.arena_.configure(b.plan_.num_buffers);
  b.refresh();
  return b;
}

std::unique_ptr<Backend> FloatBackend::clone() const {
  if (plan_.training()) return std::make_unique<FloatBackend>(compile_training(*net_));
  return std::make_unique<FloatBackend>(compile(*net_, policy_, opts_));
}

FloatBackend FloatBackend::compile_training(nn::Module& net) {
  FloatBackend b;
  b.opts_ = PlanOptions::none();
  b.plan_ = GraphBuilder::lower_training(net);
  b.net_ = &net;
  b.state_.resize(b.plan_.steps.size());
  b.tstate_.resize(b.plan_.steps.size());
  b.arena_.configure(b.plan_.num_buffers);
  // Backend-owned gradient accumulators in net.params() order — the order
  // every clone agrees on, so a data-parallel trainer can reduce across
  // backends index by index.
  b.params_ = net.params();
  b.grads_.reserve(b.params_.size());
  for (nn::Param* p : b.params_) b.grads_.push_back(Tensor::zeros(p->value.shape()));
  const auto pidx = [&b](const nn::Param* p) -> int {
    for (std::size_t i = 0; i < b.params_.size(); ++i) {
      if (b.params_[i] == p) return static_cast<int>(i);
    }
    throw std::logic_error(
        "FloatBackend::compile_training: step parameter missing from net.params()");
  };
  for (std::size_t i = 0; i < b.plan_.steps.size(); ++i) {
    const Step& s = b.plan_.steps[i];
    TrainState& ts = b.tstate_[i];
    switch (s.op) {
      case OpKind::kLinear:
        ts.wgrad = pidx(&s.linear->weight());
        ts.bgrad = pidx(&s.linear->bias());
        break;
      case OpKind::kConv2d:
        ts.wgrad = pidx(&s.conv->weight());
        if (s.conv->has_bias()) ts.bgrad = pidx(&s.conv->bias());
        break;
      case OpKind::kBatchNorm:
        ts.wgrad = pidx(&s.bn->gamma());
        ts.bgrad = pidx(&s.bn->beta());
        ts.bn_stats = static_cast<int>(b.bn_stats_.size());
        b.bn_stats_.push_back(BnBatchStats{s.bn, {}, {}});
        break;
      default: break;
    }
  }
  b.refresh();
  return b;
}

void FloatBackend::require_training(const char* who) const {
  if (!plan_.training()) {
    throw std::logic_error(std::string("FloatBackend::") + who +
                           ": backend was not compiled with compile_training()");
  }
}

void FloatBackend::zero_grad() {
  require_training("zero_grad");
  for (Tensor& g : grads_) g.fill(0.0f);
}

void FloatBackend::commit_bn_stats() {
  require_training("commit_bn_stats");
  if (!forward_done_) {
    throw std::logic_error("FloatBackend::commit_bn_stats: no train_forward() batch to commit");
  }
  for (BnBatchStats& s : bn_stats_) s.bn->update_running_stats(s.mean.data(), s.var.data());
}

void FloatBackend::refresh() {
  const bool quant = quantizing();
  // An activate()/deactivate() flip between runs — or an explicit
  // invalidate() — rebuilds every cached panel regardless of versions.
  const bool force = quant != panels_quantized_ || force_refresh_;
  panels_quantized_ = quant;
  force_refresh_ = false;
  for (std::size_t i = 0; i < plan_.steps.size(); ++i) {
    const Step& s = plan_.steps[i];
    StepState& st = state_[i];
    switch (s.op) {
      case OpKind::kLinear: {
        nn::Param& w = s.linear->weight();
        if (force || !st.bound || w.version != st.version) {
          if (quant) {
            st.panel = tensor::transpose(
                policy_->quantize_weight(w.value, s.name, nn::LayerClass::kLinear));
          } else {
            // Grow-only resize + transpose_into: weight updates between
            // training steps re-derive the panel without reallocating.
            st.panel.resize({s.in_c, s.out_c});
            tensor::transpose_into(w.value.data(), s.out_c, s.in_c, st.panel.data());
          }
          st.version = w.version;
          st.bound = true;
        }
        break;
      }
      case OpKind::kConv2d: {
        nn::Param& w = s.conv->weight();
        if (s.folded_bn != nullptr) {
          // fold_bn panels: every input that reaches the folded arithmetic
          // participates in the staleness key, running stats included.
          nn::BatchNorm2d& bn = *s.folded_bn;
          const std::uint64_t bias_v = s.conv->has_bias() ? s.conv->bias().version : 0;
          if (force || !st.bound || w.version != st.version || bias_v != st.bias_version ||
              bn.gamma().version != st.gamma_version || bn.beta().version != st.beta_version ||
              bn.stats_version() != st.stats_version) {
            fold_conv_bn(s, st);
            st.version = w.version;
            st.bias_version = bias_v;
            st.gamma_version = bn.gamma().version;
            st.beta_version = bn.beta().version;
            st.stats_version = bn.stats_version();
            st.bound = true;
          }
        } else if (quant) {
          if (force || !st.bound || w.version != st.version) {
            st.panel = policy_->quantize_weight(w.value, s.name, nn::LayerClass::kConv);
            st.version = w.version;
            st.bound = true;
          }
        } else if (force || !st.bound) {
          st.panel = Tensor();  // read the live weight directly
          st.version = w.version;
          st.bound = true;
        }
        break;
      }
      case OpKind::kBatchNorm: {
        nn::Param& g = s.bn->gamma();
        if (quant) {
          if (force || !st.bound || g.version != st.gamma_version) {
            st.qgamma = policy_->quantize_weight(g.value, s.name, nn::LayerClass::kBn);
            st.gamma_version = g.version;
            st.bound = true;
          }
        } else if (force || !st.bound) {
          st.qgamma = Tensor();
          st.gamma_version = g.version;
          st.bound = true;
        }
        break;
      }
      default: break;
    }
  }
}

void FloatBackend::fold_conv_bn(const Step& s, StepState& st) {
  // Eval-mode BN is a per-channel affine y = scale*(x - mean) + beta with
  // scale = gamma / sqrt(var + eps), so it folds into the conv:
  //   fw[c,:] = W[c,:] * scale[c]
  //   fb[c]   = (b[c] - mean[c]) * scale[c] + beta[c]   (b = 0 without bias)
  // This pre-rounds W*scale once per refresh — epsilon-close to, not
  // bit-identical with, the unfolded conv→bn chain.
  nn::BatchNorm2d& bn = *s.folded_bn;
  const Tensor& w = s.conv->weight().value;
  const std::size_t patch = w.numel() / s.out_c;
  st.fw.resize({s.out_c, patch});
  st.fb.resize({s.out_c});
  const float* src = w.data();
  float* fw = st.fw.data();
#pragma omp parallel for schedule(static) if (s.out_c > 1 && s.out_c * patch > 16384)
  for (std::size_t ci = 0; ci < s.out_c; ++ci) {
    const float inv_std = 1.0f / std::sqrt(bn.running_var()[ci] + bn.eps());
    const float scale = bn.gamma().value[ci] * inv_std;
    for (std::size_t e = 0; e < patch; ++e) fw[ci * patch + e] = src[ci * patch + e] * scale;
    const float b0 = s.conv->has_bias() ? s.conv->bias().value[ci] : 0.0f;
    st.fb[ci] = (b0 - bn.running_mean()[ci]) * scale + bn.beta().value[ci];
  }
}

const Tensor& FloatBackend::slot_tensor(int slot, const Tensor& x) const {
  if (slot == plan_.input_slot) return x;
  return arena_.at(static_cast<std::size_t>(plan_.slots[static_cast<std::size_t>(slot)].buffer));
}

Tensor& FloatBackend::bind_slot(int slot, const tensor::Shape& shape) {
  return arena_.bind(static_cast<std::size_t>(plan_.slots[static_cast<std::size_t>(slot)].buffer),
                     shape);
}

const Tensor& FloatBackend::run_impl(const Tensor& x) {
  refresh();
  const bool quant = quantizing();
  for (std::size_t i = 0; i < plan_.steps.size(); ++i) {
    const Step& s = plan_.steps[i];
    StepState& st = state_[i];
    const Tensor& in = slot_tensor(s.in0, x);
    const Tensor* skip = s.in1 >= 0 ? &slot_tensor(s.in1, x) : nullptr;
    const Shape skip_shape = skip != nullptr ? skip->shape() : Shape{};
    const Shape out_shape =
        infer_out_shape(s, in.shape(), skip != nullptr ? &skip_shape : nullptr, "FloatBackend");
    Tensor& out = arena_.bind(
        static_cast<std::size_t>(plan_.slots[static_cast<std::size_t>(s.out)].buffer), out_shape);
    switch (s.op) {
      case OpKind::kLinear: exec_linear(s, st, in, out); break;
      case OpKind::kConv2d: exec_conv(s, st, in, out); break;
      case OpKind::kBatchNorm: exec_bn(s, st, in, out); break;
      case OpKind::kRelu: relu_kernel(in, out); break;
      case OpKind::kMaxPool2x2: maxpool2x2_kernel(in, out); break;
      case OpKind::kGlobalAvgPool: exec_gap(in, out); break;
      case OpKind::kResidualJoin: exec_join(in, *skip, out); break;
    }
    if (quant) {
      // The eager forward's A_p = P(A) hook sites: conv/linear/bn outputs and
      // the post-join activation; ReLU and pooling apply no hook.
      switch (s.op) {
        case OpKind::kLinear: policy_->quantize_activation(out, s.name, nn::LayerClass::kLinear); break;
        case OpKind::kConv2d: policy_->quantize_activation(out, s.name, nn::LayerClass::kConv); break;
        case OpKind::kBatchNorm: policy_->quantize_activation(out, s.name, nn::LayerClass::kBn); break;
        case OpKind::kResidualJoin:
          policy_->quantize_activation(out, s.name, nn::LayerClass::kConv);
          break;
        default: break;
      }
    }
  }
  return arena_.at(static_cast<std::size_t>(
      plan_.slots[static_cast<std::size_t>(plan_.output_slot)].buffer));
}

void FloatBackend::exec_linear(const Step& s, StepState& st, const Tensor& in, Tensor& out) {
  // Same computation as nn::Linear::forward: out = x W^T (blocked GEMM on a
  // zeroed target) then the bias add — W^T is the panel cached at refresh()
  // instead of a per-call transpose, and the bias (plus any fused ReLU)
  // rides the GEMM epilogue: per element the same add-then-clamp expression
  // order as the separate sweeps, so the output bits don't change.
  const std::size_t n = in.shape()[0];
  out.fill(0.0f);
  tensor::GemmEpilogue ep;
  ep.col_bias = s.epilogue.bias ? s.linear->bias().value.data() : nullptr;
  ep.relu = s.epilogue.relu;
  tensor::gemm_blocked(n, s.out_c, s.in_c, in.data(), s.in_c, st.panel.data(), s.out_c, out.data(),
                       s.out_c, ep);
}

void FloatBackend::exec_conv(const Step& s, StepState& st, const Tensor& in, Tensor& out) {
  // Same computation as tensor::conv2d_forward: per-sample im2col + blocked
  // GEMM — but into persistent cols scratch and straight into the output
  // slice (conv2d_forward computes the identical GEMM into a temporary and
  // memcpys it out). Bias / fused ReLU / folded BN affine ride the GEMM
  // epilogue; a 1x1/s1/p0 conv skips im2col entirely — the input slice
  // [C, H*W] already IS the patch matrix.
  const tensor::Conv2dGeom geom{s.in_c,   in.shape()[2], in.shape()[3], s.out_c,
                                s.kernel, s.stride,      s.pad,         s.kernel_w};
  const std::size_t batch = in.shape()[0];
  const std::size_t pixels = geom.out_h() * geom.out_w();
  const std::size_t patch = geom.patch();
  const bool folded = s.folded_bn != nullptr;
  const float* w2d = folded             ? st.fw.data()
                     : quantizing()     ? st.panel.data()
                                        : s.conv->weight().value.data();
  tensor::GemmEpilogue ep;
  ep.row_bias = folded             ? st.fb.data()
                : s.epilogue.bias  ? s.conv->bias().value.data()
                                   : nullptr;
  ep.relu = s.epilogue.relu;
  if (!s.elide_im2col) st.cols.resize({patch, pixels});
  const std::size_t in_stride = s.in_c * geom.in_h * geom.in_w;
  const std::size_t out_stride = s.out_c * pixels;
  for (std::size_t nidx = 0; nidx < batch; ++nidx) {
    const float* bmat;
    if (s.elide_im2col) {
      bmat = in.data() + nidx * in_stride;
    } else {
      tensor::im2col(in.data() + nidx * in_stride, geom, st.cols.data());
      bmat = st.cols.data();
    }
    float* oslice = out.data() + nidx * out_stride;
    std::memset(oslice, 0, out_stride * sizeof(float));
    tensor::gemm_blocked(s.out_c, pixels, patch, w2d, patch, bmat, pixels, oslice, pixels, ep);
  }
}

void FloatBackend::exec_bn(const Step& s, const StepState& st, const Tensor& in, Tensor& out) {
  // nn::BatchNorm2d::forward with training=false, expression for expression;
  // running statistics and beta are read live from the module. A fused ReLU
  // clamps the exact value the separate sweep would read — bit-identical.
  nn::BatchNorm2d& bn = *s.bn;
  const std::size_t n = in.shape()[0], c = in.shape()[1];
  const std::size_t plane = in.shape()[2] * in.shape()[3];
  const float* gamma = quantizing() ? st.qgamma.data() : bn.gamma().value.data();
  const bool relu = s.epilogue.relu;
#pragma omp parallel for schedule(static) if (c > 1 && n * plane > 4096)
  for (std::size_t ci = 0; ci < c; ++ci) {
    const float mean = bn.running_mean()[ci];
    const float var = bn.running_var()[ci];
    const float inv_std = 1.0f / std::sqrt(var + bn.eps());
    const float g = gamma[ci], b = bn.beta().value[ci];
    for (std::size_t ni = 0; ni < n; ++ni) {
      const float* src = in.data() + (ni * c + ci) * plane;
      float* dst = out.data() + (ni * c + ci) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        const float xhat = (src[i] - mean) * inv_std;
        const float y = g * xhat + b;
        dst[i] = relu ? (y > 0.0f ? y : 0.0f) : y;
      }
    }
  }
}

void FloatBackend::exec_gap(const Tensor& in, Tensor& out) {
  // tensor::global_avgpool_forward's serial per-cell reduction.
  const std::size_t n = in.shape()[0], c = in.shape()[1];
  const std::size_t plane = in.shape()[2] * in.shape()[3];
#pragma omp parallel for schedule(static) if (n * c > 1 && n * c * plane > 16384)
  for (std::size_t cell = 0; cell < n * c; ++cell) {
    const float* src = in.data() + cell * plane;
    float acc = 0.0f;
    for (std::size_t i = 0; i < plane; ++i) acc += src[i];
    out[cell] = acc / static_cast<float>(plane);
  }
}

void FloatBackend::exec_join(const Tensor& main, const Tensor& skip, Tensor& out) {
  // ResidualBlock's h += skip then ReLU, fused: t = m + s; max(t, 0).
  const std::size_t numel = out.numel();
  const float* ma = main.data();
  const float* sk = skip.data();
  float* dst = out.data();
#pragma omp parallel for schedule(static) if (numel > 16384)
  for (std::size_t i = 0; i < numel; ++i) {
    const float t = ma[i] + sk[i];
    dst[i] = t > 0.0f ? t : 0.0f;
  }
}

// ---------------------------------------------------------------------------
// Training forward
// ---------------------------------------------------------------------------
// The training kernels mirror nn::Module::forward(x, /*training=*/true)
// expression for expression — the batch-stats BN reductions, the mask
// recording, the maxpool comparisons — with the saved-for-backward state in
// backend-owned storage (masks/argmax/inv_std per step, x-hat in the step's
// arena save slot) instead of module members, so clones never touch the
// shared module graph.

const Tensor& FloatBackend::train_forward(const Tensor& x) {
  require_training("train_forward");
  bump_generation();
  const bool force = force_refresh_;
  refresh();
  if (force) {
    for (TrainState& ts : tstate_) ts.wt_bound = false;
  }
  for (std::size_t i = 0; i < plan_.steps.size(); ++i) {
    const Step& s = plan_.steps[i];
    StepState& st = state_[i];
    TrainState& ts = tstate_[i];
    const Tensor& in = slot_tensor(s.in0, x);
    const Tensor* skip = s.in1 >= 0 ? &slot_tensor(s.in1, x) : nullptr;
    const Shape skip_shape = skip != nullptr ? skip->shape() : Shape{};
    const Shape out_shape =
        infer_out_shape(s, in.shape(), skip != nullptr ? &skip_shape : nullptr, "FloatBackend");
    ts.in_shape = in.shape();
    Tensor& out = bind_slot(s.out, out_shape);
    switch (s.op) {
      case OpKind::kLinear: exec_linear(s, st, in, out); break;
      case OpKind::kConv2d: exec_conv(s, st, in, out); break;
      case OpKind::kBatchNorm: {
        Tensor& xhat = bind_slot(s.save, in.shape());
        exec_bn_train(s, ts, in, out, xhat);
        break;
      }
      case OpKind::kRelu: exec_relu_train(ts, in, out); break;
      case OpKind::kMaxPool2x2: exec_maxpool_train(ts, in, out); break;
      case OpKind::kGlobalAvgPool: exec_gap(in, out); break;
      case OpKind::kResidualJoin: exec_join_train(ts, in, *skip, out); break;
    }
  }
  const Tensor& out = slot_tensor(plan_.output_slot, x);
  train_out_shape_ = out.shape();
  train_input_ = &x;
  forward_done_ = true;
  return out;
}

void FloatBackend::exec_bn_train(const Step& s, TrainState& ts, const Tensor& in, Tensor& out,
                                 Tensor& xhat) {
  // nn::BatchNorm2d::forward with training=true, minus the running-stat EMA
  // (batch stats land in bn_stats_; the trainer commits them serially).
  nn::BatchNorm2d& bn = *s.bn;
  const std::size_t n = in.shape()[0], c = in.shape()[1];
  const std::size_t plane = in.shape()[2] * in.shape()[3];
  const std::size_t per_channel = n * plane;
  ts.inv_std.assign(c, 0.0f);
  BnBatchStats& stats = bn_stats_[static_cast<std::size_t>(ts.bn_stats)];
  stats.mean.assign(c, 0.0f);
  stats.var.assign(c, 0.0f);
  const float* gamma = bn.gamma().value.data();
  const float* beta = bn.beta().value.data();
#pragma omp parallel for schedule(static) if (c > 1 && n * plane > 4096)
  for (std::size_t ci = 0; ci < c; ++ci) {
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t ni = 0; ni < n; ++ni) {
      const float* src = in.data() + (ni * c + ci) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        sum += src[i];
        sum_sq += static_cast<double>(src[i]) * src[i];
      }
    }
    const float mean = static_cast<float>(sum / static_cast<double>(per_channel));
    const float var = static_cast<float>(std::max(
        0.0, sum_sq / static_cast<double>(per_channel) - static_cast<double>(mean) * mean));
    stats.mean[ci] = mean;
    stats.var[ci] = var;
    const float inv_std = 1.0f / std::sqrt(var + bn.eps());
    ts.inv_std[ci] = inv_std;
    const float g = gamma[ci], b = beta[ci];
    for (std::size_t ni = 0; ni < n; ++ni) {
      const float* src = in.data() + (ni * c + ci) * plane;
      float* dst = out.data() + (ni * c + ci) * plane;
      float* xh = xhat.data() + (ni * c + ci) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        const float xhat_v = (src[i] - mean) * inv_std;
        xh[i] = xhat_v;
        dst[i] = g * xhat_v + b;
      }
    }
  }
}

void FloatBackend::exec_relu_train(TrainState& ts, const Tensor& in, Tensor& out) {
  // nn::ReLU::forward(training=true): zero-clamp recording the mask. May run
  // in place (the value is read before either write).
  const std::size_t numel = out.numel();
  ts.mask.assign(numel, 0);
  const float* src = in.data();
  float* dst = out.data();
#pragma omp parallel for schedule(static) if (numel > 16384)
  for (std::size_t i = 0; i < numel; ++i) {
    const float v = src[i];
    if (v > 0.0f) {
      ts.mask[i] = 1;
      dst[i] = v;
    } else {
      dst[i] = 0.0f;
    }
  }
}

void FloatBackend::exec_maxpool_train(TrainState& ts, const Tensor& in, Tensor& out) {
  // tensor::maxpool2x2_forward with the argmax recorded into backend state;
  // planes are independent, so the parallel axis never changes a comparison.
  const std::size_t n = in.shape()[0], c = in.shape()[1];
  const std::size_t h = in.shape()[2], w = in.shape()[3];
  const std::size_t oh = h / 2, ow = w / 2;
  ts.argmax.assign(out.numel(), 0);
  const float* src = in.data();
  float* dst = out.data();
#pragma omp parallel for schedule(static) if (n * c > 1 && n * c * oh * ow > 16384)
  for (std::size_t pc = 0; pc < n * c; ++pc) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        float best = -std::numeric_limits<float>::infinity();
        std::size_t best_idx = 0;
        for (std::size_t dy = 0; dy < 2; ++dy) {
          for (std::size_t dx = 0; dx < 2; ++dx) {
            const std::size_t idx = (pc * h + 2 * y + dy) * w + 2 * x + dx;
            if (src[idx] > best) {
              best = src[idx];
              best_idx = idx;
            }
          }
        }
        const std::size_t oi = (pc * oh + y) * ow + x;
        dst[oi] = best;
        ts.argmax[oi] = best_idx;
      }
    }
  }
}

void FloatBackend::exec_join_train(TrainState& ts, const Tensor& main, const Tensor& skip,
                                   Tensor& out) {
  // ResidualBlock's h += skip then masked ReLU: the fused t = m + s is the
  // exact value the separate sweeps would clamp and mask.
  const std::size_t numel = out.numel();
  ts.mask.assign(numel, 0);
  const float* ma = main.data();
  const float* sk = skip.data();
  float* dst = out.data();
#pragma omp parallel for schedule(static) if (numel > 16384)
  for (std::size_t i = 0; i < numel; ++i) {
    const float t = ma[i] + sk[i];
    if (t > 0.0f) {
      ts.mask[i] = 1;
      dst[i] = t;
    } else {
      dst[i] = 0.0f;
    }
  }
}

// ---------------------------------------------------------------------------
// Training backward
// ---------------------------------------------------------------------------
// Mirrors nn::Module::backward op for op: the same GEMM calls (staged through
// persistent scratch instead of fresh temporaries), the same serial
// accumulation loops, the same omp guards. Accumulating steps (`acc`) stage
// dX into zeroed scratch exactly like eager's fresh tensor, then add it to
// the slot's prior contents — eager's `gm += gs` with the operands swapped,
// identical bits for any non-NaN gradient (IEEE addition is commutative).

const Tensor& FloatBackend::run_backward(const Tensor& grad_out) {
  require_training("run_backward");
  if (!forward_done_) {
    throw std::logic_error("FloatBackend::run_backward: no train_forward() to differentiate");
  }
  if (grad_out.shape() != train_out_shape_) {
    throw std::invalid_argument("FloatBackend::run_backward: grad_out " +
                                grad_out.shape().to_string() + " does not match forward output " +
                                train_out_shape_.to_string());
  }
  bump_generation();
  for (const GradStep& g : plan_.grad_steps) {
    const Step& s = plan_.steps[static_cast<std::size_t>(g.fwd_step)];
    TrainState& ts = tstate_[static_cast<std::size_t>(g.fwd_step)];
    const Tensor& e = g.gin == plan_.grad_output_slot
                          ? grad_out
                          : arena_.at(static_cast<std::size_t>(
                                plan_.slots[static_cast<std::size_t>(g.gin)].buffer));
    Tensor& gout0 = bind_slot(g.gout0, ts.in_shape);
    switch (s.op) {
      case OpKind::kLinear:
        exec_linear_grad(s, ts, e, slot_tensor(s.in0, *train_input_), gout0, g.acc0);
        break;
      case OpKind::kConv2d:
        exec_conv_grad(s, ts, e, slot_tensor(s.in0, *train_input_), gout0, g.acc0);
        break;
      case OpKind::kBatchNorm: {
        const Tensor& xhat = arena_.at(
            static_cast<std::size_t>(plan_.slots[static_cast<std::size_t>(s.save)].buffer));
        exec_bn_grad(s, ts, e, xhat, gout0, g.acc0);
        break;
      }
      case OpKind::kRelu: exec_relu_grad(ts, e, gout0, g.acc0); break;
      case OpKind::kMaxPool2x2: exec_maxpool_grad(ts, e, gout0, g.acc0, ts.dx_scratch); break;
      case OpKind::kGlobalAvgPool: exec_gap_grad(ts, e, gout0, g.acc0); break;
      case OpKind::kResidualJoin: {
        Tensor& gout1 = bind_slot(g.gout1, ts.in_shape);
        exec_join_grad(ts, e, gout0, g.acc0, gout1, g.acc1);
        break;
      }
    }
  }
  return arena_.at(static_cast<std::size_t>(
      plan_.slots[static_cast<std::size_t>(plan_.grad_input_slot)].buffer));
}

void FloatBackend::exec_linear_grad(const Step& s, TrainState& ts, const Tensor& e,
                                    const Tensor& in, Tensor& gout, bool acc) {
  // nn::Linear::backward: dW = dY^T X, db = colsum(dY), dX = dY W — the same
  // blocked GEMMs matmul makes, staged through persistent scratch.
  const std::size_t n = e.shape()[0];
  ts.e_t.resize({s.out_c, n});
  tensor::transpose_into(e.data(), n, s.out_c, ts.e_t.data());
  ts.dw.resize({s.out_c, s.in_c});
  ts.dw.fill(0.0f);
  tensor::gemm_blocked(s.out_c, s.in_c, n, ts.e_t.data(), n, in.data(), s.in_c, ts.dw.data(),
                       s.in_c);
  Tensor& gw = grads_[static_cast<std::size_t>(ts.wgrad)];
  float* gwp = gw.data();
  const float* dwp = ts.dw.data();
  for (std::size_t i = 0; i < gw.numel(); ++i) gwp[i] += dwp[i];
  float* gb = grads_[static_cast<std::size_t>(ts.bgrad)].data();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < s.out_c; ++j) gb[j] += e.data()[i * s.out_c + j];
  }
  if (acc) ts.dx_scratch.resize(gout.shape());
  Tensor& target = acc ? ts.dx_scratch : gout;
  target.fill(0.0f);
  tensor::gemm_blocked(n, s.in_c, s.out_c, e.data(), s.out_c, s.linear->weight().value.data(),
                       s.in_c, target.data(), s.in_c);
  if (acc) {
    float* d = gout.data();
    const float* v = ts.dx_scratch.data();
    for (std::size_t i = 0; i < gout.numel(); ++i) d[i] += v[i];
  }
}

void FloatBackend::exec_conv_grad(const Step& s, TrainState& ts, const Tensor& e, const Tensor& in,
                                  Tensor& gout, bool acc) {
  // nn::Conv2d::backward + tensor::conv2d_backward: per-channel bias
  // reduction, then the serial per-sample im2col / dW GEMM / dX col2im loop —
  // dW accumulates straight into the backend-owned grad (same layout and
  // bits as eager's reshaped-copy-and-write-back), W^T is a panel cached per
  // Param::version (a transpose moves data, it computes nothing).
  const tensor::Conv2dGeom geom{s.in_c,   ts.in_shape[2], ts.in_shape[3], s.out_c,
                                s.kernel, s.stride,       s.pad,          s.kernel_w};
  const std::size_t batch = ts.in_shape[0];
  const std::size_t pixels = geom.out_h() * geom.out_w();
  const std::size_t patch = geom.patch();
  if (s.epilogue.bias) {
    float* gb = grads_[static_cast<std::size_t>(ts.bgrad)].data();
#pragma omp parallel for schedule(static) if (s.out_c > 1 && batch * s.out_c * pixels > 16384)
    for (std::size_t ci = 0; ci < s.out_c; ++ci) {
      float acc_b = 0.0f;
      for (std::size_t ni = 0; ni < batch; ++ni) {
        const float* src = e.data() + (ni * s.out_c + ci) * pixels;
        for (std::size_t i = 0; i < pixels; ++i) acc_b += src[i];
      }
      gb[ci] += acc_b;
    }
  }
  nn::Param& w = s.conv->weight();
  if (!ts.wt_bound || ts.wt_version != w.version) {
    ts.w2d_t.resize({patch, s.out_c});
    tensor::transpose_into(w.value.data(), s.out_c, patch, ts.w2d_t.data());
    ts.wt_version = w.version;
    ts.wt_bound = true;
  }
  ts.cols.resize({patch, pixels});
  ts.cols_t.resize({pixels, patch});
  ts.grad_cols.resize({patch, pixels});
  if (acc) ts.dx_scratch.resize(gout.shape());
  Tensor& target = acc ? ts.dx_scratch : gout;
  target.fill(0.0f);
  float* gw = grads_[static_cast<std::size_t>(ts.wgrad)].data();  // [out_c, patch] layout
  const std::size_t in_stride = s.in_c * geom.in_h * geom.in_w;
  const std::size_t out_stride = s.out_c * pixels;
  for (std::size_t nidx = 0; nidx < batch; ++nidx) {
    const float* go = e.data() + nidx * out_stride;
    // dW += dY * cols^T; the serial batch loop keeps accumulation order fixed.
    tensor::im2col(in.data() + nidx * in_stride, geom, ts.cols.data());
    tensor::transpose_into(ts.cols.data(), patch, pixels, ts.cols_t.data());
    tensor::gemm_blocked(s.out_c, patch, pixels, go, pixels, ts.cols_t.data(), patch, gw, patch);
    // dX = col2im(W^T * dY)
    ts.grad_cols.fill(0.0f);
    tensor::gemm_blocked(patch, pixels, s.out_c, ts.w2d_t.data(), s.out_c, go, pixels,
                         ts.grad_cols.data(), pixels);
    tensor::col2im(ts.grad_cols.data(), geom, target.data() + nidx * in_stride);
  }
  if (acc) {
    float* d = gout.data();
    const float* v = ts.dx_scratch.data();
    for (std::size_t i = 0; i < gout.numel(); ++i) d[i] += v[i];
  }
}

void FloatBackend::exec_bn_grad(const Step& s, TrainState& ts, const Tensor& e, const Tensor& xhat,
                                Tensor& gout, bool acc) {
  // nn::BatchNorm2d::backward, with x-hat from the save slot and inv_std from
  // the last train_forward. May run in place over e (the per-channel
  // reductions complete before any element of that channel is written).
  const std::size_t n = ts.in_shape[0], c = ts.in_shape[1];
  const std::size_t plane = ts.in_shape[2] * ts.in_shape[3];
  const auto per_channel = static_cast<float>(n * plane);
  float* gg = grads_[static_cast<std::size_t>(ts.wgrad)].data();
  float* gb = grads_[static_cast<std::size_t>(ts.bgrad)].data();
  const float* gamma = s.bn->gamma().value.data();
#pragma omp parallel for schedule(static) if (c > 1 && n * plane > 4096)
  for (std::size_t ci = 0; ci < c; ++ci) {
    double dg = 0.0, db = 0.0;
    for (std::size_t ni = 0; ni < n; ++ni) {
      const float* gy = e.data() + (ni * c + ci) * plane;
      const float* xh = xhat.data() + (ni * c + ci) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        dg += static_cast<double>(gy[i]) * xh[i];
        db += gy[i];
      }
    }
    gg[ci] += static_cast<float>(dg);
    gb[ci] += static_cast<float>(db);
    const float scale = gamma[ci] * ts.inv_std[ci] / per_channel;
    const auto sdg = static_cast<float>(dg);
    const auto sdb = static_cast<float>(db);
    for (std::size_t ni = 0; ni < n; ++ni) {
      const float* gy = e.data() + (ni * c + ci) * plane;
      const float* xh = xhat.data() + (ni * c + ci) * plane;
      float* gx = gout.data() + (ni * c + ci) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        const float v = scale * (per_channel * gy[i] - sdb - xh[i] * sdg);
        gx[i] = acc ? gx[i] + v : v;
      }
    }
  }
}

void FloatBackend::exec_relu_grad(const TrainState& ts, const Tensor& e, Tensor& gout, bool acc) {
  // nn::ReLU::backward: pass where the mask fired, zero elsewhere.
  const std::size_t numel = e.numel();
  const float* g = e.data();
  float* dst = gout.data();
#pragma omp parallel for schedule(static) if (numel > 16384)
  for (std::size_t i = 0; i < numel; ++i) {
    const float v = ts.mask[i] != 0 ? g[i] : 0.0f;
    dst[i] = acc ? dst[i] + v : v;
  }
}

void FloatBackend::exec_maxpool_grad(TrainState& ts, const Tensor& e, Tensor& gout, bool acc,
                                     Tensor& scratch) {
  // tensor::maxpool2x2_backward: zero, then the serial winner scatter.
  if (acc) scratch.resize(gout.shape());
  Tensor& target = acc ? scratch : gout;
  target.fill(0.0f);
  for (std::size_t i = 0; i < e.numel(); ++i) target[ts.argmax[i]] += e[i];
  if (acc) {
    float* d = gout.data();
    const float* v = scratch.data();
    for (std::size_t i = 0; i < gout.numel(); ++i) d[i] += v[i];
  }
}

void FloatBackend::exec_gap_grad(const TrainState& ts, const Tensor& e, Tensor& gout, bool acc) {
  // tensor::global_avgpool_backward's serial per-cell broadcast.
  const std::size_t n = ts.in_shape[0], c = ts.in_shape[1];
  const std::size_t plane = ts.in_shape[2] * ts.in_shape[3];
  const float inv = 1.0f / static_cast<float>(plane);
  for (std::size_t ni = 0; ni < n; ++ni) {
    for (std::size_t ci = 0; ci < c; ++ci) {
      const float g = e.data()[ni * c + ci] * inv;
      float* dst = gout.data() + (ni * c + ci) * plane;
      for (std::size_t i = 0; i < plane; ++i) dst[i] = acc ? dst[i] + g : g;
    }
  }
}

void FloatBackend::exec_join_grad(const TrainState& ts, const Tensor& e, Tensor& gout0, bool acc0,
                                  Tensor& gout1, bool acc1) {
  // ResidualBlock::backward's masked g, routed to both branches: the main
  // branch's bn2 and the skip operand receive the identical masked value.
  const std::size_t numel = e.numel();
  const float* g = e.data();
  float* d0 = gout0.data();
  float* d1 = gout1.data();
#pragma omp parallel for schedule(static) if (numel > 16384)
  for (std::size_t i = 0; i < numel; ++i) {
    const float v = ts.mask[i] != 0 ? g[i] : 0.0f;
    d0[i] = acc0 ? d0[i] + v : v;
    d1[i] = acc1 ? d1[i] + v : v;
  }
}

}  // namespace pdnn::exec
