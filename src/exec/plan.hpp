// plan.hpp — the backend-neutral compiled execution plan.
//
// One lowering for every inference backend (cf. marian-dev's expression
// graphs): exec::GraphBuilder walks an nn::Module tree once and linearizes it
// into an ExecPlan — typed steps wired through explicit tensor slots — and
// exec::ArenaPlanner folds the slots onto a small set of reusable arena
// buffers from their first-def/last-use lifetimes. Backends (exec::FloatBackend,
// quant::PositSession) attach their own per-step state (weight panels, LUTs,
// quire pools) to the same plan and execute the identical dataflow, so the
// whole serving stack shares one execution architecture.
//
// Dataflow model: every step consumes slot `in0` (joins also `in1`) and
// defines slot `out`. Slot 0 is the plan input (caller-owned, never written);
// all other slots live in a TensorArena. A ResidualBlock lowers to its main
// branch steps, its skip branch steps, and one kResidualJoin (the rounded
// add + trailing ReLU the block performs), so nothing in the runtime is
// shaped like a tree anymore.
//
// Training plans (GraphBuilder::lower_training) extend the same dataflow with
// one GradStep per forward step, emitted in exact reverse forward order: grad
// step k runs at unified-timeline time `steps.size() + k`, reads the gradient
// slot of its forward step's output, and defines (or accumulates into) the
// gradient slot of each forward input. Saved-for-backward activations (the
// GEMM inputs of kLinear/kConv2d, the normalized x-hat a kBatchNorm writes to
// its `save` slot) are pinned across the forward/backward boundary by
// extending their last_use into the grad timeline, so ArenaPlanner folds
// activations and gradients onto one arena without ever clobbering a tensor
// the backward pass still needs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/layers.hpp"
#include "tensor/tensor.hpp"

namespace pdnn::exec {

enum class OpKind {
  kLinear,
  kConv2d,
  kBatchNorm,
  kRelu,
  kMaxPool2x2,
  kGlobalAvgPool,
  kResidualJoin,  ///< elementwise add of main+skip, then ReLU (block semantics)
};

const char* to_string(OpKind op);

/// Fused tail work a step applies to each output element after its final
/// accumulation, before the store (see exec::PassPipeline). `bias` records
/// that the step adds its per-output-channel bias (always true for kLinear,
/// Conv2d::has_bias() for kConv2d, forced true when a BatchNorm is folded in);
/// `relu` is a trailing nn::ReLU swallowed by the epilogue-fusion pass. On the
/// float path both are bit-identical to running the separate sweeps: every
/// element's bias add and zero-clamp happen exactly once, after the element's
/// accumulation is complete, in the same expression order.
struct Epilogue {
  bool bias = false;
  bool relu = false;
};

struct Step {
  OpKind op = OpKind::kRelu;
  std::string name;                          ///< layer (or residual block) name
  nn::LayerClass cls = nn::LayerClass::kConv;  ///< format family for backends
  int depth = 0;                             ///< 0 top-level, 1 inside a residual branch

  // The bound leaf module for parameterized ops (exactly one non-null). The
  // module graph must outlive the plan; backends read weights/stats through
  // these pointers.
  nn::Linear* linear = nullptr;
  nn::Conv2d* conv = nullptr;
  nn::BatchNorm2d* bn = nullptr;

  // Geometry snapshot: kLinear uses in_c/out_c as feature counts, kConv2d the
  // full window, kBatchNorm out_c as the channel count.
  std::size_t in_c = 0, out_c = 0;
  std::size_t kernel = 0, kernel_w = 0, stride = 1, pad = 0;

  // Pass-pipeline rewrites (exec::PassPipeline; all default to the plain
  // PR-5 lowering).
  Epilogue epilogue;
  /// fold_bn pass: the eval-mode BatchNorm folded into this conv's weights.
  /// Backends derive folded panels from (conv W/b, gamma, beta, running
  /// stats) at refresh time; the BN step itself is gone from the plan.
  nn::BatchNorm2d* folded_bn = nullptr;
  /// 1x1/stride-1/pad-0 conv: the im2col patch matrix IS the input plane, so
  /// backends feed the GEMM (or the posit encoder) the input slice directly.
  bool elide_im2col = false;

  // Slot wiring.
  int in0 = -1;
  int in1 = -1;  ///< kResidualJoin only: the skip operand
  int out = -1;
  bool in_place = false;  ///< planner: out shares in0's buffer (elementwise ops)
  /// Training plans only: arena slot this step saves for its backward pass
  /// (kBatchNorm writes x-hat there). -1 everywhere else; masks/argmax are
  /// backend state, not slots, because they are not float tensors.
  int save = -1;
};

/// One backward step of a training plan, differentiating forward step
/// `fwd_step`. Reads `gin` (the grad slot of the forward step's output — the
/// caller-owned grad_out for the last step) and writes `gout0` = d(loss)/d(in0)
/// (joins also `gout1` for in1). `acc0`/`acc1` mark outputs whose slot was
/// already initialized by an earlier grad step (a forward slot with several
/// readers, e.g. a residual block input): the step must add its contribution
/// instead of overwriting. Accumulation order across grad steps differs from
/// eager's `gm += gs` only by operand order of the final IEEE add, which is
/// commutative for non-NaN values — so planned backward stays bit-identical.
struct GradStep {
  int fwd_step = -1;
  int gin = -1;
  int gout0 = -1;
  int gout1 = -1;  ///< kResidualJoin only: gradient of the skip operand
  bool acc0 = false;
  bool acc1 = false;
  bool in_place = false;  ///< planner: gout0 shares gin's buffer (elementwise)
};

/// One tensor defined during a run. Lifetimes and buffer assignment are
/// filled by ArenaPlanner.
struct Slot {
  /// Defining time: the forward step index, or `steps.size() + k` for a slot
  /// first written by grad step k. -1 for the caller-owned plan input and the
  /// caller-owned grad_out of a training plan.
  int def_step = -1;
  int last_use = -1;  ///< last timeline point reading it; the output slot never dies
  int buffer = -1;    ///< arena buffer id; -1 for the caller-owned plan input
  /// Training plans: this slot holds the gradient of forward slot `grad_of`
  /// (-1 for forward activation and save slots).
  int grad_of = -1;
};

struct ExecPlan {
  std::vector<Step> steps;
  std::vector<Slot> slots;  ///< slot 0 is always the plan input
  int input_slot = 0;
  int output_slot = 0;
  std::size_t num_buffers = 0;      ///< arena buffers after lifetime folding
  std::size_t top_level_steps = 0;  ///< a residual region counts as one

  // Training extension (empty/-1 for inference plans).
  std::vector<GradStep> grad_steps;  ///< reverse forward order, one per step
  int grad_input_slot = -1;   ///< arena slot holding d(loss)/d(plan input)
  int grad_output_slot = -1;  ///< caller-owned d(loss)/d(plan output)
  bool training() const { return !grad_steps.empty(); }

  std::size_t in_place_steps() const;
  /// Arena slots that reuse a buffer another slot already occupied — the
  /// savings the lifetime planner bought over one-buffer-per-slot.
  std::size_t reused_slots() const;

  /// Human-readable plan: the step table (slot wiring, buffers, in-place
  /// marks) plus the summary line. Training plans append the gradient step
  /// table with `grad:`-prefixed slots. `arena_bytes` is backend state
  /// (buffer sizes depend on the shapes actually run), so callers pass it
  /// in — 0 prints "unsized".
  std::string dump(std::size_t arena_bytes = 0) const;
};

/// Validate a step's input shape(s) and return its output shape — the shape
/// semantics every backend shares. `skip` is required for kResidualJoin.
/// Throws std::invalid_argument (prefixed with `who`) on rank/dimension
/// mismatches, with the offending dimensions in the message.
tensor::Shape infer_out_shape(const Step& step, const tensor::Shape& in,
                              const tensor::Shape* skip, const char* who);

}  // namespace pdnn::exec
