// passes.hpp — plan-level rewrite passes between lowering and arena planning.
//
// GraphBuilder::lower produces a faithful one-step-per-layer plan; the
// PassPipeline then rewrites it (cf. marian-dev's expression-graph lowering:
// optimize the compiled graph, not the module tree). Three passes, each
// individually togglable through PlanOptions:
//
//   fold_batchnorm      eval-mode BN folded into the preceding conv's weights
//                       and bias at compile time. Changes rounding (weights
//                       are pre-scaled), so it is OFF by default and tested
//                       against an epsilon oracle, never bit-identity.
//   fuse_relu_epilogues a trailing nn::ReLU swallowed into the producing
//                       kLinear/kConv2d/kBatchNorm step's Epilogue. On the
//                       float path this is bit-identical: the clamp applies
//                       to the exact value the separate sweep would have
//                       read. The posit backend clamps the decoded floats it
//                       stores anyway, so it is bit-identical there too.
//   elide_im2col_1x1    a 1x1/stride-1/pad-0 conv's im2col patch matrix IS
//                       the input plane [C, H*W]; mark the step so backends
//                       feed the GEMM (or posit encoder) the input slice
//                       directly with no patch gather. Pure data-movement
//                       removal — bit-identical everywhere.
//
// Passes run BEFORE ArenaPlanner::plan: they rewrite steps/slots freely and
// leave lifetimes/buffers unassigned; the planner then sees the fused plan
// and plans tighter (fewer intermediate slots to fold).
#pragma once

#include <cstddef>

#include "exec/plan.hpp"

namespace pdnn::exec {

/// Which rewrites GraphBuilder::lower applies. Defaults: the bit-identical
/// passes on, the rounding-changing BN fold off.
struct PlanOptions {
  bool fuse_epilogues = true;
  bool elide_im2col_1x1 = true;
  bool fold_bn = false;

  /// Every pass off — the plain PR-5 one-step-per-layer lowering.
  static PlanOptions none();
  /// The default set, honoring the PDNN_PLAN_PASSES env toggle:
  /// "0"/"off" disables every pass (CI runs the suites both ways).
  static PlanOptions defaults();
};

class PassPipeline {
 public:
  /// Run the enabled passes in dependency order (fold_bn first so the ReLU
  /// behind a folded BN fuses into the conv, then epilogue fusion, then
  /// im2col elision). The plan must be fresh from lowering (no lifetimes).
  static void run(ExecPlan& plan, const PlanOptions& opts);

  // Individual passes; each returns the number of steps rewritten. Exposed
  // for targeted tests — run() is the production entry point.
  static std::size_t fold_batchnorm(ExecPlan& plan);
  static std::size_t fuse_relu_epilogues(ExecPlan& plan);
  static std::size_t elide_im2col_1x1(ExecPlan& plan);
};

}  // namespace pdnn::exec
