#include "exec/fault_injection.hpp"

#include <cstring>
#include <thread>
#include <utility>

namespace pdnn::exec {

using tensor::Tensor;

FaultInjectingBackend::FaultInjectingBackend(std::unique_ptr<Backend> inner, FaultConfig cfg)
    : inner_(std::move(inner)), cfg_(cfg), rng_(cfg.seed) {
  if (!inner_) throw std::invalid_argument("FaultInjectingBackend: inner backend is null");
  if (cfg_.throw_rate < 0.0 || cfg_.throw_rate > 1.0) {
    throw std::invalid_argument("FaultInjectingBackend: throw_rate must be in [0,1]");
  }
}

std::unique_ptr<Backend> FaultInjectingBackend::wrap(const Backend& backend,
                                                     const FaultConfig& cfg) {
  return std::make_unique<FaultInjectingBackend>(backend.clone(), cfg);
}

std::unique_ptr<Backend> FaultInjectingBackend::clone() const {
  FaultConfig child = cfg_;
  // splitmix64-style seed derivation: reproducible for pools built by
  // sequential clone() calls, distinct streams per child.
  std::uint64_t z = cfg_.seed + 0x9e3779b97f4a7c15ULL * ++clones_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  child.seed = z ^ (z >> 31);
  return std::make_unique<FaultInjectingBackend>(inner_->clone(), child);
}

namespace {

bool contains_value(const Tensor& x, float trigger) {
  const float* p = x.data();
  const std::size_t n = x.numel();
  for (std::size_t i = 0; i < n; ++i) {
    if (std::memcmp(&p[i], &trigger, sizeof(float)) == 0) return true;
  }
  return false;
}

}  // namespace

const Tensor& FaultInjectingBackend::run_impl(const Tensor& x) {
  const std::uint64_t run = ++runs_;
  if (cfg_.latency.count() > 0) std::this_thread::sleep_for(cfg_.latency);
  if (cfg_.has_trigger && contains_value(x, cfg_.trigger)) {
    ++injected_;
    throw InjectedFault("FaultInjectingBackend: trigger value present in input (run " +
                        std::to_string(run) + ")");
  }
  bool scheduled = (cfg_.throw_on_run != 0 && run == cfg_.throw_on_run) ||
                   (cfg_.throw_every != 0 && run % cfg_.throw_every == 0);
  if (cfg_.throw_rate > 0.0) {
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    scheduled = scheduled || unit(rng_) < cfg_.throw_rate;
  }
  if (scheduled) {
    ++injected_;
    throw InjectedFault("FaultInjectingBackend: scheduled fault at run " + std::to_string(run));
  }
  const Tensor& y = inner_->run(x);
  if (cfg_.corrupt_on_run != 0 && run == cfg_.corrupt_on_run && y.numel() > 0) {
    ++injected_;
    corrupted_ = y;  // deep copy; the inner buffer stays clean
    const std::size_t rows = corrupted_.shape()[0];
    const std::size_t row = std::min(cfg_.corrupt_row, rows - 1);
    const std::size_t stride = corrupted_.numel() / rows;
    float* p = corrupted_.data() + row * stride;
    for (std::size_t i = 0; i < stride; ++i) {
      std::uint32_t bits;
      std::memcpy(&bits, &p[i], sizeof(bits));
      bits ^= 1u;  // low mantissa bit: always a bit-level difference
      std::memcpy(&p[i], &bits, sizeof(bits));
    }
    return corrupted_;
  }
  return y;
}

}  // namespace pdnn::exec
