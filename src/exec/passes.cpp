#include "exec/passes.hpp"

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace pdnn::exec {

namespace {

/// Index of the only step reading `slot`, or -1 if the slot is the plan
/// output, unread, or read more than once. Fusion may only consume a value
/// with exactly one consumer — the plan output must stay a real slot, and a
/// twice-read value (residual skip operands) must survive as written.
int single_reader(const ExecPlan& plan, int slot) {
  if (slot == plan.output_slot) return -1;
  int reader = -1;
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    const Step& s = plan.steps[i];
    if (s.in0 == slot || s.in1 == slot) {
      if (reader >= 0) return -1;
      reader = static_cast<int>(i);
    }
  }
  return reader;
}

/// Drop the steps marked dead and renumber slots densely (slot 0 stays the
/// caller-owned input). Rewrites are pre-planner, so lifetimes/buffers are
/// simply reset; ArenaPlanner fills them in afterwards.
void compact(ExecPlan& plan, const std::vector<char>& dead) {
  std::vector<Step> live;
  live.reserve(plan.steps.size());
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    if (dead[i] == 0) live.push_back(std::move(plan.steps[i]));
  }
  plan.steps = std::move(live);

  std::vector<int> remap(plan.slots.size(), -1);
  remap[static_cast<std::size_t>(plan.input_slot)] = 0;
  int next = 1;
  const auto touch = [&](int s) {
    if (s >= 0 && remap[static_cast<std::size_t>(s)] < 0) {
      remap[static_cast<std::size_t>(s)] = next++;
    }
  };
  // Steps are topologically ordered, so touching in operands before the def
  // reproduces the original dense def-order numbering.
  for (const Step& s : plan.steps) {
    touch(s.in0);
    touch(s.in1);
    touch(s.out);
  }

  plan.slots.assign(static_cast<std::size_t>(next), Slot{});
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    Step& s = plan.steps[i];
    s.in0 = remap[static_cast<std::size_t>(s.in0)];
    if (s.in1 >= 0) s.in1 = remap[static_cast<std::size_t>(s.in1)];
    s.out = remap[static_cast<std::size_t>(s.out)];
    plan.slots[static_cast<std::size_t>(s.out)].def_step = static_cast<int>(i);
  }
  plan.input_slot = 0;
  plan.output_slot = remap[static_cast<std::size_t>(plan.output_slot)];

  std::size_t top = 0;
  for (const Step& s : plan.steps) top += s.depth == 0 ? 1 : 0;
  plan.top_level_steps = top;
}

}  // namespace

PlanOptions PlanOptions::none() {
  PlanOptions o;
  o.fuse_epilogues = false;
  o.elide_im2col_1x1 = false;
  o.fold_bn = false;
  return o;
}

PlanOptions PlanOptions::defaults() {
  if (const char* env = std::getenv("PDNN_PLAN_PASSES")) {
    const std::string v(env);
    if (v == "0" || v == "off" || v == "OFF") return none();
  }
  return PlanOptions{};
}

void PassPipeline::run(ExecPlan& plan, const PlanOptions& opts) {
  if (opts.fold_bn) fold_batchnorm(plan);
  if (opts.fuse_epilogues) fuse_relu_epilogues(plan);
  if (opts.elide_im2col_1x1) elide_im2col_1x1(plan);
}

std::size_t PassPipeline::fold_batchnorm(ExecPlan& plan) {
  // conv -> bn where the conv output has no other reader: the BN becomes a
  // per-output-channel affine on the conv result, so it folds into the conv
  // weights (w' = w*scale) and a bias (b' = (b - mean)*scale + beta) the
  // backend derives at refresh time from the live module parameters. A BN
  // behind anything else (pool, join, the plan input) stays a real step.
  // nn::BatchNorm2d is rank-4-only, so a Linear producer cannot occur.
  std::vector<char> dead(plan.steps.size(), 0);
  std::size_t folded = 0;
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    Step& conv = plan.steps[i];
    if (conv.op != OpKind::kConv2d || conv.folded_bn != nullptr) continue;
    const int reader = single_reader(plan, conv.out);
    if (reader < 0) continue;
    Step& bn = plan.steps[static_cast<std::size_t>(reader)];
    if (bn.op != OpKind::kBatchNorm || dead[static_cast<std::size_t>(reader)] != 0) continue;
    conv.folded_bn = bn.bn;
    conv.epilogue.bias = true;  // the folded bias exists even for bias-free convs
    conv.out = bn.out;
    dead[static_cast<std::size_t>(reader)] = 1;
    ++folded;
  }
  if (folded > 0) compact(plan, dead);
  return folded;
}

std::size_t PassPipeline::fuse_relu_epilogues(ExecPlan& plan) {
  // producer -> relu where the producer output has no other reader: the
  // clamp runs on the exact value the separate sweep would have read, so
  // fusing it into the producer's epilogue is bit-identical. Only producers
  // whose backends implement the epilogue qualify (GEMM steps and BN);
  // a ReLU behind a pool or join stays a real step. relu(relu(x)) collapses
  // to one mark — also bit-identical.
  std::vector<char> dead(plan.steps.size(), 0);
  std::size_t fused = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < plan.steps.size(); ++i) {
      Step& prod = plan.steps[i];
      if (dead[i] != 0) continue;
      if (prod.op != OpKind::kLinear && prod.op != OpKind::kConv2d &&
          prod.op != OpKind::kBatchNorm) {
        continue;
      }
      const int reader = single_reader(plan, prod.out);
      if (reader < 0) continue;
      Step& relu = plan.steps[static_cast<std::size_t>(reader)];
      if (relu.op != OpKind::kRelu || dead[static_cast<std::size_t>(reader)] != 0) continue;
      prod.epilogue.relu = true;
      prod.out = relu.out;
      dead[static_cast<std::size_t>(reader)] = 1;
      ++fused;
      changed = true;  // a following relu may now be adjacent to the producer
    }
  }
  if (fused > 0) compact(plan, dead);
  return fused;
}

std::size_t PassPipeline::elide_im2col_1x1(ExecPlan& plan) {
  std::size_t elided = 0;
  for (Step& s : plan.steps) {
    if (s.op != OpKind::kConv2d || s.elide_im2col) continue;
    if (s.kernel == 1 && s.kernel_w == 1 && s.stride == 1 && s.pad == 0) {
      s.elide_im2col = true;
      ++elided;
    }
  }
  return elided;
}

}  // namespace pdnn::exec
