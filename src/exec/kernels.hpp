// kernels.hpp — the plan steps whose arithmetic is numeric-format-free,
// shared by every backend. ReLU is a sign test and max pooling is
// comparisons only, so posit and float execution are the same float kernel;
// keeping one copy here is what guarantees the backends can never diverge
// on these steps.
#pragma once

#include <cstddef>
#include <limits>

#include "tensor/tensor.hpp"

namespace pdnn::exec {

/// out = max(x, 0) elementwise; out may alias in (in-place plan steps write
/// the same index they read).
inline void relu_kernel(const tensor::Tensor& in, tensor::Tensor& out) {
  const std::size_t numel = in.numel();
  const float* src = in.data();
  float* dst = out.data();
#pragma omp parallel for schedule(static) if (numel > 16384)
  for (std::size_t i = 0; i < numel; ++i) dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
}

/// 2x2/stride-2 max pooling: tensor::maxpool2x2_forward's comparison
/// semantics (NaN entries skipped via `v > best` from -inf — NaR decodes to
/// NaN on the posit path) without its per-call argmax/output allocations.
inline void maxpool2x2_kernel(const tensor::Tensor& in, tensor::Tensor& out) {
  const std::size_t n = in.shape()[0], c = in.shape()[1], ih = in.shape()[2], iw = in.shape()[3];
  const std::size_t oh = ih / 2, ow = iw / 2;
  const float* src = in.data();
  float* dst = out.data();
#pragma omp parallel for schedule(static) if (n * c > 1 && n * c * oh * ow > 16384)
  for (std::size_t plane = 0; plane < n * c; ++plane) {
    const float* ip = src + plane * ih * iw;
    float* op = dst + plane * oh * ow;
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        float best = -std::numeric_limits<float>::infinity();
        for (std::size_t dy = 0; dy < 2; ++dy) {
          for (std::size_t dx = 0; dx < 2; ++dx) {
            const float v = ip[(2 * y + dy) * iw + 2 * x + dx];
            if (v > best) best = v;
          }
        }
        op[y * ow + x] = best;
      }
    }
  }
}

}  // namespace pdnn::exec
