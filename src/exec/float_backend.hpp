// float_backend.hpp — compile-once/run-many FP32 inference over an ExecPlan.
//
// The float twin of quant::PositSession: GraphBuilder lowers the module tree
// once, ArenaPlanner folds every intermediate onto reusable arena buffers,
// and run() executes the plan on the blocked-GEMM path with persistent
// im2col scratch and pre-transposed linear weight panels. Steady state
// (repeated shapes, no weight mutation) performs zero heap allocations,
// and outputs are bit-identical to chaining nn::Module::forward in eval
// mode — the eager path computes exactly the same GEMM calls, bias loops,
// and elementwise expressions, just with fresh temporaries each time.
//
// An optional PrecisionPolicy mirrors the eager forward's Fig. 3 hooks
// (W_p = P(W) cached per Param::version, A_p = P(A) applied in place on the
// slot buffer), so a trainer's eval loop under posit-simulated quantization
// can run through the compiled plan too. With no policy (or an inactive
// one), the backend is the plain FP32 reference.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/backend.hpp"
#include "nn/precision.hpp"
#include "tensor/arena.hpp"

namespace pdnn::exec {

class FloatBackend final : public Backend {
 public:
  /// Compile `net` (any Module tree GraphBuilder can lower). The module
  /// graph must outlive the backend: weights, BN statistics, and biases are
  /// read through the live modules, with Param::version re-deriving cached
  /// panels exactly when a parameter mutates.
  static FloatBackend compile(nn::Module& net, nn::PrecisionPolicy* policy = nullptr);

  FloatBackend(FloatBackend&&) noexcept = default;
  FloatBackend& operator=(FloatBackend&&) noexcept = default;

  /// A fresh backend compiled over the same module graph and policy, with
  /// its own panels, scratch, and arena — see Backend::clone().
  std::unique_ptr<Backend> clone() const override;

  const ExecPlan& plan() const override { return plan_; }
  std::size_t arena_bytes() const override { return arena_.bytes(); }
  std::size_t arena_buffers() const { return arena_.buffers(); }

 protected:
  /// Eval-mode forward pass behind Backend::run(); returns a reference into
  /// the slot arena, valid until the next run() (see the contract in
  /// backend.hpp). Batch size (and conv H/W) may vary between calls.
  const tensor::Tensor& run_impl(const tensor::Tensor& x) override;

 private:
  FloatBackend() = default;

  /// Per-step backend state: weight-derived panels and conv scratch.
  struct StepState {
    tensor::Tensor panel;   ///< linear: W^T [in,out]; conv under policy: P(W)
    std::uint64_t version = 0;
    bool bound = false;
    tensor::Tensor qgamma;  ///< bn under policy: P(gamma)
    std::uint64_t gamma_version = 0;
    tensor::Tensor cols;    ///< conv im2col scratch, persistent across runs
  };

  bool quantizing() const { return policy_ != nullptr && policy_->active(); }
  void refresh();
  const tensor::Tensor& slot_tensor(int slot, const tensor::Tensor& x) const;

  void exec_linear(const Step& s, StepState& st, const tensor::Tensor& in, tensor::Tensor& out);
  void exec_conv(const Step& s, StepState& st, const tensor::Tensor& in, tensor::Tensor& out);
  void exec_bn(const Step& s, const StepState& st, const tensor::Tensor& in, tensor::Tensor& out);
  static void exec_gap(const tensor::Tensor& in, tensor::Tensor& out);
  static void exec_join(const tensor::Tensor& main, const tensor::Tensor& skip,
                        tensor::Tensor& out);

  ExecPlan plan_;
  std::vector<StepState> state_;
  tensor::TensorArena arena_;
  nn::Module* net_ = nullptr;              // not owned; clone() recompiles from it
  nn::PrecisionPolicy* policy_ = nullptr;  // not owned
  bool panels_quantized_ = false;
  tensor::Tensor passthrough_;  // output buffer for an empty module graph
};

}  // namespace pdnn::exec
