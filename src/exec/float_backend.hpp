// float_backend.hpp — compile-once/run-many FP32 inference over an ExecPlan.
//
// The float twin of quant::PositSession: GraphBuilder lowers the module tree
// once, ArenaPlanner folds every intermediate onto reusable arena buffers,
// and run() executes the plan on the blocked-GEMM path with persistent
// im2col scratch and pre-transposed linear weight panels. Steady state
// (repeated shapes, no weight mutation) performs zero heap allocations,
// and outputs are bit-identical to chaining nn::Module::forward in eval
// mode — the eager path computes exactly the same GEMM calls, bias loops,
// and elementwise expressions, just with fresh temporaries each time. The
// PassPipeline's fusion passes (epilogue ReLU, 1x1 im2col elision) preserve
// that bit-identity; the opt-in fold_bn pass pre-scales conv weights by the
// BN affine and is epsilon-close instead (weights round once at fold time).
//
// An optional PrecisionPolicy mirrors the eager forward's Fig. 3 hooks
// (W_p = P(W) cached per Param::version, A_p = P(A) applied in place on the
// slot buffer), so a trainer's eval loop under posit-simulated quantization
// can run through the compiled plan too. With no policy (or an inactive
// one), the backend is the plain FP32 reference.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/backend.hpp"
#include "exec/passes.hpp"
#include "nn/precision.hpp"
#include "tensor/arena.hpp"

namespace pdnn::exec {

class FloatBackend final : public Backend {
 public:
  /// Compile `net` (any Module tree GraphBuilder can lower). The module
  /// graph must outlive the backend: weights, BN statistics, and biases are
  /// read through the live modules, with Param::version (and
  /// BatchNorm2d::stats_version) re-deriving cached panels exactly when a
  /// parameter mutates. `opts` selects the plan rewrites; a non-null
  /// `policy` forces fuse_epilogues/fold_bn off, because the Fig. 3 hooks
  /// fire between a layer and its trailing ReLU (and quantize W before BN
  /// applies) in the eager forward the policy path must match bit-for-bit.
  static FloatBackend compile(nn::Module& net, nn::PrecisionPolicy* policy = nullptr,
                              PlanOptions opts = PlanOptions::defaults());

  FloatBackend(FloatBackend&&) noexcept = default;
  FloatBackend& operator=(FloatBackend&&) noexcept = default;

  /// A fresh backend compiled over the same module graph and policy, with
  /// its own panels, scratch, and arena — see Backend::clone().
  std::unique_ptr<Backend> clone() const override;

  const ExecPlan& plan() const override { return plan_; }
  std::size_t arena_bytes() const override { return arena_.bytes(); }
  std::size_t arena_buffers() const { return arena_.buffers(); }
  /// The plan options actually compiled (after any policy forcing).
  const PlanOptions& options() const { return opts_; }

  /// Drop every cached panel (weight panels and BN-folded weights) so the
  /// next run re-derives them, mirroring quant::PositSession::invalidate().
  /// Version checks already catch Param and running-stat mutations; this is
  /// the belt-and-braces hook for out-of-band weight writes.
  void invalidate() { force_refresh_ = true; }

 protected:
  /// Eval-mode forward pass behind Backend::run(); returns a reference into
  /// the slot arena, valid until the next run() (see the contract in
  /// backend.hpp). Batch size (and conv H/W) may vary between calls.
  const tensor::Tensor& run_impl(const tensor::Tensor& x) override;

 private:
  FloatBackend() = default;

  /// Per-step backend state: weight-derived panels and conv scratch.
  struct StepState {
    tensor::Tensor panel;   ///< linear: W^T [in,out]; conv under policy: P(W)
    std::uint64_t version = 0;
    bool bound = false;
    tensor::Tensor qgamma;  ///< bn under policy: P(gamma)
    std::uint64_t gamma_version = 0;
    tensor::Tensor cols;    ///< conv im2col scratch, persistent across runs
    // BN-folded conv panels (step.folded_bn != nullptr): fw = W * scale,
    // fb = (b - mean) * scale + beta with scale = gamma / sqrt(var + eps).
    // Keyed on every contributing version: conv W (version above), conv
    // bias, gamma (gamma_version above), beta, and the running stats.
    tensor::Tensor fw;
    tensor::Tensor fb;
    std::uint64_t bias_version = 0;
    std::uint64_t beta_version = 0;
    std::uint64_t stats_version = 0;
  };

  bool quantizing() const { return policy_ != nullptr && policy_->active(); }
  void refresh();
  void fold_conv_bn(const Step& s, StepState& st);
  const tensor::Tensor& slot_tensor(int slot, const tensor::Tensor& x) const;

  void exec_linear(const Step& s, StepState& st, const tensor::Tensor& in, tensor::Tensor& out);
  void exec_conv(const Step& s, StepState& st, const tensor::Tensor& in, tensor::Tensor& out);
  void exec_bn(const Step& s, const StepState& st, const tensor::Tensor& in, tensor::Tensor& out);
  static void exec_gap(const tensor::Tensor& in, tensor::Tensor& out);
  static void exec_join(const tensor::Tensor& main, const tensor::Tensor& skip,
                        tensor::Tensor& out);

  ExecPlan plan_;
  PlanOptions opts_;
  std::vector<StepState> state_;
  tensor::TensorArena arena_;
  nn::Module* net_ = nullptr;              // not owned; clone() recompiles from it
  nn::PrecisionPolicy* policy_ = nullptr;  // not owned
  bool panels_quantized_ = false;
  bool force_refresh_ = false;
};

}  // namespace pdnn::exec
