// float_backend.hpp — compile-once/run-many FP32 inference over an ExecPlan.
//
// The float twin of quant::PositSession: GraphBuilder lowers the module tree
// once, ArenaPlanner folds every intermediate onto reusable arena buffers,
// and run() executes the plan on the blocked-GEMM path with persistent
// im2col scratch and pre-transposed linear weight panels. Steady state
// (repeated shapes, no weight mutation) performs zero heap allocations,
// and outputs are bit-identical to chaining nn::Module::forward in eval
// mode — the eager path computes exactly the same GEMM calls, bias loops,
// and elementwise expressions, just with fresh temporaries each time. The
// PassPipeline's fusion passes (epilogue ReLU, 1x1 im2col elision) preserve
// that bit-identity; the opt-in fold_bn pass pre-scales conv weights by the
// BN affine and is epsilon-close instead (weights round once at fold time).
//
// An optional PrecisionPolicy mirrors the eager forward's Fig. 3 hooks
// (W_p = P(W) cached per Param::version, A_p = P(A) applied in place on the
// slot buffer), so a trainer's eval loop under posit-simulated quantization
// can run through the compiled plan too. With no policy (or an inactive
// one), the backend is the plain FP32 reference.
//
// ## Training mode (compile_training)
//
// A training backend executes a GraphBuilder::lower_training plan:
// train_forward() is the training-mode forward (batch-stats BN writing x-hat
// to its save slot, ReLU/join masks and pool argmax recorded as backend
// state) and run_backward() replays the plan's grad steps in reverse forward
// order, accumulating parameter gradients into BACKEND-OWNED grad tensors
// (param_grads()) — never into the shared Param::grad, so cloned training
// backends can run on worker threads without racing. Both are bit-identical
// to the eager Module::forward(x, true)/backward chain: the same GEMM calls,
// the same per-element expressions, the same serial accumulation orders —
// the only reordering is which operand of a final gradient add comes first
// (IEEE-commutative). Batch statistics land in bn_batch_stats(); they are
// NOT folded into the modules' running estimates until the trainer commits
// them (BatchNorm2d::update_running_stats), keeping clones side-effect-free.
// run() still works on a training backend and is the eval-mode forward.
// Steady state (repeated shapes, no weight mutation) allocates nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/backend.hpp"
#include "exec/passes.hpp"
#include "nn/precision.hpp"
#include "tensor/arena.hpp"

namespace pdnn::exec {

class FloatBackend final : public Backend {
 public:
  /// Compile `net` (any Module tree GraphBuilder can lower). The module
  /// graph must outlive the backend: weights, BN statistics, and biases are
  /// read through the live modules, with Param::version (and
  /// BatchNorm2d::stats_version) re-deriving cached panels exactly when a
  /// parameter mutates. `opts` selects the plan rewrites; a non-null
  /// `policy` forces fuse_epilogues/fold_bn off, because the Fig. 3 hooks
  /// fire between a layer and its trailing ReLU (and quantize W before BN
  /// applies) in the eager forward the policy path must match bit-for-bit.
  static FloatBackend compile(nn::Module& net, nn::PrecisionPolicy* policy = nullptr,
                              PlanOptions opts = PlanOptions::defaults());

  /// Compile a training backend (see "Training mode" above). No policy and
  /// no fusion passes: the Fig. 3 hooks and the fused epilogues both
  /// conflict with the saved activations and masks backward needs.
  static FloatBackend compile_training(nn::Module& net);

  FloatBackend(FloatBackend&&) noexcept = default;
  FloatBackend& operator=(FloatBackend&&) noexcept = default;

  /// A fresh backend compiled over the same module graph and policy, with
  /// its own panels, scratch, and arena — see Backend::clone().
  std::unique_ptr<Backend> clone() const override;

  const ExecPlan& plan() const override { return plan_; }
  std::size_t arena_bytes() const override { return arena_.bytes(); }
  std::size_t arena_buffers() const { return arena_.buffers(); }
  /// The plan options actually compiled (after any policy forcing).
  const PlanOptions& options() const { return opts_; }

  /// Drop every cached panel (weight panels and BN-folded weights) so the
  /// next run re-derives them, mirroring quant::PositSession::invalidate().
  /// Version checks already catch Param and running-stat mutations; this is
  /// the belt-and-braces hook for out-of-band weight writes.
  void invalidate() { force_refresh_ = true; }

  // --- training API (compile_training backends only; others throw) ---------

  /// Per-BatchNorm-step batch statistics of the last train_forward(), in
  /// step order. The trainer folds them into the modules serially via
  /// BatchNorm2d::update_running_stats (or commit_bn_stats() below).
  struct BnBatchStats {
    nn::BatchNorm2d* bn = nullptr;
    std::vector<float> mean, var;
  };

  /// Training-mode forward pass: batch-stats BN (x-hat saved for backward),
  /// ReLU/join masks and pool argmax recorded. Same output contract as
  /// run(); the input `x` must stay alive and unmodified until run_backward
  /// finishes (the backward GEMMs read it). Shapes may vary between calls.
  const tensor::Tensor& train_forward(const tensor::Tensor& x);

  /// Backward pass over the last train_forward(). `grad_out` is
  /// d(loss)/d(output) with the forward output's shape; returns
  /// d(loss)/d(input) (arena-owned, valid until the next run-like call).
  /// Parameter gradients ACCUMULATE into param_grads() — call zero_grad()
  /// to start a fresh batch, exactly like the eager Param::grad contract.
  const tensor::Tensor& run_backward(const tensor::Tensor& grad_out);

  /// Zero the backend-owned gradient accumulators.
  void zero_grad();

  /// The trained parameters in nn::Module::params() order, and the
  /// backend-owned gradient tensors aligned with them.
  const std::vector<nn::Param*>& trained_params() const { return params_; }
  std::vector<tensor::Tensor>& param_grads() { return grads_; }
  const std::vector<tensor::Tensor>& param_grads() const { return grads_; }

  const std::vector<BnBatchStats>& bn_batch_stats() const { return bn_stats_; }
  /// Single-worker convenience: EMA-fold the last batch's BN statistics into
  /// the live modules in step order (bumps each stats_version). Data-parallel
  /// trainers commit shard stats themselves, in shard order.
  void commit_bn_stats();

 protected:
  /// Eval-mode forward pass behind Backend::run(); returns a reference into
  /// the slot arena, valid until the next run() (see the contract in
  /// backend.hpp). Batch size (and conv H/W) may vary between calls.
  const tensor::Tensor& run_impl(const tensor::Tensor& x) override;

 private:
  FloatBackend() = default;

  /// Per-step backend state: weight-derived panels and conv scratch.
  struct StepState {
    tensor::Tensor panel;   ///< linear: W^T [in,out]; conv under policy: P(W)
    std::uint64_t version = 0;
    bool bound = false;
    tensor::Tensor qgamma;  ///< bn under policy: P(gamma)
    std::uint64_t gamma_version = 0;
    tensor::Tensor cols;    ///< conv im2col scratch, persistent across runs
    // BN-folded conv panels (step.folded_bn != nullptr): fw = W * scale,
    // fb = (b - mean) * scale + beta with scale = gamma / sqrt(var + eps).
    // Keyed on every contributing version: conv W (version above), conv
    // bias, gamma (gamma_version above), beta, and the running stats.
    tensor::Tensor fw;
    tensor::Tensor fb;
    std::uint64_t bias_version = 0;
    std::uint64_t beta_version = 0;
    std::uint64_t stats_version = 0;
  };

  /// Per-step training state: saved-for-backward bookkeeping the arena can't
  /// hold (masks/argmax are not float tensors) plus persistent backward
  /// scratch. Grad-index fields map the step's parameters into
  /// params_/grads_.
  struct TrainState {
    tensor::Shape in_shape;              ///< forward input shape, per run
    std::vector<std::uint8_t> mask;      ///< relu / residual-join mask
    std::vector<std::size_t> argmax;     ///< maxpool winner indices
    std::vector<float> inv_std;          ///< bn: batch 1/sqrt(var+eps)
    int bn_stats = -1;                   ///< bn: index into bn_stats_
    int wgrad = -1;                      ///< linear/conv W, bn gamma
    int bgrad = -1;                      ///< linear/conv bias, bn beta
    tensor::Tensor w2d_t;                ///< conv: W^T [patch, out_c] panel
    std::uint64_t wt_version = 0;
    bool wt_bound = false;
    tensor::Tensor e_t;                  ///< linear: dY^T scratch
    tensor::Tensor dw;                   ///< linear: dW staging
    tensor::Tensor cols, cols_t, grad_cols;  ///< conv backward scratch
    tensor::Tensor dx_scratch;           ///< accumulate-mode dX staging
  };

  bool quantizing() const { return policy_ != nullptr && policy_->active(); }
  void refresh();
  void fold_conv_bn(const Step& s, StepState& st);
  const tensor::Tensor& slot_tensor(int slot, const tensor::Tensor& x) const;
  tensor::Tensor& bind_slot(int slot, const tensor::Shape& shape);
  void require_training(const char* who) const;

  void exec_linear(const Step& s, StepState& st, const tensor::Tensor& in, tensor::Tensor& out);
  void exec_conv(const Step& s, StepState& st, const tensor::Tensor& in, tensor::Tensor& out);
  void exec_bn(const Step& s, const StepState& st, const tensor::Tensor& in, tensor::Tensor& out);
  static void exec_gap(const tensor::Tensor& in, tensor::Tensor& out);
  static void exec_join(const tensor::Tensor& main, const tensor::Tensor& skip,
                        tensor::Tensor& out);

  void exec_bn_train(const Step& s, TrainState& ts, const tensor::Tensor& in, tensor::Tensor& out,
                     tensor::Tensor& xhat);
  static void exec_relu_train(TrainState& ts, const tensor::Tensor& in, tensor::Tensor& out);
  static void exec_maxpool_train(TrainState& ts, const tensor::Tensor& in, tensor::Tensor& out);
  static void exec_join_train(TrainState& ts, const tensor::Tensor& main,
                              const tensor::Tensor& skip, tensor::Tensor& out);

  void exec_linear_grad(const Step& s, TrainState& ts, const tensor::Tensor& e,
                        const tensor::Tensor& in, tensor::Tensor& gout, bool acc);
  void exec_conv_grad(const Step& s, TrainState& ts, const tensor::Tensor& e,
                      const tensor::Tensor& in, tensor::Tensor& gout, bool acc);
  void exec_bn_grad(const Step& s, TrainState& ts, const tensor::Tensor& e,
                    const tensor::Tensor& xhat, tensor::Tensor& gout, bool acc);
  static void exec_relu_grad(const TrainState& ts, const tensor::Tensor& e, tensor::Tensor& gout,
                             bool acc);
  static void exec_maxpool_grad(TrainState& ts, const tensor::Tensor& e, tensor::Tensor& gout,
                                bool acc, tensor::Tensor& scratch);
  static void exec_gap_grad(const TrainState& ts, const tensor::Tensor& e, tensor::Tensor& gout,
                            bool acc);
  static void exec_join_grad(const TrainState& ts, const tensor::Tensor& e, tensor::Tensor& gout0,
                             bool acc0, tensor::Tensor& gout1, bool acc1);

  ExecPlan plan_;
  PlanOptions opts_;
  std::vector<StepState> state_;
  tensor::TensorArena arena_;
  nn::Module* net_ = nullptr;              // not owned; clone() recompiles from it
  nn::PrecisionPolicy* policy_ = nullptr;  // not owned
  bool panels_quantized_ = false;
  bool force_refresh_ = false;

  // Training-only state (empty for inference backends).
  std::vector<TrainState> tstate_;
  std::vector<nn::Param*> params_;      // net.params() order; clones agree
  std::vector<tensor::Tensor> grads_;   // backend-owned, aligned with params_
  std::vector<BnBatchStats> bn_stats_;  // kBatchNorm steps, in step order
  tensor::Shape train_out_shape_;       // last train_forward output shape
  const tensor::Tensor* train_input_ = nullptr;  // caller's x; backward GEMMs read it
  bool forward_done_ = false;
};

}  // namespace pdnn::exec
