#include "exec/plan.hpp"

#include <cstdio>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace pdnn::exec {

using tensor::Shape;

const char* to_string(OpKind op) {
  switch (op) {
    case OpKind::kLinear: return "linear";
    case OpKind::kConv2d: return "conv2d";
    case OpKind::kBatchNorm: return "batchnorm";
    case OpKind::kRelu: return "relu";
    case OpKind::kMaxPool2x2: return "maxpool2x2";
    case OpKind::kGlobalAvgPool: return "globalavgpool";
    case OpKind::kResidualJoin: return "residual-join";
  }
  return "?";
}

std::size_t ExecPlan::in_place_steps() const {
  std::size_t n = 0;
  for (const Step& s : steps) n += s.in_place ? 1 : 0;
  return n;
}

std::size_t ExecPlan::reused_slots() const {
  std::size_t arena_slots = 0;
  for (const Slot& s : slots) arena_slots += s.buffer >= 0 ? 1 : 0;
  return arena_slots - num_buffers;
}

std::string ExecPlan::dump(std::size_t arena_bytes) const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "ExecPlan: %zu steps (%zu top-level), %zu slots, %zu buffers, %zu reused slots, "
                "%zu in-place steps",
                steps.size(), top_level_steps, slots.size(), num_buffers, reused_slots(),
                in_place_steps());
  out += line;
  if (!grad_steps.empty()) {
    std::snprintf(line, sizeof(line), ", %zu grad steps", grad_steps.size());
    out += line;
  }
  if (arena_bytes > 0) {
    std::snprintf(line, sizeof(line), ", arena %zu bytes\n", arena_bytes);
  } else {
    std::snprintf(line, sizeof(line), ", arena unsized\n");
  }
  out += line;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const Step& s = steps[i];
    char wiring[64];
    if (s.op == OpKind::kResidualJoin) {
      std::snprintf(wiring, sizeof(wiring), "s%d + s%d -> s%d", s.in0, s.in1, s.out);
    } else {
      std::snprintf(wiring, sizeof(wiring), "s%d -> s%d", s.in0, s.out);
    }
    std::string name = s.name;
    for (int d = 0; d < s.depth; ++d) name.insert(0, "  ");
    std::string marks;
    if (s.in_place) marks += " (in-place)";
    if (s.folded_bn != nullptr) marks += " +bn(" + s.folded_bn->name() + ")";
    if (s.epilogue.relu) marks += " +relu";
    if (s.elide_im2col) marks += " (1x1-direct)";
    if (s.save >= 0) marks += " save:s" + std::to_string(s.save);
    std::snprintf(line, sizeof(line), "  [%3zu] %-14s %-24s %-16s b%d%s\n", i, to_string(s.op),
                  name.c_str(), wiring, slots[static_cast<std::size_t>(s.out)].buffer,
                  marks.c_str());
    out += line;
  }
  if (!grad_steps.empty()) {
    std::snprintf(line, sizeof(line),
                  "  grad steps: %zu (reverse forward order; grad:sN = gradient of slot sN)\n",
                  grad_steps.size());
    out += line;
    for (std::size_t k = 0; k < grad_steps.size(); ++k) {
      const GradStep& g = grad_steps[k];
      const Step& s = steps[static_cast<std::size_t>(g.fwd_step)];
      char wiring[96];
      const int gin_of = slots[static_cast<std::size_t>(g.gin)].grad_of;
      const int g0_of = slots[static_cast<std::size_t>(g.gout0)].grad_of;
      if (g.gout1 >= 0) {
        std::snprintf(wiring, sizeof(wiring), "grad:s%d -> grad:s%d, grad:s%d", gin_of, g0_of,
                      slots[static_cast<std::size_t>(g.gout1)].grad_of);
      } else {
        std::snprintf(wiring, sizeof(wiring), "grad:s%d -> grad:s%d", gin_of, g0_of);
      }
      std::string name = s.name;
      for (int d = 0; d < s.depth; ++d) name.insert(0, "  ");
      std::string marks;
      if (g.in_place) marks += " (in-place)";
      if (g.acc0) marks += " (+=)";
      if (g.acc1) marks += " (+= skip)";
      std::snprintf(line, sizeof(line), "  [g%2zu] %-14s %-24s %-28s b%d%s\n", k, to_string(s.op),
                    name.c_str(), wiring, slots[static_cast<std::size_t>(g.gout0)].buffer,
                    marks.c_str());
      out += line;
    }
  }
  return out;
}

namespace {

[[noreturn]] void shape_error(const char* who, const Step& step, const std::string& expect,
                              const Shape& got) {
  throw std::invalid_argument(std::string(who) + ": '" + step.name + "' expects " + expect +
                              ", got " + got.to_string());
}

}  // namespace

Shape infer_out_shape(const Step& step, const Shape& in, const Shape* skip, const char* who) {
  switch (step.op) {
    case OpKind::kLinear:
      if (in.rank() != 2 || in[1] != step.in_c) {
        shape_error(who, step, "[N, " + std::to_string(step.in_c) + "]", in);
      }
      return {in[0], step.out_c};
    case OpKind::kConv2d: {
      if (in.rank() != 4 || in[1] != step.in_c) {
        shape_error(who, step, "[N, " + std::to_string(step.in_c) + ", H, W]", in);
      }
      const tensor::Conv2dGeom geom{step.in_c, in[2],      in[3],    step.out_c,
                                    step.kernel, step.stride, step.pad, step.kernel_w};
      geom.validate();
      return {in[0], step.out_c, geom.out_h(), geom.out_w()};
    }
    case OpKind::kBatchNorm:
      if (in.rank() != 4 || in[1] != step.out_c) {
        shape_error(who, step, "[N, " + std::to_string(step.out_c) + ", H, W]", in);
      }
      return in;
    case OpKind::kRelu:
      return in;
    case OpKind::kMaxPool2x2:
      if (in.rank() != 4) shape_error(who, step, "rank-4 input", in);
      return {in[0], in[1], in[2] / 2, in[3] / 2};
    case OpKind::kGlobalAvgPool:
      if (in.rank() != 4) shape_error(who, step, "rank-4 input", in);
      return {in[0], in[1]};
    case OpKind::kResidualJoin:
      if (skip == nullptr || *skip != in) {
        throw std::invalid_argument(std::string(who) + ": '" + step.name +
                                    "' branch shape mismatch " + in.to_string() + " vs " +
                                    (skip != nullptr ? skip->to_string() : "<none>"));
      }
      return in;
  }
  throw std::invalid_argument(std::string(who) + ": unhandled op kind");
}

}  // namespace pdnn::exec
