// graph_builder.hpp — lower an nn::Module tree into an ExecPlan.
//
// The single graph→plan compiler every backend shares. Sequential containers
// (arbitrarily nested) flatten into the step list via children();
// ResidualBlock lowers to main-branch steps, skip-branch steps, and one
// kResidualJoin reading both branch outputs (the skip operand is the block
// input itself when there is no downsample). Leaf layers become one step
// each; module types no backend can execute throw std::invalid_argument at
// lowering time.
//
// lower() also runs the PassPipeline (per the PlanOptions) and the
// ArenaPlanner, so the returned plan is ready for a backend to compile
// against: steps fused/folded, slot lifetimes computed, elementwise steps
// marked in-place, and every slot folded onto its arena buffer.
#pragma once

#include "exec/passes.hpp"
#include "exec/plan.hpp"

namespace pdnn::exec {

class GraphBuilder {
 public:
  /// Lower `net` (a Sequential, a ResidualBlock, or a single layer) into a
  /// planned ExecPlan. The module graph must outlive the plan — steps bind
  /// leaf modules by pointer. Throws std::invalid_argument if `net` lowers
  /// to zero steps (an empty or all-container Sequential): the plan output
  /// would alias the caller-owned input slot, which no backend can honor.
  static ExecPlan lower(nn::Module& net, const PlanOptions& opts = PlanOptions::defaults());

  /// Lower `net` into a training plan: the plain unfused forward lowering
  /// (bias epilogues kept; fusion/folding passes conflict with the masks and
  /// saved activations backward needs) plus one GradStep per forward step in
  /// exact reverse forward order. kBatchNorm steps get a `save` slot for
  /// x-hat; GEMM inputs are pinned across the forward/backward boundary by
  /// the ArenaPlanner. The gradient of the plan output is the caller-owned
  /// `grad_output_slot`; the gradient of the plan input lands in
  /// `grad_input_slot` and is what FloatBackend::run_backward returns.
  static ExecPlan lower_training(nn::Module& net);
};

}  // namespace pdnn::exec
