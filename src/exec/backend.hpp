// backend.hpp — what it means to execute an ExecPlan.
//
// A Backend owns everything numeric about a compiled network — weight panels
// in its own operand format, scratch, arenas — and runs the shared plan's
// dataflow. exec::FloatBackend is the FP32 implementation on the blocked
// GEMM path; quant::PositSession is the true-posit implementation. Both obey
// the same contract:
//
//   * compile binds the plan's leaf modules (the module graph must outlive
//     the backend) and pre-computes every weight-derived panel;
//   * run() executes the plan into a slot arena and returns a reference to
//     the output buffer; steady state (repeated shapes, no weight mutation)
//     performs no heap allocation and takes no lock.
//
// ## The run() output contract (read before keeping the reference)
//
// The reference run() returns points INTO BACKEND-OWNED STORAGE and is
// silently overwritten by the next run() on the same backend — a
// use-after-overwrite trap for any pipelined or concurrent caller that holds
// it across calls. The rules:
//
//   * consume or copy the output before calling run() again;
//   * a backend instance is single-caller: concurrent run() calls on one
//     backend are a data race. Concurrency comes from a pool of clone()d
//     backends (serve::Engine owns one per worker), never from sharing one;
//   * anything that must outlive the next run() — e.g. a serving future —
//     is copied out of the buffer (serve::Engine scatters each batch row
//     into its request's future storage before the worker's next batch).
//
// run_checked() enforces the rule mechanically: it returns the same
// reference wrapped with the run's generation number, and Output::get()
// throws std::logic_error once a later run() has overwritten the buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "exec/plan.hpp"

namespace pdnn::exec {

class Backend {
 public:
  virtual ~Backend() = default;

  /// Eval-mode forward pass; see the output contract above. Non-virtual:
  /// stamps the run generation, then dispatches to the backend's run_impl.
  const tensor::Tensor& run(const tensor::Tensor& x) {
    ++generation_;
    return run_impl(x);
  }

  /// run() plus a stale-read guard: the returned handle re-checks the
  /// backend's generation on every access, so holding an output across a
  /// later run() fails loudly instead of silently reading overwritten data.
  struct Output {
    const tensor::Tensor& get() const {
      if (backend->run_generation() != generation) {
        throw std::logic_error(
            "exec::Backend::Output: stale read — a later run() overwrote this output buffer "
            "(copy the tensor out before the next run)");
      }
      return *tensor;
    }
    const Backend* backend = nullptr;
    const tensor::Tensor* tensor = nullptr;
    std::uint64_t generation = 0;
  };

  Output run_checked(const tensor::Tensor& x) {
    const tensor::Tensor& t = run(x);
    return Output{this, &t, generation_};
  }

  /// Monotonic count of run() calls — the Output staleness stamp. Not
  /// atomic: a backend instance is single-caller by contract (see above),
  /// so the counter is only ever touched by its owning thread.
  std::uint64_t run_generation() const { return generation_; }

  /// A fresh backend over the same module graph and configuration, with its
  /// own panels, scratch, and arenas — the serve::Engine worker-pool hook.
  /// Clones share the (read-only in steady state) module graph but no
  /// mutable state, so each can run() on its own thread.
  virtual std::unique_ptr<Backend> clone() const = 0;

  /// The shared plan this backend executes.
  virtual const ExecPlan& plan() const = 0;

  /// Bytes held by the slot arena (peak shapes seen so far).
  virtual std::size_t arena_bytes() const = 0;

 protected:
  virtual const tensor::Tensor& run_impl(const tensor::Tensor& x) = 0;

  /// For backends with additional run-like entry points that overwrite slot
  /// buffers (FloatBackend's training forward/backward): stamp the generation
  /// exactly like run() does, so Output handles from earlier runs go stale.
  void bump_generation() { ++generation_; }

 private:
  std::uint64_t generation_ = 0;
};

}  // namespace pdnn::exec
