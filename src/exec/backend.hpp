// backend.hpp — what it means to execute an ExecPlan.
//
// A Backend owns everything numeric about a compiled network — weight panels
// in its own operand format, scratch, arenas — and runs the shared plan's
// dataflow. exec::FloatBackend is the FP32 implementation on the blocked
// GEMM path; quant::PositSession is the true-posit implementation. Both obey
// the same contract:
//
//   * compile binds the plan's leaf modules (the module graph must outlive
//     the backend) and pre-computes every weight-derived panel;
//   * run() executes the plan into a slot arena and returns a reference to
//     the output buffer, valid until the next run(); steady state (repeated
//     shapes, no weight mutation) performs no heap allocation.
#pragma once

#include <cstddef>

#include "exec/plan.hpp"

namespace pdnn::exec {

class Backend {
 public:
  virtual ~Backend() = default;

  /// Eval-mode forward pass; see the contract above.
  virtual const tensor::Tensor& run(const tensor::Tensor& x) = 0;

  /// The shared plan this backend executes.
  virtual const ExecPlan& plan() const = 0;

  /// Bytes held by the slot arena (peak shapes seen so far).
  virtual std::size_t arena_bytes() const = 0;
};

}  // namespace pdnn::exec
