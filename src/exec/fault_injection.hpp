// fault_injection.hpp — a chaos decorator for any exec::Backend.
//
// FaultInjectingBackend wraps an inner backend and perturbs its run() stream
// deterministically, so the serving layer's overload/retry/quarantine
// machinery can be exercised under test and in bench_serve --chaos with
// reproducible schedules:
//
//   * throw on the nth run (`throw_on_run`), every kth run (`throw_every`),
//     or with a seeded Bernoulli rate (`throw_rate` drawn from an mt19937_64
//     seeded with `seed`) — all raise exec::InjectedFault before the inner
//     backend runs, modeling a wedged or crashing worker;
//   * throw whenever the input contains the trigger value (`trigger`),
//     modeling a poison sample: any batch containing it fails, any batch
//     without it succeeds — exactly the shape serve::Engine's bisection
//     retry isolates;
//   * sleep `latency` per run, modeling a slow or contended worker;
//   * corrupt one output row on a chosen run (`corrupt_on_run` /
//     `corrupt_row`, low-mantissa-bit flips), modeling silent data
//     corruption — the one fault a retry cannot see and only an end-to-end
//     bit-identity check catches.
//
// The decorator follows the full Backend contract: clone() wraps a clone of
// the inner backend with the same fault plan but independent run/RNG state
// (the child's seed is derived from the parent's seed and clone ordinal, so
// a pool built by sequential clone() calls is reproducible); plan() and
// arena_bytes() delegate. Run counters are per-instance: each clone's
// schedule starts at run 1.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>

#include "exec/backend.hpp"
#include "tensor/tensor.hpp"

namespace pdnn::exec {

/// The exception every injected failure raises. Derives from
/// std::runtime_error so generic backend-failure handling already covers it;
/// tests catch the precise type to tell injected faults from real bugs.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

/// The deterministic fault plan. Every field is independent; all disabled by
/// default (the decorator is then a transparent pass-through).
struct FaultConfig {
  /// Seeds the Bernoulli stream for `throw_rate`. clone() derives the child
  /// seed from this and the clone ordinal, keeping pools reproducible.
  std::uint64_t seed = 0;
  /// Throw on exactly this run (1-based, counting this instance's runs).
  /// 0 disables.
  std::uint64_t throw_on_run = 0;
  /// Throw on every run whose 1-based index is a multiple of this. 0
  /// disables. (>= 2 guarantees the run after a scheduled throw is clean,
  /// which is what lets a single retry absorb the fault.)
  std::uint64_t throw_every = 0;
  /// Per-run throw probability in [0,1], drawn from the seeded RNG. 0
  /// disables and leaves the RNG untouched.
  double throw_rate = 0.0;
  /// When set, any run whose input contains a value bit-equal to `trigger`
  /// throws — the poison-sample model.
  bool has_trigger = false;
  float trigger = 0.0f;
  /// Injected per-run latency (slept before any fault check fires).
  std::chrono::microseconds latency{0};
  /// On run `corrupt_on_run` (1-based; 0 disables), flip the low mantissa
  /// bit of every element of output row `corrupt_row` (clamped to the
  /// batch). The run "succeeds" — only a bit-level output check notices.
  std::uint64_t corrupt_on_run = 0;
  std::size_t corrupt_row = 0;
};

class FaultInjectingBackend final : public Backend {
 public:
  FaultInjectingBackend(std::unique_ptr<Backend> inner, FaultConfig cfg);

  /// Wrap `backend.clone()` directly.
  static std::unique_ptr<Backend> wrap(const Backend& backend, const FaultConfig& cfg);

  std::unique_ptr<Backend> clone() const override;
  const ExecPlan& plan() const override { return inner_->plan(); }
  std::size_t arena_bytes() const override { return inner_->arena_bytes(); }

  const FaultConfig& fault_config() const { return cfg_; }
  /// Runs attempted on this instance (throwing runs included).
  std::uint64_t runs() const { return runs_; }
  /// Faults this instance raised (throws; corruption is counted too).
  std::uint64_t faults_injected() const { return injected_; }

 protected:
  const tensor::Tensor& run_impl(const tensor::Tensor& x) override;

 private:
  std::unique_ptr<Backend> inner_;
  FaultConfig cfg_;
  std::mt19937_64 rng_;
  std::uint64_t runs_ = 0;
  std::uint64_t injected_ = 0;
  mutable std::uint64_t clones_ = 0;
  tensor::Tensor corrupted_;  ///< owned copy returned on a corrupting run
};

}  // namespace pdnn::exec
