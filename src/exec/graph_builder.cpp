#include "exec/graph_builder.hpp"

#include <stdexcept>
#include <typeinfo>
#include <utility>

#include "exec/arena_planner.hpp"

namespace pdnn::exec {

namespace {

struct Lowering {
  ExecPlan plan;

  int new_slot(int def_step) {
    plan.slots.push_back({def_step, -1, -1});
    return static_cast<int>(plan.slots.size()) - 1;
  }

  int push_step(Step s, int in0, int depth) {
    const int idx = static_cast<int>(plan.steps.size());
    s.in0 = in0;
    s.out = new_slot(idx);
    s.depth = depth;
    plan.steps.push_back(std::move(s));
    return plan.steps.back().out;
  }

  /// Lower `m` with input slot `cur`; returns the output slot.
  int lower_into(nn::Module& m, int cur, int depth) {
    if (auto* seq = dynamic_cast<nn::Sequential*>(&m)) {
      for (nn::Module* child : seq->children()) cur = lower_into(*child, cur, depth);
      return cur;
    }
    if (auto* rb = dynamic_cast<nn::ResidualBlock*>(&m)) {
      if (depth == 0) ++plan.top_level_steps;
      int main = cur;
      main = lower_into(rb->conv1(), main, depth + 1);
      main = lower_into(rb->bn1(), main, depth + 1);
      main = lower_into(rb->relu1(), main, depth + 1);
      main = lower_into(rb->conv2(), main, depth + 1);
      main = lower_into(rb->bn2(), main, depth + 1);
      int skip = cur;
      if (rb->has_downsample()) {
        skip = lower_into(*rb->down_conv(), skip, depth + 1);
        skip = lower_into(*rb->down_bn(), skip, depth + 1);
      }
      Step join;
      join.op = OpKind::kResidualJoin;
      join.name = rb->name();
      // The join adopts the conv family format (the post-add activation is a
      // conv-class tensor in training too).
      join.cls = nn::LayerClass::kConv;
      join.in1 = skip;
      return push_step(std::move(join), main, depth);
    }
    if (depth == 0) ++plan.top_level_steps;
    return push_step(lower_leaf(m), cur, depth);
  }

  static Step lower_leaf(nn::Module& m) {
    Step s;
    s.name = m.name();
    if (auto* fc = dynamic_cast<nn::Linear*>(&m)) {
      s.op = OpKind::kLinear;
      s.cls = nn::LayerClass::kLinear;
      s.linear = fc;
      s.in_c = fc->in_features();
      s.out_c = fc->out_features();
      s.epilogue.bias = true;
      return s;
    }
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&m)) {
      s.op = OpKind::kConv2d;
      s.cls = nn::LayerClass::kConv;
      s.conv = conv;
      s.epilogue.bias = conv->has_bias();
      s.in_c = conv->in_channels();
      s.out_c = conv->out_channels();
      s.kernel = conv->kernel();
      s.kernel_w = conv->kernel_w();
      s.stride = conv->stride();
      s.pad = conv->pad();
      return s;
    }
    if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) {
      s.op = OpKind::kBatchNorm;
      s.cls = nn::LayerClass::kBn;
      s.bn = bn;
      s.out_c = bn->gamma().value.numel();
      return s;
    }
    if (dynamic_cast<nn::ReLU*>(&m) != nullptr) {
      s.op = OpKind::kRelu;
      return s;
    }
    if (dynamic_cast<nn::MaxPool2x2*>(&m) != nullptr) {
      s.op = OpKind::kMaxPool2x2;
      return s;
    }
    if (dynamic_cast<nn::GlobalAvgPool*>(&m) != nullptr) {
      s.op = OpKind::kGlobalAvgPool;
      // Pooling resolves with the conv family, matching the pre-plan session.
      s.cls = nn::LayerClass::kConv;
      return s;
    }
    throw std::invalid_argument("GraphBuilder: unsupported layer '" + m.name() + "' (" +
                                typeid(m).name() + ")");
  }
};

/// Append the backward pass to a freshly lowered (unfused) plan: grad steps in
/// exact reverse forward order, one gradient slot per forward slot, created on
/// first write. A forward slot with several readers (a residual block input,
/// read by conv1 and the join/downsample) collects one contribution per
/// reader: the first writing grad step initializes the slot, later ones
/// accumulate (`acc0`/`acc1`). Reverse order guarantees every contribution to
/// grad(s) lands before the grad step of s's defining step consumes it.
void emit_grad_steps(ExecPlan& p) {
  const int n = static_cast<int>(p.steps.size());
  std::vector<int> gslot(p.slots.size(), -1);

  // BatchNorm saves x-hat for backward; the save slot is defined by the
  // forward step and read by its grad step.
  for (int i = 0; i < n; ++i) {
    if (p.steps[static_cast<std::size_t>(i)].op == OpKind::kBatchNorm) {
      p.slots.push_back({i, -1, -1, -1});
      p.steps[static_cast<std::size_t>(i)].save = static_cast<int>(p.slots.size()) - 1;
    }
  }

  // The gradient of the plan output is caller-owned, like the plan input.
  p.slots.push_back({-1, -1, -1, p.output_slot});
  p.grad_output_slot = static_cast<int>(p.slots.size()) - 1;
  gslot[static_cast<std::size_t>(p.output_slot)] = p.grad_output_slot;

  for (int i = n - 1; i >= 0; --i) {
    const Step& s = p.steps[static_cast<std::size_t>(i)];
    GradStep g;
    g.fwd_step = i;
    g.gin = gslot[static_cast<std::size_t>(s.out)];
    const int time = n + static_cast<int>(p.grad_steps.size());
    auto write_grad = [&](int fwd_slot, int& gout, bool& acc) {
      int& gs = gslot[static_cast<std::size_t>(fwd_slot)];
      if (gs < 0) {
        p.slots.push_back({time, -1, -1, fwd_slot});
        gs = static_cast<int>(p.slots.size()) - 1;
        acc = false;
      } else {
        acc = true;
      }
      gout = gs;
    };
    write_grad(s.in0, g.gout0, g.acc0);
    if (s.in1 >= 0) write_grad(s.in1, g.gout1, g.acc1);
    p.grad_steps.push_back(g);
  }
  p.grad_input_slot = gslot[static_cast<std::size_t>(p.input_slot)];
}

}  // namespace

ExecPlan GraphBuilder::lower_training(nn::Module& net) {
  Lowering l;
  l.plan.slots.push_back({-1, -1, -1});
  l.plan.input_slot = 0;
  l.plan.output_slot = l.lower_into(net, 0, 0);
  if (l.plan.steps.empty()) {
    throw std::invalid_argument("GraphBuilder: '" + net.name() +
                                "' lowers to zero steps (empty or all-container net); the plan "
                                "output would alias the caller-owned input");
  }
  emit_grad_steps(l.plan);
  ArenaPlanner::plan(l.plan);
  return std::move(l.plan);
}

ExecPlan GraphBuilder::lower(nn::Module& net, const PlanOptions& opts) {
  Lowering l;
  l.plan.slots.push_back({-1, -1, -1});  // slot 0: the caller-owned input
  l.plan.input_slot = 0;
  l.plan.output_slot = l.lower_into(net, 0, 0);
  if (l.plan.steps.empty()) {
    throw std::invalid_argument("GraphBuilder: '" + net.name() +
                                "' lowers to zero steps (empty or all-container net); the plan "
                                "output would alias the caller-owned input");
  }
  PassPipeline::run(l.plan, opts);
  ArenaPlanner::plan(l.plan);
  return std::move(l.plan);
}

}  // namespace pdnn::exec
