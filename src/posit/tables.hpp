// tables.hpp — human-readable description of posit codes (Table I support).
//
// describe() reports the regime/exponent/mantissa fields and the exact value
// of a code as a dyadic rational, in the layout of the paper's Table I
// ("The detail structures of positive values of (5,1) posit number").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "posit/codec.hpp"

namespace pdnn::posit {

struct CodeDescription {
  std::uint32_t code = 0;
  std::string binary;       ///< zero-padded n-bit binary string
  bool is_zero = false;
  bool is_nar = false;
  int regime = 0;           ///< k
  int exponent = 0;         ///< e
  double mantissa = 0.0;    ///< f in [0,1): fraction below the hidden bit
  std::string mantissa_str; ///< exact rational, e.g. "1/2"
  double value = 0.0;       ///< decoded value
  std::string value_str;    ///< exact rational, e.g. "3/8" or "64"
};

/// Describe one code.
CodeDescription describe(std::uint32_t code, const PositSpec& spec);

/// Describe every code in [first, last] (inclusive), e.g. all positive codes
/// of posit(5,1) for Table I: enumerate(0, 0b01111, {5,1}).
std::vector<CodeDescription> enumerate(std::uint32_t first, std::uint32_t last, const PositSpec& spec);

/// Render an exact dyadic rational p * 2^q as "p/2^-q" or an integer string.
std::string dyadic_to_string(std::uint64_t numerator, int pow2);

}  // namespace pdnn::posit
