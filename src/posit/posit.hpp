// posit.hpp — value-semantic compile-time posit type.
//
// Posit<N, ES> wraps an n-bit code and forwards arithmetic to the runtime
// kernels in arith.cpp. All operators use posit-standard rounding
// (nearest-even); the paper's round-toward-zero quantizer lives in
// quant/posit_transform.* and is deliberately a separate entry point.
//
//   using pdnn::posit::Posit16_1;
//   Posit16_1 a{3.25}, b{-0.125};
//   double y = static_cast<double>(a * b + a);
#pragma once

#include <cstdint>
#include <iosfwd>

#include "posit/arith.hpp"
#include "posit/codec.hpp"
#include "posit/spec.hpp"

namespace pdnn::posit {

template <int N, int ES>
class Posit {
  static_assert(N >= 2 && N <= 32, "supported word sizes are 2..32");
  static_assert(ES >= 0 && ES <= 6, "supported exponent sizes are 0..6");

 public:
  static constexpr PositSpec spec() { return PositSpec{N, ES}; }

  constexpr Posit() = default;
  explicit Posit(double value) : code_(from_double(value, spec())) {}

  /// Reinterpret a raw n-bit code as a posit (no conversion).
  static Posit from_bits(std::uint32_t code) {
    Posit p;
    p.code_ = code & spec().mask();
    return p;
  }
  std::uint32_t bits() const { return code_; }

  static Posit nar() { return from_bits(spec().nar_code()); }
  static Posit maxpos() { return from_bits(spec().maxpos_code()); }
  static Posit minpos() { return from_bits(spec().minpos_code()); }

  bool is_zero() const { return code_ == 0; }
  bool is_nar() const { return code_ == spec().nar_code(); }

  explicit operator double() const { return to_double(code_, spec()); }
  double value() const { return to_double(code_, spec()); }

  Posit operator-() const { return from_bits(neg(code_, spec())); }
  friend Posit operator+(Posit a, Posit b) { return from_bits(add(a.code_, b.code_, spec())); }
  friend Posit operator-(Posit a, Posit b) { return from_bits(sub(a.code_, b.code_, spec())); }
  friend Posit operator*(Posit a, Posit b) { return from_bits(mul(a.code_, b.code_, spec())); }
  friend Posit operator/(Posit a, Posit b) { return from_bits(div(a.code_, b.code_, spec())); }

  Posit& operator+=(Posit o) { return *this = *this + o; }
  Posit& operator-=(Posit o) { return *this = *this - o; }
  Posit& operator*=(Posit o) { return *this = *this * o; }
  Posit& operator/=(Posit o) { return *this = *this / o; }

  friend bool operator==(Posit a, Posit b) { return a.code_ == b.code_; }
  friend bool operator!=(Posit a, Posit b) { return a.code_ != b.code_; }
  friend bool operator<(Posit a, Posit b) { return compare(a.code_, b.code_, spec()) < 0; }
  friend bool operator<=(Posit a, Posit b) { return compare(a.code_, b.code_, spec()) <= 0; }
  friend bool operator>(Posit a, Posit b) { return compare(a.code_, b.code_, spec()) > 0; }
  friend bool operator>=(Posit a, Posit b) { return compare(a.code_, b.code_, spec()) >= 0; }

 private:
  std::uint32_t code_ = 0;
};

// The formats the paper uses.
using Posit8 = Posit<8, 0>;      ///< Table IV baseline config
using Posit8_1 = Posit<8, 1>;    ///< CONV forward / weight update (Table III)
using Posit8_2 = Posit<8, 2>;    ///< CONV backward (Table III)
using Posit16_1 = Posit<16, 1>;  ///< BN / ImageNet forward (Table III)
using Posit16_2 = Posit<16, 2>;  ///< BN / ImageNet backward (Table III)
using Posit32_3 = Posit<32, 3>;  ///< Table IV large config

}  // namespace pdnn::posit
