#include "posit/arith.hpp"

#include "posit/unpacked.hpp"

namespace pdnn::posit {

namespace {

using u128 = unsigned __int128;

/// Magnitude-ordered operand pair: `big` has the larger (scale, sig).
struct Ordered {
  const Decoded* big;
  const Decoded* small;
  bool swapped;
};

Ordered order_by_magnitude(const Decoded& a, const Decoded& b) {
  const bool b_bigger = (b.scale > a.scale) || (b.scale == a.scale && b.sig > a.sig);
  return b_bigger ? Ordered{&b, &a, true} : Ordered{&a, &b, false};
}

/// Core signed addition of two decoded non-zero posits.
std::uint32_t add_decoded(const Decoded& a, const Decoded& b, const PositSpec& spec, RoundMode mode,
                          RoundingRng* rng) {
  const Ordered ord = order_by_magnitude(a, b);
  const Decoded& hi = *ord.big;
  const Decoded& lo = *ord.small;

  // Work with three guard bits: hidden bit moves from 62 to 65. The sticky
  // flag is folded into bit 0, which is always below the rounding position;
  // cancellation of 2+ leading bits only happens when the scale difference is
  // <= 1, in which case no sticky bit was set and the subtraction is exact.
  const u128 hi_sig = static_cast<u128>(hi.sig) << 3;
  u128 lo_sig;
  const long diff = static_cast<long>(hi.scale) - lo.scale;
  if (diff >= 67) {
    lo_sig = 1;  // pure sticky
  } else {
    const u128 full = static_cast<u128>(lo.sig) << 3;
    lo_sig = full >> diff;
    if (diff > 0 && (full & ((static_cast<u128>(1) << diff) - 1)) != 0) lo_sig |= 1;
  }

  const bool same_sign = hi.neg == lo.neg;
  u128 sum;
  if (same_sign) {
    sum = hi_sig + lo_sig;
  } else {
    sum = hi_sig - lo_sig;
    if (sum == 0) return 0u;  // exact cancellation
  }

  // Normalize: locate the hidden bit.
  int msb = 127;
  while (((sum >> msb) & 1) == 0) --msb;
  const long scale = hi.scale + (msb - 65);
  return round_pack(spec, hi.neg, scale, sum, msb, false, mode, rng);
}

}  // namespace

std::uint32_t add(std::uint32_t a, std::uint32_t b, const PositSpec& spec, RoundMode mode, RoundingRng* rng) {
  const Decoded da = decode(a, spec);
  const Decoded db = decode(b, spec);
  if (da.is_nar || db.is_nar) return spec.nar_code();
  if (da.is_zero) return b & spec.mask();
  if (db.is_zero) return a & spec.mask();
  return add_decoded(da, db, spec, mode, rng);
}

std::uint32_t sub(std::uint32_t a, std::uint32_t b, const PositSpec& spec, RoundMode mode, RoundingRng* rng) {
  return add(a, neg(b, spec), spec, mode, rng);
}

std::uint32_t mul(std::uint32_t a, std::uint32_t b, const PositSpec& spec, RoundMode mode, RoundingRng* rng) {
  const Decoded da = decode(a, spec);
  const Decoded db = decode(b, spec);
  if (da.is_nar || db.is_nar) return spec.nar_code();
  if (da.is_zero || db.is_zero) return 0u;
  const u128 product = static_cast<u128>(da.sig) * db.sig;  // in [2^124, 2^126)
  const int msb = ((product >> 125) & 1) ? 125 : 124;
  const long scale = static_cast<long>(da.scale) + db.scale + (msb - 124);
  return round_pack(spec, da.neg != db.neg, scale, product, msb, false, mode, rng);
}

std::uint32_t div(std::uint32_t a, std::uint32_t b, const PositSpec& spec, RoundMode mode, RoundingRng* rng) {
  const Decoded da = decode(a, spec);
  const Decoded db = decode(b, spec);
  if (da.is_nar || db.is_nar || db.is_zero) return spec.nar_code();
  if (da.is_zero) return 0u;
  const u128 numerator = static_cast<u128>(da.sig) << 64;
  const u128 quotient = numerator / db.sig;  // in (2^63, 2^65)
  const bool sticky = (numerator % db.sig) != 0;
  const int msb = ((quotient >> 64) & 1) ? 64 : 63;
  const long scale = static_cast<long>(da.scale) - db.scale + (msb - 64);
  return round_pack(spec, da.neg != db.neg, scale, quotient, msb, sticky, mode, rng);
}

std::uint32_t neg(std::uint32_t a, const PositSpec& spec) {
  a &= spec.mask();
  if (a == 0 || a == spec.nar_code()) return a;  // -0 = 0, -NaR = NaR
  return (~a + 1u) & spec.mask();
}

std::uint32_t abs(std::uint32_t a, const PositSpec& spec) {
  a &= spec.mask();
  return (a & spec.sign_bit()) && a != spec.nar_code() ? neg(a, spec) : a;
}

std::uint32_t fma(std::uint32_t a, std::uint32_t b, std::uint32_t c, const PositSpec& spec, RoundMode mode,
                  RoundingRng* rng) {
  const Decoded da = decode(a, spec);
  const Decoded db = decode(b, spec);
  const Decoded dc = decode(c, spec);
  if (da.is_nar || db.is_nar || dc.is_nar) return spec.nar_code();
  if (da.is_zero || db.is_zero) return c & spec.mask();

  // Exact product. Operand significands carry at most 29 fraction bits each
  // (n <= 32), so the 128-bit product has >= 66 trailing zero bits; reducing
  // the hidden bit back to position 62 is therefore exact and the sum inherits
  // full single-rounding (fused) semantics from add_decoded.
  const u128 product = static_cast<u128>(da.sig) * db.sig;  // in [2^124, 2^126)
  const int msb = ((product >> 125) & 1) ? 125 : 124;
  const long pscale = static_cast<long>(da.scale) + db.scale + (msb - 124);
  if (dc.is_zero) {
    return round_pack(spec, da.neg != db.neg, pscale, product, msb, false, mode, rng);
  }
  Decoded dp;
  dp.neg = da.neg != db.neg;
  dp.scale = static_cast<int>(pscale);
  dp.sig = static_cast<std::uint64_t>(product >> (msb - 62));
  return add_decoded(dp, dc, spec, mode, rng);
}

// ---------------------------------------------------------------------------
// Decode-once overloads (operands already unpacked; see unpacked.hpp). These
// reproduce the coded paths above on pre-decoded fields: the reduced
// significand product equals the full 128-bit product shifted right by its
// (all-zero) trailing bits, so round_pack sees the same value with the same
// sticky state and emits the same code.
// ---------------------------------------------------------------------------

std::uint32_t mul(const Unpacked& a, const Unpacked& b, const PositSpec& spec, RoundMode mode,
                  RoundingRng* rng) {
  if (a.is_nar() || b.is_nar()) return spec.nar_code();
  if (a.is_zero() || b.is_zero()) return 0u;
  const std::uint64_t product = static_cast<std::uint64_t>(a.sig) * b.sig;  // <= 60 bits
  const int msb = 63 - __builtin_clzll(product);
  const long scale = static_cast<long>(a.lsb_weight) + b.lsb_weight + msb;
  return round_pack(spec, a.neg != b.neg, scale, product, msb, false, mode, rng);
}

std::uint32_t fma(const Unpacked& a, const Unpacked& b, std::uint32_t c, const PositSpec& spec,
                  RoundMode mode, RoundingRng* rng) {
  const Decoded dc = decode(c, spec);
  if (a.is_nar() || b.is_nar() || dc.is_nar) return spec.nar_code();
  if (a.is_zero() || b.is_zero()) return c & spec.mask();
  const std::uint64_t product = static_cast<std::uint64_t>(a.sig) * b.sig;
  const int msb = 63 - __builtin_clzll(product);
  const long pscale = static_cast<long>(a.lsb_weight) + b.lsb_weight + msb;
  if (dc.is_zero) {
    return round_pack(spec, a.neg != b.neg, pscale, product, msb, false, mode, rng);
  }
  // Same Decoded product the coded fma builds: hidden bit restored to 62
  // (exact — only zero bits are shifted in).
  Decoded dp;
  dp.neg = a.neg != b.neg;
  dp.scale = static_cast<int>(pscale);
  dp.sig = product << (62 - msb);
  return add_decoded(dp, dc, spec, mode, rng);
}

int compare(std::uint32_t a, std::uint32_t b, const PositSpec& spec) {
  const std::int32_t sa = sign_extend(a, spec);
  const std::int32_t sb = sign_extend(b, spec);
  return sa < sb ? -1 : (sa > sb ? 1 : 0);
}

}  // namespace pdnn::posit
