// codec.hpp — decode / encode between n-bit posit codes and numeric fields.
//
// A posit code is held in the low n bits of a std::uint32_t. Negative posits
// are the two's complement of the whole n-bit word, so decoding first negates,
// then parses |sign|regime|exponent|fraction|. All arithmetic in this library
// goes through the Decoded intermediate form: sign, binary scale, and a
// significand with the hidden bit pinned at bit 62 (value = sig * 2^(scale-62)).
#pragma once

#include <cstdint>

#include "posit/rounding.hpp"
#include "posit/spec.hpp"

namespace pdnn::posit {

/// Unpacked numeric fields of a posit code.
struct Decoded {
  bool is_zero = false;
  bool is_nar = false;
  bool neg = false;
  int scale = 0;            ///< binary exponent: value = +/- sig * 2^(scale-62)
  std::uint64_t sig = 0;    ///< significand, hidden bit at bit 62: sig in [2^62, 2^63)
  // Raw field view (useful for Table I style reporting):
  int k = 0;                ///< regime value
  int e = 0;                ///< exponent field value (after implicit zero-padding)
  std::uint32_t frac = 0;   ///< fraction field bits
  int frac_width = 0;       ///< number of fraction bits physically stored
};

/// Parse an n-bit code into numeric fields. Handles zero and NaR.
Decoded decode(std::uint32_t code, const PositSpec& spec);

/// Round and pack a (sign, scale, significand) triple into an n-bit code.
///
/// `sig` carries the hidden bit at position `sig_bits` (sig in
/// [2^sig_bits, 2^(sig_bits+1))). `sticky` indicates non-zero value bits below
/// the significand. Saturates at maxpos/minpos (never rounds a non-zero value
/// to zero or to NaR), matching the posit standard. `rng` is only consulted
/// for RoundMode::kStochastic and may be null otherwise.
std::uint32_t round_pack(const PositSpec& spec, bool neg, long scale, unsigned __int128 sig, int sig_bits,
                         bool sticky, RoundMode mode, RoundingRng* rng);

/// Convert an IEEE double to the nearest posit code under `mode`.
/// 0.0 -> zero code; NaN and +/-Inf -> NaR.
std::uint32_t from_double(double x, const PositSpec& spec, RoundMode mode = RoundMode::kNearestEven,
                          RoundingRng* rng = nullptr);

/// Convert a posit code to double. Exact for every supported format
/// (fraction width <= 29 < 52). NaR maps to quiet NaN.
double to_double(std::uint32_t code, const PositSpec& spec);

/// Value of maxpos = useed^(n-2) as a double.
double maxpos_value(const PositSpec& spec);
/// Value of minpos = useed^(2-n) as a double.
double minpos_value(const PositSpec& spec);

/// Sign-extend an n-bit code to a signed 32-bit integer. Posits compare as
/// two's-complement integers, so this gives a total order (NaR smallest).
std::int32_t sign_extend(std::uint32_t code, const PositSpec& spec);

}  // namespace pdnn::posit
