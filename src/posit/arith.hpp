// arith.hpp — exact posit arithmetic on raw codes.
//
// Every operation decodes its operands, computes an exact (or
// guard/round/sticky-correct) intermediate in integer arithmetic, and rounds
// once with round_pack. NaR propagates through every operation; x/0 -> NaR.
#pragma once

#include <cstdint>

#include "posit/codec.hpp"

namespace pdnn::posit {

std::uint32_t add(std::uint32_t a, std::uint32_t b, const PositSpec& spec,
                  RoundMode mode = RoundMode::kNearestEven, RoundingRng* rng = nullptr);
std::uint32_t sub(std::uint32_t a, std::uint32_t b, const PositSpec& spec,
                  RoundMode mode = RoundMode::kNearestEven, RoundingRng* rng = nullptr);
std::uint32_t mul(std::uint32_t a, std::uint32_t b, const PositSpec& spec,
                  RoundMode mode = RoundMode::kNearestEven, RoundingRng* rng = nullptr);
std::uint32_t div(std::uint32_t a, std::uint32_t b, const PositSpec& spec,
                  RoundMode mode = RoundMode::kNearestEven, RoundingRng* rng = nullptr);

/// Arithmetic negation: the two's complement of the code (exact, no rounding).
std::uint32_t neg(std::uint32_t a, const PositSpec& spec);
/// |a| (exact).
std::uint32_t abs(std::uint32_t a, const PositSpec& spec);

/// Fused multiply-add round(a*b + c): the product is kept exact (128-bit) and
/// added to c with a single final rounding.
std::uint32_t fma(std::uint32_t a, std::uint32_t b, std::uint32_t c, const PositSpec& spec,
                  RoundMode mode = RoundMode::kNearestEven, RoundingRng* rng = nullptr);

/// Three-way comparison; posits order as sign-extended two's-complement
/// integers (NaR compares smallest). Returns <0, 0, >0.
int compare(std::uint32_t a, std::uint32_t b, const PositSpec& spec);

}  // namespace pdnn::posit
