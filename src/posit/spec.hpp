// spec.hpp — runtime description of a posit format.
//
// A posit format is fully described by (n, es): total word size and exponent
// field size (Gustafson & Yonemoto, "Beating Floating Point at Its Own Game").
// This library supports 2 <= n <= 32 and 0 <= es <= 6, which covers every
// configuration used in the paper: (5,1) for Table I, (8,1)/(8,2)/(16,1)/(16,2)
// for training and Table V, and (8,0)/(16,1)/(32,3) for Table IV.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace pdnn::posit {

/// Runtime posit format descriptor. Immutable after construction.
struct PositSpec {
  int n;   ///< total word size in bits, 2..32
  int es;  ///< exponent field size in bits, 0..6

  constexpr PositSpec(int n_, int es_) : n(n_), es(es_) {}

  /// Throws std::invalid_argument if the format is outside supported limits.
  void validate() const {
    if (n < 2 || n > 32) throw std::invalid_argument("PositSpec: n must be in [2,32], got " + std::to_string(n));
    if (es < 0 || es > 6) throw std::invalid_argument("PositSpec: es must be in [0,6], got " + std::to_string(es));
  }

  /// useed = 2^(2^es); regime steps multiply the value by useed.
  double useed() const;  // defined in codec.cpp (needs std::ldexp)

  /// 2^es, the scale contribution of one regime step, as an integer.
  constexpr int useed_log2() const { return 1 << es; }

  /// Largest representable regime value k (code 0111...1).
  constexpr int max_k() const { return n - 2; }
  /// Smallest representable regime value k (code 0000...1).
  constexpr int min_k() const { return 2 - n; }

  /// Binary scale (log2) of maxpos = useed^(n-2).
  constexpr int max_scale() const { return (n - 2) * (1 << es); }
  /// Binary scale (log2) of minpos = useed^(2-n). Multiplication, not <<:
  /// left-shifting the negative regime is undefined behavior.
  constexpr int min_scale() const { return (2 - n) * (1 << es); }

  /// Bit mask covering the n-bit word.
  constexpr std::uint32_t mask() const { return n == 32 ? 0xFFFFFFFFu : ((1u << n) - 1u); }
  /// The sign bit of the n-bit word.
  constexpr std::uint32_t sign_bit() const { return 1u << (n - 1); }

  /// Code of the special Not-a-Real value (1000...0).
  constexpr std::uint32_t nar_code() const { return sign_bit(); }
  /// Code of positive maxpos (0111...1).
  constexpr std::uint32_t maxpos_code() const { return sign_bit() - 1u; }
  /// Code of positive minpos (0000...1).
  constexpr std::uint32_t minpos_code() const { return 1u; }

  /// Number of distinct codes, 2^n.
  constexpr std::uint64_t code_count() const { return 1ULL << n; }

  constexpr bool operator==(const PositSpec& o) const { return n == o.n && es == o.es; }

  std::string to_string() const { return "posit(" + std::to_string(n) + "," + std::to_string(es) + ")"; }
};

}  // namespace pdnn::posit
