// add_lut.hpp — tabulated posit addition and fused multiply-add for small
// formats.
//
// MulLut (mul_lut.hpp) removed the multiply from the n <= 8 serial hot loop,
// but the accumulator add — and the fma chain — still decoded the running
// accumulator on every term (the "next lever" ROADMAP named after PR 3).
// These tables close that gap:
//
//   * AddLut — round(a+b) as a 2^n x 2^n byte table, the exact mirror of
//     MulLut. Serial accumulation becomes two table reads per term
//     (AddLut[acc, MulLut[a, b]]), and every bias add in any accumulation
//     mode is one read.
//   * FmaLut — round(a*b + c) cannot be split into MulLut+AddLut (fma keeps
//     the product exact; mul rounds it), and a direct 2^3n table would be
//     16 MiB at n = 8. But the rounded result depends only on the *value* of
//     the exact product, and the distinct exact products of an n <= 8 format
//     are few: pairs (a, b) collapse onto product-equivalence classes
//     (a 2^2n u16 table), and the fma table is classes x 2^n bytes built
//     from one representative pair per class.
//
// Both are built once per (spec, rounding mode) and shared process-wide, and
// are bit-identical to posit::add / posit::fma by construction — the engine
// dispatches onto them at runtime exactly like MulLut.
#pragma once

#include <cstdint>
#include <vector>

#include "posit/arith.hpp"
#include "posit/unpacked.hpp"

namespace pdnn::posit {

/// One fully materialized addition table: entry [(a << n) | b] holds the
/// n-bit code of round(a+b) under the table's rounding mode.
class AddLut {
 public:
  AddLut(const PositSpec& spec, RoundMode mode);

  std::uint32_t at(std::uint32_t a, std::uint32_t b) const {
    return table_[(static_cast<std::size_t>(a) << spec_.n) | b];
  }
  const PositSpec& spec() const { return spec_; }
  RoundMode mode() const { return mode_; }
  std::size_t byte_size() const { return table_.size(); }

 private:
  PositSpec spec_;
  RoundMode mode_;
  std::vector<std::uint8_t> table_;
};

/// round(a*b + c) via product-equivalence classes: pair_class maps the
/// (a, b) code pair to the id of its exact product's value class; the fma
/// table holds round(product + c) for every (class, c).
class FmaLut {
 public:
  FmaLut(const PositSpec& spec, RoundMode mode);

  std::uint32_t at(std::uint32_t a, std::uint32_t b, std::uint32_t c) const {
    const std::size_t cls = pair_class_[(static_cast<std::size_t>(a) << spec_.n) | b];
    return table_[(cls << spec_.n) | c];
  }
  const PositSpec& spec() const { return spec_; }
  RoundMode mode() const { return mode_; }
  /// Number of distinct exact-product value classes.
  std::size_t classes() const { return table_.size() >> spec_.n; }
  std::size_t byte_size() const { return table_.size() + pair_class_.size() * sizeof(std::uint16_t); }

 private:
  PositSpec spec_;
  RoundMode mode_;
  std::vector<std::uint16_t> pair_class_;
  std::vector<std::uint8_t> table_;
};

/// True when the tables can serve this (spec, mode): n <= 8 (codes fit a
/// byte) and a deterministic rounding mode — the same predicate as MulLut.
bool add_lut_supported(const PositSpec& spec, RoundMode mode);
bool fma_lut_supported(const PositSpec& spec, RoundMode mode);

/// Process-wide table caches (thread-safe; built on first use). Throw
/// std::invalid_argument when the corresponding *_supported() is false.
const AddLut& add_lut(const PositSpec& spec, RoundMode mode);
const FmaLut& fma_lut(const PositSpec& spec, RoundMode mode);

}  // namespace pdnn::posit
