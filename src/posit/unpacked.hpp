// unpacked.hpp — compact decode-once operand form for the posit engine.
//
// The arithmetic routines in arith.cpp/quire.cpp re-decode their raw-code
// operands on every call, which dominates the cost of a software posit MAC.
// Unpacked is the decode-once alternative: an 8-byte POD holding the sign,
// the reduced significand (trailing zeros stripped, so it fits 30 bits for
// every supported spec) and the binary weight of its least significant bit.
// A code is unpacked exactly once; the hot loops then multiply/accumulate on
// the fields directly with results bit-identical to the coded paths.
#pragma once

#include <cstdint>

#include "posit/codec.hpp"

namespace pdnn::posit {

/// Decode-once operand: value = (neg ? -1 : 1) * sig * 2^lsb_weight.
///
/// `sig` is the Decoded significand with its trailing zeros shifted out
/// (odd for every finite non-zero posit), at most 30 bits since fraction
/// widths are <= 29. Zero and NaR are carried in `flags` with sig == 0, so a
/// product against them contributes nothing by construction and the NaR flag
/// can be checked per element, not per MAC.
struct Unpacked {
  std::uint32_t sig = 0;
  std::int16_t lsb_weight = 0;
  std::uint8_t neg = 0;
  std::uint8_t flags = kZeroFlag;  ///< kZeroFlag / kNarFlag, 0 for finite non-zero

  static constexpr std::uint8_t kZeroFlag = 1;
  static constexpr std::uint8_t kNarFlag = 2;

  bool is_zero() const { return (flags & kZeroFlag) != 0; }
  bool is_nar() const { return (flags & kNarFlag) != 0; }
};

/// Unpack one code. Field-for-field equivalent to decode(): the reduced
/// (sig, lsb_weight) pair denotes exactly the same real value as Decoded's
/// (sig, scale), so every consumer rounds identically.
///
/// Inline, clz-based parse (no per-bit regime loop): this runs once per
/// tensor element on the engine's encode path. The exhaustive and randomized
/// round-trip tests in tests/posit/arith_test.cpp pin it to decode().
inline Unpacked decode_unpacked(std::uint32_t code, const PositSpec& spec) {
  Unpacked u;
  code &= spec.mask();
  if (code == 0) return u;  // default-constructed: kZeroFlag, sig 0
  if (code == spec.nar_code()) {
    u.flags = Unpacked::kNarFlag;
    return u;
  }
  const bool neg = (code & spec.sign_bit()) != 0;
  const std::uint32_t mag = neg ? ((~code + 1u) & spec.mask()) : code;
  const int body_bits = spec.n - 1;
  const std::uint32_t body = mag & (spec.sign_bit() - 1u);

  // Regime: length of the leading run of identical bits. Aligning the body
  // to the top of the word makes the run a leading-zero count: the shifted-in
  // low zeros terminate an all-ones run (after inversion) and body >= 1
  // terminates an all-zeros run, so clz caps at body_bits by construction.
  const std::uint32_t x = body << (32 - body_bits);
  const bool first = (x >> 31) != 0;
  const int run = first ? __builtin_clz(~x) : __builtin_clz(x);
  const int k = first ? run - 1 : -run;

  const int after_regime = body_bits - run - 1;  // bits below the terminator
  const int remaining = after_regime > 0 ? after_regime : 0;
  const int e_stored = remaining < spec.es ? remaining : spec.es;
  std::uint32_t e_bits = 0;
  if (e_stored > 0) e_bits = (body >> (remaining - e_stored)) & ((1u << e_stored) - 1u);
  const int e = static_cast<int>(e_bits) << (spec.es - e_stored);

  const int frac_width = remaining - e_stored;
  const std::uint32_t frac = frac_width > 0 ? (body & ((1u << frac_width) - 1u)) : 0u;
  const int scale = k * (1 << spec.es) + e;  // k may be negative: no <<

  // Reduced significand: Decoded's hidden-at-62 sig is ((1<<fw)|frac) with
  // 62-fw trailing zeros appended; strip the fraction's own trailing zeros
  // on top of that.
  const std::uint32_t sig_frac = (1u << frac_width) | frac;
  const int tz = __builtin_ctz(sig_frac);
  u.sig = sig_frac >> tz;
  u.lsb_weight = static_cast<std::int16_t>(scale - frac_width + tz);
  u.neg = neg ? 1 : 0;
  u.flags = 0;
  return u;
}

/// Unpack a contiguous span of codes (the panel form the engine caches).
void decode_unpacked(const std::uint32_t* codes, std::size_t count, const PositSpec& spec,
                     Unpacked* out);

/// Rebuild the Decoded view of an unpacked operand (hidden bit back at 62).
/// Used by the arith overloads; exact for every finite non-zero operand.
Decoded to_decoded(const Unpacked& u);

/// round(a*b) on unpacked operands — bit-identical to mul() on the codes the
/// operands were unpacked from.
std::uint32_t mul(const Unpacked& a, const Unpacked& b, const PositSpec& spec,
                  RoundMode mode = RoundMode::kNearestEven, RoundingRng* rng = nullptr);

/// round(a*b + c) with the product kept exact — bit-identical to fma() on the
/// corresponding codes.
std::uint32_t fma(const Unpacked& a, const Unpacked& b, std::uint32_t c, const PositSpec& spec,
                  RoundMode mode = RoundMode::kNearestEven, RoundingRng* rng = nullptr);

}  // namespace pdnn::posit
