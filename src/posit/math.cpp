#include "posit/math.hpp"

#include <cmath>

namespace pdnn::posit {

namespace {

template <typename Fn>
std::uint32_t mediated(std::uint32_t a, const PositSpec& spec, RoundMode mode, Fn&& fn) {
  if ((a & spec.mask()) == spec.nar_code()) return spec.nar_code();
  const double x = to_double(a, spec);
  return from_double(fn(x), spec, mode);
}

}  // namespace

std::uint32_t sqrt_code(std::uint32_t a, const PositSpec& spec, RoundMode mode) {
  return mediated(a, spec, mode, [](double x) { return x < 0 ? std::nan("") : std::sqrt(x); });
}

std::uint32_t exp_code(std::uint32_t a, const PositSpec& spec, RoundMode mode) {
  return mediated(a, spec, mode, [](double x) { return std::exp(x); });
}

std::uint32_t log_code(std::uint32_t a, const PositSpec& spec, RoundMode mode) {
  return mediated(a, spec, mode, [](double x) { return x <= 0 ? std::nan("") : std::log(x); });
}

std::uint32_t tanh_code(std::uint32_t a, const PositSpec& spec, RoundMode mode) {
  return mediated(a, spec, mode, [](double x) { return std::tanh(x); });
}

std::uint32_t sigmoid_code(std::uint32_t a, const PositSpec& spec, RoundMode mode) {
  return mediated(a, spec, mode, [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
}

}  // namespace pdnn::posit
