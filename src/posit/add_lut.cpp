#include "posit/add_lut.hpp"

#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "posit/lut_cache.hpp"

namespace pdnn::posit {

AddLut::AddLut(const PositSpec& spec, RoundMode mode) : spec_(spec), mode_(mode) {
  if (!add_lut_supported(spec, mode)) {
    throw std::invalid_argument("AddLut: unsupported for " + spec.to_string());
  }
  const std::size_t count = static_cast<std::size_t>(1) << spec.n;
  table_.resize(count * count);
  for (std::uint32_t a = 0; a < count; ++a) {
    for (std::uint32_t b = 0; b < count; ++b) {
      table_[(static_cast<std::size_t>(a) << spec.n) | b] =
          static_cast<std::uint8_t>(add(a, b, spec, mode));
    }
  }
}

FmaLut::FmaLut(const PositSpec& spec, RoundMode mode) : spec_(spec), mode_(mode) {
  if (!fma_lut_supported(spec, mode)) {
    throw std::invalid_argument("FmaLut: unsupported for " + spec.to_string());
  }
  const std::size_t count = static_cast<std::size_t>(1) << spec.n;

  // Pass 1: collapse code pairs onto exact-product value classes. The product
  // of two unpacked operands is (neg, sig_a*sig_b, lsb_a+lsb_b) — already
  // reduced, since odd*odd is odd — so the class key is that triple, with one
  // reserved key each for zero products and NaR. fma's result depends only on
  // this value (and c), so one representative pair per class suffices.
  pair_class_.resize(count * count);
  std::map<std::tuple<int, std::uint32_t, int>, std::uint16_t> classes;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> reps;
  std::vector<Unpacked> ops(count);
  for (std::uint32_t a = 0; a < count; ++a) ops[a] = decode_unpacked(a, spec);
  for (std::uint32_t a = 0; a < count; ++a) {
    for (std::uint32_t b = 0; b < count; ++b) {
      std::tuple<int, std::uint32_t, int> key;
      if (ops[a].is_nar() || ops[b].is_nar()) {
        key = {2, 0, 0};  // NaR: distinct from every finite product
      } else if (ops[a].is_zero() || ops[b].is_zero()) {
        key = {0, 0, 0};  // exact zero product (sig 0 never occurs otherwise)
      } else {
        key = {ops[a].neg != ops[b].neg ? 1 : 0, ops[a].sig * ops[b].sig,
               ops[a].lsb_weight + ops[b].lsb_weight};
      }
      auto it = classes.find(key);
      if (it == classes.end()) {
        if (reps.size() >= 0xFFFF) {
          // Unreachable for n <= 8 (products collapse to a few thousand
          // classes), but the u16 id must never silently wrap.
          throw std::logic_error("FmaLut: product class id overflow");
        }
        it = classes.emplace(key, static_cast<std::uint16_t>(reps.size())).first;
        reps.emplace_back(a, b);
      }
      pair_class_[(static_cast<std::size_t>(a) << spec.n) | b] = it->second;
    }
  }

  // Pass 2: one fma row per class, from its representative pair.
  table_.resize(reps.size() << spec.n);
  for (std::size_t cls = 0; cls < reps.size(); ++cls) {
    for (std::uint32_t c = 0; c < count; ++c) {
      table_[(cls << spec.n) | c] =
          static_cast<std::uint8_t>(fma(reps[cls].first, reps[cls].second, c, spec, mode));
    }
  }
}

bool add_lut_supported(const PositSpec& spec, RoundMode mode) {
  return spec.n <= 8 && mode != RoundMode::kStochastic;
}

bool fma_lut_supported(const PositSpec& spec, RoundMode mode) {
  return spec.n <= 8 && mode != RoundMode::kStochastic;
}

// Lock-free once constructed; see lut_cache.hpp. Steady-state run() should
// still resolve at compile time and never come back here.

const AddLut& add_lut(const PositSpec& spec, RoundMode mode) {
  static detail::LutCache<AddLut> cache;
  return cache.get(spec, mode);
}

const FmaLut& fma_lut(const PositSpec& spec, RoundMode mode) {
  static detail::LutCache<FmaLut> cache;
  return cache.get(spec, mode);
}

}  // namespace pdnn::posit
