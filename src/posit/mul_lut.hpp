// mul_lut.hpp — tabulated posit multiplication for small formats.
//
// For n <= 8 the whole code space fits in one byte, so round(a*b) is a
// 2^n x 2^n byte table (at most 64 KiB — L2-resident) built once per
// (spec, rounding mode) and shared process-wide. The engine dispatches onto
// the table at runtime the same way the GEMM picks its AVX2 micro-kernel:
// eligible format -> table, otherwise the decode-once arithmetic path.
// PAPERS.md's tabulated small-n codecs are the precedent.
#pragma once

#include <cstdint>
#include <vector>

#include "posit/arith.hpp"

namespace pdnn::posit {

/// One fully materialized multiplication table: entry [(a << n) | b] holds
/// the n-bit code of round(a*b) under the table's rounding mode.
class MulLut {
 public:
  MulLut(const PositSpec& spec, RoundMode mode);

  std::uint32_t at(std::uint32_t a, std::uint32_t b) const {
    return table_[(static_cast<std::size_t>(a) << spec_.n) | b];
  }
  const PositSpec& spec() const { return spec_; }
  RoundMode mode() const { return mode_; }
  std::size_t byte_size() const { return table_.size(); }

 private:
  PositSpec spec_;
  RoundMode mode_;
  std::vector<std::uint8_t> table_;
};

/// True when a table can serve this (spec, mode): n <= 8 (codes fit a byte)
/// and a deterministic rounding mode (stochastic draws cannot be tabulated).
bool mul_lut_supported(const PositSpec& spec, RoundMode mode);

/// Process-wide table cache (thread-safe; built on first use). Throws
/// std::invalid_argument when mul_lut_supported() is false.
const MulLut& mul_lut(const PositSpec& spec, RoundMode mode);

}  // namespace pdnn::posit
