#include "posit/mul_lut.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <tuple>

namespace pdnn::posit {

MulLut::MulLut(const PositSpec& spec, RoundMode mode) : spec_(spec), mode_(mode) {
  if (!mul_lut_supported(spec, mode)) {
    throw std::invalid_argument("MulLut: unsupported for " + spec.to_string());
  }
  const std::size_t count = static_cast<std::size_t>(1) << spec.n;
  table_.resize(count * count);
  for (std::uint32_t a = 0; a < count; ++a) {
    for (std::uint32_t b = 0; b < count; ++b) {
      table_[(static_cast<std::size_t>(a) << spec.n) | b] =
          static_cast<std::uint8_t>(mul(a, b, spec, mode));
    }
  }
}

bool mul_lut_supported(const PositSpec& spec, RoundMode mode) {
  return spec.n <= 8 && mode != RoundMode::kStochastic;
}

const MulLut& mul_lut(const PositSpec& spec, RoundMode mode) {
  static std::mutex mu;
  static std::map<std::tuple<int, int, int>, std::unique_ptr<MulLut>> cache;
  const auto key = std::make_tuple(spec.n, spec.es, static_cast<int>(mode));
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<MulLut>(spec, mode)).first;
  }
  return *it->second;
}

}  // namespace pdnn::posit
