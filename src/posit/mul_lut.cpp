#include "posit/mul_lut.hpp"

#include <stdexcept>

#include "posit/lut_cache.hpp"

namespace pdnn::posit {

MulLut::MulLut(const PositSpec& spec, RoundMode mode) : spec_(spec), mode_(mode) {
  if (!mul_lut_supported(spec, mode)) {
    throw std::invalid_argument("MulLut: unsupported for " + spec.to_string());
  }
  const std::size_t count = static_cast<std::size_t>(1) << spec.n;
  table_.resize(count * count);
  for (std::uint32_t a = 0; a < count; ++a) {
    for (std::uint32_t b = 0; b < count; ++b) {
      table_[(static_cast<std::size_t>(a) << spec.n) | b] =
          static_cast<std::uint8_t>(mul(a, b, spec, mode));
    }
  }
}

bool mul_lut_supported(const PositSpec& spec, RoundMode mode) {
  return spec.n <= 8 && mode != RoundMode::kStochastic;
}

const MulLut& mul_lut(const PositSpec& spec, RoundMode mode) {
  // Lock-free once constructed; see lut_cache.hpp. Steady-state run() should
  // still resolve at compile time and never come back here.
  static detail::LutCache<MulLut> cache;
  return cache.get(spec, mode);
}

}  // namespace pdnn::posit
