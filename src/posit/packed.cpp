#include "posit/packed.hpp"

#include <cstring>

namespace pdnn::posit {

void pack_codes(const std::uint32_t* codes, std::size_t first, std::size_t count,
                const PositSpec& spec, std::uint8_t* out) {
  const std::uint32_t mask = spec.mask();
  const std::size_t n = static_cast<std::size_t>(spec.n);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t bit = (first + i) * n;
    std::uint64_t window;
    std::memcpy(&window, out + (bit >> 3), sizeof(window));
    window |= static_cast<std::uint64_t>(codes[i] & mask) << (bit & 7);
    std::memcpy(out + (bit >> 3), &window, sizeof(window));
  }
}

void unpack_codes(const std::uint8_t* packed, std::size_t first, std::size_t count,
                  const PositSpec& spec, std::uint32_t* out) {
  const std::uint32_t mask = spec.mask();
  const std::size_t n = static_cast<std::size_t>(spec.n);
  std::size_t bit = first * n;
  for (std::size_t i = 0; i < count; ++i, bit += n) {
    std::uint64_t window;
    std::memcpy(&window, packed + (bit >> 3), sizeof(window));
    out[i] = static_cast<std::uint32_t>(window >> (bit & 7)) & mask;
  }
}

void PackedPositTensor::set_code(std::size_t index, std::uint32_t code) {
  const std::size_t bit = index * static_cast<std::size_t>(spec_.n);
  std::uint64_t window;
  std::memcpy(&window, bits_.data() + (bit >> 3), sizeof(window));
  window &= ~(static_cast<std::uint64_t>(spec_.mask()) << (bit & 7));
  window |= static_cast<std::uint64_t>(code & spec_.mask()) << (bit & 7);
  std::memcpy(bits_.data() + (bit >> 3), &window, sizeof(window));
}

PackedPositTensor PackedPositTensor::pack(const tensor::Tensor& t, PositSpec spec, RoundMode mode) {
  PackedPositTensor out(spec, t.shape());
  for (std::size_t i = 0; i < t.numel(); ++i) {
    out.set_code(i, from_double(t[i], spec, mode));
  }
  return out;
}

tensor::Tensor PackedPositTensor::unpack() const {
  tensor::Tensor t(shape_);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const double v = to_double(code_at(i), spec_);
    t[i] = static_cast<float>(v == v ? v : 0.0);  // NaR -> 0 in float tensors
  }
  return t;
}

}  // namespace pdnn::posit
