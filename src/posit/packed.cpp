#include "posit/packed.hpp"

namespace pdnn::posit {

std::uint32_t PackedPositTensor::code_at(std::size_t index) const {
  const std::size_t bit0 = index * static_cast<std::size_t>(spec_.n);
  std::uint32_t code = 0;
  for (int b = 0; b < spec_.n; ++b) {
    const std::size_t bit = bit0 + static_cast<std::size_t>(b);
    code |= static_cast<std::uint32_t>((bits_[bit / 8] >> (bit % 8)) & 1u) << b;
  }
  return code;
}

void PackedPositTensor::set_code(std::size_t index, std::uint32_t code) {
  const std::size_t bit0 = index * static_cast<std::size_t>(spec_.n);
  for (int b = 0; b < spec_.n; ++b) {
    const std::size_t bit = bit0 + static_cast<std::size_t>(b);
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << (bit % 8));
    if ((code >> b) & 1u) {
      bits_[bit / 8] |= mask;
    } else {
      bits_[bit / 8] &= static_cast<std::uint8_t>(~mask);
    }
  }
}

PackedPositTensor PackedPositTensor::pack(const tensor::Tensor& t, PositSpec spec, RoundMode mode) {
  PackedPositTensor out(spec, t.shape());
  for (std::size_t i = 0; i < t.numel(); ++i) {
    out.set_code(i, from_double(t[i], spec, mode));
  }
  return out;
}

tensor::Tensor PackedPositTensor::unpack() const {
  tensor::Tensor t(shape_);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const double v = to_double(code_at(i), spec_);
    t[i] = static_cast<float>(v == v ? v : 0.0);  // NaR -> 0 in float tensors
  }
  return t;
}

}  // namespace pdnn::posit
