#include "posit/unpacked.hpp"

#include "posit/simd.hpp"

namespace pdnn::posit {

void decode_unpacked(const std::uint32_t* codes, std::size_t count, const PositSpec& spec,
                     Unpacked* out) {
  std::size_t i = 0;
  if (simd::enabled()) {
    for (; i + 8 <= count; i += 8) simd::decode_unpacked8_avx2(codes + i, spec, out + i);
  }
  for (; i < count; ++i) out[i] = decode_unpacked(codes[i], spec);
}

Decoded to_decoded(const Unpacked& u) {
  // Only the numeric fields (sign, scale, sig) are rebuilt; the raw field view
  // (k, e, frac) is reporting-only and stays zero.
  Decoded d;
  d.is_zero = u.is_zero();
  d.is_nar = u.is_nar();
  if (d.is_zero || d.is_nar) return d;
  d.neg = u.neg != 0;
  const int msb = 31 - __builtin_clz(u.sig);
  d.scale = static_cast<int>(u.lsb_weight) + msb;
  d.sig = static_cast<std::uint64_t>(u.sig) << (62 - msb);
  return d;
}

}  // namespace pdnn::posit
