// simd.hpp — runtime-dispatched AVX2 kernels for the posit engine hot path.
//
// Two kernels live behind the dispatcher, both bit-identical to their scalar
// references by construction (and pinned by the exhaustive oracle tests in
// tests/posit/pack_codec_test.cpp):
//
//   * decode_unpacked8_avx2 — batch-of-8 posit decode: eight n-bit codes in,
//     eight Unpacked lanes out. The regime parse is branch-free: the leading
//     run becomes a vector clz (highest-set-bit isolation + the exact
//     float-exponent trick; AVX2 has no lzcnt), regime/exponent/fraction
//     splits use per-lane variable shifts, and the trailing-zero reduction
//     reuses the same trick on the isolated lowest bit. This is the group
//     decoder behind decode_unpacked() spans — the engine's packed-panel
//     block decode and every activation encode pass run through it.
//   * accumulate_limbs_avx2 — the vectorized carry-save deposit inside
//     Quire::accumulate_dot: per group of eight products it computes the
//     64-bit significand products, splits each into three 32-bit carry-save
//     chunks at its bit position (variable 64-bit shifts), spills the chunk
//     vectors to the stack, and deposits each term with three 64-bit limb
//     adds — even terms into bank 0, odd terms into bank 1 of each sign
//     stream. Product positions cluster inside a dot product, so wide RMW
//     vectors at shifting offsets would defeat store-to-load forwarding;
//     narrow same-address adds across twice the banks keep the forwarding
//     chains short instead. The folded register state matches the scalar
//     loop exactly (every deposit is an exact add mod 2^width, so neither
//     grouping nor bank splitting can change a bit).
//
// Dispatch mirrors tensor/gemm_kernel.cpp: __builtin_cpu_supports("avx2")
// resolved once, with two overrides — the PDNN_NO_AVX2=1 environment
// variable (read at first use; how CI covers the scalar fallback on AVX2
// hosts) and force_disable() (an in-process toggle the oracle tests and
// micro benches use to compare both paths in one run).
#pragma once

#include <cstddef>
#include <cstdint>

#include "posit/spec.hpp"
#include "posit/unpacked.hpp"

namespace pdnn::posit::simd {

/// CPU has AVX2 and PDNN_NO_AVX2 was unset (or "0") at first use. Immutable.
bool available();

/// available() minus the force_disable() toggle — what dispatch consults.
bool enabled();

/// Testing/bench hook: pin every dispatch to the scalar fallback (true) or
/// restore available()-based dispatch (false). Not thread-safe against
/// concurrent kernel calls; flip it only around single-threaded sections.
void force_disable(bool disable);

/// Decode codes[0..8) into out[0..8), bit-identical to eight scalar
/// decode_unpacked() calls. Caller must check enabled().
void decode_unpacked8_avx2(const std::uint32_t* codes, const PositSpec& spec, Unpacked* out);

/// Deposit the first (count & ~7) exact products a[i]*b[i] into the
/// sign-split carry-save banks (32-bit payload limbs at 32-bit stride;
/// same-sign stream to pos_limbs, mixed-sign to neg_limbs). Even-indexed
/// terms land in the bank at each stream's base, odd-indexed terms at
/// base + bank1_offset limbs — the caller zeroes and folds all four banks.
/// `base` is the quire's frac_bits_. Returns the OR of all consumed operand
/// flag bytes (caller checks Unpacked::kNarFlag) and the number of terms
/// consumed. Caller must check enabled() and handle the ragged tail with the
/// scalar loop.
std::size_t accumulate_limbs_avx2(const Unpacked* a, const Unpacked* b, std::size_t count,
                                  long base, std::uint64_t* pos_limbs, std::uint64_t* neg_limbs,
                                  std::size_t bank1_offset, std::uint32_t* flags_or);

}  // namespace pdnn::posit::simd
