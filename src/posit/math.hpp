// math.hpp — elementary functions on posits.
//
// These are double-mediated: the operand is converted to double (exact for all
// supported formats), evaluated in double precision, and rounded back once.
// Since double carries 53 significand bits and the widest supported posit
// fraction is 29 bits, this yields faithfully-rounded results.
#pragma once

#include "posit/posit.hpp"

namespace pdnn::posit {

std::uint32_t sqrt_code(std::uint32_t a, const PositSpec& spec, RoundMode mode = RoundMode::kNearestEven);
std::uint32_t exp_code(std::uint32_t a, const PositSpec& spec, RoundMode mode = RoundMode::kNearestEven);
std::uint32_t log_code(std::uint32_t a, const PositSpec& spec, RoundMode mode = RoundMode::kNearestEven);
std::uint32_t tanh_code(std::uint32_t a, const PositSpec& spec, RoundMode mode = RoundMode::kNearestEven);
std::uint32_t sigmoid_code(std::uint32_t a, const PositSpec& spec, RoundMode mode = RoundMode::kNearestEven);

template <int N, int ES>
Posit<N, ES> sqrt(Posit<N, ES> a) {
  return Posit<N, ES>::from_bits(sqrt_code(a.bits(), a.spec()));
}
template <int N, int ES>
Posit<N, ES> exp(Posit<N, ES> a) {
  return Posit<N, ES>::from_bits(exp_code(a.bits(), a.spec()));
}
template <int N, int ES>
Posit<N, ES> log(Posit<N, ES> a) {
  return Posit<N, ES>::from_bits(log_code(a.bits(), a.spec()));
}
template <int N, int ES>
Posit<N, ES> tanh(Posit<N, ES> a) {
  return Posit<N, ES>::from_bits(tanh_code(a.bits(), a.spec()));
}
template <int N, int ES>
Posit<N, ES> sigmoid(Posit<N, ES> a) {
  return Posit<N, ES>::from_bits(sigmoid_code(a.bits(), a.spec()));
}

}  // namespace pdnn::posit
