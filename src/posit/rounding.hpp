// rounding.hpp — rounding modes for posit encoding.
//
// The posit standard prescribes round-to-nearest-even with saturation (no
// overflow to NaR, no underflow to zero). The paper's transformation operator
// P_{n,es}(x) (Algorithm 1) instead uses round-toward-zero because it is
// cheaper in hardware; stochastic rounding is included for the ablation
// benches (cf. Gupta et al., "Deep Learning with Limited Numerical Precision").
#pragma once

#include <cstdint>

namespace pdnn::posit {

enum class RoundMode {
  kNearestEven,  ///< posit-standard: round to nearest, ties to even code
  kTowardZero,   ///< truncate discarded bits (paper Algorithm 1, lines 18-19)
  kStochastic,   ///< round up with probability equal to the discarded fraction
};

/// Small, fast PRNG (xoshiro256**) used for stochastic rounding. Deterministic
/// given its seed so experiments are reproducible.
class RoundingRng {
 public:
  explicit RoundingRng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4];
};

}  // namespace pdnn::posit
