#include "posit/simd.hpp"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PDNN_POSIT_X86 1
#endif

namespace pdnn::posit::simd {

namespace {

std::atomic<bool> g_force_disabled{false};

bool detect() {
#ifdef PDNN_POSIT_X86
  const char* env = std::getenv("PDNN_NO_AVX2");
  if (env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0')) return false;
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

bool available() {
  // Function-local static: resolved on first use, after libgcc's CPU-model
  // constructor has definitely run (same pattern as tensor/gemm_kernel.cpp).
  static const bool avail = detect();
  return avail;
}

bool enabled() { return available() && !g_force_disabled.load(std::memory_order_relaxed); }

void force_disable(bool disable) { g_force_disabled.store(disable, std::memory_order_relaxed); }

#ifdef PDNN_POSIT_X86

namespace {

// clz/ctz of a 32-bit lane via the float-exponent trick: for a power of two
// 2^p with p <= 30, _mm256_cvtepi32_ps is exact and the biased exponent field
// is 127 + p, so p = (bits >> 23) - 127. The callers below only feed isolated
// single-bit values (or 0, whose lanes are blended away afterwards).
__attribute__((target("avx2"))) inline __m256i bit_position(__m256i isolated) {
  const __m256i bits = _mm256_castps_si256(_mm256_cvtepi32_ps(isolated));
  return _mm256_sub_epi32(_mm256_srli_epi32(bits, 23), _mm256_set1_epi32(127));
}

}  // namespace

__attribute__((target("avx2"))) void decode_unpacked8_avx2(const std::uint32_t* codes,
                                                           const PositSpec& spec, Unpacked* out) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i maskv = _mm256_set1_epi32(static_cast<int>(spec.mask()));
  const __m256i signv = _mm256_set1_epi32(static_cast<int>(spec.sign_bit()));
  const int body_bits = spec.n - 1;

  const __m256i code =
      _mm256_and_si256(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes)), maskv);
  const __m256i zeromask = _mm256_cmpeq_epi32(code, zero);
  const __m256i narmask = _mm256_cmpeq_epi32(code, signv);  // nar_code() == sign_bit()

  // Magnitude: two's-complement negate the negative codes.
  const __m256i negmask = _mm256_cmpeq_epi32(_mm256_and_si256(code, signv), signv);
  const __m256i mag = _mm256_castps_si256(_mm256_blendv_ps(
      _mm256_castsi256_ps(code),
      _mm256_castsi256_ps(_mm256_and_si256(_mm256_sub_epi32(zero, code), maskv)),
      _mm256_castsi256_ps(negmask)));
  const __m256i body = _mm256_and_si256(mag, _mm256_sub_epi32(signv, one));

  // Regime run length as a leading-zero count of the top-aligned body (the
  // all-ones case is inverted first), exactly as the scalar parse: the word
  // to count is nonzero with bit 31 clear for every finite non-zero code, so
  // isolating its highest set bit and reading the float exponent is exact.
  // Special lanes (code 0 / NaR) run through with garbage run values — every
  // downstream shift stays defined (AVX2 variable shifts yield 0 for counts
  // >= width) and the lanes are overwritten by the final blend.
  const __m256i x = _mm256_slli_epi32(body, 32 - body_bits);
  const __m256i firstmask = _mm256_srai_epi32(x, 31);  // regime of ones?
  __m256i w = _mm256_castps_si256(_mm256_blendv_ps(
      _mm256_castsi256_ps(x), _mm256_castsi256_ps(_mm256_xor_si256(x, _mm256_set1_epi32(-1))),
      _mm256_castsi256_ps(firstmask)));
  w = _mm256_or_si256(w, _mm256_srli_epi32(w, 1));
  w = _mm256_or_si256(w, _mm256_srli_epi32(w, 2));
  w = _mm256_or_si256(w, _mm256_srli_epi32(w, 4));
  w = _mm256_or_si256(w, _mm256_srli_epi32(w, 8));
  w = _mm256_or_si256(w, _mm256_srli_epi32(w, 16));
  const __m256i highbit = _mm256_sub_epi32(w, _mm256_srli_epi32(w, 1));
  const __m256i run = _mm256_sub_epi32(_mm256_set1_epi32(31), bit_position(highbit));
  const __m256i k = _mm256_castps_si256(_mm256_blendv_ps(
      _mm256_castsi256_ps(_mm256_sub_epi32(zero, run)),
      _mm256_castsi256_ps(_mm256_sub_epi32(run, one)), _mm256_castsi256_ps(firstmask)));

  // Exponent / fraction split below the regime terminator.
  const __m256i remaining =
      _mm256_max_epi32(_mm256_sub_epi32(_mm256_set1_epi32(body_bits - 1), run), zero);
  const __m256i e_stored = _mm256_min_epi32(remaining, _mm256_set1_epi32(spec.es));
  const __m256i e_bits =
      _mm256_and_si256(_mm256_srlv_epi32(body, _mm256_sub_epi32(remaining, e_stored)),
                       _mm256_sub_epi32(_mm256_sllv_epi32(one, e_stored), one));
  const __m256i e = _mm256_sllv_epi32(e_bits, _mm256_sub_epi32(_mm256_set1_epi32(spec.es), e_stored));
  const __m256i frac_width = _mm256_sub_epi32(remaining, e_stored);
  const __m256i frac =
      _mm256_and_si256(body, _mm256_sub_epi32(_mm256_sllv_epi32(one, frac_width), one));
  const __m256i scale =
      _mm256_add_epi32(_mm256_mullo_epi32(k, _mm256_set1_epi32(1 << spec.es)), e);

  // Reduced significand: strip trailing zeros (lowest-set-bit isolation feeds
  // the same exact float-exponent trick; sig_frac >= 1 in every lane).
  const __m256i sig_frac = _mm256_or_si256(_mm256_sllv_epi32(one, frac_width), frac);
  const __m256i tz = bit_position(_mm256_and_si256(sig_frac, _mm256_sub_epi32(zero, sig_frac)));
  const __m256i sig = _mm256_srlv_epi32(sig_frac, tz);
  const __m256i lsb = _mm256_add_epi32(_mm256_sub_epi32(scale, frac_width), tz);

  // Assemble the struct's second word: lsb_weight (int16) | neg << 16 |
  // flags << 24, matching Unpacked's little-endian field layout.
  const __m256i hi_normal =
      _mm256_or_si256(_mm256_and_si256(lsb, _mm256_set1_epi32(0xFFFF)),
                      _mm256_slli_epi32(_mm256_and_si256(negmask, one), 16));
  const __m256i special = _mm256_or_si256(zeromask, narmask);
  const __m256i hi_special = _mm256_or_si256(
      _mm256_and_si256(zeromask, _mm256_set1_epi32(Unpacked::kZeroFlag << 24)),
      _mm256_and_si256(narmask, _mm256_set1_epi32(Unpacked::kNarFlag << 24)));
  const __m256i hi = _mm256_castps_si256(
      _mm256_blendv_ps(_mm256_castsi256_ps(hi_normal), _mm256_castsi256_ps(hi_special),
                       _mm256_castsi256_ps(special)));
  const __m256i sig_out = _mm256_andnot_si256(special, sig);

  // Interleave (sig, hi) pairs back into struct order and store 8 Unpacked.
  const __m256i lo_pairs = _mm256_unpacklo_epi32(sig_out, hi);
  const __m256i hi_pairs = _mm256_unpackhi_epi32(sig_out, hi);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      _mm256_permute2x128_si256(lo_pairs, hi_pairs, 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4),
                      _mm256_permute2x128_si256(lo_pairs, hi_pairs, 0x31));
}

__attribute__((target("avx2"))) std::size_t accumulate_limbs_avx2(
    const Unpacked* a, const Unpacked* b, std::size_t count, long base, std::uint64_t* pos_limbs,
    std::uint64_t* neg_limbs, std::size_t bank1_offset, std::uint32_t* flags_or) {
  const std::size_t head = count & ~static_cast<std::size_t>(7);
  const __m256i deint = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  const __m256i basev = _mm256_set1_epi32(static_cast<int>(base));
  const __m256i lo32 = _mm256_set1_epi64x(0xFFFFFFFFll);
  __m256i meta_or = _mm256_setzero_si256();

  for (std::size_t i = 0; i < head; i += 8) {
    // Load 8 (sig, hi) structs per operand and deinterleave into a sig vector
    // and a hi vector (hi = lsb_weight | neg << 16 | flags << 24).
    const __m256i ta0 = _mm256_permutevar8x32_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)), deint);
    const __m256i ta1 = _mm256_permutevar8x32_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4)), deint);
    const __m256i tb0 = _mm256_permutevar8x32_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)), deint);
    const __m256i tb1 = _mm256_permutevar8x32_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 4)), deint);
    const __m256i sig_a = _mm256_permute2x128_si256(ta0, ta1, 0x20);
    const __m256i hi_a = _mm256_permute2x128_si256(ta0, ta1, 0x31);
    const __m256i sig_b = _mm256_permute2x128_si256(tb0, tb1, 0x20);
    const __m256i hi_b = _mm256_permute2x128_si256(tb0, tb1, 0x31);
    meta_or = _mm256_or_si256(meta_or, _mm256_or_si256(hi_a, hi_b));

    // Per-term bit position of the product inside the carry-save banks. NaR
    // and zero operands have sig == 0 and lsb_weight == 0, so their lanes
    // deposit nothing at a position that is safely in range.
    const __m256i lsb_a = _mm256_srai_epi32(_mm256_slli_epi32(hi_a, 16), 16);
    const __m256i lsb_b = _mm256_srai_epi32(_mm256_slli_epi32(hi_b, 16), 16);
    const __m256i pos = _mm256_add_epi32(_mm256_add_epi32(lsb_a, lsb_b), basev);
    const __m256i sgn =
        _mm256_and_si256(_mm256_srli_epi32(_mm256_xor_si256(hi_a, hi_b), 16), _mm256_set1_epi32(1));
    alignas(32) std::uint32_t idxs[8];
    alignas(32) std::uint32_t sgns[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(idxs), _mm256_srli_epi32(pos, 5));
    _mm256_store_si256(reinterpret_cast<__m256i*>(sgns), sgn);

    // 64-bit products: even int32 lanes (terms 0,2,4,6) via mul_epu32, odd
    // lanes shifted down first. Each product (<= 60 bits) splits into three
    // 32-bit chunks at shift (pos & 31), the exact expressions of the scalar
    // loop (chunk 2's shift stays defined at sh == 0 by the >> 1 pre-shift).
    const __m256i pe = _mm256_mul_epu32(sig_a, sig_b);
    const __m256i po = _mm256_mul_epu32(_mm256_srli_epi64(sig_a, 32), _mm256_srli_epi64(sig_b, 32));
    const __m256i she = _mm256_and_si256(pos, _mm256_set1_epi64x(0x1F));
    const __m256i sho = _mm256_and_si256(_mm256_srli_epi64(pos, 32), _mm256_set1_epi64x(0x1F));
    const __m256i c0e = _mm256_and_si256(_mm256_sllv_epi64(pe, she), lo32);
    const __m256i c0o = _mm256_and_si256(_mm256_sllv_epi64(po, sho), lo32);
    const __m256i c1e = _mm256_and_si256(
        _mm256_srlv_epi64(pe, _mm256_sub_epi64(_mm256_set1_epi64x(32), she)), lo32);
    const __m256i c1o = _mm256_and_si256(
        _mm256_srlv_epi64(po, _mm256_sub_epi64(_mm256_set1_epi64x(32), sho)), lo32);
    const __m256i c2e =
        _mm256_srlv_epi64(_mm256_srli_epi64(pe, 1), _mm256_sub_epi64(_mm256_set1_epi64x(63), she));
    const __m256i c2o =
        _mm256_srlv_epi64(_mm256_srli_epi64(po, 1), _mm256_sub_epi64(_mm256_set1_epi64x(63), sho));

    // Spill the chunk vectors (even terms 0,2,4,6 then odd terms 1,3,5,7 in
    // each array's halves) and deposit with three 64-bit limb adds per term —
    // exactly the scalar loop's adds, so any grouping is bit-identical. Wide
    // RMW vectors would partially overlap between consecutive terms (product
    // positions cluster inside a dot) and kill store-to-load forwarding;
    // narrow adds forward, and alternating terms between two banks per sign
    // stream halves the remaining same-limb dependency chains.
    alignas(32) std::uint64_t ch0[8], ch1[8], ch2[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(ch0), c0e);
    _mm256_store_si256(reinterpret_cast<__m256i*>(ch0 + 4), c0o);
    _mm256_store_si256(reinterpret_cast<__m256i*>(ch1), c1e);
    _mm256_store_si256(reinterpret_cast<__m256i*>(ch1 + 4), c1o);
    _mm256_store_si256(reinterpret_cast<__m256i*>(ch2), c2e);
    _mm256_store_si256(reinterpret_cast<__m256i*>(ch2 + 4), c2o);
    for (int t = 0; t < 8; ++t) {
      const int s = ((t & 1) << 2) | (t >> 1);  // term t's slot in the spills
      std::uint64_t* dst = (sgns[t] != 0 ? neg_limbs : pos_limbs) +
                           ((t & 1) != 0 ? bank1_offset : 0) + idxs[t];
      dst[0] += ch0[s];
      dst[1] += ch1[s];
      dst[2] += ch2[s];
    }
  }

  alignas(32) std::uint32_t meta[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(meta), meta_or);
  std::uint32_t flags = 0;
  for (int l = 0; l < 8; ++l) flags |= meta[l] >> 24;
  *flags_or |= flags;
  return head;
}

#else  // !PDNN_POSIT_X86 — never dispatched to (available() is false).

void decode_unpacked8_avx2(const std::uint32_t* codes, const PositSpec& spec, Unpacked* out) {
  decode_unpacked(codes, 8, spec, out);
}

std::size_t accumulate_limbs_avx2(const Unpacked*, const Unpacked*, std::size_t, long,
                                  std::uint64_t*, std::uint64_t*, std::size_t, std::uint32_t*) {
  return 0;
}

#endif

}  // namespace pdnn::posit::simd
