#include "posit/tables.hpp"

#include <cmath>

namespace pdnn::posit {

std::string dyadic_to_string(std::uint64_t numerator, int pow2) {
  // Value = numerator * 2^pow2 with numerator odd or zero after reduction.
  if (numerator == 0) return "0";
  while ((numerator & 1u) == 0) {
    numerator >>= 1;
    ++pow2;
  }
  if (pow2 >= 0) {
    // Integer: numerator << pow2 (safe for the small values Table I uses).
    const double v = std::ldexp(static_cast<double>(numerator), pow2);
    if (v == std::floor(v) && v < 1e18) {
      return std::to_string(static_cast<long long>(v));
    }
    return std::to_string(numerator) + "*2^" + std::to_string(pow2);
  }
  return std::to_string(numerator) + "/" + std::to_string(static_cast<long long>(std::ldexp(1.0, -pow2)));
}

CodeDescription describe(std::uint32_t code, const PositSpec& spec) {
  CodeDescription out;
  out.code = code & spec.mask();
  out.binary.resize(static_cast<std::size_t>(spec.n));
  for (int i = 0; i < spec.n; ++i) {
    out.binary[static_cast<std::size_t>(spec.n - 1 - i)] = ((out.code >> i) & 1u) ? '1' : '0';
  }
  const Decoded d = decode(out.code, spec);
  out.is_zero = d.is_zero;
  out.is_nar = d.is_nar;
  if (d.is_zero || d.is_nar) {
    out.value = d.is_zero ? 0.0 : std::nan("");
    out.value_str = d.is_zero ? "0" : "NaR";
    out.mantissa_str = "x";
    return out;
  }
  out.regime = d.k;
  out.exponent = d.e;
  out.mantissa = d.frac_width > 0 ? std::ldexp(static_cast<double>(d.frac), -d.frac_width) : 0.0;
  out.mantissa_str = d.frac == 0 ? "0" : dyadic_to_string(d.frac, -d.frac_width);
  out.value = to_double(out.code, spec);
  // Exact dyadic value: sig * 2^(scale-62) with sig's trailing zeros folded in.
  out.value_str = (d.neg ? "-" : "") + dyadic_to_string(d.sig, d.scale - 62);
  return out;
}

std::vector<CodeDescription> enumerate(std::uint32_t first, std::uint32_t last, const PositSpec& spec) {
  std::vector<CodeDescription> rows;
  rows.reserve(last - first + 1);
  for (std::uint32_t c = first; c <= last; ++c) rows.push_back(describe(c, spec));
  return rows;
}

}  // namespace pdnn::posit
