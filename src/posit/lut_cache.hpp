// lut_cache.hpp — process-wide LUT cache shared by mul_lut/add_lut/fma_lut.
//
// Steady-state engine code resolves its LUT pointers once at compile/plan
// time (quant::detail::resolve_luts, PositSession::compile), but ad-hoc
// callers — the free-function engine entry points, tests, benches — hit the
// cache per call. Under a serving worker pool those lookups used to contend
// on one global std::mutex for every call; the fast path below is a plain
// acquire load from a fixed table of atomic pointers, so a constructed LUT
// is reached without any lock. The mutex now guards only first-touch
// construction (and the overflow map for specs outside the fast-path index
// range, which mul/add/fma_lut_supported() formats never are).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "posit/rounding.hpp"
#include "posit/spec.hpp"

namespace pdnn::posit::detail {

/// Fast-path index bounds: LUTs exist only for n <= 8 (so es <= 6 per
/// PositSpec::validate) and the three RoundModes.
constexpr int kLutCacheMaxN = 8;
constexpr int kLutCacheMaxEs = 7;
constexpr int kLutCacheModes = 3;

template <typename Lut>
class LutCache {
 public:
  const Lut& get(const PositSpec& spec, RoundMode mode) {
    const int m = static_cast<int>(mode);
    std::atomic<const Lut*>* slot = nullptr;
    if (spec.n >= 0 && spec.n <= kLutCacheMaxN && spec.es >= 0 && spec.es < kLutCacheMaxEs &&
        m >= 0 && m < kLutCacheModes) {
      slot = &fast_[spec.n][spec.es][m];
      const Lut* hit = slot->load(std::memory_order_acquire);
      if (hit != nullptr) return *hit;
    }
    // Miss: construct under the lock (the Lut constructor throws for
    // unsupported formats before anything is cached), then publish.
    std::lock_guard<std::mutex> lock(mu_);
    const auto key = std::make_tuple(spec.n, spec.es, m);
    auto it = owned_.find(key);
    if (it == owned_.end()) {
      it = owned_.emplace(key, std::make_unique<Lut>(spec, mode)).first;
      if (slot != nullptr) slot->store(it->second.get(), std::memory_order_release);
    }
    return *it->second;
  }

 private:
  std::atomic<const Lut*> fast_[kLutCacheMaxN + 1][kLutCacheMaxEs][kLutCacheModes] = {};
  std::mutex mu_;
  std::map<std::tuple<int, int, int>, std::unique_ptr<Lut>> owned_;
};

}  // namespace pdnn::posit::detail
