#include "posit/quire.hpp"

#include <cmath>
#include <limits>

#include "posit/simd.hpp"

namespace pdnn::posit {

namespace {
using u128 = unsigned __int128;
}

Quire::Quire(const PositSpec& spec, int guard_bits) : spec_(spec) {
  spec_.validate();
  // Smallest product: minpos^2 = 2^(2*min_scale). Products are deposited with
  // the raw 128-bit significand whose bit 0 sits 124 places below the hidden
  // bit (those low bits are zero for n <= 32 operands, but the shift target
  // must still exist), so reserve 128 bits of slack below 2*min_scale.
  frac_bits_ = -2L * spec_.min_scale() + 128;
  // Largest magnitude after 2^guard_bits accumulations of maxpos^2.
  const long int_bits = 2L * spec_.max_scale() + guard_bits + 2;
  const long total = frac_bits_ + int_bits + 1;  // +1 sign
  words_.assign(static_cast<std::size_t>((total + 63) / 64), 0u);
  // accumulate_dot scratch: one 64-bit limb per 32 register bits plus two
  // spill limbs per bank, four banks — the SIMD deposit splits each sign
  // stream (positive, negative) across two banks (even/odd terms) to shorten
  // the same-limb add chains; the scalar path uses only the first bank of
  // each stream. Every bank folds into the register exactly, so the split
  // cannot change a bit.
  limbs_.assign((words_.size() * 2 + 2 + 2) * 4, 0u);
  mag_scratch_.assign(words_.size(), 0u);
}

void Quire::clear() {
  words_.assign(words_.size(), 0u);
  nar_ = false;
}

bool Quire::is_zero() const {
  if (nar_) return false;
  for (const auto w : words_)
    if (w != 0) return false;
  return true;
}

void Quire::add_shifted(u128 sig, long lsb_weight, bool negative) {
  // The value added is sig * 2^lsb_weight; bit position of sig's bit 0 inside
  // the register is frac_bits_ + lsb_weight.
  const long pos = frac_bits_ + lsb_weight;
  if (pos < 0 || sig == 0) return;  // cannot happen for valid posit products
  std::size_t word = static_cast<std::size_t>(pos / 64);
  const int bit = static_cast<int>(pos % 64);

  // Spread sig (up to 128 bits) across up to three words at offset `bit`.
  std::uint64_t chunks[3] = {static_cast<std::uint64_t>(sig << bit), 0, 0};
  if (bit != 0) {
    chunks[1] = static_cast<std::uint64_t>(sig >> (64 - bit));
    chunks[2] = static_cast<std::uint64_t>(sig >> (128 - bit));
  } else {
    chunks[1] = static_cast<std::uint64_t>(sig >> 64);
  }

  if (!negative) {
    unsigned carry = 0;
    for (int i = 0; i < 3 && word + i < words_.size(); ++i) {
      const u128 s = static_cast<u128>(words_[word + i]) + chunks[i] + carry;
      words_[word + i] = static_cast<std::uint64_t>(s);
      carry = static_cast<unsigned>(s >> 64);
    }
    for (std::size_t i = word + 3; carry && i < words_.size(); ++i) {
      const u128 s = static_cast<u128>(words_[i]) + carry;
      words_[i] = static_cast<std::uint64_t>(s);
      carry = static_cast<unsigned>(s >> 64);
    }
  } else {
    std::uint64_t borrow = 0;
    for (int i = 0; i < 3 && word + i < words_.size(); ++i) {
      const u128 sub_amount = static_cast<u128>(chunks[i]) + borrow;
      const u128 before = words_[word + i];
      words_[word + i] = static_cast<std::uint64_t>(before - sub_amount);
      borrow = before < sub_amount ? 1u : 0u;
    }
    for (std::size_t i = word + 3; borrow && i < words_.size(); ++i) {
      const std::uint64_t before = words_[i];
      words_[i] = before - borrow;
      borrow = before == 0 ? 1u : 0u;
    }
  }
}

void Quire::add_product(std::uint32_t a, std::uint32_t b) {
  const Decoded da = decode(a, spec_);
  const Decoded db = decode(b, spec_);
  if (da.is_nar || db.is_nar) {
    nar_ = true;
    return;
  }
  if (da.is_zero || db.is_zero) return;
  const u128 product = static_cast<u128>(da.sig) * db.sig;  // hidden at 124/125
  const long lsb_weight = static_cast<long>(da.scale) + db.scale - 124;
  add_shifted(product, lsb_weight, da.neg != db.neg);
}

void Quire::add_shifted64(std::uint64_t sig, long lsb_weight, bool negative) {
  const long pos = frac_bits_ + lsb_weight;
  if (pos < 0 || sig == 0) return;  // cannot happen for valid posit products
  std::size_t word = static_cast<std::size_t>(pos / 64);
  const int bit = static_cast<int>(pos % 64);
  const std::uint64_t lo = sig << bit;
  const std::uint64_t hi = bit != 0 ? sig >> (64 - bit) : 0u;

  if (!negative) {
    u128 s = static_cast<u128>(words_[word]) + lo;
    words_[word] = static_cast<std::uint64_t>(s);
    unsigned carry = static_cast<unsigned>(s >> 64);
    for (std::size_t i = word + 1; (carry || (i == word + 1 && hi)) && i < words_.size(); ++i) {
      s = static_cast<u128>(words_[i]) + (i == word + 1 ? hi : 0u) + carry;
      words_[i] = static_cast<std::uint64_t>(s);
      carry = static_cast<unsigned>(s >> 64);
    }
  } else {
    const std::uint64_t before = words_[word];
    words_[word] = before - lo;
    std::uint64_t borrow = before < lo ? 1u : 0u;
    for (std::size_t i = word + 1; (borrow || (i == word + 1 && hi)) && i < words_.size(); ++i) {
      const u128 sub_amount = static_cast<u128>(i == word + 1 ? hi : 0u) + borrow;
      const u128 w = words_[i];
      words_[i] = static_cast<std::uint64_t>(w - sub_amount);
      borrow = w < sub_amount ? 1u : 0u;
    }
  }
}

void Quire::add_product(const Unpacked& a, const Unpacked& b) {
  if ((a.flags | b.flags) != 0) {  // zero or NaR operand: no deposit
    if (a.is_nar() || b.is_nar()) nar_ = true;
    return;
  }
  const std::uint64_t product = static_cast<std::uint64_t>(a.sig) * b.sig;
  add_shifted64(product, static_cast<long>(a.lsb_weight) + b.lsb_weight, a.neg != b.neg);
}

void Quire::fold_limbs(std::uint64_t* limbs, bool negative) {
  const std::size_t nlimbs = words_.size() * 2 + 2;
  // Carry-propagate the 32-bit payloads; spill past the register width drops
  // out, matching the mod-2^width wraparound of sequential deposits.
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < nlimbs; ++i) {
    const u128 t = static_cast<u128>(limbs[i]) + carry;
    limbs[i] = static_cast<std::uint64_t>(t) & 0xFFFFFFFFu;
    carry = static_cast<std::uint64_t>(t >> 32);
  }
  if (!negative) {
    unsigned c = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      const std::uint64_t v = limbs[2 * w] | (limbs[2 * w + 1] << 32);
      const u128 s = static_cast<u128>(words_[w]) + v + c;
      words_[w] = static_cast<std::uint64_t>(s);
      c = static_cast<unsigned>(s >> 64);
    }
  } else {
    std::uint64_t borrow = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      const u128 sub_amount =
          static_cast<u128>(limbs[2 * w] | (limbs[2 * w + 1] << 32)) + borrow;
      const u128 before = words_[w];
      words_[w] = static_cast<std::uint64_t>(before - sub_amount);
      borrow = before < sub_amount ? 1u : 0u;
    }
  }
}

void Quire::accumulate_dot(const Unpacked* a, const Unpacked* b, std::size_t count) {
  const std::size_t nlimbs = words_.size() * 2 + 2;
  const std::size_t bank_stride = nlimbs + 2;  // +2 spill slack per bank
  // Bank layout: [pos0 | neg0 | pos1 | neg1]. The scalar loop (and the SIMD
  // group's even terms) deposit into bank 0 of each sign stream; the SIMD
  // group's odd terms go bank1_offset limbs further.
  std::uint64_t* pos_limbs = limbs_.data();
  std::uint64_t* neg_limbs = limbs_.data() + bank_stride;
  const std::size_t bank1_offset = bank_stride * 2;
  std::fill(limbs_.begin(), limbs_.end(), 0u);
  const long base = frac_bits_;
  bool nar = false;
  std::size_t i = 0;
  bool used_bank1 = false;
  if (simd::enabled()) {
    // Groups of 8 terms deposit vectorized; limb adds are exact, so the
    // grouping cannot change the folded register state. Scalar tail below.
    std::uint32_t flags = 0;
    i = simd::accumulate_limbs_avx2(a, b, count, base, pos_limbs, neg_limbs, bank1_offset, &flags);
    if ((flags & Unpacked::kNarFlag) != 0) nar = true;
    used_bank1 = i != 0;
  }
  for (; i < count; ++i) {
    const Unpacked ua = a[i];
    const Unpacked ub = b[i];
    // Zero operands fall through for free (sig == 0 deposits nothing); only
    // NaR needs the branch, and it never fires on real panels.
    if (((ua.flags | ub.flags) & Unpacked::kNarFlag) != 0) {
      nar = true;
      continue;
    }
    const std::uint64_t product = static_cast<std::uint64_t>(ua.sig) * ub.sig;  // <= 60 bits
    const auto pos = static_cast<std::size_t>(base + ua.lsb_weight + ub.lsb_weight);
    const std::size_t idx = pos >> 5;
    const std::uint32_t sh = pos & 31;
    std::uint64_t* dst = (ua.neg ^ ub.neg) != 0 ? neg_limbs : pos_limbs;
    // Three 32-bit chunks of product << sh, in plain 64-bit ops. The last
    // chunk's shift stays defined at sh == 0 by splitting it in two.
    dst[idx] += (product << sh) & 0xFFFFFFFFu;
    dst[idx + 1] += (product >> (32 - sh)) & 0xFFFFFFFFu;
    dst[idx + 2] += (product >> 1) >> (63 - sh);
  }
  if (nar) nar_ = true;
  fold_limbs(pos_limbs, false);
  fold_limbs(neg_limbs, true);
  if (used_bank1) {
    fold_limbs(pos_limbs + bank1_offset, false);
    fold_limbs(neg_limbs + bank1_offset, true);
  }
}

void Quire::sub_product(std::uint32_t a, std::uint32_t b) { add_product(a, neg(b, spec_)); }

void Quire::add_posit(std::uint32_t a) {
  const Decoded da = decode(a, spec_);
  if (da.is_nar) {
    nar_ = true;
    return;
  }
  if (da.is_zero) return;
  add_shifted(da.sig, static_cast<long>(da.scale) - 62, da.neg);
}

std::uint32_t Quire::to_posit(RoundMode mode, RoundingRng* rng) const {
  if (nar_) return spec_.nar_code();
  // Determine sign from the top word (two's complement).
  const bool negative = (words_.back() >> 63) != 0;
  std::vector<std::uint64_t>& mag = mag_scratch_;  // per-output hot path: no allocation
  mag = words_;
  if (negative) {
    unsigned carry = 1;
    for (auto& w : mag) {
      const u128 s = static_cast<u128>(~w) + carry;
      w = static_cast<std::uint64_t>(s);
      carry = static_cast<unsigned>(s >> 64);
    }
  }
  // Find the most significant set bit.
  int top_word = static_cast<int>(mag.size()) - 1;
  while (top_word >= 0 && mag[static_cast<std::size_t>(top_word)] == 0) --top_word;
  if (top_word < 0) return 0u;
  int top_bit = 63;
  while (((mag[static_cast<std::size_t>(top_word)] >> top_bit) & 1) == 0) --top_bit;
  const long msb_pos = static_cast<long>(top_word) * 64 + top_bit;

  // Extract up to 64 significand bits below (and including) the MSB; the rest
  // is sticky.
  std::uint64_t sig = 0;
  bool sticky = false;
  const long lo_pos = msb_pos - 63;  // significand occupies [lo_pos, msb_pos]
  for (long p = 0; p < lo_pos; p += 64) {
    const std::size_t w = static_cast<std::size_t>(p / 64);
    const int upto = static_cast<int>(lo_pos - p < 64 ? lo_pos - p : 64);
    const std::uint64_t mask = upto >= 64 ? ~0ULL : ((1ULL << upto) - 1);
    if (mag[w] & mask) {
      sticky = true;
      break;
    }
  }
  if (lo_pos >= 0) {
    const std::size_t w = static_cast<std::size_t>(lo_pos / 64);
    const int off = static_cast<int>(lo_pos % 64);
    sig = mag[w] >> off;
    if (off != 0 && w + 1 < mag.size()) sig |= mag[w + 1] << (64 - off);
  } else {
    sig = mag[0] << (-lo_pos);
  }
  // sig now has its MSB (the hidden bit) at position 63.
  const long scale = msb_pos - frac_bits_;
  return round_pack(spec_, negative, scale, sig, 63, sticky, mode, rng);
}

double Quire::to_double() const {
  if (nar_) return std::numeric_limits<double>::quiet_NaN();
  const bool negative = (words_.back() >> 63) != 0;
  std::vector<std::uint64_t>& mag = mag_scratch_;
  mag = words_;
  if (negative) {
    unsigned carry = 1;
    for (auto& w : mag) {
      const u128 s = static_cast<u128>(~w) + carry;
      w = static_cast<std::uint64_t>(s);
      carry = static_cast<unsigned>(s >> 64);
    }
  }
  double acc = 0.0;
  for (int i = static_cast<int>(mag.size()) - 1; i >= 0; --i) {
    acc = acc * 18446744073709551616.0 + static_cast<double>(mag[static_cast<std::size_t>(i)]);
  }
  acc = std::ldexp(acc, static_cast<int>(-frac_bits_));
  return negative ? -acc : acc;
}

}  // namespace pdnn::posit
