#include "posit/codec.hpp"

#include <cmath>
#include <cstring>
#include <limits>

namespace pdnn::posit {

double PositSpec::useed() const { return std::ldexp(1.0, 1 << es); }

namespace {

/// Floor division by a power of two (arithmetic shift semantics for negatives).
inline long floor_div_pow2(long value, int log2_div) {
  return value >> log2_div;  // arithmetic shift: floor for negative values
}

}  // namespace

Decoded decode(std::uint32_t code, const PositSpec& spec) {
  Decoded d;
  code &= spec.mask();
  if (code == 0) {
    d.is_zero = true;
    return d;
  }
  if (code == spec.nar_code()) {
    d.is_nar = true;
    return d;
  }
  d.neg = (code & spec.sign_bit()) != 0;
  std::uint32_t mag = d.neg ? ((~code + 1u) & spec.mask()) : code;

  const int body_bits = spec.n - 1;  // bits below the sign bit
  const std::uint32_t body = mag & (spec.sign_bit() - 1u);

  // Parse the regime: a run of identical bits starting at the MSB of the body,
  // terminated by the opposite bit (or by the end of the word).
  const int first = (body >> (body_bits - 1)) & 1u;
  int run = 0;
  int pos = body_bits - 1;
  while (pos >= 0 && (((body >> pos) & 1u) == static_cast<std::uint32_t>(first))) {
    ++run;
    --pos;
  }
  // pos now indexes the terminating bit (or -1 if the run hit the end).
  d.k = first ? (run - 1) : -run;
  if (pos >= 0) --pos;  // skip the terminating bit

  // Exponent field: up to es bits. When fewer remain, the stored bits are the
  // HIGH bits of the exponent; missing low bits read as zero.
  const int remaining_after_regime = pos + 1;
  const int e_stored = remaining_after_regime < spec.es ? remaining_after_regime : spec.es;
  std::uint32_t e_bits = 0;
  if (e_stored > 0) {
    e_bits = (body >> (remaining_after_regime - e_stored)) & ((1u << e_stored) - 1u);
  }
  d.e = static_cast<int>(e_bits) << (spec.es - e_stored);

  // Fraction field: whatever is left.
  d.frac_width = remaining_after_regime - e_stored;
  d.frac = d.frac_width > 0 ? (body & ((1u << d.frac_width) - 1u)) : 0u;

  // k can be negative: scale by multiplication, not <<, which is UB on
  // negative operands.
  d.scale = d.k * (1 << spec.es) + d.e;
  // Significand with hidden bit at 62: (1 << fw | frac) << (62 - fw).
  d.sig = ((1ULL << d.frac_width) | static_cast<std::uint64_t>(d.frac)) << (62 - d.frac_width);
  return d;
}

std::uint32_t round_pack(const PositSpec& spec, bool neg, long scale, unsigned __int128 sig, int sig_bits,
                         bool sticky, RoundMode mode, RoundingRng* rng) {
  const int n = spec.n;
  const int es = spec.es;
  const std::uint32_t body_max = spec.sign_bit() - 1u;  // maxpos body (n-1 ones)

  auto finish = [&](std::uint32_t body) -> std::uint32_t {
    std::uint32_t code = body;  // sign bit is zero for the magnitude
    if (neg) code = (~code + 1u) & spec.mask();
    return code;
  };

  // Pre-reduce the significand to at most 62 fraction bits so the assembled
  // bit string fits comfortably in 128 bits (regime <= 31, es <= 6).
  if (sig_bits > 62) {
    const int drop = sig_bits - 62;
    const unsigned __int128 dropped = sig & ((static_cast<unsigned __int128>(1) << drop) - 1);
    if (dropped != 0) sticky = true;
    sig >>= drop;
    sig_bits = 62;
  }

  long k = floor_div_pow2(scale, es);
  const long e = scale - k * (1L << es);  // 0 <= e < 2^es (k may be negative: no <<)

  // Regime saturation. k == n-2 is representable only as maxpos itself.
  if (k >= spec.max_k()) return finish(body_max);
  if (k < spec.min_k()) return finish(spec.minpos_code());

  const int rb = k >= 0 ? static_cast<int>(k) + 2 : static_cast<int>(1 - k);
  const int target = n - 1;

  // Fast path (the engine's encode hot loop): when the regime and full
  // exponent field fit the body, only fraction bits are ever discarded, so
  // the whole assembly/round runs in 64-bit arithmetic. Discarded bits are
  // the low `shift` bits of `sig` (the hidden bit sits above them), making
  // guard/sticky direct masks — bit-identical to the 128-bit composition
  // below, which remains for truncated-exponent codes (rb + es > target).
  const int body_frac_bits = target - rb - es;
  if (body_frac_bits >= 0) {
    const auto sig64 = static_cast<std::uint64_t>(sig);  // sig_bits <= 62
    const std::uint64_t hi =
        ((k >= 0 ? ((1ULL << (k + 2)) - 2) : 1ULL) << es) | static_cast<std::uint64_t>(e);
    std::uint32_t body;
    if (sig_bits <= body_frac_bits) {
      const std::uint64_t frac_all = sig64 & ((1ULL << sig_bits) - 1);
      body = static_cast<std::uint32_t>(((hi << sig_bits) | frac_all) << (body_frac_bits - sig_bits));
      // No discarded bits inside the word; `sticky` alone never rounds up.
    } else {
      const int shift = sig_bits - body_frac_bits;
      const std::uint64_t discarded = sig64 & ((1ULL << shift) - 1);
      body = static_cast<std::uint32_t>((hi << body_frac_bits) | ((sig64 & ((1ULL << sig_bits) - 1)) >> shift));
      const bool guard = ((discarded >> (shift - 1)) & 1) != 0;
      const bool low_sticky = (discarded & ((1ULL << (shift - 1)) - 1)) != 0 || sticky;
      bool round_up = false;
      switch (mode) {
        case RoundMode::kNearestEven:
          round_up = guard && (low_sticky || (body & 1u));
          break;
        case RoundMode::kTowardZero:
          round_up = false;
          break;
        case RoundMode::kStochastic: {
          const int cmp_bits = shift > 63 ? 63 : shift;
          const std::uint64_t disc =
              (discarded >> (shift - cmp_bits)) + (sticky ? 1u : 0u);
          const std::uint64_t rnd = rng != nullptr ? (rng->next() >> (64 - cmp_bits)) : 0u;
          round_up = rnd < disc;
          break;
        }
      }
      if (round_up) {
        ++body;
        if (body > body_max) body = body_max;  // never round into NaR
      }
      if (body == 0) body = spec.minpos_code();  // never round a non-zero value to zero
    }
    return finish(body);
  }

  const unsigned __int128 regime_pattern =
      k >= 0 ? ((static_cast<unsigned __int128>(1) << (k + 2)) - 2)  // k+1 ones then a zero
             : static_cast<unsigned __int128>(1);                    // -k zeros then a one

  const unsigned __int128 frac_field = sig & ((static_cast<unsigned __int128>(1) << sig_bits) - 1);
  unsigned __int128 v = (regime_pattern << (es + sig_bits)) | (static_cast<unsigned __int128>(e) << sig_bits) |
                        frac_field;
  const int width = rb + es + sig_bits;

  std::uint32_t body;
  if (width <= target) {
    body = static_cast<std::uint32_t>(v << (target - width));
    // No discarded bits inside the word; `sticky` alone can never round up
    // under nearest (guard bit is zero) and never under toward-zero.
    if (mode == RoundMode::kStochastic && sticky && rng != nullptr) {
      // The true value sits an infinitesimal above the code; rounding up with
      // vanishing probability is approximated by never rounding up.
    }
  } else {
    const int shift = width - target;
    const unsigned __int128 discarded = v & ((static_cast<unsigned __int128>(1) << shift) - 1);
    body = static_cast<std::uint32_t>(v >> shift);
    const bool guard = ((discarded >> (shift - 1)) & 1) != 0;
    const bool low_sticky = (discarded & ((static_cast<unsigned __int128>(1) << (shift - 1)) - 1)) != 0 || sticky;

    bool round_up = false;
    switch (mode) {
      case RoundMode::kNearestEven:
        round_up = guard && (low_sticky || (body & 1u));
        break;
      case RoundMode::kTowardZero:
        round_up = false;
        break;
      case RoundMode::kStochastic: {
        // Round up with probability discarded / 2^shift (sticky adds an
        // epsilon which we fold in as +1 on the discarded value).
        const int cmp_bits = shift > 63 ? 63 : shift;
        const std::uint64_t disc = static_cast<std::uint64_t>(discarded >> (shift - cmp_bits)) +
                                   (sticky ? 1u : 0u);
        const std::uint64_t rnd = rng != nullptr ? (rng->next() >> (64 - cmp_bits)) : 0u;
        round_up = rnd < disc;
        break;
      }
    }
    if (round_up) {
      ++body;
      if (body > body_max) body = body_max;  // never round into NaR
    }
    if (body == 0) body = spec.minpos_code();  // never round a non-zero value to zero
  }
  return finish(body);
}

std::uint32_t from_double(double x, const PositSpec& spec, RoundMode mode, RoundingRng* rng) {
  // Direct IEEE-754 field extraction (no libm): this sits on the encode hot
  // path of the posit inference engine, where frexp/ldexp calls dominated.
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  const std::uint64_t mant = bits & ((1ULL << 52) - 1);
  const int biased = static_cast<int>((bits >> 52) & 0x7FF);
  if (biased == 0x7FF) return spec.nar_code();    // NaN or +/-Inf
  if (biased == 0 && mant == 0) return 0u;        // +/-0
  const bool neg = (bits >> 63) != 0;
  std::uint64_t sig;
  long scale;
  if (biased != 0) {
    // Normal: |x| = 1.mant * 2^(biased-1023); hidden bit lands at 62.
    sig = ((1ULL << 52) | mant) << 10;
    scale = biased - 1023;
  } else {
    // Subnormal: |x| = mant * 2^-1074; normalize the leading bit to 62.
    const int msb = 63 - __builtin_clzll(mant);
    sig = mant << (62 - msb);
    scale = msb - 1074;
  }
  return round_pack(spec, neg, scale, sig, 62, false, mode, rng);
}

double to_double(std::uint32_t code, const PositSpec& spec) {
  const Decoded d = decode(code, spec);
  if (d.is_zero) return 0.0;
  if (d.is_nar) return std::numeric_limits<double>::quiet_NaN();
  const double mag = std::ldexp(static_cast<double>(d.sig), d.scale - 62);
  return d.neg ? -mag : mag;
}

double maxpos_value(const PositSpec& spec) { return std::ldexp(1.0, spec.max_scale()); }

double minpos_value(const PositSpec& spec) { return std::ldexp(1.0, spec.min_scale()); }

std::int32_t sign_extend(std::uint32_t code, const PositSpec& spec) {
  code &= spec.mask();
  if (code & spec.sign_bit()) code |= ~spec.mask();
  return static_cast<std::int32_t>(code);
}

}  // namespace pdnn::posit
