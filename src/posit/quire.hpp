// quire.hpp — exact dot-product accumulator for posits.
//
// The quire is a wide fixed-point two's-complement register that can
// accumulate any number (up to ~2^63) of exact posit products without
// rounding; a single rounding happens when the value is read back as a posit.
// Deep Positron's EMAC (exact multiply-and-accumulate), referenced by the
// paper, is this structure; the paper's own MAC instead converts to FP and
// uses a conventional FP accumulator (see src/hw/posit_mac.*). Having both
// lets the benches compare accumulation strategies.
#pragma once

#include <cstdint>
#include <vector>

#include "posit/arith.hpp"
#include "posit/unpacked.hpp"

namespace pdnn::posit {

/// Not thread-safe, including the const readers: to_posit()/to_double() use
/// an internal magnitude scratch buffer (they run once per dot product on
/// the engine's hot path, where a heap allocation per call dominated). Use
/// one Quire per thread, as the engine's OpenMP regions do.
class Quire {
 public:
  /// Builds a quire sized for `spec`: enough integer bits for
  /// sum of 2^guard_bits maxpos^2 terms and enough fraction bits to hold
  /// minpos^2 exactly.
  explicit Quire(const PositSpec& spec, int guard_bits = 30);

  /// Resets the accumulator to zero (and clears the NaR flag).
  void clear();

  /// Accumulates the exact product a*b (posit codes in this quire's spec).
  void add_product(std::uint32_t a, std::uint32_t b);
  /// Decode-once overload: operands already unpacked (unpacked.hpp). Deposits
  /// exactly the value the coded overload would, so the quire state — and
  /// every later rounding — is bit-identical. Reduced significands keep the
  /// product in 64 bits, touching at most two register words per term.
  void add_product(const Unpacked& a, const Unpacked& b);

  /// Accumulates sum_i a[i]*b[i] exactly — the engine's dot-product hot
  /// path. Equivalent to `count` add_product(a[i], b[i]) calls (the final
  /// register state is bit-identical: both compute the same exact value mod
  /// 2^width), but batched: products are scattered branch-free into 32-bit
  /// carry-save limbs (positive and negative streams separate, so no borrow
  /// chains) and folded into the canonical two's-complement register once at
  /// the end.
  void accumulate_dot(const Unpacked* a, const Unpacked* b, std::size_t count);
  /// Accumulates -a*b exactly.
  void sub_product(std::uint32_t a, std::uint32_t b);
  /// Accumulates the posit value a exactly.
  void add_posit(std::uint32_t a);

  /// Rounds the accumulated value to a posit code (nearest-even by default).
  std::uint32_t to_posit(RoundMode mode = RoundMode::kNearestEven, RoundingRng* rng = nullptr) const;

  /// Exact conversion to double (may round if the value needs > 53 bits).
  double to_double() const;

  bool is_nar() const { return nar_; }
  bool is_zero() const;
  const PositSpec& spec() const { return spec_; }
  /// Total width in bits of the fixed-point register.
  int width_bits() const { return static_cast<int>(words_.size()) * 64; }

 private:
  void add_shifted(unsigned __int128 sig, long lsb_weight, bool negative);
  /// Fast two-word deposit for significands that fit 64 bits (the unpacked
  /// hot path); same exact addition as add_shifted.
  void add_shifted64(std::uint64_t sig, long lsb_weight, bool negative);
  /// Carry-propagates `limbs` (32-bit payloads at 32-bit stride) and adds or
  /// subtracts the resulting value into the register (mod 2^width).
  void fold_limbs(std::uint64_t* limbs, bool negative);

  PositSpec spec_;
  long frac_bits_;                   ///< weight of bit 0 is 2^(-frac_bits_)
  std::vector<std::uint64_t> words_; ///< little-endian two's-complement
  std::vector<std::uint64_t> limbs_; ///< accumulate_dot scratch: [pos | neg]
  mutable std::vector<std::uint64_t> mag_scratch_;  ///< to_posit/to_double magnitude buffer
  bool nar_ = false;
};

}  // namespace pdnn::posit
