// packed.hpp — bit-packed posit storage.
//
// Section IV of the paper: "By using 8 bits or 16 bits posit number for
// training, the model size can be reduced to 25% or 50%" of FP32. Two layers
// live here:
//
//   * pack_codes / unpack_codes — the block codec primitive: n-bit posit
//     codes packed edge to edge (LSB-first within each byte, no padding
//     between codes), random-access decodable from any code index. This is
//     the storage layout behind the engine's compressed weight panels
//     (quant::EncodedTensor): a posit(8,·) panel costs 1 byte per value
//     where the decode-once layout spent 12. Access goes through unaligned
//     64-bit windows, so every packed buffer must reserve kPackedSlackBytes
//     of tail slack (packed_capacity() accounts for it).
//   * PackedPositTensor — the model-size claim as an artifact: a whole float
//     tensor quantized and packed, round-trippable to float32.
#pragma once

#include <cstdint>
#include <vector>

#include "posit/codec.hpp"
#include "tensor/tensor.hpp"

namespace pdnn::posit {

/// Tail slack every packed buffer must carry so the 64-bit window reads of
/// unpack_codes()/unpack_one() stay in bounds at the last code.
constexpr std::size_t kPackedSlackBytes = 8;

/// Payload bytes of `count` packed n-bit codes (the model-size number).
constexpr std::size_t packed_bytes(std::size_t count, const PositSpec& spec) {
  return (count * static_cast<std::size_t>(spec.n) + 7) / 8;
}

/// Allocation size for a packed buffer of `count` codes (payload + slack).
constexpr std::size_t packed_capacity(std::size_t count, const PositSpec& spec) {
  return packed_bytes(count, spec) + kPackedSlackBytes;
}

/// Pack `count` codes (low n bits each) into `out`, starting at code index
/// `first` of the stream. `out` must hold packed_capacity() bytes for the
/// whole stream and be zeroed over the bits being written (pack_codes ORs
/// into place so adjacent ranges can share boundary bytes).
void pack_codes(const std::uint32_t* codes, std::size_t first, std::size_t count,
                const PositSpec& spec, std::uint8_t* out);

/// Unpack codes [first, first+count) of a packed stream into `out`.
/// Bit-exact inverse of pack_codes for every spec and any ragged range.
void unpack_codes(const std::uint8_t* packed, std::size_t first, std::size_t count,
                  const PositSpec& spec, std::uint32_t* out);

/// Random access to one code of a packed stream.
inline std::uint32_t unpack_one(const std::uint8_t* packed, std::size_t index,
                                const PositSpec& spec) {
  const std::size_t bit = index * static_cast<std::size_t>(spec.n);
  std::uint64_t window;
  __builtin_memcpy(&window, packed + (bit >> 3), sizeof(window));
  return static_cast<std::uint32_t>(window >> (bit & 7)) & spec.mask();
}

class PackedPositTensor {
 public:
  PackedPositTensor(PositSpec spec, tensor::Shape shape)
      : spec_(spec), shape_(shape), bits_(packed_capacity(shape.numel(), spec), 0) {
    spec_.validate();
  }

  /// Quantize (round mode of your choice; the paper's storage uses the same
  /// round-toward-zero as Algorithm 1) and pack a float tensor.
  static PackedPositTensor pack(const tensor::Tensor& t, PositSpec spec,
                                RoundMode mode = RoundMode::kTowardZero);

  /// Decode back to float32.
  tensor::Tensor unpack() const;

  std::uint32_t code_at(std::size_t index) const { return unpack_one(bits_.data(), index, spec_); }
  void set_code(std::size_t index, std::uint32_t code);

  const PositSpec& spec() const { return spec_; }
  const tensor::Shape& shape() const { return shape_; }
  std::size_t numel() const { return shape_.numel(); }
  /// Bytes of payload storage (the model-size number; slack excluded).
  std::size_t byte_size() const { return packed_bytes(numel(), spec_); }
  /// Storage ratio vs float32.
  double ratio_vs_fp32() const {
    return static_cast<double>(byte_size()) / (static_cast<double>(numel()) * sizeof(float));
  }

 private:
  PositSpec spec_;
  tensor::Shape shape_;
  std::vector<std::uint8_t> bits_;
};

}  // namespace pdnn::posit
