// packed.hpp — bit-packed posit storage.
//
// Section IV of the paper: "By using 8 bits or 16 bits posit number for
// training, the model size can be reduced to 25% or 50%" of FP32. This class
// is that claim as an artifact: n-bit posit codes packed edge to edge with no
// padding, round-trippable to float tensors.
#pragma once

#include <cstdint>
#include <vector>

#include "posit/codec.hpp"
#include "tensor/tensor.hpp"

namespace pdnn::posit {

class PackedPositTensor {
 public:
  PackedPositTensor(PositSpec spec, tensor::Shape shape)
      : spec_(spec), shape_(shape), bits_((shape.numel() * static_cast<std::size_t>(spec.n) + 7) / 8, 0) {
    spec_.validate();
  }

  /// Quantize (round mode of your choice; the paper's storage uses the same
  /// round-toward-zero as Algorithm 1) and pack a float tensor.
  static PackedPositTensor pack(const tensor::Tensor& t, PositSpec spec,
                                RoundMode mode = RoundMode::kTowardZero);

  /// Decode back to float32.
  tensor::Tensor unpack() const;

  std::uint32_t code_at(std::size_t index) const;
  void set_code(std::size_t index, std::uint32_t code);

  const PositSpec& spec() const { return spec_; }
  const tensor::Shape& shape() const { return shape_; }
  std::size_t numel() const { return shape_.numel(); }
  /// Bytes of payload storage (the model-size number).
  std::size_t byte_size() const { return bits_.size(); }
  /// Storage ratio vs float32.
  double ratio_vs_fp32() const {
    return static_cast<double>(byte_size()) / (static_cast<double>(numel()) * sizeof(float));
  }

 private:
  PositSpec spec_;
  tensor::Shape shape_;
  std::vector<std::uint8_t> bits_;
};

}  // namespace pdnn::posit
