#include "tensor/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pdnn::tensor {

Moments moments(const Tensor& t) {
  Moments m;
  m.count = t.numel();
  if (m.count == 0) return m;
  double sum = 0.0, sum_sq = 0.0;
  m.min = std::numeric_limits<double>::infinity();
  m.max = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const double v = t[i];
    sum += v;
    sum_sq += v * v;
    m.min = std::min(m.min, v);
    m.max = std::max(m.max, v);
  }
  m.mean = sum / static_cast<double>(m.count);
  const double var = std::max(0.0, sum_sq / static_cast<double>(m.count) - m.mean * m.mean);
  m.stddev = std::sqrt(var);
  return m;
}

namespace {

/// Fast log2|x| for the Eq. (2) statistic: exponent via frexp plus a
/// quadratic approximation of log2 on the mantissa. Exact at powers of two,
/// max error ~0.01 — far below the integer rounding Eq. (2) applies, and this
/// statistic is recomputed for every tensor of every batch in training.
inline double fast_log2_abs(float v) {
  int e = 0;
  const float m = std::frexp(std::fabs(v), &e);  // m in [0.5, 1)
  const double u = 2.0 * m - 1.0;                // in [0, 1)
  return (e - 1) + u * (4.0 / 3.0 - u / 3.0);
}

}  // namespace

double log2_mean(const Tensor& t) {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    if (t[i] != 0.0f) {
      sum += fast_log2_abs(t[i]);
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

int log2_center(const Tensor& t) {
  return static_cast<int>(std::lround(log2_mean(t)));
}

double log2_range(const Tensor& t) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const double v = std::fabs(t[i]);
    if (v > 0.0) {
      const double l = std::log2(v);
      lo = std::min(lo, l);
      hi = std::max(hi, l);
    }
  }
  return hi < lo ? 0.0 : hi - lo;
}

namespace {

Histogram build_histogram(double lo, double hi, std::size_t bins) {
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  return h;
}

void insert(Histogram& h, double v) {
  if (v < h.lo) {
    ++h.underflow;
  } else if (v >= h.hi) {
    ++h.overflow;
  } else {
    const auto bin = static_cast<std::size_t>((v - h.lo) / h.bin_width());
    ++h.counts[std::min(bin, h.counts.size() - 1)];
  }
}

}  // namespace

Histogram histogram(const Tensor& t, double lo, double hi, std::size_t bins) {
  Histogram h = build_histogram(lo, hi, bins);
  for (std::size_t i = 0; i < t.numel(); ++i) insert(h, t[i]);
  return h;
}

Histogram log2_histogram(const Tensor& t, double lo, double hi, std::size_t bins) {
  Histogram h = build_histogram(lo, hi, bins);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const double v = std::fabs(t[i]);
    if (v > 0.0) insert(h, std::log2(v));
  }
  return h;
}

std::string render_histogram(const Histogram& h, std::size_t bar_width) {
  const std::size_t peak = h.counts.empty() ? 0 : *std::max_element(h.counts.begin(), h.counts.end());
  std::string out;
  char label[64];
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const double left = h.lo + static_cast<double>(i) * h.bin_width();
    std::snprintf(label, sizeof(label), "%9.3f | ", left);
    out += label;
    const std::size_t bar =
        peak == 0 ? 0 : (h.counts[i] * bar_width + peak / 2) / peak;
    out.append(bar, '#');
    out += "  " + std::to_string(h.counts[i]) + "\n";
  }
  return out;
}

}  // namespace pdnn::tensor
