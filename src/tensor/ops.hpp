// ops.hpp — dense kernels: matmul, im2col convolution, pooling, softmax.
//
// Layouts follow the usual deep-learning conventions: activations are NCHW,
// convolution weights are OIHW, matrices are row-major [rows, cols].
#pragma once

#include "tensor/tensor.hpp"

namespace pdnn::tensor {

/// C[m,n] = A[m,k] * B[k,n] via the cache-blocked micro-kernel GEMM
/// (gemm_kernel.hpp); bit-identical to the naive i-k-j loop.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C[m,n] += A[m,k] * B[k,n] without reallocating C. Throws
/// std::invalid_argument unless all three operands are rank-2 with
/// compatible shapes.
void matmul_acc(const Tensor& a, const Tensor& b, Tensor& c);

/// B[n,m] = A[m,n]^T.
Tensor transpose(const Tensor& a);

/// Gather `count` equally-shaped sample tensors into one batch along a new
/// leading axis: out[i, ...] = *samples[i]. Rank-4 (NCHW) samples are
/// already batched, so they concatenate along axis 0 instead
/// ({count * n, c, h, w}) — Shape holds at most four dims. Reuses out's
/// storage (grow-only via Tensor::resize), so a serving loop that stacks
/// batches of settled shapes allocates nothing. Throws
/// std::invalid_argument on shape mismatches between samples, rank-0
/// samples, or empty samples.
void stack_samples(const Tensor* const* samples, std::size_t count, Tensor& out);

/// Scatter the i-th sample of a batched tensor back out: out = batch[i, ...]
/// with the leading axis dropped. Reuses out's storage. Throws
/// std::invalid_argument when batch is rank 0 or i is out of range.
void extract_sample(const Tensor& batch, std::size_t i, Tensor& out);

/// Contiguous sub-batch keeping the rank: out = batch[lo : lo+count, ...] —
/// the micro-batch sharding primitive (train::Trainer slices each worker's
/// span of the global batch with it). count may be 0 (an empty span of the
/// batched shape). Reuses out's storage. Throws std::invalid_argument when
/// batch is rank 0 or [lo, lo+count) falls outside the leading axis.
void extract_span(const Tensor& batch, std::size_t lo, std::size_t count, Tensor& out);

/// out[n,m] = a[m,n]^T into caller-owned storage (no allocation).
void transpose_into(const float* a, std::size_t m, std::size_t n, float* out);

/// Geometry of a 2-d convolution / pooling window. `kernel` is the window
/// height; `kernel_w` is the width, with 0 (the default, so existing braced
/// initializers stay valid) meaning a square `kernel`×`kernel` window.
struct Conv2dGeom {
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t out_c = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t pad = 1;
  std::size_t kernel_w = 0;
  std::size_t kh() const { return kernel; }
  std::size_t kw() const { return kernel_w != 0 ? kernel_w : kernel; }
  std::size_t patch() const { return in_c * kh() * kw(); }
  std::size_t out_h() const { return (in_h + 2 * pad - kh()) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * pad - kw()) / stride + 1; }
  /// Throws std::invalid_argument on impossible geometry: zero stride/window/
  /// channels, or a window larger than the padded input (out_h/out_w would
  /// silently underflow size_t otherwise).
  void validate() const;
};

/// Unfold one image [C,H,W] into columns [C*KH*KW, out_h*out_w].
void im2col(const float* img, const Conv2dGeom& g, float* cols);
/// Fold columns back, accumulating overlaps (adjoint of im2col).
void col2im(const float* cols, const Conv2dGeom& g, float* img);

/// Forward convolution: input [N,C,H,W], weight [O,I,KH,KW] -> [N,O,H',W'].
Tensor conv2d_forward(const Tensor& input, const Tensor& weight, const Conv2dGeom& g);

/// Gradients of conv2d. `grad_out` is [N,O,H',W'].
/// Returns grad wrt input; accumulates weight gradient into `grad_weight`.
Tensor conv2d_backward(const Tensor& input, const Tensor& weight, const Tensor& grad_out,
                       const Conv2dGeom& g, Tensor& grad_weight);

/// 2x2 max pooling with stride 2. Records argmax indices for backward.
Tensor maxpool2x2_forward(const Tensor& input, std::vector<std::size_t>& argmax);
Tensor maxpool2x2_backward(const Tensor& grad_out, const std::vector<std::size_t>& argmax,
                           const Shape& input_shape);

/// Global average pool [N,C,H,W] -> [N,C].
Tensor global_avgpool_forward(const Tensor& input);
Tensor global_avgpool_backward(const Tensor& grad_out, const Shape& input_shape);

/// Row-wise softmax of logits [N, classes].
Tensor softmax(const Tensor& logits);

/// Mean cross-entropy of logits [N, classes] against integer labels;
/// also emits dLogits (already divided by N).
float cross_entropy(const Tensor& logits, const std::vector<int>& labels, Tensor* grad_logits);

/// Count of argmax(logits) == label.
std::size_t count_correct(const Tensor& logits, const std::vector<int>& labels);

}  // namespace pdnn::tensor
