// stats.hpp — distribution statistics used by the paper.
//
// Eq. (2) of the paper computes a layer-wise scaling factor from the center of
// the data distribution in log2 domain; Fig. 2 plots linear and log-domain
// histograms of weights over training. Both live here.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace pdnn::tensor {

struct Moments {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Mean / stddev / min / max over all elements.
Moments moments(const Tensor& t);

/// round(mean(log2|x|)) over non-zero elements — the `center` of Eq. (2).
/// Returns 0 when the tensor has no non-zero element.
int log2_center(const Tensor& t);

/// mean(log2|x|) over non-zero elements, unrounded (for diagnostics).
double log2_mean(const Tensor& t);

/// Difference max(log2|x|) - min(log2|x|) over non-zero elements: the
/// "distribution range in log domain" the paper uses to motivate per-kind es
/// (Section III-B, "Adjust Dynamic Range").
double log2_range(const Tensor& t);

struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;
  std::size_t underflow = 0;
  std::size_t overflow = 0;
  double bin_width() const { return (hi - lo) / static_cast<double>(counts.size()); }
};

/// Linear-domain histogram of element values in [lo, hi) with `bins` buckets.
Histogram histogram(const Tensor& t, double lo, double hi, std::size_t bins);

/// Histogram of log2|x| of non-zero elements.
Histogram log2_histogram(const Tensor& t, double lo, double hi, std::size_t bins);

/// ASCII rendering (one line per bucket with a proportional bar), for the
/// Fig. 2 reproduction bench.
std::string render_histogram(const Histogram& h, std::size_t bar_width = 50);

}  // namespace pdnn::tensor
