#include "tensor/gemm_kernel.hpp"

#include <algorithm>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PDNN_GEMM_X86 1
#endif

namespace pdnn::tensor {
namespace {

constexpr std::size_t MR = GemmBlocking::MR;
constexpr std::size_t NR = GemmBlocking::NR;
constexpr std::size_t MC = GemmBlocking::MC;
constexpr std::size_t KC = GemmBlocking::KC;
constexpr std::size_t NC = GemmBlocking::NC;

// ---------------------------------------------------------------------------
// Packing. Panels are zero-padded to full MR rows / NR columns so the
// micro-kernel never branches on ragged edges: padded lanes multiply zeros and
// land in accumulator slots that are simply not stored back.
// ---------------------------------------------------------------------------

void pack_a(const float* a, std::size_t lda, std::size_t mc, std::size_t kc, float* ap) {
  for (std::size_t ir = 0; ir < mc; ir += MR) {
    const std::size_t mr = std::min(MR, mc - ir);
    float* dst = ap + (ir / MR) * (kc * MR);
    for (std::size_t kk = 0; kk < kc; ++kk)
      for (std::size_t ii = 0; ii < MR; ++ii)
        dst[kk * MR + ii] = ii < mr ? a[(ir + ii) * lda + kk] : 0.0f;
  }
}

void pack_b(const float* b, std::size_t ldb, std::size_t kc, std::size_t nc, float* bp) {
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t nr = std::min(NR, nc - jr);
    float* dst = bp + (jr / NR) * (kc * NR);
    for (std::size_t kk = 0; kk < kc; ++kk)
      for (std::size_t jj = 0; jj < NR; ++jj)
        dst[kk * NR + jj] = jj < nr ? b[kk * ldb + jr + jj] : 0.0f;
  }
}

// ---------------------------------------------------------------------------
// Micro-kernels: C[8,8] += Apanel * Bpanel over one KC slice. Accumulators are
// loaded from C first and each product is added individually (no FMA, no
// reassociation), so per-element rounding matches the naive i-k-j loop.
// ---------------------------------------------------------------------------

void micro_8x8_scalar(std::size_t kc, const float* ap, const float* bp, float* c,
                      std::size_t ldc) {
  for (std::size_t i = 0; i < MR; ++i) {
    float acc[NR];
    for (std::size_t j = 0; j < NR; ++j) acc[j] = c[i * ldc + j];
    for (std::size_t kk = 0; kk < kc; ++kk) {
      const float aik = ap[kk * MR + i];
      const float* b = bp + kk * NR;
      for (std::size_t j = 0; j < NR; ++j) acc[j] += aik * b[j];
    }
    for (std::size_t j = 0; j < NR; ++j) c[i * ldc + j] = acc[j];
  }
}

#ifdef PDNN_GEMM_X86
// The target attribute lets this translation unit stay buildable with baseline
// x86-64 flags; gemm_kernel_vectorized() gates the call at runtime.
__attribute__((target("avx2"))) void micro_8x8_avx2(std::size_t kc, const float* ap,
                                                    const float* bp, float* c, std::size_t ldc) {
  __m256 c0 = _mm256_loadu_ps(c);
  __m256 c1 = _mm256_loadu_ps(c + ldc);
  __m256 c2 = _mm256_loadu_ps(c + 2 * ldc);
  __m256 c3 = _mm256_loadu_ps(c + 3 * ldc);
  __m256 c4 = _mm256_loadu_ps(c + 4 * ldc);
  __m256 c5 = _mm256_loadu_ps(c + 5 * ldc);
  __m256 c6 = _mm256_loadu_ps(c + 6 * ldc);
  __m256 c7 = _mm256_loadu_ps(c + 7 * ldc);
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const __m256 b = _mm256_loadu_ps(bp + kk * NR);
    const float* a = ap + kk * MR;
    c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_broadcast_ss(a + 0), b));
    c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_broadcast_ss(a + 1), b));
    c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_broadcast_ss(a + 2), b));
    c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_broadcast_ss(a + 3), b));
    c4 = _mm256_add_ps(c4, _mm256_mul_ps(_mm256_broadcast_ss(a + 4), b));
    c5 = _mm256_add_ps(c5, _mm256_mul_ps(_mm256_broadcast_ss(a + 5), b));
    c6 = _mm256_add_ps(c6, _mm256_mul_ps(_mm256_broadcast_ss(a + 6), b));
    c7 = _mm256_add_ps(c7, _mm256_mul_ps(_mm256_broadcast_ss(a + 7), b));
  }
  _mm256_storeu_ps(c, c0);
  _mm256_storeu_ps(c + ldc, c1);
  _mm256_storeu_ps(c + 2 * ldc, c2);
  _mm256_storeu_ps(c + 3 * ldc, c3);
  _mm256_storeu_ps(c + 4 * ldc, c4);
  _mm256_storeu_ps(c + 5 * ldc, c5);
  _mm256_storeu_ps(c + 6 * ldc, c6);
  _mm256_storeu_ps(c + 7 * ldc, c7);
}
#endif

using MicroFn = void (*)(std::size_t, const float*, const float*, float*, std::size_t);

MicroFn micro_kernel() {
  // Function-local static: resolved on first use, after libgcc's CPU-model
  // constructor has definitely run.
  static const MicroFn fn = [] {
#ifdef PDNN_GEMM_X86
    if (__builtin_cpu_supports("avx2")) return MicroFn{micro_8x8_avx2};
#endif
    return MicroFn{micro_8x8_scalar};
  }();
  return fn;
}

/// Fused tail over an mr×nr region of C: row bias, column bias, zero clamp —
/// per element exactly one add per set bias and one clamp, the same
/// expression order as the separate sweeps, so the fusion is bit-identical.
/// The clamp expression matches exec::relu_kernel (`v > 0 ? v : 0`). Bias
/// pointers are pre-offset to the region's first row/column; either may be
/// null (no `+ 0.0f` is ever applied — that would flip -0.0 to +0.0).
void apply_epilogue(float* c, std::size_t ldc, std::size_t mr, std::size_t nr, const float* rb,
                    const float* cb, bool relu) {
  for (std::size_t i = 0; i < mr; ++i) {
    float* row = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) {
      float v = row[j];
      if (rb != nullptr) v += rb[i];
      if (cb != nullptr) v += cb[j];
      if (relu) v = v > 0.0f ? v : 0.0f;
      row[j] = v;
    }
  }
}

/// One packed A block × one packed B block into C. Ragged micro-tiles round
/// trip through a full 8×8 scratch tile so the hot path stays branch-free.
/// `ep` is non-null only on the final KC slice: each C element's epilogue
/// runs once, right after its accumulation completes, while the tile is
/// still hot; bias pointers inside `ep` are pre-offset to this block.
void macro_kernel(std::size_t mc, std::size_t nc, std::size_t kc, const float* ap,
                  const float* bp, float* c, std::size_t ldc, const GemmEpilogue* ep) {
  const MicroFn micro = micro_kernel();
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t nr = std::min(NR, nc - jr);
    for (std::size_t ir = 0; ir < mc; ir += MR) {
      const std::size_t mr = std::min(MR, mc - ir);
      const float* apanel = ap + (ir / MR) * (kc * MR);
      const float* bpanel = bp + (jr / NR) * (kc * NR);
      float* ctile = c + ir * ldc + jr;
      if (mr == MR && nr == NR) {
        micro(kc, apanel, bpanel, ctile, ldc);
      } else {
        alignas(32) float tmp[MR * NR] = {};
        for (std::size_t i = 0; i < mr; ++i)
          for (std::size_t j = 0; j < nr; ++j) tmp[i * NR + j] = ctile[i * ldc + j];
        micro(kc, apanel, bpanel, tmp, NR);
        for (std::size_t i = 0; i < mr; ++i)
          for (std::size_t j = 0; j < nr; ++j) ctile[i * ldc + j] = tmp[i * NR + j];
      }
      if (ep != nullptr) {
        apply_epilogue(ctile, ldc, mr, nr,
                       ep->row_bias != nullptr ? ep->row_bias + ir : nullptr,
                       ep->col_bias != nullptr ? ep->col_bias + jr : nullptr, ep->relu);
      }
    }
  }
}

/// Per-thread pack scratch, reused across calls; conv's per-sample GEMMs
/// would otherwise malloc on every invocation. File-scope so
/// gemm_pack_bytes() can report the calling thread's footprint.
struct PackBuf {
  std::vector<float> buf;
  std::size_t slack_calls = 0;  // consecutive calls far below capacity
};
thread_local PackBuf tl_bp_buf;
thread_local PackBuf tl_ap_buf;

/// Shrink threshold: a long-lived worker that once saw a huge GEMM must not
/// hold that peak forever, so when the retained capacity stays both over the
/// floor and several times the current need for a sustained streak of calls,
/// the buffer is reallocated at the current need before reuse. The streak
/// requirement (kPackShrinkPatience) is hysteresis: workloads that alternate
/// large and small GEMMs within one step — a compiled backward pass
/// interleaves wide dW panels with narrow dX ones — reset the streak every
/// few calls and therefore never thrash realloc in steady state, while a
/// worker whose traffic turns small for good still releases the peak within
/// one patience window. Packing panels are fully (re)written on every use,
/// so resizing never changes a computed bit.
constexpr std::size_t kPackShrinkFactor = 4;
constexpr std::size_t kPackShrinkFloor = 1u << 14;  // 16 Ki floats = 64 KiB
constexpr std::size_t kPackShrinkPatience = 64;

float* scratch(PackBuf& pb, std::size_t need) {
  std::vector<float>& buf = pb.buf;
  if (buf.capacity() > kPackShrinkFloor && buf.capacity() / kPackShrinkFactor > need) {
    if (++pb.slack_calls >= kPackShrinkPatience) {
      std::vector<float>(need).swap(buf);
      pb.slack_calls = 0;
    }
  } else {
    pb.slack_calls = 0;
  }
  if (buf.size() < need) buf.resize(need);
  return buf.data();
}

}  // namespace

std::size_t gemm_pack_bytes() {
  return (tl_bp_buf.buf.capacity() + tl_ap_buf.buf.capacity()) * sizeof(float);
}

bool gemm_kernel_vectorized() { return micro_kernel() != micro_8x8_scalar; }

void gemm_blocked(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
                  const float* b, std::size_t ldb, float* c, std::size_t ldc) {
  gemm_blocked(m, n, k, a, lda, b, ldb, c, ldc, GemmEpilogue{});
}

void gemm_blocked(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
                  const float* b, std::size_t ldb, float* c, std::size_t ldc,
                  const GemmEpilogue& epilogue) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    // Degenerate reduction: C is the caller's pre-filled accumulator; the
    // epilogue still owes each element its bias/clamp pass.
    if (epilogue.active()) {
      apply_epilogue(c, ldc, m, n, epilogue.row_bias, epilogue.col_bias, epilogue.relu);
    }
    return;
  }
  float* bp = scratch(tl_bp_buf, KC * std::min(((n + NR - 1) / NR) * NR, NC));
  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = std::min(KC, k - pc);
      pack_b(b + pc * ldb + jc, ldb, kc, nc, bp);
      // The epilogue fires only on an element's FINAL KC slice — C is stored
      // and reloaded between slices, so an earlier application would fold
      // bias/clamp into a partial sum and break the accumulation order.
      const bool last_slice = pc + kc == k;
      const GemmEpilogue block_ep{
          epilogue.row_bias,  // row offset applied per MC block below
          epilogue.col_bias != nullptr ? epilogue.col_bias + jc : nullptr, epilogue.relu};
      const GemmEpilogue* ep = last_slice && epilogue.active() ? &block_ep : nullptr;
      // Rows of C are the parallel axis, as in the naive kernel: each thread
      // owns a contiguous range of MR-granular row panels and sweeps it in MC
      // blocks. Row grouping never changes a C element's accumulation order
      // (only the k split does), so any thread count is bit-identical — and
      // each thread applies the epilogue only to rows it owns.
#ifdef _OPENMP
      const bool parallel_rows = m > MR && m * n * k > 32768;
#endif
#pragma omp parallel if (parallel_rows)
      {
        std::size_t ir0 = 0, ir1 = m;
#ifdef _OPENMP
        const std::size_t panels = (m + MR - 1) / MR;
        const std::size_t nt = static_cast<std::size_t>(omp_get_num_threads());
        const std::size_t tid = static_cast<std::size_t>(omp_get_thread_num());
        const std::size_t per = (panels + nt - 1) / nt;
        ir0 = std::min(tid * per * MR, m);
        ir1 = std::min(ir0 + per * MR, m);
#endif
        float* ap = scratch(tl_ap_buf, MC * KC);
        for (std::size_t ic = ir0; ic < ir1; ic += MC) {
          const std::size_t mc = std::min(MC, ir1 - ic);
          pack_a(a + ic * lda + pc, lda, mc, kc, ap);
          GemmEpilogue row_ep;
          if (ep != nullptr) {
            row_ep = *ep;
            if (row_ep.row_bias != nullptr) row_ep.row_bias += ic;
          }
          macro_kernel(mc, nc, kc, ap, bp, c + ic * ldc + jc, ldc,
                       ep != nullptr ? &row_ep : nullptr);
        }
      }
    }
  }
}

}  // namespace pdnn::tensor
