#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "tensor/gemm_kernel.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace pdnn::tensor {

// Parallelization strategy: every `omp parallel for` below distributes
// *independent output slices* (matmul rows, im2col rows, conv batch samples,
// col2im channels) across threads, and each slice is computed in exactly the
// serial loop order. Results are therefore bit-identical to the serial path
// for any thread count — a property matmul_parallel_test locks in.

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c({a.shape()[0], b.shape()[1]});
  matmul_acc(a, b, c);
  return c;
}

void matmul_acc(const Tensor& a, const Tensor& b, Tensor& c) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2 || c.shape().rank() != 2) {
    throw std::invalid_argument("matmul: rank-2 operands required, got " + a.shape().to_string() +
                                " x " + b.shape().to_string() + " -> " + c.shape().to_string());
  }
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  if (b.shape()[0] != k) {
    throw std::invalid_argument("matmul: inner dimensions differ: A is " + a.shape().to_string() +
                                " (k = " + std::to_string(k) + ") but B is " +
                                b.shape().to_string() + " (k = " + std::to_string(b.shape()[0]) +
                                ")");
  }
  if (c.shape()[0] != m || c.shape()[1] != n) {
    throw std::invalid_argument("matmul: output must be [" + std::to_string(m) + "," +
                                std::to_string(n) + "] for " + a.shape().to_string() + " x " +
                                b.shape().to_string() + ", got " + c.shape().to_string());
  }
  // Cache-blocked packed GEMM (gemm_kernel.cpp): rows of C stay the parallel
  // axis and every element accumulates in ascending-k i-k-j order, so results
  // are bit-identical to the skip-free naive loop at any thread count. (The
  // PR-1 loop also skipped aik == 0.0f rows, which for zero×inf/NaN products
  // or -0.0 sums could differ; the blocked kernel never skips.)
  gemm_blocked(m, n, k, a.data(), k, b.data(), n, c.data(), n);
}

Tensor transpose(const Tensor& a) {
  const std::size_t m = a.shape()[0], n = a.shape()[1];
  Tensor t({n, m});
  transpose_into(a.data(), m, n, t.data());
  return t;
}

void transpose_into(const float* a, std::size_t m, std::size_t n, float* out) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) out[j * m + i] = a[i * n + j];
}

void stack_samples(const Tensor* const* samples, std::size_t count, Tensor& out) {
  if (count == 0) throw std::invalid_argument("stack_samples: empty batch");
  const Shape& s = samples[0]->shape();
  if (s.rank() == 0) {
    throw std::invalid_argument("stack_samples: rank-0 sample");
  }
  const std::size_t stride = s.numel();
  if (stride == 0) throw std::invalid_argument("stack_samples: empty sample");
  Shape batched;
  switch (s.rank()) {
    case 1: batched = {count, s[0]}; break;
    case 2: batched = {count, s[0], s[1]}; break;
    case 3: batched = {count, s[0], s[1], s[2]}; break;
    // Rank-4 samples are already batched NCHW — Shape holds at most four
    // dims, so stacking concatenates along axis 0 instead of adding one.
    default: batched = {count * s[0], s[1], s[2], s[3]}; break;
  }
  out.resize(batched);
  for (std::size_t i = 0; i < count; ++i) {
    if (samples[i]->shape() != s) {
      throw std::invalid_argument("stack_samples: sample " + std::to_string(i) + " shape " +
                                  samples[i]->shape().to_string() + " != " + s.to_string());
    }
    std::memcpy(out.data() + i * stride, samples[i]->data(), stride * sizeof(float));
  }
}

void extract_sample(const Tensor& batch, std::size_t i, Tensor& out) {
  const Shape& s = batch.shape();
  if (s.rank() == 0 || i >= s[0]) {
    throw std::invalid_argument("extract_sample: index " + std::to_string(i) +
                                " out of range for batch " + s.to_string());
  }
  Shape sample;
  switch (s.rank()) {
    case 1: sample = {1}; break;  // rank-1 batch: a sample is one scalar slot
    case 2: sample = {s[1]}; break;
    case 3: sample = {s[1], s[2]}; break;
    default: sample = {s[1], s[2], s[3]}; break;
  }
  const std::size_t stride = s.rank() == 1 ? 1 : sample.numel();
  out.resize(sample);
  std::memcpy(out.data(), batch.data() + i * stride, stride * sizeof(float));
}

void extract_span(const Tensor& batch, std::size_t lo, std::size_t count, Tensor& out) {
  const Shape& s = batch.shape();
  if (s.rank() == 0 || lo + count > s[0]) {
    throw std::invalid_argument("extract_span: [" + std::to_string(lo) + ", " +
                                std::to_string(lo + count) + ") out of range for batch " +
                                s.to_string());
  }
  Shape span;
  switch (s.rank()) {
    case 1: span = {count}; break;
    case 2: span = {count, s[1]}; break;
    case 3: span = {count, s[1], s[2]}; break;
    default: span = {count, s[1], s[2], s[3]}; break;
  }
  std::size_t stride = 1;
  for (std::size_t d = 1; d < s.rank(); ++d) stride *= s[d];
  out.resize(span);
  std::memcpy(out.data(), batch.data() + lo * stride, count * stride * sizeof(float));
}

void Conv2dGeom::validate() const {
  const auto fail = [this](const char* why) {
    throw std::invalid_argument(std::string("Conv2dGeom: ") + why + " (in " +
                                std::to_string(in_c) + "x" + std::to_string(in_h) + "x" +
                                std::to_string(in_w) + ", out_c " + std::to_string(out_c) +
                                ", kernel " + std::to_string(kh()) + "x" + std::to_string(kw()) +
                                ", stride " + std::to_string(stride) + ", pad " +
                                std::to_string(pad) + ")");
  };
  if (stride == 0) fail("stride must be >= 1");
  if (kh() == 0 || kw() == 0) fail("window must be >= 1x1");
  if (in_c == 0 || out_c == 0) fail("channel counts must be >= 1");
  if (in_h + 2 * pad < kh() || in_w + 2 * pad < kw()) {
    fail("window larger than padded input");
  }
}

void im2col(const float* img, const Conv2dGeom& g, float* cols) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t plane = g.in_h * g.in_w;
  const std::size_t kh = g.kh(), kw = g.kw();
  const std::size_t rows = g.in_c * kh * kw;
  // Each output row is owned by exactly one (c, ky, kx) triple: flatten the
  // three loops so the rows can be distributed across threads.
#pragma omp parallel for schedule(static) if (rows > 1 && rows * oh * ow > 16384)
  for (std::size_t row = 0; row < rows; ++row) {
    const std::size_t c = row / (kh * kw);
    const std::size_t ky = (row / kw) % kh;
    const std::size_t kx = row % kw;
    float* out = cols + row * (oh * ow);
    for (std::size_t y = 0; y < oh; ++y) {
      const long iy = static_cast<long>(y * g.stride + ky) - static_cast<long>(g.pad);
      if (iy < 0 || iy >= static_cast<long>(g.in_h)) {
        std::memset(out + y * ow, 0, ow * sizeof(float));
        continue;
      }
      const float* src = img + c * plane + static_cast<std::size_t>(iy) * g.in_w;
      for (std::size_t x = 0; x < ow; ++x) {
        const long ix = static_cast<long>(x * g.stride + kx) - static_cast<long>(g.pad);
        out[y * ow + x] = (ix < 0 || ix >= static_cast<long>(g.in_w)) ? 0.0f : src[ix];
      }
    }
  }
}

void col2im(const float* cols, const Conv2dGeom& g, float* img) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t plane = g.in_h * g.in_w;
  const std::size_t kh = g.kh(), kw = g.kw();
  // Rows within one channel accumulate into the same image plane, so the
  // channel (not the row) is the parallel axis; per-channel accumulation
  // keeps the serial order.
#pragma omp parallel for schedule(static) if (g.in_c > 1 && g.in_c * kh * kw * oh * ow > 16384)
  for (std::size_t c = 0; c < g.in_c; ++c) {
    std::size_t row = c * kh * kw;
    for (std::size_t ky = 0; ky < kh; ++ky) {
      for (std::size_t kx = 0; kx < kw; ++kx, ++row) {
        const float* in = cols + row * (oh * ow);
        for (std::size_t y = 0; y < oh; ++y) {
          const long iy = static_cast<long>(y * g.stride + ky) - static_cast<long>(g.pad);
          if (iy < 0 || iy >= static_cast<long>(g.in_h)) continue;
          float* dst = img + c * plane + static_cast<std::size_t>(iy) * g.in_w;
          for (std::size_t x = 0; x < ow; ++x) {
            const long ix = static_cast<long>(x * g.stride + kx) - static_cast<long>(g.pad);
            if (ix >= 0 && ix < static_cast<long>(g.in_w)) dst[ix] += in[y * ow + x];
          }
        }
      }
    }
  }
}

namespace {

/// The im2col-lowered entry points take NCHW activations whose trailing dims
/// must match the geometry, and OIHW weights of exactly [out_c, in_c, kh, kw]
/// elements; failures name the offending dimensions.
void check_conv_operands(const char* who, const Tensor& input, const Tensor& weight,
                         const Conv2dGeom& g) {
  const Shape& s = input.shape();
  if (s.rank() != 4 || s[1] != g.in_c || s[2] != g.in_h || s[3] != g.in_w) {
    throw std::invalid_argument(std::string(who) + ": input " + s.to_string() +
                                " does not match geometry [N," + std::to_string(g.in_c) + "," +
                                std::to_string(g.in_h) + "," + std::to_string(g.in_w) + "]");
  }
  if (weight.numel() != g.out_c * g.patch()) {
    throw std::invalid_argument(std::string(who) + ": weight " + weight.shape().to_string() +
                                " (" + std::to_string(weight.numel()) +
                                " elements) does not match geometry [" + std::to_string(g.out_c) +
                                "," + std::to_string(g.in_c) + "," + std::to_string(g.kh()) + "," +
                                std::to_string(g.kw()) + "]");
  }
}

}  // namespace

Tensor conv2d_forward(const Tensor& input, const Tensor& weight, const Conv2dGeom& g) {
  g.validate();
  check_conv_operands("conv2d_forward", input, weight, g);
  const std::size_t batch = input.shape()[0];
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t patch = g.patch();
  Tensor out({batch, g.out_c, oh, ow});
  const Tensor w2d = weight.reshaped({g.out_c, patch});
  const std::size_t in_stride = g.in_c * g.in_h * g.in_w;
  const std::size_t out_stride = g.out_c * oh * ow;
  // One sample's lowered GEMM is self-contained, so the batch is the parallel
  // axis; cols/out2d scratch is per-thread inside the region.
  const auto conv_one = [&](std::size_t nidx, Tensor& cols, Tensor& out2d) {
    im2col(input.data() + nidx * in_stride, g, cols.data());
    out2d.fill(0.0f);
    matmul_acc(w2d, cols, out2d);
    std::memcpy(out.data() + nidx * out_stride, out2d.data(), out2d.numel() * sizeof(float));
  };
#ifdef _OPENMP
  if (batch > 1) {
    // Bound the team by the batch: surplus threads would allocate scratch
    // below yet never receive an iteration.
    const int team = static_cast<int>(
        std::min<std::size_t>(batch, static_cast<std::size_t>(omp_get_max_threads())));
#pragma omp parallel num_threads(team)
    {
      Tensor cols({patch, oh * ow});
      Tensor out2d({g.out_c, oh * ow});
#pragma omp for schedule(static)
      for (std::size_t nidx = 0; nidx < batch; ++nidx) conv_one(nidx, cols, out2d);
    }
    return out;
  }
#endif
  // Single sample (or no OpenMP): the inner im2col/matmul_acc still thread.
  Tensor cols({patch, oh * ow});
  Tensor out2d({g.out_c, oh * ow});
  for (std::size_t nidx = 0; nidx < batch; ++nidx) conv_one(nidx, cols, out2d);
  return out;
}

Tensor conv2d_backward(const Tensor& input, const Tensor& weight, const Tensor& grad_out,
                       const Conv2dGeom& g, Tensor& grad_weight) {
  g.validate();
  check_conv_operands("conv2d_backward", input, weight, g);
  const std::size_t batch = input.shape()[0];
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const Shape& gs = grad_out.shape();
  if (gs.rank() != 4 || gs[0] != batch || gs[1] != g.out_c || gs[2] != oh || gs[3] != ow) {
    throw std::invalid_argument("conv2d_backward: grad_out " + gs.to_string() +
                                " does not match forward output [" + std::to_string(batch) + "," +
                                std::to_string(g.out_c) + "," + std::to_string(oh) + "," +
                                std::to_string(ow) + "]");
  }
  const std::size_t patch = g.patch();
  const Tensor w2d = weight.reshaped({g.out_c, patch});
  const Tensor w2d_t = transpose(w2d);  // [patch, out_c]

  Tensor grad_input({batch, g.in_c, g.in_h, g.in_w});
  Tensor cols({patch, oh * ow});
  Tensor cols_t({oh * ow, patch});
  Tensor grad_cols({patch, oh * ow});
  Tensor gw2d = grad_weight.reshaped({g.out_c, patch});  // accumulate here, copy back below
  Tensor gout2d({g.out_c, oh * ow});

  for (std::size_t nidx = 0; nidx < batch; ++nidx) {
    const float* go = grad_out.data() + nidx * g.out_c * oh * ow;
    std::memcpy(gout2d.data(), go, gout2d.numel() * sizeof(float));

    // dW += dY * cols^T, lowered onto the blocked GEMM so the weight gradient
    // inherits cache blocking and the threaded row distribution. The serial
    // batch loop keeps per-element accumulation order fixed.
    im2col(input.data() + nidx * g.in_c * g.in_h * g.in_w, g, cols.data());
    transpose_into(cols.data(), patch, oh * ow, cols_t.data());
    matmul_acc(gout2d, cols_t, gw2d);

    // dX = col2im(W^T * dY)
    grad_cols.fill(0.0f);
    matmul_acc(w2d_t, gout2d, grad_cols);
    col2im(grad_cols.data(), g, grad_input.data() + nidx * g.in_c * g.in_h * g.in_w);
  }
  std::memcpy(grad_weight.data(), gw2d.data(), gw2d.numel() * sizeof(float));
  return grad_input;
}

Tensor maxpool2x2_forward(const Tensor& input, std::vector<std::size_t>& argmax) {
  const std::size_t n = input.shape()[0], c = input.shape()[1], h = input.shape()[2], w = input.shape()[3];
  const std::size_t oh = h / 2, ow = w / 2;
  Tensor out({n, c, oh, ow});
  argmax.assign(out.numel(), 0);
  std::size_t oi = 0;
  for (std::size_t ni = 0; ni < n; ++ni)
    for (std::size_t ci = 0; ci < c; ++ci)
      for (std::size_t y = 0; y < oh; ++y)
        for (std::size_t x = 0; x < ow; ++x, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t dy = 0; dy < 2; ++dy)
            for (std::size_t dx = 0; dx < 2; ++dx) {
              const std::size_t idx = ((ni * c + ci) * h + 2 * y + dy) * w + 2 * x + dx;
              if (input[idx] > best) {
                best = input[idx];
                best_idx = idx;
              }
            }
          out[oi] = best;
          argmax[oi] = best_idx;
        }
  return out;
}

Tensor maxpool2x2_backward(const Tensor& grad_out, const std::vector<std::size_t>& argmax,
                           const Shape& input_shape) {
  Tensor grad_input(input_shape);
  for (std::size_t i = 0; i < grad_out.numel(); ++i) grad_input[argmax[i]] += grad_out[i];
  return grad_input;
}

Tensor global_avgpool_forward(const Tensor& input) {
  const std::size_t n = input.shape()[0], c = input.shape()[1];
  const std::size_t plane = input.shape()[2] * input.shape()[3];
  Tensor out({n, c});
  for (std::size_t ni = 0; ni < n; ++ni)
    for (std::size_t ci = 0; ci < c; ++ci) {
      const float* src = input.data() + (ni * c + ci) * plane;
      float acc = 0.0f;
      for (std::size_t i = 0; i < plane; ++i) acc += src[i];
      out.at(ni, ci) = acc / static_cast<float>(plane);
    }
  return out;
}

Tensor global_avgpool_backward(const Tensor& grad_out, const Shape& input_shape) {
  Tensor grad_input(input_shape);
  const std::size_t n = input_shape[0], c = input_shape[1];
  const std::size_t plane = input_shape[2] * input_shape[3];
  const float inv = 1.0f / static_cast<float>(plane);
  for (std::size_t ni = 0; ni < n; ++ni)
    for (std::size_t ci = 0; ci < c; ++ci) {
      const float g = grad_out.at(ni, ci) * inv;
      float* dst = grad_input.data() + (ni * c + ci) * plane;
      for (std::size_t i = 0; i < plane; ++i) dst[i] = g;
    }
  return grad_input;
}

Tensor softmax(const Tensor& logits) {
  const std::size_t n = logits.shape()[0], k = logits.shape()[1];
  Tensor out({n, k});
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    float* orow = out.data() + i * k;
    const float mx = *std::max_element(row, row + k);
    float sum = 0.0f;
    for (std::size_t j = 0; j < k; ++j) {
      orow[j] = std::exp(row[j] - mx);
      sum += orow[j];
    }
    const float inv = 1.0f / sum;
    for (std::size_t j = 0; j < k; ++j) orow[j] *= inv;
  }
  return out;
}

float cross_entropy(const Tensor& logits, const std::vector<int>& labels, Tensor* grad_logits) {
  const std::size_t n = logits.shape()[0], k = logits.shape()[1];
  const Tensor probs = softmax(logits);
  float loss = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float p = std::max(probs[i * k + static_cast<std::size_t>(labels[i])], 1e-12f);
    loss -= std::log(p);
  }
  loss /= static_cast<float>(n);
  if (grad_logits != nullptr) {
    *grad_logits = probs;
    const float inv = 1.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) {
      float* row = grad_logits->data() + i * k;
      row[static_cast<std::size_t>(labels[i])] -= 1.0f;
      for (std::size_t j = 0; j < k; ++j) row[j] *= inv;
    }
  }
  return loss;
}

std::size_t count_correct(const Tensor& logits, const std::vector<int>& labels) {
  const std::size_t n = logits.shape()[0], k = logits.shape()[1];
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    const std::size_t arg = static_cast<std::size_t>(std::max_element(row, row + k) - row);
    if (static_cast<int>(arg) == labels[i]) ++correct;
  }
  return correct;
}

}  // namespace pdnn::tensor
