// tensor.hpp — minimal dense float32 tensor (row-major, up to 4-d).
//
// This is the numeric substrate for the NN stack. Training runs in FP32 with
// the paper's posit transformation inserted at the Fig. 3 hook points, exactly
// mirroring the authors' PyTorch emulation, so a float tensor (not a posit
// tensor) is the right primitive.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/random.hpp"

namespace pdnn::tensor {

/// Shape of a tensor: up to 4 dimensions, row-major.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) {
    if (dims.size() > 4) throw std::invalid_argument("Shape: at most 4 dimensions");
    rank_ = dims.size();
    std::size_t i = 0;
    for (const auto d : dims) dims_[i++] = d;
  }

  std::size_t rank() const { return rank_; }
  std::size_t operator[](std::size_t i) const { return dims_[i]; }
  std::size_t numel() const {
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return rank_ == 0 ? 0 : n;
  }

  bool operator==(const Shape& o) const {
    if (rank_ != o.rank_) return false;
    for (std::size_t i = 0; i < rank_; ++i)
      if (dims_[i] != o.dims_[i]) return false;
    return true;
  }
  bool operator!=(const Shape& o) const { return !(*this == o); }

  std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < rank_; ++i) s += (i ? "," : "") + std::to_string(dims_[i]);
    return s + "]";
  }

 private:
  std::array<std::size_t, 4> dims_ = {};
  std::size_t rank_ = 0;
};

/// Dense row-major float tensor with value semantics.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape) : shape_(shape), data_(shape.numel(), 0.0f) {}
  Tensor(Shape shape, float fill) : shape_(shape), data_(shape.numel(), fill) {}

  static Tensor zeros(Shape shape) { return Tensor(shape); }
  static Tensor full(Shape shape, float v) { return Tensor(shape, v); }
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f) {
    Tensor t(shape);
    for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
    return t;
  }
  static Tensor uniform(Shape shape, Rng& rng, float lo, float hi) {
    Tensor t(shape);
    for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
    return t;
  }
  /// Kaiming-He normal initialization for a conv/linear weight with the given
  /// fan-in (He et al., the init the paper's ResNet-18 uses).
  static Tensor kaiming(Shape shape, std::size_t fan_in, Rng& rng) {
    return randn(shape, rng, std::sqrt(2.0f / static_cast<float>(fan_in)));
  }

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // Multi-dimensional accessors (debug builds may add range checks).
  float& at(std::size_t i, std::size_t j) { return data_[i * shape_[1] + j]; }
  float at(std::size_t i, std::size_t j) const { return data_[i * shape_[1] + j]; }
  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }

  /// Reinterpret with a new shape of identical element count.
  Tensor reshaped(Shape s) const {
    if (s.numel() != numel()) throw std::invalid_argument("reshape: element count mismatch");
    Tensor t = *this;
    t.shape_ = s;
    return t;
  }

  /// Rebind to a new shape in place, reusing the existing storage. Capacity
  /// only ever grows, so once a buffer has seen its peak shape, later
  /// resizes never touch the heap — the arena/slot steady-state contract.
  /// Element values are unspecified after a resize that changes numel().
  void resize(const Shape& s) {
    shape_ = s;
    data_.resize(s.numel());
  }

  /// Elements of backing storage actually held (>= numel()).
  std::size_t capacity() const { return data_.capacity(); }

  Tensor& operator+=(const Tensor& o) { return zip(o, [](float a, float b) { return a + b; }); }
  Tensor& operator-=(const Tensor& o) { return zip(o, [](float a, float b) { return a - b; }); }
  Tensor& operator*=(float s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  template <typename Fn>
  Tensor& apply(Fn&& fn) {
    for (auto& v : data_) v = fn(v);
    return *this;
  }

  void fill(float v) {
    for (auto& x : data_) x = v;
  }

 private:
  template <typename Fn>
  Tensor& zip(const Tensor& o, Fn&& fn) {
    if (o.numel() != numel()) throw std::invalid_argument("tensor op: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] = fn(data_[i], o.data_[i]);
    return *this;
  }

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace pdnn::tensor
