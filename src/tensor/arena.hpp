// arena.hpp — a grow-only pool of reusable tensor buffers.
//
// The exec layer's ArenaPlanner maps every plan slot (a tensor defined by one
// step and read by later ones) onto a small set of buffers whose lifetimes
// never overlap. TensorArena is the runtime side of that mapping: each buffer
// is a Tensor whose storage only ever grows, so binding a slot's shape is a
// reshape that stops touching the heap once the run shapes have settled —
// steady-state inference allocates nothing.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace pdnn::tensor {

class TensorArena {
 public:
  /// Size the pool (buffer count comes from the plan; contents persist when
  /// the count is unchanged).
  void configure(std::size_t buffers) { buffers_.resize(buffers); }

  /// View buffer `b` as `shape`, reusing its storage (grow-only). When a
  /// plan step executes in place, the binding is a no-op reshape and the
  /// previous step's values are preserved.
  Tensor& bind(std::size_t b, const Shape& shape) {
    Tensor& t = buffers_[b];
    t.resize(shape);
    return t;
  }

  Tensor& at(std::size_t b) { return buffers_[b]; }
  const Tensor& at(std::size_t b) const { return buffers_[b]; }
  std::size_t buffers() const { return buffers_.size(); }

  /// Bytes of float storage held across all buffers (capacity, not the
  /// currently bound shapes) — the figure ExecPlan::dump() reports.
  std::size_t bytes() const {
    std::size_t total = 0;
    for (const Tensor& t : buffers_) total += t.capacity() * sizeof(float);
    return total;
  }

 private:
  std::vector<Tensor> buffers_;
};

}  // namespace pdnn::tensor
