// gemm_kernel.hpp — cache-blocked GEMM micro-kernel behind matmul/matmul_acc.
//
// The kernel packs A into MC×KC row panels and B into KC×NC column panels
// (BLIS/marian-style), then drives an 8×8 register-tiled micro-kernel over the
// packed panels. Accumulation for every C element is a plain multiply-then-add
// in strictly ascending k order, with C stored and reloaded between KC blocks,
// so the result is bit-identical to the naive i-k-j saxpy loop — and therefore
// identical for any blocking, any leading dimension, and any thread count.
#pragma once

#include <cstddef>

namespace pdnn::tensor {

/// Blocking parameters of the packed GEMM (floats, row-major).
///   MR×NR  register micro-tile: 8 AVX2 accumulators of 8 lanes each.
///   KC×NR  packed B micro-panel (8 KiB) stays in L1 across an MC sweep.
///   MC×KC  packed A block (128 KiB) stays in L2.
///   KC×NC  packed B block (1 MiB) is streamed once per KC slice.
struct GemmBlocking {
  static constexpr std::size_t MR = 8;
  static constexpr std::size_t NR = 8;
  static constexpr std::size_t MC = 128;
  static constexpr std::size_t KC = 256;
  static constexpr std::size_t NC = 1024;
};

/// Fused tail applied to each C element exactly once, after its final KC
/// slice lands (the element's accumulation is complete) and before the tile
/// leaves the micro-kernel's cache footprint. Element order per C[i,j]:
/// add row_bias[i] if set, add col_bias[j] if set, then clamp at zero if
/// relu — the same expression order as running the separate bias/ReLU sweeps
/// afterwards, so a fused call is bit-identical to gemm + sweeps.
struct GemmEpilogue {
  const float* row_bias = nullptr;  ///< added to every element of row i (conv layout)
  const float* col_bias = nullptr;  ///< added to every element of column j (linear layout)
  bool relu = false;

  bool active() const { return row_bias != nullptr || col_bias != nullptr || relu; }
};

/// C[m,n] += A[m,k] * B[k,n] on row-major buffers with explicit leading
/// dimensions (lda/ldb/ldc are row strides in elements; pass k/n/n for
/// contiguous matrices). Parallelizes over MC row blocks with OpenMP; results
/// are bit-identical to the serial naive i-k-j loop at any thread count.
void gemm_blocked(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
                  const float* b, std::size_t ldb, float* c, std::size_t ldc);

/// gemm_blocked with a fused epilogue. k == 0 degenerates to applying the
/// epilogue over C as-is (the caller's pre-filled accumulator).
void gemm_blocked(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
                  const float* b, std::size_t ldb, float* c, std::size_t ldc,
                  const GemmEpilogue& epilogue);

/// True when the AVX2 micro-kernel is active on this host (false means the
/// portable scalar micro-kernel — same results, lower throughput).
bool gemm_kernel_vectorized();

/// Bytes of packing scratch (A and B panels) currently retained by the
/// calling thread. The scratch is thread_local and bounded: it grows to the
/// need of the running GEMM and shrinks back after a sustained streak of
/// calls whose need is several times smaller (see gemm_kernel.cpp), so a
/// long-lived serving worker never holds a historical peak forever, while
/// loops that alternate large and small GEMMs — e.g. a compiled backward
/// pass — stay allocation-free in steady state.
std::size_t gemm_pack_bytes();

}  // namespace pdnn::tensor
