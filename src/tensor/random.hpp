// random.hpp — deterministic PRNG and distributions for tensors/datasets.
//
// All randomness in the library flows through Rng so every experiment is
// reproducible from a single seed. xoshiro256** core, Box-Muller normals.
#pragma once

#include <cmath>
#include <cstdint>

namespace pdnn::tensor {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC0FFEE123ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
    have_spare_ = false;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound).
  std::uint64_t uniform_int(std::uint64_t bound) { return next_u64() % bound; }

  /// Standard normal (Box-Muller with caching).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace pdnn::tensor
