// activations.hpp — additional layers: smooth activations, dropout, average
// pooling. Not used by the paper's ResNets (which are conv-BN-ReLU), but part
// of a complete training library and exercised by the MLP examples.
#pragma once

#include "nn/module.hpp"

namespace pdnn::nn {

class Tanh final : public Module {
 public:
  explicit Tanh(std::string name) : Module(std::move(name)) {}
  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  tensor::Tensor cached_output_;
};

class Sigmoid final : public Module {
 public:
  explicit Sigmoid(std::string name) : Module(std::move(name)) {}
  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  tensor::Tensor cached_output_;
};

/// Inverted dropout: scales kept units by 1/(1-p) in training; identity in
/// eval. Deterministic given the seed.
class Dropout final : public Module {
 public:
  Dropout(std::string name, float p, std::uint64_t seed = 0xD20)
      : Module(std::move(name)), p_(p), rng_(seed) {}

  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

  float drop_probability() const { return p_; }

 private:
  float p_;
  tensor::Rng rng_;
  std::vector<float> mask_;  // 0 or 1/(1-p)
};

/// 2x2 average pooling with stride 2.
class AvgPool2x2 final : public Module {
 public:
  explicit AvgPool2x2(std::string name) : Module(std::move(name)) {}
  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  tensor::Shape input_shape_;
};

}  // namespace pdnn::nn
