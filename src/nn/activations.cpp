#include "nn/activations.hpp"

#include <cmath>

namespace pdnn::nn {

using tensor::Tensor;

Tensor Tanh::forward(const Tensor& x, bool training) {
  Tensor out = x;
  out.apply([](float v) { return std::tanh(v); });
  if (training) cached_output_ = out;
  if (quantizing()) policy_->quantize_activation(out, name_, LayerClass::kLinear);
  return out;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.numel(); ++i) {
    const float y = cached_output_[i];
    grad_in[i] *= 1.0f - y * y;
  }
  return grad_in;
}

Tensor Sigmoid::forward(const Tensor& x, bool training) {
  Tensor out = x;
  out.apply([](float v) { return 1.0f / (1.0f + std::exp(-v)); });
  if (training) cached_output_ = out;
  if (quantizing()) policy_->quantize_activation(out, name_, LayerClass::kLinear);
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.numel(); ++i) {
    const float y = cached_output_[i];
    grad_in[i] *= y * (1.0f - y);
  }
  return grad_in;
}

Tensor Dropout::forward(const Tensor& x, bool training) {
  if (!training || p_ <= 0.0f) {
    mask_.clear();
    return x;
  }
  const float keep_scale = 1.0f / (1.0f - p_);
  mask_.resize(x.numel());
  Tensor out = x;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    const bool keep = rng_.uniform() >= p_;
    mask_[i] = keep ? keep_scale : 0.0f;
    out[i] *= mask_[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.numel(); ++i) grad_in[i] *= mask_[i];
  return grad_in;
}

Tensor AvgPool2x2::forward(const Tensor& x, bool training) {
  (void)training;
  input_shape_ = x.shape();
  const std::size_t n = x.shape()[0], c = x.shape()[1], h = x.shape()[2], w = x.shape()[3];
  Tensor out({n, c, h / 2, w / 2});
  for (std::size_t ni = 0; ni < n; ++ni)
    for (std::size_t ci = 0; ci < c; ++ci)
      for (std::size_t y = 0; y + 1 < h; y += 2)
        for (std::size_t xx = 0; xx + 1 < w; xx += 2) {
          const float sum = x.at(ni, ci, y, xx) + x.at(ni, ci, y, xx + 1) + x.at(ni, ci, y + 1, xx) +
                            x.at(ni, ci, y + 1, xx + 1);
          out.at(ni, ci, y / 2, xx / 2) = sum * 0.25f;
        }
  return out;
}

Tensor AvgPool2x2::backward(const Tensor& grad_out) {
  Tensor grad_in(input_shape_);
  const std::size_t n = input_shape_[0], c = input_shape_[1], h = input_shape_[2], w = input_shape_[3];
  for (std::size_t ni = 0; ni < n; ++ni)
    for (std::size_t ci = 0; ci < c; ++ci)
      for (std::size_t y = 0; y + 1 < h; y += 2)
        for (std::size_t xx = 0; xx + 1 < w; xx += 2) {
          const float g = grad_out.at(ni, ci, y / 2, xx / 2) * 0.25f;
          grad_in.at(ni, ci, y, xx) = g;
          grad_in.at(ni, ci, y, xx + 1) = g;
          grad_in.at(ni, ci, y + 1, xx) = g;
          grad_in.at(ni, ci, y + 1, xx + 1) = g;
        }
  return grad_in;
}

}  // namespace pdnn::nn
