// resnet.hpp — network builders.
//
// cifar_resnet builds the Cifar-ResNet family of He et al. (depth = 6n+2:
// ResNet-8 for n=1, ResNet-14 for n=2, ResNet-20 for n=3, ...), the
// architecture the paper trains on Cifar-10, parameterized so the laptop-scale
// benches can shrink channels/resolution while keeping the topology.
#pragma once

#include <memory>

#include "nn/layers.hpp"

namespace pdnn::nn {

struct ResNetConfig {
  std::size_t blocks_per_stage = 1;  ///< n in depth = 6n+2 (1 -> ResNet-8)
  std::size_t base_channels = 8;     ///< channels of stage 1 (paper: 16)
  std::size_t in_channels = 3;
  std::size_t classes = 10;
  /// BN running-stat momentum. With posit-quantized weight updates the
  /// weights move on a coarse grid, so running statistics must track faster
  /// than the PyTorch default (0.1) when there are few steps per epoch.
  float bn_momentum = 0.1f;
};

/// conv-bn-relu stem, three stages of residual blocks (stride 2 at stage 2/3),
/// global average pool, linear classifier.
std::unique_ptr<Sequential> cifar_resnet(const ResNetConfig& cfg, tensor::Rng& rng);

/// A small conv net without residual connections (ablation baseline).
std::unique_ptr<Sequential> plain_cnn(std::size_t base_channels, std::size_t classes, tensor::Rng& rng);

/// A multilayer perceptron for vector datasets (two-moons / spiral examples).
std::unique_ptr<Sequential> mlp(std::size_t in_features, std::size_t hidden, std::size_t classes,
                                std::size_t depth, tensor::Rng& rng);

}  // namespace pdnn::nn
