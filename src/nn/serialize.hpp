// serialize.hpp — model checkpointing.
//
// Saves/loads all learnable parameters of a module tree by name, in a simple
// binary container. Two uses in this repo: reusing a warm-up-trained FP32
// checkpoint across posit configurations (the paper trains the warm-up once
// per run; sharing it makes ablations comparable), and persisting posit
// models compactly via PackedPositTensor (the 25%/50% model-size claim).
#pragma once

#include <iosfwd>
#include <string>

#include "nn/layers.hpp"
#include "posit/packed.hpp"

namespace pdnn::nn {

/// Writes `net`'s parameters (FP32) to the stream. Format:
///   magic "PDNN0001" | u64 param count | per param:
///   u32 name length | name bytes | u32 rank | u64 dims[rank] | f32 data[]
void save_parameters(std::ostream& os, Sequential& net);

/// Restores parameters by name; throws std::runtime_error on missing params,
/// shape mismatch, or a malformed stream. Extra params in the stream are an
/// error too (checkpoint and architecture must agree).
void load_parameters(std::istream& is, Sequential& net);

/// Convenience file wrappers.
void save_parameters_file(const std::string& path, Sequential& net);
void load_parameters_file(const std::string& path, Sequential& net);

/// Posit-compressed checkpoint: every parameter packed to (n, es) codes.
/// Returns total payload bytes (the model-size number of Section IV).
std::size_t save_parameters_posit(std::ostream& os, Sequential& net, const posit::PositSpec& spec);
void load_parameters_posit(std::istream& is, Sequential& net);

}  // namespace pdnn::nn
