// layers.hpp — the layer zoo: Conv2d, BatchNorm2d, ReLU, Linear, pooling,
// Sequential, and the ResNet residual block.
#pragma once

#include <cstdint>

#include "nn/module.hpp"
#include "tensor/ops.hpp"

namespace pdnn::nn {

/// 2-d convolution. Bias defaults off (the paper's ResNets put BN after every
/// conv); pass with_bias=true for a per-output-channel additive bias.
/// `kernel` is the window height; `kernel_w` selects a rectangular
/// kernel x kernel_w window, with 0 (the default) meaning square — the same
/// convention as tensor::Conv2dGeom.
class Conv2d final : public Module {
 public:
  Conv2d(std::string name, std::size_t in_c, std::size_t out_c, std::size_t kernel, std::size_t stride,
         std::size_t pad, tensor::Rng& rng, bool with_bias = false, std::size_t kernel_w = 0);

  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Param*> params() override {
    if (with_bias_) return {&weight_, &bias_};
    return {&weight_};
  }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  bool has_bias() const { return with_bias_; }
  std::size_t in_channels() const { return in_c_; }
  std::size_t out_channels() const { return out_c_; }
  std::size_t kernel() const { return kernel_; }
  /// Window width; equals kernel() for square windows.
  std::size_t kernel_w() const { return kernel_w_ != 0 ? kernel_w_ : kernel_; }
  std::size_t stride() const { return stride_; }
  std::size_t pad() const { return pad_; }

 private:
  Param weight_;
  Param bias_;
  bool with_bias_ = false;
  std::size_t in_c_, out_c_, kernel_, stride_, pad_, kernel_w_;
  tensor::Tensor cached_input_;     // A^{l-1}_p
  tensor::Tensor cached_qweight_;   // W_p used in forward, reused in backward
  tensor::Conv2dGeom geom_;
};

/// Batch normalization over N,H,W per channel.
class BatchNorm2d final : public Module {
 public:
  BatchNorm2d(std::string name, std::size_t channels, float eps = 1e-5f, float momentum = 0.1f);

  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }

  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }
  float eps() const { return eps_; }
  const std::vector<float>& running_mean() const { return running_mean_; }
  const std::vector<float>& running_var() const { return running_var_; }
  /// Version of the running statistics, drawn from the same monotonic
  /// counter as Param::version and bumped on every training forward (the
  /// only writer of running_mean_/running_var_). Backends that bake the
  /// stats into derived state (BN-folded conv panels, posit BN scale codes)
  /// key that state on this exactly like a Param version, so a training
  /// step between serves re-derives it.
  std::uint64_t stats_version() const { return stats_version_; }
  float momentum() const { return momentum_; }

  /// Trainer hook: fold one training batch's per-channel statistics into the
  /// running estimates with the module's EMA momentum (the same expression
  /// the eager training forward uses) and bump stats_version(). The compiled
  /// training backend computes batch stats into backend-owned state — clones
  /// must not race on the shared module — and the trainer commits them
  /// serially here, one call per micro-batch in shard order. `mean`/`var`
  /// must hold channels() values.
  void update_running_stats(const float* mean, const float* var);
  std::size_t channels() const { return channels_; }

 private:
  Param gamma_, beta_;
  std::size_t channels_;
  float eps_, momentum_;
  std::vector<float> running_mean_, running_var_;
  std::uint64_t stats_version_ = next_param_version();
  // Forward cache.
  tensor::Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
  tensor::Shape cached_shape_;
};

class ReLU final : public Module {
 public:
  explicit ReLU(std::string name) : Module(std::move(name)) {}
  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  // uint8 (not vector<bool>): distinct elements must be writable concurrently
  // from the threaded elementwise loops.
  std::vector<std::uint8_t> mask_;
};

/// Fully connected layer with bias: y = x W^T + b.
class Linear final : public Module {
 public:
  Linear(std::string name, std::size_t in_features, std::size_t out_features, tensor::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  std::size_t in_features() const { return in_f_; }
  std::size_t out_features() const { return out_f_; }

 private:
  Param weight_, bias_;
  std::size_t in_f_, out_f_;
  tensor::Tensor cached_input_;
  tensor::Tensor cached_qweight_;
};

class MaxPool2x2 final : public Module {
 public:
  explicit MaxPool2x2(std::string name) : Module(std::move(name)) {}
  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  std::vector<std::size_t> argmax_;
  tensor::Shape input_shape_;
};

class GlobalAvgPool final : public Module {
 public:
  explicit GlobalAvgPool(std::string name) : Module(std::move(name)) {}
  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

 private:
  tensor::Shape input_shape_;
};

/// Runs children in order.
class Sequential final : public Module {
 public:
  explicit Sequential(std::string name) : Module(std::move(name)) {}

  Sequential& add(ModulePtr m) {
    children_.push_back(std::move(m));
    return *this;
  }

  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Module*> children() override;

  std::size_t size() const { return children_.size(); }
  Module& child(std::size_t i) { return *children_[i]; }

 private:
  std::vector<ModulePtr> children_;
};

/// Basic ResNet block: conv-bn-relu-conv-bn (+ optional 1x1 downsample) + add,
/// then relu. The post-add activation is quantized (it creates new values).
class ResidualBlock final : public Module {
 public:
  ResidualBlock(std::string name, std::size_t in_c, std::size_t out_c, std::size_t stride,
                tensor::Rng& rng, float bn_momentum = 0.1f);

  tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  /// Main path (conv1, bn1, relu1, conv2, bn2) then the downsample pair when
  /// present — the order params() has always used.
  std::vector<Module*> children() override;

  // Branch structure, exposed so graph consumers (PositSession::compile) can
  // bind the main and skip paths separately.
  Conv2d& conv1() { return conv1_; }
  BatchNorm2d& bn1() { return bn1_; }
  ReLU& relu1() { return relu1_; }
  Conv2d& conv2() { return conv2_; }
  BatchNorm2d& bn2() { return bn2_; }
  bool has_downsample() const { return down_conv_ != nullptr; }
  Conv2d* down_conv() { return down_conv_.get(); }
  BatchNorm2d* down_bn() { return down_bn_.get(); }

 private:
  Conv2d conv1_;
  BatchNorm2d bn1_;
  ReLU relu1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  std::unique_ptr<Conv2d> down_conv_;
  std::unique_ptr<BatchNorm2d> down_bn_;
  std::vector<std::uint8_t> relu_mask_;
};

}  // namespace pdnn::nn
