#include "nn/layers.hpp"

#include <cmath>

namespace pdnn::nn {

// Threading mirrors src/tensor/ops.cpp: parallel axes are independent output
// slices (BN channels, ReLU elements, rows of the bias add), each computed in
// serial order, so threaded results are bit-identical to single-thread runs.

using tensor::Shape;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------
Conv2d::Conv2d(std::string name, std::size_t in_c, std::size_t out_c, std::size_t kernel,
               std::size_t stride, std::size_t pad, tensor::Rng& rng, bool with_bias,
               std::size_t kernel_w)
    : Module(std::move(name)), with_bias_(with_bias), in_c_(in_c), out_c_(out_c), kernel_(kernel),
      stride_(stride), pad_(pad), kernel_w_(kernel_w) {
  const std::size_t kw = this->kernel_w();
  weight_.name = name_ + ".weight";
  weight_.layer_class = LayerClass::kConv;
  const std::size_t fan_in = in_c * kernel * kw;
  weight_.value = Tensor::kaiming({out_c, in_c, kernel, kw}, fan_in, rng);
  weight_.grad = Tensor::zeros(weight_.value.shape());
  if (with_bias_) {
    bias_.name = name_ + ".bias";
    bias_.layer_class = LayerClass::kConv;
    bias_.value = Tensor::zeros({out_c});
    bias_.grad = Tensor::zeros({out_c});
    bias_.decay = false;
  }
}

Tensor Conv2d::forward(const Tensor& x, bool training) {
  geom_ = tensor::Conv2dGeom{in_c_, x.shape()[2], x.shape()[3], out_c_, kernel_, stride_, pad_,
                             kernel_w_};
  // Fig. 3a: W_p = P(W); the quantized weight is also what backward sees.
  cached_qweight_ = quantizing() ? policy_->quantize_weight(weight_.value, name_, LayerClass::kConv)
                                 : weight_.value;
  Tensor out = tensor::conv2d_forward(x, cached_qweight_, geom_);
  if (with_bias_) {
    // Each output channel owns its slice across the batch — same parallel
    // shape as the BN channel loops.
    const std::size_t n = out.shape()[0];
    const std::size_t plane = out.shape()[2] * out.shape()[3];
#pragma omp parallel for schedule(static) if (out_c_ > 1 && n* out_c_* plane > 16384)
    for (std::size_t ci = 0; ci < out_c_; ++ci) {
      const float b = bias_.value[ci];
      for (std::size_t ni = 0; ni < n; ++ni) {
        float* dst = out.data() + (ni * out_c_ + ci) * plane;
        for (std::size_t i = 0; i < plane; ++i) dst[i] += b;
      }
    }
  }
  if (training) cached_input_ = x;
  // Fig. 3a: A_p = P(A) on the output.
  if (quantizing()) policy_->quantize_activation(out, name_, LayerClass::kConv);
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  // Fig. 3b: E_p = P(E) on the incoming error.
  Tensor e = grad_out;
  if (quantizing()) policy_->quantize_error(e, name_, LayerClass::kConv);
  if (with_bias_) {
    // db[c] = sum over batch and plane of the (quantized) error.
    const std::size_t n = e.shape()[0];
    const std::size_t plane = e.shape()[2] * e.shape()[3];
#pragma omp parallel for schedule(static) if (out_c_ > 1 && n* out_c_* plane > 16384)
    for (std::size_t ci = 0; ci < out_c_; ++ci) {
      float acc = 0.0f;
      for (std::size_t ni = 0; ni < n; ++ni) {
        const float* src = e.data() + (ni * out_c_ + ci) * plane;
        for (std::size_t i = 0; i < plane; ++i) acc += src[i];
      }
      bias_.grad[ci] += acc;
    }
  }
  Tensor grad_in = tensor::conv2d_backward(cached_input_, cached_qweight_, e, geom_, weight_.grad);
  // Fig. 3b: dW_p = P(dW).
  if (quantizing()) {
    policy_->quantize_gradient(weight_.grad, name_, LayerClass::kConv);
    if (with_bias_) policy_->quantize_gradient(bias_.grad, name_, LayerClass::kConv);
  }
  return grad_in;
}

// ---------------------------------------------------------------------------
// BatchNorm2d
// ---------------------------------------------------------------------------
BatchNorm2d::BatchNorm2d(std::string name, std::size_t channels, float eps, float momentum)
    : Module(std::move(name)), channels_(channels), eps_(eps), momentum_(momentum),
      running_mean_(channels, 0.0f), running_var_(channels, 1.0f) {
  gamma_.name = name_ + ".weight";
  gamma_.layer_class = LayerClass::kBn;
  gamma_.value = Tensor::full({channels}, 1.0f);
  gamma_.grad = Tensor::zeros({channels});
  gamma_.decay = false;
  beta_.name = name_ + ".bias";
  beta_.layer_class = LayerClass::kBn;
  beta_.value = Tensor::zeros({channels});
  beta_.grad = Tensor::zeros({channels});
  beta_.decay = false;
}

Tensor BatchNorm2d::forward(const Tensor& x, bool training) {
  const std::size_t n = x.shape()[0], c = x.shape()[1];
  const std::size_t plane = x.shape()[2] * x.shape()[3];
  const std::size_t per_channel = n * plane;
  cached_shape_ = x.shape();

  // Fig. 3a applied to BN: the BN "weight" (gamma) is quantized with the BN
  // format before use; the output activation is quantized after.
  Tensor qgamma = quantizing() ? policy_->quantize_weight(gamma_.value, name_, LayerClass::kBn)
                               : gamma_.value;

  Tensor out(x.shape());
  if (training) {
    cached_xhat_ = Tensor(x.shape());
    cached_inv_std_.assign(c, 0.0f);
  }
  // Each channel owns its mean/var reduction, running-stat slot, and output
  // plane slice — the batch*plane work per channel parallelizes by channel.
#pragma omp parallel for schedule(static) if (c > 1 && n * plane > 4096)
  for (std::size_t ci = 0; ci < c; ++ci) {
    float mean, var;
    if (training) {
      double sum = 0.0, sum_sq = 0.0;
      for (std::size_t ni = 0; ni < n; ++ni) {
        const float* src = x.data() + (ni * c + ci) * plane;
        for (std::size_t i = 0; i < plane; ++i) {
          sum += src[i];
          sum_sq += static_cast<double>(src[i]) * src[i];
        }
      }
      mean = static_cast<float>(sum / static_cast<double>(per_channel));
      var = static_cast<float>(
          std::max(0.0, sum_sq / static_cast<double>(per_channel) - static_cast<double>(mean) * mean));
      running_mean_[ci] = (1 - momentum_) * running_mean_[ci] + momentum_ * mean;
      running_var_[ci] = (1 - momentum_) * running_var_[ci] + momentum_ * var;
    } else {
      mean = running_mean_[ci];
      var = running_var_[ci];
    }
    const float inv_std = 1.0f / std::sqrt(var + eps_);
    if (training) cached_inv_std_[ci] = inv_std;
    const float g = qgamma[ci], b = beta_.value[ci];
    for (std::size_t ni = 0; ni < n; ++ni) {
      const float* src = x.data() + (ni * c + ci) * plane;
      float* dst = out.data() + (ni * c + ci) * plane;
      float* xh = training ? cached_xhat_.data() + (ni * c + ci) * plane : nullptr;
      for (std::size_t i = 0; i < plane; ++i) {
        const float xhat = (src[i] - mean) * inv_std;
        if (xh != nullptr) xh[i] = xhat;
        dst[i] = g * xhat + b;
      }
    }
  }
  // Training rewrote every running-stat slot above; a single bump after the
  // parallel loop keeps the version monotonic without per-channel contention.
  if (training) stats_version_ = next_param_version();
  if (quantizing()) policy_->quantize_activation(out, name_, LayerClass::kBn);
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  Tensor e = grad_out;
  if (quantizing()) policy_->quantize_error(e, name_, LayerClass::kBn);

  const std::size_t n = cached_shape_[0], c = cached_shape_[1];
  const std::size_t plane = cached_shape_[2] * cached_shape_[3];
  const auto per_channel = static_cast<float>(n * plane);

  Tensor grad_in(cached_shape_);
#pragma omp parallel for schedule(static) if (c > 1 && n * plane > 4096)
  for (std::size_t ci = 0; ci < c; ++ci) {
    // Reductions: dGamma = sum(dY * xhat), dBeta = sum(dY).
    double dg = 0.0, db = 0.0;
    for (std::size_t ni = 0; ni < n; ++ni) {
      const float* gy = e.data() + (ni * c + ci) * plane;
      const float* xh = cached_xhat_.data() + (ni * c + ci) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        dg += static_cast<double>(gy[i]) * xh[i];
        db += gy[i];
      }
    }
    gamma_.grad[ci] += static_cast<float>(dg);
    beta_.grad[ci] += static_cast<float>(db);

    // dX = gamma * inv_std / m * (m*dY - sum(dY) - xhat * sum(dY*xhat))
    const float scale = gamma_.value[ci] * cached_inv_std_[ci] / per_channel;
    const auto sdg = static_cast<float>(dg);
    const auto sdb = static_cast<float>(db);
    for (std::size_t ni = 0; ni < n; ++ni) {
      const float* gy = e.data() + (ni * c + ci) * plane;
      const float* xh = cached_xhat_.data() + (ni * c + ci) * plane;
      float* gx = grad_in.data() + (ni * c + ci) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        gx[i] = scale * (per_channel * gy[i] - sdb - xh[i] * sdg);
      }
    }
  }
  if (quantizing()) {
    policy_->quantize_gradient(gamma_.grad, name_, LayerClass::kBn);
    policy_->quantize_gradient(beta_.grad, name_, LayerClass::kBn);
  }
  return grad_in;
}

void BatchNorm2d::update_running_stats(const float* mean, const float* var) {
  for (std::size_t ci = 0; ci < channels_; ++ci) {
    running_mean_[ci] = (1 - momentum_) * running_mean_[ci] + momentum_ * mean[ci];
    running_var_[ci] = (1 - momentum_) * running_var_[ci] + momentum_ * var[ci];
  }
  stats_version_ = next_param_version();
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------
Tensor ReLU::forward(const Tensor& x, bool training) {
  Tensor out = x;
  const std::size_t numel = out.numel();
  if (training) mask_.assign(numel, 0);
#pragma omp parallel for schedule(static) if (numel > 16384)
  for (std::size_t i = 0; i < numel; ++i) {
    if (out[i] > 0.0f) {
      if (training) mask_[i] = 1;
    } else {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  const std::size_t numel = grad_in.numel();
#pragma omp parallel for schedule(static) if (numel > 16384)
  for (std::size_t i = 0; i < numel; ++i) {
    if (mask_[i] == 0) grad_in[i] = 0.0f;
  }
  return grad_in;
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------
Linear::Linear(std::string name, std::size_t in_features, std::size_t out_features, tensor::Rng& rng)
    : Module(std::move(name)), in_f_(in_features), out_f_(out_features) {
  weight_.name = name_ + ".weight";
  weight_.layer_class = LayerClass::kLinear;
  weight_.value = Tensor::kaiming({out_features, in_features}, in_features, rng);
  weight_.grad = Tensor::zeros(weight_.value.shape());
  bias_.name = name_ + ".bias";
  bias_.layer_class = LayerClass::kLinear;
  bias_.value = Tensor::zeros({out_features});
  bias_.grad = Tensor::zeros({out_features});
  bias_.decay = false;
}

Tensor Linear::forward(const Tensor& x, bool training) {
  cached_qweight_ = quantizing() ? policy_->quantize_weight(weight_.value, name_, LayerClass::kLinear)
                                 : weight_.value;
  if (training) cached_input_ = x;
  Tensor out = tensor::matmul(x, tensor::transpose(cached_qweight_));
  const std::size_t n = out.shape()[0];
#pragma omp parallel for schedule(static) if (n > 1 && n * out_f_ > 16384)
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < out_f_; ++j) out.at(i, j) += bias_.value[j];
  if (quantizing()) policy_->quantize_activation(out, name_, LayerClass::kLinear);
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  Tensor e = grad_out;
  if (quantizing()) policy_->quantize_error(e, name_, LayerClass::kLinear);
  // dW = dY^T X ; db = colsum(dY) ; dX = dY W
  Tensor dw = tensor::matmul(tensor::transpose(e), cached_input_);
  weight_.grad += dw;
  const std::size_t n = e.shape()[0];
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < out_f_; ++j) bias_.grad[j] += e.at(i, j);
  Tensor grad_in = tensor::matmul(e, cached_qweight_);
  if (quantizing()) {
    policy_->quantize_gradient(weight_.grad, name_, LayerClass::kLinear);
    policy_->quantize_gradient(bias_.grad, name_, LayerClass::kLinear);
  }
  return grad_in;
}

// ---------------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------------
Tensor MaxPool2x2::forward(const Tensor& x, bool training) {
  (void)training;
  input_shape_ = x.shape();
  return tensor::maxpool2x2_forward(x, argmax_);
}

Tensor MaxPool2x2::backward(const Tensor& grad_out) {
  return tensor::maxpool2x2_backward(grad_out, argmax_, input_shape_);
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool training) {
  (void)training;
  input_shape_ = x.shape();
  return tensor::global_avgpool_forward(x);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  return tensor::global_avgpool_backward(grad_out, input_shape_);
}

// ---------------------------------------------------------------------------
// Sequential
// ---------------------------------------------------------------------------
Tensor Sequential::forward(const Tensor& x, bool training) {
  Tensor h = x;
  for (auto& child : children_) h = child->forward(h, training);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::vector<Module*> Sequential::children() {
  std::vector<Module*> out;
  out.reserve(children_.size());
  for (auto& child : children_) out.push_back(child.get());
  return out;
}

// ---------------------------------------------------------------------------
// ResidualBlock
// ---------------------------------------------------------------------------
ResidualBlock::ResidualBlock(std::string name, std::size_t in_c, std::size_t out_c, std::size_t stride,
                             tensor::Rng& rng, float bn_momentum)
    : Module(name),
      conv1_(name + ".conv1", in_c, out_c, 3, stride, 1, rng),
      bn1_(name + ".bn1", out_c, 1e-5f, bn_momentum),
      relu1_(name + ".relu1"),
      conv2_(name + ".conv2", out_c, out_c, 3, 1, 1, rng),
      bn2_(name + ".bn2", out_c, 1e-5f, bn_momentum) {
  if (stride != 1 || in_c != out_c) {
    down_conv_ = std::make_unique<Conv2d>(name + ".down.conv", in_c, out_c, 1, stride, 0, rng);
    down_bn_ = std::make_unique<BatchNorm2d>(name + ".down.bn", out_c, 1e-5f, bn_momentum);
  }
}

Tensor ResidualBlock::forward(const Tensor& x, bool training) {
  Tensor h = conv1_.forward(x, training);
  h = bn1_.forward(h, training);
  h = relu1_.forward(h, training);
  h = conv2_.forward(h, training);
  h = bn2_.forward(h, training);

  Tensor skip = x;
  if (down_conv_ != nullptr) {
    skip = down_conv_->forward(x, training);
    skip = down_bn_->forward(skip, training);
  }
  h += skip;
  // Final ReLU; record mask for backward.
  const std::size_t numel = h.numel();
  if (training) relu_mask_.assign(numel, 0);
#pragma omp parallel for schedule(static) if (numel > 16384)
  for (std::size_t i = 0; i < numel; ++i) {
    if (h[i] > 0.0f) {
      if (training) relu_mask_[i] = 1;
    } else {
      h[i] = 0.0f;
    }
  }
  // The residual add produced new values: quantize the block output.
  if (quantizing()) policy_->quantize_activation(h, name_, LayerClass::kConv);
  return h;
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  if (quantizing()) policy_->quantize_error(g, name_, LayerClass::kConv);
  const std::size_t numel = g.numel();
#pragma omp parallel for schedule(static) if (numel > 16384)
  for (std::size_t i = 0; i < numel; ++i) {
    if (relu_mask_[i] == 0) g[i] = 0.0f;
  }
  // Main path.
  Tensor gm = bn2_.backward(g);
  gm = conv2_.backward(gm);
  gm = relu1_.backward(gm);
  gm = bn1_.backward(gm);
  gm = conv1_.backward(gm);
  // Skip path.
  Tensor gs = g;
  if (down_conv_ != nullptr) {
    gs = down_bn_->backward(gs);
    gs = down_conv_->backward(gs);
  }
  gm += gs;
  return gm;
}

std::vector<Module*> ResidualBlock::children() {
  std::vector<Module*> out{&conv1_, &bn1_, &relu1_, &conv2_, &bn2_};
  if (down_conv_ != nullptr) {
    out.push_back(down_conv_.get());
    out.push_back(down_bn_.get());
  }
  return out;
}

}  // namespace pdnn::nn
