// optimizer.hpp — SGD with momentum (the paper's optimizer on both datasets).
//
// The weight-update step is a Fig. 3c hook site: after w -= lr * v the policy
// re-quantizes the stored weight, so the master copy itself lives in posit
// (the paper keeps no FP32 master copy, unlike Micikevicius et al.). The
// momentum buffer stays FP32 — the paper quantizes the three dataflows of
// Fig. 3, not optimizer state.
#pragma once

#include <vector>

#include "nn/param.hpp"
#include "nn/precision.hpp"

namespace pdnn::nn {

struct SgdConfig {
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
};

class SgdMomentum {
 public:
  SgdMomentum(std::vector<Param*> params, SgdConfig cfg, PrecisionPolicy* policy = nullptr);

  void set_lr(float lr) { cfg_.lr = lr; }
  float lr() const { return cfg_.lr; }

  void zero_grad();
  /// v = mu*v + (g + wd*w);  w -= lr*v;  then Fig. 3c re-quantization.
  void step();

 private:
  std::vector<Param*> params_;
  std::vector<tensor::Tensor> velocity_;
  SgdConfig cfg_;
  PrecisionPolicy* policy_;
};

/// Piecewise-constant learning-rate schedule: divide by `factor` at each
/// listed epoch (the paper divides by 10 at fixed epochs).
struct StepSchedule {
  float base_lr = 0.1f;
  std::vector<std::size_t> drop_epochs;
  float factor = 10.0f;

  float lr_at(std::size_t epoch) const {
    float lr = base_lr;
    for (const auto e : drop_epochs) {
      if (epoch >= e) lr /= factor;
    }
    return lr;
  }
};

}  // namespace pdnn::nn
