// param.hpp — learnable parameter record and tensor-role taxonomy.
//
// The paper applies different posit formats to different tensors (Table III
// footnotes): CONV weights/activations vs BN parameters, forward vs backward.
// LayerClass and TensorRole identify each hook site so a precision policy can
// route every tensor to its (n, es) format and layer-wise scale factor.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "tensor/tensor.hpp"

namespace pdnn::nn {

/// Which family of layer a tensor belongs to (drives the format choice).
enum class LayerClass {
  kConv,    ///< convolution layers: posit(8,1)/(8,2) in the Cifar-10 config
  kBn,      ///< batch-norm layers: posit(16,1)/(16,2) in the Cifar-10 config
  kLinear,  ///< fully-connected layers (treated like CONV by the policy)
};

/// The role a tensor plays in the Fig. 3 dataflow.
enum class TensorRole {
  kWeight,      ///< W   — forward pass & weight update (es = 1 per paper)
  kActivation,  ///< A   — forward pass (es = 1)
  kError,       ///< E   — backward input gradient (es = 2)
  kGradient,    ///< dW  — weight gradient (es = 2)
};

const char* to_string(LayerClass c);
const char* to_string(TensorRole r);

/// Process-wide monotonic counter backing Param::version. Every Param starts
/// at a fresh value, so a (data pointer, version) pair can never collide with
/// an earlier Param that happened to reuse the same allocation.
inline std::uint64_t next_param_version() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}

/// A learnable tensor with its gradient and routing metadata.
struct Param {
  std::string name;            ///< e.g. "stage2.block0.conv1.weight"
  LayerClass layer_class = LayerClass::kConv;
  tensor::Tensor value;
  tensor::Tensor grad;
  bool decay = true;           ///< participates in weight decay (BN params do not)
  std::uint64_t version = next_param_version();  ///< bumped on every value mutation

  void zero_grad() { grad.fill(0.0f); }

  /// Invalidation hook: every code path that rewrites `value` (optimizer
  /// step, checkpoint load, manual surgery) must call this so derived caches
  /// (e.g. the posit inference weight-code cache) refresh their encodings.
  void mark_updated() { version = next_param_version(); }
};

inline const char* to_string(LayerClass c) {
  switch (c) {
    case LayerClass::kConv: return "conv";
    case LayerClass::kBn: return "bn";
    case LayerClass::kLinear: return "linear";
  }
  return "?";
}

inline const char* to_string(TensorRole r) {
  switch (r) {
    case TensorRole::kWeight: return "weight";
    case TensorRole::kActivation: return "activation";
    case TensorRole::kError: return "error";
    case TensorRole::kGradient: return "gradient";
  }
  return "?";
}

}  // namespace pdnn::nn
