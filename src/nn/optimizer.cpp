#include "nn/optimizer.hpp"

namespace pdnn::nn {

SgdMomentum::SgdMomentum(std::vector<Param*> params, SgdConfig cfg, PrecisionPolicy* policy)
    : params_(std::move(params)), cfg_(cfg), policy_(policy) {
  velocity_.reserve(params_.size());
  for (const auto* p : params_) velocity_.emplace_back(p->value.shape());
}

void SgdMomentum::zero_grad() {
  for (auto* p : params_) p->zero_grad();
}

void SgdMomentum::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    tensor::Tensor& v = velocity_[i];
    const float wd = p.decay ? cfg_.weight_decay : 0.0f;
    for (std::size_t j = 0; j < p.value.numel(); ++j) {
      const float g = p.grad[j] + wd * p.value[j];
      v[j] = cfg_.momentum * v[j] + g;
      p.value[j] -= cfg_.lr * v[j];
    }
    if (policy_ != nullptr && policy_->active()) {
      policy_->quantize_updated_weight(p.value, p.name, p.layer_class);
    }
    p.mark_updated();
  }
}

}  // namespace pdnn::nn
