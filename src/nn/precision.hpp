// precision.hpp — the numeric-precision hook interface (Fig. 3 of the paper).
//
// The network calls these hooks at exactly the points where Fig. 3 inserts the
// posit transformation P(.):
//   forward:  W_p = P(W) before the conv;  A_p = P(A) on each layer output
//   backward: E_p = P(E) on the incoming error; dW_p = P(dW) after computing
//   update:   W_p = P(W) on the updated weight
// The default policy is a no-op, i.e. FP32 training (the baseline row of
// Table III). quant/QuantPolicy implements the paper's posit policy.
#pragma once

#include "nn/param.hpp"

namespace pdnn::nn {

class PrecisionPolicy {
 public:
  virtual ~PrecisionPolicy() = default;

  /// False during the FP32 warm-up phase: every hook becomes a no-op.
  virtual bool active() const { return false; }

  /// W_p = P(W / Sf) * Sf applied before forward; the same W_p is reused in
  /// backward (Fig. 3b shows the backward conv consuming W_p).
  virtual tensor::Tensor quantize_weight(const tensor::Tensor& w, const std::string& layer,
                                         LayerClass cls) {
    (void)layer;
    (void)cls;
    return w;
  }

  /// A_p = P(A) applied in place to a layer's output activation.
  virtual void quantize_activation(tensor::Tensor& a, const std::string& layer, LayerClass cls) {
    (void)a;
    (void)layer;
    (void)cls;
  }

  /// E_p = P(E) applied in place to the error entering a layer's backward.
  virtual void quantize_error(tensor::Tensor& e, const std::string& layer, LayerClass cls) {
    (void)e;
    (void)layer;
    (void)cls;
  }

  /// dW_p = P(dW) applied in place to a freshly computed weight gradient.
  virtual void quantize_gradient(tensor::Tensor& g, const std::string& layer, LayerClass cls) {
    (void)g;
    (void)layer;
    (void)cls;
  }

  /// W_p = P(W) applied in place after the optimizer step (Fig. 3c).
  virtual void quantize_updated_weight(tensor::Tensor& w, const std::string& layer, LayerClass cls) {
    (void)w;
    (void)layer;
    (void)cls;
  }
};

/// The FP32 baseline: all hooks no-ops.
class Fp32Policy final : public PrecisionPolicy {};

}  // namespace pdnn::nn
