// module.hpp — base class for differentiable layers.
//
// Modules cache whatever they need in forward() and consume it in backward().
// One module instance processes one batch at a time (no re-entrancy), which is
// all the trainer needs. The shared PrecisionPolicy pointer is injected once
// via set_policy() and threaded through containers.
//
// Containers (Sequential, ResidualBlock) expose their structure through
// children(): params() and set_policy() recurse over it by default, and
// visit() walks the whole module graph pre-order — the traversal the compiled
// inference session (quant::PositSession) uses to bind every layer.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/param.hpp"
#include "nn/precision.hpp"
#include "tensor/tensor.hpp"

namespace pdnn::nn {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Compute the layer output. `training` selects batch statistics vs running
  /// statistics in BN and enables caching for backward.
  virtual tensor::Tensor forward(const tensor::Tensor& x, bool training) = 0;

  /// Propagate the loss gradient; fills parameter .grad (accumulating).
  virtual tensor::Tensor backward(const tensor::Tensor& grad_out) = 0;

  /// Direct submodules in forward order (empty for leaf layers). Pointers
  /// stay owned by this module and valid for its lifetime.
  virtual std::vector<Module*> children() { return {}; }

  /// Pre-order traversal: fn(*this), then every descendant.
  void visit(const std::function<void(Module&)>& fn) {
    fn(*this);
    for (Module* c : children()) c->visit(fn);
  }

  /// All learnable parameters. The default aggregates children() in order;
  /// leaf layers with parameters override.
  virtual std::vector<Param*> params() {
    std::vector<Param*> all;
    for (Module* c : children()) {
      const auto ps = c->params();
      all.insert(all.end(), ps.begin(), ps.end());
    }
    return all;
  }

  /// Inject the precision policy (recursively through children()).
  virtual void set_policy(PrecisionPolicy* policy) {
    policy_ = policy;
    for (Module* c : children()) c->set_policy(policy);
  }

  const std::string& name() const { return name_; }

 protected:
  bool quantizing() const { return policy_ != nullptr && policy_->active(); }

  std::string name_;
  PrecisionPolicy* policy_ = nullptr;  // not owned
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace pdnn::nn
