// module.hpp — base class for differentiable layers.
//
// Modules cache whatever they need in forward() and consume it in backward().
// One module instance processes one batch at a time (no re-entrancy), which is
// all the trainer needs. The shared PrecisionPolicy pointer is injected once
// via set_policy() and threaded through containers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/param.hpp"
#include "nn/precision.hpp"
#include "tensor/tensor.hpp"

namespace pdnn::nn {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Compute the layer output. `training` selects batch statistics vs running
  /// statistics in BN and enables caching for backward.
  virtual tensor::Tensor forward(const tensor::Tensor& x, bool training) = 0;

  /// Propagate the loss gradient; fills parameter .grad (accumulating).
  virtual tensor::Tensor backward(const tensor::Tensor& grad_out) = 0;

  /// All learnable parameters (including those of children).
  virtual std::vector<Param*> params() { return {}; }

  /// Inject the precision policy (recursively for containers).
  virtual void set_policy(PrecisionPolicy* policy) { policy_ = policy; }

  const std::string& name() const { return name_; }

 protected:
  bool quantizing() const { return policy_ != nullptr && policy_->active(); }

  std::string name_;
  PrecisionPolicy* policy_ = nullptr;  // not owned
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace pdnn::nn
