#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>

namespace pdnn::nn {

namespace {

constexpr char kMagicF32[8] = {'P', 'D', 'N', 'N', '0', '0', '0', '1'};
constexpr char kMagicPosit[8] = {'P', 'D', 'N', 'N', 'P', '0', '0', '1'};

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("checkpoint: truncated stream");
  return v;
}

void write_header(std::ostream& os, const char (&magic)[8], std::uint64_t count) {
  os.write(magic, 8);
  write_pod(os, count);
}

void expect_magic(std::istream& is, const char (&magic)[8]) {
  char buf[8];
  is.read(buf, 8);
  if (!is || std::memcmp(buf, magic, 8) != 0) throw std::runtime_error("checkpoint: bad magic");
}

void write_name_shape(std::ostream& os, const Param& p) {
  const auto len = static_cast<std::uint32_t>(p.name.size());
  write_pod(os, len);
  os.write(p.name.data(), len);
  const auto rank = static_cast<std::uint32_t>(p.value.shape().rank());
  write_pod(os, rank);
  for (std::uint32_t d = 0; d < rank; ++d) {
    write_pod(os, static_cast<std::uint64_t>(p.value.shape()[d]));
  }
}

struct NameShape {
  std::string name;
  tensor::Shape shape;
};

NameShape read_name_shape(std::istream& is) {
  NameShape out;
  const auto len = read_pod<std::uint32_t>(is);
  if (len > 4096) throw std::runtime_error("checkpoint: absurd name length");
  out.name.resize(len);
  is.read(out.name.data(), len);
  const auto rank = read_pod<std::uint32_t>(is);
  if (rank > 4) throw std::runtime_error("checkpoint: rank > 4");
  std::size_t dims[4] = {0, 0, 0, 0};
  for (std::uint32_t d = 0; d < rank; ++d) dims[d] = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
  switch (rank) {
    case 0: out.shape = tensor::Shape{}; break;
    case 1: out.shape = tensor::Shape{dims[0]}; break;
    case 2: out.shape = tensor::Shape{dims[0], dims[1]}; break;
    case 3: out.shape = tensor::Shape{dims[0], dims[1], dims[2]}; break;
    default: out.shape = tensor::Shape{dims[0], dims[1], dims[2], dims[3]}; break;
  }
  return out;
}

std::map<std::string, Param*> params_by_name(Sequential& net) {
  std::map<std::string, Param*> map;
  for (Param* p : net.params()) map[p->name] = p;
  return map;
}

}  // namespace

void save_parameters(std::ostream& os, Sequential& net) {
  const auto params = net.params();
  write_header(os, kMagicF32, params.size());
  for (const Param* p : params) {
    write_name_shape(os, *p);
    os.write(reinterpret_cast<const char*>(p->value.data()),
             static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
}

void load_parameters(std::istream& is, Sequential& net) {
  expect_magic(is, kMagicF32);
  const auto count = read_pod<std::uint64_t>(is);
  auto by_name = params_by_name(net);
  if (count != by_name.size()) throw std::runtime_error("checkpoint: parameter count mismatch");
  for (std::uint64_t i = 0; i < count; ++i) {
    const NameShape ns = read_name_shape(is);
    const auto it = by_name.find(ns.name);
    if (it == by_name.end()) throw std::runtime_error("checkpoint: unknown parameter " + ns.name);
    if (it->second->value.shape() != ns.shape) {
      throw std::runtime_error("checkpoint: shape mismatch for " + ns.name);
    }
    is.read(reinterpret_cast<char*>(it->second->value.data()),
            static_cast<std::streamsize>(it->second->value.numel() * sizeof(float)));
    if (!is) throw std::runtime_error("checkpoint: truncated data for " + ns.name);
    it->second->mark_updated();
  }
}

void save_parameters_file(const std::string& path, Sequential& net) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  save_parameters(os, net);
}

void load_parameters_file(const std::string& path, Sequential& net) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  load_parameters(is, net);
}

std::size_t save_parameters_posit(std::ostream& os, Sequential& net, const posit::PositSpec& spec) {
  const auto params = net.params();
  write_header(os, kMagicPosit, params.size());
  std::size_t payload = 0;
  for (const Param* p : params) {
    write_name_shape(os, *p);
    write_pod(os, static_cast<std::uint32_t>(spec.n));
    write_pod(os, static_cast<std::uint32_t>(spec.es));
    const posit::PackedPositTensor packed =
        posit::PackedPositTensor::pack(p->value, spec, posit::RoundMode::kNearestEven);
    const auto bytes = static_cast<std::uint64_t>(packed.byte_size());
    write_pod(os, bytes);
    // Re-encode to a contiguous buffer via code_at for portability.
    std::vector<std::uint8_t> buf(packed.byte_size(), 0);
    for (std::size_t i = 0; i < packed.numel(); ++i) {
      const std::uint32_t code = packed.code_at(i);
      const std::size_t bit0 = i * static_cast<std::size_t>(spec.n);
      for (int b = 0; b < spec.n; ++b) {
        const std::size_t bit = bit0 + static_cast<std::size_t>(b);
        if ((code >> b) & 1u) buf[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
      }
    }
    os.write(reinterpret_cast<const char*>(buf.data()), static_cast<std::streamsize>(buf.size()));
    payload += buf.size();
  }
  return payload;
}

void load_parameters_posit(std::istream& is, Sequential& net) {
  expect_magic(is, kMagicPosit);
  const auto count = read_pod<std::uint64_t>(is);
  auto by_name = params_by_name(net);
  if (count != by_name.size()) throw std::runtime_error("checkpoint: parameter count mismatch");
  for (std::uint64_t i = 0; i < count; ++i) {
    const NameShape ns = read_name_shape(is);
    const auto n = static_cast<int>(read_pod<std::uint32_t>(is));
    const auto es = static_cast<int>(read_pod<std::uint32_t>(is));
    const posit::PositSpec spec{n, es};
    spec.validate();
    const auto bytes = read_pod<std::uint64_t>(is);
    const auto it = by_name.find(ns.name);
    if (it == by_name.end()) throw std::runtime_error("checkpoint: unknown parameter " + ns.name);
    if (it->second->value.shape() != ns.shape) {
      throw std::runtime_error("checkpoint: shape mismatch for " + ns.name);
    }
    posit::PackedPositTensor packed(spec, ns.shape);
    if (bytes != packed.byte_size()) throw std::runtime_error("checkpoint: payload size mismatch");
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(bytes));
    is.read(reinterpret_cast<char*>(buf.data()), static_cast<std::streamsize>(buf.size()));
    if (!is) throw std::runtime_error("checkpoint: truncated posit payload");
    for (std::size_t e = 0; e < packed.numel(); ++e) {
      std::uint32_t code = 0;
      const std::size_t bit0 = e * static_cast<std::size_t>(spec.n);
      for (int b = 0; b < spec.n; ++b) {
        const std::size_t bit = bit0 + static_cast<std::size_t>(b);
        code |= static_cast<std::uint32_t>((buf[bit / 8] >> (bit % 8)) & 1u) << b;
      }
      packed.set_code(e, code);
    }
    it->second->value = packed.unpack();
    it->second->mark_updated();
  }
}

}  // namespace pdnn::nn
