// trainer.hpp — mini-batch SGD training loop with the paper's phase structure:
// an FP32 warm-up for the first `warmup_epochs`, then (if a policy is
// installed) posit-quantized training for the remaining epochs.
#pragma once

#include <functional>
#include <vector>

#include "nn/layers.hpp"
#include "nn/optimizer.hpp"

namespace pdnn::nn {

struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 64;
  SgdConfig sgd;
  StepSchedule schedule;
  std::size_t warmup_epochs = 1;  ///< FP32 epochs before quantization kicks in
  std::uint64_t shuffle_seed = 1;
  bool verbose = false;
  /// Called once when warm-up finishes; wire this to
  /// QuantPolicy::calibrate(net) + activate(). May be empty (pure FP32 run).
  std::function<void(Sequential&)> on_warmup_end;
  /// Called after every epoch (e.g. the Fig. 2 histogram collector).
  std::function<void(std::size_t epoch, Sequential&)> on_epoch_end;
};

struct EpochResult {
  std::size_t epoch = 0;
  float lr = 0.0f;
  float train_loss = 0.0f;
  float train_acc = 0.0f;
  float test_acc = 0.0f;
  bool quantized = false;
};

class Trainer {
 public:
  Trainer(Sequential& net, PrecisionPolicy* policy, TrainConfig cfg);

  /// Full training run. Images are [N,C,H,W] (or [N,D] for MLPs); labels are
  /// class indices. Returns one record per epoch.
  std::vector<EpochResult> fit(const tensor::Tensor& train_x, const std::vector<int>& train_y,
                               const tensor::Tensor& test_x, const std::vector<int>& test_y);

  /// Accuracy of the current network on a dataset (eval mode).
  float evaluate(const tensor::Tensor& x, const std::vector<int>& y, std::size_t batch = 128);

 private:
  tensor::Tensor gather(const tensor::Tensor& x, const std::vector<std::size_t>& idx, std::size_t lo,
                        std::size_t hi) const;

  Sequential& net_;
  PrecisionPolicy* policy_;
  TrainConfig cfg_;
};

}  // namespace pdnn::nn
