#include "nn/resnet.hpp"

namespace pdnn::nn {

std::unique_ptr<Sequential> cifar_resnet(const ResNetConfig& cfg, tensor::Rng& rng) {
  auto net = std::make_unique<Sequential>("resnet");
  const std::size_t c1 = cfg.base_channels, c2 = 2 * c1, c3 = 4 * c1;

  net->add(std::make_unique<Conv2d>("conv1", cfg.in_channels, c1, 3, 1, 1, rng));
  net->add(std::make_unique<BatchNorm2d>("bn1", c1, 1e-5f, cfg.bn_momentum));
  net->add(std::make_unique<ReLU>("relu1"));

  const auto stage = [&](const std::string& name, std::size_t in_c, std::size_t out_c,
                         std::size_t first_stride) {
    for (std::size_t b = 0; b < cfg.blocks_per_stage; ++b) {
      const std::size_t stride = b == 0 ? first_stride : 1;
      const std::size_t ic = b == 0 ? in_c : out_c;
      net->add(std::make_unique<ResidualBlock>(name + ".block" + std::to_string(b), ic, out_c, stride, rng,
                                               cfg.bn_momentum));
    }
  };
  stage("stage1", c1, c1, 1);
  stage("stage2", c1, c2, 2);
  stage("stage3", c2, c3, 2);

  net->add(std::make_unique<GlobalAvgPool>("gap"));
  net->add(std::make_unique<Linear>("fc", c3, cfg.classes, rng));
  return net;
}

std::unique_ptr<Sequential> plain_cnn(std::size_t base_channels, std::size_t classes, tensor::Rng& rng) {
  auto net = std::make_unique<Sequential>("plaincnn");
  const std::size_t c1 = base_channels, c2 = 2 * base_channels;
  net->add(std::make_unique<Conv2d>("conv1", 3, c1, 3, 1, 1, rng));
  net->add(std::make_unique<BatchNorm2d>("bn1", c1));
  net->add(std::make_unique<ReLU>("relu1"));
  net->add(std::make_unique<MaxPool2x2>("pool1"));
  net->add(std::make_unique<Conv2d>("conv2", c1, c2, 3, 1, 1, rng));
  net->add(std::make_unique<BatchNorm2d>("bn2", c2));
  net->add(std::make_unique<ReLU>("relu2"));
  net->add(std::make_unique<GlobalAvgPool>("gap"));
  net->add(std::make_unique<Linear>("fc", c2, classes, rng));
  return net;
}

std::unique_ptr<Sequential> mlp(std::size_t in_features, std::size_t hidden, std::size_t classes,
                                std::size_t depth, tensor::Rng& rng) {
  auto net = std::make_unique<Sequential>("mlp");
  std::size_t prev = in_features;
  for (std::size_t d = 0; d < depth; ++d) {
    net->add(std::make_unique<Linear>("fc" + std::to_string(d), prev, hidden, rng));
    net->add(std::make_unique<ReLU>("relu" + std::to_string(d)));
    prev = hidden;
  }
  net->add(std::make_unique<Linear>("head", prev, classes, rng));
  return net;
}

}  // namespace pdnn::nn
