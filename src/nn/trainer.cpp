#include "nn/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>

#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace pdnn::nn {

using tensor::Shape;
using tensor::Tensor;

Trainer::Trainer(Sequential& net, PrecisionPolicy* policy, TrainConfig cfg)
    : net_(net), policy_(policy), cfg_(std::move(cfg)) {
  net_.set_policy(policy_);
}

Tensor Trainer::gather(const Tensor& x, const std::vector<std::size_t>& idx, std::size_t lo,
                       std::size_t hi) const {
  const std::size_t count = hi - lo;
  const std::size_t row = x.numel() / x.shape()[0];
  Shape s;
  if (x.shape().rank() == 4) {
    s = Shape{count, x.shape()[1], x.shape()[2], x.shape()[3]};
  } else {
    s = Shape{count, x.shape()[1]};
  }
  Tensor out(s);
  for (std::size_t i = 0; i < count; ++i) {
    std::memcpy(out.data() + i * row, x.data() + idx[lo + i] * row, row * sizeof(float));
  }
  return out;
}

std::vector<EpochResult> Trainer::fit(const Tensor& train_x, const std::vector<int>& train_y,
                                      const Tensor& test_x, const std::vector<int>& test_y) {
  const std::size_t n = train_x.shape()[0];
  SgdMomentum opt(net_.params(), cfg_.sgd, policy_);
  tensor::Rng shuffle_rng(cfg_.shuffle_seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  std::vector<EpochResult> history;
  bool warmup_done = cfg_.warmup_epochs == 0;
  if (warmup_done && cfg_.on_warmup_end) cfg_.on_warmup_end(net_);

  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    if (!warmup_done && epoch >= cfg_.warmup_epochs) {
      warmup_done = true;
      if (cfg_.on_warmup_end) cfg_.on_warmup_end(net_);
    }
    const float lr = cfg_.schedule.lr_at(epoch);
    opt.set_lr(lr);

    // Fisher-Yates shuffle.
    for (std::size_t i = n - 1; i > 0; --i) {
      std::swap(order[i], order[shuffle_rng.uniform_int(i + 1)]);
    }

    double loss_sum = 0.0;
    std::size_t correct = 0, seen = 0;
    for (std::size_t lo = 0; lo < n; lo += cfg_.batch_size) {
      const std::size_t hi = std::min(n, lo + cfg_.batch_size);
      Tensor bx = gather(train_x, order, lo, hi);
      std::vector<int> by(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) by[i - lo] = train_y[order[i]];

      opt.zero_grad();
      Tensor logits = net_.forward(bx, /*training=*/true);
      Tensor dlogits;
      const float loss = tensor::cross_entropy(logits, by, &dlogits);
      net_.backward(dlogits);
      opt.step();

      loss_sum += static_cast<double>(loss) * static_cast<double>(hi - lo);
      correct += tensor::count_correct(logits, by);
      seen += hi - lo;
    }

    EpochResult r;
    r.epoch = epoch;
    r.lr = lr;
    r.train_loss = static_cast<float>(loss_sum / static_cast<double>(seen));
    r.train_acc = static_cast<float>(correct) / static_cast<float>(seen);
    r.test_acc = evaluate(test_x, test_y);
    r.quantized = policy_ != nullptr && policy_->active();
    history.push_back(r);

    if (cfg_.verbose) {
      std::printf("epoch %3zu  lr %.4f  loss %.4f  train %.4f  test %.4f%s\n", epoch, lr, r.train_loss,
                  r.train_acc, r.test_acc, r.quantized ? "  [posit]" : "  [fp32]");
      std::fflush(stdout);
    }
    if (cfg_.on_epoch_end) cfg_.on_epoch_end(epoch, net_);
  }
  return history;
}

float Trainer::evaluate(const Tensor& x, const std::vector<int>& y, std::size_t batch) {
  const std::size_t n = x.shape()[0];
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::size_t correct = 0;
  for (std::size_t lo = 0; lo < n; lo += batch) {
    const std::size_t hi = std::min(n, lo + batch);
    Tensor bx = gather(x, idx, lo, hi);
    std::vector<int> by(y.begin() + static_cast<long>(lo), y.begin() + static_cast<long>(hi));
    Tensor logits = net_.forward(bx, /*training=*/false);
    correct += tensor::count_correct(logits, by);
  }
  return static_cast<float>(correct) / static_cast<float>(n);
}

}  // namespace pdnn::nn
