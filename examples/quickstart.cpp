// quickstart — a five-minute tour of the library's public API:
// posit values, the quire, Algorithm 1 quantization, and scaling (Eq. 2/3).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "exec/float_backend.hpp"
#include "nn/resnet.hpp"
#include "posit/math.hpp"
#include "posit/posit.hpp"
#include "posit/quire.hpp"
#include "posit/tables.hpp"
#include "quant/posit_session.hpp"
#include "quant/posit_transform.hpp"
#include "quant/scale.hpp"

int main() {
  using namespace pdnn;

  // --- 1. posit values behave like numbers --------------------------------
  using posit::Posit16_1;
  const Posit16_1 a{3.25}, b{-0.125};
  std::printf("a = %g, b = %g\n", a.value(), b.value());
  std::printf("a+b = %g, a*b = %g, a/b = %g, sqrt(a) = %g\n", (a + b).value(), (a * b).value(),
              (a / b).value(), posit::sqrt(a).value());
  std::printf("posit(16,1): maxpos = %g, minpos = %g\n\n", Posit16_1::maxpos().value(),
              Posit16_1::minpos().value());

  // --- 2. tapered precision: dense near 1, sparse at the extremes ----------
  const posit::PositSpec p81{8, 1};
  std::printf("posit(8,1) neighbors of 1.0:   %g  1.0  %g\n",
              posit::to_double(posit::from_double(1.0, p81) - 1, p81),
              posit::to_double(posit::from_double(1.0, p81) + 1, p81));
  std::printf("posit(8,1) neighbors of 256:   %g  256  %g\n\n",
              posit::to_double(posit::from_double(256.0, p81) - 1, p81),
              posit::to_double(posit::from_double(256.0, p81) + 1, p81));

  // --- 3. the quire: exact dot products ------------------------------------
  posit::Quire q(p81);
  q.add_product(posit::from_double(100.0, p81), posit::from_double(1.0, p81));
  q.add_posit(p81.minpos_code());                              // tiny term
  q.sub_product(posit::from_double(100.0, p81), posit::from_double(1.0, p81));
  std::printf("quire of 100*1 + minpos - 100*1 = %g (exactly minpos = %g)\n\n", q.to_double(),
              posit::minpos_value(p81));

  // --- 4. Algorithm 1: the paper's quantization operator -------------------
  const float x = 0.0137f;
  std::printf("P_{8,1}(%g) = %g (round toward zero)\n", x, quant::posit_transform(x, p81));

  // --- 5. Eq. (2)/(3): layer-wise scaling ----------------------------------
  tensor::Rng rng(1);
  tensor::Tensor w = tensor::Tensor::randn({1000}, rng, 0.01f);
  const int shift = quant::scale_shift(w);  // center + sigma
  std::printf("tensor with stddev 0.01: Eq.2 shift = %d (Sf = 2^%d)\n", shift, shift);
  std::printf("P(x) alone:      %g -> %g\n", static_cast<double>(w[0]),
              static_cast<double>(quant::posit_transform(w[0], p81)));
  std::printf("P(x/Sf)*Sf:      %g -> %g  (finer grid where the data lives)\n",
              static_cast<double>(w[0]),
              static_cast<double>(quant::posit_transform_scaled(w[0], p81, shift)));

  // --- 6. compiled inference: one ExecPlan, pluggable backends -------------
  // exec::GraphBuilder lowers the module graph once into a linearized plan,
  // the ArenaPlanner folds every intermediate tensor onto a few reusable
  // buffers, and each backend executes that same plan allocation-free:
  // PositSession in true posit arithmetic, FloatBackend on the blocked FP32
  // GEMM path.
  auto net = nn::cifar_resnet({/*blocks_per_stage=*/1, /*base_channels=*/4}, rng);
  net->forward(tensor::Tensor::randn({2, 3, 8, 8}, rng), /*training=*/true);  // settle BN stats
  quant::SessionConfig scfg;
  scfg.spec = {16, 1};                      // default format
  scfg.mode = quant::AccumMode::kQuire;     // exact dots, one rounding each
  scfg.by_name["fc"] = {posit::PositSpec{16, 2}, {}};  // per-layer override
  quant::PositSession session = quant::PositSession::compile(*net, scfg);
  const tensor::Tensor xin = tensor::Tensor::randn({2, 3, 8, 8}, rng);
  const tensor::Tensor& logits = session.run(xin);
  std::printf("\nPositSession over ResNet-8: %zu steps, %zu bound params, logits %s, l[0,0] = %g\n",
              session.steps(), session.bound_params(), logits.shape().to_string().c_str(),
              static_cast<double>(logits.at(0, 0)));
  std::printf("%s", session.plan().dump(session.arena_bytes()).c_str());

  // The float backend compiles the identical graph — compile once, run many,
  // zero steady-state allocations, bit-identical to nn::Module::forward.
  exec::FloatBackend fp32 = exec::FloatBackend::compile(*net);
  const tensor::Tensor& flogits = fp32.run(xin);
  std::printf("FloatBackend over the same plan: logits %s, l[0,0] = %g, arena %zu bytes\n",
              flogits.shape().to_string().c_str(), static_cast<double>(flogits.at(0, 0)),
              fp32.arena_bytes());
  return 0;
}
