// hw_explorer — sweeps posit formats through the gate-level MAC model and
// prints a cost landscape (delay / area / power / energy-per-MAC), the kind
// of design-space exploration the paper's Section IV enables.
//
// Usage: hw_explorer [freq_mhz]
#include <cstdio>
#include <cstdlib>

#include "hw/analysis.hpp"
#include "hw/posit_mac.hpp"

int main(int argc, char** argv) {
  using namespace pdnn::hw;
  const double freq = argc > 1 ? std::atof(argv[1]) : 750.0;

  std::printf("posit MAC design space @ %.0f MHz (paper-optimized codec)\n\n", freq);
  std::printf("%-12s %8s %10s %10s %10s %12s\n", "format", "gates", "delay(ns)", "area(um2)", "power(mW)",
              "energy(pJ)");

  const Netlist fp32 = make_fp_mac_netlist(FpFormat{10, 23});
  const CircuitReport fp32_r = characterize(fp32, "fp32", freq, 800);
  std::printf("%-12s %8zu %10.3f %10.0f %10.2f %12.3f   (baseline)\n", "FP32", fp32_r.gates,
              fp32_r.delay_ns, fp32_r.area_um2, fp32_r.power_mw, fp32_r.power_mw / freq * 1e3);

  for (const int n : {8, 12, 16, 24, 32}) {
    for (const int es : {0, 1, 2, 3}) {
      if (es >= n - 4) continue;
      const PositHwSpec spec{n, es};
      const Netlist mac = make_posit_mac_netlist(spec, /*optimized=*/true);
      const CircuitReport r = characterize(mac, "mac", freq, 800);
      std::printf("posit(%2d,%d)  %8zu %10.3f %10.0f %10.2f %12.3f\n", n, es, r.gates, r.delay_ns,
                  r.area_um2, r.power_mw, r.power_mw / freq * 1e3);
    }
  }

  std::printf("\noriginal-[6] vs paper-optimized codec at posit(16,1):\n");
  for (const bool opt : {false, true}) {
    const MacDelayBreakdown b = posit_mac_delay_breakdown(PositHwSpec{16, 1}, opt);
    std::printf("  %-9s decoder %.3f ns, fp-core %.3f ns, encoder %.3f ns, MAC total %.3f ns\n",
                opt ? "optimized" : "original", b.decoder_ns, b.fp_mac_ns, b.encoder_ns, b.total_ns);
  }
  return 0;
}
