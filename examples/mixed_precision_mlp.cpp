// mixed_precision_mlp — trains an MLP on the 3-arm spiral dataset under
// several numeric policies and prints a side-by-side comparison. Shows how to
// assemble a custom QuantConfig (formats, sigma, rounding) for non-CNN models.
#include <cstdio>

#include "data/synthetic.hpp"
#include "nn/resnet.hpp"
#include "nn/trainer.hpp"
#include "quant/policy.hpp"

namespace {

using namespace pdnn;

float train_once(const data::TrainTest& data, const quant::QuantConfig* cfg, std::uint64_t seed) {
  tensor::Rng rng(seed);
  auto net = nn::mlp(/*in=*/2, /*hidden=*/32, /*classes=*/3, /*depth=*/2, rng);

  std::unique_ptr<quant::QuantPolicy> policy;
  nn::TrainConfig tc;
  tc.epochs = 60;
  tc.batch_size = 32;
  tc.sgd = {.lr = 0.1f, .momentum = 0.9f, .weight_decay = 0.0f};
  tc.schedule = {.base_lr = 0.1f, .drop_epochs = {45}, .factor = 10.0f};
  tc.warmup_epochs = cfg != nullptr ? 2 : 0;
  tc.shuffle_seed = seed;
  if (cfg != nullptr) {
    policy = std::make_unique<quant::QuantPolicy>(*cfg);
    quant::QuantPolicy* raw = policy.get();
    tc.on_warmup_end = [raw](nn::Sequential& n) {
      raw->calibrate(n);
      raw->activate();
    };
  }
  nn::Trainer trainer(*net, policy.get(), tc);
  const auto hist = trainer.fit(data.train.images, data.train.labels, data.test.images, data.test.labels);
  return hist.back().test_acc;
}

}  // namespace

int main() {
  const auto data = data::make_spirals(/*arms=*/3, /*per_arm=*/200, /*noise=*/0.06f, /*seed=*/11);
  std::printf("3-arm spirals, MLP 2-32-32-3, 60 epochs\n\n");

  std::printf("%-36s %s\n", "policy", "test accuracy");
  std::printf("%-36s %.2f%%\n", "FP32", 100.0 * train_once(data, nullptr, 5));

  quant::QuantConfig p16 = quant::QuantConfig::imagenet16();
  std::printf("%-36s %.2f%%\n", "posit16 (paper ImageNet config)", 100.0 * train_once(data, &p16, 5));

  quant::QuantConfig p8 = quant::QuantConfig::cifar8();
  std::printf("%-36s %.2f%%\n", "posit8 CONV-style (linear layers)", 100.0 * train_once(data, &p8, 5));

  quant::QuantConfig p8ne = p8;
  p8ne.round_mode = posit::RoundMode::kNearestEven;
  std::printf("%-36s %.2f%%\n", "posit8, nearest-even rounding", 100.0 * train_once(data, &p8ne, 5));

  quant::QuantConfig p8ns = p8;
  p8ns.scale_mode = quant::ScaleMode::kNone;
  std::printf("%-36s %.2f%%\n", "posit8, no Eq.2 shifting", 100.0 * train_once(data, &p8ns, 5));

  std::printf(
      "\nnote: unlike the paper's conv-BN networks, this MLP has no BatchNorm to absorb\n"
      "the systematic shrinkage of round-toward-zero, so 8-bit posit training needs\n"
      "nearest-even rounding here; 16-bit posit matches FP32 either way.\n");
  return 0;
}
