// mixed_precision_mlp — trains an MLP on the 3-arm spiral dataset under
// several numeric policies and prints a side-by-side comparison, then serves
// the trained model through a compiled quant::PositSession in true posit
// arithmetic — including genuinely mixed per-layer formats via SessionConfig
// overrides. Shows how to assemble a custom QuantConfig (formats, sigma,
// rounding) for non-CNN models and how to migrate inference onto the session.
#include <cstdio>
#include <memory>

#include "data/synthetic.hpp"
#include "nn/resnet.hpp"
#include "nn/trainer.hpp"
#include "quant/policy.hpp"
#include "quant/posit_session.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace pdnn;

struct Trained {
  std::unique_ptr<nn::Sequential> net;
  float test_acc = 0.0f;
};

Trained train_once(const data::TrainTest& data, const quant::QuantConfig* cfg, std::uint64_t seed) {
  tensor::Rng rng(seed);
  Trained t;
  t.net = nn::mlp(/*in=*/2, /*hidden=*/32, /*classes=*/3, /*depth=*/2, rng);

  std::unique_ptr<quant::QuantPolicy> policy;
  nn::TrainConfig tc;
  tc.epochs = 60;
  tc.batch_size = 32;
  tc.sgd = {.lr = 0.1f, .momentum = 0.9f, .weight_decay = 0.0f};
  tc.schedule = {.base_lr = 0.1f, .drop_epochs = {45}, .factor = 10.0f};
  tc.warmup_epochs = cfg != nullptr ? 2 : 0;
  tc.shuffle_seed = seed;
  if (cfg != nullptr) {
    policy = std::make_unique<quant::QuantPolicy>(*cfg);
    quant::QuantPolicy* raw = policy.get();
    tc.on_warmup_end = [raw](nn::Sequential& n) {
      raw->calibrate(n);
      raw->activate();
    };
  }
  nn::Trainer trainer(*t.net, policy.get(), tc);
  const auto hist = trainer.fit(data.train.images, data.train.labels, data.test.images, data.test.labels);
  t.test_acc = hist.back().test_acc;
  return t;
}

}  // namespace

int main() {
  const auto data = data::make_spirals(/*arms=*/3, /*per_arm=*/200, /*noise=*/0.06f, /*seed=*/11);
  std::printf("3-arm spirals, MLP 2-32-32-3, 60 epochs\n\n");

  std::printf("%-36s %s\n", "policy", "test accuracy");
  std::printf("%-36s %.2f%%\n", "FP32", 100.0 * train_once(data, nullptr, 5).test_acc);

  quant::QuantConfig p16 = quant::QuantConfig::imagenet16();
  std::printf("%-36s %.2f%%\n", "posit16 (paper ImageNet config)",
              100.0 * train_once(data, &p16, 5).test_acc);

  quant::QuantConfig p8 = quant::QuantConfig::cifar8();
  std::printf("%-36s %.2f%%\n", "posit8 CONV-style (linear layers)",
              100.0 * train_once(data, &p8, 5).test_acc);

  quant::QuantConfig p8ne = p8;
  p8ne.round_mode = posit::RoundMode::kNearestEven;
  Trained best = train_once(data, &p8ne, 5);
  std::printf("%-36s %.2f%%\n", "posit8, nearest-even rounding", 100.0 * best.test_acc);

  quant::QuantConfig p8ns = p8;
  p8ns.scale_mode = quant::ScaleMode::kNone;
  std::printf("%-36s %.2f%%\n", "posit8, no Eq.2 shifting",
              100.0 * train_once(data, &p8ns, 5).test_acc);

  std::printf(
      "\nnote: unlike the paper's conv-BN networks, this MLP has no BatchNorm to absorb\n"
      "the systematic shrinkage of round-toward-zero, so 8-bit posit training needs\n"
      "nearest-even rounding here; 16-bit posit matches FP32 either way.\n");

  // --- serve the posit8-trained model in TRUE posit arithmetic -------------
  // The training above *simulates* posit numerics in FP32; a compiled
  // PositSession executes the real thing. Per-layer overrides mix formats:
  // the hidden layers stay at posit(8,1) while only the classifier head —
  // where logit margins are decided — gets posit(16,1).
  const auto session_acc = [&](const quant::SessionConfig& cfg) {
    quant::PositSession session = quant::PositSession::compile(*best.net, cfg);
    const tensor::Tensor& logits = session.run(data.test.images);
    return 100.0 * static_cast<double>(tensor::count_correct(logits, data.test.labels)) /
           static_cast<double>(data.test.labels.size());
  };
  quant::SessionConfig u8;
  u8.spec = {8, 1};
  u8.mode = quant::AccumMode::kQuire;
  quant::SessionConfig mixed = u8;
  mixed.by_name["head"] = {posit::PositSpec{16, 1}, {}};
  quant::SessionConfig u16 = u8;
  u16.spec = {16, 1};

  std::printf("\ntrue posit inference of the posit8-trained model (PositSession, quire):\n");
  std::printf("%-36s %.2f%%\n", "all layers posit(8,1)", session_acc(u8));
  std::printf("%-36s %.2f%%\n", "mixed: head overridden to (16,1)", session_acc(mixed));
  std::printf("%-36s %.2f%%\n", "all layers posit(16,1)", session_acc(u16));
  return 0;
}
