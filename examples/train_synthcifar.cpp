// train_synthcifar — end-to-end posit training on the synthetic Cifar-like
// task, following the paper's full recipe (Section III): FP32 warm-up,
// per-dataflow posit formats, layer-wise scaling.
//
// Usage: train_synthcifar [epochs] [fp32|posit8|posit16]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "data/synthetic.hpp"
#include "nn/resnet.hpp"
#include "nn/trainer.hpp"
#include "quant/policy.hpp"

int main(int argc, char** argv) {
  using namespace pdnn;
  const std::size_t epochs = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 10;
  const char* mode = argc > 2 ? argv[2] : "posit8";

  // Dataset: 10-class procedural images (stand-in for Cifar-10).
  data::SynthCifarConfig dc;
  dc.classes = 10;
  dc.train_per_class = 100;
  dc.test_per_class = 30;
  dc.height = dc.width = 16;
  const auto data = data::make_synth_cifar(dc);

  // Model: Cifar-ResNet topology (He et al.), scaled to ResNet-8.
  tensor::Rng rng(42);
  nn::ResNetConfig rc;
  rc.blocks_per_stage = 1;
  rc.base_channels = 8;
  auto net = nn::cifar_resnet(rc, rng);

  // Precision policy per Table III.
  std::unique_ptr<quant::QuantPolicy> policy;
  if (std::strcmp(mode, "posit8") == 0) {
    policy = std::make_unique<quant::QuantPolicy>(quant::QuantConfig::cifar8());
  } else if (std::strcmp(mode, "posit16") == 0) {
    policy = std::make_unique<quant::QuantPolicy>(quant::QuantConfig::imagenet16());
  } else if (std::strcmp(mode, "fp32") != 0) {
    std::fprintf(stderr, "unknown mode '%s' (use fp32|posit8|posit16)\n", mode);
    return 1;
  }

  nn::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 50;
  tc.sgd = {.lr = 0.1f, .momentum = 0.9f, .weight_decay = 1e-4f};
  tc.schedule = {.base_lr = 0.1f, .drop_epochs = {epochs * 3 / 5, epochs * 4 / 5}, .factor = 10.0f};
  tc.warmup_epochs = policy ? 1 : 0;  // paper: 1 warm-up epoch on Cifar-10
  tc.verbose = true;
  if (policy) {
    quant::QuantPolicy* raw = policy.get();
    tc.on_warmup_end = [raw](nn::Sequential& n) {
      raw->calibrate(n);
      raw->activate();
    };
  }

  std::printf("training ResNet-8 on synth-Cifar-10 in mode '%s' for %zu epochs\n", mode, epochs);
  nn::Trainer trainer(*net, policy.get(), tc);
  const auto hist = trainer.fit(data.train.images, data.train.labels, data.test.images, data.test.labels);

  std::printf("\nfinal test accuracy: %.2f%%\n", 100.0 * hist.back().test_acc);
  if (policy) {
    std::printf("posit transforms performed: %zu\n", policy->transforms_performed());
  }
  return 0;
}
