// export_verilog — writes the paper's optimized posit(16,1) decoder, encoder
// and full MAC as synthesizable structural Verilog, so the gate-level model
// can be taken into a real FPGA/ASIC flow.
//
// Usage: export_verilog [n] [es] [output_dir]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "hw/posit_mac.hpp"
#include "hw/verilog_export.hpp"

int main(int argc, char** argv) {
  using namespace pdnn::hw;
  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  const int es = argc > 2 ? std::atoi(argv[2]) : 1;
  const std::string dir = argc > 3 ? argv[3] : "/tmp";
  const PositHwSpec spec{n, es};
  const std::string tag = "posit" + std::to_string(n) + "_" + std::to_string(es);

  const auto emit = [&](const std::string& name, const Netlist& nl) {
    const std::string path = dir + "/" + name + ".v";
    std::ofstream os(path);
    os << to_verilog(nl, name);
    std::printf("wrote %-34s %6zu gates  %8.0f um2\n", path.c_str(), nl.gate_count(),
                nl.total_area_um2());
  };
  emit(tag + "_decoder_opt", make_decoder_netlist(spec, true));
  emit(tag + "_decoder_orig", make_decoder_netlist(spec, false));
  emit(tag + "_encoder_opt", make_encoder_netlist(spec, true));
  emit(tag + "_encoder_orig", make_encoder_netlist(spec, false));
  emit(tag + "_mac_opt", make_posit_mac_netlist(spec, true));
  return 0;
}
