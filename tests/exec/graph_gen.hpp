// graph_gen.hpp — randomized module graphs for exec-layer tests: nested
// Sequential containers, ResidualBlock with and without downsample, conv/BN/
// ReLU/pool interleavings, and a pooled classifier head. The generator
// tracks shapes so every sampled graph is runnable, and warms BN running
// statistics with a training forward so eval-mode outputs are nontrivial.
#pragma once

#include <memory>
#include <string>

#include "nn/layers.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace pdnn::exec_test {

struct RandomNet {
  std::unique_ptr<nn::Sequential> net;
  tensor::Shape input_shape;  // per-sample shape with batch dim N at [0]
};

/// A random CNN: stem conv, then a mix of conv/bn/relu/maxpool/residual
/// blocks (some inside nested Sequentials), then GAP + linear head.
inline RandomNet random_cnn(tensor::Rng& rng, std::size_t batch) {
  auto net = std::make_unique<nn::Sequential>("net");
  std::size_t c = 1 + rng.uniform_int(3);   // input channels 1..3
  std::size_t hw = 8;                        // spatial size tracks pooling
  const std::size_t in_c = c;
  int layer = 0;
  const auto name = [&](const char* base) { return std::string(base) + std::to_string(layer++); };

  const std::size_t blocks = 2 + rng.uniform_int(4);  // 2..5 feature blocks
  nn::Sequential* dst = net.get();
  std::unique_ptr<nn::Sequential> nested;
  for (std::size_t bi = 0; bi < blocks; ++bi) {
    // Occasionally open a nested Sequential to exercise container flattening.
    if (nested == nullptr && rng.uniform_int(3) == 0) {
      nested = std::make_unique<nn::Sequential>(name("group"));
      dst = nested.get();
    }
    const std::size_t pick = rng.uniform_int(4);
    if (pick == 0) {
      const std::size_t oc = 2 + rng.uniform_int(6);
      const std::size_t stride = rng.uniform_int(2) == 0 && hw >= 4 ? 2 : 1;
      dst->add(std::make_unique<nn::ResidualBlock>(name("res"), c, oc, stride, rng));
      c = oc;
      if (stride == 2) hw = (hw - 1) / 2 + 1;
    } else if (pick == 1) {
      const std::size_t oc = 2 + rng.uniform_int(6);
      const bool bias = rng.uniform_int(2) == 0;
      dst->add(std::make_unique<nn::Conv2d>(name("conv"), c, oc, 3, 1, 1, rng, bias));
      c = oc;
      if (rng.uniform_int(2) == 0) dst->add(std::make_unique<nn::BatchNorm2d>(name("bn"), c));
      dst->add(std::make_unique<nn::ReLU>(name("relu")));
    } else if (pick == 2 && hw >= 4 && hw % 2 == 0) {
      dst->add(std::make_unique<nn::MaxPool2x2>(name("pool")));
      hw /= 2;
    } else {
      dst->add(std::make_unique<nn::BatchNorm2d>(name("bn"), c));
      dst->add(std::make_unique<nn::ReLU>(name("relu")));
    }
    if (nested != nullptr && rng.uniform_int(2) == 0) {
      net->add(std::move(nested));
      dst = net.get();
    }
  }
  if (nested != nullptr) net->add(std::move(nested));
  net->add(std::make_unique<nn::GlobalAvgPool>("gap"));
  net->add(std::make_unique<nn::Linear>("head", c, 2 + rng.uniform_int(6), rng));

  // Warm BN running statistics so eval mode has nontrivial constants.
  const tensor::Tensor warm = tensor::Tensor::randn({4, in_c, 8, 8}, rng);
  net->forward(warm, /*training=*/true);
  net->forward(warm, /*training=*/true);
  return {std::move(net), tensor::Shape{batch, in_c, 8, 8}};
}

}  // namespace pdnn::exec_test
