// arena_planner_test.cpp — lifetime/buffer correctness of the ExecPlan
// planner: slot lifetimes match the dataflow, in-place marking is restricted
// to elementwise steps whose input dies there, and the linear-scan buffer
// assignment never lets two live slots share storage (replayed as an
// ownership simulation over hand-built and randomized graphs).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "exec/graph_builder.hpp"
#include "graph_gen.hpp"
#include "nn/resnet.hpp"

namespace pdnn::exec {
namespace {

using tensor::Rng;

/// Replay the plan and assert the arena discipline: a step's output buffer is
/// either freshly free (its previous occupant's last reader has run) or, for
/// in-place steps, exactly its input's buffer; and every input a step reads
/// is still owned by the slot that defined it (never clobbered).
void check_arena_discipline(const ExecPlan& p) {
  std::vector<int> owner(p.num_buffers, -1);  // buffer -> occupying slot
  for (int i = 0; i < static_cast<int>(p.steps.size()); ++i) {
    const Step& s = p.steps[static_cast<std::size_t>(i)];
    for (const int in : {s.in0, s.in1}) {
      if (in < 0 || in == p.input_slot) continue;
      const int b = p.slots[static_cast<std::size_t>(in)].buffer;
      ASSERT_GE(b, 0);
      EXPECT_EQ(owner[static_cast<std::size_t>(b)], in)
          << "step " << i << " (" << s.name << ") reads slot " << in
          << " whose buffer was reassigned";
    }
    const int ob = p.slots[static_cast<std::size_t>(s.out)].buffer;
    ASSERT_GE(ob, 0);
    ASSERT_LT(ob, static_cast<int>(p.num_buffers));
    const int prev = owner[static_cast<std::size_t>(ob)];
    if (s.in_place) {
      EXPECT_EQ(prev, s.in0) << "in-place step " << i << " must reuse its input's buffer";
      EXPECT_TRUE(s.op == OpKind::kRelu || s.op == OpKind::kBatchNorm);
      EXPECT_EQ(p.slots[static_cast<std::size_t>(s.in0)].last_use, i)
          << "in-place input must die at the step";
    } else if (prev >= 0) {
      EXPECT_LT(p.slots[static_cast<std::size_t>(prev)].last_use, i)
          << "step " << i << " (" << s.name << ") overwrites live slot " << prev;
    }
    owner[static_cast<std::size_t>(ob)] = s.out;
  }
  // The caller reads the output after the run: its buffer must still be owned.
  const int outb = p.slots[static_cast<std::size_t>(p.output_slot)].buffer;
  if (outb >= 0) {
    EXPECT_EQ(owner[static_cast<std::size_t>(outb)], p.output_slot);
  }
}

void check_lifetimes(const ExecPlan& p) {
  for (std::size_t si = 0; si < p.slots.size(); ++si) {
    const Slot& slot = p.slots[si];
    int last = slot.def_step;
    for (int i = 0; i < static_cast<int>(p.steps.size()); ++i) {
      const Step& s = p.steps[static_cast<std::size_t>(i)];
      if (s.in0 == static_cast<int>(si) || s.in1 == static_cast<int>(si)) last = i;
    }
    if (static_cast<int>(si) == p.output_slot) {
      EXPECT_EQ(slot.last_use, static_cast<int>(p.steps.size())) << "output slot never dies";
    } else {
      EXPECT_EQ(slot.last_use, last) << "slot " << si;
    }
  }
}

TEST(ArenaPlanner, MlpChainsReuseTwoBuffers) {
  Rng rng(11);
  auto net = nn::mlp(6, 10, 3, 3, rng);  // fc/relu alternation
  const ExecPlan p = GraphBuilder::lower(*net, PlanOptions::none());
  check_lifetimes(p);
  check_arena_discipline(p);
  // A pure chain with in-place ReLUs ping-pongs between two buffers at most.
  EXPECT_LE(p.num_buffers, 2u);
  EXPECT_GT(p.in_place_steps(), 0u);
  EXPECT_GT(p.reused_slots(), 0u);
}

TEST(ArenaPlanner, FusedMlpChainHasNoReluStepsAndStillPingPongs) {
  Rng rng(11);
  auto net = nn::mlp(6, 10, 3, 3, rng);
  PlanOptions fuse;  // defaults: fuse_epilogues on
  const ExecPlan p = GraphBuilder::lower(*net, fuse);
  check_lifetimes(p);
  check_arena_discipline(p);
  // Every ReLU rides a linear epilogue now: only kLinear steps remain, each
  // hidden one marked +relu, and the chain still fits two buffers.
  for (const Step& s : p.steps) EXPECT_EQ(s.op, OpKind::kLinear);
  EXPECT_GT(p.steps.size(), 1u);
  for (std::size_t i = 0; i + 1 < p.steps.size(); ++i) EXPECT_TRUE(p.steps[i].epilogue.relu);
  EXPECT_FALSE(p.steps.back().epilogue.relu);  // the head has no trailing ReLU
  EXPECT_LE(p.num_buffers, 2u);
}

TEST(ArenaPlanner, ResidualSkipExtendsInputLifetime) {
  Rng rng(13);
  nn::ResidualBlock block("b", 4, 4, 1, rng);  // identity skip
  const ExecPlan p = GraphBuilder::lower(block);
  check_lifetimes(p);
  check_arena_discipline(p);
  // Identity skip: the join reads the plan input directly.
  const Step& join = p.steps.back();
  ASSERT_EQ(join.op, OpKind::kResidualJoin);
  EXPECT_EQ(join.in1, p.input_slot);
  EXPECT_EQ(p.top_level_steps, 1u);
  // The first conv may not execute in place into the caller's input.
  EXPECT_FALSE(p.steps.front().in_place);
}

TEST(ArenaPlanner, DownsampleBranchBuffersStayLiveAcrossMainBranch) {
  Rng rng(17);
  nn::ResNetConfig rc;
  rc.blocks_per_stage = 2;
  rc.base_channels = 4;
  auto net = nn::cifar_resnet(rc, rng);
  const ExecPlan p = GraphBuilder::lower(*net);
  check_lifetimes(p);
  check_arena_discipline(p);
  // Deep graph, small arena: lifetime folding must beat one-buffer-per-slot.
  EXPECT_LT(p.num_buffers, p.slots.size() / 2);
}

TEST(ArenaPlanner, RandomizedGraphsKeepDiscipline) {
  // Every option set must uphold the arena discipline — the fused plans have
  // different step/slot topologies, not different invariants.
  PlanOptions fold = PlanOptions{};
  fold.fold_bn = true;
  for (const PlanOptions& opts : {PlanOptions::none(), PlanOptions{}, fold}) {
    Rng rng(19);
    for (int trial = 0; trial < 60; ++trial) {
      exec_test::RandomNet rn = exec_test::random_cnn(rng, 2);
      const ExecPlan p = GraphBuilder::lower(*rn.net, opts);
      check_lifetimes(p);
      check_arena_discipline(p);
    }
  }
}

TEST(ArenaPlanner, EmptyGraphThrowsAtLowerTime) {
  // A zero-step plan would alias the caller-owned input slot as its output;
  // lower() must refuse rather than hand backends that aliasing bug.
  nn::Sequential empty("empty");
  EXPECT_THROW(GraphBuilder::lower(empty), std::invalid_argument);
  nn::Sequential nested("outer");
  nested.add(std::make_unique<nn::Sequential>("inner"));
  EXPECT_THROW(GraphBuilder::lower(nested), std::invalid_argument);
}

}  // namespace
}  // namespace pdnn::exec
