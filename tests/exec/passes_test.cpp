// passes_test.cpp — the plan-level pass pipeline: structural rewrites
// (BN constant folding, ReLU epilogue fusion, 1x1 im2col elision) checked
// step-by-step on hand-picked graphs, the single-reader protection that keeps
// twice-read values (residual skip operands) alive, and a randomized sweep of
// nested Sequential/ResidualBlock graphs comparing the compiled-with-passes
// plan against the eager module walk — bit-exact for the fusion-only passes,
// epsilon-bounded for the rounding-changing BN fold.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>

#include "exec/float_backend.hpp"
#include "exec/graph_builder.hpp"
#include "exec/passes.hpp"
#include "graph_gen.hpp"
#include "nn/activations.hpp"
#include "nn/optimizer.hpp"
#include "nn/resnet.hpp"

namespace pdnn::exec {
namespace {

using tensor::Rng;
using tensor::Tensor;

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         (a.numel() == 0 || std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0);
}

/// Elementwise |got - want| <= atol + rtol*|want| — the oracle for fold_bn,
/// which pre-scales weights and therefore changes rounding but not math.
void expect_close(const Tensor& got, const Tensor& want, float rtol, float atol,
                  const std::string& what) {
  ASSERT_TRUE(got.shape() == want.shape()) << what;
  for (std::size_t i = 0; i < want.numel(); ++i) {
    const float tol = atol + rtol * std::fabs(want[i]);
    ASSERT_NEAR(got[i], want[i], tol) << what << " at flat index " << i;
  }
}

TEST(PassPipeline, FoldAbsorbsBnBehindConvButNotBehindInput) {
  Rng rng(61);
  nn::Sequential net("n");
  // bn0 reads the plan input — no conv producer, so it must survive the fold
  // (and pick up its trailing ReLU as an epilogue instead).
  net.add(std::make_unique<nn::BatchNorm2d>("bn0", 3));
  net.add(std::make_unique<nn::ReLU>("relu0"));
  net.add(std::make_unique<nn::Conv2d>("conv", 3, 4, 3, 1, 1, rng, true));
  net.add(std::make_unique<nn::BatchNorm2d>("bn1", 4));
  net.add(std::make_unique<nn::ReLU>("relu1"));

  PlanOptions opts;
  opts.fold_bn = true;
  const ExecPlan p = GraphBuilder::lower(net, opts);

  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].op, OpKind::kBatchNorm);
  EXPECT_EQ(p.steps[0].folded_bn, nullptr);
  EXPECT_TRUE(p.steps[0].epilogue.relu);
  EXPECT_EQ(p.steps[1].op, OpKind::kConv2d);
  ASSERT_NE(p.steps[1].folded_bn, nullptr);
  EXPECT_EQ(p.steps[1].folded_bn->name(), "bn1");
  EXPECT_TRUE(p.steps[1].epilogue.bias);  // folded bias exists even for bias-free convs
  EXPECT_TRUE(p.steps[1].epilogue.relu);  // relu1 fused after the fold
  EXPECT_EQ(p.output_slot, p.steps[1].out);
}

TEST(PassPipeline, FoldedResNetHasNoBatchNormSteps) {
  Rng rng(67);
  nn::ResNetConfig rc;
  rc.blocks_per_stage = 2;  // includes downsample blocks
  rc.base_channels = 4;
  auto net = nn::cifar_resnet(rc, rng);
  PlanOptions opts;
  opts.fold_bn = true;
  const ExecPlan p = GraphBuilder::lower(*net, opts);
  std::size_t folded = 0;
  for (const Step& s : p.steps) {
    EXPECT_NE(s.op, OpKind::kBatchNorm) << s.name;
    folded += s.folded_bn != nullptr ? 1 : 0;
  }
  EXPECT_GT(folded, 0u);
}

TEST(PassPipeline, TwiceReadProducerOutputIsNeverFused) {
  // Hand-built plan: the linear's output feeds both the relu and a residual
  // join's skip operand. Fusing the relu would rewire the value the join
  // still needs — the single-reader rule must refuse.
  ExecPlan p;
  p.slots.resize(4);
  Step lin;
  lin.op = OpKind::kLinear;
  lin.name = "lin";
  lin.in0 = 0;
  lin.out = 1;
  Step relu;
  relu.op = OpKind::kRelu;
  relu.name = "relu";
  relu.in0 = 1;
  relu.out = 2;
  Step join;
  join.op = OpKind::kResidualJoin;
  join.name = "join";
  join.in0 = 2;
  join.in1 = 1;  // second reader of the linear's output
  join.out = 3;
  p.steps = {lin, relu, join};
  p.output_slot = 3;
  p.top_level_steps = 3;

  EXPECT_EQ(PassPipeline::fuse_relu_epilogues(p), 0u);
  ASSERT_EQ(p.steps.size(), 3u);
  EXPECT_FALSE(p.steps[0].epilogue.relu);
}

TEST(PassPipeline, ReluIntoPlanOutputStillFuses) {
  // A trailing net-level ReLU's output IS the plan output; fusion rewires the
  // producer onto the output slot. (The protected case is the producer's own
  // out being the output slot — impossible when a relu reads it.)
  Rng rng(71);
  nn::Sequential net("n");
  net.add(std::make_unique<nn::Linear>("fc", 4, 3, rng));
  net.add(std::make_unique<nn::ReLU>("relu"));
  const ExecPlan p = GraphBuilder::lower(net, PlanOptions{});
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].op, OpKind::kLinear);
  EXPECT_TRUE(p.steps[0].epilogue.relu);
  EXPECT_EQ(p.output_slot, p.steps[0].out);
}

TEST(PassPipeline, ElisionRequiresUnitKernelUnitStrideZeroPad) {
  Rng rng(73);
  // Stride-1 downsample: the 1x1 projection qualifies for elision.
  nn::ResidualBlock same("b1", 4, 8, 1, rng);
  const ExecPlan p1 = GraphBuilder::lower(same, PlanOptions{});
  bool saw_1x1 = false;
  for (const Step& s : p1.steps) {
    if (s.op == OpKind::kConv2d && s.kernel == 1) {
      saw_1x1 = true;
      EXPECT_TRUE(s.elide_im2col) << s.name;
    } else if (s.op == OpKind::kConv2d) {
      EXPECT_FALSE(s.elide_im2col) << s.name;  // 3x3 convs keep their im2col
    }
  }
  EXPECT_TRUE(saw_1x1);

  // Stride-2 downsample: 1x1 kernel but strided — the input plane is NOT the
  // patch matrix, so the pass must leave it alone.
  nn::ResidualBlock strided("b2", 4, 8, 2, rng);
  const ExecPlan p2 = GraphBuilder::lower(strided, PlanOptions{});
  saw_1x1 = false;
  for (const Step& s : p2.steps) {
    if (s.op == OpKind::kConv2d && s.kernel == 1) {
      saw_1x1 = true;
      EXPECT_FALSE(s.elide_im2col) << s.name;
    }
  }
  EXPECT_TRUE(saw_1x1);
}

TEST(PassPipeline, RandomGraphsFusionBitIdenticalFoldEpsilonBounded) {
  // The headline contract across >= 50 random nested graphs: the default
  // (fusion-only) pipeline is bit-identical to the eager module walk; the
  // rounding-changing BN fold stays within float tolerance of it.
  Rng rng(79);
  PlanOptions fuse;  // defaults: fuse + elide, no fold
  PlanOptions fold = fuse;
  fold.fold_bn = true;
  for (int trial = 0; trial < 60; ++trial) {
    exec_test::RandomNet rn = exec_test::random_cnn(rng, 2);
    const tensor::Shape& s = rn.input_shape;
    const Tensor x = Tensor::randn({2, s[1], s[2], s[3]}, rng);
    const Tensor want = rn.net->forward(x, false);

    FloatBackend fused = FloatBackend::compile(*rn.net, nullptr, fuse);
    EXPECT_TRUE(bit_identical(fused.run(x), want))
        << "trial " << trial << "\n" << fused.plan().dump();

    FloatBackend folded = FloatBackend::compile(*rn.net, nullptr, fold);
    expect_close(folded.run(x), want, 1e-3f, 1e-4f,
                 "trial " + std::to_string(trial));
  }
}

TEST(PassPipeline, FoldedPanelsRefreshAfterTraining) {
  // Train-then-serve: a training forward moves the BN running stats (and only
  // the stats — no Param::version bump), an optimizer step moves gamma/beta
  // and the conv weights. The folded panels must chase both.
  Rng rng(83);
  auto net = nn::plain_cnn(4, 3, rng);
  const Tensor warm = Tensor::randn({4, 3, 8, 8}, rng);
  net->forward(warm, true);
  net->forward(warm, true);

  PlanOptions fold;
  fold.fold_bn = true;
  FloatBackend backend = FloatBackend::compile(*net, nullptr, fold);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor y1 = backend.run(x);
  expect_close(y1, net->forward(x, false), 1e-3f, 1e-4f, "pre-train");

  // One training step: running stats shift via the forward, parameters via
  // the optimizer.
  const Tensor out = net->forward(Tensor::randn({4, 3, 8, 8}, rng), true);
  net->backward(Tensor::full(out.shape(), 0.1f));
  nn::SgdMomentum opt(net->params(), nn::SgdConfig{0.5f, 0.0f, 0.0f});
  opt.step();

  const Tensor y2 = backend.run(x);
  EXPECT_FALSE(bit_identical(y1, y2)) << "stale folded panels survived training";
  expect_close(y2, net->forward(x, false), 1e-3f, 1e-4f, "post-train");

  // Stats-only movement (training forward, no optimizer step) must refresh
  // too — this is exactly what BatchNorm2d::stats_version exists for.
  net->forward(warm, true);
  const Tensor y3 = backend.run(x);
  EXPECT_FALSE(bit_identical(y2, y3)) << "stats_version change was not observed";
  expect_close(y3, net->forward(x, false), 1e-3f, 1e-4f, "post-stats-move");
}

}  // namespace
}  // namespace pdnn::exec
