// plan_dump_test.cpp — golden-file test for the human-readable plan printer.
// Set PDNN_UPDATE_GOLDEN=1 to regenerate tests/exec/golden/*.txt after an
// intentional format or lowering change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "exec/float_backend.hpp"
#include "exec/graph_builder.hpp"
#include "nn/resnet.hpp"

namespace pdnn::exec {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(PDNN_EXEC_GOLDEN_DIR) + "/" + name;
}

void expect_matches_golden(const std::string& text, const std::string& name) {
  const char* update = std::getenv("PDNN_UPDATE_GOLDEN");
  if (update != nullptr && update[0] == '1') {
    std::ofstream out(golden_path(name));
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path(name);
    out << text;
    return;
  }
  std::ifstream in(golden_path(name));
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path(name)
                         << " (run with PDNN_UPDATE_GOLDEN=1 to create)";
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(text, ss.str()) << "plan dump drifted from " << name
                            << "; run with PDNN_UPDATE_GOLDEN=1 if intentional";
}

// Goldens pass explicit PlanOptions (not defaults()) so the PDNN_PLAN_PASSES
// env toggle CI flips can never change what these tests compare against.

TEST(PlanDump, ResNet8MatchesGolden) {
  tensor::Rng rng(7);
  nn::ResNetConfig rc;
  rc.blocks_per_stage = 1;
  rc.base_channels = 4;
  rc.classes = 4;
  auto net = nn::cifar_resnet(rc, rng);
  const ExecPlan plan = GraphBuilder::lower(*net, PlanOptions{});
  // Buffer sizes depend on run shapes, so the golden dump is unsized.
  expect_matches_golden(plan.dump(), "resnet8_plan.txt");
}

TEST(PlanDump, ResNet8FoldedMatchesGolden) {
  tensor::Rng rng(7);
  nn::ResNetConfig rc;
  rc.blocks_per_stage = 1;
  rc.base_channels = 4;
  rc.classes = 4;
  auto net = nn::cifar_resnet(rc, rng);
  PlanOptions opts;
  opts.fold_bn = true;
  const ExecPlan plan = GraphBuilder::lower(*net, opts);
  expect_matches_golden(plan.dump(), "resnet8_folded_plan.txt");
}

TEST(PlanDump, MlpMatchesGolden) {
  tensor::Rng rng(7);
  auto net = nn::mlp(6, 10, 3, 2, rng);
  const ExecPlan plan = GraphBuilder::lower(*net, PlanOptions{});
  expect_matches_golden(plan.dump(), "mlp_plan.txt");
}

TEST(PlanDump, UnfusedMlpMatchesGolden) {
  tensor::Rng rng(7);
  auto net = nn::mlp(6, 10, 3, 2, rng);
  const ExecPlan plan = GraphBuilder::lower(*net, PlanOptions::none());
  expect_matches_golden(plan.dump(), "mlp_unfused_plan.txt");
}

TEST(PlanDump, MlpTrainingPlanMatchesGolden) {
  tensor::Rng rng(7);
  auto net = nn::mlp(6, 10, 3, 2, rng);
  const ExecPlan plan = GraphBuilder::lower_training(*net);
  expect_matches_golden(plan.dump(), "mlp_train_plan.txt");
}

TEST(PlanDump, ResNet8TrainingPlanMatchesGolden) {
  tensor::Rng rng(7);
  nn::ResNetConfig rc;
  rc.blocks_per_stage = 1;
  rc.base_channels = 4;
  rc.classes = 4;
  auto net = nn::cifar_resnet(rc, rng);
  const ExecPlan plan = GraphBuilder::lower_training(*net);
  expect_matches_golden(plan.dump(), "resnet8_train_plan.txt");
}

TEST(PlanDump, ArenaBytesAppearAfterARun) {
  tensor::Rng rng(7);
  auto net = nn::mlp(6, 10, 3, 2, rng);
  FloatBackend backend = FloatBackend::compile(*net);
  backend.run(tensor::Tensor::randn({4, 6}, rng));
  const std::string text = backend.plan().dump(backend.arena_bytes());
  EXPECT_NE(text.find("arena "), std::string::npos);
  EXPECT_EQ(text.find("arena unsized"), std::string::npos);
  EXPECT_NE(text.find(std::to_string(backend.arena_bytes()) + " bytes"), std::string::npos);
}

}  // namespace
}  // namespace pdnn::exec
