// float_backend_test.cpp — the compiled FP32 backend against the eager
// module walk: bit-equality on fixed and randomized graphs (nested
// Sequential, ResidualBlock with/without downsample) across batch-shape
// changes and N = 0, zero-heap-allocation steady state (counted via the
// test-global operator new), Param::version-driven panel refresh, and the
// PrecisionPolicy hook parity that lets a quantized trainer eval through
// the plan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

#include "exec/float_backend.hpp"
#include "graph_gen.hpp"
#include "nn/activations.hpp"
#include "nn/optimizer.hpp"
#include "nn/resnet.hpp"
#include "quant/policy.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: every C++ heap allocation in this binary funnels
// through here, so "zero allocations during steady-state run()" is a plain
// counter delta. (OpenMP's internal mallocs bypass operator new — they are
// runtime pool management, not per-run tensor traffic.)
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// The malloc/free pairing across replaced operator new/delete is the point
// of a counting allocator; silence the pairing heuristic.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pdnn::exec {
namespace {

using tensor::Rng;
using tensor::Tensor;

bool bit_identical(const Tensor& a, const Tensor& b) {
  // The N = 0 guard keeps memcmp away from empty tensors' null data().
  return a.shape() == b.shape() &&
         (a.numel() == 0 || std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0);
}

TEST(FloatBackend, MlpBitIdenticalToEagerForward) {
  Rng rng(211);
  auto net = nn::mlp(6, 12, 3, 2, rng);
  FloatBackend backend = FloatBackend::compile(*net);
  const Tensor x = Tensor::randn({5, 6}, rng);
  EXPECT_TRUE(bit_identical(backend.run(x), net->forward(x, false)));
}

TEST(FloatBackend, ResNetBitIdenticalToEagerForward) {
  Rng rng(223);
  nn::ResNetConfig rc;
  rc.blocks_per_stage = 2;  // downsample blocks included
  rc.base_channels = 4;
  auto net = nn::cifar_resnet(rc, rng);
  const Tensor warm = Tensor::randn({4, 3, 8, 8}, rng);
  net->forward(warm, true);
  net->forward(warm, true);
  FloatBackend backend = FloatBackend::compile(*net);
  const Tensor x = Tensor::randn({3, 3, 8, 8}, rng);
  EXPECT_TRUE(bit_identical(backend.run(x), net->forward(x, false)));
}

TEST(FloatBackend, RandomizedGraphsAcrossBatchShapesIncludingEmpty) {
  Rng rng(227);
  for (int trial = 0; trial < 40; ++trial) {
    exec_test::RandomNet rn = exec_test::random_cnn(rng, 2);
    FloatBackend backend = FloatBackend::compile(*rn.net);
    const tensor::Shape& s = rn.input_shape;
    for (const std::size_t batch : {2u, 5u, 2u, 0u, 3u}) {
      const Tensor x = Tensor::randn({batch, s[1], s[2], s[3]}, rng);
      const Tensor want = rn.net->forward(x, false);
      EXPECT_TRUE(bit_identical(backend.run(x), want))
          << "trial " << trial << " batch " << batch << "\n"
          << backend.plan().dump(backend.arena_bytes());
    }
  }
}

TEST(FloatBackend, SteadyStateRunPerformsZeroHeapAllocations) {
  Rng rng(229);
  nn::ResNetConfig rc;
  rc.blocks_per_stage = 1;
  rc.base_channels = 4;
  auto net = nn::cifar_resnet(rc, rng);
  net->forward(Tensor::randn({2, 3, 8, 8}, rng), true);
  FloatBackend backend = FloatBackend::compile(*net);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  backend.run(x);
  backend.run(x);  // arena, GEMM pack scratch, and OpenMP team all settled
  const Tensor want = backend.run(x);
  const std::uint64_t before = g_heap_allocs.load();
  for (int r = 0; r < 5; ++r) backend.run(x);
  EXPECT_EQ(g_heap_allocs.load(), before)
      << "steady-state run() must not touch the heap\n"
      << backend.plan().dump(backend.arena_bytes());
  EXPECT_TRUE(bit_identical(backend.run(x), want));
  EXPECT_GT(backend.arena_bytes(), 0u);
}

TEST(FloatBackend, ParamMutationRefreshesPanels) {
  Rng rng(233);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend backend = FloatBackend::compile(*net);
  const Tensor x = Tensor::randn({3, 4}, rng);
  const Tensor y1 = backend.run(x);

  const Tensor out = net->forward(x, true);
  net->backward(Tensor::full(out.shape(), 0.1f));
  nn::SgdMomentum opt(net->params(), nn::SgdConfig{0.5f, 0.0f, 0.0f});
  opt.step();

  const Tensor y2 = backend.run(x);
  EXPECT_FALSE(bit_identical(y1, y2)) << "stale panels survived the optimizer step";
  EXPECT_TRUE(bit_identical(y2, net->forward(x, false)));
}

TEST(FloatBackend, QuantPolicyHooksMatchEagerForward) {
  Rng rng(239);
  auto net = nn::plain_cnn(4, 3, rng);
  net->forward(Tensor::randn({4, 3, 8, 8}, rng), true);
  quant::QuantPolicy policy(quant::QuantConfig::cifar8());  // kTowardZero rounding
  net->set_policy(&policy);
  policy.activate();
  FloatBackend backend = FloatBackend::compile(*net, &policy);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  EXPECT_TRUE(bit_identical(backend.run(x), net->forward(x, false)));

  // Deactivation must drop the quantized panels and match plain FP32 again.
  policy.deactivate();
  EXPECT_TRUE(bit_identical(backend.run(x), net->forward(x, false)));
  net->set_policy(nullptr);
}

TEST(FloatBackend, EmptyGraphThrowsAtCompile) {
  // Previously an empty graph "worked" by returning a reference that aliased
  // the caller's own input tensor — a contract violation lower() now rejects.
  nn::Sequential net("empty");
  EXPECT_THROW(FloatBackend::compile(net), std::invalid_argument);
}

TEST(FloatBackend, InvalidateRebuildsPanelsWithoutVersionBump) {
  Rng rng(251);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend backend = FloatBackend::compile(*net);
  const Tensor x = Tensor::randn({3, 4}, rng);
  backend.run(x);
  // Mutate a weight behind Param::version's back — the cached W^T panel goes
  // stale invisibly, exactly the out-of-band case invalidate() exists for.
  nn::Param* w = net->params().front();
  for (std::size_t i = 0; i < w->value.numel(); ++i) w->value[i] *= 1.5f;
  backend.invalidate();
  EXPECT_TRUE(bit_identical(backend.run(x), net->forward(x, false)));
}

TEST(FloatBackend, UnknownModuleTypeThrowsAtCompile) {
  nn::Sequential net("n");
  net.add(std::make_unique<nn::Tanh>("tanh"));
  EXPECT_THROW(FloatBackend::compile(net), std::invalid_argument);
}

TEST(FloatBackend, WrongInputShapeThrowsWithDimensions) {
  Rng rng(241);
  auto net = nn::mlp(4, 6, 2, 1, rng);
  FloatBackend backend = FloatBackend::compile(*net);
  EXPECT_THROW(backend.run(Tensor({2, 3, 4, 4})), std::invalid_argument);
  try {
    backend.run(Tensor({2, 5}));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("[2,5]"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace pdnn::exec
