// synthetic_test.cpp — dataset generators: determinism, balance, learnability.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "tensor/stats.hpp"

namespace pdnn::data {
namespace {

TEST(SynthCifar, ShapesAndBalance) {
  SynthCifarConfig cfg;
  cfg.classes = 10;
  cfg.train_per_class = 12;
  cfg.test_per_class = 5;
  cfg.height = cfg.width = 16;
  const auto tt = make_synth_cifar(cfg);
  EXPECT_EQ(tt.train.size(), 120u);
  EXPECT_EQ(tt.test.size(), 50u);
  EXPECT_EQ(tt.train.images.shape(), (tensor::Shape{120, 3, 16, 16}));
  std::vector<int> counts(10, 0);
  for (const int y : tt.train.labels) ++counts[static_cast<std::size_t>(y)];
  for (const int c : counts) EXPECT_EQ(c, 12);
}

TEST(SynthCifar, Standardized) {
  SynthCifarConfig cfg;
  cfg.train_per_class = 20;
  const auto tt = make_synth_cifar(cfg);
  const auto m = tensor::moments(tt.train.images);
  EXPECT_NEAR(m.mean, 0.0, 0.02);
  EXPECT_NEAR(m.stddev, 1.0, 0.02);
}

TEST(SynthCifar, DeterministicGivenSeed) {
  SynthCifarConfig cfg;
  cfg.train_per_class = 5;
  const auto a = make_synth_cifar(cfg);
  const auto b = make_synth_cifar(cfg);
  ASSERT_EQ(a.train.images.numel(), b.train.images.numel());
  for (std::size_t i = 0; i < a.train.images.numel(); ++i) {
    ASSERT_EQ(a.train.images[i], b.train.images[i]);
  }
  cfg.seed += 1;
  const auto c = make_synth_cifar(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.train.images.numel() && !any_diff; ++i) {
    any_diff = a.train.images[i] != c.train.images[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST(SynthCifar, ClassesAreStatisticallyDistinct) {
  // Nearest-centroid classification on raw pixels should beat chance
  // substantially (structure exists), but not reach ~100% (noise + shifts
  // keep the task non-trivial for a linear rule).
  SynthCifarConfig cfg;
  cfg.classes = 10;
  cfg.train_per_class = 40;
  cfg.test_per_class = 20;
  cfg.height = cfg.width = 12;
  const auto tt = make_synth_cifar(cfg);
  const std::size_t dim = 3u * 12u * 12u;

  std::vector<std::vector<double>> centroids(10, std::vector<double>(dim, 0.0));
  std::vector<int> counts(10, 0);
  for (std::size_t i = 0; i < tt.train.size(); ++i) {
    const int y = tt.train.labels[i];
    ++counts[static_cast<std::size_t>(y)];
    for (std::size_t d = 0; d < dim; ++d)
      centroids[static_cast<std::size_t>(y)][d] += tt.train.images[i * dim + d];
  }
  for (std::size_t c = 0; c < 10; ++c)
    for (auto& v : centroids[c]) v /= counts[c];

  std::size_t correct = 0;
  for (std::size_t i = 0; i < tt.test.size(); ++i) {
    double best = 1e300;
    int arg = -1;
    for (int c = 0; c < 10; ++c) {
      double d2 = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double diff = tt.test.images[i * dim + d] - centroids[static_cast<std::size_t>(c)][d];
        d2 += diff * diff;
      }
      if (d2 < best) {
        best = d2;
        arg = c;
      }
    }
    if (arg == tt.test.labels[i]) ++correct;
  }
  const double acc = static_cast<double>(correct) / static_cast<double>(tt.test.size());
  EXPECT_GT(acc, 0.2) << "structure should beat 10% chance";
}

TEST(TwoMoons, ShapesAndSeparability) {
  const auto tt = make_two_moons(100, 0.05f, 3);
  EXPECT_EQ(tt.train.size(), 200u);
  EXPECT_EQ(tt.train.images.shape()[1], 2u);
  EXPECT_EQ(tt.train.classes, 2u);
  // With tiny noise the moons barely overlap: check the means differ.
  double m0 = 0.0, m1 = 0.0;
  int c0 = 0, c1 = 0;
  for (std::size_t i = 0; i < tt.train.size(); ++i) {
    if (tt.train.labels[i] == 0) {
      m0 += tt.train.images.at(i, 1);
      ++c0;
    } else {
      m1 += tt.train.images.at(i, 1);
      ++c1;
    }
  }
  EXPECT_GT(m0 / c0, m1 / c1);
}

TEST(Spirals, ShapesAndClasses) {
  const auto tt = make_spirals(3, 60, 0.02f, 5);
  EXPECT_EQ(tt.train.size(), 180u);
  EXPECT_EQ(tt.train.classes, 3u);
  int seen[3] = {0, 0, 0};
  for (const int y : tt.train.labels) ++seen[y];
  EXPECT_EQ(seen[0], 60);
  EXPECT_EQ(seen[1], 60);
  EXPECT_EQ(seen[2], 60);
}

}  // namespace
}  // namespace pdnn::data
