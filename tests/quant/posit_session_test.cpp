// posit_session_test.cpp — the compiled PositSession against independent
// oracles: per-layer reference chains on Sequential nets across the full
// spec x mode grid, a hand-rolled scalar walk of a ResNet (residual joins
// included), compile-once/run-many weight-mutation invalidation, thread-count
// invariance, per-layer precision overrides, and the empty/degenerate edge
// cases.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "nn/optimizer.hpp"
#include "nn/resnet.hpp"
#include "quant/posit_session.hpp"
#include "tensor/ops.hpp"

namespace pdnn::quant {
namespace {

using posit::PositSpec;
using tensor::Rng;
using tensor::Tensor;

bool bit_identical(const Tensor& a, const Tensor& b) {
  // The N = 0 guard keeps memcmp away from empty tensors' null data().
  return a.shape() == b.shape() &&
         (a.numel() == 0 || std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0);
}

const std::vector<AccumMode>& mode_grid() {
  static const std::vector<AccumMode> modes = {AccumMode::kQuire, AccumMode::kSerial,
                                               AccumMode::kFma};
  return modes;
}

// ---------------------------------------------------------------------------
// Scalar oracle: an independent walk of the module graph chaining the
// retained reference kernels and hand-rolled per-element posit loops — no
// engine panels, no session code.
// ---------------------------------------------------------------------------

struct OracleFormats {
  PositSpec conv{16, 1};
  PositSpec bn{16, 1};
  PositSpec linear{16, 1};
  AccumMode mode = AccumMode::kQuire;
};

Tensor oracle_bn(const Tensor& h, nn::BatchNorm2d& bn, const PositSpec& spec) {
  Tensor out = h;
  const std::size_t n = h.shape()[0], c = h.shape()[1];
  const std::size_t plane = h.shape()[2] * h.shape()[3];
  for (std::size_t ci = 0; ci < c; ++ci) {
    const double inv_std = 1.0 / std::sqrt(static_cast<double>(bn.running_var()[ci]) + bn.eps());
    const std::uint32_t g = posit::from_double(bn.gamma().value[ci], spec, kEncodeRound);
    const std::uint32_t scale = posit::mul(g, posit::from_double(inv_std, spec, kEncodeRound), spec);
    const std::uint32_t mean = posit::from_double(bn.running_mean()[ci], spec, kEncodeRound);
    const std::uint32_t beta = posit::from_double(bn.beta().value[ci], spec, kEncodeRound);
    for (std::size_t ni = 0; ni < n; ++ni) {
      float* row = out.data() + (ni * c + ci) * plane;
      for (std::size_t p = 0; p < plane; ++p) {
        const std::uint32_t xv = posit::from_double(row[p], spec, kEncodeRound);
        const std::uint32_t centered = posit::sub(xv, mean, spec);
        row[p] = static_cast<float>(posit::to_double(posit::fma(centered, scale, beta, spec), spec));
      }
    }
  }
  return out;
}

Tensor oracle_gap(const Tensor& h, const PositSpec& spec) {
  const std::size_t n = h.shape()[0], c = h.shape()[1];
  const std::size_t plane = h.shape()[2] * h.shape()[3];
  Tensor out({n, c});
  posit::Quire quire(spec);
  const std::uint32_t divisor = posit::from_double(static_cast<double>(plane), spec, kEncodeRound);
  for (std::size_t ni = 0; ni < n; ++ni) {
    for (std::size_t ci = 0; ci < c; ++ci) {
      quire.clear();
      const float* src = h.data() + (ni * c + ci) * plane;
      for (std::size_t p = 0; p < plane; ++p) {
        quire.add_posit(posit::from_double(src[p], spec, kEncodeRound));
      }
      out.at(ni, ci) = static_cast<float>(
          posit::to_double(posit::div(quire.to_posit(), divisor, spec), spec));
    }
  }
  return out;
}

Tensor oracle_conv(const Tensor& h, nn::Conv2d& conv, const OracleFormats& f) {
  const tensor::Conv2dGeom geom{conv.in_channels(), h.shape()[2],  h.shape()[3],
                                conv.out_channels(), conv.kernel(), conv.stride(),
                                conv.pad(),          conv.kernel_w()};
  const Tensor none;
  return posit_conv2d_reference(h, conv.weight().value,
                                conv.has_bias() ? conv.bias().value : none, geom, f.conv, f.mode);
}

Tensor oracle_forward(nn::Module& m, const Tensor& x, const OracleFormats& f) {
  if (auto* seq = dynamic_cast<nn::Sequential*>(&m)) {
    Tensor h = x;
    for (nn::Module* child : seq->children()) h = oracle_forward(*child, h, f);
    return h;
  }
  if (auto* rb = dynamic_cast<nn::ResidualBlock*>(&m)) {
    Tensor main = oracle_conv(x, rb->conv1(), f);
    main = oracle_bn(main, rb->bn1(), f.bn);
    main.apply([](float v) { return v > 0.0f ? v : 0.0f; });
    main = oracle_conv(main, rb->conv2(), f);
    main = oracle_bn(main, rb->bn2(), f.bn);
    Tensor skip = x;
    if (rb->has_downsample()) {
      skip = oracle_conv(x, *rb->down_conv(), f);
      skip = oracle_bn(skip, *rb->down_bn(), f.bn);
    }
    Tensor out = main;
    for (std::size_t i = 0; i < out.numel(); ++i) {
      const std::uint32_t a = posit::from_double(main[i], f.conv, kEncodeRound);
      const std::uint32_t b = posit::from_double(skip[i], f.conv, kEncodeRound);
      const float v = static_cast<float>(posit::to_double(posit::add(a, b, f.conv), f.conv));
      out[i] = v > 0.0f ? v : 0.0f;
    }
    return out;
  }
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&m)) return oracle_conv(x, *conv, f);
  if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) return oracle_bn(x, *bn, f.bn);
  if (auto* fc = dynamic_cast<nn::Linear*>(&m)) {
    return posit_linear_reference(x, fc->weight().value, fc->bias().value, f.linear, f.mode);
  }
  if (dynamic_cast<nn::ReLU*>(&m) != nullptr) {
    Tensor h = x;
    h.apply([](float v) { return v > 0.0f ? v : 0.0f; });
    return h;
  }
  if (dynamic_cast<nn::MaxPool2x2*>(&m) != nullptr) {
    std::vector<std::size_t> argmax;
    return tensor::maxpool2x2_forward(x, argmax);
  }
  if (dynamic_cast<nn::GlobalAvgPool*>(&m) != nullptr) return oracle_gap(x, f.conv);
  throw std::invalid_argument("oracle: unsupported module");
}

SessionConfig config_for(const OracleFormats& f) {
  SessionConfig cfg;
  cfg.spec = f.conv;
  cfg.mode = f.mode;
  cfg.by_class[nn::LayerClass::kConv] = {f.conv, {}};
  cfg.by_class[nn::LayerClass::kBn] = {f.bn, {}};
  cfg.by_class[nn::LayerClass::kLinear] = {f.linear, {}};
  return cfg;
}

// ---------------------------------------------------------------------------
// Bit-equality on Sequential graphs
// ---------------------------------------------------------------------------

TEST(PositSession, MlpBitIdenticalToReferenceChainAcrossSpecGridAndModes) {
  Rng rng(101);
  auto net = nn::mlp(6, 10, 3, 1, rng);
  const Tensor x = Tensor::randn({4, 6}, rng);
  for (const PositSpec& spec : {PositSpec{8, 0}, PositSpec{8, 1}, PositSpec{8, 2},
                                PositSpec{16, 0}, PositSpec{16, 1}, PositSpec{16, 2},
                                PositSpec{32, 0}, PositSpec{32, 1}, PositSpec{32, 2}}) {
    for (const AccumMode mode : mode_grid()) {
      OracleFormats f{spec, spec, spec, mode};
      PositSession session = PositSession::compile(*net, config_for(f));
      EXPECT_TRUE(bit_identical(session.run(x), oracle_forward(*net, x, f)))
          << spec.to_string() << " mode " << static_cast<int>(mode);
    }
  }
}

TEST(PositSession, PlainCnnBitIdenticalToPositForwardAndOracle) {
  Rng rng(103);
  auto net = nn::plain_cnn(4, 3, rng);
  const Tensor warm = Tensor::randn({6, 3, 8, 8}, rng);
  net->forward(warm, true);
  net->forward(warm, true);
  const Tensor x = Tensor::randn({3, 3, 8, 8}, rng);

  const QuantConfig cfg = QuantConfig::cifar8();  // mixed: posit8 conv, posit16 bn
  for (const AccumMode mode : mode_grid()) {
    PositSession session =
        PositSession::compile(*net, SessionConfig::from_quant(cfg, mode));
    const Tensor& got = session.run(x);
    OracleFormats f{cfg.conv.forward, cfg.bn.forward, cfg.linear.forward, mode};
    EXPECT_TRUE(bit_identical(got, oracle_forward(*net, x, f))) << static_cast<int>(mode);
    EXPECT_TRUE(bit_identical(got, posit_forward(*net, x, cfg, mode))) << static_cast<int>(mode);
  }
}

// ---------------------------------------------------------------------------
// ResNet: skip connections compile and run
// ---------------------------------------------------------------------------

TEST(PositSession, ResNetBitIdenticalToScalarOracle) {
  Rng rng(107);
  nn::ResNetConfig rc;
  rc.blocks_per_stage = 1;
  rc.base_channels = 4;
  rc.classes = 4;
  auto net = nn::cifar_resnet(rc, rng);
  const Tensor warm = Tensor::randn({4, 3, 8, 8}, rng);
  net->forward(warm, true);
  net->forward(warm, true);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);

  const std::vector<OracleFormats> cases = {
      {{16, 1}, {16, 1}, {16, 1}, AccumMode::kQuire},
      {{8, 1}, {16, 1}, {8, 1}, AccumMode::kSerial},  // LUT-dispatched conv path
      {{8, 2}, {16, 2}, {8, 2}, AccumMode::kFma},
  };
  for (const OracleFormats& f : cases) {
    PositSession session = PositSession::compile(*net, config_for(f));
    const Tensor& got = session.run(x);
    const Tensor want = oracle_forward(*net, x, f);
    ASSERT_EQ(got.shape(), want.shape());
    EXPECT_TRUE(bit_identical(got, want))
        << f.conv.to_string() << " mode " << static_cast<int>(f.mode);
  }
}

TEST(PositSession, ResNetTracksFp32Forward) {
  Rng rng(109);
  nn::ResNetConfig rc;
  rc.blocks_per_stage = 1;
  rc.base_channels = 8;
  auto net = nn::cifar_resnet(rc, rng);
  const Tensor warm = Tensor::randn({4, 3, 8, 8}, rng);
  net->forward(warm, true);
  net->forward(warm, true);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor ref = net->forward(x, false);
  PositSession session =
      PositSession::compile(*net, SessionConfig::from_quant(QuantConfig::imagenet16(),
                                                            AccumMode::kQuire));
  const Tensor& y = session.run(x);
  ASSERT_EQ(y.shape(), ref.shape());
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y[i], ref[i], std::fabs(ref[i]) * 0.05 + 0.05) << i;
  }
}

// ---------------------------------------------------------------------------
// Compile-once / run-many
// ---------------------------------------------------------------------------

TEST(PositSession, CompileOnceRunManyReencodesOnlyOnMutation) {
  Rng rng(113);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  const Tensor x = Tensor::randn({3, 4}, rng);
  SessionConfig cfg;
  cfg.spec = {16, 1};
  PositSession session = PositSession::compile(*net, cfg);
  EXPECT_EQ(session.bound_params(), 4u);  // 2 layers x (weight + bias)
  EXPECT_GT(session.panel_bytes(), 0u);

  const Tensor y1 = session.run(x);
  const std::uint64_t encodes_cold = session.encode_count();
  const Tensor y2 = session.run(x);
  EXPECT_EQ(session.encode_count(), encodes_cold) << "steady state must not re-encode weights";
  EXPECT_TRUE(bit_identical(y1, y2));

  // One SGD step rewrites every weight (Param::mark_updated); the next run
  // must re-encode exactly the bound panels and see the new values.
  const Tensor out = net->forward(x, true);
  net->backward(Tensor::full(out.shape(), 0.1f));
  nn::SgdMomentum opt(net->params(), nn::SgdConfig{0.5f, 0.0f, 0.0f});
  opt.step();
  const Tensor y3 = session.run(x);
  EXPECT_EQ(session.encode_count(), encodes_cold + 4) << "all four panels were stale";
  EXPECT_FALSE(bit_identical(y1, y3)) << "refreshed panels must reflect the updated weights";

  // A freshly compiled session agrees with the refreshed one bit for bit.
  PositSession fresh = PositSession::compile(*net, cfg);
  EXPECT_TRUE(bit_identical(y3, fresh.run(x)));
}

TEST(PositSession, PackedPanelsShrinkModelFootprint) {
  Rng rng(151);
  auto net = nn::mlp(16, 32, 4, 1, rng);
  SessionConfig cfg;
  cfg.spec = {8, 1};
  PositSession session = PositSession::compile(*net, cfg);
  std::size_t values = 0;
  for (const nn::Param* p : net->params()) values += p->value.numel();
  // 8-bit codes bit-pack to exactly one byte per value; the retired unpacked
  // layout held a uint32 code plus an 8-byte Unpacked lane per value, so the
  // packed panels must come in at no more than a quarter of it.
  EXPECT_EQ(session.panel_bytes(), values);
  EXPECT_LE(session.panel_bytes() * 4, values * 12);
  EXPECT_EQ(session.panel_scratch_bytes(), 0u) << "no run yet, so no activation scratch";

  const Tensor x = Tensor::randn({5, 16}, rng);
  session.run(x);
  EXPECT_GT(session.panel_scratch_bytes(), 0u) << "run scratch is accounted, just not as model";
  EXPECT_EQ(session.panel_bytes(), values) << "running must not grow the resident model";
}

TEST(PositSession, BnRunningStatsRefreshAutomatically) {
  Rng rng(127);
  auto net = nn::plain_cnn(4, 3, rng);
  const Tensor warm = Tensor::randn({4, 3, 8, 8}, rng);
  net->forward(warm, true);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  SessionConfig cfg;
  cfg.spec = {16, 1};
  PositSession session = PositSession::compile(*net, cfg);
  const Tensor y1 = session.run(x);

  // A training forward moves BN running stats but bumps no Param::version —
  // BatchNorm2d::stats_version covers exactly that writer, so the next run
  // re-encodes the BN constants with no invalidate() call.
  net->forward(Tensor::randn({4, 3, 8, 8}, rng), true);
  const Tensor y_fresh = session.run(x);
  EXPECT_FALSE(bit_identical(y_fresh, y1)) << "running stats moved; the output must too";
  PositSession recompiled = PositSession::compile(*net, cfg);
  EXPECT_TRUE(bit_identical(y_fresh, recompiled.run(x)));

  // invalidate() still forces a full re-encode (for storage mutations that
  // bypass every version counter) and must not change the answer.
  const std::uint64_t encodes = session.encode_count();
  session.invalidate();
  const Tensor y_again = session.run(x);
  EXPECT_GT(session.encode_count(), encodes);
  EXPECT_TRUE(bit_identical(y_again, y_fresh));
}

TEST(PositSession, BatchShapeMayVaryBetweenRuns) {
  Rng rng(131);
  auto net = nn::mlp(5, 7, 2, 1, rng);
  SessionConfig cfg;
  PositSession session = PositSession::compile(*net, cfg);
  const OracleFormats f{cfg.spec, cfg.spec, cfg.spec, cfg.mode};
  for (const std::size_t batch : {2u, 5u, 2u, 0u, 3u}) {
    const Tensor x = Tensor::randn({batch, 5}, rng);
    const Tensor& got = session.run(x);
    EXPECT_TRUE(bit_identical(got, oracle_forward(*net, x, f))) << "batch " << batch;
  }
}

// ---------------------------------------------------------------------------
// Threading
// ---------------------------------------------------------------------------

TEST(PositSession, ThreadCountInvariance) {
#ifdef _OPENMP
  Rng rng(137);
  nn::ResNetConfig rc;
  rc.blocks_per_stage = 1;
  rc.base_channels = 4;
  auto net = nn::cifar_resnet(rc, rng);
  const Tensor warm = Tensor::randn({4, 3, 8, 8}, rng);
  net->forward(warm, true);
  const Tensor x = Tensor::randn({3, 3, 8, 8}, rng);
  const int restore = omp_get_max_threads();
  for (const AccumMode mode : mode_grid()) {
    SessionConfig cfg;
    cfg.spec = {16, 1};
    cfg.mode = mode;
    omp_set_num_threads(1);
    PositSession session = PositSession::compile(*net, cfg);
    const Tensor serial = session.run(x);
    for (const int threads : {2, 4}) {
      // Growing the team after compile must both work (arenas grow) and
      // leave every bit unchanged.
      omp_set_num_threads(threads);
      EXPECT_TRUE(bit_identical(session.run(x), serial))
          << "mode " << static_cast<int>(mode) << " threads " << threads;
    }
    omp_set_num_threads(restore);
  }
#else
  GTEST_SKIP() << "built without OpenMP";
#endif
}

// ---------------------------------------------------------------------------
// Per-layer precision overrides
// ---------------------------------------------------------------------------

TEST(PositSession, PerLayerNameOverrideMixesPrecision) {
  Rng rng(139);
  auto net = nn::mlp(6, 12, 3, 1, rng);  // layers: fc0, relu0, head
  const Tensor x = Tensor::randn({4, 6}, rng);

  SessionConfig cfg;
  cfg.spec = {8, 1};
  cfg.mode = AccumMode::kQuire;
  cfg.by_name["head"] = {PositSpec{16, 1}, {}};
  PositSession session = PositSession::compile(*net, cfg);
  const Tensor& got = session.run(x);

  // Oracle: fc0 in posit(8,1), head in posit(16,1).
  auto* fc0 = dynamic_cast<nn::Linear*>(&net->child(0));
  auto* head = dynamic_cast<nn::Linear*>(&net->child(2));
  ASSERT_NE(fc0, nullptr);
  ASSERT_NE(head, nullptr);
  Tensor h = posit_linear_reference(x, fc0->weight().value, fc0->bias().value, {8, 1},
                                    AccumMode::kQuire);
  h.apply([](float v) { return v > 0.0f ? v : 0.0f; });
  const Tensor want =
      posit_linear_reference(h, head->weight().value, head->bias().value, {16, 1},
                             AccumMode::kQuire);
  EXPECT_TRUE(bit_identical(got, want));

  // And the mix is genuine: the uniform-8 session differs on the head.
  SessionConfig uniform;
  uniform.spec = {8, 1};
  PositSession u = PositSession::compile(*net, uniform);
  EXPECT_FALSE(bit_identical(u.run(x), got));
}

TEST(PositSession, PerClassModeOverride) {
  Rng rng(149);
  auto net = nn::mlp(16, 24, 3, 1, rng);
  const Tensor x = Tensor::randn({3, 16}, rng);
  SessionConfig cfg;
  cfg.spec = {8, 1};
  cfg.mode = AccumMode::kQuire;
  cfg.by_class[nn::LayerClass::kLinear] = {{}, AccumMode::kSerial};
  PositSession session = PositSession::compile(*net, cfg);
  const OracleFormats serial8{{8, 1}, {8, 1}, {8, 1}, AccumMode::kSerial};
  EXPECT_TRUE(bit_identical(session.run(x), oracle_forward(*net, x, serial8)));
}

TEST(PositSession, MaxPoolMatchesReferenceKernelOnNanAndInf) {
  // NaR decodes to NaN; the session's pooling must keep the reference
  // kernel's comparison semantics (NaN entries skipped, all-NaN window
  // yields -inf) so posit_forward stays bit-identical to the pre-session
  // path on non-finite activations.
  nn::Sequential net("n");
  net.add(std::make_unique<nn::MaxPool2x2>("pool"));
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  x.at(0, 0, 0, 0) = nan;   // NaN leads its window
  x.at(0, 0, 0, 2) = inf;   // +inf wins its window
  x.at(0, 0, 2, 0) = nan;   // all-NaN window
  x.at(0, 0, 2, 1) = nan;
  x.at(0, 0, 3, 0) = nan;
  x.at(0, 0, 3, 1) = nan;
  PositSession session = PositSession::compile(net, SessionConfig{});
  const Tensor& got = session.run(x);
  std::vector<std::size_t> argmax;
  const Tensor want = tensor::maxpool2x2_forward(x, argmax);
  EXPECT_TRUE(bit_identical(got, want));
  EXPECT_EQ(got.at(0, 0, 1, 0), -inf) << "all-NaN window keeps the -inf seed";
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

TEST(PositSession, UnknownModuleTypeThrowsAtCompile) {
  class Opaque final : public nn::Module {
   public:
    Opaque() : Module("opaque") {}
    Tensor forward(const Tensor& x, bool) override { return x; }
    Tensor backward(const Tensor& g) override { return g; }
  };
  nn::Sequential net("n");
  net.add(std::make_unique<Opaque>());
  EXPECT_THROW(PositSession::compile(net, SessionConfig{}), std::invalid_argument);
}

TEST(PositSession, WrongInputRankThrowsAtRun) {
  Rng rng(151);
  auto net = nn::mlp(4, 6, 2, 1, rng);
  PositSession session = PositSession::compile(*net, SessionConfig{});
  EXPECT_THROW(session.run(Tensor({2, 3, 4, 4})), std::invalid_argument);
  EXPECT_THROW(session.run(Tensor({2, 5})), std::invalid_argument);
}

TEST(PositSession, EmptyGraphThrowsAtCompile) {
  // The old behavior returned a reference aliasing the caller's own input;
  // GraphBuilder now refuses zero-step plans for every backend.
  nn::Sequential empty("empty");
  EXPECT_THROW(PositSession::compile(empty, SessionConfig{}), std::invalid_argument);
}

}  // namespace
}  // namespace pdnn::quant
