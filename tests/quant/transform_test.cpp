// transform_test.cpp — Algorithm 1 correctness: reference vs fast path vs the
// independently validated posit codec.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "posit/tables.hpp"
#include "quant/posit_transform.hpp"
#include "quant/scale.hpp"

namespace pdnn::quant {
namespace {

class TransformFormatTest : public ::testing::TestWithParam<std::pair<int, int>> {
 protected:
  PositSpec spec() const { return PositSpec{GetParam().first, GetParam().second}; }
};

// The fast float-bit path and the literal Algorithm 1 transcription agree.
TEST_P(TransformFormatTest, FastPathMatchesReference) {
  const PositSpec s = spec();
  std::mt19937_64 rng(31);
  std::uniform_real_distribution<double> scale_dist(s.min_scale() - 4.0, s.max_scale() + 4.0);
  std::uniform_real_distribution<double> mant_dist(1.0, 2.0);
  for (int t = 0; t < 20000; ++t) {
    float x = static_cast<float>(mant_dist(rng) * std::exp2(scale_dist(rng)));
    if (t % 2) x = -x;
    const float fast = posit_transform(x, s);
    const double ref = posit_transform_reference(x, s);
    ASSERT_EQ(fast, static_cast<float>(ref)) << s.to_string() << " x=" << x;
  }
}

// Algorithm 1 equals codec round-toward-zero + the underflow flush.
TEST_P(TransformFormatTest, MatchesCodecTowardZero) {
  const PositSpec s = spec();
  std::mt19937_64 rng(37);
  std::uniform_real_distribution<double> scale_dist(s.min_scale() - 4.0, s.max_scale() + 4.0);
  std::uniform_real_distribution<double> mant_dist(1.0, 2.0);
  const double minpos = posit::minpos_value(s);
  for (int t = 0; t < 20000; ++t) {
    float x = static_cast<float>(mant_dist(rng) * std::exp2(scale_dist(rng)));
    if (t % 2) x = -x;
    if (!std::isfinite(x)) continue;  // float overflow artifact at (32,3)
    double want;
    if (std::fabs(static_cast<double>(x)) < minpos) {
      want = 0.0;
    } else {
      want = posit::to_double(posit::from_double(x, s, posit::RoundMode::kTowardZero), s);
    }
    ASSERT_EQ(posit_transform(x, s), static_cast<float>(want)) << s.to_string() << " x=" << x;
  }
}

// Exhaustive: every representable posit value is a fixed point of P.
TEST_P(TransformFormatTest, RepresentableValuesAreFixedPoints) {
  const PositSpec s = spec();
  if (s.n > 16) GTEST_SKIP();
  for (std::uint64_t c = 0; c < s.code_count(); ++c) {
    const auto code = static_cast<std::uint32_t>(c);
    if (code == s.nar_code()) continue;
    const double v = posit::to_double(code, s);
    if (std::fabs(v) > 1e30) continue;  // beyond float range for big formats
    const auto vf = static_cast<float>(v);
    if (static_cast<double>(vf) != v) continue;  // not exactly a float
    ASSERT_EQ(posit_transform(vf, s), vf) << s.to_string() << " code " << code;
  }
}

TEST_P(TransformFormatTest, UnderflowFlushesToZero) {
  const PositSpec s = spec();
  const double minpos = posit::minpos_value(s);
  if (minpos < 1e-30) GTEST_SKIP();
  EXPECT_EQ(posit_transform(static_cast<float>(minpos) * 0.49f, s), 0.0f);
  EXPECT_EQ(posit_transform(-static_cast<float>(minpos) * 0.49f, s), 0.0f);
  // But minpos itself survives.
  EXPECT_EQ(posit_transform(static_cast<float>(minpos), s), static_cast<float>(minpos));
}

TEST_P(TransformFormatTest, OverflowClipsToMaxpos) {
  const PositSpec s = spec();
  const double maxpos = posit::maxpos_value(s);
  if (maxpos > 1e30) GTEST_SKIP();
  EXPECT_EQ(posit_transform(static_cast<float>(maxpos) * 8.0f, s), static_cast<float>(maxpos));
  EXPECT_EQ(posit_transform(-static_cast<float>(maxpos) * 8.0f, s), -static_cast<float>(maxpos));
}

TEST_P(TransformFormatTest, MagnitudeNeverIncreases) {
  const PositSpec s = spec();
  std::mt19937_64 rng(41);
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  for (int t = 0; t < 5000; ++t) {
    const auto x = static_cast<float>(dist(rng));
    const float q = posit_transform(x, s);
    ASSERT_LE(std::fabs(q), std::fabs(x));
    if (q != 0.0f) {
      ASSERT_EQ(std::signbit(q), std::signbit(x));
    }
  }
}

TEST_P(TransformFormatTest, Idempotent) {
  const PositSpec s = spec();
  std::mt19937_64 rng(43);
  std::uniform_real_distribution<double> dist(-50.0, 50.0);
  for (int t = 0; t < 5000; ++t) {
    const auto x = static_cast<float>(dist(rng));
    const float q = posit_transform(x, s);
    ASSERT_EQ(posit_transform(q, s), q);
  }
}

INSTANTIATE_TEST_SUITE_P(FormatSweep, TransformFormatTest,
                         ::testing::Values(std::pair{5, 1}, std::pair{8, 0}, std::pair{8, 1}, std::pair{8, 2},
                                           std::pair{16, 1}, std::pair{16, 2}, std::pair{32, 3}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.first) + "_" + std::to_string(info.param.second);
                         });

// Table I round-trip through the transform: P maps midranges onto the exact
// Table I values (spot-checking the (5,1) grid the paper prints).
TEST(TransformTableI, TruncatesOntoTableValues) {
  const PositSpec s{5, 1};
  EXPECT_FLOAT_EQ(posit_transform(0.40f, s), 0.375f);   // (3/8 .. 1/2) -> 3/8
  EXPECT_FLOAT_EQ(posit_transform(0.99f, s), 0.75f);    // (3/4 .. 1)   -> 3/4
  EXPECT_FLOAT_EQ(posit_transform(1.49f, s), 1.0f);
  EXPECT_FLOAT_EQ(posit_transform(2.9f, s), 2.0f);
  EXPECT_FLOAT_EQ(posit_transform(63.0f, s), 16.0f);    // (16 .. 64) -> 16
  EXPECT_FLOAT_EQ(posit_transform(100.0f, s), 64.0f);   // clip to maxpos
  EXPECT_FLOAT_EQ(posit_transform(-0.30f, s), -0.25f);
}

// Eq. (3): scaling with a power of two is exact and reversible.
TEST(TransformScaling, ScaledTransformExactness) {
  const PositSpec s{8, 1};
  // x = 0.011 (center ~2^-6.3): raw posit(8,1) keeps little precision there,
  // the shifted transform lands it near 1 where the fraction field is widest.
  const float x = 0.011f;
  const float raw = posit_transform(x, s);
  const float scaled = posit_transform_scaled(x, s, /*shift=*/-6);
  EXPECT_LT(std::fabs(scaled - x), std::fabs(raw - x));
}

TEST(TransformScaling, FastScaledPathMatchesLdexpComposition) {
  // The integer fast path with a folded shift must agree with the explicit
  // divide-transform-multiply composition of Eq. (3).
  std::mt19937_64 rng(71);
  std::uniform_real_distribution<double> dist(-64.0, 64.0);
  for (const auto& [n, es] : {std::pair{8, 1}, std::pair{8, 2}, std::pair{16, 1}, std::pair{16, 2}}) {
    const PositSpec s{n, es};
    for (int shift : {-8, -3, 0, 2, 7}) {
      for (int t = 0; t < 3000; ++t) {
        const auto x = static_cast<float>(dist(rng));
        const float composed =
            std::ldexp(posit_transform(std::ldexp(x, -shift), s), shift);
        ASSERT_EQ(posit_transform_scaled(x, s, shift), composed)
            << s.to_string() << " x=" << x << " shift=" << shift;
      }
    }
  }
}

TEST(TransformScaling, ShiftZeroIsPlainTransform) {
  const PositSpec s{8, 1};
  for (float x : {0.3f, -1.7f, 12.0f}) {
    EXPECT_EQ(posit_transform_scaled(x, s, 0), posit_transform(x, s));
  }
}

TEST(TransformScaling, Eq2CenterComputation) {
  // Tensor with values 2^-5, 2^-6, 2^-7 -> mean log2 = -6, center = -6,
  // shift = center + sigma = -4.
  tensor::Tensor t({3});
  t[0] = std::ldexp(1.0f, -5);
  t[1] = std::ldexp(1.0f, -6);
  t[2] = std::ldexp(1.0f, -7);
  EXPECT_EQ(scale_shift(t, 2), -4);
  EXPECT_EQ(scale_shift(t, 0), -6);
}

TEST(TransformScaling, ScaledQuantizationErrorBeatsRaw) {
  // Property the paper's Eq. (2)/(3) claims: for a distribution concentrated
  // far from 1, shifting reduces mean-squared quantization error.
  const PositSpec s{8, 1};
  tensor::Rng rng(55);
  tensor::Tensor t = tensor::Tensor::randn({4096}, rng, 0.02f);  // center ~2^-6
  const int shift = scale_shift(t, kPaperSigma);

  double err_raw = 0.0, err_scaled = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const float q_raw = posit_transform(t[i], s);
    const float q_scaled = posit_transform_scaled(t[i], s, shift);
    err_raw += (q_raw - t[i]) * static_cast<double>(q_raw - t[i]);
    err_scaled += (q_scaled - t[i]) * static_cast<double>(q_scaled - t[i]);
  }
  EXPECT_LT(err_scaled, err_raw * 0.5) << "shifting should cut MSE substantially";
}

TEST(TransformRounding, NearestBeatsTowardZeroOnMse) {
  const PositSpec s{8, 1};
  tensor::Rng rng(57);
  tensor::Tensor a = tensor::Tensor::randn({4096}, rng, 0.5f);
  tensor::Tensor b = a;
  transform_inplace_rounded(a, s, posit::RoundMode::kTowardZero, nullptr, 0);
  posit::RoundingRng prng(5);
  transform_inplace_rounded(b, s, posit::RoundMode::kNearestEven, &prng, 0);
  // Compare against a fresh copy of the source.
  tensor::Rng rng2(57);
  tensor::Tensor src = tensor::Tensor::randn({4096}, rng2, 0.5f);
  double mse_tz = 0.0, mse_ne = 0.0;
  for (std::size_t i = 0; i < src.numel(); ++i) {
    mse_tz += (a[i] - src[i]) * static_cast<double>(a[i] - src[i]);
    mse_ne += (b[i] - src[i]) * static_cast<double>(b[i] - src[i]);
  }
  EXPECT_LT(mse_ne, mse_tz);
}

TEST(TransformInplace, WholeTensor) {
  const PositSpec s{8, 1};
  tensor::Rng rng(59);
  tensor::Tensor t = tensor::Tensor::randn({100}, rng);
  tensor::Tensor copy = t;
  transform_inplace(t, s);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t[i], posit_transform(copy[i], s));
  }
}

}  // namespace
}  // namespace pdnn::quant
