// posit_engine_test.cpp — the decode-once engine against the retained scalar
// reference: exact bit-equality over the full spec grid and every
// accumulation mode, thread-count invariance, and the engine edge cases
// (empty batches, missing bias, 1x1 windows, degenerate geometry).
#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "nn/resnet.hpp"
#include "quant/posit_inference.hpp"
#include "tensor/ops.hpp"

namespace pdnn::quant {
namespace {

using posit::PositSpec;
using tensor::Rng;
using tensor::Tensor;

const std::vector<PositSpec>& spec_grid() {
  // n in {8,16,32} x es in {0,1,2}: every engine dispatch (LUT at n=8,
  // unpacked arithmetic elsewhere) and regime-width regime the paper uses.
  static const std::vector<PositSpec> grid = {
      {8, 0}, {8, 1}, {8, 2}, {16, 0}, {16, 1}, {16, 2}, {32, 0}, {32, 1}, {32, 2},
  };
  return grid;
}

const std::vector<AccumMode>& mode_grid() {
  static const std::vector<AccumMode> modes = {AccumMode::kQuire, AccumMode::kSerial,
                                               AccumMode::kFma};
  return modes;
}

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

TEST(PositEngine, LinearBitIdenticalToScalarReferenceAcrossSpecGridAndModes) {
  Rng rng(41);
  const Tensor x = Tensor::randn({5, 37}, rng);
  const Tensor w = Tensor::randn({9, 37}, rng, 0.4f);
  const Tensor bias = Tensor::randn({9}, rng, 0.2f);
  for (const PositSpec& spec : spec_grid()) {
    for (const AccumMode mode : mode_grid()) {
      const Tensor ref = posit_linear_reference(x, w, bias, spec, mode);
      const Tensor got = posit_linear(x, w, bias, spec, mode);
      EXPECT_TRUE(bit_identical(got, ref))
          << spec.to_string() << " mode " << static_cast<int>(mode);
    }
  }
}

TEST(PositEngine, LinearWithoutBiasMatchesReference) {
  Rng rng(43);
  const Tensor x = Tensor::randn({3, 65}, rng);
  const Tensor w = Tensor::randn({4, 65}, rng);
  const Tensor none;
  for (const PositSpec& spec : spec_grid()) {
    for (const AccumMode mode : mode_grid()) {
      EXPECT_TRUE(bit_identical(posit_linear(x, w, none, spec, mode),
                                posit_linear_reference(x, w, none, spec, mode)))
          << spec.to_string() << " mode " << static_cast<int>(mode);
    }
  }
}

TEST(PositEngine, ConvBitIdenticalToScalarReferenceWithBiasAndRectKernel) {
  Rng rng(47);
  // Rectangular 3x2 window, stride 2, pad 1: exercises the kernel_w plumbing
  // end to end, plus the per-channel bias.
  tensor::Conv2dGeom g{3, 9, 8, 4, 3, 2, 1, 2};
  const Tensor x = Tensor::randn({2, 3, 9, 8}, rng);
  const Tensor w = Tensor::randn({4, 3, 3, 2}, rng, 0.3f);
  const Tensor bias = Tensor::randn({4}, rng, 0.2f);
  for (const PositSpec& spec : spec_grid()) {
    for (const AccumMode mode : mode_grid()) {
      const Tensor ref = posit_conv2d_reference(x, w, bias, g, spec, mode);
      const Tensor got = posit_conv2d(x, w, bias, g, spec, mode);
      EXPECT_TRUE(bit_identical(got, ref))
          << spec.to_string() << " mode " << static_cast<int>(mode);
    }
  }
}

TEST(PositEngine, ThreadedRunsBitIdenticalToSerial) {
#ifdef _OPENMP
  Rng rng(53);
  const Tensor x = Tensor::randn({37, 41}, rng);
  const Tensor w = Tensor::randn({13, 41}, rng);
  const Tensor bias = Tensor::randn({13}, rng);
  const int restore = omp_get_max_threads();
  for (const PositSpec& spec : {PositSpec{8, 1}, PositSpec{16, 1}, PositSpec{32, 2}}) {
    for (const AccumMode mode : mode_grid()) {
      omp_set_num_threads(1);
      const Tensor serial = posit_linear(x, w, bias, spec, mode);
      for (const int threads : {2, 4}) {
        omp_set_num_threads(threads);
        EXPECT_TRUE(bit_identical(posit_linear(x, w, bias, spec, mode), serial))
            << spec.to_string() << " mode " << static_cast<int>(mode) << " threads " << threads;
      }
    }
  }
  omp_set_num_threads(restore);
#else
  GTEST_SKIP() << "built without OpenMP";
#endif
}

TEST(PositEngine, ForwardMatchesPerLayerReference) {
  // posit_forward with the cache must agree bit-for-bit with hand-chaining
  // the reference kernels on a Linear/ReLU stack.
  Rng rng(59);
  auto net = nn::mlp(6, 10, 3, 1, rng);
  const Tensor x = Tensor::randn({4, 6}, rng);
  const QuantConfig cfg = QuantConfig::imagenet16();
  const PositSpec spec = cfg.linear.forward;
  for (const AccumMode mode : mode_grid()) {
    Tensor ref = x;
    for (std::size_t i = 0; i < net->size(); ++i) {
      if (auto* fc = dynamic_cast<nn::Linear*>(&net->child(i))) {
        ref = posit_linear_reference(ref, fc->weight().value, fc->bias().value, spec, mode);
      } else {
        ref.apply([](float v) { return v > 0.0f ? v : 0.0f; });
      }
    }
    const Tensor got = posit_forward(*net, x, cfg, mode);
    EXPECT_TRUE(bit_identical(got, ref)) << "mode " << static_cast<int>(mode);
  }
}

TEST(PositEngine, ForwardAppliesConvBiasAndRectangularKernel) {
  Rng rng(61);
  nn::Sequential net("n");
  auto conv = std::make_unique<nn::Conv2d>("c", 2, 3, /*kernel=*/3, /*stride=*/1, /*pad=*/1, rng,
                                           /*with_bias=*/true, /*kernel_w=*/2);
  nn::Conv2d* conv_ptr = conv.get();
  net.add(std::move(conv));
  conv_ptr->bias().value = Tensor::randn({3}, rng, 0.5f);  // ctor zero-inits the bias
  conv_ptr->bias().mark_updated();
  const Tensor x = Tensor::randn({2, 2, 6, 7}, rng);
  const QuantConfig cfg = QuantConfig::imagenet16();
  const tensor::Conv2dGeom g{2, 6, 7, 3, 3, 1, 1, 2};
  const Tensor ref = posit_conv2d_reference(x, conv_ptr->weight().value, conv_ptr->bias().value, g,
                                            cfg.conv.forward, AccumMode::kQuire);
  const Tensor got = posit_forward(net, x, cfg, AccumMode::kQuire);
  EXPECT_TRUE(bit_identical(got, ref));
  // The bias must actually land: zeroing it changes the output.
  conv_ptr->bias().value.fill(0.0f);
  conv_ptr->bias().mark_updated();
  EXPECT_FALSE(bit_identical(posit_forward(net, x, cfg, AccumMode::kQuire), got));
}

TEST(PositEngine, ZeroBatchYieldsWellFormedEmptyOutputs) {
  Rng rng(67);
  const Tensor w = Tensor::randn({4, 8}, rng);
  const Tensor bias = Tensor::randn({4}, rng);
  const Tensor none;
  for (const AccumMode mode : mode_grid()) {
    const Tensor y = posit_linear(Tensor({0, 8}), w, bias, PositSpec{16, 1}, mode);
    EXPECT_EQ(y.shape(), (tensor::Shape{0, 4}));
    EXPECT_EQ(y.numel(), 0u);

    const tensor::Conv2dGeom g{3, 6, 6, 4, 3, 1, 1};
    const Tensor wc = Tensor::randn({4, 3, 3, 3}, rng);
    const Tensor yc = posit_conv2d(Tensor({0, 3, 6, 6}), wc, none, g, PositSpec{8, 1}, mode);
    EXPECT_EQ(yc.shape(), (tensor::Shape{0, 4, 6, 6}));
  }
  // Whole-network: an empty batch flows through every layer kind.
  auto net = nn::plain_cnn(4, 3, rng);
  const Tensor warm = Tensor::randn({2, 3, 8, 8}, rng);
  net->forward(warm, true);
  const Tensor y = posit_forward(*net, Tensor({0, 3, 8, 8}), QuantConfig::imagenet16(),
                                 AccumMode::kQuire);
  EXPECT_EQ(y.shape(), (tensor::Shape{0, 3}));
}

TEST(PositEngine, OneByOneConvMatchesReference) {
  Rng rng(71);
  const tensor::Conv2dGeom g{3, 5, 7, 4, /*kernel=*/1, /*stride=*/1, /*pad=*/0};
  const Tensor x = Tensor::randn({2, 3, 5, 7}, rng);
  const Tensor w = Tensor::randn({4, 3, 1, 1}, rng, 0.4f);
  const Tensor bias = Tensor::randn({4}, rng, 0.2f);
  for (const PositSpec& spec : {PositSpec{8, 1}, PositSpec{16, 1}}) {
    for (const AccumMode mode : mode_grid()) {
      EXPECT_TRUE(bit_identical(posit_conv2d(x, w, bias, g, spec, mode),
                                posit_conv2d_reference(x, w, bias, g, spec, mode)))
          << spec.to_string() << " mode " << static_cast<int>(mode);
    }
  }
}

TEST(PositEngine, DegenerateGeometryThrowsInsteadOfUnderflowing) {
  Rng rng(73);
  const Tensor x = Tensor::randn({1, 1, 2, 2}, rng);
  const Tensor w = Tensor::randn({1, 1, 5, 5}, rng);
  const Tensor none;
  // 5x5 window on an unpadded 2x2 input: out_h would underflow size_t.
  const tensor::Conv2dGeom window{1, 2, 2, 1, 5, 1, 0};
  EXPECT_THROW(posit_conv2d(x, w, none, window, PositSpec{8, 1}, AccumMode::kQuire),
               std::invalid_argument);
  EXPECT_THROW(posit_conv2d_reference(x, w, none, window, PositSpec{8, 1}, AccumMode::kQuire),
               std::invalid_argument);
  const tensor::Conv2dGeom stride0{1, 2, 2, 1, 1, 0, 0};
  EXPECT_THROW(stride0.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace pdnn::quant
