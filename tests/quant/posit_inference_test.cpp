// posit_inference_test.cpp — true posit-arithmetic forward passes vs the
// FP32-simulated quantized forward: the emulation-fidelity check.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "nn/resnet.hpp"
#include "nn/trainer.hpp"
#include "quant/posit_inference.hpp"

namespace pdnn::quant {
namespace {

using posit::PositSpec;
using tensor::Rng;
using tensor::Tensor;

TEST(PositLinear, QuireMatchesDoubleReferenceOnExactCase) {
  // Small-integer weights/inputs: everything exact in posit(16,1); the quire
  // result must equal the FP32 matmul bit for bit.
  Tensor x({2, 3});
  Tensor w({2, 3});
  for (std::size_t i = 0; i < 6; ++i) {
    x[i] = static_cast<float>(static_cast<int>(i) - 2);  // -2..3
    w[i] = static_cast<float>(2 - static_cast<int>(i));  // 2..-3
  }
  const Tensor bias = Tensor::zeros({2});
  const Tensor y = posit_linear(x, w, bias, PositSpec{16, 1}, AccumMode::kQuire);
  const Tensor ref = tensor::matmul(x, tensor::transpose(w));
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y[i], ref[i]) << i;
}

TEST(PositLinear, AllAccumulationModesCloseToFp32) {
  Rng rng(3);
  const Tensor x = Tensor::randn({4, 32}, rng, 0.5f);
  const Tensor w = Tensor::randn({8, 32}, rng, 0.3f);
  const Tensor bias = Tensor::randn({8}, rng, 0.1f);
  const Tensor ref = [&] {
    Tensor y = tensor::matmul(x, tensor::transpose(w));
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t o = 0; o < 8; ++o) y.at(i, o) += bias[o];
    return y;
  }();
  for (const AccumMode mode : {AccumMode::kQuire, AccumMode::kSerial, AccumMode::kFma}) {
    const Tensor y = posit_linear(x, w, bias, PositSpec{16, 1}, mode);
    for (std::size_t i = 0; i < y.numel(); ++i) {
      EXPECT_NEAR(y[i], ref[i], std::fabs(ref[i]) * 0.02 + 0.02)
          << "mode " << static_cast<int>(mode) << " idx " << i;
    }
  }
}

TEST(PositLinear, QuireIsMoreAccurateThanSerial) {
  // Long dot products with cancellation: serial rounding accumulates error,
  // the quire rounds once.
  Rng rng(5);
  const std::size_t dim = 512;
  const Tensor x = Tensor::randn({1, dim}, rng);
  const Tensor w = Tensor::randn({1, dim}, rng);
  const Tensor none;
  double ref = 0.0;
  for (std::size_t i = 0; i < dim; ++i) ref += static_cast<double>(x[i]) * w[i];

  const PositSpec spec{8, 1};  // coarse: differences show clearly
  const float q = posit_linear(x, w, none, spec, AccumMode::kQuire).at(0, 0);
  const float s = posit_linear(x, w, none, spec, AccumMode::kSerial).at(0, 0);
  // Quantization of inputs perturbs ref; compare against the quire result of
  // the quantized operands, which is the correctly-rounded answer by
  // construction: serial must be at least as far from it as zero.
  EXPECT_LE(std::fabs(q - ref), std::fabs(s - ref) + 1e-3)
      << "quire should not lose to serial accumulation";
}

TEST(PositConv, MatchesFp32OnExactWeights) {
  Rng rng(7);
  tensor::Conv2dGeom g{2, 6, 6, 3, 3, 1, 1};
  Tensor x = Tensor::randn({1, 2, 6, 6}, rng);
  // Snap x to posit(16,1) values so the conv inputs are exact.
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(posit::to_double(posit::from_double(x[i], {16, 1}), {16, 1}));
  }
  Tensor w({3, 2, 3, 3});
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] = static_cast<float>((static_cast<int>(i) % 5) - 2) * 0.25f;
  const Tensor ref = tensor::conv2d_forward(x, w, g);
  const Tensor none;
  const Tensor y = posit_conv2d(x, w, none, g, PositSpec{16, 1}, AccumMode::kQuire);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    // Inputs/weights exact; quire sum exact; only the final rounding differs.
    EXPECT_NEAR(y[i], ref[i], std::fabs(ref[i]) * 0.001 + 1e-4) << i;
  }
}

TEST(PositForward, MlpAgreementWithSimulatedQuantization) {
  // Train a small MLP with the posit16 policy, then compare the simulated
  // quantized forward against true posit arithmetic inference.
  Rng rng(11);
  auto net = nn::mlp(2, 16, 2, 1, rng);
  const auto data = pdnn::data::make_two_moons(120, 0.15f, 5);

  QuantConfig cfg = QuantConfig::imagenet16();
  QuantPolicy policy(cfg);
  nn::TrainConfig tc;
  tc.epochs = 15;
  tc.batch_size = 32;
  tc.warmup_epochs = 1;
  tc.on_warmup_end = [&policy](nn::Sequential& n) {
    policy.calibrate(n);
    policy.activate();
  };
  nn::Trainer trainer(*net, &policy, tc);
  trainer.fit(data.train.images, data.train.labels, data.test.images, data.test.labels);

  // Simulated quantized forward (eval mode, policy active).
  const Tensor sim = net->forward(data.test.images, false);
  // True posit inference (policy hooks are bypassed: posit_forward reads the
  // raw weights, which already live on the posit grid after training).
  policy.deactivate();
  const Tensor real = posit_forward(*net, data.test.images, cfg, AccumMode::kQuire);

  // Predictions should agree almost everywhere.
  std::size_t agree = 0;
  const std::size_t n = sim.shape()[0];
  for (std::size_t i = 0; i < n; ++i) {
    const int a = sim.at(i, 0) > sim.at(i, 1) ? 0 : 1;
    const int b = real.at(i, 0) > real.at(i, 1) ? 0 : 1;
    agree += a == b;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(n), 0.97)
      << "true posit inference must reproduce the simulated model";
}

TEST(PositForward, UnsupportedLayerThrows) {
  // ResidualBlock compiles since the session API; a module type the engine
  // has no lowering for must still fail loudly.
  class Opaque final : public nn::Module {
   public:
    Opaque() : Module("opaque") {}
    Tensor forward(const Tensor& x, bool) override { return x; }
    Tensor backward(const Tensor& g) override { return g; }
  };
  nn::Sequential net("n");
  net.add(std::make_unique<Opaque>());
  const Tensor x({1, 4});
  EXPECT_THROW(posit_forward(net, x, QuantConfig{}, AccumMode::kQuire), std::invalid_argument);
}

TEST(PositForward, ResidualBlockRunsEndToEnd) {
  // The former hard limitation: a skip-connected block must now run in true
  // posit arithmetic and track the FP32 forward.
  Rng rng(13);
  nn::Sequential net("n");
  net.add(std::make_unique<nn::ResidualBlock>("rb", 3, 5, 2, rng));
  const Tensor warm = Tensor::randn({6, 3, 8, 8}, rng);
  net.forward(warm, true);
  net.forward(warm, true);

  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor ref = net.forward(x, false);
  const Tensor y = posit_forward(net, x, QuantConfig::imagenet16(), AccumMode::kQuire);
  ASSERT_EQ(y.shape(), ref.shape());
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y[i], ref[i], std::fabs(ref[i]) * 0.05 + 0.05) << i;
  }
}

TEST(PositForward, PlainCnnRunsEndToEnd) {
  Rng rng(17);
  auto net = nn::plain_cnn(4, 3, rng);
  // Populate BN running stats with a few training batches.
  const Tensor warm = Tensor::randn({8, 3, 8, 8}, rng);
  net->forward(warm, true);
  net->forward(warm, true);

  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor ref = net->forward(x, false);
  const Tensor y = posit_forward(*net, x, QuantConfig::imagenet16(), AccumMode::kQuire);
  ASSERT_EQ(y.shape(), ref.shape());
  // posit(16,1) forward should track FP32 closely (weights are FP32 here, so
  // this measures pure arithmetic error).
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y[i], ref[i], std::fabs(ref[i]) * 0.05 + 0.05) << i;
  }
}

}  // namespace
}  // namespace pdnn::quant
