// integration_test.cpp — the full paper pipeline on a small CNN: warm-up,
// calibration, posit-quantized conv/BN training (Fig. 3 end to end).
#include <gtest/gtest.h>

#include <sstream>

#include "data/synthetic.hpp"
#include "nn/resnet.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "quant/float_policy.hpp"
#include "quant/policy.hpp"

namespace pdnn::quant {
namespace {

using tensor::Rng;

data::TrainTest small_task() {
  data::SynthCifarConfig dc;
  dc.classes = 4;
  dc.train_per_class = 40;
  dc.test_per_class = 15;
  dc.height = dc.width = 12;
  dc.noise = 0.3f;
  return data::make_synth_cifar(dc);
}

nn::TrainConfig small_train_config(std::size_t epochs, std::size_t warmup) {
  nn::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 40;
  tc.sgd = {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 1e-4f};
  tc.schedule = {.base_lr = 0.05f, .drop_epochs = {epochs - 2}, .factor = 10.0f};
  tc.warmup_epochs = warmup;
  return tc;
}

TEST(QuantIntegration, ResNetPositCifar8RecipeLearns) {
  Rng rng(31);
  nn::ResNetConfig rc;
  rc.base_channels = 4;
  rc.classes = 4;
  rc.bn_momentum = 0.3f;
  auto net = nn::cifar_resnet(rc, rng);
  const auto data = small_task();

  QuantPolicy policy(QuantConfig::cifar8());
  nn::TrainConfig tc = small_train_config(8, 1);
  tc.on_warmup_end = [&policy](nn::Sequential& n) {
    policy.calibrate(n);
    policy.activate();
  };
  nn::Trainer trainer(*net, &policy, tc);
  const auto hist = trainer.fit(data.train.images, data.train.labels, data.test.images, data.test.labels);

  EXPECT_FALSE(hist.front().quantized) << "epoch 0 is the FP32 warm-up";
  EXPECT_TRUE(hist.back().quantized);
  EXPECT_GT(hist.back().test_acc, 0.5f) << "well above 25% chance under posit-8 conv";
  EXPECT_GT(policy.transforms_performed(), 1000000u) << "every Fig. 3 hook fired";

  // Fig. 3c: conv weights ended on a 2^s-scaled posit(8,1) grid. (The exact
  // s used by the policy was Eq. 2's center of the pre-quantization tensor,
  // which can differ by +/-1 from the center recomputed on the quantized
  // values, so accept any shift in a small neighborhood.)
  for (nn::Param* p : net->params()) {
    if (p->layer_class != nn::LayerClass::kConv) continue;
    const int center = scale_shift(p->value, policy.config().sigma);
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      const float v = p->value[i];
      bool on_grid = false;
      for (int s = center - 2; s <= center + 2 && !on_grid; ++s) {
        on_grid = v == posit_transform_scaled(v, PositSpec{8, 1}, s);
      }
      ASSERT_TRUE(on_grid) << p->name << "[" << i << "] = " << v;
    }
  }
}

TEST(QuantIntegration, WarmupCheckpointSharedAcrossConfigs) {
  // Train the warm-up once, checkpoint it, and branch into two posit configs:
  // both must resume successfully (the ablation-bench workflow).
  Rng rng(33);
  nn::ResNetConfig rc;
  rc.base_channels = 4;
  rc.classes = 4;
  const auto data = small_task();

  auto warm = nn::cifar_resnet(rc, rng);
  {
    nn::TrainConfig tc = small_train_config(2, 0);
    nn::Trainer trainer(*warm, nullptr, tc);
    trainer.fit(data.train.images, data.train.labels, data.test.images, data.test.labels);
  }
  std::stringstream checkpoint;
  nn::save_parameters(checkpoint, *warm);

  for (const bool use16 : {false, true}) {
    Rng rng2(99);
    auto net = nn::cifar_resnet(rc, rng2);
    std::stringstream copy(checkpoint.str());
    nn::load_parameters(copy, *net);

    QuantPolicy policy(use16 ? QuantConfig::imagenet16() : QuantConfig::cifar8());
    nn::TrainConfig tc = small_train_config(5, 0);
    tc.on_warmup_end = [&policy](nn::Sequential& n) {
      policy.calibrate(n);
      policy.activate();
    };
    nn::Trainer trainer(*net, &policy, tc);
    const auto hist = trainer.fit(data.train.images, data.train.labels, data.test.images, data.test.labels);
    EXPECT_GT(hist.back().train_acc, 0.4f) << "resumed training must keep learning (use16=" << use16 << ")";
  }
}

TEST(QuantIntegration, Fp16BaselineLearnsLikeFp32) {
  Rng rng(35);
  nn::ResNetConfig rc;
  rc.base_channels = 4;
  rc.classes = 4;
  rc.bn_momentum = 0.3f;
  auto net = nn::cifar_resnet(rc, rng);
  const auto data = small_task();

  FpPolicy policy(FpPolicyConfig::fp16_mixed());
  nn::TrainConfig tc = small_train_config(6, 1);
  tc.on_warmup_end = [&policy](nn::Sequential&) { policy.activate(); };
  nn::Trainer trainer(*net, &policy, tc);
  const auto hist = trainer.fit(data.train.images, data.train.labels, data.test.images, data.test.labels);
  EXPECT_GT(hist.back().test_acc, 0.5f);
}

TEST(QuantIntegration, DeterministicGivenSeeds) {
  const auto run = [] {
    Rng rng(41);
    nn::ResNetConfig rc;
    rc.base_channels = 4;
    rc.classes = 4;
    auto net = nn::cifar_resnet(rc, rng);
    const auto data = small_task();
    QuantPolicy policy(QuantConfig::cifar8());
    nn::TrainConfig tc = small_train_config(3, 1);
    tc.shuffle_seed = 5;
    tc.on_warmup_end = [&policy](nn::Sequential& n) {
      policy.calibrate(n);
      policy.activate();
    };
    nn::Trainer trainer(*net, &policy, tc);
    const auto hist = trainer.fit(data.train.images, data.train.labels, data.test.images, data.test.labels);
    return hist.back();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.train_loss, b.train_loss) << "bitwise deterministic training";
  EXPECT_EQ(a.test_acc, b.test_acc);
}

}  // namespace
}  // namespace pdnn::quant
