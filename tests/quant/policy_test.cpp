// policy_test.cpp — QuantPolicy format routing, scaling modes, and the
// quantized training flow (Fig. 3) end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "nn/resnet.hpp"
#include "nn/trainer.hpp"
#include "quant/policy.hpp"
#include "quant/stats_collector.hpp"

namespace pdnn::quant {
namespace {

using nn::LayerClass;
using tensor::Rng;
using tensor::Tensor;

bool representable(float v, const PositSpec& s) {
  return v == posit_transform(v, s);
}

TEST(QuantPolicy, InactiveUntilActivated) {
  QuantPolicy p;
  EXPECT_FALSE(p.active());
  p.activate();
  EXPECT_TRUE(p.active());
  p.deactivate();
  EXPECT_FALSE(p.active());
}

TEST(QuantPolicy, RoutesConvVsBnFormats) {
  // Cifar-10 config: CONV forward -> posit(8,1); BN forward -> posit(16,1).
  QuantConfig cfg;
  cfg.scale_mode = ScaleMode::kNone;
  QuantPolicy p(cfg);
  p.activate();

  // A value representable in (16,1) but not (8,1): needs > 4 fraction bits.
  Tensor t({1});
  t[0] = 1.0f + 1.0f / 64.0f;  // 6 fraction bits
  Tensor conv_q = p.quantize_weight(t, "conv1", LayerClass::kConv);
  Tensor bn_q = p.quantize_weight(t, "bn1", LayerClass::kBn);
  EXPECT_NE(conv_q[0], t[0]) << "posit(8,1) must truncate 6 fraction bits";
  EXPECT_EQ(bn_q[0], t[0]) << "posit(16,1) holds 6 fraction bits exactly";
}

TEST(QuantPolicy, ForwardEs1BackwardEs2DynamicRange) {
  // Section III-B: errors get es=2 for more dynamic range. A tiny gradient
  // below posit(8,1)'s minpos (4^-6 ~ 2.4e-4) but above posit(8,2)'s
  // (16^-6 ~ 6e-8) must survive the error path and die on the weight path.
  QuantConfig cfg;
  cfg.scale_mode = ScaleMode::kNone;
  QuantPolicy p(cfg);
  p.activate();

  Tensor tiny({1});
  tiny[0] = 1e-5f;
  Tensor as_weight = tiny;
  Tensor as_error = tiny;
  // Route both through the policy.
  Tensor wq = p.quantize_weight(as_weight, "conv1", LayerClass::kConv);
  p.quantize_error(as_error, "conv1", LayerClass::kConv);
  EXPECT_EQ(wq[0], 0.0f) << "below (8,1) minpos: flushed";
  EXPECT_NE(as_error[0], 0.0f) << "within (8,2) range: kept";
}

TEST(QuantPolicy, OutputsAreRepresentable) {
  QuantConfig cfg;
  cfg.scale_mode = ScaleMode::kNone;
  QuantPolicy p(cfg);
  p.activate();
  Rng rng(61);
  Tensor t = Tensor::randn({512}, rng, 0.5f);
  p.quantize_activation(t, "conv1", LayerClass::kConv);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    ASSERT_TRUE(representable(t[i], PositSpec{8, 1})) << t[i];
  }
}

TEST(QuantPolicy, ScaledOutputsAreScaledRepresentable) {
  // With Eq. (3) the grid is Sf * posit values: dividing by 2^shift must land
  // on representable posits.
  QuantConfig cfg;
  cfg.scale_mode = ScaleMode::kDynamic;
  QuantPolicy p(cfg);
  p.activate();
  Rng rng(62);
  Tensor t = Tensor::randn({512}, rng, 0.01f);
  const int shift = scale_shift(t, cfg.sigma);
  p.quantize_activation(t, "conv1", LayerClass::kConv);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const float unscaled = std::ldexp(t[i], -shift);
    ASSERT_TRUE(representable(unscaled, PositSpec{8, 1})) << t[i];
  }
}

TEST(QuantPolicy, DynamicScalingReducesError) {
  QuantConfig with, without;
  with.scale_mode = ScaleMode::kDynamic;
  without.scale_mode = ScaleMode::kNone;
  QuantPolicy pw(with), pn(without);
  pw.activate();
  pn.activate();

  Rng rng(63);
  const Tensor src = Tensor::randn({4096}, rng, 0.015f);
  Tensor a = src, b = src;
  pw.quantize_activation(a, "l", LayerClass::kConv);
  pn.quantize_activation(b, "l", LayerClass::kConv);
  double mse_with = 0.0, mse_without = 0.0;
  for (std::size_t i = 0; i < src.numel(); ++i) {
    mse_with += (a[i] - src[i]) * static_cast<double>(a[i] - src[i]);
    mse_without += (b[i] - src[i]) * static_cast<double>(b[i] - src[i]);
  }
  EXPECT_LT(mse_with, mse_without);
}

TEST(QuantPolicy, CalibrationFreezesWeightShifts) {
  Rng rng(64);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  QuantConfig cfg;
  cfg.scale_mode = ScaleMode::kCalibrated;
  QuantPolicy p(cfg);
  p.calibrate(*net);
  for (nn::Param* param : net->params()) {
    const auto shift = p.calibrated_shift(param->name);
    ASSERT_TRUE(shift.has_value()) << param->name;
    EXPECT_EQ(*shift, scale_shift(param->value, cfg.sigma));
  }
  EXPECT_FALSE(p.calibrated_shift("nonexistent").has_value());
}

TEST(QuantPolicy, CountsTransforms) {
  QuantPolicy p;
  p.activate();
  Tensor t({10});
  p.quantize_activation(t, "l", LayerClass::kConv);
  EXPECT_EQ(p.transforms_performed(), 10u);
}

TEST(QuantPolicy, ImagenetConfigUses16Everywhere) {
  const QuantConfig c = QuantConfig::imagenet16();
  EXPECT_EQ(c.conv.forward.n, 16);
  EXPECT_EQ(c.conv.forward.es, 1);
  EXPECT_EQ(c.conv.backward.es, 2);
  EXPECT_EQ(c.bn.forward.n, 16);
}

// ---------------------------------------------------------------------------
// Fig. 3 end-to-end: quantized training still learns.
// ---------------------------------------------------------------------------
TEST(QuantizedTraining, MlpWithPositPolicyLearnsMoons) {
  Rng rng(65);
  auto net = nn::mlp(2, 24, 2, 2, rng);
  QuantConfig cfg = QuantConfig::imagenet16();  // 16-bit posit everywhere
  auto policy = std::make_unique<QuantPolicy>(cfg);

  nn::TrainConfig tc;
  tc.epochs = 40;
  tc.batch_size = 32;
  tc.sgd = {.lr = 0.1f, .momentum = 0.9f, .weight_decay = 0.0f};
  tc.schedule = {.base_lr = 0.1f, .drop_epochs = {30}, .factor = 10.0f};
  tc.warmup_epochs = 2;
  QuantPolicy* praw = policy.get();
  tc.on_warmup_end = [praw](nn::Sequential& n) {
    praw->calibrate(n);
    praw->activate();
  };

  const auto data = pdnn::data::make_two_moons(200, 0.15f, 7);
  nn::Trainer trainer(*net, policy.get(), tc);
  const auto hist = trainer.fit(data.train.images, data.train.labels, data.test.images, data.test.labels);
  EXPECT_FALSE(hist[0].quantized);
  EXPECT_FALSE(hist[1].quantized);
  EXPECT_TRUE(hist[2].quantized);
  EXPECT_GT(hist.back().test_acc, 0.93f) << "posit-16 training should match FP32 on moons";
  EXPECT_GT(praw->transforms_performed(), 0u);
}

TEST(QuantizedTraining, WeightsAreOnPositGridAfterTraining) {
  Rng rng(66);
  auto net = nn::mlp(2, 8, 2, 1, rng);
  QuantConfig cfg = QuantConfig::imagenet16();
  cfg.scale_mode = ScaleMode::kNone;  // plain grid for an exact check
  QuantPolicy policy(cfg);

  nn::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 16;
  tc.warmup_epochs = 0;
  tc.on_warmup_end = [&policy](nn::Sequential&) { policy.activate(); };
  const auto data = pdnn::data::make_two_moons(40, 0.2f, 13);
  nn::Trainer trainer(*net, &policy, tc);
  trainer.fit(data.train.images, data.train.labels, data.test.images, data.test.labels);

  // Fig. 3c: stored weights were re-quantized after the last update.
  for (nn::Param* p : net->params()) {
    const PositSpec s = p->layer_class == nn::LayerClass::kBn ? cfg.bn.forward : cfg.linear.forward;
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      ASSERT_EQ(p->value[i], posit_transform(p->value[i], s)) << p->name << "[" << i << "]";
    }
  }
}

TEST(StatsCollector, TracksSelectedParams) {
  Rng rng(67);
  nn::ResNetConfig rc;
  rc.base_channels = 4;
  auto net = nn::cifar_resnet(rc, rng);
  WeightStatsCollector collector({"conv1.weight", "stage2.block0.bn1.weight"});
  collector.collect(0, *net);
  collector.collect(1, *net);
  EXPECT_EQ(collector.series("conv1.weight").size(), 2u);
  EXPECT_EQ(collector.series("stage2.block0.bn1.weight").size(), 2u);
  EXPECT_TRUE(collector.series("not-tracked").empty());
  EXPECT_EQ(collector.series("conv1.weight")[1].epoch, 1u);
  EXPECT_GT(collector.series("conv1.weight")[0].moments.stddev, 0.0);
  EXPECT_EQ(collector.tracked().size(), 2u);
}

}  // namespace
}  // namespace pdnn::quant
