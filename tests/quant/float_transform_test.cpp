// float_transform_test.cpp — reduced-precision float quantizer and policy.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>

#include "quant/float_policy.hpp"
#include "quant/float_transform.hpp"

namespace pdnn::quant {
namespace {

TEST(FpSpec, DerivedConstants) {
  const FpSpec half = FpSpec::fp16();
  EXPECT_EQ(half.total_bits(), 16);
  EXPECT_EQ(half.bias(), 15);
  EXPECT_EQ(half.max_exp(), 15);
  EXPECT_EQ(half.min_exp(), -14);
  EXPECT_DOUBLE_EQ(half.max_value(), 65504.0);           // IEEE half max
  EXPECT_DOUBLE_EQ(half.min_subnormal(), 0x1p-24);       // IEEE half denorm min
  const FpSpec bf = FpSpec::bf16();
  EXPECT_EQ(bf.bias(), 127);
  EXPECT_EQ(bf.min_exp(), -126);
}

TEST(FpQuantize, Fp16MatchesHardwareSemantics) {
  // Values exactly representable in fp16 are fixed points.
  for (const float v : {0.0f, 1.0f, -1.5f, 0.0999755859375f, 65504.0f, 6.103515625e-05f}) {
    EXPECT_EQ(fp_quantize(v, FpSpec::fp16()), v) << v;
  }
  // 1 + 2^-11 is exactly between 1 and 1+2^-10: ties to even -> 1.
  EXPECT_EQ(fp_quantize(1.0f + 0x1p-11f, FpSpec::fp16()), 1.0f);
  // Just above the tie rounds up.
  EXPECT_EQ(fp_quantize(1.0f + 0x1.2p-11f, FpSpec::fp16()), 1.0f + 0x1p-10f);
  // Overflow saturates (no inf in this simulation).
  EXPECT_EQ(fp_quantize(1e10f, FpSpec::fp16()), 65504.0f);
  EXPECT_EQ(fp_quantize(-1e10f, FpSpec::fp16()), -65504.0f);
}

TEST(FpQuantize, SubnormalsAreGradual) {
  const FpSpec half = FpSpec::fp16();
  const float denorm_min = 0x1p-24f;
  EXPECT_EQ(fp_quantize(denorm_min, half), denorm_min);
  EXPECT_EQ(fp_quantize(denorm_min * 3, half), denorm_min * 3);
  // Halfway below the smallest subnormal flushes to zero (nearest-even).
  EXPECT_EQ(fp_quantize(denorm_min * 0.49f, half), 0.0f);
  // Above half rounds up to the smallest subnormal.
  EXPECT_EQ(fp_quantize(denorm_min * 0.51f, half), denorm_min);
}

TEST(FpQuantize, Fp16AgreesWithCompilerHalfConversionOnRandoms) {
  // GCC's __fp16/_Float16 is available on this target: use it as an oracle.
#if defined(__FLT16_MAX__)
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<float> dist(-100.0f, 100.0f);
  for (int t = 0; t < 20000; ++t) {
    const float x = dist(rng);
    const auto h = static_cast<_Float16>(x);
    EXPECT_EQ(fp_quantize(x, FpSpec::fp16()), static_cast<float>(h)) << x;
  }
#else
  GTEST_SKIP() << "no _Float16 support";
#endif
}

TEST(FpQuantize, TowardZeroNeverIncreasesMagnitude) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<float> dist(-10.0f, 10.0f);
  for (int t = 0; t < 5000; ++t) {
    const float x = dist(rng);
    const float q = fp_quantize(x, FpSpec::fp8_152(), posit::RoundMode::kTowardZero);
    EXPECT_LE(std::fabs(q), std::fabs(x));
  }
}

TEST(FpQuantize, StochasticIsUnbiased) {
  const FpSpec spec = FpSpec::fp8_152();
  posit::RoundingRng rng(77);
  const float lo = 1.0f, hi = 1.25f;  // adjacent fp8(1-5-2) values
  const float x = lo + 0.25f * (hi - lo);
  int ups = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const float q = fp_quantize(x, spec, posit::RoundMode::kStochastic, &rng);
    ASSERT_TRUE(q == lo || q == hi);
    if (q == hi) ++ups;
  }
  EXPECT_NEAR(static_cast<double>(ups) / kTrials, 0.25, 0.02);
}

TEST(FpQuantize, Idempotent) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<float> dist(-50.0f, 50.0f);
  for (const FpSpec spec : {FpSpec::fp16(), FpSpec::bf16(), FpSpec::fp8_152(), FpSpec::fp8_143()}) {
    for (int t = 0; t < 3000; ++t) {
      const float q = fp_quantize(dist(rng), spec);
      ASSERT_EQ(fp_quantize(q, spec), q);
    }
  }
}

TEST(FpPolicy, MasterWeightModeSkipsUpdateQuantization) {
  FpPolicyConfig cfg = FpPolicyConfig::fp16_mixed();
  FpPolicy policy(cfg);
  policy.activate();
  tensor::Tensor w({3});
  w[0] = 1.0f + 0x1p-20f;  // not representable in fp16
  w[1] = 0.1f;
  w[2] = -2.0f;
  tensor::Tensor master = w;
  policy.quantize_updated_weight(master, "fc", nn::LayerClass::kLinear);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(master[i], w[i]) << "FP32 master copy untouched";

  // But the forward weight view IS quantized.
  const tensor::Tensor fwd = policy.quantize_weight(w, "fc", nn::LayerClass::kLinear);
  EXPECT_NE(fwd[0], w[0]);
}

TEST(FpPolicy, Fp8ConfigQuantizesCoarsely) {
  FpPolicy policy(FpPolicyConfig::fp8_training());
  policy.activate();
  tensor::Rng rng(9);
  tensor::Tensor a = tensor::Tensor::randn({256}, rng);
  const tensor::Tensor src = a;
  policy.quantize_activation(a, "conv", nn::LayerClass::kConv);
  // 2 mantissa bits: values collapse onto a coarse grid; error nonzero.
  double err = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) err += std::fabs(a[i] - src[i]);
  EXPECT_GT(err, 0.0);
  // Idempotent under the same policy transform (dynamic shift recomputed on
  // already-quantized data can differ by at most re-rounding to same grid).
  tensor::Tensor again = a;
  policy.quantize_activation(again, "conv", nn::LayerClass::kConv);
  double drift = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) drift += std::fabs(again[i] - a[i]);
  EXPECT_NEAR(drift, 0.0, 1e-6);
}

}  // namespace
}  // namespace pdnn::quant
