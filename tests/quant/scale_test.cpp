// scale_test.cpp — Eq. (2) statistics: fast-log2 accuracy and properties.
#include <gtest/gtest.h>

#include <cmath>

#include "quant/scale.hpp"
#include "tensor/random.hpp"

namespace pdnn::quant {
namespace {

using tensor::Rng;
using tensor::Tensor;

TEST(Log2Mean, FastApproximationWithinBound) {
  // log2_mean uses a quadratic mantissa approximation (error <= ~0.01,
  // exact at powers of two); verify the bound against libm.
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    Tensor t = Tensor::randn({512}, rng, static_cast<float>(std::exp2(rng.uniform(-8.0, 8.0))));
    double exact = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < t.numel(); ++i) {
      if (t[i] != 0.0f) {
        exact += std::log2(std::fabs(static_cast<double>(t[i])));
        ++n;
      }
    }
    exact /= static_cast<double>(n);
    EXPECT_NEAR(tensor::log2_mean(t), exact, 0.011);
  }
}

TEST(Log2Mean, ExactAtPowersOfTwo) {
  Tensor t({4});
  t[0] = 4.0f;
  t[1] = -0.5f;
  t[2] = 1.0f;
  t[3] = 0.125f;  // logs: 2, -1, 0, -3 -> mean -0.5
  EXPECT_DOUBLE_EQ(tensor::log2_mean(t), -0.5);
}

TEST(ScaleShift, ShiftTracksMagnitude) {
  Rng rng(5);
  // Scaling the tensor by 2^k shifts Eq. (2) by exactly k.
  Tensor t = Tensor::randn({2048}, rng, 0.1f);
  const int base = scale_shift(t, kPaperSigma);
  Tensor scaled = t;
  scaled *= 16.0f;  // 2^4
  EXPECT_EQ(scale_shift(scaled, kPaperSigma), base + 4);
  Tensor shrunk = t;
  shrunk *= 1.0f / 256.0f;  // 2^-8
  EXPECT_EQ(scale_shift(shrunk, kPaperSigma), base - 8);
}

TEST(ScaleShift, SigmaAddsDirectly) {
  Rng rng(7);
  const Tensor t = Tensor::randn({512}, rng, 0.03f);
  EXPECT_EQ(scale_shift(t, 0) + 2, scale_shift(t, 2));
  EXPECT_EQ(scale_shift(t, 0) + 5, scale_shift(t, 5));
}

TEST(ScaleShift, AllZerosGiveSigma) {
  const Tensor t = Tensor::zeros({16});
  EXPECT_EQ(scale_shift(t, kPaperSigma), kPaperSigma);  // center defined as 0
}

}  // namespace
}  // namespace pdnn::quant
