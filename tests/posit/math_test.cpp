// math_test.cpp — double-mediated elementary functions.
#include <gtest/gtest.h>

#include <cmath>

#include "posit/math.hpp"

namespace pdnn::posit {
namespace {

TEST(PositMath, SqrtInverseOfSquare) {
  // Tapered precision: squaring pushes values into the regime region where
  // posit(16,1) keeps fewer fraction bits, so the tolerance is magnitude-aware
  // (~3% for 0.001, whose square has only ~7 fraction bits).
  for (double x : {0.25, 1.0, 2.0, 3.5, 100.0, 0.001}) {
    const Posit16_1 p{x};
    const Posit16_1 r = sqrt(p * p);
    EXPECT_NEAR(r.value(), p.value(), std::abs(p.value()) * 0.03) << x;
  }
}

TEST(PositMath, SqrtOfNegativeIsNar) {
  EXPECT_TRUE(sqrt(Posit16_1{-1.0}).is_nar());
  EXPECT_TRUE(log(Posit16_1{-2.0}).is_nar());
  EXPECT_TRUE(log(Posit16_1{0.0}).is_nar());
}

TEST(PositMath, ExpLogRoundTrip) {
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    const Posit16_1 p{x};
    const double roundtrip = log(exp(p)).value();
    EXPECT_NEAR(roundtrip, x, 0.01 + 0.01 * x);
  }
}

TEST(PositMath, TanhRangeAndSymmetry) {
  for (double x : {-3.0, -1.0, -0.25, 0.0, 0.25, 1.0, 3.0}) {
    const double t = tanh(Posit16_1{x}).value();
    EXPECT_LE(std::fabs(t), 1.0);
    EXPECT_NEAR(t, std::tanh(x), 0.01);
    EXPECT_NEAR(tanh(Posit16_1{-x}).value(), -t, 1e-3);
  }
}

TEST(PositMath, SigmoidMatchesReference) {
  for (double x : {-5.0, -1.0, 0.0, 1.0, 5.0}) {
    EXPECT_NEAR(sigmoid(Posit16_1{x}).value(), 1.0 / (1.0 + std::exp(-x)), 0.005) << x;
  }
}

TEST(PositMath, NarPropagates) {
  EXPECT_TRUE(exp(Posit16_1::nar()).is_nar());
  EXPECT_TRUE(tanh(Posit16_1::nar()).is_nar());
  EXPECT_TRUE(sigmoid(Posit16_1::nar()).is_nar());
  EXPECT_TRUE(sqrt(Posit16_1::nar()).is_nar());
}

TEST(PositMath, RoundingModeRespected) {
  // Toward-zero results never exceed the double-precision value in magnitude.
  const PositSpec s{8, 1};
  for (double x : {0.3, 0.7, 1.3, 2.9, 11.0}) {
    const std::uint32_t c = exp_code(from_double(x, s), s, RoundMode::kTowardZero);
    EXPECT_LE(to_double(c, s), std::exp(to_double(from_double(x, s), s)) + 1e-12);
  }
}

}  // namespace
}  // namespace pdnn::posit
