// tables_test.cpp — regenerates the paper's Table I and checks every cell.
#include <gtest/gtest.h>

#include "posit/tables.hpp"

namespace pdnn::posit {
namespace {

// Table I: "The detail structures of positive values of (5,1) posit number".
struct TableIRow {
  const char* binary;
  int regime;     // 'x' rows (zero) handled separately
  int exponent;
  const char* mantissa;
  const char* value;
};

TEST(TablesTableI, AllPositiveRowsMatchPaper) {
  const PositSpec s{5, 1};
  const TableIRow rows[] = {
      {"00001", -3, 0, "0", "1/64"}, {"00010", -2, 0, "0", "1/16"}, {"00011", -2, 1, "0", "1/8"},
      {"00100", -1, 0, "0", "1/4"},  {"00101", -1, 0, "1/2", "3/8"}, {"00110", -1, 1, "0", "1/2"},
      {"00111", -1, 1, "1/2", "3/4"}, {"01000", 0, 0, "0", "1"},     {"01001", 0, 0, "1/2", "3/2"},
      {"01010", 0, 1, "0", "2"},     {"01011", 0, 1, "1/2", "3"},    {"01100", 1, 0, "0", "4"},
      {"01101", 1, 1, "0", "8"},     {"01110", 2, 0, "0", "16"},     {"01111", 3, 0, "0", "64"},
  };
  for (std::uint32_t code = 1; code <= 0b01111u; ++code) {
    const CodeDescription d = describe(code, s);
    const TableIRow& want = rows[code - 1];
    EXPECT_EQ(d.binary, want.binary) << "code " << code;
    EXPECT_EQ(d.regime, want.regime) << "code " << code;
    EXPECT_EQ(d.exponent, want.exponent) << "code " << code;
    EXPECT_EQ(d.mantissa_str, want.mantissa) << "code " << code;
    EXPECT_EQ(d.value_str, want.value) << "code " << code;
  }
}

TEST(TablesTableI, ZeroRow) {
  const CodeDescription d = describe(0u, PositSpec{5, 1});
  EXPECT_EQ(d.binary, "00000");
  EXPECT_TRUE(d.is_zero);
  EXPECT_EQ(d.value_str, "0");
}

TEST(TablesTableI, NarRow) {
  const CodeDescription d = describe(0b10000u, PositSpec{5, 1});
  EXPECT_TRUE(d.is_nar);
  EXPECT_EQ(d.value_str, "NaR");
}

TEST(TablesEnumerate, CoversRequestedRange) {
  const auto rows = enumerate(0u, 0b01111u, PositSpec{5, 1});
  ASSERT_EQ(rows.size(), 16u);
  EXPECT_EQ(rows.front().value_str, "0");
  EXPECT_EQ(rows.back().value_str, "64");
}

TEST(TablesEnumerate, NegativeCodesDescribe) {
  const PositSpec s{5, 1};
  // Two's complement of 01000 (value 1) is 11000 (value -1).
  const CodeDescription d = describe(0b11000u, s);
  EXPECT_EQ(d.value, -1.0);
  EXPECT_EQ(d.value_str, "-1");
}

TEST(TablesDyadic, Rendering) {
  EXPECT_EQ(dyadic_to_string(0, 0), "0");
  EXPECT_EQ(dyadic_to_string(1, 0), "1");
  EXPECT_EQ(dyadic_to_string(3, -1), "3/2");
  EXPECT_EQ(dyadic_to_string(3, -3), "3/8");
  EXPECT_EQ(dyadic_to_string(1, 6), "64");
  EXPECT_EQ(dyadic_to_string(4, -8), "1/64");  // reduces 4/256
  EXPECT_EQ(dyadic_to_string(6, -2), "3/2");   // reduces 6/4
}

}  // namespace
}  // namespace pdnn::posit
