// quire_test.cpp — exact accumulation invariants of the quire.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "posit/quire.hpp"

namespace pdnn::posit {
namespace {

class QuireFormatTest : public ::testing::TestWithParam<std::pair<int, int>> {
 protected:
  PositSpec spec() const { return PositSpec{GetParam().first, GetParam().second}; }
};

TEST_P(QuireFormatTest, EmptyQuireIsZero) {
  Quire q(spec());
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(q.to_posit(), 0u);
  EXPECT_DOUBLE_EQ(q.to_double(), 0.0);
}

TEST_P(QuireFormatTest, SingleProductRoundsLikeMul) {
  const PositSpec s = spec();
  std::mt19937_64 rng(11);
  for (int t = 0; t < 20000; ++t) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng()) & s.mask();
    const std::uint32_t b = static_cast<std::uint32_t>(rng()) & s.mask();
    if (a == s.nar_code() || b == s.nar_code()) continue;
    Quire q(s);
    q.add_product(a, b);
    ASSERT_EQ(q.to_posit(), mul(a, b, s))
        << s.to_string() << " " << to_double(a, s) << "*" << to_double(b, s);
  }
}

TEST_P(QuireFormatTest, SinglePositRoundTripsExactly) {
  const PositSpec s = spec();
  std::mt19937_64 rng(13);
  for (int t = 0; t < 20000; ++t) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng()) & s.mask();
    if (a == s.nar_code()) continue;
    Quire q(s);
    q.add_posit(a);
    ASSERT_EQ(q.to_posit(), a);
    ASSERT_DOUBLE_EQ(q.to_double(), to_double(a, s));
  }
}

TEST_P(QuireFormatTest, ProductMinusProductCancelsExactly) {
  const PositSpec s = spec();
  std::mt19937_64 rng(19);
  for (int t = 0; t < 5000; ++t) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng()) & s.mask();
    const std::uint32_t b = static_cast<std::uint32_t>(rng()) & s.mask();
    if (a == s.nar_code() || b == s.nar_code()) continue;
    Quire q(s);
    q.add_product(a, b);
    q.sub_product(a, b);
    ASSERT_TRUE(q.is_zero()) << to_double(a, s) << " * " << to_double(b, s);
  }
}

TEST_P(QuireFormatTest, ExtremeScaleSumIsExact) {
  // maxpos^2 + minpos^2 - maxpos^2 == minpos^2 exactly: impossible with any
  // rounding accumulator, trivial for the quire.
  const PositSpec s = spec();
  Quire q(s);
  q.add_product(s.maxpos_code(), s.maxpos_code());
  q.add_product(s.minpos_code(), s.minpos_code());
  q.sub_product(s.maxpos_code(), s.maxpos_code());
  const std::uint32_t expected = mul(s.minpos_code(), s.minpos_code(), s);
  EXPECT_EQ(q.to_posit(), expected);
}

TEST_P(QuireFormatTest, DotProductMatchesDoubleReference) {
  const PositSpec s = spec();
  std::mt19937_64 rng(29);
  std::uniform_real_distribution<double> dist(-4.0, 4.0);
  for (int trial = 0; trial < 200; ++trial) {
    Quire q(s);
    double reference = 0.0;  // exact: products/sums of small posits fit double
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t a = from_double(dist(rng), s);
      const std::uint32_t b = from_double(dist(rng), s);
      q.add_product(a, b);
      reference += to_double(a, s) * to_double(b, s);
    }
    ASSERT_EQ(q.to_posit(), from_double(reference, s)) << s.to_string() << " trial " << trial;
  }
}

TEST_P(QuireFormatTest, LongAccumulationDoesNotOverflow) {
  const PositSpec s = spec();
  Quire q(s);
  const std::uint32_t one = from_double(1.0, s);
  const int kCount = 100000;
  for (int i = 0; i < kCount; ++i) q.add_product(one, one);
  EXPECT_DOUBLE_EQ(q.to_double(), static_cast<double>(kCount));
  // Rounded posit result saturates at maxpos if the count exceeds it.
  const double expected = std::min(static_cast<double>(kCount), maxpos_value(s));
  EXPECT_DOUBLE_EQ(to_double(q.to_posit(), s), to_double(from_double(expected, s), s));
}

TEST_P(QuireFormatTest, NarPoisonsTheQuire) {
  const PositSpec s = spec();
  Quire q(s);
  q.add_product(from_double(1.0, s), s.nar_code());
  EXPECT_TRUE(q.is_nar());
  EXPECT_EQ(q.to_posit(), s.nar_code());
  q.clear();
  EXPECT_FALSE(q.is_nar());
  EXPECT_TRUE(q.is_zero());
}

TEST_P(QuireFormatTest, QuireBeatsSerialRoundingOnCancellation) {
  // sum_i (x - x) interleaved as +x, +x, ..., -x, -x: serial posit
  // accumulation of large then small terms loses the small ones; the quire
  // recovers the exact answer.
  const PositSpec s = spec();
  const std::uint32_t big = from_double(maxpos_value(s) / 2, s);
  const std::uint32_t small = s.minpos_code();
  Quire q(s);
  q.add_posit(big);
  q.add_posit(small);
  q.add_posit(neg(big, s));
  EXPECT_EQ(q.to_posit(), small) << "quire preserves the small term";

  std::uint32_t serial = add(big, small, s);
  serial = add(serial, neg(big, s), s);
  EXPECT_NE(serial, small) << "serial rounding drops the small term (sanity)";
}

TEST_P(QuireFormatTest, UnpackedAddProductMatchesCodedAccumulation) {
  // Decode-once accumulation must land in exactly the same register state as
  // the coded path: same rounded posit after any mixed-sign sequence.
  const PositSpec s = spec();
  std::mt19937_64 rng(37);
  for (int trial = 0; trial < 500; ++trial) {
    Quire coded(s), unpacked(s);
    for (int i = 0; i < 48; ++i) {
      std::uint32_t a = static_cast<std::uint32_t>(rng()) & s.mask();
      std::uint32_t b = static_cast<std::uint32_t>(rng()) & s.mask();
      if (a == s.nar_code()) a = 0;
      if (b == s.nar_code()) b = 0;
      coded.add_product(a, b);
      unpacked.add_product(decode_unpacked(a, s), decode_unpacked(b, s));
    }
    ASSERT_EQ(unpacked.to_posit(), coded.to_posit()) << s.to_string() << " trial " << trial;
    ASSERT_DOUBLE_EQ(unpacked.to_double(), coded.to_double());
  }
}

TEST_P(QuireFormatTest, AccumulateDotMatchesSequentialAddProduct) {
  // The batched carry-save dot must leave the register in exactly the state
  // `count` sequential deposits would — including zeros, extreme scales, and
  // heavy cancellation.
  const PositSpec s = spec();
  std::mt19937_64 rng(43);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Unpacked> a, b;
    Quire sequential(s);
    for (int i = 0; i < 96; ++i) {
      std::uint32_t ca = static_cast<std::uint32_t>(rng()) & s.mask();
      std::uint32_t cb = static_cast<std::uint32_t>(rng()) & s.mask();
      if (ca == s.nar_code()) ca = 0;
      if (cb == s.nar_code()) cb = 0;
      a.push_back(decode_unpacked(ca, s));
      b.push_back(decode_unpacked(cb, s));
      sequential.add_product(ca, cb);
    }
    Quire batched(s);
    batched.accumulate_dot(a.data(), b.data(), a.size());
    ASSERT_EQ(batched.to_posit(), sequential.to_posit()) << s.to_string() << " trial " << trial;
    ASSERT_DOUBLE_EQ(batched.to_double(), sequential.to_double());
  }
  // NaR operands poison the batched path too.
  const Unpacked nar = decode_unpacked(s.nar_code(), s);
  const Unpacked one = decode_unpacked(from_double(1.0, s), s);
  Quire q(s);
  q.accumulate_dot(&nar, &one, 1);
  EXPECT_TRUE(q.is_nar());
}

TEST_P(QuireFormatTest, UnpackedNarPoisonsLikeCoded) {
  const PositSpec s = spec();
  Quire q(s);
  q.add_product(decode_unpacked(from_double(1.0, s), s), decode_unpacked(s.nar_code(), s));
  EXPECT_TRUE(q.is_nar());
  EXPECT_EQ(q.to_posit(), s.nar_code());
  // NaR * zero is still NaR (matches the coded ordering of the checks).
  q.clear();
  q.add_product(decode_unpacked(s.nar_code(), s), decode_unpacked(0u, s));
  EXPECT_TRUE(q.is_nar());
}

INSTANTIATE_TEST_SUITE_P(FormatSweep, QuireFormatTest,
                         ::testing::Values(std::pair{8, 0}, std::pair{8, 1}, std::pair{8, 2}, std::pair{16, 1},
                                           std::pair{16, 2}, std::pair{32, 3}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.first) + "_" + std::to_string(info.param.second);
                         });

}  // namespace
}  // namespace pdnn::posit
