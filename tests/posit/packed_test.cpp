// packed_test.cpp — bit-packed posit tensors (the model-size claim).
#include <gtest/gtest.h>

#include <random>

#include "posit/packed.hpp"
#include "tensor/random.hpp"

namespace pdnn::posit {
namespace {

class PackedFormatTest : public ::testing::TestWithParam<std::pair<int, int>> {
 protected:
  PositSpec spec() const { return PositSpec{GetParam().first, GetParam().second}; }
};

TEST_P(PackedFormatTest, RoundTripEqualsQuantizedValues) {
  const PositSpec s = spec();
  tensor::Rng rng(11);
  const tensor::Tensor t = tensor::Tensor::randn({257}, rng);  // odd count: cross-byte packing
  const PackedPositTensor packed = PackedPositTensor::pack(t, s, RoundMode::kNearestEven);
  const tensor::Tensor back = packed.unpack();
  ASSERT_EQ(back.numel(), t.numel());
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const double want = to_double(from_double(t[i], s), s);
    ASSERT_EQ(back[i], static_cast<float>(want)) << i;
  }
}

TEST_P(PackedFormatTest, CodesSurviveSetGet) {
  const PositSpec s = spec();
  PackedPositTensor packed(s, {100});
  std::mt19937_64 rng(13);
  std::vector<std::uint32_t> codes(100);
  for (std::size_t i = 0; i < 100; ++i) {
    codes[i] = static_cast<std::uint32_t>(rng()) & s.mask();
    packed.set_code(i, codes[i]);
  }
  for (std::size_t i = 0; i < 100; ++i) ASSERT_EQ(packed.code_at(i), codes[i]) << i;
  // Overwrite a middle element; neighbors must be untouched.
  packed.set_code(50, s.maxpos_code());
  EXPECT_EQ(packed.code_at(49), codes[49]);
  EXPECT_EQ(packed.code_at(50), s.maxpos_code());
  EXPECT_EQ(packed.code_at(51), codes[51]);
}

INSTANTIATE_TEST_SUITE_P(FormatSweep, PackedFormatTest,
                         ::testing::Values(std::pair{5, 1}, std::pair{8, 1}, std::pair{8, 2},
                                           std::pair{13, 1}, std::pair{16, 1}, std::pair{16, 2},
                                           std::pair{32, 3}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.first) + "_" +
                                  std::to_string(info.param.second);
                         });

TEST(PackedSize, PaperModelSizeClaim) {
  // Section IV: 8-bit posit -> 25% of FP32 model size; 16-bit -> 50%.
  tensor::Rng rng(17);
  const tensor::Tensor model = tensor::Tensor::randn({40000}, rng, 0.05f);
  const PackedPositTensor p8 = PackedPositTensor::pack(model, PositSpec{8, 1});
  const PackedPositTensor p16 = PackedPositTensor::pack(model, PositSpec{16, 1});
  EXPECT_NEAR(p8.ratio_vs_fp32(), 0.25, 1e-4);
  EXPECT_NEAR(p16.ratio_vs_fp32(), 0.50, 1e-4);
}

TEST(PackedSize, OddWidthsPackTightly) {
  const PackedPositTensor p13(PositSpec{13, 1}, {1000});
  // 13000 bits = 1625 bytes exactly.
  EXPECT_EQ(p13.byte_size(), 1625u);
}

TEST(PackedSize, NarUnpacksToZeroInFloats) {
  PackedPositTensor p(PositSpec{8, 1}, {2});
  p.set_code(0, PositSpec{8, 1}.nar_code());
  p.set_code(1, from_double(2.0, PositSpec{8, 1}));
  const tensor::Tensor t = p.unpack();
  EXPECT_EQ(t[0], 0.0f);
  EXPECT_EQ(t[1], 2.0f);
}

}  // namespace
}  // namespace pdnn::posit
