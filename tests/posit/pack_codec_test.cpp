// pack_codec_test.cpp — exhaustive oracles for the bit-packed code stream and
// the SIMD posit kernels (streamvbyte/simdbp idiom: every spec, every ragged
// block length, scalar reference as ground truth).
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "posit/packed.hpp"
#include "posit/quire.hpp"
#include "posit/simd.hpp"
#include "posit/unpacked.hpp"

namespace pdnn::posit {
namespace {

/// RAII: pin the dispatcher to the scalar fallback inside a scope.
struct ScalarOnly {
  ScalarOnly() { simd::force_disable(true); }
  ~ScalarOnly() { simd::force_disable(false); }
};

std::vector<PositSpec> codec_specs() {
  std::vector<PositSpec> specs;
  for (int n = 2; n <= 10; ++n)
    for (int es = 0; es <= 2; ++es) specs.push_back(PositSpec{n, es});
  specs.push_back(PositSpec{16, 1});
  specs.push_back(PositSpec{16, 2});
  specs.push_back(PositSpec{32, 2});
  specs.push_back(PositSpec{32, 3});
  return specs;
}

/// The interesting boundary codes of a spec: zero, NaR, +-minpos, +-maxpos,
/// and the codes straddling the sign bit.
std::vector<std::uint32_t> boundary_codes(const PositSpec& s) {
  return {0u,
          s.nar_code(),
          1u,
          (0u - 1u) & s.mask(),
          s.maxpos_code(),
          (0u - s.maxpos_code()) & s.mask(),
          (s.nar_code() - 1u) & s.mask(),
          (s.nar_code() + 1u) & s.mask()};
}

constexpr std::size_t kBlock = 8;  // the SIMD group size the codec decodes by

TEST(PackCodec, PackUnpackIdentityEveryRaggedRange) {
  std::mt19937_64 rng(2024);
  for (const PositSpec& s : codec_specs()) {
    for (std::size_t len = 0; len <= 3 * kBlock + 1; ++len) {
      std::vector<std::uint32_t> codes(len);
      for (auto& c : codes) c = static_cast<std::uint32_t>(rng()) & s.mask();
      std::vector<std::uint8_t> packed(packed_capacity(len, s), 0u);
      pack_codes(codes.data(), 0, len, s, packed.data());
      // Every sub-range [first, first+cnt) must unpack to the identical codes
      // (ragged heads and tails at every bit phase).
      for (std::size_t first = 0; first <= len; ++first) {
        for (std::size_t cnt = 0; first + cnt <= len; ++cnt) {
          std::vector<std::uint32_t> got(cnt, 0xDEADBEEFu);
          unpack_codes(packed.data(), first, cnt, s, got.data());
          for (std::size_t i = 0; i < cnt; ++i)
            ASSERT_EQ(got[i], codes[first + i])
                << "n=" << s.n << " es=" << s.es << " len=" << len << " first=" << first;
        }
      }
      for (std::size_t i = 0; i < len; ++i)
        ASSERT_EQ(unpack_one(packed.data(), i, s), codes[i]) << "n=" << s.n << " i=" << i;
    }
  }
}

TEST(PackCodec, SplitPacksShareBoundaryBytes) {
  // pack_codes ORs into zeroed bits, so a stream may be packed in arbitrary
  // chunks even when adjacent chunks share a byte. Split at every index.
  std::mt19937_64 rng(7);
  for (const PositSpec& s : codec_specs()) {
    const std::size_t len = 2 * kBlock + 3;
    std::vector<std::uint32_t> codes(len);
    for (auto& c : codes) c = static_cast<std::uint32_t>(rng()) & s.mask();
    for (std::size_t split = 0; split <= len; ++split) {
      std::vector<std::uint8_t> packed(packed_capacity(len, s), 0u);
      pack_codes(codes.data(), 0, split, s, packed.data());
      pack_codes(codes.data() + split, split, len - split, s, packed.data());
      std::vector<std::uint32_t> got(len);
      unpack_codes(packed.data(), 0, len, s, got.data());
      ASSERT_EQ(got, codes) << "n=" << s.n << " es=" << s.es << " split=" << split;
    }
  }
}

TEST(PackCodec, AllZeroBlocksPackToZeroBytes) {
  for (const PositSpec& s : codec_specs()) {
    const std::size_t len = 3 * kBlock + 1;
    std::vector<std::uint32_t> codes(len, 0u);
    std::vector<std::uint8_t> packed(packed_capacity(len, s), 0xFFu);
    std::memset(packed.data(), 0, packed.size());
    pack_codes(codes.data(), 0, len, s, packed.data());
    for (std::size_t b = 0; b < packed_bytes(len, s); ++b) ASSERT_EQ(packed[b], 0u) << b;
    std::vector<std::uint32_t> got(len, 1u);
    unpack_codes(packed.data(), 0, len, s, got.data());
    ASSERT_EQ(got, codes);
  }
}

TEST(PackCodec, SignBoundaryCodesSurvive) {
  for (const PositSpec& s : codec_specs()) {
    const std::vector<std::uint32_t> codes = boundary_codes(s);
    std::vector<std::uint8_t> packed(packed_capacity(codes.size(), s), 0u);
    pack_codes(codes.data(), 0, codes.size(), s, packed.data());
    for (std::size_t i = 0; i < codes.size(); ++i)
      ASSERT_EQ(unpack_one(packed.data(), i, s), codes[i]) << "n=" << s.n << " i=" << i;
  }
}

TEST(PackCodec, PackedBytesMatchesFormatWidth) {
  EXPECT_EQ(packed_bytes(1000, PositSpec{8, 1}), 1000u);
  EXPECT_EQ(packed_bytes(1000, PositSpec{16, 1}), 2000u);
  EXPECT_EQ(packed_bytes(1000, PositSpec{5, 1}), 625u);
  EXPECT_EQ(packed_bytes(0, PositSpec{8, 1}), 0u);
  EXPECT_EQ(packed_bytes(3, PositSpec{3, 0}), 2u);  // 9 bits -> 2 bytes
}

// ---------------------------------------------------------------------------
// SIMD vs scalar decode: the AVX2 batch-of-8 kernel must reproduce
// decode_unpacked() bit for bit in every field, for every code of every spec
// (exhaustive through n=16; sampled + boundary-seeded for n=32).
// ---------------------------------------------------------------------------

void expect_same_decode(const std::vector<std::uint32_t>& codes, const PositSpec& s) {
  std::vector<Unpacked> vec(codes.size());
  std::vector<Unpacked> ref(codes.size());
  decode_unpacked(codes.data(), codes.size(), s, vec.data());
  {
    ScalarOnly scalar;
    decode_unpacked(codes.data(), codes.size(), s, ref.data());
  }
  for (std::size_t i = 0; i < codes.size(); ++i) {
    ASSERT_EQ(vec[i].sig, ref[i].sig) << "n=" << s.n << " es=" << s.es << " code=" << codes[i];
    ASSERT_EQ(vec[i].lsb_weight, ref[i].lsb_weight)
        << "n=" << s.n << " es=" << s.es << " code=" << codes[i];
    ASSERT_EQ(vec[i].neg, ref[i].neg) << "n=" << s.n << " es=" << s.es << " code=" << codes[i];
    ASSERT_EQ(vec[i].flags, ref[i].flags) << "n=" << s.n << " es=" << s.es << " code=" << codes[i];
  }
}

TEST(SimdDecode, MatchesScalarExhaustiveSmallSpecs) {
  if (!simd::available()) GTEST_SKIP() << "no AVX2 (or PDNN_NO_AVX2): nothing to cross-check";
  for (const PositSpec& s : codec_specs()) {
    if (s.n > 16) continue;
    std::vector<std::uint32_t> codes(std::size_t{1} << s.n);
    for (std::size_t c = 0; c < codes.size(); ++c) codes[c] = static_cast<std::uint32_t>(c);
    expect_same_decode(codes, s);
  }
}

TEST(SimdDecode, MatchesScalarSampledP32) {
  if (!simd::available()) GTEST_SKIP() << "no AVX2 (or PDNN_NO_AVX2): nothing to cross-check";
  std::mt19937_64 rng(99);
  for (const int es : {0, 2, 3}) {
    const PositSpec s{32, es};
    std::vector<std::uint32_t> codes = boundary_codes(s);
    for (std::size_t i = 0; i < (1u << 16); ++i) codes.push_back(static_cast<std::uint32_t>(rng()));
    expect_same_decode(codes, s);
  }
}

TEST(SimdDecode, RaggedTailLengthsDispatchCorrectly) {
  if (!simd::available()) GTEST_SKIP() << "no AVX2 (or PDNN_NO_AVX2): nothing to cross-check";
  std::mt19937_64 rng(41);
  const PositSpec s{8, 1};
  for (std::size_t len = 0; len <= 3 * kBlock + 1; ++len) {
    std::vector<std::uint32_t> codes(len);
    for (auto& c : codes) c = static_cast<std::uint32_t>(rng()) & s.mask();
    expect_same_decode(codes, s);
  }
}

// ---------------------------------------------------------------------------
// SIMD vs scalar quire accumulation: same dot products, identical register
// state (observed through to_posit and to_double), NaR propagation included.
// ---------------------------------------------------------------------------

std::vector<Unpacked> random_operands(std::size_t count, const PositSpec& s, std::mt19937_64& rng,
                                      bool with_specials) {
  std::vector<Unpacked> ops(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t code = static_cast<std::uint32_t>(rng()) & s.mask();
    if (!with_specials && code == s.nar_code()) code = 1u;
    ops[i] = decode_unpacked(code, s);
  }
  return ops;
}

void expect_same_dot(const std::vector<Unpacked>& a, const std::vector<Unpacked>& b,
                     const PositSpec& s) {
  Quire qv(s);
  qv.accumulate_dot(a.data(), b.data(), a.size());
  Quire qr(s);
  {
    ScalarOnly scalar;
    qr.accumulate_dot(a.data(), b.data(), a.size());
  }
  ASSERT_EQ(qv.is_nar(), qr.is_nar());
  ASSERT_EQ(qv.to_posit(), qr.to_posit()) << "n=" << s.n << " count=" << a.size();
  const double dv = qv.to_double();
  const double dr = qr.to_double();
  ASSERT_TRUE(dv == dr || (dv != dv && dr != dr)) << dv << " vs " << dr;
}

TEST(SimdQuire, MatchesScalarAcrossCountsAndSpecs) {
  if (!simd::available()) GTEST_SKIP() << "no AVX2 (or PDNN_NO_AVX2): nothing to cross-check";
  std::mt19937_64 rng(7777);
  for (const PositSpec& s : {PositSpec{8, 1}, PositSpec{8, 0}, PositSpec{16, 1}, PositSpec{32, 2}}) {
    for (const std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
                                    std::size_t{9}, std::size_t{16}, std::size_t{33},
                                    std::size_t{128}}) {
      for (int rep = 0; rep < 4; ++rep) {
        const auto a = random_operands(count, s, rng, /*with_specials=*/false);
        const auto b = random_operands(count, s, rng, /*with_specials=*/false);
        expect_same_dot(a, b, s);
      }
    }
  }
}

TEST(SimdQuire, NarPropagatesFromVectorHeadAndScalarTail) {
  if (!simd::available()) GTEST_SKIP() << "no AVX2 (or PDNN_NO_AVX2): nothing to cross-check";
  const PositSpec s{8, 1};
  std::mt19937_64 rng(3);
  for (const std::size_t nar_at : {std::size_t{0}, std::size_t{5}, std::size_t{8},
                                   std::size_t{15}, std::size_t{16}}) {
    auto a = random_operands(17, s, rng, false);
    auto b = random_operands(17, s, rng, false);
    a[nar_at] = decode_unpacked(s.nar_code(), s);
    Quire q(s);
    q.accumulate_dot(a.data(), b.data(), a.size());
    EXPECT_TRUE(q.is_nar()) << nar_at;
    EXPECT_EQ(q.to_posit(), s.nar_code());
    expect_same_dot(a, b, s);
  }
}

TEST(SimdQuire, ZeroOperandsDepositNothing) {
  if (!simd::available()) GTEST_SKIP() << "no AVX2 (or PDNN_NO_AVX2): nothing to cross-check";
  const PositSpec s{8, 1};
  std::vector<Unpacked> a(24, decode_unpacked(0u, s));
  std::vector<Unpacked> b(24);
  std::mt19937_64 rng(5);
  for (auto& u : b) u = decode_unpacked(static_cast<std::uint32_t>(rng()) & s.mask(), s);
  Quire q(s);
  q.accumulate_dot(a.data(), b.data(), a.size());
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(q.to_posit(), 0u);
}

TEST(SimdDispatch, ForceDisableIsObservable) {
  const bool avail = simd::available();
  EXPECT_EQ(simd::enabled(), avail);
  {
    ScalarOnly scalar;
    EXPECT_FALSE(simd::enabled());
  }
  EXPECT_EQ(simd::enabled(), avail);
}

}  // namespace
}  // namespace pdnn::posit
