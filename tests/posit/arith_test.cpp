// arith_test.cpp — exhaustive pairwise validation of posit arithmetic.
//
// Oracle strategy: operand values decode to exact doubles; for the small
// formats tested exhaustively, the exact sum/product fits in a long double
// (64-bit significand), so `from_double(exact_result)` — itself validated
// against an independent brute-force oracle in codec_test — gives the
// correctly rounded reference.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "posit/arith.hpp"
#include "posit/posit.hpp"
#include "posit/unpacked.hpp"

namespace pdnn::posit {
namespace {

std::uint32_t encode_ld(long double x, const PositSpec& spec) {
  // Exact long double -> posit nearest encoding via round_pack.
  if (x == 0.0L) return 0u;
  if (std::isnan(static_cast<double>(x))) return spec.nar_code();
  const bool neg = x < 0.0L;
  int exp2 = 0;
  const long double m = std::frexp(neg ? -x : x, &exp2);
  const auto sig = static_cast<std::uint64_t>(std::ldexp(m, 63));
  return round_pack(spec, neg, exp2 - 1, sig, 62, false, RoundMode::kNearestEven, nullptr);
}

class ArithFormatTest : public ::testing::TestWithParam<std::pair<int, int>> {
 protected:
  PositSpec spec() const { return PositSpec{GetParam().first, GetParam().second}; }
};

TEST_P(ArithFormatTest, ExhaustiveAddMatchesExactOracle) {
  const PositSpec s = spec();
  for (std::uint64_t a = 0; a < s.code_count(); ++a) {
    if (a == s.nar_code()) continue;
    const long double va = to_double(static_cast<std::uint32_t>(a), s);
    for (std::uint64_t b = 0; b < s.code_count(); ++b) {
      if (b == s.nar_code()) continue;
      const long double vb = to_double(static_cast<std::uint32_t>(b), s);
      // Exact: both operands have <= 6 significant bits at scales within
      // max-min = 2*max_scale <= 48, so the sum needs <= 55 < 64 bits.
      const std::uint32_t got = add(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b), s);
      const std::uint32_t want = encode_ld(va + vb, s);
      ASSERT_EQ(got, want) << s.to_string() << " " << va << " + " << vb;
    }
  }
}

TEST_P(ArithFormatTest, ExhaustiveMulMatchesExactOracle) {
  const PositSpec s = spec();
  for (std::uint64_t a = 0; a < s.code_count(); ++a) {
    if (a == s.nar_code()) continue;
    const long double va = to_double(static_cast<std::uint32_t>(a), s);
    for (std::uint64_t b = 0; b < s.code_count(); ++b) {
      if (b == s.nar_code()) continue;
      const long double vb = to_double(static_cast<std::uint32_t>(b), s);
      const std::uint32_t got = mul(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b), s);
      const std::uint32_t want = encode_ld(va * vb, s);  // product exact: <= 12 bits
      ASSERT_EQ(got, want) << s.to_string() << " " << va << " * " << vb;
    }
  }
}

TEST_P(ArithFormatTest, ExhaustiveSubIsAddOfNegation) {
  const PositSpec s = spec();
  for (std::uint64_t a = 0; a < s.code_count(); ++a) {
    for (std::uint64_t b = 0; b < s.code_count(); ++b) {
      const auto ca = static_cast<std::uint32_t>(a);
      const auto cb = static_cast<std::uint32_t>(b);
      ASSERT_EQ(sub(ca, cb, s), add(ca, neg(cb, s), s));
    }
  }
}

TEST_P(ArithFormatTest, ExhaustiveDivMatchesLongDoubleOracle) {
  const PositSpec s = spec();
  for (std::uint64_t a = 0; a < s.code_count(); ++a) {
    if (a == s.nar_code()) continue;
    const long double va = to_double(static_cast<std::uint32_t>(a), s);
    for (std::uint64_t b = 1; b < s.code_count(); ++b) {  // skip b == 0
      if (b == s.nar_code()) continue;
      const long double vb = to_double(static_cast<std::uint32_t>(b), s);
      // The quotient of two dyadics with <= 6-bit significands is either
      // exact in long double or at distance >= 2^-12 ulp from any 6-bit
      // rounding boundary, so no double-rounding hazard at 64-bit precision.
      const std::uint32_t got = div(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b), s);
      const std::uint32_t want = encode_ld(va / vb, s);
      ASSERT_EQ(got, want) << s.to_string() << " " << va << " / " << vb;
    }
  }
}

TEST_P(ArithFormatTest, NarPropagates) {
  const PositSpec s = spec();
  const std::uint32_t nar = s.nar_code();
  const std::uint32_t one = from_double(1.0, s);
  EXPECT_EQ(add(nar, one, s), nar);
  EXPECT_EQ(add(one, nar, s), nar);
  EXPECT_EQ(mul(nar, one, s), nar);
  EXPECT_EQ(div(one, nar, s), nar);
  EXPECT_EQ(div(nar, one, s), nar);
  EXPECT_EQ(div(one, 0u, s), nar) << "division by zero yields NaR";
  EXPECT_EQ(neg(nar, s), nar);
  EXPECT_EQ(abs(nar, s), nar);
}

TEST_P(ArithFormatTest, AlgebraicIdentities) {
  const PositSpec s = spec();
  for (std::uint64_t a = 0; a < s.code_count(); ++a) {
    const auto ca = static_cast<std::uint32_t>(a);
    if (ca == s.nar_code()) continue;
    const std::uint32_t one = from_double(1.0, s);
    ASSERT_EQ(add(ca, 0u, s), ca) << "a + 0 == a";
    ASSERT_EQ(mul(ca, one, s), ca) << "a * 1 == a";
    ASSERT_EQ(mul(ca, 0u, s), 0u) << "a * 0 == 0";
    ASSERT_EQ(add(ca, neg(ca, s), s), 0u) << "a + (-a) == 0";
    if (ca != 0u) {
      ASSERT_EQ(div(ca, ca, s), one) << "a / a == 1";
    }
    ASSERT_EQ(neg(neg(ca, s), s), ca) << "-(-a) == a";
  }
}

TEST_P(ArithFormatTest, AddCommutesMulCommutes) {
  const PositSpec s = spec();
  std::mt19937_64 rng(5);
  for (int t = 0; t < 20000; ++t) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng()) & s.mask();
    const std::uint32_t b = static_cast<std::uint32_t>(rng()) & s.mask();
    ASSERT_EQ(add(a, b, s), add(b, a, s));
    ASSERT_EQ(mul(a, b, s), mul(b, a, s));
  }
}

TEST_P(ArithFormatTest, CompareAgreesWithDoubleCompare) {
  const PositSpec s = spec();
  for (std::uint64_t a = 0; a < s.code_count(); ++a) {
    const auto ca = static_cast<std::uint32_t>(a);
    if (ca == s.nar_code()) continue;
    const double va = to_double(ca, s);
    for (std::uint64_t b = 0; b < s.code_count(); ++b) {
      const auto cb = static_cast<std::uint32_t>(b);
      if (cb == s.nar_code()) continue;
      const double vb = to_double(cb, s);
      const int want = va < vb ? -1 : (va > vb ? 1 : 0);
      ASSERT_EQ(compare(ca, cb, s), want);
    }
  }
}

TEST_P(ArithFormatTest, FmaIsExactlyRoundedProductPlusAddend) {
  const PositSpec s = spec();
  std::mt19937_64 rng(17);
  for (int t = 0; t < 30000; ++t) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng()) & s.mask();
    const std::uint32_t b = static_cast<std::uint32_t>(rng()) & s.mask();
    const std::uint32_t c = static_cast<std::uint32_t>(rng()) & s.mask();
    if (a == s.nar_code() || b == s.nar_code() || c == s.nar_code()) continue;
    const long double product = static_cast<long double>(to_double(a, s)) * to_double(b, s);
    const long double addend = to_double(c, s);
    // The long-double reference is exact only when the product and addend
    // scales are within ~50 bits (significands <= 12 bits); skip wider gaps,
    // where the reference would lose sticky information.
    if (product != 0.0L && addend != 0.0L) {
      int ep = 0, ec = 0;
      std::frexp(static_cast<double>(product), &ep);
      std::frexp(static_cast<double>(addend), &ec);
      if (std::abs(ep - ec) > 50) continue;
    }
    const long double exact = product + addend;
    ASSERT_EQ(fma(a, b, c, s), encode_ld(exact, s))
        << s.to_string() << " fma(" << to_double(a, s) << "," << to_double(b, s) << "," << to_double(c, s) << ")";
  }
}

TEST_P(ArithFormatTest, ExhaustiveUnpackedMulFmaMatchCodedPaths) {
  // The decode-once overloads must be bit-identical to the coded ones for
  // every operand pair, including zero and NaR.
  const PositSpec s = spec();
  std::mt19937_64 rng(31);
  for (std::uint64_t a = 0; a < s.code_count(); ++a) {
    const Unpacked ua = decode_unpacked(static_cast<std::uint32_t>(a), s);
    for (std::uint64_t b = 0; b < s.code_count(); ++b) {
      const Unpacked ub = decode_unpacked(static_cast<std::uint32_t>(b), s);
      ASSERT_EQ(mul(ua, ub, s), mul(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b), s))
          << s.to_string() << " codes " << a << " * " << b;
      const std::uint32_t c = static_cast<std::uint32_t>(rng()) & s.mask();
      ASSERT_EQ(fma(ua, ub, c, s),
                fma(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b), c, s))
          << s.to_string() << " codes " << a << " * " << b << " + " << c;
    }
  }
}

TEST_P(ArithFormatTest, UnpackedRoundTripsThroughDecoded) {
  const PositSpec s = spec();
  for (std::uint64_t a = 0; a < s.code_count(); ++a) {
    const Decoded want = decode(static_cast<std::uint32_t>(a), s);
    const Decoded got = to_decoded(decode_unpacked(static_cast<std::uint32_t>(a), s));
    ASSERT_EQ(got.is_zero, want.is_zero);
    ASSERT_EQ(got.is_nar, want.is_nar);
    if (want.is_zero || want.is_nar) continue;
    ASSERT_EQ(got.neg, want.neg) << a;
    ASSERT_EQ(got.scale, want.scale) << a;
    ASSERT_EQ(got.sig, want.sig) << a;
  }
}

INSTANTIATE_TEST_SUITE_P(FormatSweep, ArithFormatTest,
                         ::testing::Values(std::pair{5, 1}, std::pair{6, 0}, std::pair{6, 1}, std::pair{6, 2},
                                           std::pair{7, 0}, std::pair{7, 1}, std::pair{8, 0}, std::pair{8, 1},
                                           std::pair{8, 2}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.first) + "_" + std::to_string(info.param.second);
                         });

// ---------------------------------------------------------------------------
// Randomized checks on the 16-bit formats (too large for exhaustive pairs).
// ---------------------------------------------------------------------------
class Arith16Test : public ::testing::TestWithParam<std::pair<int, int>> {
 protected:
  PositSpec spec() const { return PositSpec{GetParam().first, GetParam().second}; }
};

TEST_P(Arith16Test, RandomAddMulAgainstLongDouble) {
  const PositSpec s = spec();
  std::mt19937_64 rng(23);
  for (int t = 0; t < 200000; ++t) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng()) & s.mask();
    const std::uint32_t b = static_cast<std::uint32_t>(rng()) & s.mask();
    if (a == s.nar_code() || b == s.nar_code()) continue;
    const long double va = to_double(a, s);
    const long double vb = to_double(b, s);
    // posit(16,es<=2): significands <= 14 bits, scales within 2*56; the sum
    // fits 64-bit exactly except at extreme scale gaps where the small
    // operand is pure sticky; encode_ld loses that sticky, so skip those.
    if (va != 0.0L && vb != 0.0L) {
      const int ea = std::ilogb(static_cast<double>(std::fabs(static_cast<double>(va))));
      const int eb = std::ilogb(static_cast<double>(std::fabs(static_cast<double>(vb))));
      if (std::abs(ea - eb) > 44) continue;
    }
    ASSERT_EQ(add(a, b, s), encode_ld(va + vb, s)) << va << " + " << vb;
    ASSERT_EQ(mul(a, b, s), encode_ld(va * vb, s)) << va << " * " << vb;
  }
}

TEST_P(Arith16Test, RandomUnpackedRoundTripAndMulAgainstCoded) {
  // The clz-based decode_unpacked parser vs the canonical decode(), on
  // formats too wide for the exhaustive sweep.
  const PositSpec s = spec();
  std::mt19937_64 rng(47);
  for (int t = 0; t < 200000; ++t) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng()) & s.mask();
    const Decoded want = decode(a, s);
    const Decoded got = to_decoded(decode_unpacked(a, s));
    ASSERT_EQ(got.is_zero, want.is_zero) << a;
    ASSERT_EQ(got.is_nar, want.is_nar) << a;
    if (!want.is_zero && !want.is_nar) {
      ASSERT_EQ(got.neg, want.neg) << a;
      ASSERT_EQ(got.scale, want.scale) << a;
      ASSERT_EQ(got.sig, want.sig) << a;
    }
    const std::uint32_t b = static_cast<std::uint32_t>(rng()) & s.mask();
    ASSERT_EQ(mul(decode_unpacked(a, s), decode_unpacked(b, s), s), mul(a, b, s)) << a << " " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(FormatSweep, Arith16Test,
                         ::testing::Values(std::pair{16, 1}, std::pair{16, 2}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.first) + "_" + std::to_string(info.param.second);
                         });

TEST(UnpackedWideFormats, RoundTripMatchesDecodeOnRandomCodes) {
  // Spot the widest supported formats (32-bit words, large es) where field
  // boundaries stress the clz parser the most.
  std::mt19937_64 rng(53);
  for (const auto& [n, es] : {std::pair{24, 1}, std::pair{32, 0}, std::pair{32, 2}, std::pair{32, 3},
                              std::pair{32, 6}}) {
    const PositSpec s{n, es};
    for (int t = 0; t < 50000; ++t) {
      const std::uint32_t a = static_cast<std::uint32_t>(rng()) & s.mask();
      const Decoded want = decode(a, s);
      const Decoded got = to_decoded(decode_unpacked(a, s));
      ASSERT_EQ(got.is_zero, want.is_zero) << s.to_string() << " " << a;
      ASSERT_EQ(got.is_nar, want.is_nar) << s.to_string() << " " << a;
      if (want.is_zero || want.is_nar) continue;
      ASSERT_EQ(got.neg, want.neg) << s.to_string() << " " << a;
      ASSERT_EQ(got.scale, want.scale) << s.to_string() << " " << a;
      ASSERT_EQ(got.sig, want.sig) << s.to_string() << " " << a;
    }
    // The extremes: minpos/maxpos and their negations.
    for (const std::uint32_t c : {s.minpos_code(), s.maxpos_code(), neg(s.minpos_code(), s),
                                  neg(s.maxpos_code(), s)}) {
      const Decoded want = decode(c, s);
      const Decoded got = to_decoded(decode_unpacked(c, s));
      ASSERT_EQ(got.scale, want.scale) << s.to_string() << " " << c;
      ASSERT_EQ(got.sig, want.sig) << s.to_string() << " " << c;
    }
  }
}

// ---------------------------------------------------------------------------
// The value-typed wrapper.
// ---------------------------------------------------------------------------
TEST(PositWrapper, BasicArithmetic) {
  const Posit16_1 a{3.25}, b{-0.125};
  EXPECT_DOUBLE_EQ(static_cast<double>(a + b), 3.125);
  EXPECT_DOUBLE_EQ(static_cast<double>(a * b), -0.40625);
  EXPECT_DOUBLE_EQ(static_cast<double>(a - b), 3.375);
  EXPECT_DOUBLE_EQ(static_cast<double>(-b), 0.125);
  EXPECT_TRUE(b < a);
  EXPECT_TRUE(a >= a);
  EXPECT_FALSE(a.is_nar());
  EXPECT_TRUE(Posit16_1::nar().is_nar());
  EXPECT_TRUE(Posit16_1{}.is_zero());
}

TEST(PositWrapper, CompoundAssignment) {
  Posit8_1 x{2.0};
  x += Posit8_1{1.0};
  EXPECT_DOUBLE_EQ(static_cast<double>(x), 3.0);
  x *= Posit8_1{2.0};
  EXPECT_DOUBLE_EQ(static_cast<double>(x), 6.0);
  x -= Posit8_1{4.0};
  EXPECT_DOUBLE_EQ(static_cast<double>(x), 2.0);
  x /= Posit8_1{8.0};
  EXPECT_DOUBLE_EQ(static_cast<double>(x), 0.25);
}

TEST(PositWrapper, MaxposMinposMatchPaperFormula) {
  // maxpos = useed^(n-2), minpos = useed^(2-n)  (Section II-B).
  EXPECT_DOUBLE_EQ(Posit8_1::maxpos().value(), std::pow(4.0, 6));
  EXPECT_DOUBLE_EQ(Posit8_1::minpos().value(), std::pow(4.0, -6));
  EXPECT_DOUBLE_EQ(Posit8_2::maxpos().value(), std::pow(16.0, 6));
  EXPECT_DOUBLE_EQ(Posit16_2::maxpos().value(), std::pow(16.0, 14));
}

}  // namespace
}  // namespace pdnn::posit
