// add_lut_test.cpp — the tabulated add and pair-classed fma tables against
// the arithmetic routines they tabulate: exhaustive where the space is small,
// randomized plus targeted special cases at n = 8.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "posit/add_lut.hpp"
#include "posit/mul_lut.hpp"

namespace pdnn::posit {
namespace {

TEST(AddLut, SupportPredicateMirrorsMulLut) {
  EXPECT_TRUE(add_lut_supported({8, 1}, RoundMode::kNearestEven));
  EXPECT_TRUE(add_lut_supported({5, 1}, RoundMode::kTowardZero));
  EXPECT_FALSE(add_lut_supported({9, 1}, RoundMode::kNearestEven));
  EXPECT_FALSE(add_lut_supported({8, 1}, RoundMode::kStochastic));
  EXPECT_TRUE(fma_lut_supported({8, 2}, RoundMode::kNearestEven));
  EXPECT_FALSE(fma_lut_supported({16, 1}, RoundMode::kNearestEven));
  EXPECT_FALSE(fma_lut_supported({8, 0}, RoundMode::kStochastic));
  EXPECT_THROW(add_lut({16, 1}, RoundMode::kNearestEven), std::invalid_argument);
  EXPECT_THROW(fma_lut({8, 1}, RoundMode::kStochastic), std::invalid_argument);
}

TEST(AddLut, ExhaustiveAgainstAddAcrossSpecsAndModes) {
  for (const PositSpec spec : {PositSpec{5, 1}, PositSpec{6, 2}, PositSpec{8, 0}, PositSpec{8, 1},
                               PositSpec{8, 2}}) {
    for (const RoundMode mode : {RoundMode::kNearestEven, RoundMode::kTowardZero}) {
      const AddLut& lut = add_lut(spec, mode);
      const std::uint32_t count = 1u << spec.n;
      for (std::uint32_t a = 0; a < count; ++a) {
        for (std::uint32_t b = 0; b < count; ++b) {
          ASSERT_EQ(lut.at(a, b), add(a, b, spec, mode))
              << spec.to_string() << " mode " << static_cast<int>(mode) << " a=" << a << " b=" << b;
        }
      }
    }
  }
}

TEST(FmaLut, ExhaustiveOnSmallSpecs) {
  for (const PositSpec spec : {PositSpec{5, 1}, PositSpec{6, 2}}) {
    const FmaLut& lut = fma_lut(spec, RoundMode::kNearestEven);
    const std::uint32_t count = 1u << spec.n;
    EXPECT_GT(lut.classes(), 0u);
    EXPECT_LT(lut.classes(), static_cast<std::size_t>(count) * count)
        << "pairs must collapse onto product classes";
    for (std::uint32_t a = 0; a < count; ++a) {
      for (std::uint32_t b = 0; b < count; ++b) {
        for (std::uint32_t c = 0; c < count; ++c) {
          ASSERT_EQ(lut.at(a, b, c), fma(a, b, c, spec, RoundMode::kNearestEven))
              << spec.to_string() << " a=" << a << " b=" << b << " c=" << c;
        }
      }
    }
  }
}

TEST(FmaLut, RandomizedAndSpecialCasesAtN8) {
  for (const PositSpec spec : {PositSpec{8, 0}, PositSpec{8, 1}, PositSpec{8, 2}}) {
    const FmaLut& lut = fma_lut(spec, RoundMode::kNearestEven);
    const std::uint32_t nar = spec.nar_code();
    // NaR and zero products collapse onto their own classes.
    for (std::uint32_t c : {0u, 1u, nar, 0x7Fu, 0x81u}) {
      EXPECT_EQ(lut.at(nar, 3, c), fma(nar, 3, c, spec));
      EXPECT_EQ(lut.at(3, nar, c), fma(3, nar, c, spec));
      EXPECT_EQ(lut.at(0, 77, c), fma(0, 77, c, spec));
      EXPECT_EQ(lut.at(77, 0, c), fma(77, 0, c, spec));
    }
    std::mt19937 gen(0xF3A + spec.es);
    std::uniform_int_distribution<std::uint32_t> dist(0, 255);
    for (int i = 0; i < 200000; ++i) {
      const std::uint32_t a = dist(gen), b = dist(gen), c = dist(gen);
      ASSERT_EQ(lut.at(a, b, c), fma(a, b, c, spec))
          << spec.to_string() << " a=" << a << " b=" << b << " c=" << c;
    }
  }
}

TEST(FmaLut, DiffersFromMulThenAddWherePrecisionIsLost) {
  // The whole point of fma: one rounding, not two. There must exist triples
  // where MulLut+AddLut (two roundings) disagrees with FmaLut.
  const PositSpec spec{8, 1};
  const FmaLut& f = fma_lut(spec, RoundMode::kNearestEven);
  const MulLut& m = mul_lut(spec, RoundMode::kNearestEven);
  const AddLut& a = add_lut(spec, RoundMode::kNearestEven);
  std::size_t differing = 0;
  for (std::uint32_t x = 0; x < 256 && differing == 0; ++x) {
    for (std::uint32_t y = 0; y < 256 && differing == 0; ++y) {
      for (std::uint32_t c = 0; c < 256; ++c) {
        if (f.at(x, y, c) != a.at(m.at(x, y), c)) {
          ++differing;
          break;
        }
      }
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST(LutCache, ConcurrentFirstTouchYieldsOnePublishedTable) {
  // The caches serve steady-state lookups lock-free (an atomic fast-path
  // table); construction is mutex-guarded and published exactly once. Race
  // many threads at specs the suite leaves cold: every thread must observe
  // the same table address, whichever thread built it. (The TSan CI job
  // watches this test for ordering bugs in the publication.)
  const PositSpec spec{7, 2};
  const RoundMode mode = RoundMode::kTowardZero;
  constexpr int kThreads = 8;
  std::vector<const MulLut*> mul_seen(kThreads, nullptr);
  std::vector<const AddLut*> add_seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      mul_seen[t] = &mul_lut(spec, mode);
      add_seen[t] = &add_lut(spec, mode);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(mul_seen[t], mul_seen[0]);
    EXPECT_EQ(add_seen[t], add_seen[0]);
  }
  // And the published table is the real one: spot-check against arithmetic.
  EXPECT_EQ(mul_seen[0]->at(0, 0), 0u);
}

}  // namespace
}  // namespace pdnn::posit
