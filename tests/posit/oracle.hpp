// oracle.hpp — independent brute-force oracles for posit codec validation.
//
// The oracle avoids the library's round_pack entirely: it enumerates every
// code of a (small) format, computes each code's exact value as a __int128
// fixed-point integer, and finds the nearest representable value to a target
// by exact integer comparison (ties to the even code). This gives a
// non-circular reference for nearest-even encoding.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "posit/codec.hpp"
#include "posit/spec.hpp"

namespace pdnn::posit::testing {

using i128 = __int128;
using u128 = unsigned __int128;

/// Fixed-point fraction bits so that every code value of `spec` — and every
/// rounding boundary, which is a value of the extended format (n+1, es) — is
/// an integer, while maxpos still fits a signed 128-bit integer.
inline int oracle_frac_bits(const PositSpec& spec) {
  return (spec.n - 1) * (1 << spec.es) + spec.n + 2;
}

/// Exact fixed-point value of a (non-NaR) code: value * 2^frac_bits.
inline i128 exact_fixed(std::uint32_t code, const PositSpec& spec, int frac_bits) {
  const Decoded d = decode(code, spec);
  if (d.is_zero) return 0;
  // sig has hidden at 62: value = sig * 2^(scale - 62). The shift
  // scale - 62 + frac_bits is >= 0 because the significand carries at most
  // 29 fraction bits and frac_bits >= -min_scale + 32.
  const int shift = d.scale - 62 + frac_bits;
  i128 v;
  if (shift >= 0) {
    v = static_cast<i128>(static_cast<u128>(d.sig) << shift);
  } else {
    v = static_cast<i128>(d.sig >> (-shift));  // exact: trailing zeros cover it
  }
  return d.neg ? -v : v;
}

/// All codes of the format, sorted by value (NaR excluded).
struct CodeTable {
  PositSpec spec;
  int frac_bits;
  std::vector<std::uint32_t> codes;  // sorted ascending by value
  std::vector<i128> values;          // exact fixed-point values

  explicit CodeTable(const PositSpec& s) : spec(s), frac_bits(oracle_frac_bits(s)) {
    for (std::uint64_t c = 0; c < spec.code_count(); ++c) {
      const auto code = static_cast<std::uint32_t>(c);
      if (code == spec.nar_code()) continue;
      codes.push_back(code);
    }
    // Posit order == sign-extended integer order of codes.
    std::sort(codes.begin(), codes.end(), [&](std::uint32_t a, std::uint32_t b) {
      return sign_extend(a, spec) < sign_extend(b, spec);
    });
    values.reserve(codes.size());
    for (const auto c : codes) values.push_back(exact_fixed(c, spec, frac_bits));
  }

  /// Rounding boundary between adjacent codes lo_code and its successor: the
  /// value inserted between them by extending the word size to n+1 bits.
  /// (Appending one bit to a posit code splits every interval exactly at the
  /// bit-level rounding boundary used by guard/sticky hardware, softposit and
  /// universal.) Exact in the table's fixed point.
  i128 boundary_after(std::uint32_t lo_code) const {
    const PositSpec ext{spec.n + 1, spec.es};
    // * 2, not << 1: the sign-extended code can be negative and a negative
    // left shift is UB.
    const std::uint32_t lo_ext =
        static_cast<std::uint32_t>(sign_extend(lo_code, spec) * 2) & ext.mask();
    const std::uint32_t mid_code = (lo_ext + 1u) & ext.mask();
    // Values of (n+1, es) need one more frac bit than (n, es); frac_bits was
    // sized for that (see oracle_frac_bits).
    return exact_fixed(mid_code, ext, frac_bits);
  }

  /// Nearest rounding of target (exact fixed point, same frac_bits) at
  /// bit-level boundaries, ties to the even code, with posit saturation
  /// semantics: never rounds a non-zero target to zero, never overflows past
  /// maxpos into NaR.
  std::uint32_t nearest(i128 target) const {
    // Binary search the insertion point.
    std::size_t lo = 0, hi = values.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (values[mid] < target)
        lo = mid + 1;
      else
        hi = mid;
    }
    std::uint32_t best;
    if (lo == 0) {
      best = codes.front();  // below -maxpos: saturate
    } else if (lo == values.size()) {
      best = codes.back();  // above +maxpos: saturate
    } else if (values[lo] == target) {
      best = codes[lo];
    } else {
      const i128 boundary = boundary_after(codes[lo - 1]);
      if (target < boundary)
        best = codes[lo - 1];
      else if (target > boundary)
        best = codes[lo];
      else
        best = (codes[lo] & 1u) == 0 ? codes[lo] : codes[lo - 1];  // tie: even code
    }
    // No underflow to zero for non-zero targets.
    if (target != 0 && best == 0) {
      best = target > 0 ? spec.minpos_code() : ((~spec.minpos_code() + 1u) & spec.mask());
    }
    return best;
  }

  /// Largest-magnitude code whose value has magnitude <= |target| (toward
  /// zero), clamped to [minpos, maxpos] like Algorithm 1's clip.
  std::uint32_t toward_zero(i128 target) const {
    if (target == 0) return 0;
    const bool neg = target < 0;
    const i128 mag = neg ? -target : target;
    std::uint32_t best = 0;
    i128 best_v = -1;
    for (std::size_t i = 0; i < codes.size(); ++i) {
      const i128 v = values[i] < 0 ? -values[i] : values[i];
      if ((values[i] < 0) != neg && values[i] != 0) continue;
      if (values[i] == 0) continue;
      if (v <= mag && v > best_v) {
        best_v = v;
        best = codes[i];
      }
    }
    if (best == 0) {  // |target| < minpos: clip up to minpos
      best = neg ? ((~spec.minpos_code() + 1u) & spec.mask()) : spec.minpos_code();
    }
    return best;
  }
};

/// Exact fixed-point representation of a double in the table's scale
/// (returns false if the double cannot be represented exactly, which the
/// tests avoid by construction).
inline bool double_to_fixed(double x, int frac_bits, i128* out) {
  const long double scaled = std::ldexp(static_cast<long double>(x), frac_bits);
  const i128 v = static_cast<i128>(scaled);
  if (static_cast<long double>(v) != scaled) return false;
  *out = v;
  return true;
}

}  // namespace pdnn::posit::testing
