// codec_test.cpp — exhaustive and oracle-based validation of decode/encode.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "oracle.hpp"
#include "posit/codec.hpp"

namespace pdnn::posit {
namespace {

using testing::CodeTable;
using testing::double_to_fixed;
using testing::i128;

// ---------------------------------------------------------------------------
// Format sweep fixture: every test in this suite runs over a grid of formats.
// ---------------------------------------------------------------------------
class CodecFormatTest : public ::testing::TestWithParam<std::pair<int, int>> {
 protected:
  PositSpec spec() const { return PositSpec{GetParam().first, GetParam().second}; }

  /// Visit every code for n <= 16, otherwise a deterministic 100k sample.
  template <typename Fn>
  void for_each_code(const PositSpec& s, Fn&& fn) const {
    if (s.n <= 16) {
      for (std::uint64_t c = 0; c < s.code_count(); ++c) fn(static_cast<std::uint32_t>(c));
    } else {
      std::mt19937_64 rng(123);
      for (int i = 0; i < 100000; ++i) fn(static_cast<std::uint32_t>(rng()) & s.mask());
    }
  }
};

TEST_P(CodecFormatTest, SpecialCodesDecode) {
  const PositSpec s = spec();
  EXPECT_TRUE(decode(0u, s).is_zero);
  EXPECT_TRUE(decode(s.nar_code(), s).is_nar);
  EXPECT_DOUBLE_EQ(to_double(0u, s), 0.0);
  EXPECT_TRUE(std::isnan(to_double(s.nar_code(), s)));
}

TEST_P(CodecFormatTest, MaxposMinposValues) {
  const PositSpec s = spec();
  EXPECT_DOUBLE_EQ(to_double(s.maxpos_code(), s), maxpos_value(s));
  EXPECT_DOUBLE_EQ(to_double(s.minpos_code(), s), minpos_value(s));
  EXPECT_DOUBLE_EQ(maxpos_value(s), std::pow(s.useed(), s.n - 2));
  EXPECT_DOUBLE_EQ(minpos_value(s), std::pow(s.useed(), 2 - s.n));
}

TEST_P(CodecFormatTest, ExhaustiveRoundTrip) {
  const PositSpec s = spec();
  for_each_code(s, [&](std::uint32_t code) {
    if (code == s.nar_code()) return;
    const double v = to_double(code, s);
    EXPECT_EQ(from_double(v, s), code) << s.to_string() << " code " << code << " value " << v;
  });
}

TEST_P(CodecFormatTest, NegationIsTwosComplement) {
  const PositSpec s = spec();
  for_each_code(s, [&](std::uint32_t code) {
    if (code == s.nar_code() || code == 0) return;
    const std::uint32_t negated = (~code + 1u) & s.mask();
    EXPECT_DOUBLE_EQ(to_double(negated, s), -to_double(code, s));
  });
}

TEST_P(CodecFormatTest, CodesAreMonotoneInSignExtendedOrder) {
  const PositSpec s = spec();
  if (s.n > 12) GTEST_SKIP() << "oracle table too large";
  const CodeTable table(s);
  for (std::size_t i = 1; i < table.values.size(); ++i) {
    EXPECT_LT(table.values[i - 1], table.values[i])
        << s.to_string() << " codes " << table.codes[i - 1] << "," << table.codes[i];
  }
}

TEST_P(CodecFormatTest, DecodedFieldsReconstructValue) {
  const PositSpec s = spec();
  for_each_code(s, [&](std::uint32_t code) {
    if (code == s.nar_code() || code == 0) return;
    const Decoded d = decode(code, s);
    // Eq. (1): x = (-1)^s * useed^k * 2^e * (1 + f)
    const double f = d.frac_width > 0 ? std::ldexp(static_cast<double>(d.frac), -d.frac_width) : 0.0;
    const double v = (d.neg ? -1.0 : 1.0) * std::pow(s.useed(), d.k) * std::ldexp(1.0, d.e) * (1.0 + f);
    EXPECT_DOUBLE_EQ(v, to_double(code, s)) << s.to_string() << " code " << code;
  });
}

// Nearest-even encoding agrees with the brute-force oracle on a dense grid of
// inputs: every code value, every midpoint between adjacent codes, and points
// just above/below every midpoint.
TEST_P(CodecFormatTest, NearestEvenMatchesBruteForceOracle) {
  const PositSpec s = spec();
  if (s.n > 10) GTEST_SKIP() << "oracle table too large";
  const CodeTable table(s);
  for (std::size_t i = 1; i < table.codes.size(); ++i) {
    const double lo = to_double(table.codes[i - 1], s);
    const double hi = to_double(table.codes[i], s);
    const double mid = (lo + hi) / 2.0;  // exact: dyadic mean of dyadics
    for (const double x : {mid, std::nextafter(mid, lo), std::nextafter(mid, hi)}) {
      i128 fixed = 0;
      if (!double_to_fixed(x, table.frac_bits, &fixed)) continue;  // inexact probe: skip
      const std::uint32_t got = from_double(x, s, RoundMode::kNearestEven);
      const std::uint32_t want = table.nearest(fixed);
      EXPECT_EQ(got, want) << s.to_string() << " x=" << x << " between codes " << table.codes[i - 1]
                           << " and " << table.codes[i];
    }
  }
}

TEST_P(CodecFormatTest, NearestEvenMatchesOracleOnRandomInputs) {
  const PositSpec s = spec();
  if (s.n > 10) GTEST_SKIP() << "oracle table too large";
  const CodeTable table(s);
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> scale_dist(s.min_scale() - 2.0, s.max_scale() + 2.0);
  std::uniform_real_distribution<double> mant_dist(1.0, 2.0);
  for (int trial = 0; trial < 5000; ++trial) {
    // Log-uniform magnitude covering the whole dynamic range plus overflow.
    double x = mant_dist(rng) * std::exp2(scale_dist(rng));
    if (trial % 2) x = -x;
    // Snap to a value exactly representable in the oracle's fixed point.
    x = std::ldexp(std::round(std::ldexp(x, 40)), -40);
    i128 fixed = 0;
    if (!double_to_fixed(x, table.frac_bits, &fixed)) continue;
    EXPECT_EQ(from_double(x, s, RoundMode::kNearestEven), table.nearest(fixed))
        << s.to_string() << " x=" << x;
  }
}

TEST_P(CodecFormatTest, TowardZeroMatchesOracle) {
  const PositSpec s = spec();
  if (s.n > 10) GTEST_SKIP() << "oracle table too large";
  const CodeTable table(s);
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> scale_dist(s.min_scale() - 2.0, s.max_scale() + 2.0);
  std::uniform_real_distribution<double> mant_dist(1.0, 2.0);
  for (int trial = 0; trial < 3000; ++trial) {
    double x = mant_dist(rng) * std::exp2(scale_dist(rng));
    if (trial % 2) x = -x;
    x = std::ldexp(std::round(std::ldexp(x, 40)), -40);
    if (x == 0.0) continue;
    i128 fixed = 0;
    if (!double_to_fixed(x, table.frac_bits, &fixed)) continue;
    EXPECT_EQ(from_double(x, s, RoundMode::kTowardZero), table.toward_zero(fixed))
        << s.to_string() << " x=" << x;
  }
}

TEST_P(CodecFormatTest, TowardZeroNeverIncreasesMagnitude) {
  const PositSpec s = spec();
  // n=2 has an empty in-range scale interval (minpos == maxpos == 1).
  if (s.max_scale() - 0.5 < s.min_scale() + 0.5) GTEST_SKIP() << "degenerate dynamic range";
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> scale_dist(s.min_scale() + 0.5, s.max_scale() - 0.5);
  std::uniform_real_distribution<double> mant_dist(1.0, 2.0);
  for (int trial = 0; trial < 2000; ++trial) {
    double x = mant_dist(rng) * std::exp2(scale_dist(rng));
    if (trial % 2) x = -x;
    const double q = to_double(from_double(x, s, RoundMode::kTowardZero), s);
    EXPECT_LE(std::fabs(q), std::fabs(x)) << s.to_string();
    EXPECT_EQ(std::signbit(q), std::signbit(x));
  }
}

TEST_P(CodecFormatTest, SaturationAtDynamicRangeEnds) {
  const PositSpec s = spec();
  const double big = maxpos_value(s) * 4.0;
  const double tiny = minpos_value(s) / 4.0;
  EXPECT_EQ(from_double(big, s), s.maxpos_code());
  EXPECT_EQ(from_double(-big, s), (~s.maxpos_code() + 1u) & s.mask());
  // The posit standard: no underflow to zero under nearest rounding.
  EXPECT_EQ(from_double(tiny, s), s.minpos_code());
  EXPECT_EQ(from_double(std::numeric_limits<double>::infinity(), s), s.nar_code());
  EXPECT_EQ(from_double(std::nan(""), s), s.nar_code());
}

/// Every oracle-checkable format — the full (n <= 10, es <= 2) grid — plus
/// wider spot formats used by the paper's tables (the oracle-backed tests
/// GTEST_SKIP themselves for n > 10; the structural tests still run there).
std::vector<std::pair<int, int>> sweep_formats() {
  std::vector<std::pair<int, int>> formats;
  for (int n = 2; n <= 10; ++n)
    for (int es = 0; es <= 2; ++es) formats.emplace_back(n, es);
  for (const auto& f : {std::pair{8, 3}, std::pair{12, 1}, std::pair{16, 1}, std::pair{16, 2},
                        std::pair{32, 3}})
    formats.push_back(f);
  return formats;
}

INSTANTIATE_TEST_SUITE_P(FormatSweep, CodecFormatTest, ::testing::ValuesIn(sweep_formats()),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.first) + "_" + std::to_string(info.param.second);
                         });

// ---------------------------------------------------------------------------
// Fixed-format spot checks.
// ---------------------------------------------------------------------------

// Table I of the paper: every positive (5,1) code.
TEST(CodecTableI, Posit5_1PositiveValues) {
  const PositSpec s{5, 1};
  const double expected[16] = {0.0,      1.0 / 64, 1.0 / 16, 1.0 / 8, 1.0 / 4, 3.0 / 8, 1.0 / 2, 3.0 / 4,
                               1.0,      3.0 / 2,  2.0,      3.0,     4.0,     8.0,     16.0,    64.0};
  for (std::uint32_t code = 0; code < 16; ++code) {
    EXPECT_DOUBLE_EQ(to_double(code, s), expected[code]) << "code " << code;
  }
}

TEST(CodecTableI, Posit5_1Fields) {
  const PositSpec s{5, 1};
  // Row 00101: regime -1, exponent 0, mantissa 1/2, value 3/8.
  Decoded d = decode(0b00101u, s);
  EXPECT_EQ(d.k, -1);
  EXPECT_EQ(d.e, 0);
  EXPECT_EQ(d.frac, 1u);
  EXPECT_EQ(d.frac_width, 1);
  // Row 01011: regime 0, exponent 1, mantissa 1/2, value 3.
  d = decode(0b01011u, s);
  EXPECT_EQ(d.k, 0);
  EXPECT_EQ(d.e, 1);
  EXPECT_EQ(d.frac, 1u);
  // Row 01111: regime 3, exponent 0, mantissa 0, value 64.
  d = decode(0b01111u, s);
  EXPECT_EQ(d.k, 3);
  EXPECT_EQ(d.e, 0);
  EXPECT_EQ(d.frac_width, 0);
  // Row 00001: regime -3.
  d = decode(0b00001u, s);
  EXPECT_EQ(d.k, -3);
}

// Known posit16,1 encodings cross-checked against softposit conventions.
TEST(CodecSpot, Posit16_1KnownValues) {
  const PositSpec s{16, 1};
  EXPECT_EQ(from_double(1.0, s), 0x4000u);
  EXPECT_DOUBLE_EQ(to_double(0x4000u, s), 1.0);
  EXPECT_EQ(from_double(-1.0, s), 0xC000u);
  EXPECT_DOUBLE_EQ(to_double(0x5000u, s), 2.0);
  EXPECT_DOUBLE_EQ(to_double(0x3000u, s), 0.5);
  EXPECT_DOUBLE_EQ(to_double(0x4800u, s), 1.5);
  EXPECT_DOUBLE_EQ(maxpos_value(s), std::ldexp(1.0, 28));   // useed^14 = 2^28
  EXPECT_DOUBLE_EQ(minpos_value(s), std::ldexp(1.0, -28));
}

TEST(CodecSpot, Posit8_0KnownValues) {
  const PositSpec s{8, 0};
  EXPECT_EQ(from_double(1.0, s), 0x40u);
  EXPECT_DOUBLE_EQ(to_double(0x60u, s), 2.0);
  EXPECT_DOUBLE_EQ(to_double(0x20u, s), 0.5);
  EXPECT_DOUBLE_EQ(maxpos_value(s), 64.0);  // useed^6 = 2^6
}

TEST(CodecSpot, StochasticRoundingIsUnbiased) {
  const PositSpec s{8, 1};
  // Pick a value 1/4 of the way between two adjacent posits.
  const double lo = to_double(from_double(1.3, s, RoundMode::kTowardZero), s);
  std::uint32_t lo_code = from_double(lo, s);
  const std::uint32_t hi_code = lo_code + 1;  // next code up (positive range)
  const double hi = to_double(hi_code, s);
  const double x = lo + 0.25 * (hi - lo);

  RoundingRng rng(1234);
  int ups = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const std::uint32_t c = from_double(x, s, RoundMode::kStochastic, &rng);
    ASSERT_TRUE(c == lo_code || c == hi_code);
    if (c == hi_code) ++ups;
  }
  const double p = static_cast<double>(ups) / kTrials;
  EXPECT_NEAR(p, 0.25, 0.02);  // ~6.5 sigma tolerance at n=20000
}

TEST(CodecSpot, SignExtendOrdersNarSmallest) {
  const PositSpec s{8, 1};
  EXPECT_LT(sign_extend(s.nar_code(), s), sign_extend(from_double(-1e30, s), s));
}

}  // namespace
}  // namespace pdnn::posit
