// fault_test.cpp — the overload/fault layer of serve::Engine under
// exec::FaultInjectingBackend chaos: bounded admission (reject / block /
// shed-oldest), per-request deadlines failed at assembly time, bisection
// fault isolation (only poison samples receive exceptions; healthy batch
// neighbors stay bit-identical to solo), quarantine + factory rebuild of a
// wedged worker, the shutdown-vs-submit race (every future resolves), and
// the fault-injection decorator's own deterministic schedule and clone
// semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "exec/fault_injection.hpp"
#include "exec/float_backend.hpp"
#include "nn/resnet.hpp"
#include "serve/engine.hpp"
#include "serve/errors.hpp"
#include "tensor/ops.hpp"

namespace pdnn::serve {
namespace {

using exec::Backend;
using exec::FaultConfig;
using exec::FaultInjectingBackend;
using exec::FloatBackend;
using exec::InjectedFault;
using tensor::Rng;
using tensor::Tensor;
using namespace std::chrono_literals;

constexpr float kPoison = 1.0e30f;  // the trigger value poison samples carry

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         (a.numel() == 0 || std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0);
}

Tensor solo_run(Backend& backend, const Tensor& sample) {
  const Tensor* one = &sample;
  Tensor batch;
  tensor::stack_samples(&one, 1, batch);
  Tensor row;
  tensor::extract_sample(backend.run(batch), 0, row);
  return row;
}

/// Poll `engine.stats()` until `pred` holds or ~10 s pass.
template <typename Pred>
bool wait_for_stats(const Engine& engine, Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred(engine.stats())) return true;
    std::this_thread::sleep_for(200us);
  }
  return false;
}

/// Records which samples each backend run saw (by each row's first element)
/// and optionally dwells per run — lets tests pin down what never ran.
struct Probe {
  std::mutex mu;
  std::vector<std::vector<float>> batches;
  std::chrono::milliseconds delay{0};

  bool saw(float tag) {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& b : batches) {
      for (const float v : b) {
        if (v == tag) return true;
      }
    }
    return false;
  }
  bool saw_together(float tag_a, float tag_b) {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& b : batches) {
      bool a = false, c = false;
      for (const float v : b) {
        a = a || v == tag_a;
        c = c || v == tag_b;
      }
      if (a && c) return true;
    }
    return false;
  }
};

class ProbeBackend final : public Backend {
 public:
  ProbeBackend(std::unique_ptr<Backend> inner, Probe* probe)
      : inner_(std::move(inner)), probe_(probe) {}

  std::unique_ptr<Backend> clone() const override {
    return std::make_unique<ProbeBackend>(inner_->clone(), probe_);
  }
  const exec::ExecPlan& plan() const override { return inner_->plan(); }
  std::size_t arena_bytes() const override { return inner_->arena_bytes(); }

 protected:
  const Tensor& run_impl(const Tensor& x) override {
    {
      std::lock_guard<std::mutex> lock(probe_->mu);
      const std::size_t rows = x.shape()[0];
      const std::size_t stride = rows == 0 ? 0 : x.numel() / rows;
      std::vector<float> tags;
      for (std::size_t r = 0; r < rows; ++r) tags.push_back(x.data()[r * stride]);
      probe_->batches.push_back(std::move(tags));
    }
    if (probe_->delay.count() > 0) std::this_thread::sleep_for(probe_->delay);
    return inner_->run(x);
  }

 private:
  std::unique_ptr<Backend> inner_;
  Probe* probe_;
};

/// A sample whose first element is `tag` (distinguishable in the Probe).
Tensor tagged(float tag, std::size_t width = 4) {
  Tensor t(tensor::Shape{width}, 0.25f);
  t.data()[0] = tag;
  return t;
}

// ---------------------------------------------------------------------------
// FaultInjectingBackend: the deterministic fault schedule and clone contract.
// ---------------------------------------------------------------------------

TEST(FaultInjection, ThrowsOnNthRunOnlyAndRecovers) {
  Rng rng(401);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  const Tensor x = Tensor::randn({2, 4}, rng);
  const Tensor want = proto.run(x);  // copy

  FaultConfig cfg;
  cfg.throw_on_run = 2;
  FaultInjectingBackend faulty(proto.clone(), cfg);
  EXPECT_TRUE(bit_identical(faulty.run(x), want));
  EXPECT_THROW(faulty.run(x), InjectedFault);
  EXPECT_TRUE(bit_identical(faulty.run(x), want));  // clean after the fault
  EXPECT_EQ(faulty.runs(), 3u);
  EXPECT_EQ(faulty.faults_injected(), 1u);
}

TEST(FaultInjection, ThrowsEveryKthRun) {
  Rng rng(403);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  const Tensor x = Tensor::randn({1, 4}, rng);

  FaultConfig cfg;
  cfg.throw_every = 3;
  FaultInjectingBackend faulty(proto.clone(), cfg);
  for (int run = 1; run <= 9; ++run) {
    if (run % 3 == 0) {
      EXPECT_THROW(faulty.run(x), InjectedFault) << "run " << run;
    } else {
      EXPECT_NO_THROW(faulty.run(x)) << "run " << run;
    }
  }
}

TEST(FaultInjection, SeededThrowRateIsDeterministic) {
  Rng rng(405);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  const Tensor x = Tensor::randn({1, 4}, rng);

  FaultConfig cfg;
  cfg.seed = 1234;
  cfg.throw_rate = 0.5;
  FaultInjectingBackend a(proto.clone(), cfg);
  FaultInjectingBackend b(proto.clone(), cfg);
  std::size_t faults = 0;
  for (int run = 0; run < 64; ++run) {
    bool threw_a = false, threw_b = false;
    try {
      a.run(x);
    } catch (const InjectedFault&) {
      threw_a = true;
    }
    try {
      b.run(x);
    } catch (const InjectedFault&) {
      threw_b = true;
    }
    EXPECT_EQ(threw_a, threw_b) << "same seed must give the same schedule (run " << run << ")";
    faults += threw_a ? 1 : 0;
  }
  EXPECT_GT(faults, 0u);   // rate 0.5 over 64 runs: some faults...
  EXPECT_LT(faults, 64u);  // ...and some clean runs
}

TEST(FaultInjection, TriggerSampleThrowsCleanBatchPasses) {
  Rng rng(407);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);

  FaultConfig cfg;
  cfg.has_trigger = true;
  cfg.trigger = kPoison;
  FaultInjectingBackend faulty(proto.clone(), cfg);

  const Tensor clean = Tensor::randn({2, 4}, rng);
  EXPECT_NO_THROW(faulty.run(clean));
  Tensor poisoned = clean;
  poisoned.data()[5] = kPoison;  // anywhere in the batch trips it
  EXPECT_THROW(faulty.run(poisoned), InjectedFault);
  EXPECT_NO_THROW(faulty.run(clean));
}

TEST(FaultInjection, InjectsLatency) {
  Rng rng(409);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  const Tensor x = Tensor::randn({1, 4}, rng);

  FaultConfig cfg;
  cfg.latency = std::chrono::microseconds(50000);
  FaultInjectingBackend slow(proto.clone(), cfg);
  const auto t0 = std::chrono::steady_clock::now();
  slow.run(x);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 40ms);
}

TEST(FaultInjection, CorruptsExactlyOneOutputRowOnTheChosenRun) {
  Rng rng(411);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  const Tensor x = Tensor::randn({3, 4}, rng);
  const Tensor want = proto.run(x);  // copy

  FaultConfig cfg;
  cfg.corrupt_on_run = 2;
  cfg.corrupt_row = 1;
  FaultInjectingBackend faulty(proto.clone(), cfg);
  EXPECT_TRUE(bit_identical(faulty.run(x), want));
  const Tensor corrupted = faulty.run(x);  // copy
  ASSERT_EQ(corrupted.shape(), want.shape());
  const std::size_t stride = want.numel() / want.shape()[0];
  for (std::size_t r = 0; r < want.shape()[0]; ++r) {
    const bool same =
        std::memcmp(corrupted.data() + r * stride, want.data() + r * stride,
                    stride * sizeof(float)) == 0;
    EXPECT_EQ(same, r != 1) << "row " << r;
  }
  EXPECT_TRUE(bit_identical(faulty.run(x), want));  // clean again
}

TEST(FaultInjection, CloneHasIndependentScheduleAndDerivedSeed) {
  Rng rng(413);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  const Tensor x = Tensor::randn({1, 4}, rng);

  FaultConfig cfg;
  cfg.seed = 77;
  cfg.throw_on_run = 3;
  FaultInjectingBackend parent(proto.clone(), cfg);
  parent.run(x);
  parent.run(x);  // parent now at run 2; run 3 would throw

  auto child = parent.clone();
  auto* faulty_child = dynamic_cast<FaultInjectingBackend*>(child.get());
  ASSERT_NE(faulty_child, nullptr);
  EXPECT_EQ(faulty_child->runs(), 0u);  // schedule restarts per instance
  EXPECT_NO_THROW(child->run(x));
  EXPECT_NO_THROW(child->run(x));
  EXPECT_THROW(child->run(x), InjectedFault);  // its own run 3

  auto sibling = parent.clone();
  auto* faulty_sibling = dynamic_cast<FaultInjectingBackend*>(sibling.get());
  ASSERT_NE(faulty_sibling, nullptr);
  EXPECT_NE(faulty_child->fault_config().seed, cfg.seed);
  EXPECT_NE(faulty_child->fault_config().seed, faulty_sibling->fault_config().seed);

  EXPECT_EQ(child->plan().steps.size(), parent.plan().steps.size());
  EXPECT_THROW(parent.run(x), InjectedFault);  // parent kept its own count
}

// ---------------------------------------------------------------------------
// Bounded admission: the three overload policies.
// ---------------------------------------------------------------------------

/// One worker that dwells `delay` per run, so the queue can be filled
/// deterministically while it is busy.
Engine::BackendFactory slow_factory(const Backend& proto, Probe* probe) {
  return [&proto, probe] {
    return std::make_unique<ProbeBackend>(proto.clone(), probe);
  };
}

TEST(EngineOverload, RejectPolicyFailsFastWithQueueFullError) {
  Rng rng(419);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  Probe probe;
  probe.delay = 200ms;

  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.batch_timeout = std::chrono::microseconds(0);
  cfg.max_queue = 2;
  cfg.overload = OverloadPolicy::kReject;
  Engine engine(slow_factory(proto, &probe), cfg);

  auto f1 = engine.submit(tagged(1.0f));
  ASSERT_TRUE(wait_for_stats(engine, [](const EngineStats& s) { return s.batches >= 1; }));
  auto f2 = engine.submit(tagged(2.0f));
  auto f3 = engine.submit(tagged(3.0f));  // queue now holds max_queue = 2
  EXPECT_THROW(engine.submit(tagged(4.0f)), QueueFullError);

  EXPECT_NO_THROW(f1.get());
  EXPECT_NO_THROW(f2.get());
  EXPECT_NO_THROW(f3.get());
  engine.shutdown();
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.submitted, 3u);  // the rejected request was never admitted
  EXPECT_EQ(stats.completed, 3u);
}

TEST(EngineOverload, BlockPolicyAppliesBackpressureThenAdmits) {
  Rng rng(421);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  Probe probe;
  probe.delay = 150ms;

  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.batch_timeout = std::chrono::microseconds(0);
  cfg.max_queue = 1;
  cfg.overload = OverloadPolicy::kBlock;
  Engine engine(slow_factory(proto, &probe), cfg);

  auto f1 = engine.submit(tagged(1.0f));
  ASSERT_TRUE(wait_for_stats(engine, [](const EngineStats& s) { return s.batches >= 1; }));
  auto f2 = engine.submit(tagged(2.0f));  // fills the queue
  const auto t0 = std::chrono::steady_clock::now();
  auto f3 = engine.submit(tagged(3.0f));  // must block until f2 is taken
  const auto blocked = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(blocked, 20ms) << "kBlock submit should have waited for queue space";

  EXPECT_NO_THROW(f1.get());
  EXPECT_NO_THROW(f2.get());
  EXPECT_NO_THROW(f3.get());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.submitted, 3u);
}

TEST(EngineOverload, ShedOldestFailsOldestPendingWithShedError) {
  Rng rng(423);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  Probe probe;
  probe.delay = 200ms;

  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.batch_timeout = std::chrono::microseconds(0);
  cfg.max_queue = 2;
  cfg.overload = OverloadPolicy::kShedOldest;
  Engine engine(slow_factory(proto, &probe), cfg);

  auto f1 = engine.submit(tagged(1.0f));
  ASSERT_TRUE(wait_for_stats(engine, [](const EngineStats& s) { return s.batches >= 1; }));
  auto f2 = engine.submit(tagged(2.0f));
  auto f3 = engine.submit(tagged(3.0f));  // queue full: [2, 3]
  auto f4 = engine.submit(tagged(4.0f));  // sheds request 2

  EXPECT_THROW(f2.get(), ShedError);
  EXPECT_NO_THROW(f1.get());
  EXPECT_NO_THROW(f3.get());
  EXPECT_NO_THROW(f4.get());
  engine.shutdown();
  EXPECT_FALSE(probe.saw(2.0f)) << "the shed request must never reach a backend";
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.completed, 4u);  // shed futures count as resolved
}

// ---------------------------------------------------------------------------
// Per-request deadlines: failed at assembly time, never run, never poisoning
// a fresh batch.
// ---------------------------------------------------------------------------

TEST(EngineDeadline, ExpiredRequestFailsWithoutReachingABackend) {
  Rng rng(431);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  Probe probe;
  probe.delay = 200ms;

  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.batch_timeout = std::chrono::microseconds(100);
  Engine engine(slow_factory(proto, &probe), cfg);

  auto f1 = engine.submit(tagged(1.0f));
  ASSERT_TRUE(wait_for_stats(engine, [](const EngineStats& s) { return s.batches >= 1; }));
  // Queued behind a 200 ms run with a 10 ms budget: expires while waiting.
  auto f2 = engine.submit(tagged(2.0f), std::chrono::microseconds(10000));
  auto f3 = engine.submit(tagged(3.0f));
  auto f4 = engine.submit(tagged(4.0f));

  EXPECT_THROW(f2.get(), DeadlineExceededError);
  EXPECT_NO_THROW(f1.get());
  EXPECT_NO_THROW(f3.get());
  EXPECT_NO_THROW(f4.get());
  engine.shutdown();
  EXPECT_FALSE(probe.saw(2.0f)) << "an expired request must never be gathered into a batch";
  EXPECT_TRUE(probe.saw_together(3.0f, 4.0f))
      << "the fresh requests should still have batched together";
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.completed, stats.submitted);
}

TEST(EngineDeadline, FarFutureDeadlineBehavesLikeNone) {
  Rng rng(433);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  Engine engine(proto, EngineConfig{});
  const Tensor sample = Tensor::randn({4}, rng);
  const Tensor want = solo_run(proto, sample);
  auto f = engine.submit(sample, Engine::Clock::now() + 1h);
  EXPECT_TRUE(bit_identical(f.get(), want));
  EXPECT_EQ(engine.stats().deadline_expired, 0u);
}

// Satellite: the PR-7 head-of-line relief valve and deadlines compose — an
// expired odd-shape head is failed at its own deadline (not the 30 s batch
// timeout, not shutdown) and never delays the full later-shape batch.
TEST(EngineDeadline, ExpiredOddShapeHeadFailsFastAndDoesNotDelayLaterFullBatch) {
  Rng rng(437);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 3;
  cfg.batch_timeout = std::chrono::seconds(30);  // the relief valve's foil
  Engine engine(proto, cfg);

  // An odd-shaped head with a 30 ms budget parks at the front.
  auto head = engine.submit(Tensor::randn({5}, rng), std::chrono::microseconds(30000));
  const Tensor sample = Tensor::randn({4}, rng);
  const Tensor want = solo_run(proto, sample);
  std::vector<std::future<Tensor>> good;
  for (int i = 0; i < 3; ++i) good.push_back(engine.submit(sample));

  // The full later-shape batch dispatches out of the middle immediately.
  for (auto& f : good) {
    ASSERT_EQ(f.wait_for(10s), std::future_status::ready);
    EXPECT_TRUE(bit_identical(f.get(), want));
  }
  // The head is failed at its own deadline — a worker must wake for the
  // earliest request deadline, not sit out the 30 s batch timeout.
  ASSERT_EQ(head.wait_for(10s), std::future_status::ready);
  EXPECT_THROW(head.get(), DeadlineExceededError);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.batch_hist[3], 1u);
}

// ---------------------------------------------------------------------------
// Worker fault isolation: bisection retry, singleton re-run, quarantine.
// ---------------------------------------------------------------------------

/// Every worker trips on kPoison; worker `flaky_ordinal` (1-based factory
/// call) additionally throws on a schedule and dawdles. Counted calls make
/// the pool layout deterministic.
Engine::BackendFactory chaos_factory(const Backend& proto, std::shared_ptr<std::atomic<int>> calls,
                                     int flaky_ordinal, std::uint64_t throw_every,
                                     std::chrono::microseconds latency) {
  return [&proto, calls, flaky_ordinal, throw_every, latency] {
    const int ordinal = ++*calls;
    FaultConfig cfg;
    cfg.has_trigger = true;
    cfg.trigger = kPoison;
    cfg.seed = 1000 + static_cast<std::uint64_t>(ordinal);
    if (ordinal == flaky_ordinal) {
      cfg.throw_every = throw_every;
      cfg.latency = latency;
    }
    return std::make_unique<FaultInjectingBackend>(proto.clone(), cfg);
  };
}

TEST(EngineFaults, PoisonSampleFailsOnlyItselfHealthyNeighborsBitIdentical) {
  Rng rng(439);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  auto calls = std::make_shared<std::atomic<int>>(0);

  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.batch_timeout = std::chrono::milliseconds(50);
  Engine engine(chaos_factory(proto, calls, /*flaky_ordinal=*/0, 0, 0us), cfg);

  std::vector<Tensor> healthy;
  std::vector<Tensor> want;
  for (int i = 0; i < 3; ++i) {
    healthy.push_back(Tensor::randn({4}, rng));
    want.push_back(solo_run(proto, healthy.back()));
  }
  const Tensor poison = Tensor::full({4}, kPoison);

  auto h0 = engine.submit(healthy[0]);
  auto h1 = engine.submit(healthy[1]);
  auto p = engine.submit(poison);
  auto h2 = engine.submit(healthy[2]);

  EXPECT_TRUE(bit_identical(h0.get(), want[0]));
  EXPECT_TRUE(bit_identical(h1.get(), want[1]));
  EXPECT_TRUE(bit_identical(h2.get(), want[2]));
  EXPECT_THROW(p.get(), InjectedFault);
  engine.shutdown();
  const EngineStats stats = engine.stats();
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(stats.completed, 4u);
}

TEST(EngineFaults, TwoPoisonSamplesAreBothIsolated) {
  Rng rng(443);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  auto calls = std::make_shared<std::atomic<int>>(0);

  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.batch_timeout = std::chrono::milliseconds(50);
  cfg.quarantine_threshold = 0;  // isolate the bisection behavior
  Engine engine(chaos_factory(proto, calls, 0, 0, 0us), cfg);

  std::vector<Tensor> healthy;
  std::vector<Tensor> want;
  for (int i = 0; i < 2; ++i) {
    healthy.push_back(Tensor::randn({4}, rng));
    want.push_back(solo_run(proto, healthy.back()));
  }
  const Tensor poison = Tensor::full({4}, kPoison);

  auto p0 = engine.submit(poison);
  auto h0 = engine.submit(healthy[0]);
  auto p1 = engine.submit(poison);
  auto h1 = engine.submit(healthy[1]);

  EXPECT_THROW(p0.get(), InjectedFault);
  EXPECT_THROW(p1.get(), InjectedFault);
  EXPECT_TRUE(bit_identical(h0.get(), want[0]));
  EXPECT_TRUE(bit_identical(h1.get(), want[1]));
}

TEST(EngineFaults, TransientSingletonFaultAbsorbedByRetry) {
  Rng rng(449);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);

  FaultConfig fcfg;
  fcfg.throw_on_run = 1;  // the first run fails, every later run is clean
  FaultInjectingBackend faulty_proto(proto.clone(), fcfg);
  // NB: Engine clones the prototype, and each clone restarts its schedule.
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.batch_timeout = std::chrono::microseconds(0);
  Engine engine(faulty_proto, cfg);

  const Tensor sample = Tensor::randn({4}, rng);
  const Tensor want = solo_run(proto, sample);
  EXPECT_TRUE(bit_identical(engine.submit(sample).get(), want))
      << "one transient fault must be absorbed by the singleton retry";
  // The future resolves inside the backend run; the worker folds its retry
  // count into the stats just after — wait for that accounting to land.
  ASSERT_TRUE(wait_for_stats(engine, [](const EngineStats& s) { return s.completed >= 1; }));
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.quarantines, 0u);
}

TEST(EngineFaults, WedgedWorkerIsQuarantinedAndRebuiltFromFactory) {
  Rng rng(457);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  const Tensor sample = Tensor::randn({4}, rng);
  const Tensor want = solo_run(proto, sample);

  // Factory call 1 (the initial worker) is wedged — every run throws. Every
  // later call (the quarantine rebuild) is healthy.
  auto calls = std::make_shared<std::atomic<int>>(0);
  Engine::BackendFactory factory = [&proto, calls]() -> std::unique_ptr<Backend> {
    if (++*calls == 1) {
      FaultConfig cfg;
      cfg.throw_every = 1;
      return std::make_unique<FaultInjectingBackend>(proto.clone(), cfg);
    }
    return proto.clone();
  };

  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.batch_timeout = std::chrono::microseconds(0);
  cfg.quarantine_threshold = 2;
  cfg.rebuild_backoff = std::chrono::milliseconds(1);
  Engine engine(factory, cfg);

  // The wedged worker fails the run and its retry: consecutive = 2 hits the
  // threshold, the future gets the injected fault, and the worker rebuilds.
  EXPECT_THROW(engine.submit(sample).get(), InjectedFault);
  ASSERT_TRUE(wait_for_stats(engine, [](const EngineStats& s) { return s.rebuilds >= 1; }))
      << "the quarantined worker should have rebuilt its backend";

  // The rebuilt (healthy) backend serves correctly.
  EXPECT_TRUE(bit_identical(engine.submit(sample).get(), want));
  engine.shutdown();
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_EQ(stats.rebuilds, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(*calls, 2);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: closed-loop chaos over a 4-worker pool with one
// flaky worker (seeded scheduled throws + latency) and poison samples mixed
// into the traffic. Every future resolves; exceptions land only on poison
// samples; healthy answers stay bit-identical to solo.
// ---------------------------------------------------------------------------

TEST(EngineFaults, ChaosClosedLoopEveryFutureResolvesOnlyPoisonFails) {
  Rng rng(461);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  auto calls = std::make_shared<std::atomic<int>>(0);

  EngineConfig cfg;
  cfg.workers = 4;
  cfg.max_batch = 4;
  cfg.batch_timeout = std::chrono::microseconds(100);
  cfg.quarantine_threshold = 3;
  cfg.rebuild_backoff = std::chrono::milliseconds(1);
  // Worker 2 of 4: throws every 7th run and dawdles 200 us per run. With
  // throw_every >= 2 the run after a scheduled throw is clean, so bisection
  // plus the singleton retry can always rescue healthy samples — only the
  // deterministic kPoison trigger (armed on every worker) is unrecoverable.
  Engine engine(chaos_factory(proto, calls, /*flaky_ordinal=*/2, /*throw_every=*/7,
                              /*latency=*/200us),
                cfg);

  std::vector<Tensor> healthy;
  std::vector<Tensor> want;
  for (int i = 0; i < 8; ++i) {
    healthy.push_back(Tensor::randn({4}, rng));
    want.push_back(solo_run(proto, healthy.back()));
  }
  const Tensor poison = Tensor::full({4}, kPoison);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 30;
  struct Outcome {
    bool is_poison = false;
    std::size_t sample = 0;
    std::future<Tensor> future;
  };
  std::vector<std::vector<Outcome>> outcomes(kClients);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      outcomes[c].reserve(kPerClient);
      for (std::size_t i = 0; i < kPerClient; ++i) {
        Outcome o;
        o.is_poison = (i == 7 || i == 19);  // two poison requests per client
        o.sample = (c + i) % healthy.size();
        o.future = engine.submit(o.is_poison ? poison : healthy[o.sample]);
        outcomes[c].push_back(std::move(o));
      }
    });
  }
  for (auto& t : clients) t.join();

  std::size_t poison_faults = 0;
  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::size_t i = 0; i < outcomes[c].size(); ++i) {
      Outcome& o = outcomes[c][i];
      ASSERT_EQ(o.future.wait_for(30s), std::future_status::ready)
          << "client " << c << " request " << i << " never resolved";
      if (o.is_poison) {
        EXPECT_THROW(o.future.get(), InjectedFault) << "client " << c << " request " << i;
        ++poison_faults;
      } else {
        Tensor y;
        EXPECT_NO_THROW(y = o.future.get())
            << "a healthy sample received an exception (client " << c << " request " << i << ")";
        EXPECT_TRUE(bit_identical(y, want[o.sample]))
            << "client " << c << " request " << i << " diverged from solo";
      }
    }
  }
  EXPECT_EQ(poison_faults, kClients * 2);

  engine.shutdown();
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.completed, stats.submitted) << "every admitted request must resolve";
  EXPECT_GE(stats.retries, 1u) << "poison batches should have forced bisection retries";
}

// ---------------------------------------------------------------------------
// The shutdown()-vs-submit() race: no future may hang, whatever interleaving
// the scheduler picks (the lost-wakeup regression).
// ---------------------------------------------------------------------------

void hammer_shutdown_race(const EngineConfig& cfg, const FloatBackend& proto, Rng& rng,
                          int rounds) {
  const Tensor sample = Tensor::randn({4}, rng);
  for (int round = 0; round < rounds; ++round) {
    Engine engine(proto, cfg);
    std::vector<std::vector<std::future<Tensor>>> futures(4);
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        while (!go.load()) std::this_thread::yield();
        for (;;) {
          try {
            futures[t].push_back(engine.submit(sample));
          } catch (const ShutdownError&) {
            break;  // a submit that throws returned no future: nothing owed
          }
        }
      });
    }
    go.store(true);
    std::this_thread::sleep_for(std::chrono::microseconds(200 + 100 * round));
    engine.shutdown();
    for (auto& t : threads) t.join();

    std::size_t returned = 0;
    for (auto& per_thread : futures) {
      for (auto& f : per_thread) {
        ASSERT_EQ(f.wait_for(30s), std::future_status::ready)
            << "round " << round << ": a returned future hung across shutdown";
        EXPECT_NO_THROW(f.get()) << "admitted pre-shutdown: must drain to a value";
        ++returned;
      }
    }
    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.submitted, returned);
    EXPECT_EQ(stats.completed, returned);
  }
}

TEST(EngineShutdownRace, ConcurrentSubmittersEveryFutureResolves) {
  Rng rng(463);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 4;
  cfg.batch_timeout = std::chrono::microseconds(100);
  hammer_shutdown_race(cfg, proto, rng, /*rounds=*/10);
}

TEST(EngineShutdownRace, BlockedSubmittersAreWokenAndThrowShutdownError) {
  Rng rng(467);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 2;
  cfg.batch_timeout = std::chrono::microseconds(100);
  cfg.max_queue = 2;
  cfg.overload = OverloadPolicy::kBlock;
  // Submitters outnumber queue slots, so some are blocked on space when
  // shutdown() fires — they must wake and throw, not hang.
  hammer_shutdown_race(cfg, proto, rng, /*rounds=*/10);
}

TEST(EngineShutdownRace, SubmitAfterShutdownThrowsTypedShutdownError) {
  static_assert(std::is_base_of<std::runtime_error, ShutdownError>::value,
                "ShutdownError must keep deriving from std::runtime_error for old catch sites");
  static_assert(std::is_base_of<Error, QueueFullError>::value, "typed hierarchy");
  static_assert(std::is_base_of<Error, ShedError>::value, "typed hierarchy");
  static_assert(std::is_base_of<Error, DeadlineExceededError>::value, "typed hierarchy");
  Rng rng(479);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  Engine engine(proto, EngineConfig{});
  engine.shutdown();
  EXPECT_THROW(engine.submit(Tensor::randn({4}, rng)), ShutdownError);
}

}  // namespace
}  // namespace pdnn::serve
