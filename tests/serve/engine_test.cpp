// engine_test.cpp — serve::Engine concurrency and correctness: batched
// answers bit-identical to solo runs (float and posit backends, 1/2/4
// workers, many client threads), batch assembly under the size/timeout
// watermarks, drain-on-shutdown with pending requests, N = 0 teardown,
// failed-batch exception routing, and the Backend output contract
// (stale-read guard, clone independence).
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/float_backend.hpp"
#include "nn/resnet.hpp"
#include "quant/posit_session.hpp"
#include "serve/engine.hpp"
#include "tensor/ops.hpp"

namespace pdnn::serve {
namespace {

using exec::Backend;
using exec::FloatBackend;
using tensor::Rng;
using tensor::Tensor;

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         (a.numel() == 0 || std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0);
}

/// The solo reference: the same sample alone (batch of one) through a fresh
/// backend of the same configuration.
Tensor solo_run(Backend& backend, const Tensor& sample) {
  const Tensor* one = &sample;
  Tensor batch;
  tensor::stack_samples(&one, 1, batch);
  Tensor row;
  tensor::extract_sample(backend.run(batch), 0, row);
  return row;
}

/// N client threads push `per_client` samples each through `engine`; every
/// future must come back bit-identical to the solo reference.
void stress_bit_identity(Engine& engine, Backend& reference, const std::vector<Tensor>& samples,
                         std::size_t clients) {
  std::vector<Tensor> want(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) want[i] = solo_run(reference, samples[i]);

  std::vector<std::vector<std::future<Tensor>>> futures(clients);
  std::vector<std::thread> threads;
  const std::size_t per_client = samples.size();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      futures[c].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) futures[c].push_back(engine.submit(samples[i]));
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t c = 0; c < clients; ++c) {
    for (std::size_t i = 0; i < per_client; ++i) {
      EXPECT_TRUE(bit_identical(futures[c][i].get(), want[i]))
          << "client " << c << " sample " << i;
    }
  }
}

TEST(ServeEngine, FloatBatchedBitIdenticalToSoloAcrossWorkerCounts) {
  Rng rng(301);
  auto net = nn::mlp(6, 12, 3, 2, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  std::vector<Tensor> samples;
  for (int i = 0; i < 24; ++i) samples.push_back(Tensor::randn({6}, rng));

  for (const std::size_t workers : {1u, 2u, 4u}) {
    EngineConfig cfg;
    cfg.workers = workers;
    cfg.max_batch = 5;
    cfg.batch_timeout = std::chrono::microseconds(200);
    Engine engine(proto, cfg);
    stress_bit_identity(engine, proto, samples, /*clients=*/4);
    engine.shutdown();
    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.submitted, samples.size() * 4);
    EXPECT_EQ(stats.completed, stats.submitted);
    std::uint64_t hist_total = 0;
    for (std::size_t s = 0; s < stats.batch_hist.size(); ++s) {
      EXPECT_LE(s, cfg.max_batch);  // size watermark: no oversized batches
      hist_total += stats.batch_hist[s] * s;
    }
    EXPECT_EQ(hist_total, stats.completed);
  }
}

TEST(ServeEngine, CnnRankThreeSamplesBitIdenticalToSolo) {
  Rng rng(307);
  auto net = nn::plain_cnn(4, 10, rng);
  const Tensor warm = Tensor::randn({2, 3, 8, 8}, rng);
  net->forward(warm, /*training=*/true);  // settle BN running stats
  FloatBackend proto = FloatBackend::compile(*net);
  std::vector<Tensor> samples;
  for (int i = 0; i < 6; ++i) samples.push_back(Tensor::randn({3, 8, 8}, rng));

  EngineConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 4;
  Engine engine(proto, cfg);
  stress_bit_identity(engine, proto, samples, /*clients=*/2);
}

TEST(ServeEngine, PositBackendBatchedBitIdenticalToSolo) {
  Rng rng(311);
  auto net = nn::mlp(6, 10, 3, 1, rng);
  quant::SessionConfig scfg;
  scfg.spec = {8, 1};
  scfg.mode = quant::AccumMode::kSerial;  // the MulLut/AddLut hot path
  auto proto = quant::PositSession::compile_backend(*net, scfg);
  std::vector<Tensor> samples;
  for (int i = 0; i < 8; ++i) samples.push_back(Tensor::randn({6}, rng));

  for (const std::size_t workers : {1u, 2u, 4u}) {
    EngineConfig cfg;
    cfg.workers = workers;
    cfg.max_batch = 3;
    Engine engine(*proto, cfg);
    stress_bit_identity(engine, *proto, samples, /*clients=*/2);
  }
}

TEST(ServeEngine, SizeWatermarkDispatchesFullBatchBeforeTimeout) {
  Rng rng(313);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.batch_timeout = std::chrono::seconds(30);  // timeout may never be the trigger
  Engine engine(proto, cfg);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(engine.submit(Tensor::randn({4}, rng)));
  for (auto& f : futures) f.get();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(10));  // full batch went at the size watermark

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.batch_hist[4], 1u);
}

TEST(ServeEngine, TimeoutWatermarkDispatchesPartialBatch) {
  Rng rng(317);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 8;  // never fills
  cfg.batch_timeout = std::chrono::milliseconds(20);
  Engine engine(proto, cfg);

  auto f = engine.submit(Tensor::randn({4}, rng));
  EXPECT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  f.get();
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.batch_hist[1], 1u);
}

TEST(ServeEngine, HeadOfLineBlockedQueueDispatchesLaterFullBatch) {
  Rng rng(379);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 3;
  cfg.batch_timeout = std::chrono::seconds(30);  // the head's deadline is far away
  Engine engine(proto, cfg);

  // An odd-shaped request parks at the head: its batchable prefix can never
  // fill. A full batch of the serving shape queues behind it.
  auto head = engine.submit(Tensor::randn({5}, rng));
  const Tensor sample = Tensor::randn({4}, rng);
  const Tensor want = solo_run(proto, sample);
  std::vector<std::future<Tensor>> good;
  for (int i = 0; i < 3; ++i) good.push_back(engine.submit(sample));

  // Relief valve: the full later-shape batch dispatches out of the middle
  // long before the head's timeout (a FIFO-only engine would sit on all
  // three until the head's 30 s deadline).
  for (auto& f : good) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(10)), std::future_status::ready);
    EXPECT_TRUE(bit_identical(f.get(), want));
  }
  EXPECT_EQ(engine.stats().batch_hist[3], 1u);
  // The head kept its place and its deadline: still pending, never dropped.
  EXPECT_EQ(head.wait_for(std::chrono::milliseconds(0)), std::future_status::timeout);

  engine.shutdown();  // drain dispatches the head; its shape fails its own batch
  EXPECT_THROW(head.get(), std::invalid_argument);
}

TEST(ServeEngine, ShutdownDrainsPendingRequestsWithoutLostFutures) {
  Rng rng(331);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 4;
  cfg.batch_timeout = std::chrono::seconds(30);  // drain must not wait for this
  Engine engine(proto, cfg);

  std::vector<Tensor> samples;
  std::vector<Tensor> want;
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 10; ++i) {
    samples.push_back(Tensor::randn({4}, rng));
    want.push_back(solo_run(proto, samples.back()));
    futures.push_back(engine.submit(samples.back()));
  }
  engine.shutdown();  // pending partial batches must drain, not deadlock
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_TRUE(bit_identical(futures[i].get(), want[i])) << "sample " << i;
  }
  EXPECT_EQ(engine.stats().completed, futures.size());
}

TEST(ServeEngine, NoRequestsShutsDownCleanly) {
  Rng rng(337);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  for (const std::size_t workers : {1u, 4u}) {
    EngineConfig cfg;
    cfg.workers = workers;
    Engine engine(proto, cfg);
    // Destructor must join idle workers without a single submit.
  }
}

TEST(ServeEngine, SubmitAfterShutdownThrows) {
  Rng rng(347);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  Engine engine(proto, EngineConfig{});
  engine.shutdown();
  // The typed error (serve::ShutdownError) still derives from
  // std::runtime_error; old catch sites keep working.
  EXPECT_THROW(engine.submit(Tensor::randn({4}, rng)), ShutdownError);
  EXPECT_THROW(engine.submit(Tensor::randn({4}, rng)), std::runtime_error);
}

TEST(ServeEngine, DegenerateSubmitThrows) {
  Rng rng(349);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  Engine engine(proto, EngineConfig{});
  EXPECT_THROW(engine.submit(Tensor()), std::invalid_argument);
  EXPECT_THROW(engine.submit(Tensor::randn({1, 2, 2, 2}, rng)), std::invalid_argument);
}

TEST(ServeEngine, BadShapeFailsItsOwnBatchOnly) {
  Rng rng(353);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend proto = FloatBackend::compile(*net);
  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_timeout = std::chrono::milliseconds(5);
  Engine engine(proto, cfg);

  const Tensor good_sample = Tensor::randn({4}, rng);
  const Tensor want = solo_run(proto, good_sample);
  // Wrong-width samples batch separately (shape-pure batches), so their
  // plan-shape mismatch fails only their own futures.
  auto good1 = engine.submit(good_sample);
  auto bad = engine.submit(Tensor::randn({5}, rng));
  auto good2 = engine.submit(good_sample);
  EXPECT_TRUE(bit_identical(good1.get(), want));
  EXPECT_THROW(bad.get(), std::invalid_argument);
  EXPECT_TRUE(bit_identical(good2.get(), want));
}

// ---------------------------------------------------------------------------
// The Backend output contract (backend.hpp): run() returns into backend-owned
// storage that the next run() overwrites.
// ---------------------------------------------------------------------------

TEST(BackendContract, StaleCheckedOutputThrowsAfterNextRun) {
  Rng rng(359);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend backend = FloatBackend::compile(*net);
  const Tensor x = Tensor::randn({2, 4}, rng);

  exec::Backend::Output out = backend.run_checked(x);
  const Tensor copy = out.get();  // fresh: readable
  EXPECT_TRUE(bit_identical(copy, out.get()));

  backend.run(x);  // overwrites the buffer out points into
  EXPECT_THROW(out.get(), std::logic_error);
}

TEST(BackendContract, RunGenerationCountsRuns) {
  Rng rng(367);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend backend = FloatBackend::compile(*net);
  const Tensor x = Tensor::randn({1, 4}, rng);
  const std::uint64_t g0 = backend.run_generation();
  backend.run(x);
  backend.run(x);
  EXPECT_EQ(backend.run_generation(), g0 + 2);
}

TEST(BackendContract, CloneIsIndependentState) {
  Rng rng(373);
  auto net = nn::mlp(4, 8, 2, 1, rng);
  FloatBackend backend = FloatBackend::compile(*net);
  const Tensor xa = Tensor::randn({1, 4}, rng);
  const Tensor xb = Tensor::randn({1, 4}, rng);
  const Tensor want_a = backend.run(xa);  // copy

  auto twin = backend.clone();
  // The clone's runs must not disturb an output held on the original.
  exec::Backend::Output held = backend.run_checked(xa);
  twin->run(xb);
  twin->run(xb);
  EXPECT_TRUE(bit_identical(held.get(), want_a));
  // And the clone computes the same plan: bit-identical on equal input.
  EXPECT_TRUE(bit_identical(twin->run(xa), want_a));
}

}  // namespace
}  // namespace pdnn::serve
