// ops_test.cpp — tensor kernels against naive reference implementations.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "tensor/ops.hpp"
#include "tensor/random.hpp"
#include "tensor/stats.hpp"

namespace pdnn::tensor {
namespace {

TEST(Shape, BasicProperties) {
  const Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.rank(), 4u);
  EXPECT_EQ(s.numel(), 120u);
  EXPECT_EQ(s[2], 4u);
  EXPECT_EQ(s.to_string(), "[2,3,4,5]");
  EXPECT_TRUE((s == Shape{2, 3, 4, 5}));
  EXPECT_TRUE((s != Shape{2, 3, 4}));
  EXPECT_EQ(Shape{}.numel(), 0u);
}

TEST(Tensor, FactoriesAndAccessors) {
  Rng rng(1);
  Tensor z = Tensor::zeros({2, 2});
  EXPECT_EQ(z.numel(), 4u);
  EXPECT_FLOAT_EQ(z[3], 0.0f);
  Tensor f = Tensor::full({3}, 2.5f);
  EXPECT_FLOAT_EQ(f[1], 2.5f);
  Tensor r = Tensor::randn({64, 64}, rng);
  const auto m = moments(r);
  EXPECT_NEAR(m.mean, 0.0, 0.05);
  EXPECT_NEAR(m.stddev, 1.0, 0.05);
}

TEST(Tensor, KaimingVariance) {
  Rng rng(2);
  const std::size_t fan_in = 3 * 3 * 16;
  Tensor w = Tensor::kaiming({16, 16, 3, 3}, fan_in, rng);
  const auto m = moments(w);
  EXPECT_NEAR(m.stddev, std::sqrt(2.0 / static_cast<double>(fan_in)), 0.01);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3});
  for (std::size_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshaped({3, 2});
  EXPECT_FLOAT_EQ(r.at(2, 1), 5.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Matmul, MatchesNaive) {
  Rng rng(3);
  const Tensor a = Tensor::randn({7, 13}, rng);
  const Tensor b = Tensor::randn({13, 9}, rng);
  const Tensor c = matmul(a, b);
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = 0; j < 9; ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < 13; ++k) acc += a.at(i, k) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), acc, 1e-4) << i << "," << j;
    }
}

TEST(Matmul, ShapeMismatchThrows) {
  const Tensor a({2, 3}), b({4, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Transpose, RoundTrip) {
  Rng rng(4);
  const Tensor a = Tensor::randn({5, 8}, rng);
  const Tensor t = transpose(transpose(a));
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], t[i]);
}

// Naive direct convolution as the oracle for the im2col path.
Tensor conv_naive(const Tensor& x, const Tensor& w, const Conv2dGeom& g) {
  const std::size_t n = x.shape()[0];
  Tensor out({n, g.out_c, g.out_h(), g.out_w()});
  for (std::size_t ni = 0; ni < n; ++ni)
    for (std::size_t o = 0; o < g.out_c; ++o)
      for (std::size_t y = 0; y < g.out_h(); ++y)
        for (std::size_t xx = 0; xx < g.out_w(); ++xx) {
          float acc = 0.0f;
          for (std::size_t c = 0; c < g.in_c; ++c)
            for (std::size_t ky = 0; ky < g.kernel; ++ky)
              for (std::size_t kx = 0; kx < g.kernel; ++kx) {
                const long iy = static_cast<long>(y * g.stride + ky) - static_cast<long>(g.pad);
                const long ix = static_cast<long>(xx * g.stride + kx) - static_cast<long>(g.pad);
                if (iy < 0 || ix < 0 || iy >= static_cast<long>(g.in_h) || ix >= static_cast<long>(g.in_w))
                  continue;
                acc += x.at(ni, c, static_cast<std::size_t>(iy), static_cast<std::size_t>(ix)) *
                       w.at(o, c, ky, kx);
              }
          out.at(ni, o, y, xx) = acc;
        }
  return out;
}

class ConvGeomTest : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(ConvGeomTest, ForwardMatchesNaive) {
  const auto [kernel, stride, pad] = GetParam();
  Rng rng(5);
  Conv2dGeom g{3, 8, 8, 4, kernel, stride, pad};
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor w = Tensor::randn({4, 3, kernel, kernel}, rng);
  const Tensor got = conv2d_forward(x, w, g);
  const Tensor want = conv_naive(x, w, g);
  ASSERT_EQ(got.numel(), want.numel());
  for (std::size_t i = 0; i < got.numel(); ++i) EXPECT_NEAR(got[i], want[i], 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvGeomTest,
                         ::testing::Values(std::tuple{3u, 1u, 1u}, std::tuple{3u, 2u, 1u},
                                           std::tuple{1u, 1u, 0u}, std::tuple{1u, 2u, 0u},
                                           std::tuple{5u, 1u, 2u}, std::tuple{3u, 1u, 0u}));

// Numerical gradient check of conv2d_backward via central differences.
TEST(ConvBackward, GradientCheck) {
  Rng rng(6);
  Conv2dGeom g{2, 5, 5, 3, 3, 1, 1};
  Tensor x = Tensor::randn({1, 2, 5, 5}, rng);
  Tensor w = Tensor::randn({3, 2, 3, 3}, rng);

  // Loss = sum(conv(x, w) * R) for fixed random R.
  const Tensor r = Tensor::randn({1, 3, 5, 5}, rng);
  const auto loss = [&](const Tensor& xx, const Tensor& ww) {
    const Tensor y = conv2d_forward(xx, ww, g);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) acc += static_cast<double>(y[i]) * r[i];
    return acc;
  };

  Tensor gw = Tensor::zeros(w.shape());
  const Tensor gx = conv2d_backward(x, w, r, g, gw);

  const double eps = 1e-3;
  for (std::size_t i = 0; i < x.numel(); i += 7) {
    Tensor xp = x, xm = x;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    const double num = (loss(xp, w) - loss(xm, w)) / (2 * eps);
    EXPECT_NEAR(gx[i], num, 5e-2) << "dX[" << i << "]";
  }
  for (std::size_t i = 0; i < w.numel(); i += 5) {
    Tensor wp = w, wm = w;
    wp[i] += static_cast<float>(eps);
    wm[i] -= static_cast<float>(eps);
    const double num = (loss(x, wp) - loss(x, wm)) / (2 * eps);
    EXPECT_NEAR(gw[i], num, 5e-2) << "dW[" << i << "]";
  }
}

TEST(Im2colCol2im, AdjointProperty) {
  // <im2col(x), y> == <x, col2im(y)> for all x, y (adjoint pair).
  Rng rng(7);
  Conv2dGeom g{2, 6, 6, 1, 3, 2, 1};
  const std::size_t img_n = 2 * 6 * 6;
  const std::size_t col_n = 2 * 9 * g.out_h() * g.out_w();
  std::vector<float> x(img_n), y(col_n), cols(col_n), img(img_n, 0.0f);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : y) v = static_cast<float>(rng.normal());
  im2col(x.data(), g, cols.data());
  col2im(y.data(), g, img.data());
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < col_n; ++i) lhs += static_cast<double>(cols[i]) * y[i];
  for (std::size_t i = 0; i < img_n; ++i) rhs += static_cast<double>(x[i]) * img[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(MaxPool, ForwardAndBackward) {
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  std::vector<std::size_t> argmax;
  const Tensor y = maxpool2x2_forward(x, argmax);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 15.0f);
  Tensor gy({1, 1, 2, 2});
  gy.fill(1.0f);
  const Tensor gx = maxpool2x2_backward(gy, argmax, x.shape());
  EXPECT_FLOAT_EQ(gx[5], 1.0f);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  double total = 0.0;
  for (std::size_t i = 0; i < gx.numel(); ++i) total += gx[i];
  EXPECT_DOUBLE_EQ(total, 4.0);
}

TEST(GlobalAvgPool, ForwardBackward) {
  Tensor x({2, 3, 2, 2});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i);
  const Tensor y = global_avgpool_forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(y.at(0, 0), (0 + 1 + 2 + 3) / 4.0f);
  Tensor gy({2, 3});
  gy.fill(4.0f);
  const Tensor gx = global_avgpool_backward(gy, x.shape());
  EXPECT_FLOAT_EQ(gx[0], 1.0f);  // 4 / plane(4)
}

TEST(Softmax, RowsSumToOneAndOrderPreserved) {
  Rng rng(8);
  const Tensor logits = Tensor::randn({5, 7}, rng, 3.0f);
  const Tensor p = softmax(logits);
  for (std::size_t i = 0; i < 5; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 7; ++j) {
      sum += p.at(i, j);
      EXPECT_GT(p.at(i, j), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(CrossEntropy, GradientCheck) {
  Rng rng(9);
  Tensor logits = Tensor::randn({4, 6}, rng);
  const std::vector<int> labels{1, 0, 5, 3};
  Tensor grad;
  cross_entropy(logits, labels, &grad);
  const double eps = 1e-3;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += static_cast<float>(eps);
    lm[i] -= static_cast<float>(eps);
    const double num =
        (cross_entropy(lp, labels, nullptr) - cross_entropy(lm, labels, nullptr)) / (2 * eps);
    EXPECT_NEAR(grad[i], num, 1e-3);
  }
}

TEST(CrossEntropy, PerfectPredictionLowLoss) {
  Tensor logits({2, 3});
  logits.at(0, 1) = 20.0f;
  logits.at(1, 2) = 20.0f;
  const float loss = cross_entropy(logits, {1, 2}, nullptr);
  EXPECT_LT(loss, 1e-3);
  EXPECT_EQ(count_correct(logits, {1, 2}), 2u);
  EXPECT_EQ(count_correct(logits, {0, 2}), 1u);
}

TEST(Stats, MomentsAndLog2Center) {
  Tensor t({4});
  t[0] = 0.25f;
  t[1] = 0.25f;
  t[2] = -0.25f;
  t[3] = 0.0f;  // zero excluded from log stats
  EXPECT_EQ(log2_center(t), -2);
  EXPECT_DOUBLE_EQ(log2_mean(t), -2.0);
  const auto m = moments(t);
  EXPECT_DOUBLE_EQ(m.min, -0.25);
  EXPECT_DOUBLE_EQ(m.max, 0.25);
}

TEST(Stats, Log2Range) {
  Tensor t({3});
  t[0] = 1.0f;   // log2 = 0
  t[1] = 8.0f;   // log2 = 3
  t[2] = 0.5f;   // log2 = -1
  EXPECT_DOUBLE_EQ(log2_range(t), 4.0);
}

TEST(BatchHelpers, StackAndExtractRoundTripBitExact) {
  Rng rng(61);
  const Tensor s0 = Tensor::randn({2, 3}, rng);
  const Tensor s1 = Tensor::randn({2, 3}, rng);
  const Tensor s2 = Tensor::randn({2, 3}, rng);
  const Tensor* samples[] = {&s0, &s1, &s2};

  Tensor batch;
  stack_samples(samples, 3, batch);
  EXPECT_EQ(batch.shape(), (Shape{3, 2, 3}));

  Tensor row;
  for (std::size_t i = 0; i < 3; ++i) {
    extract_sample(batch, i, row);
    EXPECT_EQ(row.shape(), (Shape{2, 3}));
    EXPECT_EQ(std::memcmp(row.data(), samples[i]->data(), row.numel() * sizeof(float)), 0)
        << "sample " << i;
  }
}

TEST(BatchHelpers, RankOneSamplesAndStorageReuse) {
  Rng rng(67);
  const Tensor a = Tensor::randn({5}, rng);
  const Tensor b = Tensor::randn({5}, rng);
  const Tensor* samples[] = {&a, &b};

  // Pre-grown output storage is reused, not reallocated past need.
  Tensor batch = Tensor::zeros({4, 7});
  stack_samples(samples, 2, batch);
  EXPECT_EQ(batch.shape(), (Shape{2, 5}));

  Tensor row = Tensor::zeros({9});
  extract_sample(batch, 1, row);
  EXPECT_EQ(row.shape(), (Shape{5}));
  EXPECT_EQ(std::memcmp(row.data(), b.data(), 5 * sizeof(float)), 0);

  // Rank-1 batch: each sample is one scalar slot.
  extract_sample(a, 3, row);
  EXPECT_EQ(row.shape(), (Shape{1}));
  EXPECT_FLOAT_EQ(row[0], a[3]);
}

TEST(BatchHelpers, RankFourSamplesConcatenateAlongAxisZero) {
  // NCHW mini-batches stack by axis-0 concatenation (Shape tops out at four
  // dims): two [2,3,4,4] shards -> one [4,3,4,4] batch, rows in order.
  Rng rng(73);
  const Tensor s0 = Tensor::randn({2, 3, 4, 4}, rng);
  const Tensor s1 = Tensor::randn({2, 3, 4, 4}, rng);
  const Tensor* samples[] = {&s0, &s1};

  Tensor batch;
  stack_samples(samples, 2, batch);
  EXPECT_EQ(batch.shape(), (Shape{4, 3, 4, 4}));
  EXPECT_EQ(std::memcmp(batch.data(), s0.data(), s0.numel() * sizeof(float)), 0);
  EXPECT_EQ(std::memcmp(batch.data() + s0.numel(), s1.data(), s1.numel() * sizeof(float)), 0);
}

TEST(BatchHelpers, ExtractSpanKeepsRank) {
  Rng rng(79);
  const Tensor batch4 = Tensor::randn({6, 2, 3, 3}, rng);
  const std::size_t stride = batch4.numel() / 6;

  Tensor span;
  extract_span(batch4, 2, 3, span);
  EXPECT_EQ(span.shape(), (Shape{3, 2, 3, 3}));
  EXPECT_EQ(std::memcmp(span.data(), batch4.data() + 2 * stride, span.numel() * sizeof(float)), 0);

  // Rank-2 batches keep their rank too, and an empty span is legal.
  const Tensor batch2 = Tensor::randn({5, 7}, rng);
  extract_span(batch2, 4, 1, span);
  EXPECT_EQ(span.shape(), (Shape{1, 7}));
  EXPECT_EQ(std::memcmp(span.data(), batch2.data() + 4 * 7, 7 * sizeof(float)), 0);
  extract_span(batch2, 5, 0, span);
  EXPECT_EQ(span.shape(), (Shape{0, 7}));
  EXPECT_EQ(span.numel(), 0u);
}

TEST(BatchHelpers, DegenerateInputsThrow) {
  Rng rng(71);
  const Tensor ok = Tensor::randn({4}, rng);
  const Tensor wide = Tensor::randn({5}, rng);
  const Tensor cube3 = Tensor::randn({2, 2, 2}, rng);
  const Tensor cube4 = Tensor::randn({2, 2, 2, 2}, rng);
  Tensor out;

  const Tensor* none[] = {&ok};
  EXPECT_THROW(stack_samples(none, 0, out), std::invalid_argument);
  const Tensor* mixed[] = {&ok, &wide};
  EXPECT_THROW(stack_samples(mixed, 2, out), std::invalid_argument);
  const Tensor* mixed_rank[] = {&cube4, &cube3};
  EXPECT_THROW(stack_samples(mixed_rank, 2, out), std::invalid_argument);
  const Tensor empty_sample = Tensor::zeros({0, 2, 2, 2});
  const Tensor* degenerate[] = {&empty_sample};
  EXPECT_THROW(stack_samples(degenerate, 1, out), std::invalid_argument);

  EXPECT_THROW(extract_sample(Tensor(), 0, out), std::invalid_argument);
  EXPECT_THROW(extract_sample(ok, 4, out), std::invalid_argument);

  EXPECT_THROW(extract_span(Tensor(), 0, 0, out), std::invalid_argument);
  EXPECT_THROW(extract_span(ok, 3, 2, out), std::invalid_argument);
  EXPECT_THROW(extract_span(ok, 5, 0, out), std::invalid_argument);
}

TEST(Stats, HistogramBuckets) {
  Tensor t({6});
  t[0] = -1.5f;  // underflow
  t[1] = -0.5f;
  t[2] = 0.1f;
  t[3] = 0.1f;
  t[4] = 0.9f;
  t[5] = 2.0f;  // overflow
  const Histogram h = histogram(t, -1.0, 1.0, 4);
  EXPECT_EQ(h.underflow, 1u);
  EXPECT_EQ(h.overflow, 1u);
  EXPECT_EQ(h.counts[1], 1u);  // -0.5
  EXPECT_EQ(h.counts[2], 2u);  // 0.1 x2
  EXPECT_EQ(h.counts[3], 1u);  // 0.9
  EXPECT_FALSE(render_histogram(h).empty());
}

TEST(Rng, DeterministicAndUniform) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) sum += c.uniform();
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace pdnn::tensor
